"""Ablation: UE oscillator error with and without CP-based correction.

A 0.5 ppm crystal at 680 MHz (340 Hz CFO) rotates the constellation by a
full turn every ~3 ms; the CP estimator recovers the offset to a few Hz
and the end-to-end link does not notice.
"""

import numpy as np

from repro.lte import LteTransmitter
from repro.lte.cfo import apply_cfo, correct_cfo, estimate_cfo
from repro.lte.receiver import LteReceiver
from benchmarks.conftest import run_once


def _sweep(seed=0):
    capture = LteTransmitter(1.4, rng=seed).transmit(1)
    fs = capture.params.sample_rate_hz
    rows = []
    for cfo_hz in (0.0, 340.0, 3000.0, 6000.0):
        impaired = apply_cfo(capture.samples, cfo_hz, fs)
        rx = LteReceiver(capture.params, capture.cell)
        raw = rx.decode(impaired).block_error_rate
        estimated = estimate_cfo(impaired, capture.params)
        corrected = rx.decode(
            correct_cfo(impaired, estimated, fs)
        ).block_error_rate
        rows.append((cfo_hz, estimated, raw, corrected))
    return rows


def test_cfo_ablation(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n# cfo(Hz)  estimated  BLER(uncorrected)  BLER(corrected)")
    for cfo, est, raw, corrected in rows:
        print(f"#  {cfo:6.0f}  {est:8.1f}  {raw:16.2f}  {corrected:14.2f}")
    by_cfo = {r[0]: r for r in rows}
    # Estimates land within a few Hz.
    for cfo, est, _, _ in rows:
        assert abs(est - cfo) < 20.0
    # Crystal-scale offsets (<~1 kHz) are absorbed by the CRS time
    # interpolation; subcarrier-scale offsets destroy the uncorrected
    # decode, and the CP estimator restores it.
    assert by_cfo[340.0][2] == 0.0
    assert by_cfo[3000.0][2] > 0.5
    assert by_cfo[3000.0][3] == 0.0
    assert by_cfo[6000.0][3] == 0.0
