"""Ablation: multi-level harmonic cancellation on vs off (paper §3.2.2).

The square-wave switch sprays (2/pi m)^2 of the power onto each odd
harmonic m; the multi-level quantisation the paper adopts (from LoRa
backscatter / OFDMA-WiFi-backscatter) nulls the 3rd and 5th, cutting
out-of-band leakage by an order of magnitude.
"""

import numpy as np
import pytest

from repro.tag.modulator import ChipModulator, square_wave_harmonics


def test_harmonics_ablation(benchmark):
    def measure():
        plain = ChipModulator(multi_level=False)
        cancelled = ChipModulator(multi_level=True)
        return plain.out_of_band_leakage(), cancelled.out_of_band_leakage()

    plain, cancelled = benchmark(measure)
    print(
        f"\n# out-of-band leakage: square wave {plain:.4f}, "
        f"multi-level {cancelled:.4f} ({plain / cancelled:.1f}x reduction)"
    )
    # The 3rd harmonic alone carries (2/3pi)^2 ~ 4.5% of the power.
    orders, amplitudes = square_wave_harmonics(9, multi_level=False)
    assert (amplitudes[2] / 2) ** 2 == pytest.approx((2 / (3 * np.pi)) ** 2)
    # Cancellation buys at least 5x less out-of-band power.
    assert plain > 5 * cancelled
    # Even harmonics never existed.
    assert amplitudes[1] == amplitudes[3] == 0.0
