"""Fig. 8: sync-circuit stage outputs over 20 ms of ambient LTE."""

import numpy as np

from repro.experiments import run_experiment
from benchmarks.conftest import run_once


def test_fig08(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig08")
    show_result(result, max_rows=5)
    # The comparator goes high ~4 times in 20 ms (one per PSS cycle).
    comparator = np.array([r["pss_determination"] for r in result.rows])
    rises = np.sum(np.diff(comparator) > 0)
    assert 3 <= rises <= 5
    # The RC envelope rides above the slow average at those instants.
    env = np.array([r["rc_filter"] for r in result.rows])
    avg = np.array([r["signal_average"] for r in result.rows])
    assert env[comparator == 1].mean() > avg[comparator == 1].mean()
