"""Fleet scaling benchmark: the shared-ambient cache earns its keep.

The naive multi-tag loop regenerates the eNodeB capture (frame build +
OFDM modulation — the dominant fixed cost at small bandwidths) once per
tag.  The fleet path computes it once and shares it, so transmitter
invocations drop from N to 1; this suite pins that contract (and the
resulting wall-clock win) so a regression in the cache keying fails
loudly.
"""

from __future__ import annotations

import pytest

from repro.core import LScatterSystem
from repro.fleet import AmbientCache, Deployment, FleetRunner
from repro.lte.transmitter import LteTransmitter

N_TAGS = 8


@pytest.fixture
def transmit_counter(monkeypatch):
    """Count every LteTransmitter.transmit call, without changing it."""
    calls = {"n": 0}
    original = LteTransmitter.transmit

    def counting(self, n_frames=1):
        calls["n"] += 1
        return original(self, n_frames)

    monkeypatch.setattr(LteTransmitter, "transmit", counting)
    return calls


def _deployment():
    return Deployment.ring(N_TAGS, bandwidth_mhz=1.4, n_frames=1)


def test_shared_ambient_transmits_exactly_once(transmit_counter):
    with AmbientCache() as cache:
        report = FleetRunner(
            _deployment(), scheme="tdma", workers=1, seed=0, cache=cache
        ).run(payload_length=2000)
    assert transmit_counter["n"] == 1
    assert report.transmit_invocations == 1
    assert report.n_tags == N_TAGS


def test_shared_ambient_beats_naive_loop_by_3x(transmit_counter):
    deployment = _deployment()

    with AmbientCache() as cache:
        FleetRunner(
            deployment, scheme="tdma", workers=1, seed=0, cache=cache
        ).run(payload_length=2000)
    fleet_calls = transmit_counter["n"]

    transmit_counter["n"] = 0
    for index, placement in enumerate(deployment.tags):
        # The naive loop: one full single-tag simulation per tag, each
        # regenerating the very same ambient capture.
        LScatterSystem(deployment.config_for(placement), rng=index).run(
            payload_length=2000
        )
    naive_calls = transmit_counter["n"]

    assert naive_calls == N_TAGS
    assert fleet_calls * 3 <= naive_calls


def test_fleet_wall_clock_benefits_from_cache(benchmark, transmit_counter):
    """Benchmark the fleet path; the shared capture keeps the per-round
    transmit count at one no matter how many rounds the timer runs."""
    with AmbientCache() as cache:

        def one_round():
            return FleetRunner(
                _deployment(), scheme="tdma", workers=1, seed=0, cache=cache
            ).run(payload_length=2000)

        report = benchmark.pedantic(one_round, rounds=1, iterations=1)
    assert transmit_counter["n"] == 1
    assert report.aggregate_throughput_bps > 0
