"""Figs 23/24: mall distance sweeps for the three backscatter arms."""

from repro.experiments import run_experiment


def test_fig23(benchmark, show_result):
    result = benchmark(run_experiment, "fig23")
    show_result(result)
    first, last = result.rows[0], result.rows[-1]
    # LScatter wins everywhere by ~2 orders of magnitude (paper note).
    for row in result.rows:
        assert row["lscatter_mbps"] > 50 * row["wifi_backscatter_mbps"]
        assert row["lscatter_mbps"] > 100 * row["symbol_lte_mbps"]
    # WiFi backscatter beats symbol-level LTE near, loses far (crossover).
    assert first["wifi_backscatter_mbps"] > first["symbol_lte_mbps"]
    assert last["symbol_lte_mbps"] > last["wifi_backscatter_mbps"]


def test_fig24(benchmark, show_result):
    result = benchmark(run_experiment, "fig24")
    show_result(result)
    by_d = {r["distance_ft"]: r for r in result.rows}
    # Paper: LScatter BER <0.1% within 40 ft, <1% within ~150 ft.
    assert by_d[40]["lscatter_ber"] < 2e-3
    assert by_d[140]["lscatter_ber"] < 2e-2
    # WiFi backscatter's BER blows past the LTE arms at range.
    assert by_d[180]["wifi_backscatter_ber"] > by_d[180]["symbol_lte_ber"]
