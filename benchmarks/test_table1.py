"""Table 1: excitation-signal feature matrix."""

from repro.experiments import run_experiment


def test_table1(benchmark, show_result):
    result = benchmark(run_experiment, "table1")
    show_result(result)
    winners = [
        r["system"]
        for r in result.rows
        if r["ambient"] and r["continuous"] and r["ubiquitous"]
    ]
    assert winners == ["LScatter"]
