"""Ablation: phase-offset elimination on vs off (paper challenge C3).

Without the Eq.-6 derotation, a chip-clock phase offset of phi rotates
every matched-filter output; once |phi| passes pi/2 the slicer inverts
and the link fails completely.  With elimination the BER is flat in phi.
"""

import numpy as np

from repro.bsrx.phase_offset import estimate_path_gain
from repro.utils.rng import make_rng
from benchmarks.conftest import run_once


def _ber_vs_phi(n_chips=4096, seed=0):
    rng = make_rng(seed)
    x = rng.standard_normal(n_chips) + 1j * rng.standard_normal(n_chips)
    bits = rng.integers(0, 2, size=n_chips).astype(np.int8)
    chips = 2.0 * bits - 1.0
    rows = []
    for phi_deg in (0, 30, 60, 90, 120, 150, 180):
        phi = np.deg2rad(phi_deg)
        y = np.exp(1j * phi) * chips * x
        z = y * np.conj(x)
        # OFF: slice the raw products.
        ber_off = np.mean((z.real > 0).astype(np.int8) != bits)
        # ON: estimate g from 64 known pilot chips, derotate, slice.
        pilot = estimate_path_gain(z[:64], chips[:64] * np.abs(x[:64]) ** 2)
        ber_on = np.mean(
            ((np.conj(pilot) * z).real > 0).astype(np.int8) != bits
        )
        rows.append((phi_deg, ber_off, ber_on))
    return rows


def test_phase_offset_ablation(benchmark):
    rows = run_once(benchmark, _ber_vs_phi)
    print("\n# phi_deg  BER(no elimination)  BER(eliminated)")
    for phi, off, on in rows:
        print(f"#   {phi:3d}        {off:.3f}              {on:.5f}")
    by_phi = {phi: (off, on) for phi, off, on in rows}
    assert by_phi[0][0] == 0.0  # aligned clock needs no correction
    assert by_phi[120][0] > 0.4  # uncorrected: slicer inverts
    assert by_phi[180][0] == 1.0  # fully inverted
    for _, (_, on) in by_phi.items():
        assert on < 1e-3  # eliminated: flat in phi
