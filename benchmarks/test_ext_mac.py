"""Extension bench: multi-tag access over one ambient LTE carrier."""

import numpy as np

from repro.mac import SlottedAlohaScheme, TdmaScheme, simulate_contention, two_tag_collision
from benchmarks.conftest import run_once


def _sweep():
    out = {}
    for n in (2, 4, 8, 16):
        powers = {f"tag{i}": -40.0 - 2.0 * i for i in range(n)}
        tdma = simulate_contention(powers, TdmaScheme(), 4000, rng=n)
        aloha = simulate_contention(powers, SlottedAlohaScheme(), 4000, rng=n)
        out[n] = (tdma.aggregate_success_rate, aloha.aggregate_success_rate)
    capture = {adv: two_tag_collision(adv, seed=3).strong_tag_ber for adv in (0, 6, 12)}
    return out, capture


def test_mac_scaling(benchmark):
    rates, capture = run_once(benchmark, _sweep)
    print("\n# n_tags  TDMA agg  ALOHA agg")
    for n, (tdma, aloha) in rates.items():
        print(f"#  {n:4d}    {tdma:.3f}     {aloha:.3f}")
    print("# IQ capture effect:", {k: round(v, 4) for k, v in capture.items()})
    # TDMA keeps the channel fully used at any population.
    assert all(tdma == 1.0 for tdma, _ in rates.values())
    # ALOHA pays the classic contention tax but benefits from capture.
    assert all(0.3 < aloha < 0.75 for _, aloha in rates.values())
    # IQ: equal-power collision destroys; 12 dB advantage captures.
    assert capture[0] > 0.1
    assert capture[12] < 5e-3
