"""§4.8: tag power-consumption table."""

import pytest

from repro.experiments import run_experiment


def test_power(benchmark, show_result):
    result = benchmark(run_experiment, "power")
    show_result(result)
    by_bw = {r["bandwidth_mhz"]: r for r in result.rows}
    # Datasheet anchors the paper cites.
    assert by_bw[1.4]["sync_uw"] == pytest.approx(10.0)
    assert by_bw[20.0]["rf_front_uw"] == pytest.approx(57.0)
    assert by_bw[20.0]["baseband_uw"] == pytest.approx(82.0)
    assert by_bw[1.4]["clock_uw"] == pytest.approx(588.0)
    assert by_bw[20.0]["clock_uw"] == pytest.approx(4500.0)
    # Ring-oscillator clocks keep the whole tag in the ~100-200 uW class.
    assert by_bw[20.0]["total_ring_osc_uw"] < 200.0
