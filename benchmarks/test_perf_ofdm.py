"""Pinned perf benchmark: vectorised OFDM vs the pre-vectorisation loops.

Asserts the combined ``modulate_frame`` + ``demodulate_frame`` speedup on
a 20 MHz frame and writes ``BENCH_PR2.json`` as a side effect, so running
this suite refreshes the perf baseline.

The required speedup defaults to 3.0x (the PR-2 acceptance bar, met on
multi-core hardware where ``scipy.fft``'s ``workers`` fan the batched
rows out).  On starved single-vCPU CI boxes the raw FFT throughput is the
floor and timing noise dominates; override the bar there with the
``REPRO_BENCH_MIN_SPEEDUP`` environment variable rather than weakening
the pinned default.
"""

from __future__ import annotations

import os

from repro.bench import run_bench

#: Acceptance bar for the combined modulate+demodulate speedup.
MIN_COMBINED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))


def test_ofdm_hot_path_speedup():
    results = run_bench(output="BENCH_PR2.json", bandwidth=20.0)
    speedup = results["ofdm"]["speedup"]["combined"]
    assert speedup >= MIN_COMBINED_SPEEDUP, (
        f"combined modulate+demodulate speedup {speedup:.2f}x is below the "
        f"{MIN_COMBINED_SPEEDUP}x bar; see BENCH_PR2.json for the breakdown"
    )


def test_bench_smoke_writes_artifact(tmp_path):
    out = tmp_path / "bench.json"
    results = run_bench(output=str(out), smoke=True)
    assert out.exists()
    # Sanity: vectorised paths must never be slower than the pinned loops,
    # even in smoke mode on a noisy box.
    assert results["ofdm"]["speedup"]["combined"] > 1.0
    assert results["cfo"]["speedup"] > 1.0
