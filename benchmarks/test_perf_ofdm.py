"""Pinned perf benchmark: vectorised OFDM vs the pre-vectorisation loops.

Asserts the combined ``modulate_frame`` + ``demodulate_frame`` speedup on
a 20 MHz frame and writes ``BENCH_PR2.json`` as a side effect, so running
this suite refreshes the perf baseline.

The required speedup defaults to 3.0x (the PR-2 acceptance bar, met on
multi-core hardware where ``scipy.fft``'s ``workers`` fan the batched
rows out).  On starved single-vCPU CI boxes the raw FFT throughput is the
floor and timing noise dominates; override the bar there with the
``REPRO_BENCH_MIN_SPEEDUP`` environment variable rather than weakening
the pinned default.
"""

from __future__ import annotations

import os

from repro.bench import run_bench

#: Acceptance bar for the combined modulate+demodulate speedup.
MIN_COMBINED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Acceptance bar for disabled-mode tracing overhead on the hot path
#: (PR-4: permanent instrumentation must cost < 2 % when tracing is off).
#: Timing jitter on starved CI boxes can exceed the real overhead; the
#: env var loosens the bar there without weakening the pinned default.
MAX_TRACE_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_TRACE_OVERHEAD", "0.02"))


def test_ofdm_hot_path_speedup():
    results = run_bench(output="BENCH_PR2.json", bandwidth=20.0)
    speedup = results["ofdm"]["speedup"]["combined"]
    assert speedup >= MIN_COMBINED_SPEEDUP, (
        f"combined modulate+demodulate speedup {speedup:.2f}x is below the "
        f"{MIN_COMBINED_SPEEDUP}x bar; see BENCH_PR2.json for the breakdown"
    )


def test_disabled_tracing_overhead_on_hot_path():
    """The permanent span() in demodulate_frame must be free when off."""
    import numpy as np

    from repro.bench import _bench_trace_overhead
    from repro.lte.params import LteParams

    params = LteParams.from_bandwidth(20.0)
    rng = np.random.default_rng(0)
    result = _bench_trace_overhead(params, repeats=10, rng=rng)
    overhead = result["overhead_fraction"]
    assert overhead < MAX_TRACE_OVERHEAD, (
        f"disabled-mode tracing overhead {overhead * 100:.2f}% exceeds the "
        f"{MAX_TRACE_OVERHEAD * 100:.0f}% bar on demodulate_frame"
    )


def test_bench_smoke_writes_artifact(tmp_path):
    out = tmp_path / "bench.json"
    results = run_bench(output=str(out), smoke=True)
    assert out.exists()
    # Sanity: vectorised paths must never be slower than the pinned loops,
    # even in smoke mode on a noisy box.
    assert results["ofdm"]["speedup"]["combined"] > 1.0
    assert results["cfo"]["speedup"] > 1.0
    assert results["trace_overhead"]["overhead_fraction"] < MAX_TRACE_OVERHEAD
    # The fleet is timed by wall clock; workers' CPU must show up there
    # (the old process_time() timing reported near-zero for this path).
    assert results["fleet"]["wall_seconds"] > 0.0
    assert results["fleet"]["worker_task_seconds"] > 0.0
