"""Fig. 18: IQ-level throughput across every LTE bandwidth, LoS vs NLoS."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from benchmarks.conftest import run_once


def test_fig18(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig18", n_frames=1)
    show_result(result)
    rows = {r["bandwidth_mhz"]: r for r in result.rows}
    # Paper headline: 13.63 Mbps at 20 MHz, ~800 kbps at 1.4 MHz.
    assert rows[20.0]["los_throughput_mbps"] == pytest.approx(13.9, rel=0.05)
    assert rows[1.4]["los_throughput_mbps"] == pytest.approx(0.835, rel=0.05)
    # Proportional to bandwidth (subcarrier count).
    assert rows[20.0]["los_throughput_mbps"] / rows[5.0][
        "los_throughput_mbps"
    ] == pytest.approx(4.0, rel=0.02)
    # NLoS costs less than 10 % (paper §4.3.2).
    for row in result.rows:
        assert row["nlos_drop_fraction"] < 0.10
