"""Extension bench: basic-timing-unit modulation on an 802.11 carrier.

§6's genericity claim, quantified: 12 Mbps while a packet is on air —
but the ambient carrier's occupancy still gates the effective rate,
which is the paper's core argument for LTE.
"""

import numpy as np

from repro.extensions import OfdmChipReceiver, OfdmChipTag, wifi_layout
from repro.utils.rng import make_rng
from repro.wifi import WifiTransmitter
from benchmarks.conftest import run_once


def _trial(seed=0):
    rng = make_rng(seed)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=400)
    layout = wifi_layout(packet.samples, packet.n_data_symbols)
    tag = OfdmChipTag(layout)
    payload = rng.integers(0, 2, size=tag.capacity_bits()).astype(np.int8)
    hybrid, used = tag.modulate(packet.samples, payload)
    got = OfdmChipReceiver(layout).demodulate(hybrid, packet.samples, used)
    ber = float(np.mean(got != payload[:used]))
    on_air_seconds = layout.n_symbols * 4e-6
    return ber, used, on_air_seconds


def test_wifi_chip_backscatter(benchmark):
    ber, bits, on_air = run_once(benchmark, _trial)
    rate = bits / on_air
    print(f"\n# WiFi chips: {bits} bits in {on_air*1e6:.0f} us on air "
          f"-> {rate/1e6:.1f} Mbps while transmitting, BER {ber:.2e}")
    assert ber < 1e-3
    # ~12 Mbps ceiling while the packet is on air (48 chips / 4 us, minus
    # the preamble symbol).
    assert 10e6 < rate < 12e6
    # Gated by a busy evening's occupancy it still loses to 20 MHz LTE.
    from repro.core.link_budget import LScatterLinkModel

    assert 0.5 * rate < LScatterLinkModel(20.0).raw_bit_rate_bps
