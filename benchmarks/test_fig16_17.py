"""Figs 16/17: smart home over 24 hours."""

import numpy as np

from repro.experiments import run_experiment
from benchmarks.conftest import run_once


def test_fig16(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig16")
    show_result(result, max_rows=6)
    wifi = np.array([r["wifi_bs_kbps_median"] for r in result.rows])
    lscatter = np.array([r["lscatter_mbps_median"] for r in result.rows])
    # WiFi backscatter fluctuates by hours; LScatter is flat and ~400x
    # larger on average (paper: 37 kbps vs 13.63 Mbps = 368x).
    assert wifi.max() > 2 * wifi.min()
    assert np.std(lscatter) / np.mean(lscatter) < 0.02
    ratio = lscatter.mean() * 1e3 / wifi.mean()
    assert 150 < ratio < 900


def test_fig17(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig17")
    show_result(result, max_rows=6)
    assert all(r["lte_occupancy"] == 1.0 for r in result.rows)
    wifi = [r["wifi_occupancy"] for r in result.rows]
    # Evening busier than pre-dawn (paper: high noon/evening, low night).
    assert np.mean(wifi[17:22]) > 2 * np.mean(wifi[1:5])
