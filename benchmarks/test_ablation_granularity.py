"""Ablation: basic-timing-unit modulation vs symbol-level modulation.

The paper's challenge C2: applying WiFi backscatters' symbol-level
technique to LTE yields ~7 kbps, while LScatter's per-unit chips deliver
three orders of magnitude more on the same carrier.
"""

import numpy as np

from repro.baselines.symbol_lte import RAW_BIT_RATE_BPS, SymbolLevelLteTag
from repro.core.link_budget import LScatterLinkModel
from repro.lte import LteTransmitter
from repro.utils.rng import make_rng
from benchmarks.conftest import run_once


def _iq_rates(seed=0):
    """Measure both granularities on the same 1.4 MHz IQ capture."""
    capture = LteTransmitter(1.4, rng=seed).transmit(1)
    params = capture.params

    # Symbol level: how many bits fit in one frame?
    tag = SymbolLevelLteTag(params)
    bits = make_rng(seed).integers(0, 2, size=10_000).astype(np.int8)
    _, used_symbol_level = tag.modulate(capture.samples, bits)

    # Chip level: the schedule's data capacity over the same frame.
    from repro.tag.controller import TagController

    controller = TagController(params, rng=seed)
    schedule = controller.build_schedule(
        controller.genie_timing(0, 0), len(capture.samples), bits
    )
    chip_bits = sum(w.n_chips for w in schedule.windows if w.kind == "data")
    return used_symbol_level / 10e-3, chip_bits / 10e-3


def test_granularity_ablation(benchmark):
    symbol_rate, chip_rate = run_once(benchmark, _iq_rates)
    print(
        f"\n# granularity ablation @1.4 MHz: symbol-level {symbol_rate/1e3:.1f} "
        f"kbps vs basic-timing-unit {chip_rate/1e3:.1f} kbps "
        f"({chip_rate/symbol_rate:.0f}x)"
    )
    # Symbol level lands at its ~7 kbps ceiling (a little under once the
    # sync symbols are avoided).
    assert 0.75 * RAW_BIT_RATE_BPS <= symbol_rate <= RAW_BIT_RATE_BPS
    # Chip level gains two orders of magnitude at 1.4 MHz (three at 20 MHz).
    assert chip_rate > 100 * symbol_rate
    # And the 20 MHz model gives the paper's 3-orders headline.
    assert LScatterLinkModel(20.0).raw_bit_rate_bps > 1000 * RAW_BIT_RATE_BPS
