"""Extension bench: LScatter on 5G NR (paper §6).

Measures chip-backscatter throughput on the NR presets and checks the
scaling the paper predicts: same technique, faster symbols, more chips.
"""

from repro.core.link_budget import LScatterLinkModel
from repro.nr import nr_backscatter_trial
from benchmarks.conftest import run_once


def test_nr_backscatter(benchmark):
    def sweep():
        return {
            preset: nr_backscatter_trial(
                preset, payload_length=500_000, snr_db=35, seed=0
            )
            for preset in ("nr10_mu0", "nr20_mu1", "nr40_mu1")
        }

    results = run_once(benchmark, sweep)
    print("\n# preset      BER        throughput")
    for preset, result in results.items():
        print(
            f"#  {preset:9s} {result.ber:.2e}  {result.throughput_bps/1e6:6.2f} Mbps"
        )
    # All presets demodulate cleanly.
    assert all(r.ber < 2e-3 for r in results.values())
    # mu=1 at 20 MHz outruns 20 MHz LTE; 40 MHz roughly doubles again.
    lte_rate = LScatterLinkModel(20.0).raw_bit_rate_bps
    assert results["nr20_mu1"].throughput_bps > lte_rate
    assert (
        results["nr40_mu1"].throughput_bps
        > 1.8 * results["nr20_mu1"].throughput_bps
    )
