"""Extension bench: tag-side coding vs raw chips at range.

Raw chips maximise rate at close range; at the edge of the link the
Hamming(7,4) code trades 43 % of the rate for an order of magnitude in
BER, pushing the usable range out.
"""

import numpy as np

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.tag.coding import hamming74_coded_ber, repetition_coded_ber
from benchmarks.conftest import run_once


def _goodput_rows():
    model = LScatterLinkModel(20.0, LinkBudget(venue="shopping_mall"))
    rows = []
    for d in (40, 100, 150, 180, 220, 260):
        ber = model.ber(5, d)
        raw = model.raw_bit_rate_bps * (1 - ber)
        hamming = model.raw_bit_rate_bps * (4 / 7) * (1 - hamming74_coded_ber(ber))
        rep3 = model.raw_bit_rate_bps / 3 * (1 - repetition_coded_ber(ber, 3))
        rows.append((d, ber, raw, hamming, rep3))
    return rows


def test_coding_ablation(benchmark):
    rows = run_once(benchmark, _goodput_rows)
    print("\n# d(ft)  chip BER   raw Mbps  hamming Mbps  rep3 Mbps")
    for d, ber, raw, ham, rep in rows:
        print(f"#  {d:4d}  {ber:.2e}  {raw/1e6:7.2f}  {ham/1e6:9.2f}  {rep/1e6:7.2f}")
    by_d = {r[0]: r for r in rows}
    # Close in, raw wins on rate.
    assert by_d[40][2] > by_d[40][3] > by_d[40][4]
    # Coding slashes residual errors everywhere.
    for d, ber, _, _, _ in rows:
        assert hamming74_coded_ber(ber) < ber
    # In the 0.5 % regime (~100 ft) the code buys an order of magnitude.
    mid_ber = by_d[100][1]
    assert hamming74_coded_ber(mid_ber) < 0.15 * mid_ber
