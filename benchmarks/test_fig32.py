"""Fig. 32: impact of backscatter on the original LTE transmission."""

from repro.experiments import run_experiment
from benchmarks.conftest import run_once


def test_fig32(benchmark, show_result):
    result = run_once(
        benchmark, run_experiment, "fig32", n_captures=2, bandwidths=(1.4, 5.0)
    )
    show_result(result)
    for row in result.rows:
        # Negligible impact (paper: the curves coincide).
        assert abs(row["impact_fraction"]) < 0.02
        assert row["lte_mbps_with"] > 0
    # Throughput scales with bandwidth.
    assert result.rows[1]["lte_mbps_without"] > 3 * result.rows[0]["lte_mbps_without"]
