"""Fig. 30: 40 dBm range matrix."""

import pytest

from repro.experiments import run_experiment


def test_fig30(benchmark, show_result):
    result = benchmark(run_experiment, "fig30")
    show_result(result)
    ranges = [r["max_tag_to_ue_ft"] for r in result.rows]
    # Monotone decreasing in eNodeB-to-tag distance.
    assert all(b < a for a, b in zip(ranges, ranges[1:]))
    # Calibrated anchors: 320 ft at 2 ft, ~160 ft at 24 ft.
    assert result.rows[0]["max_tag_to_ue_ft"] == pytest.approx(320, rel=0.25)
    assert result.rows[3]["max_tag_to_ue_ft"] == pytest.approx(160, rel=0.25)
    # The 40 dBm excitation keeps the sync circuit alive at every d1.
    assert all(r["sync_availability"] > 0.99 for r in result.rows)
