"""Extension bench: reliable delivery (ARQ) over the LScatter bit pipe.

Compares stop-and-wait, selective-repeat, and selective-repeat over a
Hamming(7,4)-coded pipe.  The punchline: at chip BERs around 1e-3, frame
losses dominate and FEC+ARQ together deliver ~2x the goodput of ARQ
alone despite the 4/7 code rate.
"""

import numpy as np

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.link import BitErrorChannel, SelectiveRepeatArq, StopAndWaitArq
from repro.tag.coding import hamming74_coded_ber
from repro.utils.rng import make_rng
from benchmarks.conftest import run_once


def _sweep():
    model = LScatterLinkModel(20.0, LinkBudget(venue="shopping_mall"))
    payload = make_rng(0).integers(0, 2, size=100_000).astype(np.int8)
    rows = []
    for d, mtu in ((40, 1024), (120, 512), (180, 128)):
        # The sender shrinks its MTU as the link degrades — at 2 % BER a
        # kilobit frame essentially never survives.
        ber = model.ber(5, d)
        rate = model.predict(5, d).throughput_bps
        _, sw = StopAndWaitArq(mtu_bits=mtu, max_retries=2000).deliver(
            payload, BitErrorChannel(ber, rng=d)
        )
        _, sr = SelectiveRepeatArq(mtu_bits=mtu, window=32, max_rounds=5000).deliver(
            payload, BitErrorChannel(ber, rng=d)
        )
        # FEC under the ARQ: the pipe's residual BER after Hamming(7,4),
        # paid for with the 4/7 code rate.
        coded_ber = float(hamming74_coded_ber(ber))
        _, fec = SelectiveRepeatArq(mtu_bits=mtu, window=32, max_rounds=5000).deliver(
            payload, BitErrorChannel(coded_ber, rng=d)
        )
        rows.append(
            (
                d,
                ber,
                sw.efficiency * rate,
                sr.efficiency * rate,
                fec.efficiency * rate * 4 / 7,
                sw.rounds,
                sr.rounds,
            )
        )
    return rows


def test_arq_goodput(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\n# d(ft)  BER       S&W Mbps  SR Mbps  FEC+SR Mbps  S&W rounds  SR rounds")
    for d, ber, sw, sr, fec, sw_rounds, sr_rounds in rows:
        print(
            f"#  {d:4d}  {ber:.1e}  {sw/1e6:7.2f}  {sr/1e6:6.2f}  {fec/1e6:9.2f}"
            f"   {sw_rounds:8d}  {sr_rounds:8d}"
        )
    by_d = {r[0]: r for r in rows}
    # FEC + ARQ beats plain ARQ at every distance...
    for d, _, sw, sr, fec, _, _ in rows:
        assert fec > sr
    # ...and holds Mbps-class reliable goodput at 40 ft.
    assert by_d[40][4] > 6e6
    # Selective repeat needs far fewer rounds (latency) than stop-and-wait.
    for _, _, _, _, _, sw_rounds, sr_rounds in rows:
        assert sr_rounds < sw_rounds / 3
