"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures via the
experiment registry, measures how long that takes, prints the same
rows/series the paper reports, and asserts the headline *shape* so a
regression in the reproduction fails loudly.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy experiment with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def show_result():
    """Print an ExperimentResult table under ``-s``."""

    def _show(result, max_rows=30):
        print(f"\n# {result.name}: {result.description}")
        lines = result.format_table().splitlines()
        for line in lines[: max_rows + 1]:
            print(line)
        if result.notes:
            print(f"# {result.notes}")

    return _show
