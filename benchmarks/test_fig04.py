"""Fig. 4c: week-long traffic-occupancy CDFs."""

from repro.experiments import run_experiment


def test_fig04(benchmark, show_result):
    result = benchmark(run_experiment, "fig04")
    show_result(result, max_rows=8)
    rows = {r["curve"]: r for r in result.rows}
    # LTE is always occupied; LoRa nearly never; office WiFi < 0.5 for
    # ~80 % of the week (the paper's exact reading of the figure).
    assert rows["lte-home"]["median"] == 1.0
    assert rows["lora-home"]["median"] < 0.05
    assert rows["wifi-office"]["cdf@0.50"] > 0.75
    assert rows["wifi-office"]["cdf@0.70"] > 0.9
