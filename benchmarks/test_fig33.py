"""Fig. 33b: continuous-authentication update rate vs distance."""

import pytest

from repro.experiments import run_experiment


def test_fig33(benchmark, show_result):
    result = benchmark(run_experiment, "fig33")
    show_result(result)
    rates = [r["update_rate_sps"] for r in result.rows]
    # Paper anchors: 136 sps at 2 ft, 5 sps at 40 ft.
    assert rates[0] == pytest.approx(136, rel=0.1)
    assert rates[-1] == pytest.approx(5, abs=8)
    assert all(b < a for a, b in zip(rates, rates[1:]))
