"""Fig. 12: constellation rotation by the phase offset and its removal."""

from repro.experiments import run_experiment


def test_fig12(benchmark, show_result):
    result = benchmark(run_experiment, "fig12")
    show_result(result)
    rows = {r["constellation"]: r for r in result.rows}
    assert rows["phase-offset"]["mean_rotation_deg"] == 35.0
    assert abs(rows["eliminated"]["mean_rotation_deg"]) < 2.0
    assert rows["eliminated"]["decision_errors"] == 0
