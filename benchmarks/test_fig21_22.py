"""Figs 21/22: shopping mall, 10 am - 9 pm."""

import numpy as np

from repro.experiments import run_experiment
from benchmarks.conftest import run_once


def test_fig21(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig21")
    show_result(result, max_rows=12)
    hours = [r["hour"] for r in result.rows]
    assert hours == list(range(10, 22))
    lscatter = np.array([r["lscatter_mbps_median"] for r in result.rows])
    wifi = np.array([r["wifi_bs_kbps_median"] for r in result.rows])
    # Flat LScatter boxes; WiFi peaks around 8 pm with median ~55 kbps.
    assert np.ptp(lscatter) / lscatter.mean() < 0.02
    evening = wifi[hours.index(20)]
    assert evening == wifi.max() or evening > 0.85 * wifi.max()
    assert 30 < evening < 90


def test_fig22(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig22")
    show_result(result, max_rows=12)
    assert all(r["lte_occupancy"] == 1.0 for r in result.rows)
    by_hour = {r["hour"]: r["wifi_occupancy"] for r in result.rows}
    assert 0.35 < by_hour[20] < 0.6  # ~0.5 at 8 pm in the paper
