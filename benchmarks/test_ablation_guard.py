"""Ablation: the 38.8 % guard vs tag sync error (paper §3.2.3).

Chips are centred in the useful symbol with (FFT - chips)/2 samples of
slack either side.  Sync errors inside the slack are absorbed by the
preamble search; once the error pushes chips into the CP/next symbol the
link degrades — which is exactly why the paper needs only *coarse* sync.
"""

import numpy as np

from repro.core import LScatterSystem, SystemConfig
from benchmarks.conftest import run_once


def _ber_vs_sync_error(seed=3):
    guard = (128 - 72) // 2  # 28 samples at 1.4 MHz
    rows = []
    for error in (0, 10, 20, 28, 40, 56):
        config = SystemConfig(
            bandwidth_mhz=1.4,
            n_frames=2,
            enb_to_tag_ft=3.0,
            tag_to_ue_ft=3.0,
            reference_mode="genie",
            sync_error_samples=error,
        )
        report = LScatterSystem(config, rng=seed).run(payload_length=50_000)
        rows.append((error, report.ber))
    return guard, rows


def test_guard_ablation(benchmark):
    guard, rows = run_once(benchmark, _ber_vs_sync_error)
    print(f"\n# guard = {guard} samples; sync_error -> BER:")
    for error, ber in rows:
        print(f"#   {error:3d} samples: {ber:.4f}")
    by_error = dict(rows)
    # Inside the guard: clean.
    assert by_error[0] < 1e-3
    assert by_error[20] < 1e-2
    # Far beyond the guard: the link collapses.
    assert by_error[56] > 10 * max(by_error[0], 1e-5)
    assert by_error[56] > 0.05
