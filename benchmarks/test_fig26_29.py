"""Figs 26-29: outdoor experiments at 10 dBm."""

import numpy as np

from repro.experiments import run_experiment
from benchmarks.conftest import run_once


def test_fig26(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig26")
    show_result(result, max_rows=6)
    wifi = np.array([r["wifi_bs_kbps_median"] for r in result.rows])
    # Outdoor WiFi is thin: average ~17 kbps in the paper.
    assert 5 < wifi.mean() < 35
    lscatter = np.array([r["lscatter_mbps_median"] for r in result.rows])
    assert np.std(lscatter) / np.mean(lscatter) < 0.02


def test_fig27(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig27")
    show_result(result, max_rows=6)
    wifi = np.array([r["wifi_occupancy"] for r in result.rows])
    # Sparser than the smart home (paper: less coverage outdoors).
    assert wifi.mean() < 0.25
    assert all(r["lte_occupancy"] == 1.0 for r in result.rows)


def test_fig28(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig28")
    show_result(result)
    by_d = {r["distance_ft"]: r for r in result.rows}
    # Open space: higher throughput at 160 ft than the mall had.
    assert by_d[160]["lscatter_mbps"] > 13.0
    # WiFi backscatter still collapses in the low hundreds of feet.
    assert by_d[250]["wifi_backscatter_mbps"] < 0.05 * by_d[20]["wifi_backscatter_mbps"]


def test_fig29(benchmark, show_result):
    result = run_once(benchmark, run_experiment, "fig29")
    show_result(result)
    by_d = {r["distance_ft"]: r for r in result.rows}
    # Paper: LTE arms stay under 1% out to 200 ft.
    assert by_d[200]["lscatter_ber"] < 1e-2
    assert by_d[200]["symbol_lte_ber"] < 1e-2
    # WiFi arm rises sharply past ~120 ft.
    assert by_d[200]["wifi_backscatter_ber"] > 2.5 * by_d[120]["wifi_backscatter_ber"]
