"""Pinned perf benchmark: default-substrate dispatch must be free.

The PR-10 pluggable-substrate refactor routes every pipeline stage
through a registry-dispatched object.  For the default chip mode each
hook just forwards to the pre-refactor stage object, so the added cost —
one registry lookup plus one substrate construction with its capability
guards — must stay under 2 % of the direct demod time, the same bar the
PR-4 tracing instrumentation is held to.  On starved CI boxes the env
var loosens the bar without weakening the pinned default.
"""

from __future__ import annotations

import os

#: Acceptance bar for chip-substrate dispatch on the demod hot path.
MAX_SUBSTRATE_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_SUBSTRATE_OVERHEAD", "0.02")
)


def test_default_substrate_dispatch_overhead():
    from repro.bench import _bench_substrate

    result = _bench_substrate(repeats=5)
    assert result["equal_results"], (
        "substrate-dispatched demod must be bit-identical to the direct "
        "pre-refactor call before its cost is even worth measuring"
    )
    overhead = result["overhead_fraction"]
    assert overhead < MAX_SUBSTRATE_OVERHEAD, (
        f"chip-substrate dispatch overhead {overhead * 100:.2f}% exceeds "
        f"the {MAX_SUBSTRATE_OVERHEAD * 100:.0f}% bar vs the direct demod "
        "call; see the 'substrate' section of the bench artifact"
    )
