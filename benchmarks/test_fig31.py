"""Fig. 31: sync-error CDF from the analog circuit simulation."""

import numpy as np

from repro.experiments.fig31_sync_accuracy import measure_sync_errors
from benchmarks.conftest import run_once


def test_fig31(benchmark):
    errors = run_once(benchmark, measure_sync_errors, seed=0, n_frames=30)
    errors_us = np.asarray(errors) * 1e6
    print(
        f"\n# fig31: {len(errors_us)} sync events, mean "
        f"{errors_us.mean():.1f} us, std {errors_us.std():.1f} us"
    )
    # Paper: ~90 % of errors within 30-40 us, roughly normal.  Our
    # tolerance band is [20, 50] us to absorb the different testbed.
    assert len(errors_us) >= 40  # almost every PSS event detected
    fraction = np.mean((errors_us >= 20) & (errors_us <= 50))
    assert fraction > 0.9
    assert 25 < errors_us.mean() < 45
    assert errors_us.std() < 10
