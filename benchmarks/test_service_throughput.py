"""Service overhead benchmark: the queue/worker substrate stays cheap.

The service wraps every tag-session in queue admission, a heap pop, two
``perf_counter`` pairs and a result-map handoff.  That overhead must
stay far below the cost of a real session (~100 ms of DSP), or the
always-on path would quietly tax the fleet.  This suite pins two
bounds: raw per-session service overhead with no-op sessions, and the
end-to-end service-vs-batch wall-clock ratio for a real cohort.

Bounds are deliberately generous (CI machines are noisy); the point is
to catch an accidental serialisation — a lock held across a session, a
poll interval in the hot path — not to police microseconds.
"""

from __future__ import annotations

import time

from repro.fleet import Deployment, FleetRunner
from repro.service import FleetService

N_NOOP_SESSIONS = 400


def _noop_session(task):
    return 0.0, task


def test_service_overhead_per_noop_session_under_5ms():
    with FleetService(workers=2, max_queue_depth=N_NOOP_SESSIONS) as service:
        start = time.perf_counter()
        tickets = [
            service.submit(_noop_session, i) for i in range(N_NOOP_SESSIONS)
        ]
        for ticket in tickets:
            service.result(ticket, timeout=30.0)
        elapsed = time.perf_counter() - start
    per_session = elapsed / N_NOOP_SESSIONS
    print(
        f"\nservice overhead: {N_NOOP_SESSIONS} no-op sessions in "
        f"{elapsed * 1e3:.1f} ms ({per_session * 1e6:.0f} us/session)"
    )
    assert per_session < 0.005


def test_service_fleet_wall_clock_close_to_batch():
    deployment = Deployment.ring(4, bandwidth_mhz=1.4, n_frames=2)

    start = time.perf_counter()
    with FleetRunner(deployment, scheme="tdma", seed=0) as runner:
        batch = runner.run(payload_length=2000)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with FleetService(workers=1, max_queue_depth=8) as service:
        with FleetRunner(deployment, scheme="tdma", seed=0) as runner:
            ticket = service.submit_fleet(runner, payload_length=2000)
            report = service.fleet_result(ticket)
    service_seconds = time.perf_counter() - start

    print(
        f"\nbatch {batch_seconds:.2f} s vs service {service_seconds:.2f} s "
        f"({service_seconds / batch_seconds:.2f}x)"
    )
    assert report.n_tags == batch.n_tags
    # One worker, same sessions: the substrate may cost polling slack but
    # never multiples of the work itself.
    assert service_seconds < batch_seconds * 3 + 2.0
