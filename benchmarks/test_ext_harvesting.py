"""Extension bench: RF harvesting from the continuous LTE carrier."""

from repro.extensions import HarvesterModel
from benchmarks.conftest import run_once


def test_harvesting(benchmark):
    def sweep():
        model = HarvesterModel()
        return {d: model.report(d) for d in (1, 2, 3, 5, 10, 20)}

    reports = run_once(benchmark, sweep)
    print("\n# d(ft)  incident dBm  harvested uW  duty cycle")
    for d, r in reports.items():
        print(
            f"#  {d:4d}  {r.incident_dbm:10.1f}  {r.harvested_w*1e6:10.2f}  "
            f"{r.duty_cycle:8.3f}"
        )
    # Battery-free operation within arm's reach of the excitation source.
    assert reports[1].self_sustaining
    assert reports[2].self_sustaining
    # Duty cycle decays monotonically with distance.
    duties = [reports[d].duty_cycle for d in (1, 2, 3, 5, 10, 20)]
    assert all(b <= a for a, b in zip(duties, duties[1:]))
    assert duties[-1] < 0.01
