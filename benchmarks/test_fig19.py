"""Fig. 19: throughput matrix over the two distances."""

from repro.experiments import run_experiment


def test_fig19(benchmark, show_result):
    result = benchmark(run_experiment, "fig19")
    show_result(result)
    rows = {r["enb_to_tag_ft"]: r for r in result.rows}
    # Within 15 ft of the eNodeB the link delivers 4-13 Mbps everywhere.
    for d1 in (1, 5, 10, 15):
        for d2 in (1, 5, 10, 15, 20, 25):
            assert 4.0 <= rows[d1][f"ue@{d2}ft_mbps"] <= 14.0
    # Beyond that it drops quickly (availability collapse).
    assert rows[25]["ue@25ft_mbps"] < 0.5 * rows[15]["ue@25ft_mbps"]
