"""Unit tests for the bench regression gate (`repro bench --check`)."""

from repro.bench import GATE_METRICS, compare_to_baseline, format_check

BASE = {
    "ofdm": {"speedup": {"modulate": 2.0, "demodulate": 2.0, "combined": 2.0}},
    "cfo": {"speedup": 1.8},
    "sequence_cache": {"speedup": 1000.0},
    "trace_overhead": {"overhead_fraction": 0.001},
    "network": {"cache_hit_ratio": 0.5},
    "bsrx_batch": {"speedup": 3.0},
    "streaming": {"memory_ratio": 4.0},
    "substrate": {"overhead_fraction": 0.001},
}


def _with(path, value):
    import copy

    current = copy.deepcopy(BASE)
    node = current
    parts = path.split(".")
    for part in parts[:-1]:
        node = node[part]
    node[parts[-1]] = value
    return current


def test_identical_results_pass():
    report = compare_to_baseline(BASE, BASE, tolerance=0.25)
    assert report["passed"]
    assert report["regressions"] == []
    assert len(report["metrics"]) == len(GATE_METRICS)


def test_within_tolerance_passes():
    report = compare_to_baseline(
        _with("ofdm.speedup.combined", 2.0 * 0.8), BASE, tolerance=0.25
    )
    assert report["passed"]


def test_higher_metric_regression_fails():
    report = compare_to_baseline(
        _with("ofdm.speedup.combined", 2.0 * 0.5), BASE, tolerance=0.25
    )
    assert not report["passed"]
    assert report["regressions"] == ["ofdm.speedup.combined"]


def test_log_scale_metric_uses_order_of_magnitude():
    # 1000x -> 400x is a 13% log10 drop: inside a 25% tolerance even
    # though the raw ratio collapsed by 60%.
    report = compare_to_baseline(
        _with("sequence_cache.speedup", 400.0), BASE, tolerance=0.25
    )
    assert report["passed"]
    # 1000x -> 2x (log10 falls 3 -> 0.3) is a real cache regression.
    report = compare_to_baseline(
        _with("sequence_cache.speedup", 2.0), BASE, tolerance=0.25
    )
    assert report["regressions"] == ["sequence_cache.speedup"]


def test_lower_metric_regression_and_absolute_slack():
    # Near-zero overhead: absolute slack keeps noise from tripping the
    # relative gate.
    report = compare_to_baseline(
        _with("trace_overhead.overhead_fraction", 0.004), BASE, tolerance=0.25
    )
    assert report["passed"]
    report = compare_to_baseline(
        _with("trace_overhead.overhead_fraction", 0.05), BASE, tolerance=0.25
    )
    assert report["regressions"] == ["trace_overhead.overhead_fraction"]


def test_missing_metric_is_reported_not_gated():
    import copy

    old_baseline = copy.deepcopy(BASE)
    del old_baseline["sequence_cache"]
    report = compare_to_baseline(BASE, old_baseline, tolerance=0.25)
    assert report["passed"]
    missing = [m for m in report["metrics"] if m["status"] == "missing"]
    assert [m["metric"] for m in missing] == ["sequence_cache.speedup"]
    assert "missing (not gated)" in format_check(report)


def test_metric_missing_from_current_run_fails_loudly():
    # The inverse of the old-baseline case: the baseline gates a metric
    # the new run never produced (dropped section, renamed key).  That
    # must fail the gate and name the metric, not pass by omission.
    import copy

    current = copy.deepcopy(BASE)
    del current["streaming"]
    report = compare_to_baseline(current, BASE, tolerance=0.25)
    assert not report["passed"]
    assert report["regressions"] == ["streaming.memory_ratio"]
    text = format_check(report)
    assert "MISSING from current run" in text
    assert "bench gate: FAILED (streaming.memory_ratio)" in text


def test_network_hit_ratio_gated():
    # The multi-cell ambient cache falling from 50% to 10% hits means
    # captures are being regenerated per tag again.
    report = compare_to_baseline(
        _with("network.cache_hit_ratio", 0.1), BASE, tolerance=0.25
    )
    assert report["regressions"] == ["network.cache_hit_ratio"]
    assert compare_to_baseline(
        _with("network.cache_hit_ratio", 0.45), BASE, tolerance=0.25
    )["passed"]


def test_format_check_flags_regressions():
    report = compare_to_baseline(
        _with("cfo.speedup", 0.1), BASE, tolerance=0.25
    )
    text = format_check(report)
    assert "cfo.speedup" in text
    assert "REGRESSED" in text
    assert "bench gate: FAILED (cfo.speedup)" in text


def test_substrate_dispatch_overhead_gated():
    # Registry dispatch growing from 0.1% to 5% of the direct demod time
    # means the substrate layer picked up real per-call work.
    report = compare_to_baseline(
        _with("substrate.overhead_fraction", 0.05), BASE, tolerance=0.25
    )
    assert report["regressions"] == ["substrate.overhead_fraction"]
    assert compare_to_baseline(
        _with("substrate.overhead_fraction", 0.004), BASE, tolerance=0.25
    )["passed"]


def test_format_check_names_the_baseline_file():
    # A failing CI log must say WHICH committed baseline the run
    # regressed against, not just which metric.
    report = compare_to_baseline(
        _with("cfo.speedup", 0.1), BASE, tolerance=0.25
    )
    text = format_check(report, baseline_path="BENCH_PR7.json")
    assert "bench gate vs BENCH_PR7.json" in text
    assert "bench gate: FAILED vs BENCH_PR7.json (cfo.speedup)" in text
    # Without a path the wording stays as before.
    bare = format_check(report)
    assert "bench gate: FAILED (cfo.speedup)" in bare


def test_zero_tolerance_requires_no_worse():
    report = compare_to_baseline(
        _with("ofdm.speedup.modulate", 1.999), BASE, tolerance=0.0
    )
    assert report["regressions"] == ["ofdm.speedup.modulate"]
    assert compare_to_baseline(BASE, BASE, tolerance=0.0)["passed"]
