"""Ambient-traffic model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic import (
    ContinuousTraffic,
    OnOffTraffic,
    hourly_occupancy,
    occupancy_cdf,
    occupancy_profile,
    weekly_occupancy_samples,
)
from repro.utils.rng import make_rng


def test_onoff_converges_to_target_occupancy():
    model = OnOffTraffic(occupancy=0.3, mean_busy_s=2e-3, rng=make_rng(0))
    assert model.occupancy_ratio(200.0) == pytest.approx(0.3, abs=0.03)


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.05, max_value=0.9))
def test_onoff_occupancy_property(target):
    model = OnOffTraffic(occupancy=target, mean_busy_s=5e-3, rng=make_rng(1))
    assert model.occupancy_ratio(100.0) == pytest.approx(target, abs=0.08)


def test_onoff_intervals_ordered_and_bounded():
    model = OnOffTraffic(occupancy=0.5, rng=make_rng(2))
    intervals = model.intervals(1.0)
    for a, b in zip(intervals, intervals[1:]):
        assert a.end <= b.start
    assert all(0.0 <= iv.start < iv.end <= 1.0 for iv in intervals)


def test_zero_occupancy_no_intervals():
    model = OnOffTraffic(occupancy=0.0, rng=make_rng(3))
    assert model.intervals(10.0) == []
    assert model.occupancy_ratio(10.0) == 0.0


def test_invalid_occupancy_rejected():
    with pytest.raises(ValueError):
        OnOffTraffic(occupancy=1.0)


def test_presence_mask_matches_ratio():
    model = OnOffTraffic(occupancy=0.4, rng=make_rng(4))
    intervals = model.intervals(50.0)
    mask = model.presence_mask(50.0, 1e-3, intervals)
    assert mask.mean() == pytest.approx(
        model.occupancy_ratio(50.0, intervals), abs=0.01
    )


def test_continuous_traffic_always_on():
    model = ContinuousTraffic()
    assert model.occupancy_ratio(5.0) == 1.0
    assert model.presence_mask(1.0).all()


def test_lte_profile_is_always_one():
    assert np.all(occupancy_profile("lte", "home") == 1.0)
    assert hourly_occupancy("lte", "mall", 3) == 1.0


def test_lora_profile_sparse():
    assert np.all(occupancy_profile("lora", "office") < 0.05)


def test_wifi_home_evening_peak():
    profile = occupancy_profile("wifi", "home")
    assert profile[19] > profile[3]  # evening > night


def test_wifi_office_daytime_peak():
    profile = occupancy_profile("wifi", "office")
    assert profile[13] > profile[20]


def test_unknown_venue_or_tech_rejected():
    with pytest.raises(ValueError):
        occupancy_profile("wifi", "spaceship")
    with pytest.raises(ValueError):
        occupancy_profile("zigbee", "home")


def test_weekly_samples_shape():
    samples = weekly_occupancy_samples("wifi", "home", rng=0, samples_per_hour=2)
    assert len(samples) == 7 * 24 * 2
    assert np.all((samples >= 0) & (samples <= 1))


def test_paper_office_cdf_claim():
    """Fig. 4c: office WiFi < 0.5 for ~80% of the time, < 0.7 for ~90%."""
    samples = weekly_occupancy_samples("wifi", "office", rng=1)
    assert np.mean(samples < 0.5) > 0.75
    assert np.mean(samples < 0.7) > 0.9


def test_cdf_monotone_and_normalised():
    samples = weekly_occupancy_samples("wifi", "mall", rng=2)
    grid, cdf = occupancy_cdf(samples)
    assert np.all(np.diff(cdf) >= 0)
    assert cdf[-1] == pytest.approx(1.0)
