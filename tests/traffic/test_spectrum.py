"""Band-capture / spectrogram tests (Fig. 4a/4b machinery)."""

import numpy as np
import pytest

from repro.traffic.spectrum import (
    lte_band_capture,
    occupancy_from_spectrogram,
    spectrogram,
    wifi_band_capture,
)


@pytest.fixture(scope="module")
def wifi():
    return wifi_band_capture(duration_s=15e-3, occupancy=0.35, rng=1)


@pytest.fixture(scope="module")
def lte():
    return lte_band_capture(duration_s=15e-3, rng=1)


def test_capture_durations(wifi, lte):
    assert wifi.duration_seconds == pytest.approx(15e-3, rel=1e-6)
    assert lte.duration_seconds == pytest.approx(15e-3, rel=1e-6)


def test_wifi_band_has_silence(wifi):
    power = np.abs(wifi.samples) ** 2
    # A meaningful fraction of samples are silent between bursts.
    assert np.mean(power < 1e-9) > 0.2


def test_lte_band_never_silent(lte):
    # Per-millisecond energy never drops to zero.
    fs = lte.sample_rate_hz
    chunk = int(1e-3 * fs)
    n = len(lte.samples) // chunk
    energies = [
        np.mean(np.abs(lte.samples[i * chunk : (i + 1) * chunk]) ** 2)
        for i in range(n)
    ]
    assert min(energies) > 0.1 * max(energies)


def test_spectrogram_shapes(wifi):
    times, freqs, mag = spectrogram(wifi, fft_size=128)
    assert mag.shape == (len(times), 128)
    assert len(freqs) == 128
    assert times[0] < times[-1] <= wifi.duration_seconds


def test_measured_occupancy_ordering(wifi, lte):
    _, _, wifi_mag = spectrogram(wifi)
    _, _, lte_mag = spectrogram(lte)
    wifi_occ = occupancy_from_spectrogram(wifi_mag)
    lte_occ = occupancy_from_spectrogram(lte_mag)
    assert lte_occ == 1.0
    assert 0.15 < wifi_occ < 0.75
    assert lte_occ > wifi_occ


def test_occupancy_tracks_traffic_parameter():
    light = wifi_band_capture(duration_s=20e-3, occupancy=0.1, rng=2)
    heavy = wifi_band_capture(duration_s=20e-3, occupancy=0.6, rng=2)
    _, _, light_mag = spectrogram(light)
    _, _, heavy_mag = spectrogram(heavy)
    assert occupancy_from_spectrogram(heavy_mag) > occupancy_from_spectrogram(
        light_mag
    )
