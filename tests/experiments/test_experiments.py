"""Experiment-harness tests: registry plumbing and headline shapes."""

import numpy as np
import pytest

from repro.experiments import REGISTRY, get_experiment, run_experiment


def test_registry_covers_every_table_and_figure():
    expected = {
        "table1", "fig04", "fig08", "fig12", "fig16", "fig17", "fig18",
        "fig19", "fig21", "fig22", "fig23", "fig24", "fig26", "fig27",
        "fig28", "fig29", "fig30", "fig31", "fig32", "fig33", "power",
        "fleetn", "netgrid", "stressgrid", "subgrid",
    }
    assert set(REGISTRY) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_table1_lscatter_unique_winner():
    result = run_experiment("table1")
    winners = [
        r["system"]
        for r in result.rows
        if r["ambient"] and r["continuous"] and r["ubiquitous"]
    ]
    assert winners == ["LScatter"]
    assert len(result.rows) == 16


def test_fig04_lte_always_occupied():
    result = run_experiment("fig04")
    lte = next(r for r in result.rows if r["curve"] == "lte-home")
    assert lte["median"] == 1.0
    assert lte["cdf@0.95"] == 0.0  # nothing below 1.0
    lora = next(r for r in result.rows if r["curve"] == "lora-home")
    assert lora["median"] < 0.05


def test_fig12_phase_offset_eliminated():
    result = run_experiment("fig12")
    rows = {r["constellation"]: r for r in result.rows}
    assert abs(rows["eliminated"]["mean_rotation_deg"]) < 2.0
    assert rows["eliminated"]["decision_errors"] == 0
    assert rows["phase-offset"]["mean_rotation_deg"] == pytest.approx(35.0)


def test_fig19_matrix_shape():
    result = run_experiment("fig19")
    # Availability collapses with eNodeB distance...
    avail = [r["sync_availability"] for r in result.rows]
    assert all(b <= a + 1e-9 for a, b in zip(avail, avail[1:]))
    # ...and close-range throughput approaches the paper's headline.
    assert result.rows[0]["ue@1ft_mbps"] == pytest.approx(13.9, rel=0.05)


def test_fig23_ordering_and_crossover():
    result = run_experiment("fig23")
    for row in result.rows:
        assert row["lscatter_mbps"] > row["wifi_backscatter_mbps"]
        assert row["lscatter_mbps"] > row["symbol_lte_mbps"]
    first, last = result.rows[0], result.rows[-1]
    assert first["wifi_backscatter_mbps"] > first["symbol_lte_mbps"]
    assert last["symbol_lte_mbps"] > last["wifi_backscatter_mbps"]


def test_fig24_ber_bands():
    result = run_experiment("fig24")
    by_d = {r["distance_ft"]: r for r in result.rows}
    assert by_d[40]["lscatter_ber"] < 2e-3
    assert by_d[140]["lscatter_ber"] < 2e-2


def test_fig30_monotone_with_anchor():
    result = run_experiment("fig30")
    ranges = [r["max_tag_to_ue_ft"] for r in result.rows]
    assert all(b < a for a, b in zip(ranges, ranges[1:]))
    assert result.rows[0]["max_tag_to_ue_ft"] == pytest.approx(320, rel=0.25)


def test_fig33_update_rates():
    result = run_experiment("fig33")
    rates = [r["update_rate_sps"] for r in result.rows]
    assert rates[0] > 120 and rates[-1] < 15
    assert all(b < a for a, b in zip(rates, rates[1:]))


def test_power_totals():
    result = run_experiment("power")
    by_bw = {r["bandwidth_mhz"]: r for r in result.rows}
    # §4.8 anchors: ~4.65 mW at 20 MHz COTS, ~0.68 mW at 1.4 MHz.
    assert by_bw[20.0]["total_uw"] == pytest.approx(4649, rel=0.01)
    assert by_bw[1.4]["total_uw"] == pytest.approx(684, rel=0.01)
    assert by_bw[20.0]["total_ring_osc_uw"] < 200


def test_format_table_renders():
    result = run_experiment("table1")
    text = result.format_table()
    assert "LScatter" in text
    assert text.count("\n") == len(result.rows)
