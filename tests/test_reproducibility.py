"""Determinism guarantees: same seed, same science."""

import numpy as np

from repro.core import LScatterSystem, SystemConfig
from repro.experiments import run_experiment


def _run(seed):
    config = SystemConfig(bandwidth_mhz=1.4, n_frames=1, reference_mode="genie")
    return LScatterSystem(config, rng=seed).run(payload_length=10_000)


def test_system_fully_deterministic():
    a = _run(123)
    b = _run(123)
    assert a.n_bits == b.n_bits
    assert a.n_errors == b.n_errors
    assert a.sync_error_us == b.sync_error_us


def test_different_seeds_differ():
    a = _run(1)
    b = _run(2)
    # Same schedule capacity, different realisations.
    assert a.n_bits == b.n_bits
    assert a.sync_error_us != b.sync_error_us or a.n_errors != b.n_errors


def test_experiments_deterministic():
    for experiment_id in ("fig04", "fig19", "fig23", "fig33"):
        a = run_experiment(experiment_id, seed=5)
        b = run_experiment(experiment_id, seed=5)
        assert a.rows == b.rows, experiment_id


def test_capture_bitstreams_deterministic():
    from repro.lte import LteTransmitter

    a = LteTransmitter(1.4, rng=9).transmit(1).samples
    b = LteTransmitter(1.4, rng=9).transmit(1).samples
    assert np.array_equal(a, b)


def test_wifi_and_lora_deterministic():
    from repro.lora import LoraTransmitter
    from repro.wifi import WifiTransmitter

    a = WifiTransmitter(12.0, rng=4).transmit(psdu_bytes=50).samples
    b = WifiTransmitter(12.0, rng=4).transmit(psdu_bytes=50).samples
    assert np.array_equal(a, b)
    c = LoraTransmitter(rng=4).transmit(payload_bytes=8).samples
    d = LoraTransmitter(rng=4).transmit(payload_bytes=8).samples
    assert np.array_equal(c, d)
