"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_command(capsys):
    code = main(
        [
            "simulate",
            "--bandwidth",
            "1.4",
            "--frames",
            "1",
            "--payload",
            "2000",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "throughput" in out
    assert "BER" in out


def test_survey_command(capsys):
    assert main(["survey", "--venue", "office"]) == 0
    out = capsys.readouterr().out
    assert "lte" in out and "wifi" in out and "lora" in out


def test_experiment_list(capsys):
    assert main(["experiment"]) == 0
    out = capsys.readouterr().out
    assert "fig23" in out and "power" in out


def test_experiment_runs_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "LScatter" in capsys.readouterr().out


def test_experiment_seed_zero_is_forwarded(monkeypatch):
    """An explicit --seed 0 must reach the experiment runner (not be
    dropped by a truthiness check)."""
    import repro.experiments.__main__ as experiments_main

    seen = {}

    def fake_main(argv):
        seen["argv"] = argv
        return 0

    monkeypatch.setattr(experiments_main, "main", fake_main)
    assert main(["experiment", "table1", "--seed", "0"]) == 0
    assert seen["argv"] == ["table1", "--seed", "0"]


def test_experiment_default_seed_omitted(monkeypatch):
    """Without --seed, the experiment's own default seed applies."""
    import repro.experiments.__main__ as experiments_main

    seen = {}

    def fake_main(argv):
        seen["argv"] = argv
        return 0

    monkeypatch.setattr(experiments_main, "main", fake_main)
    assert main(["experiment", "table1"]) == 0
    assert seen["argv"] == ["table1"]


def test_fleet_command(capsys):
    code = main(
        [
            "fleet",
            "--tags",
            "2",
            "--scheme",
            "tdma",
            "--seed",
            "0",
            "--frames",
            "2",
            "--payload",
            "2000",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "FleetReport" in out
    assert "tag00" in out and "tag01" in out
    assert "aggregate" in out


def test_bench_command_writes_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "bench.json"
    code = main(
        [
            "bench",
            "--smoke",
            "--bandwidth",
            "1.4",
            "--repeats",
            "2",
            "--output",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "modulate_frame" in out and "combined" in out
    results = json.loads(out_path.read_text())
    assert results["mode"] == "smoke"
    assert results["ofdm"]["speedup"]["combined"] > 0
    assert "cache_stats" in results


def test_fleet_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fleet", "--scheme", "csma"])


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["fleet", "--tags", "0"], "--tags must be >= 1"),
        (["fleet", "--workers", "0"], "--workers must be >= 1"),
        (["fleet", "--frames", "-1"], "--frames must be >= 1"),
        (["chaos", "--max-severity", "1.5"], "--max-severity must be in [0, 1]"),
        (["chaos", "--kinds", "dropout,gremlins"], "unknown chaos kind"),
        (["stress", "--max-intensity", "1.5"], "--max-intensity must be in [0, 1]"),
        (["stress", "--scenarios", "sweep-jammer,gremlins"], "unknown stress scenario"),
    ],
)
def test_argument_validation_is_one_clean_line(capsys, argv, fragment):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert err.startswith("repro: error:")
    assert err.count("\n") == 1  # one line, no traceback


def test_chaos_command_smoke(tmp_path, capsys):
    import json

    out_path = tmp_path / "chaos.json"
    code = main(
        [
            "chaos",
            "--smoke",
            "--kinds",
            "dropout",
            "--no-fleet",
            "--output",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no-op contract OK" in out
    assert "PASSED" in out
    report = json.loads(out_path.read_text())
    assert report["passed"] is True
    assert report["sweeps"][0]["kind"] == "dropout"


@pytest.mark.parametrize("command", ["chaos", "stress"])
def test_suite_commands_refuse_to_overwrite_without_force(
    tmp_path, capsys, command
):
    out_path = tmp_path / f"{command}.json"
    out_path.write_text("{}")
    code = main([command, "--smoke", "--output", str(out_path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "already exists" in err
    assert "--force" in err
    assert out_path.read_text() == "{}"  # refused before running anything


def test_stress_command_smoke(tmp_path, capsys):
    import json

    out_path = tmp_path / "stress.json"
    code = main(
        [
            "stress",
            "--smoke",
            "--scenarios",
            "sweep-jammer",
            "--output",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no-op contracts OK" in out
    assert "monotone" in out
    assert "PASSED" in out
    report = json.loads(out_path.read_text())
    assert report["passed"] is True
    assert report["sweeps"][0]["scenario"] == "sweep-jammer"


@pytest.fixture()
def _clean_obs_state():
    from repro.obs import metrics, trace

    yield
    trace.disable()
    trace.reset()
    metrics.reset_metrics()


def test_trace_command_writes_chrome_json(tmp_path, capsys, _clean_obs_state):
    import json

    out_path = tmp_path / "trace.json"
    code = main(["trace", "--output", str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "trace.probe" in out
    assert "counters:" in out
    assert f"wrote {out_path}" in out
    payload = json.loads(out_path.read_text())
    names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
    # The acceptance stages must all be present as nested spans.
    assert {"tag.sync", "bsrx.phase_offset", "bsrx.equalise", "bsrx.demod"} <= names


def test_trace_command_with_experiment(tmp_path, capsys, _clean_obs_state):
    out_path = tmp_path / "fig12.json"
    code = main(["trace", "fig12", "--output", str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "trace.probe" in out  # probe rides along with the experiment
    assert out_path.exists()


def test_fleet_trace_flag_writes_per_tag_tracks(tmp_path, capsys, _clean_obs_state):
    import json

    out_path = tmp_path / "fleet_trace.json"
    code = main(
        [
            "fleet",
            "-n",
            "2",
            "--frames",
            "2",
            "--payload",
            "500",
            "--trace",
            "--trace-output",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "telemetry" in out.lower()
    assert "bsrx.demodulate" in out
    payload = json.loads(out_path.read_text())
    tids = {e["tid"] for e in payload["traceEvents"]}
    assert len(tids) == 2  # one thread track per tag


def test_trace_refuses_to_overwrite_without_force(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    out_path.write_text("{}")
    assert main(["trace", "--output", str(out_path)]) == 2
    err = capsys.readouterr().err
    assert "already exists" in err and "--force" in err
    assert out_path.read_text() == "{}"  # untouched


def test_trace_force_overwrites(tmp_path, capsys, _clean_obs_state):
    out_path = tmp_path / "trace.json"
    out_path.write_text("{}")
    assert main(["trace", "--output", str(out_path), "--force"]) == 0
    assert "traceEvents" in out_path.read_text()


def test_fleet_trace_refuses_to_overwrite_without_force(tmp_path, capsys):
    out_path = tmp_path / "fleet_trace.json"
    out_path.write_text("{}")
    code = main(
        [
            "fleet", "-n", "2", "--frames", "2", "--payload", "500",
            "--trace", "--trace-output", str(out_path),
        ]
    )
    assert code == 2
    assert "already exists" in capsys.readouterr().err
    assert out_path.read_text() == "{}"


def test_fleet_without_trace_ignores_stale_trace_output(tmp_path, capsys):
    """The guard only applies when --trace will actually write the file."""
    out_path = tmp_path / "fleet_trace.json"
    out_path.write_text("{}")
    code = main(
        [
            "fleet", "-n", "2", "--frames", "2", "--payload", "500",
            "--trace-output", str(out_path),
        ]
    )
    assert code == 0
    assert out_path.read_text() == "{}"


def test_bench_check_passes_against_itself(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    args = ["bench", "--smoke", "--bandwidth", "1.4", "--repeats", "2"]
    assert main(args + ["--output", str(out_path)]) == 0
    capsys.readouterr()
    # Identical hardware, same process: a generous tolerance self-check
    # must pass (this is exactly what CI runs against the committed
    # baseline).
    code = main(
        args
        + [
            "--output", str(tmp_path / "bench2.json"),
            "--check", str(out_path),
            "--tolerance", "10.0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "bench gate: PASSED" in out


def test_bench_check_validation(tmp_path, capsys):
    assert main(
        ["bench", "--smoke", "--check", str(tmp_path / "nope.json")]
    ) == 2
    assert "does not exist" in capsys.readouterr().err
    assert main(["bench", "--smoke", "--tolerance", "-1"]) == 2
    assert "--tolerance must be >= 0" in capsys.readouterr().err


def test_bench_smoke_defaults_to_artifacts(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(
        ["bench", "--smoke", "--bandwidth", "1.4", "--repeats", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "wrote artifacts/bench_smoke.json" in out
    assert (tmp_path / "artifacts" / "bench_smoke.json").exists()


def test_console_scripts_declared_and_importable():
    """pyproject must expose the `repro` (and `lscatter`) console scripts,
    both pointing at a callable that exists."""
    import importlib
    import pathlib
    import re

    text = (
        pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
    ).read_text()
    try:  # tomllib is 3.11+; fall back to a line scan on 3.10
        import tomllib

        scripts = tomllib.loads(text)["project"]["scripts"]
    except ImportError:
        scripts = dict(
            re.findall(r'^(\w+)\s*=\s*"([\w.]+:\w+)"$', text, flags=re.M)
        )
    assert scripts["repro"] == "repro.cli:main"
    assert scripts["lscatter"] == "repro.cli:main"
    module_name, _, attr = scripts["repro"].partition(":")
    entry = getattr(importlib.import_module(module_name), attr)
    assert callable(entry)


# -- network ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["network", "--tags", "0"], "--tags must be >= 1"),
        (["network", "--workers", "0"], "--workers must be >= 1"),
        (["network", "--frames", "0"], "--frames must be >= 1"),
        (["network", "--isd", "-5"], "--isd must be positive"),
        (["network", "--rings", "-1"], "--rings must be >= 0"),
        (
            ["network", "--layout", "grid", "--rows", "0"],
            "--rows/--cols must be >= 1",
        ),
    ],
)
def test_network_argument_validation(capsys, argv, fragment):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert err.startswith("repro: error:")
    assert err.count("\n") == 1


def test_network_rejects_unknown_layout_and_attach():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["network", "--layout", "ring"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["network", "--attach", "psychic"])


def test_network_smoke_writes_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "network.json"
    code = main(
        [
            "network",
            "--smoke",
            "--tags",
            "3",
            "--isd",
            "120",
            "--output",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "NetworkReport: 7 cell(s)" in out
    assert f"wrote {out_path}" in out
    summary = json.loads(out_path.read_text())
    assert summary["n_cells"] == 7
    assert summary["n_tags"] == 3
    assert len(summary["attachments"]) == 3
    # Only cells that actually serve a tag carry a per-cell report.
    assert 1 <= len(summary["cells"]) <= 3


def test_network_smoke_defaults_to_artifacts(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["network", "--smoke", "--tags", "2", "--isd", "120"]) == 0
    out = capsys.readouterr().out
    assert "wrote artifacts/network_smoke.json" in out
    assert (tmp_path / "artifacts" / "network_smoke.json").exists()


def test_network_refuses_to_overwrite_without_force(tmp_path, capsys):
    out_path = tmp_path / "network.json"
    out_path.write_text("{}")
    assert main(
        ["network", "--smoke", "--tags", "2", "--output", str(out_path)]
    ) == 2
    err = capsys.readouterr().err
    assert "already exists" in err
    assert out_path.read_text() == "{}"  # untouched
