"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_command(capsys):
    code = main(
        [
            "simulate",
            "--bandwidth",
            "1.4",
            "--frames",
            "1",
            "--payload",
            "2000",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "throughput" in out
    assert "BER" in out


def test_survey_command(capsys):
    assert main(["survey", "--venue", "office"]) == 0
    out = capsys.readouterr().out
    assert "lte" in out and "wifi" in out and "lora" in out


def test_experiment_list(capsys):
    assert main(["experiment"]) == 0
    out = capsys.readouterr().out
    assert "fig23" in out and "power" in out


def test_experiment_runs_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "LScatter" in capsys.readouterr().out
