"""DSP primitive tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.dsp import (
    awgn,
    bit_errors,
    bits_to_int,
    frequency_shift,
    int_to_bits,
    moving_average,
    normalized_correlation,
    rc_alpha,
    rc_lowpass,
)
from repro.utils.rng import make_rng


def test_normalized_correlation_perfect_match():
    rng = make_rng(0)
    template = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    signal = np.concatenate([np.zeros(30, complex), template, np.zeros(30, complex)])
    corr = normalized_correlation(signal, template)
    assert int(np.argmax(corr)) == 30
    assert corr[30] == pytest.approx(1.0, abs=1e-9)


def test_normalized_correlation_scale_invariant():
    rng = make_rng(1)
    template = rng.standard_normal(32) + 1j * rng.standard_normal(32)
    signal = np.concatenate([np.zeros(10, complex), 5.0 * template * np.exp(1j)])
    corr = normalized_correlation(signal, template)
    assert corr[10] == pytest.approx(1.0, abs=1e-9)


def test_normalized_correlation_rejects_short_signal():
    with pytest.raises(ValueError):
        normalized_correlation(np.zeros(3, complex), np.zeros(10, complex))


def test_rc_lowpass_converges_to_step():
    alpha = rc_alpha(1e-3, 1e5)
    y = rc_lowpass(np.ones(5000), alpha)
    assert y[-1] == pytest.approx(1.0, abs=1e-3)
    assert y[0] < 0.1


def test_rc_lowpass_time_constant():
    # After exactly tau the step response reaches 1 - 1/e.
    fs = 1e6
    tau = 2e-4
    y = rc_lowpass(np.ones(int(fs * tau * 5)), rc_alpha(tau, fs))
    at_tau = y[int(tau * fs)]
    assert at_tau == pytest.approx(1 - np.exp(-1), abs=0.02)


def test_rc_alpha_rejects_bad_values():
    with pytest.raises(ValueError):
        rc_lowpass(np.ones(4), 1.5)


def test_awgn_hits_target_snr():
    rng = make_rng(3)
    signal = np.exp(1j * 2 * np.pi * rng.random(200_000))
    noisy = awgn(signal, 10.0, rng)
    noise = noisy - signal
    snr = 10 * np.log10(np.mean(np.abs(signal) ** 2) / np.mean(np.abs(noise) ** 2))
    assert snr == pytest.approx(10.0, abs=0.1)


def test_frequency_shift_moves_tone():
    fs = 1000.0
    n = np.arange(1000)
    tone = np.exp(1j * 2 * np.pi * 100 * n / fs)
    shifted = frequency_shift(tone, 50.0, fs)
    spectrum = np.abs(np.fft.fft(shifted))
    assert int(np.argmax(spectrum)) == 150


def test_moving_average_flat_interior():
    # Edges taper (zero padding); the interior of a flat input stays flat.
    out = moving_average(np.ones(50), 7)
    assert np.allclose(out[4:-4], 1.0)


@given(st.integers(min_value=0, max_value=2**20 - 1))
def test_bits_int_roundtrip(value):
    assert bits_to_int(int_to_bits(value, 20)) == value


def test_bit_errors_counts():
    a = np.array([0, 1, 1, 0], dtype=np.int8)
    b = np.array([0, 0, 1, 1], dtype=np.int8)
    assert bit_errors(a, b) == 2


def test_bit_errors_shape_mismatch():
    with pytest.raises(ValueError):
        bit_errors(np.zeros(3, np.int8), np.zeros(4, np.int8))
