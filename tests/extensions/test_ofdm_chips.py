"""Generic OFDM chip-backscatter tests (the §6 genericity claim)."""

import numpy as np
import pytest

from repro.channel.fading import FadingChannel
from repro.extensions import OfdmChipReceiver, OfdmChipTag, wifi_layout
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng
from repro.wifi import WifiReceiver, WifiTransmitter


@pytest.fixture(scope="module")
def packet():
    return WifiTransmitter(12.0, rng=0).transmit(psdu_bytes=400)


@pytest.fixture(scope="module")
def layout(packet):
    return wifi_layout(packet.samples, packet.n_data_symbols)


def test_layout_geometry(packet, layout):
    assert layout.fft_size == 64
    assert layout.n_chips == 48
    assert layout.chip_offset == 8
    # Data symbols only (preamble + SIGNAL skipped).
    assert layout.n_symbols == packet.n_data_symbols


def test_capacity(layout):
    tag = OfdmChipTag(layout)
    assert tag.capacity_bits() == (layout.n_symbols - 1) * 48


def test_roundtrip_clean(packet, layout):
    rng = make_rng(1)
    tag = OfdmChipTag(layout)
    payload = rng.integers(0, 2, size=tag.capacity_bits()).astype(np.int8)
    hybrid, used = tag.modulate(packet.samples, payload)
    got = OfdmChipReceiver(layout).demodulate(hybrid, packet.samples, used)
    assert np.array_equal(got, payload[:used])


def test_roundtrip_with_channel_and_noise(packet, layout):
    rng = make_rng(2)
    tag = OfdmChipTag(layout)
    payload = rng.integers(0, 2, size=1000).astype(np.int8)
    hybrid, used = tag.modulate(packet.samples, payload)
    channel = FadingChannel.rician(k_db=15.0, n_taps=2, rng=rng)
    received = awgn(channel.apply(hybrid), 25.0, rng)
    got = OfdmChipReceiver(layout).demodulate(received, packet.samples, used)
    assert np.mean(got != payload[:used]) < 0.01


def test_wifi_preamble_survives_modulation(packet, layout):
    """The analogue of challenge C1 on WiFi: PLCP must stay decodable."""
    rng = make_rng(3)
    tag = OfdmChipTag(layout)
    payload = rng.integers(0, 2, size=tag.capacity_bits()).astype(np.int8)
    hybrid, _ = tag.modulate(packet.samples, payload)
    assert np.array_equal(hybrid[: 320 + 80], packet.samples[: 320 + 80])


def test_chip_rate_on_air_near_12mbps(layout):
    rate = 48 / 4e-6
    assert rate == pytest.approx(12e6)


def test_ambient_wifi_rate_still_occupancy_bound():
    """Chip modulation does not fix WiFi's burstiness: effective rate is
    occupancy x on-air rate, still below continuous LTE at 20 MHz."""
    from repro.core.link_budget import LScatterLinkModel

    on_air = 48 / 4e-6
    effective = 0.45 * on_air  # a busy evening's occupancy
    assert effective < LScatterLinkModel(20.0).raw_bit_rate_bps
