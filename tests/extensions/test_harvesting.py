"""RF energy-harvesting model tests."""

import pytest

from repro.extensions import HarvesterModel


def test_nothing_below_sensitivity():
    model = HarvesterModel(sensitivity_dbm=-20.0)
    assert model.efficiency(-25.0) == 0.0
    assert model.harvested_w(-25.0) == 0.0


def test_efficiency_monotone_and_bounded():
    model = HarvesterModel()
    values = [model.efficiency(p) for p in (-19, -10, 0, 10)]
    assert all(b > a for a, b in zip(values, values[1:]))
    assert values[-1] <= model.peak_efficiency


def test_harvest_scales_with_occupancy():
    model = HarvesterModel()
    full = model.harvested_w(0.0, occupancy=1.0)
    half = model.harvested_w(0.0, occupancy=0.5)
    assert half == pytest.approx(full / 2)


def test_self_sustaining_close_only():
    model = HarvesterModel()
    near = model.report(2.0)
    far = model.report(20.0)
    assert near.self_sustaining
    assert not far.self_sustaining
    assert near.duty_cycle == 1.0
    assert far.duty_cycle < 0.05


def test_duty_cycle_bounded():
    model = HarvesterModel()
    assert 0.0 <= model.report(50.0).duty_cycle <= 1.0


def test_continuous_lte_beats_bursty_wifi_for_harvesting():
    """Observation 1 again: at equal incident power, the always-on LTE
    carrier harvests ~3x more than evening-peak WiFi."""
    model = HarvesterModel()
    lte = model.harvested_w(-10.0, occupancy=1.0)
    wifi = model.harvested_w(-10.0, occupancy=0.35)
    assert lte > 2.5 * wifi
