"""Chaos harness: report structure, monotone gating, JSON output."""

import json

import pytest

from repro.faults.chaos import CHAOS_KINDS, MONOTONE_KINDS, run_chaos


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    # One harness run shared by the assertions below; the fleet section is
    # exercised separately (and more cheaply) in test_engine_faults.
    path = tmp_path_factory.mktemp("chaos") / "chaos.json"
    report = run_chaos(
        output=str(path),
        smoke=True,
        kinds=["dropout", "jammer"],
        fleet=False,
    )
    return report, path


def test_smoke_report_structure_and_json(smoke_report):
    report, path = smoke_report
    on_disk = json.loads(path.read_text())
    assert on_disk["meta"]["mode"] == "smoke"
    assert on_disk["meta"]["kinds"] == ["dropout", "jammer"]
    assert on_disk["passed"] is True
    assert [s["kind"] for s in on_disk["sweeps"]] == ["dropout", "jammer"]
    for sweep in on_disk["sweeps"]:
        assert [p["severity"] for p in sweep["points"]] == [0.0, 0.5, 1.0]


def test_noop_contract_holds(smoke_report):
    report, _ = smoke_report
    contract = report["noop_contract"]
    assert contract["iq_identical"]
    assert contract["metrics_identical"]
    assert contract["passed"]


def test_goodput_monotone_and_erasures_appear(smoke_report):
    report, _ = smoke_report
    dropout = report["sweeps"][0]
    assert dropout["monotone_goodput"]
    goodputs = [p["goodput_bps"] for p in dropout["points"]]
    assert goodputs[-1] < goodputs[0]
    # Heavy dropout must surface as erasures, not as counted garbage bits.
    worst = dropout["points"][-1]
    assert worst["n_erased_windows"] > 0
    assert worst["n_bits"] < dropout["points"][0]["n_bits"]


def test_monotone_gate_covers_coverage_kinds_only():
    assert MONOTONE_KINDS < set(CHAOS_KINDS)
    assert "drift" not in MONOTONE_KINDS


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown chaos kind"):
        run_chaos(output=None, smoke=True, kinds=["gremlins"], fleet=False)
