"""End-to-end fault injection: no-op golden runs and graceful degradation."""

import numpy as np
import pytest

from repro.core import LScatterSystem, SystemConfig
from repro.faults import CarrierFaults, FaultPlan, TagFaults


def _config(**kwargs):
    defaults = dict(bandwidth_mhz=1.4, n_frames=2, reference_mode="genie")
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def _run(config, seed=0, artifacts=False):
    return LScatterSystem(config, rng=seed).run(
        payload_length=6000, artifacts=artifacts
    )


# -- the zero-rate golden contract ------------------------------------------------


def test_zero_plan_run_is_bit_identical_to_clean_run():
    clean = _run(_config(), artifacts=True)
    zeroed = _run(_config(faults=FaultPlan.none(seed=0)), artifacts=True)
    assert zeroed.n_bits == clean.n_bits
    assert zeroed.n_errors == clean.n_errors
    assert zeroed.n_windows == clean.n_windows
    assert zeroed.n_lost_windows == clean.n_lost_windows
    assert zeroed.sync_error_us == clean.sync_error_us
    a = clean.extras["artifacts"]
    b = zeroed.extras["artifacts"]
    np.testing.assert_array_equal(a.shifted_rx, b.shifted_rx)
    np.testing.assert_array_equal(a.direct_rx, b.direct_rx)


def test_zero_plan_circuit_mode_also_identical():
    clean = _run(_config(sync_mode="circuit"))
    zeroed = _run(_config(sync_mode="circuit", faults=FaultPlan.none()))
    assert (zeroed.n_bits, zeroed.n_errors) == (clean.n_bits, clean.n_errors)
    assert zeroed.sync_error_us == clean.sync_error_us


# -- degradation ------------------------------------------------------------------


def test_dropout_goodput_is_monotone_and_marks_erasures():
    goodputs = []
    for rate in (0.0, 0.3, 0.6):
        plan = FaultPlan(carrier=CarrierFaults(dropout_rate=rate)) if rate else None
        report = _run(_config(faults=plan, erasure_threshold=0.35))
        goodputs.append(report.throughput_bps)
        if rate == 0.6:
            assert report.n_erased_windows > 0
    assert goodputs[0] >= goodputs[1] >= goodputs[2]
    assert goodputs[2] < goodputs[0]


def test_erased_windows_do_not_count_bits():
    plan = FaultPlan(carrier=CarrierFaults(dropout_rate=0.5))
    marked = _run(_config(faults=plan, erasure_threshold=0.35))
    unmarked = _run(_config(faults=plan))
    assert marked.n_erased_windows > 0
    assert unmarked.n_erased_windows == 0
    # Erasure marking removes the garbage windows from the denominator.
    assert marked.n_bits < unmarked.n_bits
    # And the surviving bits are cleaner than counting garbage as bits.
    assert marked.ber <= unmarked.ber


def test_clock_drift_past_guard_erases_windows():
    plan = FaultPlan(tag=TagFaults(clock_drift_ppm=2000.0))
    report = _run(_config(faults=plan, erasure_threshold=0.35))
    assert report.n_erased_windows > 0


def test_total_pss_miss_degrades_gracefully():
    plan = FaultPlan(tag=TagFaults(pss_miss_rate=1.0))
    report = _run(_config(sync_mode="circuit", faults=plan))
    assert report.sync_failed
    assert report.n_bits == 0
    assert np.isnan(report.sync_error_us)


def test_fault_rng_streams_are_independent_of_simulation_seed():
    """The same plan produces the same fault placement under any run seed:
    fault randomness must come from the plan, not the simulation spawn."""
    plan = FaultPlan(carrier=CarrierFaults(dropout_rate=0.4), seed=9)
    a = _run(_config(faults=plan, erasure_threshold=0.35), seed=1, artifacts=True)
    b = _run(_config(faults=plan, erasure_threshold=0.35), seed=1, artifacts=True)
    np.testing.assert_array_equal(
        a.extras["artifacts"].shifted_rx, b.extras["artifacts"].shifted_rx
    )


@pytest.mark.parametrize("threshold", [-0.1, 1.5])
def test_erasure_threshold_validation(threshold):
    with pytest.raises(ValueError):
        SystemConfig(bandwidth_mhz=1.4, erasure_threshold=threshold)
