"""Unit tests for the carrier/tag/infra fault injectors."""

import os

import numpy as np
import pytest

from repro.faults import (
    AdcClipper,
    AmbientDropout,
    CarrierFaults,
    FaultPlan,
    FaultyTask,
    ImpulsiveNoise,
    InfraFaults,
    NarrowbandJammer,
    TagFaultInjector,
    TagFaults,
    bitflip_file,
    truncate_file,
)
from repro.utils.rng import make_rng


def _samples(n=4096, seed=7):
    rng = make_rng(seed)
    return rng.normal(size=n) + 1j * rng.normal(size=n)


# -- zero-rate contract -----------------------------------------------------------


@pytest.mark.parametrize(
    "injector",
    [
        AmbientDropout(0.0),
        NarrowbandJammer(0.0),
        ImpulsiveNoise(0.0),
        AdcClipper(0.0),
    ],
)
def test_inactive_injector_returns_same_object(injector):
    samples = _samples()
    assert injector.apply(samples, make_rng(0)) is samples


def test_zero_rate_edge_injector_is_identity():
    edges = np.array([100, 9700, 19300], dtype=np.int64)
    injector = TagFaultInjector(TagFaults(), rng=make_rng(0))
    np.testing.assert_array_equal(injector(edges, 40000, 1.92e6), edges)


def test_zero_plan_is_noop_and_validated():
    assert FaultPlan.none().is_noop
    assert not FaultPlan(carrier=CarrierFaults(dropout_rate=0.1)).is_noop
    with pytest.raises(ValueError):
        CarrierFaults(dropout_rate=1.5)
    with pytest.raises(ValueError):
        TagFaults(pss_miss_rate=-0.1)


# -- determinism and nesting ------------------------------------------------------


def test_injection_is_deterministic_per_plan_seed():
    samples = _samples()
    plan = FaultPlan(carrier=CarrierFaults(dropout_rate=0.2), seed=3)
    a = AmbientDropout(0.2).apply(samples, plan.rng_for("dropout"))
    b = AmbientDropout(0.2).apply(samples, plan.rng_for("dropout"))
    np.testing.assert_array_equal(a, b)
    other = FaultPlan(carrier=CarrierFaults(dropout_rate=0.2), seed=4)
    c = AmbientDropout(0.2).apply(samples, other.rng_for("dropout"))
    assert not np.array_equal(a, c)


def test_dropout_coverage_nests_across_severity():
    samples = _samples()
    plan = FaultPlan(seed=5)
    low = AmbientDropout(0.1).apply(samples, plan.rng_for("dropout"))
    high = AmbientDropout(0.4).apply(samples, plan.rng_for("dropout"))
    low_zeroed = low == 0
    high_zeroed = high == 0
    # Every sample dropped at low severity is dropped at high severity...
    assert np.all(high_zeroed[low_zeroed])
    assert high_zeroed.sum() > low_zeroed.sum()
    # ...and samples untouched at high severity are bit-identical in both.
    np.testing.assert_array_equal(low[~high_zeroed], samples[~high_zeroed])


def test_jammer_affected_samples_identical_across_severity():
    samples = _samples()
    plan = FaultPlan(seed=5)
    low = NarrowbandJammer(0.1).apply(samples, plan.rng_for("jammer"))
    high = NarrowbandJammer(0.4).apply(samples, plan.rng_for("jammer"))
    low_hit = low != samples
    # Samples jammed at low severity carry the exact same tone at high.
    np.testing.assert_array_equal(high[low_hit], low[low_hit])
    assert (high != samples).sum() >= low_hit.sum()


def test_impulse_hits_nest_and_clipper_preserves_phase():
    samples = _samples()
    plan = FaultPlan(seed=6)
    low = ImpulsiveNoise(0.01).apply(samples, plan.rng_for("impulse"))
    high = ImpulsiveNoise(0.05).apply(samples, plan.rng_for("impulse"))
    assert np.all((high != samples)[low != samples])

    clipped = AdcClipper(0.8).apply(samples, plan.rng_for("clip"))
    assert float(np.abs(clipped).max()) < float(np.abs(samples).max())
    hit = np.abs(clipped) < np.abs(samples)
    np.testing.assert_allclose(
        np.angle(clipped[hit]), np.angle(samples[hit]), atol=1e-12
    )


def test_edge_injector_miss_and_false_fire():
    edges = np.arange(0, 10) * 9600 + 123
    miss_all = TagFaultInjector(TagFaults(pss_miss_rate=1.0), rng=make_rng(0))
    assert len(miss_all(edges, 96000, 1.92e6)) == 0
    noisy = TagFaultInjector(TagFaults(false_fire_rate=1.0), rng=make_rng(0))
    out = noisy(edges, 96000, 1.92e6)
    assert len(out) > len(edges)
    assert np.all(np.diff(out) > 0)  # sorted, unique


# -- infra ------------------------------------------------------------------------


def test_faulty_task_is_clean_in_parent_process():
    wrapped = FaultyTask(lambda t: (0.0, t * 2), crash_tasks=(0,), hang_tasks=(1,))
    # Same PID as construction: faults must NOT fire.
    assert wrapped(0) == (0.0, 0)
    assert wrapped(1) == (0.0, 2)


def test_from_faults_passthrough_when_noop():
    def fn(task):
        return 0.0, task

    assert FaultyTask.from_faults(fn, None) is fn
    assert FaultyTask.from_faults(fn, InfraFaults()) is fn
    wrapped = FaultyTask.from_faults(fn, InfraFaults(crash_tasks=(2,)))
    assert isinstance(wrapped, FaultyTask)
    assert wrapped.parent_pid == os.getpid()


def test_file_corruptors(tmp_path):
    path = tmp_path / "scratch.iq"
    payload = bytes(range(256)) * 8
    path.write_bytes(payload)
    bitflip_file(str(path))
    flipped = path.read_bytes()
    assert len(flipped) == len(payload)
    assert sum(a != b for a, b in zip(flipped, payload)) == 1
    truncate_file(str(path), n_bytes=100)
    assert path.stat().st_size == 100


def test_negative_amplitudes_rejected():
    with pytest.raises(ValueError, match="jammer_amplitude"):
        CarrierFaults(jammer_amplitude=-1.0)
    with pytest.raises(ValueError, match="impulse_amplitude"):
        CarrierFaults(impulse_amplitude=-0.5)
    # Zero stays legal: an amplitude-0 jammer is just a silent one.
    CarrierFaults(jammer_amplitude=0.0, impulse_amplitude=0.0)
