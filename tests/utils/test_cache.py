"""Memoisation-layer tests: identity, immutability, registry plumbing."""

import numpy as np
import pytest

from repro.utils.cache import cache_stats, clear_caches, memoize


def test_memoize_returns_same_object_and_counts_calls():
    calls = []

    @memoize()
    def seq(n):
        calls.append(n)
        return np.arange(n)

    a = seq(4)
    b = seq(4)
    c = seq(5)
    assert a is b
    assert calls == [4, 5]
    assert len(c) == 5


def test_memoize_freezes_arrays_and_tuples():
    @memoize()
    def pair(n):
        return np.zeros(n), np.ones(n)

    first, second = pair(3)
    assert not first.flags.writeable
    assert not second.flags.writeable
    with pytest.raises(ValueError):
        first[0] = 9.0


def test_memoize_passes_scalars_through():
    @memoize()
    def answer():
        return 42

    assert answer() == 42
    assert answer() == 42


def test_registry_stats_and_clear():
    @memoize()
    def tracked(n):
        return np.full(n, 7)

    name = f"{tracked.__module__}.{tracked.__qualname__}"
    tracked(2)
    tracked(2)
    stats = cache_stats()
    assert name in stats
    assert stats[name]["hits"] >= 1
    assert stats[name]["currsize"] >= 1

    clear_caches()
    assert cache_stats()[name]["currsize"] == 0
    # Still functional after a global clear.
    assert len(tracked(2)) == 2


def test_lte_sequences_are_cached_instances():
    from repro.lte.crs import crs_values
    from repro.lte.params import LteParams
    from repro.lte.pss import pss_sequence
    from repro.lte.sss import sss_sequence

    assert pss_sequence(0) is pss_sequence(0)
    assert pss_sequence(0) is not pss_sequence(1)
    assert sss_sequence(3, 1, 0) is sss_sequence(3, 1, 0)
    assert crs_values(2, 0, 1, 6) is crs_values(2, 0, 1, 6)
    params = LteParams.from_bandwidth(1.4)
    assert params.subcarrier_indices() is params.subcarrier_indices()
    assert not params.subcarrier_indices().flags.writeable
