"""Streaming demodulator: bit-identity to the whole-capture call.

Every test builds a real tag-on-ambient capture (transmitter -> tag
schedule -> reflection -> noise) and asserts the chunked receiver's
output — bits, soft values, absolute window starts, erasure flags, and
per-packet records — equals the single whole-capture
:meth:`BackscatterDemodulator.demodulate` call exactly, never just
approximately.
"""

import numpy as np
import pytest

from repro.bsrx.demodulator import BackscatterDemodulator
from repro.bsrx.streaming import StreamingDemodulator
from repro.lte import LteTransmitter
from repro.tag.controller import TagController
from repro.tag.modulator import ChipModulator
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def _capture(seed=0, n_frames=3, error_samples=5, snr_db=25.0):
    capture = LteTransmitter(1.4, rng=seed).transmit(n_frames)
    params = capture.params
    controller = TagController(params, rng=seed)
    payload = make_rng(seed + 1).integers(0, 2, size=20000).astype(np.int8)
    timing = controller.genie_timing(0, error_samples)
    schedule = controller.build_schedule(timing, len(capture.samples), payload)
    hybrid = ChipModulator().reflect(capture.samples, schedule.chips)
    if snr_db is not None:
        hybrid = awgn(hybrid, snr_db, make_rng(seed + 2))
    return params, hybrid, np.asarray(capture.samples, dtype=complex)


def _halves(params, n):
    half = params.samples_per_frame // 2
    return np.arange(0, n - half + 1, half)


def _assert_same(a, b):
    np.testing.assert_array_equal(a.bits, b.bits)
    np.testing.assert_array_equal(a.soft, b.soft)
    np.testing.assert_array_equal(a.starts, b.starts)
    assert list(a.window_erased) == list(b.window_erased)
    assert len(a.window_bits) == len(b.window_bits)
    for wa, wb in zip(a.window_bits, b.window_bits):
        np.testing.assert_array_equal(wa, wb)
    assert len(a.packets) == len(b.packets)
    for pa, pb in zip(a.packets, b.packets):
        assert pa.half_frame_start == pb.half_frame_start
        assert pa.slot == pb.slot
        assert pa.offset == pb.offset
        assert pa.model == pb.model
        assert pa.preamble_errors == pb.preamble_errors
        assert pa.gain == pb.gain
        assert pa.metric == pb.metric
        assert list(pa.data_starts) == list(pb.data_starts)


@pytest.mark.parametrize("chunk", [1, 2, 3, 5])
def test_chunked_demodulate_matches_whole_capture(chunk):
    params, hybrid, ref = _capture()
    halves = _halves(params, len(hybrid))
    whole = BackscatterDemodulator(params).demodulate(hybrid, ref, halves)
    streamed = StreamingDemodulator(params, chunk_half_frames=chunk).demodulate(
        hybrid, ref, halves
    )
    _assert_same(whole, streamed)


def test_ragged_push_matches_whole_capture():
    """Incremental pushes with arbitrary (mid-packet) chunk boundaries."""
    params, hybrid, ref = _capture(seed=2)
    half = params.samples_per_frame // 2
    halves = _halves(params, len(hybrid))
    whole = BackscatterDemodulator(params).demodulate(hybrid, ref, halves)

    streamer = StreamingDemodulator(params, chunk_half_frames=1)
    rng = make_rng(99)
    pos = 0
    max_step = 2 * half
    while pos < len(hybrid):
        step = int(rng.integers(37, max_step))
        hi = min(pos + step, len(hybrid))
        streamer.push(hybrid[pos:hi], ref[pos:hi])
        # The buffer only ever holds the unfinished tail.
        assert streamer.buffered_samples <= streamer.demodulator.half_frame_span + max_step
        pos = hi
    _assert_same(whole, streamer.finish())


def test_partial_trailing_half_frame_is_erasure_not_crash():
    """A capture that is not a whole number of half-frames demodulates:
    packets that still fit come out normally, data windows sliced off by
    the end of the capture come out as erasures — never an exception and
    never a silent drop of the whole tail."""
    params, hybrid, ref = _capture(seed=4)
    half = params.samples_per_frame // 2
    # Cut inside the 6th half-frame, landing mid-packet so at least one
    # data window starts before the cut but extends past it.
    cut = 5 * half + 2 * half // 3
    demod = BackscatterDemodulator(params)
    halves = np.arange(0, cut, half)  # includes the partial tail
    result = demod.demodulate(hybrid[:cut], ref[:cut], halves)

    assert any(result.window_erased), "truncated tail produced no erasure"
    assert all(int(s) < cut for s in result.starts)

    # The five full half-frames are untouched by the truncation: their
    # windows are bit-identical to the untruncated run's.
    full = demod.demodulate(hybrid, ref, _halves(params, len(hybrid)))
    n_head = int(np.sum(np.asarray(result.starts) < 5 * half))
    assert n_head == int(np.sum(np.asarray(full.starts) < 5 * half))
    for k in range(n_head):
        assert int(full.starts[k]) == int(result.starts[k])
        np.testing.assert_array_equal(full.window_bits[k], result.window_bits[k])


def test_streaming_matches_whole_capture_on_truncated_tail():
    params, hybrid, ref = _capture(seed=4)
    half = params.samples_per_frame // 2
    cut = 5 * half + 2 * half // 3
    halves = np.arange(0, cut, half)
    whole = BackscatterDemodulator(params).demodulate(
        hybrid[:cut], ref[:cut], halves
    )

    streamed = StreamingDemodulator(params, chunk_half_frames=2).demodulate(
        hybrid[:cut], ref[:cut], halves
    )
    _assert_same(whole, streamed)

    pushed = StreamingDemodulator(params, chunk_half_frames=2)
    mid = 3 * half + 17
    pushed.push(hybrid[:mid], ref[:mid])
    pushed.push(hybrid[mid:cut], ref[mid:cut])
    _assert_same(whole, pushed.finish())


def test_carry_tracks_grid_and_gain():
    params, hybrid, ref = _capture(seed=1)
    half = params.samples_per_frame // 2
    streamer = StreamingDemodulator(params, chunk_half_frames=1)
    streamer.push(hybrid, ref)
    assert streamer.carry.half_frames_done == len(hybrid) // half
    assert (
        streamer.carry.next_half_frame_start
        == streamer.carry.half_frames_done * half
    )
    # At high SNR at least one packet decoded, so the carried gain is the
    # last non-erased packet's path gain.
    result = streamer.finish()
    live = [p for p in result.packets if p.model in ("post-eq", "predistort")]
    assert live
    assert streamer.carry.last_gain == live[-1].gain
    assert streamer.carry.last_cascade is not None


def test_stream_misuse_rejected():
    params, hybrid, ref = _capture(seed=0, n_frames=1)
    with pytest.raises(ValueError):
        StreamingDemodulator(params, chunk_half_frames=0)
    streamer = StreamingDemodulator(params)
    with pytest.raises(ValueError):
        streamer.push(hybrid[:10], ref[:9])
    streamer.push(hybrid, ref)
    streamer.finish()
    with pytest.raises(RuntimeError):
        streamer.push(hybrid[:10], ref[:10])
    with pytest.raises(RuntimeError):
        streamer.finish()
