"""Modulation-offset (preamble search) tests — paper Eq. 7."""

import numpy as np
import pytest

from repro.bsrx.mod_offset import find_modulation_offset
from repro.tag.framing import preamble_bits
from repro.utils.rng import make_rng


def _make_symbol(offset, n_chips=72, fft=128, gain=1.0 + 0j, seed=0):
    rng = make_rng(seed)
    x = rng.standard_normal(fft) + 1j * rng.standard_normal(fft)
    preamble = preamble_bits(n_chips)
    chips = np.ones(fft)
    chips[offset : offset + n_chips] = 2.0 * preamble - 1.0
    y = gain * x * chips
    return y, x, preamble


def test_exact_offset_found():
    for true_offset in (10, 28, 45):
        y, x, preamble = _make_symbol(true_offset)
        estimate = find_modulation_offset(y, x, preamble, 28, 28)
        assert estimate.offset == true_offset


def test_gain_and_phase_recovered():
    gain = 0.7 * np.exp(1j * 0.9)
    y, x, preamble = _make_symbol(28, gain=gain)
    estimate = find_modulation_offset(y, x, preamble, 28, 10)
    assert estimate.gain == pytest.approx(gain, abs=1e-9)


def test_offset_found_under_noise():
    rng = make_rng(3)
    y, x, preamble = _make_symbol(33, seed=4)
    y = y + 0.2 * (rng.standard_normal(len(y)) + 1j * rng.standard_normal(len(y)))
    estimate = find_modulation_offset(y, x, preamble, 28, 28)
    assert estimate.offset == 33


def test_search_respects_slack_bounds():
    y, x, preamble = _make_symbol(28)
    estimate = find_modulation_offset(y, x, preamble, 10, 3)
    assert 7 <= estimate.offset <= 13  # clamped to the window


def test_empty_window_rejected():
    y, x, preamble = _make_symbol(28)
    with pytest.raises(ValueError):
        find_modulation_offset(y, x, preamble, 2000, 1)


def test_length_mismatch_rejected():
    y, x, preamble = _make_symbol(28)
    with pytest.raises(ValueError):
        find_modulation_offset(y[:-1], x, preamble, 28, 5)


def test_metric_peaks_only_at_true_offset():
    y, x, preamble = _make_symbol(28)
    right = find_modulation_offset(y, x, preamble, 28, 0)
    wrong = find_modulation_offset(y, x, preamble, 40, 0)
    assert right.metric > 2 * wrong.metric
