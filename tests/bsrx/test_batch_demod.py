"""Batched cross-tag demodulation: bit-identity to the per-tag loop.

``demodulate_many`` stacks every tag riding one shared ambient into a
single batched FFT pass; its contract is *exact* equality with calling
``demodulate`` per tag — same bits, same soft values, same packet
records, down to the float.  These tests exercise tags with different
sync errors, path gains, and noise levels (so post-eq, predistort, and
erased model choices all occur across the stack) and assert that
contract.
"""

import numpy as np
import pytest

from repro.bsrx.demodulator import BackscatterDemodulator
from repro.lte import LteTransmitter
from repro.tag.controller import TagController
from repro.tag.modulator import ChipModulator
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng

#: Per-tag (sync error in samples, flat path gain, SNR dB) — spread wide
#: enough that different tags pick different demod models.
_TAG_MIX = (
    (-12, 0.9 * np.exp(0.3j), 30.0),
    (0, 1.1 * np.exp(-1.0j), 18.0),
    (7, 0.5 * np.exp(2.2j), 8.0),
    (15, 1.0, 2.0),
)


def _stacks(n_tags, n_frames=2, seed=0):
    capture = LteTransmitter(1.4, rng=seed).transmit(n_frames)
    params = capture.params
    ambient = np.asarray(capture.samples, dtype=complex)
    rows = []
    for t in range(n_tags):
        error, gain, snr = _TAG_MIX[t % len(_TAG_MIX)]
        controller = TagController(params, rng=seed + t)
        payload = make_rng(100 + t).integers(0, 2, size=20000).astype(np.int8)
        timing = controller.genie_timing(0, error)
        schedule = controller.build_schedule(timing, len(ambient), payload)
        hybrid = gain * ChipModulator().reflect(ambient, schedule.chips)
        rows.append(awgn(hybrid, snr, make_rng(200 + t)))
    shifted = np.stack(rows)
    reference = np.stack([ambient] * n_tags)
    half = params.samples_per_frame // 2
    halves = np.arange(0, shifted.shape[1] - half + 1, half)
    return params, shifted, reference, halves


def _assert_same(a, b):
    np.testing.assert_array_equal(a.bits, b.bits)
    np.testing.assert_array_equal(a.soft, b.soft)
    np.testing.assert_array_equal(a.starts, b.starts)
    assert list(a.window_erased) == list(b.window_erased)
    assert len(a.packets) == len(b.packets)
    for pa, pb in zip(a.packets, b.packets):
        assert pa.half_frame_start == pb.half_frame_start
        assert pa.slot == pb.slot
        assert pa.offset == pb.offset
        assert pa.model == pb.model
        assert pa.preamble_errors == pb.preamble_errors
        assert pa.gain == pb.gain
        assert pa.metric == pb.metric
        assert list(pa.data_starts) == list(pb.data_starts)


@pytest.mark.parametrize("erasure_threshold", [None, 0.35])
def test_batched_matches_per_tag(erasure_threshold):
    params, shifted, reference, halves = _stacks(4)
    demod = BackscatterDemodulator(params, erasure_threshold=erasure_threshold)
    batched = demod.demodulate_many(shifted, reference, halves)
    for t in range(shifted.shape[0]):
        serial = demod.demodulate(shifted[t], reference[t], halves)
        _assert_same(serial, batched[t])


def test_batched_models_actually_diverge():
    """The mix must exercise more than one demod model, otherwise the
    equality test above proves less than it claims."""
    params, shifted, reference, halves = _stacks(4)
    demod = BackscatterDemodulator(params, erasure_threshold=0.35)
    results = demod.demodulate_many(shifted, reference, halves)
    models = {p.model for r in results for p in r.packets}
    assert len(models) > 1, models


def test_batched_matches_per_tag_on_truncated_capture():
    """The scalar fallback for a partial trailing half-frame stays
    bit-identical too (the batch path hands those to the per-tag core)."""
    params, shifted, reference, halves = _stacks(3)
    half = params.samples_per_frame // 2
    cut = shifted.shape[1] - half + 2 * half // 3
    halves = np.arange(0, cut, half)
    demod = BackscatterDemodulator(params)
    batched = demod.demodulate_many(
        shifted[:, :cut], reference[:, :cut], halves
    )
    for t in range(shifted.shape[0]):
        serial = demod.demodulate(shifted[t, :cut], reference[t, :cut], halves)
        _assert_same(serial, batched[t])
    assert any(any(r.window_erased) for r in batched)


def test_single_tag_stack_matches_scalar_call():
    params, shifted, reference, halves = _stacks(1)
    demod = BackscatterDemodulator(params)
    (batched,) = demod.demodulate_many(shifted, reference, halves)
    _assert_same(demod.demodulate(shifted[0], reference[0], halves), batched)


def test_batched_shape_validation():
    demod = BackscatterDemodulator(1.4)
    with pytest.raises(ValueError):
        demod.demodulate_many(
            np.zeros(10, complex), np.zeros(10, complex), [0]
        )
    with pytest.raises(ValueError):
        demod.demodulate_many(
            np.zeros((2, 10), complex), np.zeros((2, 9), complex), [0]
        )
