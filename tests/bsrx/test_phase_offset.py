"""Phase-offset elimination tests (paper Eq. 5/6, Fig. 12)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bsrx.phase_offset import (
    apply_phase_offset,
    eliminate_phase_offset,
    estimate_path_gain,
)
from repro.utils.rng import make_rng


def test_rotation_applied():
    values = np.array([1.0, 1.0j])
    rotated = apply_phase_offset(values, np.pi / 2)
    assert np.allclose(rotated, [1.0j, -1.0])


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=-np.pi, max_value=np.pi))
def test_eq6_cancels_any_common_rotation(phi):
    rng = make_rng(7)
    chips = 1.0 - 2.0 * rng.integers(0, 2, size=64).astype(float)
    rotated = apply_phase_offset(chips.astype(complex), phi)
    # Use a known +1 reference chip at index 0 by forcing it.
    rotated[0] = apply_phase_offset(np.array([1.0 + 0j]), phi)[0]
    products = eliminate_phase_offset(rotated, reference_index=0)
    decided = np.sign(products.real)
    assert np.array_equal(decided[1:], np.sign(chips[1:]))


def test_estimate_path_gain_exact():
    rng = make_rng(0)
    expected = rng.standard_normal(200) + 1j * rng.standard_normal(200)
    g = 0.3 * np.exp(1j * 1.234)
    observed = g * expected
    estimate = estimate_path_gain(observed, expected)
    assert estimate == pytest.approx(g, abs=1e-12)


def test_estimate_path_gain_with_noise_unbiased():
    rng = make_rng(1)
    expected = rng.standard_normal(20_000) + 1j * rng.standard_normal(20_000)
    g = 1.5 * np.exp(-1j * 0.4)
    observed = g * expected + 0.3 * (
        rng.standard_normal(20_000) + 1j * rng.standard_normal(20_000)
    )
    estimate = estimate_path_gain(observed, expected)
    assert abs(estimate - g) < 0.02


def test_estimate_path_gain_silent_reference():
    assert estimate_path_gain(np.zeros(4, complex), np.zeros(4, complex)) == 0


def test_estimate_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        estimate_path_gain(np.zeros(3, complex), np.zeros(4, complex))
