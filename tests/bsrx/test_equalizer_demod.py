"""Equalizer and full backscatter-demodulator tests."""

import numpy as np
import pytest

from repro.bsrx.demodulator import BackscatterDemodulator
from repro.bsrx.equalizer import equalize_symbol, estimate_channel_from_known
from repro.channel.fading import FadingChannel
from repro.lte import LteTransmitter
from repro.tag.controller import TagController
from repro.tag.modulator import ChipModulator
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def test_channel_estimate_flat():
    rng = make_rng(0)
    expected = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    g = 0.8 * np.exp(1j * 0.5)
    channel = estimate_channel_from_known(g * expected, expected)
    assert np.allclose(channel, g, atol=0.02)


def test_channel_estimate_two_tap():
    rng = make_rng(1)
    expected = rng.standard_normal(512) + 1j * rng.standard_normal(512)
    taps = np.array([1.0, 0.4j])
    observed = np.convolve(expected, taps)[:512]
    channel = estimate_channel_from_known(observed, expected)
    truth = np.fft.fft(np.concatenate([taps, np.zeros(510)]))
    # Smoothed estimate tracks the true response closely.
    error = np.mean(np.abs(channel - truth) ** 2) / np.mean(np.abs(truth) ** 2)
    assert error < 0.05


def test_equalize_restores_symbol():
    rng = make_rng(2)
    expected = rng.standard_normal(512) + 1j * rng.standard_normal(512)
    taps = np.array([0.9, 0.3 - 0.2j])
    observed = np.convolve(expected, taps)[:512]
    channel = estimate_channel_from_known(observed, expected)
    equalized = equalize_symbol(observed, channel)
    error = np.mean(np.abs(equalized - expected) ** 2) / np.mean(
        np.abs(expected) ** 2
    )
    assert error < 0.05


def test_equalizer_shape_checks():
    with pytest.raises(ValueError):
        estimate_channel_from_known(np.zeros(4, complex), np.zeros(5, complex))
    with pytest.raises(ValueError):
        equalize_symbol(np.zeros(4, complex), np.zeros(5, complex))


def _end_to_end(error_samples=0, fading=None, snr_db=None, payload_len=20000, seed=0):
    capture = LteTransmitter(1.4, rng=seed).transmit(2)
    params = capture.params
    controller = TagController(params, rng=seed)
    payload = make_rng(seed + 1).integers(0, 2, size=payload_len).astype(np.int8)
    timing = controller.genie_timing(0, error_samples)
    schedule = controller.build_schedule(timing, len(capture.samples), payload)
    hybrid = ChipModulator().reflect(capture.samples, schedule.chips)
    if fading is not None:
        hybrid = fading.apply(hybrid)
    if snr_db is not None:
        hybrid = awgn(hybrid, snr_db, make_rng(seed + 2))
    demod = BackscatterDemodulator(params)
    half = params.samples_per_frame // 2
    halves = np.arange(0, len(hybrid) - half + 1, half)
    result = demod.demodulate(hybrid, capture.samples, halves)
    from repro.core.metrics import measure_ber

    n_bits, n_errors, _, _ = measure_ber(schedule, result, params.fft_size // 2)
    return n_errors / n_bits, result, schedule


def test_ideal_channel_near_error_free():
    # A tiny floor (<2e-4) remains from the MMSE regularisation acting on
    # chips that ride near-zero ambient samples.
    ber, _, _ = _end_to_end()
    assert ber < 5e-4


def test_sync_error_absorbed_by_offset_search():
    for error in (-20, -5, 7, 20):
        ber, result, schedule = _end_to_end(error_samples=error)
        assert ber < 1e-3, error
        # The found offsets track the tag's shift.
        offsets = {p.offset for p in result.packets}
        nominal = (128 - 72) // 2
        assert nominal + error in offsets


def test_flat_gain_and_phase_transparent():
    fading = FadingChannel(taps=np.array([0.5 * np.exp(1j * 2.0)]))
    ber, _, _ = _end_to_end(fading=fading)
    assert ber < 5e-4


def test_out_hop_multipath_equalized():
    fading = FadingChannel.rician(k_db=6.0, n_taps=3, rng=make_rng(9))
    ber, result, _ = _end_to_end(fading=fading, snr_db=40.0)
    assert ber < 0.01


def test_noise_degrades_gracefully():
    ber_high, _, _ = _end_to_end(snr_db=20.0, seed=3)
    ber_low, _, _ = _end_to_end(snr_db=0.0, seed=3)
    assert ber_high < 0.01
    assert ber_low > ber_high


def test_shape_mismatch_rejected():
    demod = BackscatterDemodulator(1.4)
    with pytest.raises(ValueError):
        demod.demodulate(np.zeros(10, complex), np.zeros(9, complex), [0])
