"""Per-window SNR gate: erasure escalation of hopeless data windows."""

import numpy as np
import pytest

from repro.bsrx.demodulator import BackscatterDemodulator, window_snr_db
from repro.lte import LteTransmitter
from repro.tag.controller import TagController
from repro.tag.modulator import ChipModulator
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng

from tests.bsrx.test_batch_demod import _assert_same, _stacks


def _one_tag(snr_db, seed=0, n_frames=2):
    capture = LteTransmitter(1.4, rng=seed).transmit(n_frames)
    params = capture.params
    ambient = np.asarray(capture.samples, dtype=complex)
    controller = TagController(params, rng=seed)
    payload = make_rng(100).integers(0, 2, size=20000).astype(np.int8)
    schedule = controller.build_schedule(
        controller.genie_timing(0, 0), len(ambient), payload
    )
    hybrid = ChipModulator().reflect(ambient, schedule.chips)
    shifted = awgn(hybrid, snr_db, make_rng(200))
    half = params.samples_per_frame // 2
    halves = np.arange(0, len(shifted) - half + 1, half)
    return params, shifted, ambient, halves


def test_window_snr_db_separates_clean_from_noise():
    rng = make_rng(5)
    clean = np.where(rng.integers(0, 2, size=512) > 0, 1.0, -1.0)
    assert window_snr_db(clean) > 60.0
    noisy = clean + 3.0 * rng.normal(size=512)
    assert window_snr_db(noisy) < 10.0
    assert window_snr_db(np.zeros(16)) == -np.inf
    assert window_snr_db(np.array([])) == -np.inf


def test_window_snr_db_normalises_out_reference_power():
    """Ambient power fluctuation alone must not read as noise."""
    rng = make_rng(6)
    bits = np.where(rng.integers(0, 2, size=512) > 0, 1.0, -1.0)
    chip_power = rng.uniform(0.1, 4.0, size=512)
    soft = chip_power * bits  # noiseless matched filter over fading ambient
    assert window_snr_db(soft) < 10.0  # raw: fading masquerades as noise
    assert window_snr_db(soft, chip_power) > 60.0


def test_gate_disabled_by_default():
    params, shifted, ambient, halves = _one_tag(25.0)
    demod = BackscatterDemodulator(params)
    assert demod.snr_gate_db is None
    result = demod.demodulate(shifted, ambient, halves)
    assert not any(result.window_erased)


def test_gate_noop_on_clean_capture():
    """A clean link clears a 0 dB gate: identical output, no erasures."""
    params, shifted, ambient, halves = _one_tag(25.0)
    plain = BackscatterDemodulator(params).demodulate(shifted, ambient, halves)
    gated = BackscatterDemodulator(params, snr_gate_db=0.0).demodulate(
        shifted, ambient, halves
    )
    _assert_same(plain, gated)


def test_gate_erases_buried_windows():
    """Deep in noise, the gate turns garbage bits into erasures."""
    params, shifted, ambient, halves = _one_tag(-20.0)
    plain = BackscatterDemodulator(params).demodulate(shifted, ambient, halves)
    gated = BackscatterDemodulator(params, snr_gate_db=0.0).demodulate(
        shifted, ambient, halves
    )
    assert sum(gated.window_erased) > sum(plain.window_erased)
    # Erased windows still occupy their slots: same window count and
    # geometry, only the bits are surrendered.
    assert len(gated.window_erased) == len(plain.window_erased)
    np.testing.assert_array_equal(gated.starts, plain.starts)


def test_gate_batch_matches_scalar():
    """demodulate_many applies the gate window-for-window like demodulate."""
    params, shifted, reference, halves = _stacks(4)
    demod = BackscatterDemodulator(params, snr_gate_db=0.0)
    batched = demod.demodulate_many(shifted, reference, halves)
    for t in range(shifted.shape[0]):
        serial = demod.demodulate(shifted[t], reference[t], halves)
        _assert_same(serial, batched[t])
    # The mix's worst tag (2 dB AWGN) must actually trip the gate so the
    # equality above covers the erasure path, not just the clean one.
    assert any(any(r.window_erased) for r in batched)


def test_gate_threshold_orders_erasures():
    """A stricter gate erases at least as many windows."""
    params, shifted, ambient, halves = _one_tag(3.0)
    counts = []
    for gate in (-10.0, 0.0, 10.0):
        result = BackscatterDemodulator(params, snr_gate_db=gate).demodulate(
            shifted, ambient, halves
        )
        counts.append(sum(result.window_erased))
    assert counts[0] <= counts[1] <= counts[2]
    assert counts[-1] > 0
