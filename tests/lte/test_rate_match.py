"""Rate-matching tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.coding import rate_match, rate_recover
from repro.utils.rng import make_rng


def test_identity_length_is_permutation():
    rng = make_rng(0)
    coded = rng.integers(0, 2, size=96).astype(np.int8)
    matched = rate_match(coded, 96)
    # Same multiset of bits (it's a pure permutation at equal length).
    assert sorted(matched.tolist()) == sorted(coded.tolist())


def test_puncturing_shortens():
    coded = make_rng(1).integers(0, 2, size=300).astype(np.int8)
    assert len(rate_match(coded, 200)) == 200


def test_repetition_extends():
    coded = make_rng(2).integers(0, 2, size=96).astype(np.int8)
    out = rate_match(coded, 300)
    assert len(out) == 300
    # The wrap repeats the circular buffer exactly.
    assert np.array_equal(out[:96], out[96:192])


def test_recover_roundtrip_soft():
    rng = make_rng(3)
    coded = rng.integers(0, 2, size=120).astype(np.int8)
    matched = rate_match(coded, 120)
    llrs = 2.0 * (1.0 - 2.0 * matched.astype(float))
    recovered = rate_recover(llrs, 120)
    hard = (recovered < 0).astype(np.int8)
    assert np.array_equal(hard, coded)


def test_recover_accumulates_repetitions():
    coded = make_rng(4).integers(0, 2, size=60).astype(np.int8)
    matched = rate_match(coded, 180)  # 3x repetition
    llrs = 1.0 - 2.0 * matched.astype(float)
    recovered = rate_recover(llrs, 60)
    # Chase combining triples the magnitude.
    assert np.allclose(np.abs(recovered), 3.0)


def test_recover_zeroes_punctured_positions():
    coded = make_rng(5).integers(0, 2, size=300).astype(np.int8)
    matched = rate_match(coded, 100)
    llrs = 1.0 - 2.0 * matched.astype(float)
    recovered = rate_recover(llrs, 300)
    assert np.sum(recovered == 0.0) == 200


@settings(max_examples=25, deadline=None)
@given(
    n_triplets=st.integers(min_value=2, max_value=60),
    target_factor=st.floats(min_value=0.4, max_value=3.0),
)
def test_roundtrip_property(n_triplets, target_factor):
    rng = make_rng(n_triplets)
    coded = rng.integers(0, 2, size=3 * n_triplets).astype(np.int8)
    target = max(int(len(coded) * target_factor), 1)
    matched = rate_match(coded, target)
    llrs = 1.0 - 2.0 * matched.astype(float)
    recovered = rate_recover(llrs, len(coded))
    hard = (recovered < 0).astype(np.int8)
    transmitted = recovered != 0.0
    assert np.array_equal(hard[transmitted], coded[transmitted])


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        rate_match(np.zeros(4, dtype=np.int8), 10)  # not multiple of 3
    with pytest.raises(ValueError):
        rate_match(np.zeros(6, dtype=np.int8), 0)
    with pytest.raises(ValueError):
        rate_recover(np.zeros(10), 10)  # coded length not multiple of 3
