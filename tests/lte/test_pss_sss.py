"""PSS and SSS tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.pss import (
    PSS_ROOTS,
    pss_sequence,
    pss_subcarrier_indices,
    pss_time_domain,
)
from repro.lte.sss import detect_sss, sss_m0_m1, sss_sequence


def test_pss_length_and_amplitude():
    for nid2 in (0, 1, 2):
        seq = pss_sequence(nid2)
        assert len(seq) == 62
        assert np.allclose(np.abs(seq), 1.0)


def test_pss_roots_are_standard():
    assert PSS_ROOTS == (25, 29, 34)


def test_pss_sequences_distinct():
    cross = abs(np.vdot(pss_sequence(0), pss_sequence(1))) / 62
    assert cross < 0.3


def test_pss_invalid_id():
    with pytest.raises(ValueError):
        pss_sequence(3)


def test_pss_subcarriers_span_62_bins_around_dc():
    idx = pss_subcarrier_indices(128)
    assert len(idx) == 62
    assert 0 not in idx
    # Bandwidth check: 62 x 15 kHz = 0.93 MHz (paper's fixed PSS band).
    assert 62 * 15e3 == pytest.approx(0.93e6)


def test_pss_time_domain_identical_across_fft_sizes_after_resample():
    # The PSS occupies the same subcarriers regardless of bandwidth, so the
    # 128-FFT waveform equals the 2048-FFT waveform decimated by 16.
    small = pss_time_domain(0, 128)
    large = pss_time_domain(0, 2048)
    assert np.allclose(large[::16] * np.sqrt(128 / 2048) * 16, small, atol=1e-9)


def test_pss_correlation_peak_at_zero_lag():
    wave = pss_time_domain(1, 256)
    corr = np.abs(np.fft.ifft(np.fft.fft(wave) * np.conj(np.fft.fft(wave))))
    assert np.argmax(corr) == 0


def test_sss_m0_m1_in_range():
    for nid1 in (0, 37, 167):
        m0, m1 = sss_m0_m1(nid1)
        assert 0 <= m0 < 31
        assert 0 <= m1 < 31
        assert m0 != m1


def test_sss_values_are_pm1():
    seq = sss_sequence(10, 1, 0)
    assert set(np.unique(seq)) <= {-1, 1}
    assert len(seq) == 62


def test_sss_subframes_differ():
    a = sss_sequence(5, 0, 0)
    b = sss_sequence(5, 0, 5)
    assert not np.array_equal(a, b)


def test_sss_invalid_subframe():
    with pytest.raises(ValueError):
        sss_sequence(0, 0, 3)


def test_sss_detect_exact():
    seq = sss_sequence(42, 2, 5).astype(complex)
    nid1, subframe, _ = detect_sss(seq, 2)
    assert (nid1, subframe) == (42, 5)


@settings(max_examples=20, deadline=None)
@given(
    nid1=st.integers(min_value=0, max_value=167),
    nid2=st.integers(min_value=0, max_value=2),
    subframe=st.sampled_from([0, 5]),
)
def test_sss_detect_roundtrip(nid1, nid2, subframe):
    observed = sss_sequence(nid1, nid2, subframe).astype(complex)
    got1, got_sf, _ = detect_sss(observed, nid2)
    assert (got1, got_sf) == (nid1, subframe)


def test_sss_detect_with_noise():
    rng = np.random.default_rng(0)
    observed = sss_sequence(99, 1, 0).astype(complex)
    observed = observed + 0.3 * (rng.standard_normal(62) + 1j * rng.standard_normal(62))
    nid1, subframe, _ = detect_sss(observed, 1)
    assert (nid1, subframe) == (99, 0)
