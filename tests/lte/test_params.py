"""LTE numerology tests (TS 36.211 facts)."""

import numpy as np
import pytest

from repro.lte.params import (
    LteParams,
    SUPPORTED_BANDWIDTHS_MHZ,
    SYMBOLS_PER_SLOT,
    USEFUL_SYMBOL_SECONDS,
)

#: bandwidth -> (n_rb, fft, sample rate MHz)
EXPECTED = {
    1.4: (6, 128, 1.92),
    3.0: (15, 256, 3.84),
    5.0: (25, 512, 7.68),
    10.0: (50, 1024, 15.36),
    15.0: (75, 1536, 23.04),
    20.0: (100, 2048, 30.72),
}


@pytest.mark.parametrize("bw", SUPPORTED_BANDWIDTHS_MHZ)
def test_standard_numerology(bw):
    params = LteParams.from_bandwidth(bw)
    n_rb, fft, rate = EXPECTED[bw]
    assert params.n_rb == n_rb
    assert params.fft_size == fft
    assert params.sample_rate_hz == pytest.approx(rate * 1e6)
    assert params.n_subcarriers == 12 * n_rb


def test_unsupported_bandwidth_raises():
    with pytest.raises(ValueError):
        LteParams.from_bandwidth(7.0)


def test_useful_symbol_is_66_7_us():
    assert USEFUL_SYMBOL_SECONDS == pytest.approx(66.67e-6, rel=1e-3)


@pytest.mark.parametrize("bw", SUPPORTED_BANDWIDTHS_MHZ)
def test_frame_is_10ms(bw):
    params = LteParams.from_bandwidth(bw)
    assert params.samples_per_frame / params.sample_rate_hz == pytest.approx(10e-3)


def test_cp_lengths_20mhz():
    params = LteParams.from_bandwidth(20.0)
    assert params.cp_first == 160
    assert params.cp_other == 144
    # Paper §3.2.3: symbol 144 + 2048 = 2192 samples (~2196 in its rounding).
    assert params.symbol_length(1) == 2192
    assert params.symbol_length(0) == 2208


def test_cp_scales_with_fft():
    params = LteParams.from_bandwidth(1.4)
    assert params.cp_first == 10
    assert params.cp_other == 9


def test_slot_has_seven_symbols_and_correct_length():
    params = LteParams.from_bandwidth(5.0)
    total = sum(params.symbol_length(i) for i in range(SYMBOLS_PER_SLOT))
    assert total == params.samples_per_slot
    assert params.samples_per_slot / params.sample_rate_hz == pytest.approx(0.5e-3)


def test_symbol_start_monotone():
    params = LteParams.from_bandwidth(10.0)
    starts = [
        params.symbol_start(slot, sym)
        for slot in range(20)
        for sym in range(SYMBOLS_PER_SLOT)
    ]
    assert all(b > a for a, b in zip(starts, starts[1:]))


def test_useful_start_skips_cp():
    params = LteParams.from_bandwidth(3.0)
    assert params.useful_start(0, 0) == params.cp_first
    assert (
        params.useful_start(2, 3)
        == params.symbol_start(2, 3) + params.cp_other
    )


def test_subcarrier_indices_avoid_dc():
    params = LteParams.from_bandwidth(1.4)
    idx = params.subcarrier_indices()
    assert len(idx) == 72
    assert 0 not in idx  # DC unused
    assert len(np.unique(idx)) == 72


def test_basic_timing_unit_is_one_sample():
    params = LteParams.from_bandwidth(20.0)
    # Paper: Ts = 66.7us / K.
    assert params.basic_timing_unit_seconds == pytest.approx(
        USEFUL_SYMBOL_SECONDS / params.fft_size
    )
    assert params.shift_hz == params.sample_rate_hz


def test_out_of_range_indices_raise():
    params = LteParams.from_bandwidth(1.4)
    with pytest.raises(ValueError):
        params.symbol_length(7)
    with pytest.raises(ValueError):
        params.symbol_start(20, 0)
    with pytest.raises(ValueError):
        params.cp_length(-1)
