"""Golden-output tests: vectorised OFDM must be bit-identical to the loops.

The pre-vectorisation per-symbol implementations are pinned in
``repro.lte.ofdm`` as ``*_frame_loop``; these tests assert exact
``array_equal`` (not allclose) between them and the batched paths, across
narrow/mid/wide numerologies and arbitrary complex grids.
"""

import numpy as np
import pytest

from repro.lte import ofdm
from repro.lte.params import LteParams, SLOTS_PER_FRAME, SYMBOLS_PER_SLOT
from repro.lte.resource_grid import ResourceGrid, SYMBOLS_PER_FRAME
from repro.utils.rng import make_rng

BANDWIDTHS = (1.4, 5.0, 20.0)


def _random_grid(params, seed):
    rng = make_rng(seed)
    grid = ResourceGrid(params)
    shape = grid.values.shape
    grid.values[:] = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    return grid


@pytest.mark.parametrize("bandwidth", BANDWIDTHS)
def test_modulate_frame_bit_identical_to_loop(bandwidth):
    params = LteParams.from_bandwidth(bandwidth)
    grid = _random_grid(params, 11)
    assert np.array_equal(ofdm.modulate_frame(grid), ofdm.modulate_frame_loop(grid))


@pytest.mark.parametrize("bandwidth", BANDWIDTHS)
def test_demodulate_frame_bit_identical_to_loop(bandwidth):
    params = LteParams.from_bandwidth(bandwidth)
    samples = ofdm.modulate_frame(_random_grid(params, 12))
    assert np.array_equal(
        ofdm.demodulate_frame(params, samples),
        ofdm.demodulate_frame_loop(params, samples),
    )


def test_demodulate_ignores_trailing_samples_identically():
    params = LteParams.from_bandwidth(1.4)
    samples = ofdm.modulate_frame(_random_grid(params, 13))
    rng = make_rng(14)
    extra = rng.normal(size=100) + 1j * rng.normal(size=100)
    padded = np.concatenate([samples, extra])
    assert np.array_equal(
        ofdm.demodulate_frame(params, padded),
        ofdm.demodulate_frame_loop(params, padded),
    )


@pytest.mark.parametrize("bandwidth", BANDWIDTHS)
def test_symbol_and_frame_paths_agree(bandwidth):
    """Per-symbol helpers and the batched frame path produce the same bits."""
    params = LteParams.from_bandwidth(bandwidth)
    grid = _random_grid(params, 15)
    frame = ofdm.modulate_frame(grid)
    layout = ofdm.frame_layout(params)
    for row in (0, 1, 7, SYMBOLS_PER_FRAME - 1):
        slot, sym = divmod(row, SYMBOLS_PER_SLOT)
        start = int(layout.starts[row])
        length = int(layout.lengths[row])
        piece = ofdm.modulate_symbol(params, grid.values[row], sym)
        assert np.array_equal(frame[start : start + length], piece)
        assert np.array_equal(
            ofdm.demodulate_symbol(params, frame[start : start + length], sym),
            ofdm.demodulate_frame(params, frame)[row],
        )


def test_demodulate_short_capture_rejected_by_both():
    params = LteParams.from_bandwidth(1.4)
    short = np.zeros(params.samples_per_frame - 1, dtype=complex)
    with pytest.raises(ValueError):
        ofdm.demodulate_frame(params, short)
    with pytest.raises(ValueError):
        ofdm.demodulate_frame_loop(params, short)


@pytest.mark.parametrize("bandwidth", BANDWIDTHS)
def test_frame_layout_matches_params_walk(bandwidth):
    params = LteParams.from_bandwidth(bandwidth)
    layout = ofdm.frame_layout(params)
    for row in range(SYMBOLS_PER_FRAME):
        slot, sym = divmod(row, SYMBOLS_PER_SLOT)
        assert layout.starts[row] == params.symbol_start(slot, sym)
        assert layout.cp_lengths[row] == params.cp_length(sym)
        assert layout.lengths[row] == params.symbol_length(sym)
        assert layout.useful_starts[row] == params.useful_start(slot, sym)
    assert layout.starts[-1] + layout.lengths[-1] == params.samples_per_frame
    assert len(layout.cp_in_slot) == SYMBOLS_PER_SLOT
    assert layout.starts.shape == (SLOTS_PER_FRAME * SYMBOLS_PER_SLOT,)


def test_frame_layout_is_cached_and_read_only():
    params = LteParams.from_bandwidth(5.0)
    a = ofdm.frame_layout(params)
    b = ofdm.frame_layout(params)
    assert a is b
    assert not a.starts.flags.writeable
    with pytest.raises(ValueError):
        a.starts[0] = 1


def test_useful_sample_grid_matches_layout():
    params = LteParams.from_bandwidth(1.4)
    starts, lengths = ofdm.useful_sample_grid(params)
    layout = ofdm.frame_layout(params)
    assert np.array_equal(starts, layout.useful_starts)
    assert np.all(lengths == params.fft_size)
    # The returned starts are a private copy, not the cached array.
    starts[0] = -1
    assert ofdm.frame_layout(params).useful_starts[0] == layout.useful_starts[0]
