"""PDSCH scrambling tests."""

import numpy as np

from repro.lte.coding import descramble_llrs, pdsch_c_init, scramble_bits
from repro.utils.rng import make_rng


def test_scramble_is_involution():
    rng = make_rng(0)
    bits = rng.integers(0, 2, size=500).astype(np.int8)
    c_init = pdsch_c_init(0x3D, 4, 17)
    assert np.array_equal(scramble_bits(scramble_bits(bits, c_init), c_init), bits)


def test_scrambling_whitens():
    bits = np.zeros(4096, dtype=np.int8)
    scrambled = scramble_bits(bits, pdsch_c_init(1, 0, 0))
    assert abs(scrambled.mean() - 0.5) < 0.05


def test_descramble_llrs_matches_bits():
    rng = make_rng(1)
    bits = rng.integers(0, 2, size=256).astype(np.int8)
    c_init = pdsch_c_init(10, 2, 3)
    scrambled = scramble_bits(bits, c_init)
    llrs = 1.0 - 2.0 * scrambled.astype(float)  # positive = 0
    descrambled = descramble_llrs(llrs, c_init)
    assert np.array_equal((descrambled < 0).astype(np.int8), bits)


def test_c_init_distinguishes_subframes_and_cells():
    seeds = {
        pdsch_c_init(1, sf, cell)
        for sf in range(10)
        for cell in (0, 1, 100)
    }
    assert len(seeds) == 30
