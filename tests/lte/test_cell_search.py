"""Cell-search tests."""

import numpy as np
import pytest

from repro.lte import CellConfig, LteTransmitter, cell_search
from repro.lte.cell_search import correlate_pss
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def capture():
    cell = CellConfig(n_id_1=23, n_id_2=1)
    return LteTransmitter(1.4, cell=cell, rng=0).transmit(2)


def test_correlation_peaks_at_pss(capture):
    metric = correlate_pss(capture.samples, capture.params, 1)
    peak = int(np.argmax(metric))
    assert peak in (
        capture.params.useful_start(0, 6),
        capture.params.useful_start(10, 6),
        capture.params.useful_start(0, 6) + capture.params.samples_per_frame,
        capture.params.useful_start(10, 6) + capture.params.samples_per_frame,
    )


def test_wrong_root_correlates_weakly(capture):
    right = correlate_pss(capture.samples, capture.params, 1).max()
    wrong = correlate_pss(capture.samples, capture.params, 0).max()
    assert right > 1.5 * wrong


def test_full_search_identifies_cell(capture):
    result = cell_search(capture.samples, capture.params)
    assert result.n_id_2 == 1
    assert result.n_id_1 == 23
    assert result.cell_id == 3 * 23 + 1


def test_frame_start_with_offset(capture):
    shifted = np.concatenate([np.zeros(777, complex), capture.samples])
    result = cell_search(shifted, capture.params)
    half = capture.params.samples_per_frame // 2
    assert (result.frame_start - 777) % half == 0


def test_search_survives_noise(capture):
    rng = make_rng(1)
    noisy = awgn(capture.samples, 0.0, rng)  # 0 dB SNR
    result = cell_search(noisy, capture.params)
    assert (result.n_id_2, result.n_id_1) == (1, 23)


def test_search_survives_phase_rotation(capture):
    rotated = capture.samples * np.exp(1j * 1.2)
    result = cell_search(rotated, capture.params)
    assert (result.n_id_2, result.n_id_1) == (1, 23)


def test_search_on_short_capture_raises(capture):
    with pytest.raises(ValueError):
        correlate_pss(np.zeros(10, complex), capture.params, 0)


def test_all_three_roots_detectable():
    for nid2 in (0, 1, 2):
        cap = LteTransmitter(1.4, cell=CellConfig(n_id_2=nid2), rng=nid2).transmit(1)
        result = cell_search(cap.samples, cap.params)
        assert result.n_id_2 == nid2
