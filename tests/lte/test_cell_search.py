"""Cell-search tests."""

import numpy as np
import pytest

from repro.lte import CellConfig, LteTransmitter, cell_search
from repro.lte.cell_search import (
    PssCandidate,
    correlate_pss,
    pss_candidates,
    rank_candidates,
)
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def capture():
    cell = CellConfig(n_id_1=23, n_id_2=1)
    return LteTransmitter(1.4, cell=cell, rng=0).transmit(2)


def test_correlation_peaks_at_pss(capture):
    metric = correlate_pss(capture.samples, capture.params, 1)
    peak = int(np.argmax(metric))
    assert peak in (
        capture.params.useful_start(0, 6),
        capture.params.useful_start(10, 6),
        capture.params.useful_start(0, 6) + capture.params.samples_per_frame,
        capture.params.useful_start(10, 6) + capture.params.samples_per_frame,
    )


def test_wrong_root_correlates_weakly(capture):
    right = correlate_pss(capture.samples, capture.params, 1).max()
    wrong = correlate_pss(capture.samples, capture.params, 0).max()
    assert right > 1.5 * wrong


def test_full_search_identifies_cell(capture):
    result = cell_search(capture.samples, capture.params)
    assert result.n_id_2 == 1
    assert result.n_id_1 == 23
    assert result.cell_id == 3 * 23 + 1


def test_frame_start_with_offset(capture):
    shifted = np.concatenate([np.zeros(777, complex), capture.samples])
    result = cell_search(shifted, capture.params)
    half = capture.params.samples_per_frame // 2
    assert (result.frame_start - 777) % half == 0


def test_search_survives_noise(capture):
    rng = make_rng(1)
    noisy = awgn(capture.samples, 0.0, rng)  # 0 dB SNR
    result = cell_search(noisy, capture.params)
    assert (result.n_id_2, result.n_id_1) == (1, 23)


def test_search_survives_phase_rotation(capture):
    rotated = capture.samples * np.exp(1j * 1.2)
    result = cell_search(rotated, capture.params)
    assert (result.n_id_2, result.n_id_1) == (1, 23)


def test_search_on_short_capture_raises(capture):
    with pytest.raises(ValueError):
        correlate_pss(np.zeros(10, complex), capture.params, 0)


def test_all_three_roots_detectable():
    for nid2 in (0, 1, 2):
        cap = LteTransmitter(1.4, cell=CellConfig(n_id_2=nid2), rng=nid2).transmit(1)
        result = cell_search(cap.samples, cap.params)
        assert result.n_id_2 == nid2


# -- deterministic candidate ordering ---------------------------------------------


def test_rank_candidates_tie_goes_to_lower_root():
    # Metrics separated only by float residue count as tied: root index
    # (i.e. cell ID) breaks the tie, so root 0 wins despite the epsilon.
    tied = [
        PssCandidate(n_id_2=2, offset=100, metric=1.0),
        PssCandidate(n_id_2=0, offset=200, metric=1.0 - 1e-12),
        PssCandidate(n_id_2=1, offset=300, metric=1.0 + 1e-13),
    ]
    ranked = rank_candidates(tied)
    assert [c.n_id_2 for c in ranked] == [0, 1, 2]


def test_rank_candidates_real_margin_beats_identity():
    candidates = [
        PssCandidate(n_id_2=0, offset=0, metric=0.4),
        PssCandidate(n_id_2=2, offset=0, metric=0.9),
    ]
    ranked = rank_candidates(candidates)
    assert [c.n_id_2 for c in ranked] == [2, 0]
    # A margin just above the tolerance is also decisive.
    close = [
        PssCandidate(n_id_2=0, offset=0, metric=1.0),
        PssCandidate(n_id_2=2, offset=0, metric=1.0 + 1e-6),
    ]
    assert rank_candidates(close)[0].n_id_2 == 2


def test_rank_candidates_empty_and_custom_tolerance():
    assert rank_candidates([]) == []
    pair = [
        PssCandidate(n_id_2=1, offset=0, metric=1.0),
        PssCandidate(n_id_2=0, offset=0, metric=0.999),
    ]
    # Default tolerance: the 1e-3 gap is decisive.
    assert rank_candidates(pair)[0].n_id_2 == 1
    # A coarse tolerance collapses it into a tie; lower root wins.
    assert rank_candidates(pair, tolerance=1e-2)[0].n_id_2 == 0


def test_superposed_near_equal_cells_search_deterministically():
    """Regression: two equal-power cells in one capture must always rank
    the same way, and cell_search must return pss_candidates()[0]."""
    cap_a = LteTransmitter(1.4, cell=CellConfig(n_id_1=7, n_id_2=1), rng=3).transmit(1)
    cap_b = LteTransmitter(1.4, cell=CellConfig(n_id_1=7, n_id_2=2), rng=4).transmit(1)
    mixture = cap_a.samples + cap_b.samples
    first = pss_candidates(mixture, cap_a.params)
    again = pss_candidates(mixture, cap_a.params)
    assert first == again
    assert [c.n_id_2 for c in first] == [c.n_id_2 for c in again]
    result = cell_search(mixture, cap_a.params)
    assert result.n_id_2 == first[0].n_id_2
    assert result.n_id_2 in (1, 2)  # one of the transmitted roots wins
