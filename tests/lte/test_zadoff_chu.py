"""Zadoff-Chu sequence property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lte.zadoff_chu import cyclic_autocorrelation, zadoff_chu


@pytest.mark.parametrize("root", [25, 29, 34])
def test_constant_amplitude(root):
    z = zadoff_chu(root, 63)
    assert np.allclose(np.abs(z), 1.0)


@pytest.mark.parametrize("root", [25, 29, 34])
def test_zero_autocorrelation(root):
    corr = cyclic_autocorrelation(zadoff_chu(root, 63))
    assert corr[0] == pytest.approx(1.0)
    assert np.max(corr[1:]) < 1e-10


@given(st.integers(min_value=1, max_value=62))
def test_cazac_for_any_coprime_root(root):
    if np.gcd(root, 63) != 1:
        return
    corr = cyclic_autocorrelation(zadoff_chu(root, 63))
    assert np.max(corr[1:]) < 1e-9


def test_different_roots_low_cross_correlation():
    a = zadoff_chu(25, 63)
    b = zadoff_chu(29, 63)
    cross = abs(np.vdot(a, b)) / 63
    assert cross < 0.2


def test_non_coprime_root_rejected():
    with pytest.raises(ValueError):
        zadoff_chu(21, 63)  # gcd(21, 63) = 21


def test_even_length_rejected():
    with pytest.raises(ValueError):
        zadoff_chu(3, 64)


def test_nonpositive_length_rejected():
    with pytest.raises(ValueError):
        zadoff_chu(1, 0)
