"""Cell-specific reference signal tests."""

import numpy as np
import pytest

from repro.lte.crs import (
    crs_c_init,
    crs_positions,
    crs_subcarrier_offset,
    crs_values,
)


def test_positions_every_sixth_subcarrier():
    cols = crs_positions(0, cell_id=0, n_rb=6)
    assert len(cols) == 12
    assert np.all(np.diff(cols) == 6)


def test_frequency_shift_follows_cell_id():
    # v_shift = cell_id mod 6 on symbol 0.
    for cell_id in range(12):
        cols = crs_positions(0, cell_id, n_rb=6)
        assert cols[0] == cell_id % 6


def test_symbol4_offset_by_three():
    a = crs_positions(0, cell_id=0, n_rb=6)[0]
    b = crs_positions(4, cell_id=0, n_rb=6)[0]
    assert (b - a) % 6 == 3


def test_non_crs_symbol_rejected():
    with pytest.raises(ValueError):
        crs_subcarrier_offset(2, 0)


def test_values_unit_power_qpsk():
    values = crs_values(slot=3, symbol_in_slot=0, cell_id=17, n_rb=25)
    assert len(values) == 50
    assert np.allclose(np.abs(values), 1.0)


def test_values_deterministic_per_slot_symbol_cell():
    a = crs_values(1, 0, 5, 6)
    b = crs_values(1, 0, 5, 6)
    assert np.array_equal(a, b)


def test_values_differ_across_slots():
    a = crs_values(0, 0, 5, 6)
    b = crs_values(1, 0, 5, 6)
    assert not np.array_equal(a, b)


def test_narrowband_slice_of_wideband():
    # 36.211's m' = m + 110 - N_RB: a 6-RB receiver sees the centre of
    # what a 100-RB receiver sees.
    wide = crs_values(2, 0, 9, 100)
    narrow = crs_values(2, 0, 9, 6)
    start = 100 - 6
    assert np.allclose(wide[start : start + 12][: len(narrow)], narrow)


def test_c_init_depends_on_everything():
    base = crs_c_init(0, 0, 0)
    assert crs_c_init(1, 0, 0) != base
    assert crs_c_init(0, 4, 0) != base
    assert crs_c_init(0, 0, 1) != base
    assert crs_c_init(0, 0, 0, normal_cp=False) != base
