"""Resource-grid tests."""

import numpy as np
import pytest

from repro.lte.params import LteParams
from repro.lte.resource_grid import ReKind, ResourceGrid, symbol_index


@pytest.fixture
def grid():
    return ResourceGrid(LteParams.from_bandwidth(1.4))


def test_shape(grid):
    assert grid.values.shape == (140, 72)
    assert grid.kinds.shape == (140, 72)


def test_symbol_index_flattening():
    assert symbol_index(0, 0) == 0
    assert symbol_index(0, 6) == 6
    assert symbol_index(1, 0) == 7
    assert symbol_index(19, 6) == 139


def test_symbol_index_bounds():
    with pytest.raises(ValueError):
        symbol_index(20, 0)
    with pytest.raises(ValueError):
        symbol_index(0, 7)


def test_centre_indices_symmetric(grid):
    idx = grid.centre_indices(62)
    assert len(idx) == 62
    # 31 below centre, 31 at/above.
    assert np.sum(idx < 36) == 31


def test_place_and_collision(grid):
    cols = np.array([0, 1, 2])
    grid.place(0, 0, cols, np.ones(3), ReKind.CRS)
    assert np.all(grid.kinds[0, :3] == ReKind.CRS)
    with pytest.raises(ValueError):
        grid.place(0, 0, np.array([2, 3]), np.ones(2), ReKind.DATA)


def test_data_positions_exclude_placed(grid):
    grid.place(0, 0, np.arange(10), np.ones(10), ReKind.CRS)
    rows, cols = grid.data_positions()
    assert not np.any((rows == 0) & (cols < 10))
    assert len(rows) == 140 * 72 - 10


def test_mark_data(grid):
    rows = np.array([5, 5])
    cols = np.array([1, 2])
    grid.mark_data(rows, cols, np.array([1 + 1j, 2 + 2j]))
    assert grid.kinds[5, 1] == ReKind.DATA
    assert grid.values[5, 2] == 2 + 2j


def test_sync_symbol_rows(grid):
    rows = grid.sync_symbol_rows()
    # SSS at (0,5),(10,5); PSS at (0,6),(10,6).
    assert rows == [5, 6, 75, 76]


def test_crs_mask_density(grid):
    mask = grid.crs_mask(cell_id=7)
    # 2 CRS symbols per slot x 20 slots, 2 pilots per RB each.
    assert mask.sum() == 40 * 2 * 6
