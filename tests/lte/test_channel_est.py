"""Channel-estimation tests."""

import numpy as np
import pytest

from repro.channel.fading import FadingChannel
from repro.lte import CellConfig, LteTransmitter
from repro.lte.channel_est import estimate_channel
from repro.lte.ofdm import demodulate_frame
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def _observed_grid(gain=1.0, fading=None, snr_db=None, seed=0):
    cell = CellConfig(n_id_1=3, n_id_2=0)
    capture = LteTransmitter(1.4, cell=cell, rng=seed).transmit(1)
    samples = capture.samples * gain
    if fading is not None:
        samples = fading.apply(samples)
    if snr_db is not None:
        samples = awgn(samples, snr_db, make_rng(seed + 1))
    grid = demodulate_frame(capture.params, samples)
    return capture, grid


def test_flat_gain_recovered():
    capture, grid = _observed_grid(gain=0.5 * np.exp(1j * 0.7))
    estimate = estimate_channel(grid, capture.cell.cell_id, capture.params)
    assert np.allclose(estimate.gains, 0.5 * np.exp(1j * 0.7), atol=1e-6)


def test_equalization_restores_data():
    capture, grid = _observed_grid(gain=2.0 * np.exp(-1j * 1.1))
    estimate = estimate_channel(grid, capture.cell.cell_id, capture.params)
    equalized = estimate.equalize(grid)
    assert np.allclose(equalized, capture.frames[0].grid.values, atol=1e-6)


def test_noise_variance_estimate_tracks_snr():
    capture, grid_clean = _observed_grid(snr_db=30.0)
    _, grid_noisy = _observed_grid(snr_db=10.0)
    est_clean = estimate_channel(grid_clean, capture.cell.cell_id, capture.params)
    est_noisy = estimate_channel(grid_noisy, capture.cell.cell_id, capture.params)
    assert est_noisy.noise_variance > 10 * est_clean.noise_variance


def test_multipath_equalization_low_evm():
    fading = FadingChannel.rician(k_db=8.0, n_taps=3, rng=make_rng(5))
    capture, grid = _observed_grid(fading=fading, snr_db=35.0)
    estimate = estimate_channel(grid, capture.cell.cell_id, capture.params)
    equalized = estimate.equalize(grid)
    reference = capture.frames[0].grid.values
    mask = np.abs(reference) > 0
    evm = np.sqrt(
        np.sum(np.abs(equalized[mask] - reference[mask]) ** 2)
        / np.sum(np.abs(reference[mask]) ** 2)
    )
    assert evm < 0.25


def test_wrong_grid_shape_rejected():
    capture, _ = _observed_grid()
    with pytest.raises(ValueError):
        estimate_channel(np.zeros((10, 72), complex), 0, capture.params)
