"""Golden-vector tests pinning the PHY sequences to 3GPP reference values.

Every other LTE test in this suite checks *internal* consistency
(roundtrips, detections, invariants) — none of them would catch the whole
stack agreeing on a subtly wrong sequence.  These tests pin the outputs
against independently-derived references:

* **PSS** — re-derived here from the TS 36.211 §6.11.1.1 closed form
  ``d_u(n) = exp(-j pi u n(n+1)/63)`` (written out independently of
  :mod:`repro.lte.zadoff_chu`), plus spot literals so a simultaneous bug
  in both derivations cannot cancel.
* **SSS** — full 62-element ±1 literal vectors for two (N_ID^(1),
  N_ID^(2), subframe) combinations, frozen from a verified generation.
* **CRC** — TS 36.212 §5.1.1 generators checked against the canonical
  reveng catalogue check values for the ASCII string "123456789"
  (CRC-16/XMODEM 0x31C3, CRC-24/LTE-A 0xCDE703, CRC-8/LTE 0xEA).

If one of these fails after an "optimisation", the optimisation changed
the physics — the pinned value is the spec, not the code.
"""

import numpy as np
import pytest

from repro.lte import coding
from repro.lte.pss import PSS_ROOTS, pss_sequence
from repro.lte.sss import sss_sequence

# -- PSS: TS 36.211 §6.11.1.1 ------------------------------------------------


def _pss_reference(root):
    """Independent closed-form ZC-63 PSS with the DC element punctured.

    The spec defines the sequence in two halves around the punctured
    centre element; written as the plain n(n+1) closed form here, with
    no shared code with repro.lte.zadoff_chu.
    """
    n = np.arange(63)
    d = np.exp(-1j * np.pi * root * n * (n + 1) / 63.0)
    return np.concatenate([d[:31], d[32:]])


@pytest.mark.parametrize("n_id_2,root", [(0, 25), (1, 29), (2, 34)])
def test_pss_matches_spec_closed_form(n_id_2, root):
    assert PSS_ROOTS[n_id_2] == root
    np.testing.assert_allclose(
        pss_sequence(n_id_2), _pss_reference(root), atol=1e-12
    )


@pytest.mark.parametrize(
    "n_id_2,index,value",
    [
        # Spot literals (12 decimal places) so a bug shared by both
        # derivations above cannot cancel.
        (0, 0, 1.0 + 0.0j),
        (0, 1, -0.797132507223 - 0.603804410325j),
        (0, 30, -0.988830826225 + 0.149042266176j),
        (1, 1, -0.969077286229 - 0.246757397690j),
        (1, 31, 0.955572805786 - 0.294755174411j),
        (2, 1, -0.969077286229 + 0.246757397690j),
        (2, 30, 0.955572805786 + 0.294755174411j),
    ],
)
def test_pss_literal_values(n_id_2, index, value):
    assert pss_sequence(n_id_2)[index] == pytest.approx(value, abs=1e-9)


def test_pss_constant_modulus_and_dc_symmetry():
    for n_id_2 in range(3):
        d = pss_sequence(n_id_2)
        assert d.shape == (62,)
        np.testing.assert_allclose(np.abs(d), 1.0, atol=1e-12)
        # n(n+1) is symmetric about the punctured centre: the elements
        # flanking DC are equal for every root.
        assert d[30] == pytest.approx(d[31], abs=1e-12)


# -- SSS: TS 36.211 §6.11.2.1 ------------------------------------------------

# fmt: off
#: Full 62-element vectors frozen from a verified generation (m-sequence
#: construction cross-checked against the spec's x(i+5) recurrences).
SSS_GOLDEN = {
    (0, 0, 0): [
        +1, +1, +1, -1, +1, +1, +1, +1, +1, -1, +1, +1, -1, -1, -1, -1,
        -1, -1, +1, -1, +1, +1, +1, +1, -1, +1, +1, +1, -1, -1, -1, -1,
        -1, -1, +1, -1, -1, +1, -1, +1, -1, -1, +1, +1, -1, +1, +1, -1,
        +1, +1, +1, +1, -1, +1, -1, -1, -1, +1, +1, +1, +1, -1,
    ],
    (0, 0, 5): [
        +1, +1, +1, -1, +1, +1, -1, +1, -1, +1, +1, +1, +1, -1, +1, +1,
        +1, -1, +1, -1, -1, +1, +1, -1, +1, -1, +1, +1, -1, -1, -1, -1,
        -1, +1, -1, -1, -1, -1, -1, +1, +1, +1, +1, -1, +1, +1, -1, +1,
        +1, -1, +1, -1, +1, +1, +1, -1, +1, +1, -1, -1, -1, -1,
    ],
    (101, 2, 0): [
        -1, -1, -1, -1, +1, +1, -1, -1, -1, -1, +1, -1, -1, +1, +1, -1,
        +1, -1, +1, -1, +1, +1, +1, +1, -1, -1, +1, -1, -1, -1, -1, -1,
        +1, +1, -1, -1, -1, +1, -1, +1, +1, +1, -1, -1, -1, +1, -1, +1,
        -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, +1, +1, -1, -1,
    ],
    (101, 2, 5): [
        +1, -1, +1, +1, -1, +1, -1, -1, +1, +1, +1, -1, +1, +1, +1, -1,
        +1, -1, +1, +1, +1, +1, -1, +1, -1, -1, +1, +1, +1, -1, -1, -1,
        -1, -1, +1, +1, -1, +1, -1, -1, -1, +1, +1, -1, +1, -1, +1, -1,
        +1, -1, -1, +1, -1, -1, -1, +1, +1, -1, -1, +1, -1, +1,
    ],
}
# fmt: on


@pytest.mark.parametrize("key", sorted(SSS_GOLDEN))
def test_sss_golden_vectors(key):
    n_id_1, n_id_2, subframe = key
    np.testing.assert_array_equal(
        sss_sequence(n_id_1, n_id_2, subframe), np.array(SSS_GOLDEN[key])
    )


def test_sss_subframe_halves_swap():
    """36.211: subframe 5 swaps the m0/m1 concatenation of subframe 0.

    The even positions of subframe 0 use s0^(m0); the even positions of
    subframe 5 use s1^(m1).  For any cell the two transmissions must
    differ (that's how a UE learns frame timing) while sharing the same
    scrambling.
    """
    for n_id_1 in (0, 37, 101, 167):
        for n_id_2 in range(3):
            s0 = sss_sequence(n_id_1, n_id_2, 0)
            s5 = sss_sequence(n_id_1, n_id_2, 5)
            assert not np.array_equal(s0, s5)
            assert set(np.unique(s0)) <= {-1, 1}


# -- CRC: TS 36.212 §5.1.1 ----------------------------------------------------

#: MSB-first bits of the ASCII string "123456789" — the universal CRC
#: catalogue test message.
_CHECK_MESSAGE = np.array(
    [int(b) for ch in "123456789" for b in f"{ord(ch):08b}"], dtype=np.int8
)


def _crc_int(kind):
    parity = coding.crc_compute(_CHECK_MESSAGE, kind)
    return int("".join(str(int(b)) for b in parity), 2)


@pytest.mark.parametrize(
    "kind,check",
    [
        # reveng catalogue: CRC-16/XMODEM (the gCRC16 generator of 36.212)
        ("crc16", 0x31C3),
        # reveng catalogue: CRC-24/LTE-A (gCRC24A)
        ("crc24a", 0xCDE703),
        # reveng catalogue: CRC-8/LTE (gCRC8)
        ("crc8", 0xEA),
    ],
)
def test_crc_catalogue_check_values(kind, check):
    assert _crc_int(kind) == check


@pytest.mark.parametrize("kind", ["crc16", "crc24a", "crc8"])
def test_crc_attach_check_roundtrip_and_error_detection(kind):
    payload = _CHECK_MESSAGE.copy()
    block = coding.crc_attach(payload, kind)
    recovered, ok = coding.crc_check(block, kind)
    assert ok
    np.testing.assert_array_equal(recovered, payload)
    corrupted = block.copy()
    corrupted[17] ^= 1
    _, ok = coding.crc_check(corrupted, kind)
    assert not ok
