"""Gold pseudo-random sequence tests."""

import numpy as np
import pytest

from repro.lte.gold import gold_qpsk, gold_sequence


def test_output_is_binary():
    bits = gold_sequence(0xABCDE, 1000)
    assert set(np.unique(bits)) <= {0, 1}


def test_deterministic():
    assert np.array_equal(gold_sequence(123, 64), gold_sequence(123, 64))


def test_different_seeds_differ():
    a = gold_sequence(1, 256)
    b = gold_sequence(2, 256)
    assert not np.array_equal(a, b)


def test_prefix_property():
    # Requesting a longer run extends the same sequence.
    short = gold_sequence(77, 100)
    long = gold_sequence(77, 300)
    assert np.array_equal(long[:100], short)


def test_balance():
    # A good PN sequence is nearly balanced.
    bits = gold_sequence(0x5A5A5, 10_000)
    assert abs(bits.mean() - 0.5) < 0.02


def test_low_autocorrelation():
    bits = 1.0 - 2.0 * gold_sequence(0x1234, 4096).astype(float)
    corr = np.fft.ifft(np.abs(np.fft.fft(bits)) ** 2).real / len(bits)
    assert np.max(np.abs(corr[1:])) < 0.08


def test_zero_length():
    assert len(gold_sequence(1, 0)) == 0


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        gold_sequence(1, -5)


def test_qpsk_unit_power():
    symbols = gold_qpsk(0x999, 500)
    assert np.allclose(np.abs(symbols), 1.0)
    assert len(symbols) == 500


def test_qpsk_uses_consecutive_bit_pairs():
    bits = gold_sequence(42, 4).astype(float)
    symbols = gold_qpsk(42, 2)
    expected0 = ((1 - 2 * bits[0]) + 1j * (1 - 2 * bits[1])) / np.sqrt(2)
    assert symbols[0] == pytest.approx(expected0)
