"""Frame-builder tests."""

import numpy as np
import pytest

from repro.lte.frame import CellConfig, FrameBuilder, build_structure
from repro.lte.params import LteParams
from repro.lte.resource_grid import ReKind, symbol_index


@pytest.fixture
def params():
    return LteParams.from_bandwidth(1.4)


def test_cell_id_composition():
    cell = CellConfig(n_id_1=17, n_id_2=2)
    assert cell.cell_id == 53


def test_invalid_cell_config():
    with pytest.raises(ValueError):
        CellConfig(n_id_1=200)
    with pytest.raises(ValueError):
        CellConfig(n_id_2=5)
    with pytest.raises(ValueError):
        CellConfig(modulation="128qam")
    with pytest.raises(ValueError):
        CellConfig(pdsch_load=1.5)


def test_sync_signals_placed(params):
    frame = FrameBuilder(params, rng=0).build()
    kinds = frame.grid.kinds
    assert np.all(kinds[symbol_index(0, 6)][5:67] == ReKind.PSS)
    assert np.all(kinds[symbol_index(10, 6)][5:67] == ReKind.PSS)
    assert np.all(kinds[symbol_index(0, 5)][5:67] == ReKind.SSS)


def test_sync_boost_applied(params):
    cell = CellConfig(sync_boost_db=6.0)
    frame = FrameBuilder(params, cell, rng=0).build()
    pss_row = frame.grid.values[symbol_index(0, 6)]
    pss_vals = pss_row[frame.grid.kinds[symbol_index(0, 6)] == ReKind.PSS]
    assert np.allclose(np.abs(pss_vals), 10 ** (6.0 / 20.0))


def test_no_empty_res_at_full_load(params):
    frame = FrameBuilder(params, rng=1).build()
    assert not np.any(frame.grid.kinds == ReKind.EMPTY)


def test_pdsch_load_leaves_subframes_silent(params):
    cell = CellConfig(pdsch_load=0.0)
    frame = FrameBuilder(params, cell, rng=2).build()
    assert np.sum(frame.grid.kinds == ReKind.DATA) == 0
    assert frame.payload_bit_count == 0


def test_ten_transport_blocks_per_frame(params):
    frame = FrameBuilder(params, rng=3).build()
    assert len(frame.transport_blocks) == 10
    subframes = sorted(tb.subframe for tb in frame.transport_blocks)
    assert subframes == list(range(10))


def test_tb_size_tracks_code_rate(params):
    low = FrameBuilder(params, CellConfig(code_rate=1 / 3), rng=4).build()
    high = FrameBuilder(params, CellConfig(code_rate=1 / 2), rng=4).build()
    assert high.payload_bit_count > low.payload_bit_count


def test_explicit_payloads_roundtrip(params):
    builder = FrameBuilder(params, rng=5)
    reference = builder.build()
    payloads = [tb.payload_bits for tb in reference.transport_blocks]
    rebuilt = FrameBuilder(params, rng=99).build(payloads=payloads)
    assert np.allclose(rebuilt.grid.values, reference.grid.values)


def test_wrong_payload_size_rejected(params):
    builder = FrameBuilder(params, rng=6)
    frame = builder.build()
    payloads = [tb.payload_bits for tb in frame.transport_blocks]
    payloads[0] = payloads[0][:-1]
    with pytest.raises(ValueError):
        builder.build(payloads=payloads)


def test_build_structure_has_no_data(params):
    grid = build_structure(params)
    assert np.sum(grid.kinds == ReKind.DATA) == 0
    assert np.sum(grid.kinds == ReKind.PSS) == 124
    rows, cols = grid.data_positions()
    assert len(rows) > 0


def test_sync_subframe_has_fewer_data_res(params):
    frame = FrameBuilder(params, rng=7).build()
    tb0 = next(tb for tb in frame.transport_blocks if tb.subframe == 0)
    tb1 = next(tb for tb in frame.transport_blocks if tb.subframe == 1)
    assert tb0.n_data_res < tb1.n_data_res
