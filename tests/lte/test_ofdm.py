"""OFDM modulator/demodulator tests."""

import numpy as np
import pytest

from repro.lte.frame import FrameBuilder
from repro.lte.ofdm import (
    demodulate_frame,
    demodulate_symbol,
    modulate_frame,
    modulate_symbol,
    useful_sample_grid,
)
from repro.lte.params import LteParams
from repro.utils.rng import make_rng


@pytest.fixture
def params():
    return LteParams.from_bandwidth(1.4)


def test_symbol_roundtrip(params):
    rng = make_rng(0)
    values = rng.standard_normal(72) + 1j * rng.standard_normal(72)
    samples = modulate_symbol(params, values, symbol_in_slot=0)
    recovered = demodulate_symbol(params, samples, symbol_in_slot=0)
    assert np.allclose(recovered, values)


def test_cyclic_prefix_is_a_copy(params):
    rng = make_rng(1)
    values = rng.standard_normal(72) + 1j * rng.standard_normal(72)
    samples = modulate_symbol(params, values, 1)
    cp = params.cp_other
    assert np.allclose(samples[:cp], samples[-cp:])


def test_symbol_power_preserved(params):
    rng = make_rng(2)
    values = rng.standard_normal(72) + 1j * rng.standard_normal(72)
    values /= np.sqrt(np.mean(np.abs(values) ** 2))
    samples = modulate_symbol(params, values, 1)[params.cp_other :]
    # Power scaled by occupied fraction of the FFT.
    assert np.mean(np.abs(samples) ** 2) == pytest.approx(72 / 128, rel=1e-6)


def test_frame_roundtrip(params):
    frame = FrameBuilder(params, rng=3).build()
    samples = modulate_frame(frame.grid)
    grid = demodulate_frame(params, samples)
    assert np.allclose(grid, frame.grid.values, atol=1e-9)


def test_frame_sample_count(params):
    frame = FrameBuilder(params, rng=4).build()
    assert len(modulate_frame(frame.grid)) == params.samples_per_frame


def test_demodulate_wrong_length_raises(params):
    with pytest.raises(ValueError):
        demodulate_symbol(params, np.zeros(10, complex), 0)
    with pytest.raises(ValueError):
        demodulate_frame(params, np.zeros(100, complex))


def test_useful_sample_grid_consistent(params):
    starts, lengths = useful_sample_grid(params)
    assert len(starts) == 140
    assert np.all(lengths == params.fft_size)
    assert starts[0] == params.cp_first
    # Row 7 is slot 1 symbol 0.
    assert starts[7] == params.symbol_start(1, 0) + params.cp_first


def test_timing_shift_rotates_phase_only(params):
    # A one-sample late FFT window keeps per-subcarrier magnitudes (the CP
    # absorbs the shift) but rotates phases linearly — the OFDM property
    # that makes the tag's coarse sync workable.
    rng = make_rng(5)
    values = rng.standard_normal(72) + 1j * rng.standard_normal(72)
    samples = modulate_symbol(params, values, 1)
    early = samples[params.cp_other - 1 : params.cp_other - 1 + params.fft_size]
    bins = np.fft.fft(early) / np.sqrt(params.fft_size)
    recovered = bins[params.subcarrier_indices()]
    assert np.allclose(np.abs(recovered), np.abs(values), atol=1e-9)
