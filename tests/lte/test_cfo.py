"""CFO estimation/correction tests."""

import numpy as np
import pytest

from repro.lte import LteTransmitter
from repro.lte.cfo import apply_cfo, correct_cfo, estimate_cfo, estimate_cfo_loop
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def capture():
    return LteTransmitter(1.4, rng=0).transmit(1)


def test_apply_cfo_rotates_spectrum(capture):
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, 1000.0, fs)
    # Power is preserved; samples rotate.
    assert np.mean(np.abs(impaired) ** 2) == pytest.approx(
        np.mean(np.abs(capture.samples) ** 2)
    )
    assert not np.allclose(impaired, capture.samples)


@pytest.mark.parametrize("cfo_hz", [-2000.0, -340.0, 150.0, 680.0, 3000.0])
def test_estimate_recovers_offset(capture, cfo_hz):
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, cfo_hz, fs)
    estimated = estimate_cfo(impaired, capture.params)
    assert estimated == pytest.approx(cfo_hz, abs=5.0)


def test_estimate_with_noise(capture):
    fs = capture.params.sample_rate_hz
    rng = make_rng(1)
    impaired = awgn(apply_cfo(capture.samples, 500.0, fs), 10.0, rng)
    estimated = estimate_cfo(impaired, capture.params)
    assert estimated == pytest.approx(500.0, abs=30.0)


def test_correct_inverts_apply(capture):
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, 777.0, fs)
    restored = correct_cfo(impaired, 777.0, fs)
    assert np.allclose(restored, capture.samples, atol=1e-12)


def test_zero_cfo_estimates_near_zero(capture):
    assert abs(estimate_cfo(capture.samples, capture.params)) < 2.0


def test_short_capture_rejected(capture):
    with pytest.raises(ValueError):
        estimate_cfo(capture.samples[:10], capture.params)
    with pytest.raises(ValueError):
        estimate_cfo_loop(capture.samples[:10], capture.params)


def test_vectorised_matches_pinned_loop(capture):
    """Golden equivalence against the pre-vectorisation implementation.

    Only the order of the complex accumulation differs between the two,
    so the estimates agree to far below any physical resolution.
    """
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, 412.5, fs)
    params = capture.params
    # Full frame, exactly one symbol, mid-slot truncation, ragged tail.
    lengths = [
        len(impaired),
        params.cp_first + params.fft_size,
        params.samples_per_slot + 3 * (params.cp_other + params.fft_size) + 7,
        len(impaired) // 3,
    ]
    for n in lengths:
        for max_symbols in (140, 9, 1):
            vec = estimate_cfo(impaired[:n], params, max_symbols)
            loop = estimate_cfo_loop(impaired[:n], params, max_symbols)
            assert vec == pytest.approx(loop, abs=1e-6)


def test_truncated_capture_exits_cleanly(capture):
    """Regression: an incomplete trailing symbol must not change the result.

    The pre-fix control flow kept re-entering the symbol loop for every
    remaining slot after the first symbol failed to fit (the inner break
    only exited the slot).  Symbols tile back-to-back, so those extra
    iterations never contributed — the estimate over a truncated capture
    must equal the estimate over its whole-symbol prefix.
    """
    fs = capture.params.sample_rate_hz
    params = capture.params
    impaired = apply_cfo(capture.samples, -230.0, fs)
    # Cut mid-symbol: 5 whole symbols plus a partial sixth.
    n_whole = params.cp_first + params.fft_size + 4 * (
        params.cp_other + params.fft_size
    )
    truncated = impaired[: n_whole + 50]
    assert estimate_cfo(truncated, params) == pytest.approx(
        estimate_cfo(impaired[:n_whole], params), abs=1e-9
    )


def test_end_to_end_with_cfo():
    """The system corrects a realistic UE crystal error transparently."""
    from repro.core import LScatterSystem, SystemConfig

    clean = SystemConfig(bandwidth_mhz=1.4, n_frames=2, reference_mode="decoded")
    offset = SystemConfig(
        bandwidth_mhz=1.4, n_frames=2, reference_mode="decoded", ue_cfo_ppm=0.5
    )
    report_clean = LScatterSystem(clean, rng=2).run(payload_length=30_000)
    report_cfo = LScatterSystem(offset, rng=2).run(payload_length=30_000)
    assert report_cfo.lte_block_error_rate == 0.0
    assert report_cfo.ber < report_clean.ber + 5e-4
