"""CFO estimation/correction tests."""

import numpy as np
import pytest

from repro.lte import LteTransmitter
from repro.lte.cfo import apply_cfo, correct_cfo, estimate_cfo
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def capture():
    return LteTransmitter(1.4, rng=0).transmit(1)


def test_apply_cfo_rotates_spectrum(capture):
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, 1000.0, fs)
    # Power is preserved; samples rotate.
    assert np.mean(np.abs(impaired) ** 2) == pytest.approx(
        np.mean(np.abs(capture.samples) ** 2)
    )
    assert not np.allclose(impaired, capture.samples)


@pytest.mark.parametrize("cfo_hz", [-2000.0, -340.0, 150.0, 680.0, 3000.0])
def test_estimate_recovers_offset(capture, cfo_hz):
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, cfo_hz, fs)
    estimated = estimate_cfo(impaired, capture.params)
    assert estimated == pytest.approx(cfo_hz, abs=5.0)


def test_estimate_with_noise(capture):
    fs = capture.params.sample_rate_hz
    rng = make_rng(1)
    impaired = awgn(apply_cfo(capture.samples, 500.0, fs), 10.0, rng)
    estimated = estimate_cfo(impaired, capture.params)
    assert estimated == pytest.approx(500.0, abs=30.0)


def test_correct_inverts_apply(capture):
    fs = capture.params.sample_rate_hz
    impaired = apply_cfo(capture.samples, 777.0, fs)
    restored = correct_cfo(impaired, 777.0, fs)
    assert np.allclose(restored, capture.samples, atol=1e-12)


def test_zero_cfo_estimates_near_zero(capture):
    assert abs(estimate_cfo(capture.samples, capture.params)) < 2.0


def test_short_capture_rejected(capture):
    with pytest.raises(ValueError):
        estimate_cfo(capture.samples[:10], capture.params)


def test_end_to_end_with_cfo():
    """The system corrects a realistic UE crystal error transparently."""
    from repro.core import LScatterSystem, SystemConfig

    clean = SystemConfig(bandwidth_mhz=1.4, n_frames=2, reference_mode="decoded")
    offset = SystemConfig(
        bandwidth_mhz=1.4, n_frames=2, reference_mode="decoded", ue_cfo_ppm=0.5
    )
    report_clean = LScatterSystem(clean, rng=2).run(payload_length=30_000)
    report_cfo = LScatterSystem(offset, rng=2).run(payload_length=30_000)
    assert report_cfo.lte_block_error_rate == 0.0
    assert report_cfo.ber < report_clean.ber + 5e-4
