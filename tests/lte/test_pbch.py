"""PBCH / MIB tests."""

import numpy as np
import pytest

from repro.channel.fading import FadingChannel
from repro.lte import CellConfig, LteReceiver, LteTransmitter
from repro.lte.params import LteParams
from repro.lte.pbch import (
    Mib,
    decode_mib,
    encode_mib,
    pbch_capacity_bits,
    pbch_positions,
)
from repro.lte.resource_grid import ReKind, symbol_index
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def test_mib_bits_roundtrip():
    mib = Mib(bandwidth_mhz=10.0, system_frame_number=517)
    assert Mib.from_bits(mib.to_bits()) == mib


def test_mib_sfn_wraps_at_1024():
    mib = Mib(bandwidth_mhz=5.0, system_frame_number=1024 + 7)
    assert Mib.from_bits(mib.to_bits()).system_frame_number == 7


def test_positions_in_centre_band():
    params = LteParams.from_bandwidth(10.0)
    for slot, sym, cols in pbch_positions(params, cell_id=3):
        assert slot == 1
        assert np.all(cols >= params.n_subcarriers // 2 - 36)
        assert np.all(cols < params.n_subcarriers // 2 + 36)


def test_positions_avoid_crs_on_pilot_symbols():
    params = LteParams.from_bandwidth(1.4)
    triples = {sym: cols for _, sym, cols in pbch_positions(params, 0)}
    # Symbols 0/1 lose the pilot comb; 2/3 keep the full 72.
    assert len(triples[0]) < 72
    assert len(triples[2]) == 72


def test_encode_decode_clean():
    params = LteParams.from_bandwidth(1.4)
    mib = Mib(bandwidth_mhz=1.4, system_frame_number=42)
    symbols = encode_mib(mib, params, cell_id=7)
    assert len(symbols) * 2 == pbch_capacity_bits(params, 7)
    decoded, ok = decode_mib(symbols, params, cell_id=7)
    assert ok and decoded == mib


def test_decode_with_noise():
    params = LteParams.from_bandwidth(1.4)
    mib = Mib(bandwidth_mhz=1.4, system_frame_number=999)
    symbols = encode_mib(mib, params, cell_id=11)
    rng = make_rng(0)
    noisy = symbols + 0.3 * (
        rng.standard_normal(len(symbols)) + 1j * rng.standard_normal(len(symbols))
    )
    decoded, ok = decode_mib(noisy, params, cell_id=11)
    assert ok and decoded == mib


def test_wrong_cell_scrambling_fails_crc():
    params = LteParams.from_bandwidth(1.4)
    symbols = encode_mib(Mib(1.4, 0), params, cell_id=5)
    _, ok = decode_mib(symbols, params, cell_id=6)
    assert not ok


def test_frame_carries_pbch():
    capture = LteTransmitter(1.4, rng=0).transmit(1)
    kinds = capture.frames[0].grid.kinds
    row = symbol_index(1, 2)
    assert np.sum(kinds[row] == ReKind.PBCH) == 72


def test_ue_bootstraps_from_pbch():
    """Full chain: the UE reads bandwidth and SFN off the air."""
    cell = CellConfig(n_id_1=9, n_id_2=1)
    capture = LteTransmitter(5.0, cell=cell, rng=1).transmit(3)
    rx = LteReceiver(capture.params, cell)
    for f in range(3):
        n = capture.params.samples_per_frame
        mib, ok = rx.decode_mib(capture.samples[f * n : (f + 1) * n])
        assert ok
        assert mib.bandwidth_mhz == 5.0
        assert mib.system_frame_number == f


def test_mib_survives_channel_and_backscatter():
    """Critical-information check extended to the PBCH."""
    from repro.core import LScatterSystem, SystemConfig

    config = SystemConfig(
        bandwidth_mhz=1.4, n_frames=2, reference_mode="decoded"
    )
    report = LScatterSystem(config, rng=2).run(
        payload_length=20_000, artifacts=True
    )
    artifacts = report.extras["artifacts"]
    rx = LteReceiver(config.params, config.cell)
    n = config.params.samples_per_frame
    mib, ok = rx.decode_mib(artifacts.direct_rx[:n])
    assert ok
    assert mib.bandwidth_mhz == 1.4
