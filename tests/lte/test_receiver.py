"""Full LTE downlink receiver tests."""

import numpy as np
import pytest

from repro.channel.fading import FadingChannel
from repro.lte import CellConfig, LteReceiver, LteTransmitter
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def test_clean_decode_all_crc_pass():
    cell = CellConfig(n_id_1=11, n_id_2=2)
    capture = LteTransmitter(1.4, cell=cell, rng=0).transmit(2)
    result = LteReceiver(capture.params, cell).decode(
        capture.samples, reference_frames=capture.frames
    )
    assert result.block_error_rate == 0.0
    assert result.evm_rms < 1e-9


def test_decoded_payloads_match_transmitted():
    cell = CellConfig()
    capture = LteTransmitter(1.4, cell=cell, rng=1).transmit(1)
    result = LteReceiver(capture.params, cell).decode(capture.samples)
    sent = {tb.subframe: tb.payload_bits for tb in capture.frames[0].transport_blocks}
    for sf in result.subframes:
        assert np.array_equal(sf.decoded, sent[sf.subframe])


def test_throughput_counts_only_crc_pass():
    cell = CellConfig()
    capture = LteTransmitter(1.4, cell=cell, rng=2).transmit(1)
    rx = LteReceiver(capture.params, cell)
    clean = rx.decode(capture.samples)
    # Crush the SNR: CRCs fail, throughput collapses.
    noisy = awgn(capture.samples, -10.0, make_rng(3))
    degraded = rx.decode(noisy)
    assert clean.throughput_bps > 0
    assert degraded.throughput_bps < clean.throughput_bps
    assert degraded.block_error_rate > 0.5


def test_decode_under_moderate_noise():
    cell = CellConfig()
    capture = LteTransmitter(1.4, cell=cell, rng=4).transmit(1)
    noisy = awgn(capture.samples, 12.0, make_rng(5))
    result = LteReceiver(capture.params, cell).decode(noisy)
    assert result.block_error_rate == 0.0  # rate-1/3 QPSK is robust at 12 dB


def test_decode_through_multipath():
    cell = CellConfig()
    capture = LteTransmitter(1.4, cell=cell, rng=6).transmit(1)
    fading = FadingChannel.rician(k_db=10.0, n_taps=3, rng=make_rng(7))
    faded = awgn(fading.apply(capture.samples), 20.0, make_rng(8))
    result = LteReceiver(capture.params, cell).decode(faded)
    assert result.block_error_rate <= 0.2


def test_higher_order_modulation_more_throughput():
    qpsk_cell = CellConfig(modulation="qpsk")
    qam_cell = CellConfig(modulation="64qam", code_rate=0.5)
    cap_qpsk = LteTransmitter(1.4, cell=qpsk_cell, rng=9).transmit(1)
    cap_qam = LteTransmitter(1.4, cell=qam_cell, rng=9).transmit(1)
    thpt_qpsk = LteReceiver(cap_qpsk.params, qpsk_cell).decode(cap_qpsk.samples)
    thpt_qam = LteReceiver(cap_qam.params, qam_cell).decode(cap_qam.samples)
    assert thpt_qam.throughput_bps > 2 * thpt_qpsk.throughput_bps
    assert thpt_qam.block_error_rate == 0.0


def test_short_capture_rejected():
    cell = CellConfig()
    rx = LteReceiver(1.4, cell)
    with pytest.raises(ValueError):
        rx.decode(np.zeros(100, complex))
