"""Tail-biting convolutional code and Viterbi tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.coding import (
    conv_encode,
    conv_encode_reference,
    viterbi_decode,
    viterbi_decode_many,
)
from repro.utils.rng import make_rng


def _llrs_from_bits(coded, scale=4.0):
    return scale * (1.0 - 2.0 * coded.astype(float))


def test_rate_one_third():
    bits = make_rng(0).integers(0, 2, size=40).astype(np.int8)
    assert len(conv_encode(bits)) == 120


def test_vectorised_encoder_matches_reference():
    rng = make_rng(1)
    for length in (7, 13, 64, 257):
        bits = rng.integers(0, 2, size=length).astype(np.int8)
        assert np.array_equal(conv_encode(bits), conv_encode_reference(bits))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=7, max_size=128))
def test_encoder_equivalence_property(bits):
    bits = np.array(bits, dtype=np.int8)
    assert np.array_equal(conv_encode(bits), conv_encode_reference(bits))


def test_tail_biting_start_equals_end_state():
    # Encoding a rotated message gives a rotated codeword (circularity).
    rng = make_rng(2)
    bits = rng.integers(0, 2, size=30).astype(np.int8)
    rotated = np.roll(bits, 3)
    coded = conv_encode(bits).reshape(-1, 3)
    coded_rot = conv_encode(rotated).reshape(-1, 3)
    assert np.array_equal(np.roll(coded, 3, axis=0), coded_rot)


def test_decode_noiseless():
    rng = make_rng(3)
    bits = rng.integers(0, 2, size=100).astype(np.int8)
    llrs = _llrs_from_bits(conv_encode(bits))
    assert np.array_equal(viterbi_decode(llrs, 100), bits)


def test_decode_with_bit_flips():
    rng = make_rng(4)
    bits = rng.integers(0, 2, size=200).astype(np.int8)
    coded = conv_encode(bits)
    llrs = _llrs_from_bits(coded)
    # Flip 5% of the coded bits: well within the free-distance margin.
    flips = rng.choice(len(llrs), size=len(llrs) // 20, replace=False)
    llrs[flips] = -llrs[flips]
    assert np.array_equal(viterbi_decode(llrs, 200), bits)


def test_decode_with_erasures():
    rng = make_rng(5)
    bits = rng.integers(0, 2, size=150).astype(np.int8)
    llrs = _llrs_from_bits(conv_encode(bits))
    erased = rng.choice(len(llrs), size=len(llrs) // 4, replace=False)
    llrs[erased] = 0.0
    assert np.array_equal(viterbi_decode(llrs, 150), bits)


def test_decode_with_gaussian_noise():
    rng = make_rng(6)
    bits = rng.integers(0, 2, size=500).astype(np.int8)
    clean = 1.0 - 2.0 * conv_encode(bits).astype(float)
    noisy = clean + rng.normal(0, 0.7, size=len(clean))  # ~3 dB Eb/N0
    decoded = viterbi_decode(noisy, 500)
    assert np.mean(decoded != bits) < 0.01


def test_batch_matches_single():
    rng = make_rng(7)
    blocks = [rng.integers(0, 2, size=n).astype(np.int8) for n in (50, 50, 80)]
    llrs = [_llrs_from_bits(conv_encode(b)) for b in blocks]
    batch = viterbi_decode_many(llrs, [len(b) for b in blocks])
    for decoded, original in zip(batch, blocks):
        assert np.array_equal(decoded, original)


def test_batch_length_mismatch_rejected():
    with pytest.raises(ValueError):
        viterbi_decode_many([np.zeros(30)], [10, 20])


def test_message_shorter_than_memory_rejected():
    with pytest.raises(ValueError):
        conv_encode(np.array([1, 0, 1], dtype=np.int8))


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=10, max_size=96))
def test_decode_roundtrip_property(bits):
    bits = np.array(bits, dtype=np.int8)
    llrs = _llrs_from_bits(conv_encode(bits))
    assert np.array_equal(viterbi_decode(llrs, len(bits)), bits)
