"""CRC tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.coding import crc_attach, crc_check, crc_compute
from repro.utils.rng import make_rng

KINDS = ("crc24a", "crc16", "crc8")
LENGTHS = {"crc24a": 24, "crc16": 16, "crc8": 8}


@pytest.mark.parametrize("kind", KINDS)
def test_parity_length(kind):
    parity = crc_compute(np.ones(40, dtype=np.int8), kind)
    assert len(parity) == LENGTHS[kind]


@pytest.mark.parametrize("kind", KINDS)
def test_attach_check_roundtrip(kind):
    rng = make_rng(0)
    payload = rng.integers(0, 2, size=100).astype(np.int8)
    recovered, ok = crc_check(crc_attach(payload, kind), kind)
    assert ok
    assert np.array_equal(recovered, payload)


@pytest.mark.parametrize("kind", KINDS)
def test_single_bit_error_detected(kind):
    rng = make_rng(1)
    payload = rng.integers(0, 2, size=64).astype(np.int8)
    block = crc_attach(payload, kind)
    for position in (0, len(block) // 2, len(block) - 1):
        corrupted = block.copy()
        corrupted[position] ^= 1
        _, ok = crc_check(corrupted, kind)
        assert not ok


def test_burst_error_detected():
    rng = make_rng(2)
    payload = rng.integers(0, 2, size=200).astype(np.int8)
    block = crc_attach(payload, "crc24a")
    corrupted = block.copy()
    corrupted[50:70] ^= 1
    _, ok = crc_check(corrupted, "crc24a")
    assert not ok


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
def test_roundtrip_property(bits):
    payload = np.array(bits, dtype=np.int8)
    recovered, ok = crc_check(crc_attach(payload))
    assert ok and np.array_equal(recovered, payload)


def test_all_zero_payload_zero_crc():
    # CRCs of all-zero messages are zero for these generators.
    assert crc_compute(np.zeros(32, dtype=np.int8)).sum() == 0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        crc_compute(np.zeros(8, dtype=np.int8), "crc32")


def test_block_shorter_than_crc_rejected():
    with pytest.raises(ValueError):
        crc_check(np.zeros(10, dtype=np.int8), "crc24a")
