"""QAM mapping/demapping tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.modulation import (
    BITS_PER_SYMBOL,
    constellation,
    demodulate_hard,
    demodulate_llr,
    modulate,
)
from repro.utils.rng import make_rng

SCHEMES = sorted(BITS_PER_SYMBOL)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_unit_average_power(scheme):
    points = constellation(scheme)
    assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_constellation_size(scheme):
    assert len(constellation(scheme)) == 2 ** BITS_PER_SYMBOL[scheme]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_all_points_distinct(scheme):
    points = constellation(scheme)
    distances = np.abs(points[:, None] - points[None, :])
    np.fill_diagonal(distances, np.inf)
    assert distances.min() > 1e-6


@pytest.mark.parametrize("scheme", SCHEMES)
def test_hard_roundtrip(scheme):
    rng = make_rng(0)
    bits = rng.integers(0, 2, size=BITS_PER_SYMBOL[scheme] * 100).astype(np.int8)
    assert np.array_equal(demodulate_hard(modulate(bits, scheme), scheme), bits)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), scheme=st.sampled_from(SCHEMES))
def test_roundtrip_property(data, scheme):
    n = BITS_PER_SYMBOL[scheme]
    bits = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=8 * n)), dtype=np.int8
    )
    bits = bits[: len(bits) - len(bits) % n]
    if len(bits) == 0:
        return
    assert np.array_equal(demodulate_hard(modulate(bits, scheme), scheme), bits)


def test_gray_mapping_neighbours_differ_by_one_bit_qpsk():
    points = constellation("qpsk")
    # QPSK Gray: adjacent quadrants differ in exactly one bit.
    values = np.arange(4)
    for a in values:
        for b in values:
            hamming = bin(a ^ b).count("1")
            distance = abs(points[a] - points[b])
            if hamming == 1:
                assert distance < 1.5  # adjacent
            if hamming == 2:
                assert distance > 1.5  # diagonal


@pytest.mark.parametrize("scheme", SCHEMES)
def test_llr_sign_matches_bits_noiseless(scheme):
    rng = make_rng(1)
    bits = rng.integers(0, 2, size=BITS_PER_SYMBOL[scheme] * 64).astype(np.int8)
    llrs = demodulate_llr(modulate(bits, scheme), scheme, noise_variance=0.1)
    # Positive LLR = bit 0.
    decided = (llrs < 0).astype(np.int8)
    assert np.array_equal(decided, bits)


def test_llr_scales_with_noise_variance():
    symbols = modulate(np.array([0, 0], dtype=np.int8), "qpsk")
    llr_low = demodulate_llr(symbols, "qpsk", 0.1)
    llr_high = demodulate_llr(symbols, "qpsk", 1.0)
    assert np.all(np.abs(llr_low) > np.abs(llr_high))


def test_llr_per_symbol_noise_variance():
    symbols = modulate(np.array([0, 0, 0, 0], dtype=np.int8), "qpsk")
    llrs = demodulate_llr(symbols, "qpsk", np.array([0.1, 10.0]))
    assert abs(llrs[0]) > abs(llrs[2])


def test_wrong_bit_count_raises():
    with pytest.raises(ValueError):
        modulate(np.array([0, 1, 0], dtype=np.int8), "qpsk")


def test_qam16_ber_under_awgn_reasonable():
    rng = make_rng(2)
    bits = rng.integers(0, 2, size=4 * 20_000).astype(np.int8)
    symbols = modulate(bits, "16qam")
    noise = 0.1 * (rng.standard_normal(len(symbols)) + 1j * rng.standard_normal(len(symbols)))
    decided = demodulate_hard(symbols + noise, "16qam")
    ber = np.mean(decided != bits)
    assert ber < 1e-3  # 17 dB SNR: 16-QAM is almost clean
