"""Fleet- and network-level batched/streaming demod: bit-identity switches.

``batch_tags=`` and ``streaming=`` are pure execution-strategy knobs:
flipping either (or both) must not change a single result bit relative
to the per-tag engine path at any worker count.  These tests pin that
contract at the :class:`FleetRunner` and :class:`NetworkRunner` level,
on top of the demodulator-level equality tests in
``tests/bsrx/test_batch_demod.py`` and ``tests/bsrx/test_streaming.py``.
"""

import pytest

from repro.cells import NetworkDeployment, NetworkRunner, Topology
from repro.fleet import Deployment, FleetRunner


def _deployment(n_tags=3, n_frames=2):
    return Deployment.ring(n_tags, bandwidth_mhz=1.4, n_frames=n_frames)


def _tag_key(result):
    return (
        result.name,
        result.n_bits,
        result.n_errors,
        result.n_windows,
        result.n_lost_windows,
        result.n_erased_windows,
        result.sync_error_us,
    )


def _fleet_keys(**kwargs):
    with FleetRunner(_deployment(), scheme="tdma", seed=5, **kwargs) as runner:
        report = runner.run(payload_length=3000)
    return [_tag_key(t) for t in report.tags], report


def test_batched_fleet_matches_engine_paths():
    serial, _ = _fleet_keys(workers=1)
    parallel, _ = _fleet_keys(workers=2)
    batched, report = _fleet_keys(workers=1, batch_tags=True)
    assert serial == parallel == batched
    # The batched pass runs in the parent; the report must say so rather
    # than advertising engine workers that never ran.
    batched2, report2 = _fleet_keys(workers=4, batch_tags=True)
    assert batched2 == batched
    assert report2.workers == 1


def test_streaming_fleet_matches_whole_capture():
    plain, _ = _fleet_keys(workers=1)
    for chunk in (1, 3):
        streamed, _ = _fleet_keys(
            workers=1, streaming=True, chunk_half_frames=chunk
        )
        assert streamed == plain
    both, _ = _fleet_keys(workers=1, batch_tags=True, streaming=True)
    assert both == plain


def test_batch_tags_rejects_incompatible_modes():
    with pytest.raises(ValueError):
        FleetRunner(_deployment(), batch_tags=True, trace=True)
    from repro.faults.plan import InfraFaults

    with pytest.raises(ValueError):
        FleetRunner(
            _deployment(), batch_tags=True, infra_faults=InfraFaults()
        )
    with pytest.raises(ValueError):
        FleetRunner(_deployment(), streaming=True, chunk_half_frames=0)


def _network_keys(**kwargs):
    topology = Topology.grid(1, 2, spacing_ft=300.0, n_frames=1)
    deployment = NetworkDeployment.scatter(4, topology, seed=2)
    with NetworkRunner(topology, deployment, seed=9, **kwargs) as runner:
        report = runner.run()
    keys = []
    for cell_id in sorted(report.cells):
        keys.extend(
            (cell_id,) + _tag_key(t) for t in report.cells[cell_id].tags
        )
    return keys


def test_network_batched_and_streaming_match_engine_paths():
    serial = _network_keys(workers=1)
    parallel = _network_keys(workers=2)
    batched = _network_keys(workers=1, batch_tags=True)
    streamed = _network_keys(workers=1, streaming=True, chunk_half_frames=1)
    both = _network_keys(workers=2, batch_tags=True, streaming=True)
    assert serial == parallel == batched == streamed == both


def test_network_chunk_validation():
    topology = Topology.grid(1, 1, spacing_ft=300.0, n_frames=1)
    deployment = NetworkDeployment.scatter(1, topology, seed=0)
    with pytest.raises(ValueError):
        NetworkRunner(topology, deployment, streaming=True, chunk_half_frames=0)
