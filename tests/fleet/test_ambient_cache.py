"""Shared-ambient cache tests."""

import os

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.faults import bitflip_file, truncate_file
from repro.fleet import AmbientCache, AmbientIntegrityError


def _config(**kwargs):
    defaults = dict(bandwidth_mhz=1.4, n_frames=1, reference_mode="genie")
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def test_cache_hits_share_one_transmit():
    cache = AmbientCache()
    first = cache.get(_config(), seed=0)
    second = cache.get(_config(), seed=0)
    assert cache.transmit_calls == 1
    assert second is first
    assert len(cache) == 1


def test_cache_misses_on_different_key():
    cache = AmbientCache()
    cache.get(_config(), seed=0)
    cache.get(_config(), seed=1)
    cache.get(_config(n_frames=2), seed=0)
    assert cache.transmit_calls == 3
    assert len(cache) == 3


def test_cached_stage_is_unit_power_and_self_consistent():
    cache = AmbientCache()
    stage = cache.get(_config(), seed=0)
    np.testing.assert_allclose(np.mean(np.abs(stage.unit) ** 2), 1.0)
    # Genie reference and reflected waveform come from the same array.
    assert stage.capture.samples is stage.unit


def test_handle_round_trips_through_memmap(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    stage = cache.get(_config(), seed=0)
    handle = cache.handle(_config(), seed=0)
    assert cache.transmit_calls == 1  # handle reuses the cached stage
    assert os.path.exists(handle.path)
    loaded = handle.load()
    np.testing.assert_array_equal(np.asarray(loaded.unit), stage.unit)
    assert loaded.capture.samples is loaded.unit
    # A second handle reuses the same scratch file.
    again = cache.handle(_config(), seed=0)
    assert again.path == handle.path
    cache.clear()
    assert not os.path.exists(handle.path)


def test_handle_is_picklable(tmp_path):
    import pickle

    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    clone = pickle.loads(pickle.dumps(handle))
    loaded = clone.load()
    assert len(loaded.unit) == handle.n_samples
    cache.clear()


# -- integrity --------------------------------------------------------------------


def test_load_missing_file_names_path_and_expected_bytes(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    os.unlink(handle.path)
    with pytest.raises(AmbientIntegrityError) as excinfo:
        handle.load()
    message = str(excinfo.value)
    assert handle.path in message
    assert str(handle.expected_bytes) in message
    assert "missing" in message


def test_load_truncated_file_reports_both_sizes(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    truncate_file(handle.path, n_bytes=128)
    with pytest.raises(AmbientIntegrityError) as excinfo:
        handle.load()
    message = str(excinfo.value)
    assert "truncated" in message
    assert "128 bytes" in message
    assert str(handle.expected_bytes) in message
    cache.clear()


def test_load_detects_bitflip_via_checksum(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    assert handle.checksum is not None
    bitflip_file(handle.path)
    with pytest.raises(AmbientIntegrityError, match="CRC-32"):
        handle.load()
    cache.clear()


def test_cache_regenerates_corrupt_spill(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    first = cache.handle(_config(), seed=0)
    bitflip_file(first.path)
    second = cache.handle(_config(), seed=0)
    assert cache.integrity_failures == 1
    second.verify()  # intact again
    stage = cache.get(_config(), seed=0)
    np.testing.assert_array_equal(np.asarray(second.load().unit), stage.unit)
    # Regeneration re-spills the cached stage; no new eNodeB transmit.
    assert cache.transmit_calls == 1
    cache.clear()


def test_cache_regenerates_deleted_spill(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    first = cache.handle(_config(), seed=0)
    os.unlink(first.path)
    second = cache.handle(_config(), seed=0)
    assert cache.integrity_failures == 1
    assert os.path.exists(second.path)
    cache.clear()


def test_close_and_context_manager_release_scratch(tmp_path):
    with AmbientCache(scratch_dir=tmp_path) as cache:
        handle = cache.handle(_config(), seed=0)
        assert os.path.exists(handle.path)
    assert not os.path.exists(handle.path)

    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    cache.close()
    assert not os.path.exists(handle.path)
    # close() leaves the cache usable: the next handle repopulates.
    again = cache.handle(_config(), seed=0)
    assert os.path.exists(again.path)
    cache.close()
