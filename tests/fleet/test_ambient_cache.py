"""Shared-ambient cache tests."""

import os

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.faults import bitflip_file, truncate_file
from repro.fleet import AmbientCache, AmbientIntegrityError


def _config(**kwargs):
    defaults = dict(bandwidth_mhz=1.4, n_frames=1, reference_mode="genie")
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def test_cache_hits_share_one_transmit():
    cache = AmbientCache()
    first = cache.get(_config(), seed=0)
    second = cache.get(_config(), seed=0)
    assert cache.transmit_calls == 1
    assert second is first
    assert len(cache) == 1


def test_cache_misses_on_different_key():
    cache = AmbientCache()
    cache.get(_config(), seed=0)
    cache.get(_config(), seed=1)
    cache.get(_config(n_frames=2), seed=0)
    assert cache.transmit_calls == 3
    assert len(cache) == 3


def test_cached_stage_is_unit_power_and_self_consistent():
    cache = AmbientCache()
    stage = cache.get(_config(), seed=0)
    np.testing.assert_allclose(np.mean(np.abs(stage.unit) ** 2), 1.0)
    # Genie reference and reflected waveform come from the same array.
    assert stage.capture.samples is stage.unit


def test_handle_round_trips_through_memmap(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    stage = cache.get(_config(), seed=0)
    handle = cache.handle(_config(), seed=0)
    assert cache.transmit_calls == 1  # handle reuses the cached stage
    assert os.path.exists(handle.path)
    loaded = handle.load()
    np.testing.assert_array_equal(np.asarray(loaded.unit), stage.unit)
    assert loaded.capture.samples is loaded.unit
    # A second handle reuses the same scratch file.
    again = cache.handle(_config(), seed=0)
    assert again.path == handle.path
    cache.clear()
    assert not os.path.exists(handle.path)


def test_handle_is_picklable(tmp_path):
    import pickle

    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    clone = pickle.loads(pickle.dumps(handle))
    loaded = clone.load()
    assert len(loaded.unit) == handle.n_samples
    cache.clear()


# -- cell identity in the key -----------------------------------------------------


def test_cache_keys_disjoint_on_cell_identity():
    """Two cells differing only in identity must never share a slot."""
    from repro.lte import CellConfig

    cache = AmbientCache()
    cell_a = cache.get(_config(cell=CellConfig(n_id_1=1, n_id_2=0)), seed=0)
    cell_b = cache.get(_config(cell=CellConfig(n_id_1=1, n_id_2=1)), seed=0)
    assert cache.transmit_calls == 2
    assert len(cache) == 2
    assert cell_a is not cell_b
    # Same identity twice is still one entry.
    cache.get(_config(cell=CellConfig(n_id_1=1, n_id_2=0)), seed=0)
    assert cache.transmit_calls == 2


def test_key_for_encodes_physical_cell_id():
    from repro.lte import CellConfig

    key = AmbientCache.key_for(
        _config(cell=CellConfig(n_id_1=11, n_id_2=2)), seed=5
    )
    assert key.cell_id == 3 * 11 + 2
    assert key.seed == 5
    other = AmbientCache.key_for(
        _config(cell=CellConfig(n_id_1=11, n_id_2=1)), seed=5
    )
    assert key != other


def test_requests_counter_tracks_hits_and_misses():
    cache = AmbientCache()
    assert cache.requests == 0
    cache.get(_config(), seed=0)
    cache.get(_config(), seed=0)
    cache.get(_config(), seed=1)
    assert cache.requests == 3
    assert cache.transmit_calls == 2
    # The bench's hit ratio: (requests - transmits) / requests.
    assert (cache.requests - cache.transmit_calls) / cache.requests == pytest.approx(
        1 / 3
    )


# -- integrity --------------------------------------------------------------------


def test_load_missing_file_names_path_and_expected_bytes(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    os.unlink(handle.path)
    with pytest.raises(AmbientIntegrityError) as excinfo:
        handle.load()
    message = str(excinfo.value)
    assert handle.path in message
    assert str(handle.expected_bytes) in message
    assert "missing" in message


def test_load_truncated_file_reports_both_sizes(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    truncate_file(handle.path, n_bytes=128)
    with pytest.raises(AmbientIntegrityError) as excinfo:
        handle.load()
    message = str(excinfo.value)
    assert "truncated" in message
    assert "128 bytes" in message
    assert str(handle.expected_bytes) in message
    cache.clear()


def test_load_detects_bitflip_via_checksum(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    assert handle.checksum is not None
    bitflip_file(handle.path)
    with pytest.raises(AmbientIntegrityError, match="CRC-32"):
        handle.load()
    cache.clear()


def test_cache_regenerates_corrupt_spill(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    first = cache.handle(_config(), seed=0)
    bitflip_file(first.path)
    second = cache.handle(_config(), seed=0)
    assert cache.integrity_failures == 1
    second.verify()  # intact again
    stage = cache.get(_config(), seed=0)
    np.testing.assert_array_equal(np.asarray(second.load().unit), stage.unit)
    # Regeneration re-spills the cached stage; no new eNodeB transmit.
    assert cache.transmit_calls == 1
    cache.clear()


def test_cache_regenerates_deleted_spill(tmp_path):
    cache = AmbientCache(scratch_dir=tmp_path)
    first = cache.handle(_config(), seed=0)
    os.unlink(first.path)
    second = cache.handle(_config(), seed=0)
    assert cache.integrity_failures == 1
    assert os.path.exists(second.path)
    cache.clear()


def test_close_and_context_manager_release_scratch(tmp_path):
    with AmbientCache(scratch_dir=tmp_path) as cache:
        handle = cache.handle(_config(), seed=0)
        assert os.path.exists(handle.path)
    assert not os.path.exists(handle.path)

    cache = AmbientCache(scratch_dir=tmp_path)
    handle = cache.handle(_config(), seed=0)
    cache.close()
    assert not os.path.exists(handle.path)
    # close() leaves the cache usable: the next handle repopulates.
    again = cache.handle(_config(), seed=0)
    assert os.path.exists(again.path)
    cache.close()


def test_failed_spill_leaves_no_scratch_file(tmp_path, monkeypatch):
    """A spill that dies mid-write (full disk, interrupt) must unlink the
    half-written scratch file: ``entry.path`` is only assigned on success,
    so nothing else would ever clean it up."""
    cache = AmbientCache(scratch_dir=tmp_path)
    cache.get(_config(), seed=0)  # populate the in-memory stage first

    def exploding_write(*args, **kwargs):
        raise OSError("no space left on device")

    monkeypatch.setattr(np, "ascontiguousarray", exploding_write)
    with pytest.raises(OSError):
        cache.handle(_config(), seed=0)
    assert list(tmp_path.iterdir()) == []

    # The cache survives the failure: once writes work again the same
    # entry spills cleanly.
    monkeypatch.undo()
    handle = cache.handle(_config(), seed=0)
    assert os.path.exists(handle.path)
    assert cache.transmit_calls == 1
    cache.clear()


def test_exception_between_handle_and_close_cleans_scratch(tmp_path):
    """The context manager releases scratch spills on *error* exits too —
    the runner crashing between ``handle()`` and ``close()`` must not
    leak ``lscatter-ambient-*.iq`` files into the tempdir."""
    with pytest.raises(RuntimeError):
        with AmbientCache(scratch_dir=tmp_path) as cache:
            handle = cache.handle(_config(), seed=0)
            assert os.path.exists(handle.path)
            raise RuntimeError("worker pool died")
    assert list(tmp_path.iterdir()) == []
