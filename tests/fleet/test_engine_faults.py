"""Hardened run-engine tests: timeouts, retries, partial results."""

import os
import time

import pytest

from repro.faults import FaultyTask, InfraFaults
from repro.fleet import ParallelRunEngine, TaskFailure


def _double(task):
    return 0.01, task * 2


def _slow_then_double(task):
    # Task 0 is slow; the others finish immediately.  With serialized
    # harvesting, results would arrive in submission order anyway; with
    # as_completed, fast results land while 0 is still running.
    if task == 0:
        time.sleep(0.5)
    return 0.01, task * 2


def _always_fails(task):
    raise ValueError(f"task {task} is broken")


def test_results_are_in_task_order_with_as_completed():
    engine = ParallelRunEngine(workers=3)
    results = engine.map(_slow_then_double, list(range(6)))
    assert results == [0, 2, 4, 6, 8, 10]


def test_worker_only_failure_recovers_in_parent():
    # FaultyTask records the parent PID at construction, so the crash
    # fires in workers only; the parent retry succeeds.
    faulty = FaultyTask(_double, crash_tasks=(0, 1, 2))
    assert faulty.parent_pid == os.getpid()
    engine = ParallelRunEngine(workers=2, max_retries=1)
    results = engine.map(faulty, [0, 1, 2])
    assert results == [0, 2, 4]
    assert engine.telemetry.retried >= 1
    assert engine.telemetry.failed == 0


def test_hung_worker_times_out_and_parent_retries():
    faulty = FaultyTask(_double, hang_tasks=(1,), hang_seconds=30.0)
    engine = ParallelRunEngine(workers=2, task_timeout_seconds=1.0)
    start = time.perf_counter()
    results = engine.map(faulty, [0, 1, 2])
    elapsed = time.perf_counter() - start
    assert results == [0, 2, 4]
    assert engine.telemetry.timed_out == 1
    assert engine.telemetry.retried >= 1
    # Bounded: far less than the 30 s hang.
    assert elapsed < 15.0


def test_partial_mode_yields_task_failure_sentinel():
    engine = ParallelRunEngine(
        workers=1, max_retries=1, on_error="partial", retry_backoff_seconds=0.0
    )
    results = engine.map(_always_fails, [0, 1])
    assert all(isinstance(r, TaskFailure) for r in results)
    assert results[0].index == 0
    assert "ValueError" in results[0].error
    assert results[0].attempts == 2  # first try + one retry
    assert engine.telemetry.failed == 2


def test_raise_mode_propagates_after_retries():
    engine = ParallelRunEngine(
        workers=1, max_retries=1, retry_backoff_seconds=0.0
    )
    with pytest.raises(ValueError, match="broken"):
        engine.map(_always_fails, [0])


def test_backoff_is_exponential_and_capped():
    engine = ParallelRunEngine(
        workers=1,
        max_retries=3,
        on_error="partial",
        retry_backoff_seconds=0.01,
        backoff_cap_seconds=0.02,
    )
    engine.map(_always_fails, [0])
    # Sleeps: 0.01, 0.02 (doubled), 0.02 (capped).
    assert abs(engine.telemetry.backoff_seconds - 0.05) < 1e-9


def test_invalid_on_error_rejected():
    with pytest.raises(ValueError):
        ParallelRunEngine(on_error="ignore")


def test_injected_crash_in_fleet_is_bit_identical(tmp_path):
    """A fleet run with a worker crash reproduces the clean results."""
    from repro.fleet import AmbientCache, Deployment, FleetRunner

    deployment = Deployment.ring(2, bandwidth_mhz=1.4, n_frames=1)
    with AmbientCache(scratch_dir=tmp_path) as cache:
        with FleetRunner(deployment, workers=1, seed=0, cache=cache) as runner:
            clean = runner.run(payload_length=2000)
        faults = InfraFaults(crash_tasks=(0, 1))
        with FleetRunner(
            deployment, workers=2, seed=0, cache=cache, infra_faults=faults
        ) as runner:
            faulted = runner.run(payload_length=2000)
    assert faulted.retried_tasks == 2
    assert faulted.failed_tags == 0
    for a, b in zip(clean.tags, faulted.tags):
        assert (a.name, a.n_bits, a.n_errors, a.n_windows) == (
            b.name,
            b.n_bits,
            b.n_errors,
            b.n_windows,
        )
