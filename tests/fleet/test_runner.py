"""Fleet runner + parallel engine tests."""

import numpy as np
import pytest

from repro.fleet import AmbientCache, Deployment, FleetRunner, ParallelRunEngine
from repro.fleet.runner import TagTask, _simulate_tag


def _deployment(n_tags=2, n_frames=2):
    return Deployment.ring(n_tags, bandwidth_mhz=1.4, n_frames=n_frames)


def _tag_key(result):
    return (result.name, result.n_bits, result.n_errors, result.sync_error_us)


def test_tdma_fleet_end_to_end():
    report = FleetRunner(_deployment(2), scheme="tdma", seed=0).run(
        payload_length=5000
    )
    assert report.n_tags == 2
    assert report.n_half_frames == 4
    assert report.collision_fraction == 0.0
    assert report.aggregate_throughput_bps > 0
    owned = [t.owned_half_frames for t in report.tags]
    assert owned == [2, 2]
    assert report.transmit_invocations == 1
    assert "aggregate" in report.format_table()


def test_fleet_deterministic_per_seed():
    a = FleetRunner(_deployment(2), scheme="tdma", seed=3).run(payload_length=2000)
    b = FleetRunner(_deployment(2), scheme="tdma", seed=3).run(payload_length=2000)
    assert [_tag_key(t) for t in a.tags] == [_tag_key(t) for t in b.tags]


def test_parallel_matches_serial_bit_for_bit():
    cache = AmbientCache()
    serial = FleetRunner(
        _deployment(3), scheme="tdma", workers=1, seed=0, cache=cache
    ).run(payload_length=3000)
    parallel = FleetRunner(
        _deployment(3), scheme="tdma", workers=2, seed=0, cache=cache
    ).run(payload_length=3000)
    assert [_tag_key(t) for t in serial.tags] == [
        _tag_key(t) for t in parallel.tags
    ]
    # Both runs shared one eNodeB capture.
    assert cache.transmit_calls == 1
    assert parallel.workers == 2
    cache.clear()


def test_shared_cache_across_runs_and_schemes():
    cache = AmbientCache()
    FleetRunner(_deployment(2), scheme="tdma", seed=0, cache=cache).run(
        payload_length=1000
    )
    FleetRunner(_deployment(4), scheme="priority", seed=0, cache=cache).run(
        payload_length=1000
    )
    assert cache.transmit_calls == 1


def test_aloha_fleet_reports_collisions():
    # Force contention: everyone transmits every half-frame, similar powers.
    from repro.fleet.scheduler import make_scheme

    scheme = make_scheme("aloha", p=1.0)
    report = FleetRunner(_deployment(2), scheme=scheme, seed=0).run(
        payload_length=1000
    )
    assert report.collision_fraction == 1.0
    assert report.aggregate_throughput_bps == 0.0
    assert all(t.owned_half_frames == 0 for t in report.tags)
    assert all(t.collided_half_frames == 4 for t in report.tags)


def test_zero_airtime_tag_skips_simulation():
    report = FleetRunner(_deployment(1, n_frames=1), scheme="tdma", seed=0).run(
        payload_length=1000
    )
    assert report.tags[0].n_bits > 0
    # A tag that owns nothing reports empty results without simulating.
    task = TagTask(
        index=0,
        name="idle",
        config=None,
        seed=0,
        owned=(),
        collided=2,
        payload_length=10,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
    )
    _, result = _simulate_tag(task)
    assert result.n_bits == 0
    assert result.collided_half_frames == 2
    assert np.isnan(result.ber)


# -- engine ---------------------------------------------------------------------


def _square(task):
    return 0.01, task * task


def test_engine_serial_path():
    engine = ParallelRunEngine(workers=1)
    assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert engine.telemetry.workers == 1
    assert engine.telemetry.task_seconds == pytest.approx(0.03)


def test_engine_parallel_preserves_order():
    engine = ParallelRunEngine(workers=2)
    assert engine.map(_square, list(range(8))) == [i * i for i in range(8)]
    assert engine.telemetry.workers == 2


def _flaky(task):
    if task == "boom":
        raise RuntimeError("worker exploded")
    return 0.0, task


def test_engine_retries_failed_task_serially():
    engine = ParallelRunEngine(workers=2, max_retries=1)
    with pytest.raises(RuntimeError):
        engine.map(_flaky, ["ok", "boom"])


def test_engine_defaults_workers_to_cpu_count():
    engine = ParallelRunEngine(workers=None)
    assert engine.workers >= 1
