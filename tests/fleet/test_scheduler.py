"""Fleet scheduler tests: half-frame assignment + capture resolution."""

import pytest

from repro.fleet import FleetScheduler, make_scheme
from repro.mac import PriorityScheme, SlottedAlohaScheme, TdmaScheme


def test_make_scheme_names():
    assert isinstance(make_scheme("tdma"), TdmaScheme)
    assert isinstance(make_scheme("aloha"), SlottedAlohaScheme)
    assert isinstance(make_scheme("priority"), PriorityScheme)
    with pytest.raises(ValueError):
        make_scheme("csma")


def test_tdma_round_robin_assignment():
    scheduler = FleetScheduler(TdmaScheme(), rng=0)
    schedule = scheduler.assign(["a", "b", "c"], 6)
    assert schedule.owned_half_frames("a") == [0, 3]
    assert schedule.owned_half_frames("b") == [1, 4]
    assert schedule.owned_half_frames("c") == [2, 5]
    assert schedule.collision_fraction == 0.0
    assert schedule.airtime_utilisation == 1.0


def test_priority_weights_share_airtime():
    scheme = PriorityScheme(weights={"heavy": 3, "light": 1})
    schedule = FleetScheduler(scheme, rng=0).assign(["heavy", "light"], 8)
    assert len(schedule.owned_half_frames("heavy")) == 6
    assert len(schedule.owned_half_frames("light")) == 2
    assert schedule.collision_fraction == 0.0


def test_aloha_collisions_without_capture():
    scheme = SlottedAlohaScheme(p=1.0)  # everyone always transmits
    schedule = FleetScheduler(scheme, rng=0).assign(
        ["a", "b"], 10, {"a": -40.0, "b": -41.0}
    )
    # Equal-ish powers: every slot collides, nobody wins.
    assert schedule.collision_fraction == 1.0
    assert schedule.owned_half_frames("a") == []
    assert schedule.collided_half_frames("a") == list(range(10))


def test_aloha_capture_rescues_strong_tag():
    scheme = SlottedAlohaScheme(p=1.0)
    schedule = FleetScheduler(scheme, rng=0).assign(
        ["strong", "weak"], 10, {"strong": -30.0, "weak": -55.0}
    )
    assert schedule.owned_half_frames("strong") == list(range(10))
    assert schedule.owned_half_frames("weak") == []
    assert schedule.collision_fraction == 0.0
    assert schedule.collided_half_frames("weak") == list(range(10))


def test_collisions_destroy_all_without_powers():
    scheme = SlottedAlohaScheme(p=1.0)
    schedule = FleetScheduler(scheme, rng=0).assign(["a", "b"], 4)
    assert schedule.airtime_utilisation == 0.0


def test_idle_fraction_counted():
    scheme = SlottedAlohaScheme(p=0.0)  # nobody ever transmits
    schedule = FleetScheduler(scheme, rng=0).assign(["a"], 5, {"a": -40.0})
    assert schedule.idle_fraction == 1.0
    assert schedule.airtime_utilisation == 0.0


def test_scheduler_rejects_empty_fleet():
    with pytest.raises(ValueError):
        FleetScheduler(TdmaScheme(), rng=0).assign([], 4)
