"""Fleet deployment-model tests."""

import pytest

from repro.fleet import Deployment, TagPlacement


def test_ring_layout_deterministic():
    a = Deployment.ring(4)
    b = Deployment.ring(4)
    assert a.names == ["tag00", "tag01", "tag02", "tag03"]
    assert [t.enb_to_tag_ft for t in a.tags] == [t.enb_to_tag_ft for t in b.tags]


def test_uniform_random_deterministic_under_seed():
    a = Deployment.uniform_random(5, rng=7)
    b = Deployment.uniform_random(5, rng=7)
    c = Deployment.uniform_random(5, rng=8)
    assert [t.enb_to_tag_ft for t in a.tags] == [t.enb_to_tag_ft for t in b.tags]
    assert [t.enb_to_tag_ft for t in a.tags] != [t.enb_to_tag_ft for t in c.tags]


def test_config_for_carries_geometry_and_shared_knobs():
    deployment = Deployment.ring(2, bandwidth_mhz=1.4, n_frames=3, venue="office")
    config = deployment.config_for(deployment.tags[1])
    assert config.bandwidth_mhz == 1.4
    assert config.n_frames == 3
    assert config.venue == "office"
    assert config.enb_to_tag_ft == deployment.tags[1].enb_to_tag_ft
    assert config.reference_mode == "genie"


def test_tag_powers_monotone_in_distance():
    deployment = Deployment.ring(4, enb_to_tag_ft=4.0, spread_ft=8.0)
    powers = deployment.tag_powers_dbm()
    ordered = [powers[name] for name in deployment.names]
    assert ordered == sorted(ordered, reverse=True)


def test_n_half_frames():
    assert Deployment.ring(1, n_frames=4).n_half_frames == 8


def test_invalid_deployments_rejected():
    with pytest.raises(ValueError):
        Deployment(tags=[])
    with pytest.raises(ValueError):
        Deployment(
            tags=[
                TagPlacement("dup", 1.0, 1.0),
                TagPlacement("dup", 2.0, 2.0),
            ]
        )
    with pytest.raises(ValueError):
        TagPlacement("bad", -1.0, 1.0)
    with pytest.raises(ValueError):
        TagPlacement("bad", 1.0, 1.0, weight=0)


def test_placement_errors_name_the_tag_and_field():
    with pytest.raises(ValueError, match=r"tag 'kitchen': enb_to_tag_ft"):
        TagPlacement("kitchen", -3.0, 1.0)
    with pytest.raises(ValueError, match="hop lengths in feet, not coordinates"):
        TagPlacement("kitchen", 0.0, 1.0)
    with pytest.raises(ValueError, match=r"tag 'door': tag_to_ue_ft"):
        TagPlacement("door", 1.0, -1.0)
    with pytest.raises(
        ValueError, match=r"tag 'w': scheduling weight must be positive"
    ):
        TagPlacement("w", 1.0, 1.0, weight=-2)


def test_duplicate_name_error_lists_offenders():
    with pytest.raises(ValueError, match=r"must be unique; duplicated: \['dup'\]"):
        Deployment(
            tags=[
                TagPlacement("dup", 1.0, 1.0),
                TagPlacement("dup", 2.0, 2.0),
            ]
        )


def test_duplicate_position_error_names_both_tags():
    with pytest.raises(
        ValueError, match=r"'a' and 'b' occupy the same position"
    ):
        Deployment(
            tags=[
                TagPlacement("a", 10.0, 5.0),
                TagPlacement("b", 10.0, 5.0),
            ]
        )
    # Same eNodeB distance but different UE hop is a distinct position.
    ok = Deployment(
        tags=[
            TagPlacement("a", 10.0, 5.0),
            TagPlacement("b", 10.0, 6.0),
        ]
    )
    assert ok.names == ["a", "b"]
