"""Seeded-RNG helper tests."""

import numpy as np

from repro.utils.rng import make_rng, spawn_rngs


def test_same_int_seed_same_stream():
    a = make_rng(42).random(10)
    b = make_rng(42).random(10)
    assert np.array_equal(a, b)


def test_string_seed_is_stable():
    a = make_rng("hello").random(5)
    b = make_rng("hello").random(5)
    assert np.array_equal(a, b)


def test_different_strings_differ():
    a = make_rng("alpha").random(5)
    b = make_rng("beta").random(5)
    assert not np.array_equal(a, b)


def test_generator_passthrough():
    rng = np.random.default_rng(1)
    assert make_rng(rng) is rng


def test_spawn_streams_independent():
    children = spawn_rngs(7, 3)
    draws = [child.random(100) for child in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_deterministic():
    a = [r.random(4) for r in spawn_rngs(9, 2)]
    b = [r.random(4) for r in spawn_rngs(9, 2)]
    for x, y in zip(a, b):
        assert np.array_equal(x, y)
