"""Application-layer tests: EMG auth and sensor network."""

import numpy as np
import pytest

from repro.apps import ContinuousAuthApp, EmgGenerator, SensorNetwork, emg_features
from repro.apps.emg import profile_for_user
from repro.apps.sensing import SensorTag


def test_emg_deterministic_profiles():
    a = profile_for_user(5)
    b = profile_for_user(5)
    assert a == b
    assert profile_for_user(6) != a


def test_emg_signal_statistics():
    signal = EmgGenerator(0, rng=0).generate(5.0)
    assert len(signal) == 5000
    assert abs(np.mean(signal)) < 0.05  # zero-mean
    assert np.std(signal) > 0.01  # actually active


def test_emg_features_shape_and_positive():
    signal = EmgGenerator(1, rng=1).generate(1.0)
    features = emg_features(signal)
    assert features.shape == (4,)
    assert np.all(features >= 0)


def test_emg_features_discriminate_users():
    f0 = emg_features(EmgGenerator(0, rng=2).generate(4.0))
    f9 = emg_features(EmgGenerator(9, rng=3).generate(4.0))
    assert not np.allclose(f0, f9, rtol=0.05)


def test_empty_window_rejected():
    with pytest.raises(ValueError):
        emg_features(np.array([]))


def test_update_rate_decreases_with_distance():
    rates = [
        ContinuousAuthApp(enb_to_tag_ft=d, rng=0).update_rate_sps()
        for d in (2, 16, 32, 40)
    ]
    assert all(b < a for a, b in zip(rates, rates[1:]))
    # Paper Fig. 33b anchors: ~136 sps at 2 ft, single digits at 40 ft.
    assert rates[0] > 120
    assert rates[-1] < 15


def test_auth_accepts_legit_rejects_imposter():
    app = ContinuousAuthApp(enb_to_tag_ft=2.0, rng=4)
    report = app.run(legit_user=0, imposter_user=1, duration_s=12.0)
    assert report.accept_rate_legit > 0.8
    assert report.reject_rate_imposter > 0.5
    assert report.accept_rate_legit > 1.0 - report.reject_rate_imposter


def test_enrolled_template_reusable():
    template = ContinuousAuthApp.enroll(0, rng=5)
    signal = EmgGenerator(0, rng=6).generate(0.25)
    assert ContinuousAuthApp.authenticate(signal, template)


def test_sensor_network_delivery_ordering():
    tags = [
        SensorTag("near", 3, 4),
        SensorTag("far", 20, 20),
    ]
    network = SensorNetwork(tags, rng=0)
    report = network.run(duration_s=5.0)
    assert (
        report.per_tag_delivery["near"] > report.per_tag_delivery["far"]
    )
    assert report.aggregate_readings_per_s > 0


def test_sensor_network_slots_shared():
    # Doubling the tag count halves each tag's slot share.
    one = SensorNetwork([SensorTag("a", 3, 3)], rng=1).run(10.0)
    two = SensorNetwork(
        [SensorTag("a", 3, 3), SensorTag("b", 3, 3)], rng=1
    ).run(10.0)
    assert two.per_tag_readings_per_s["a"] == pytest.approx(
        one.per_tag_readings_per_s["a"] / 2, rel=0.15
    )


def test_empty_network_rejected():
    with pytest.raises(ValueError):
        SensorNetwork([])
