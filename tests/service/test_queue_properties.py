"""Property tests for the bounded priority-FIFO job queue.

The queue's contract (see ``repro.service.queue``) has three invariants
worth pinning with generated inputs rather than examples:

* strict FIFO *within* a priority level, priorities drained ascending;
* conservation — every accepted job is popped exactly once, across any
  interleaving of submits, pops, close/reopen cycles;
* backpressure shed count is monotone non-decreasing in offered load at
  a fixed depth (more offered sessions can never mean fewer sheds).
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import BackpressureShed, JobQueue, QueueClosed


def _drain_all(queue):
    out = []
    while True:
        job = queue.get(timeout=0)
        if job is None:
            return out
        out.append(job)


@given(
    priorities=st.lists(st.integers(min_value=0, max_value=3), max_size=40)
)
@settings(max_examples=60, deadline=None)
def test_pops_sorted_by_priority_then_admission_order(priorities):
    queue = JobQueue(max_depth=64)
    for i, priority in enumerate(priorities):
        queue.submit(("job", i), priority=priority)
    popped = _drain_all(queue)
    keys = [(job.priority, job.job_id) for job in popped]
    assert keys == sorted(keys)
    # FIFO within each priority level: payload indices ascend.
    for level in set(job.priority for job in popped):
        indices = [
            job.payload[1] for job in popped if job.priority == level
        ]
        assert indices == sorted(indices)


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("submit"), st.integers(0, 3)),
            st.just(("pop", None)),
            st.just(("close", None)),
            st.just(("reopen", None)),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_no_job_lost_or_duplicated_across_close_reopen(ops):
    queue = JobQueue(max_depth=8)
    accepted, popped = [], []
    serial = 0
    for op, arg in ops:
        if op == "submit":
            serial += 1
            try:
                job = queue.submit(("payload", serial), priority=arg)
            except (BackpressureShed, QueueClosed):
                continue
            accepted.append(job.job_id)
        elif op == "pop":
            job = queue.get(timeout=0)
            if job is not None:
                popped.append(job.job_id)
        elif op == "close":
            queue.close()
        else:
            queue.reopen()
    popped += [job.job_id for job in _drain_all(queue)]
    # Exactly once: every accepted job appears exactly once among pops.
    assert sorted(popped) == sorted(accepted)
    assert len(set(popped)) == len(popped)
    counters = queue.counters()
    assert counters["submitted"] == len(accepted)
    assert counters["popped"] == len(popped)
    assert counters["depth"] == 0


@given(
    loads=st.lists(st.integers(min_value=0, max_value=40), min_size=2, max_size=8)
)
@settings(max_examples=40, deadline=None)
def test_shed_count_monotone_in_offered_load(loads):
    """At fixed depth and no consumption, shed is monotone in offered load."""
    depth = 5
    sheds = []
    for offered in sorted(loads):
        queue = JobQueue(max_depth=depth)
        for i in range(offered):
            try:
                queue.submit(("burst", i))
            except BackpressureShed:
                pass
        assert queue.counters()["shed"] == max(0, offered - depth)
        sheds.append(queue.counters()["shed"])
    assert sheds == sorted(sheds)


def test_depth_one_queue_sheds_second_submission():
    queue = JobQueue(max_depth=1)
    queue.submit("first")
    with pytest.raises(BackpressureShed):
        queue.submit("second")
    assert queue.counters() == {
        "depth": 1,
        "max_depth": 1,
        "submitted": 1,
        "shed": 1,
        "rejected_closed": 0,
        "popped": 0,
    }


def test_closed_queue_rejects_but_still_pops():
    queue = JobQueue(max_depth=4)
    job = queue.submit("kept")
    queue.close()
    with pytest.raises(QueueClosed):
        queue.submit("late")
    assert queue.counters()["rejected_closed"] == 1
    # Drain mode: the accepted job is still handed out.
    assert queue.get(timeout=0).job_id == job.job_id
    queue.reopen()
    queue.submit("after-reopen")
    assert queue.counters()["submitted"] == 2


def test_invalid_depth_rejected():
    with pytest.raises(ValueError, match="max_depth"):
        JobQueue(max_depth=0)


def test_wake_all_releases_blocked_get():
    queue = JobQueue(max_depth=4)
    results = []

    def blocked_get():
        results.append(queue.get(timeout=5.0))

    thread = threading.Thread(target=blocked_get)
    thread.start()
    # Wake the waiter without giving it a job: get returns None promptly.
    import time

    time.sleep(0.05)
    queue.wake_all()
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert results == [None]


def test_concurrent_submitters_and_consumers_conserve_jobs():
    """Hammer the queue from both sides; nothing lost, nothing doubled."""
    queue = JobQueue(max_depth=16)
    n_producers, per_producer = 4, 50
    popped, lock = [], threading.Lock()
    done = threading.Event()

    def produce(worker):
        for i in range(per_producer):
            while True:
                try:
                    queue.submit((worker, i))
                    break
                except BackpressureShed:
                    continue

    def consume():
        while not (done.is_set() and queue.depth == 0):
            job = queue.get(timeout=0.01)
            if job is not None:
                with lock:
                    popped.append(job.job_id)

    consumers = [threading.Thread(target=consume) for _ in range(3)]
    producers = [
        threading.Thread(target=produce, args=(w,)) for w in range(n_producers)
    ]
    for t in consumers + producers:
        t.start()
    for t in producers:
        t.join()
    done.set()
    for t in consumers:
        t.join()
    assert len(popped) == n_producers * per_producer
    assert len(set(popped)) == len(popped)
    counters = queue.counters()
    assert counters["popped"] == counters["submitted"]
