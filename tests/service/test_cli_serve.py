"""``repro serve`` CLI tests: validation, --force guard, both modes."""

import json

import pytest

from repro.cli import main


def test_serve_validation_errors(capsys):
    cases = [
        ["serve", "--workers", "0"],
        ["serve", "--queue-depth", "0"],
        ["serve", "--soak", "--sessions", "0"],
        ["serve", "--cohort-tags", "0"],
        ["serve", "--snapshot-every", "0"],
        ["serve", "--frames", "0"],
        ["serve", "--payload", "0"],
        ["serve", "--resume"],  # --resume only applies to --soak
    ]
    for argv in cases:
        assert main(argv) == 2, argv
        assert "error:" in capsys.readouterr().err


def test_serve_soak_refuses_existing_output_without_force(tmp_path, capsys):
    output = tmp_path / "SOAK.json"
    output.write_text("{}")
    code = main(
        [
            "serve", "--soak", "--smoke", "--sessions", "2",
            "--cohort-tags", "2", "--payload", "1000",
            "--output", str(output),
            "--run-dir", str(tmp_path / "run"),
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "exists" in err and "--force" in err
    # The guarded file was not clobbered.
    assert output.read_text() == "{}"


def test_serve_soak_force_overwrites(tmp_path, capsys):
    output = tmp_path / "SOAK.json"
    output.write_text("{}")
    code = main(
        [
            "serve", "--soak", "--smoke", "--sessions", "2",
            "--cohort-tags", "2", "--payload", "1000",
            "--output", str(output),
            "--run-dir", str(tmp_path / "run"),
            "--force",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "soak: service-vs-batch equivalence OK" in out
    assert f"wrote {output}" in out
    report = json.loads(output.read_text())
    assert report["passed"] is True
    assert report["aggregates"]["sessions"] == 2


def test_serve_snapshot_honours_force_guard(tmp_path, capsys):
    snapshot = tmp_path / "snap.json"
    snapshot.write_text("{}")
    code = main(["serve", "--snapshot", str(snapshot)])
    assert code == 2
    assert "--force" in capsys.readouterr().err
    assert snapshot.read_text() == "{}"


def test_serve_resume_does_not_trip_output_guard(tmp_path, capsys):
    """A resumed soak rewrites its own report by design; the guard only
    protects fresh runs from clobbering a previous report."""
    output = tmp_path / "SOAK.json"
    argv = [
        "serve", "--soak", "--smoke", "--sessions", "2",
        "--cohort-tags", "2", "--payload", "1000",
        "--output", str(output),
        "--run-dir", str(tmp_path / "run"),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "completed 0, resumed 1" in out


def test_serve_demo_mode(tmp_path, capsys):
    snapshot = tmp_path / "snap.json"
    code = main(
        [
            "serve", "--workers", "2", "--queue-depth", "4",
            "--cohort-tags", "2", "--payload", "1000",
            "--snapshot", str(snapshot),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "FleetService demo: 2 session(s)" in out
    assert "queue submitted 2" in out
    data = json.loads(snapshot.read_text())
    assert data["service"]["sessions"]["completed"] == 2


@pytest.mark.parametrize("flag", ["--soak"])
def test_serve_soak_smoke_writes_default_artifact_path(
    flag, tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "serve", flag, "--smoke", "--sessions", "2",
            "--cohort-tags", "2", "--payload", "1000",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "wrote artifacts/soak_smoke.json" in out
    assert (tmp_path / "artifacts" / "soak_smoke.json").exists()
    assert (tmp_path / "artifacts" / "soak-smoke").is_dir()
