"""FleetService tests: batch equivalence, drain/reload, telemetry.

The service's core promise is that moving tag-sessions from the batch
engine onto a long-lived queue/worker-pool substrate changes *nothing*
about the results: same tags, same bits, same obs counter contributions.
These tests pin that equivalence at worker counts {1, 4}, the
no-loss/no-duplication guarantee across drain and reload, and the
snapshot/telemetry surface.
"""

import json
import time

import pytest

from repro.fleet import Deployment, FleetRunner
from repro.obs import metrics as obs_metrics
from repro.service import (
    BackpressureShed,
    FleetService,
    ServiceError,
    SessionFailure,
)


def _deployment(n_tags=3, n_frames=2):
    return Deployment.ring(n_tags, bandwidth_mhz=1.4, n_frames=n_frames)


def _tag_key(result):
    return (
        result.name,
        result.n_bits,
        result.n_errors,
        result.n_windows,
        result.sync_error_us,
        result.failed,
    )


def _session_delta(before, after):
    """Counter delta excluding the service's own bookkeeping counters."""
    delta = obs_metrics.counter_delta(before, after)
    return {
        name: value
        for name, value in delta.items()
        if not name.startswith(("service.", "fleet."))
    }


# -- batch equivalence -----------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
def test_service_fleet_matches_batch_bit_for_bit(workers):
    """Same deployment+seed through service and batch: identical tags and
    identical non-service obs counter contributions."""
    before_batch = obs_metrics.counters_snapshot()
    batch = FleetRunner(_deployment(3), scheme="tdma", seed=7).run(
        payload_length=2000
    )
    batch_delta = _session_delta(
        before_batch, obs_metrics.counters_snapshot()
    )

    before_service = obs_metrics.counters_snapshot()
    with FleetService(workers=workers, max_queue_depth=16) as service:
        runner = FleetRunner(_deployment(3), scheme="tdma", seed=7)
        ticket = service.submit_fleet(runner, payload_length=2000)
        report = service.fleet_result(ticket)
        service.drain()
    service_delta = _session_delta(
        before_service, obs_metrics.counters_snapshot()
    )

    assert [_tag_key(t) for t in report.tags] == [
        _tag_key(t) for t in batch.tags
    ]
    assert report.scheme == batch.scheme
    assert report.n_half_frames == batch.n_half_frames
    assert report.collision_fraction == batch.collision_fraction
    assert service_delta == batch_delta


def test_service_worker_counts_agree_with_each_other():
    reports = []
    for workers in (1, 4):
        with FleetService(workers=workers, max_queue_depth=16) as service:
            runner = FleetRunner(_deployment(4), scheme="priority", seed=11)
            ticket = service.submit_fleet(runner, payload_length=1500)
            reports.append(service.fleet_result(ticket))
    assert [_tag_key(t) for t in reports[0].tags] == [
        _tag_key(t) for t in reports[1].tags
    ]


# -- drain / reload conservation -------------------------------------------------


def _cheap_session(task):
    """Engine-shaped session: returns ``(elapsed, result)`` like
    ``_simulate_tag`` without the DSP cost."""
    time.sleep(0.002)
    return 0.002, ("echo", task)


def test_drain_completes_every_accepted_session():
    with FleetService(workers=2, max_queue_depth=64) as service:
        tickets = [
            service.submit(_cheap_session, i) for i in range(20)
        ]
        service.drain()
        # After the drain the service refuses new work until reopen().
        with pytest.raises(ServiceError):
            service.submit(_cheap_session, 99)
        # ...but every accepted session has a result, exactly once each.
        values = [service.result(t, timeout=5.0) for t in tickets]
        assert sorted(v[1] for v in values) == list(range(20))
    assert service.queue.counters()["depth"] == 0


def test_reload_keeps_queued_sessions_and_resizes_pool():
    service = FleetService(workers=1, max_queue_depth=64)
    service.start()
    try:
        tickets = [service.submit(_cheap_session, i) for i in range(12)]
        service.reload(workers=3)
        assert service.workers == 3
        assert service.reloads == 1
        tickets += [service.submit(_cheap_session, i) for i in range(12, 18)]
        values = [service.result(t, timeout=5.0)[1] for t in tickets]
        # No session lost, none duplicated, across the pool swap.
        assert sorted(values) == list(range(18))
    finally:
        service.shutdown()


def test_drain_reopen_cycle_conserves_sessions():
    service = FleetService(workers=2, max_queue_depth=64)
    service.start()
    try:
        first = [service.submit(_cheap_session, i) for i in range(8)]
        service.drain()
        service.reopen()
        second = [service.submit(_cheap_session, i) for i in range(8, 16)]
        service.drain()
        values = [service.result(t)[1] for t in first + second]
        assert sorted(values) == list(range(16))
        assert service.drains == 2
    finally:
        service.shutdown()


def test_backpressure_shed_surfaces_to_submitter():
    def _stuck(task):
        time.sleep(0.5)
        return 0.5, task

    with FleetService(workers=1, max_queue_depth=2) as service:
        accepted = 0
        shed = 0
        for i in range(12):
            try:
                service.submit(_stuck, i)
                accepted += 1
            except BackpressureShed:
                shed += 1
        assert shed > 0
        assert accepted + shed == 12
        counters = service.queue.counters()
        assert counters["shed"] == shed
        assert counters["submitted"] == accepted


def test_failing_session_returns_failure_not_pool_death():
    def _broken(task):
        raise ValueError(f"bad task {task}")

    with FleetService(workers=2, max_queue_depth=8) as service:
        bad = service.submit(_broken, 1)
        good = service.submit(_cheap_session, 2)
        failure = service.result(bad, timeout=5.0)
        assert isinstance(failure, SessionFailure)
        assert "bad task 1" in failure.error
        # The pool survived the raise and still serves sessions.
        assert service.result(good, timeout=5.0) == ("echo", 2)


# -- lifecycle misuse ------------------------------------------------------------


def test_lifecycle_errors():
    service = FleetService(workers=1)
    with pytest.raises(ServiceError, match="cannot submit"):
        service.submit(_cheap_session, 0)
    service.start()
    with pytest.raises(ServiceError, match="already running"):
        service.start()
    with pytest.raises(ServiceError, match="cannot reopen"):
        service.reopen()
    service.shutdown()
    with pytest.raises(ServiceError, match="stopped"):
        service.start()
    # Shutdown is idempotent.
    service.shutdown()
    with pytest.raises(ValueError, match="workers"):
        FleetService(workers=0)


def test_drain_timeout_raises():
    def _slow(task):
        time.sleep(1.0)
        return 1.0, task

    service = FleetService(workers=1, max_queue_depth=8, poll_seconds=0.01)
    service.start()
    try:
        for i in range(4):
            service.submit(_slow, i)
        with pytest.raises(ServiceError, match="drain timed out"):
            service.drain(timeout=0.05)
    finally:
        service.shutdown()


# -- telemetry / snapshot --------------------------------------------------------


def test_snapshot_file_is_complete_json_with_service_section(tmp_path):
    snapshot = tmp_path / "snap.json"
    with FleetService(
        workers=2, max_queue_depth=32, snapshot_path=str(snapshot),
        snapshot_every=4,
    ) as service:
        for i in range(10):
            service.submit(_cheap_session, i)
        service.drain()
    data = json.loads(snapshot.read_text())
    section = data["service"]
    assert section["queue"]["submitted"] == 10
    assert section["sessions"]["completed"] == 10
    assert section["sessions"]["failed"] == 0
    assert section["latency"]["session"]["count"] == 10
    assert section["latency"]["queue_wait"]["p50_seconds"] >= 0.0
    assert section["uptime_seconds"] > 0.0
    # The global metrics registry rides along in the same document.
    assert "counters" in data["metrics"]
    assert service.telemetry.exports >= 2


def test_summary_shape():
    with FleetService(workers=1) as service:
        service.submit(_cheap_session, 0)
        service.drain()
        summary = service.summary()
    assert summary["sessions"] == {"completed": 1, "failed": 0}
    assert summary["latency"]["execute"]["count"] == 1
    assert summary["queue"]["popped"] == 1
