"""Soak harness tests: determinism, checkpoint resume, kill drill.

The soak contract: identical spec → bit-identical ``aggregates`` section,
whatever the workers/queue-depth/interruption history.  The drill tests
kill a soak (an in-process raise from the ``after_cohort`` hook, and a
real ``SIGKILL`` of a ``repro serve --soak`` subprocess), resume it, and
compare the resumed report's aggregates against an uninterrupted
reference with plain ``==``.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import SoakError, build_soak_shards, default_spec, run_soak

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spec(sessions=4, cohort_tags=2, seed=5):
    return default_spec(
        smoke=True,
        sessions=sessions,
        cohort_tags=cohort_tags,
        seed=seed,
        payload_length=1000,
    )


def _soak(tmp_path, name, spec, **kwargs):
    return run_soak(
        output=str(tmp_path / f"{name}.json"),
        run_dir=str(tmp_path / name),
        spec=spec,
        **kwargs,
    )


# -- grid construction -----------------------------------------------------------


def test_build_soak_shards_deterministic_with_remainder():
    spec = _spec(sessions=7, cohort_tags=3)
    a = build_soak_shards(spec)
    b = build_soak_shards(spec)
    assert [(s.shard_id, s.seed, s.params) for s in a] == [
        (s.shard_id, s.seed, s.params) for s in b
    ]
    # 3 + 3 + 1: the last cohort absorbs the remainder.
    assert [s.params["n_tags"] for s in a] == [3, 3, 1]
    assert [s.shard_id for s in a] == [
        "soak-smoke-0000", "soak-smoke-0001", "soak-smoke-0002"
    ]
    # Distinct, spawn-derived cohort seeds.
    assert len({s.seed for s in a}) == 3


def test_default_spec_validation():
    with pytest.raises(ValueError, match="sessions"):
        default_spec(sessions=0)
    with pytest.raises(ValueError, match="cohort_tags"):
        default_spec(cohort_tags=0)
    assert default_spec(smoke=True)["sessions"] == 12
    assert default_spec()["sessions"] == 96


# -- determinism + equivalence gate ---------------------------------------------


def test_soak_aggregates_deterministic_across_service_shapes(tmp_path):
    spec = _spec()
    first = _soak(tmp_path, "a", spec, workers=1, queue_depth=2)
    second = _soak(tmp_path, "b", spec, workers=3, queue_depth=8)
    assert first["aggregates"] == second["aggregates"]
    assert first["passed"] and second["passed"]
    assert first["equivalence"]["passed"]
    assert first["equivalence"]["checked_cohorts"] == 1


def test_soak_report_operations_section(tmp_path):
    spec = _spec()
    report = _soak(tmp_path, "ops", spec, workers=2, queue_depth=4)
    ops = report["operations"]
    assert ops["executed_sessions"] == spec["sessions"]
    assert ops["throughput_sessions_per_second"] > 0
    assert ops["session_latency"]["count"] == spec["sessions"]
    assert ops["session_latency"]["p50_seconds"] > 0
    assert ops["session_latency"]["p99_seconds"] >= ops[
        "session_latency"
    ]["p50_seconds"]
    assert 0.0 <= ops["shed"]["rate"] <= 1.0
    assert ops["peak_rss_mb"] > 0
    # The mid-soak pool swap ran (the spec has >1 cohorts).
    assert ops["reloads"] == 1
    # Report landed on disk as valid JSON matching the return value.
    on_disk = json.loads((tmp_path / "ops.json").read_text())
    assert on_disk["aggregates"] == report["aggregates"]


# -- resume ----------------------------------------------------------------------


def test_resume_skips_checkpoints_and_leaves_bytes_untouched(tmp_path):
    spec = _spec()
    first = _soak(tmp_path, "run", spec, workers=2)
    files = sorted(glob.glob(str(tmp_path / "run" / "soak-smoke-*.json")))
    assert len(files) == len(first["aggregates"]["cohort_crc32"])
    before = {f: Path(f).read_bytes() for f in files}

    resumed = run_soak(
        output=str(tmp_path / "run2.json"),
        run_dir=str(tmp_path / "run"),
        spec=spec,
        workers=2,
        resume=True,
    )
    assert resumed["progress"]["completed_cohorts"] == 0
    assert resumed["progress"]["resumed_cohorts"] == len(files)
    assert resumed["aggregates"] == first["aggregates"]
    assert {f: Path(f).read_bytes() for f in files} == before


def test_crash_after_first_cohort_then_resume_bit_identical(tmp_path):
    spec = _spec(sessions=6, cohort_tags=2)  # 3 cohorts
    reference = _soak(tmp_path, "ref", spec, workers=2)

    class Boom(RuntimeError):
        pass

    def die_after_first(index):
        if index == 0:
            raise Boom("injected crash")

    with pytest.raises(Boom):
        run_soak(
            output=str(tmp_path / "crash.json"),
            run_dir=str(tmp_path / "crash"),
            spec=spec,
            workers=2,
            after_cohort=die_after_first,
        )
    # The crash left exactly one verified checkpoint and no report.
    assert len(glob.glob(str(tmp_path / "crash" / "soak-smoke-*.json"))) == 1
    assert not (tmp_path / "crash.json").exists()

    resumed = run_soak(
        output=str(tmp_path / "crash.json"),
        run_dir=str(tmp_path / "crash"),
        spec=spec,
        workers=2,
        resume=True,
    )
    assert resumed["progress"]["resumed_cohorts"] == 1
    assert resumed["progress"]["completed_cohorts"] == 2
    assert resumed["aggregates"] == reference["aggregates"]
    assert resumed["passed"]


def test_corrupt_checkpoint_is_rerun_not_trusted(tmp_path):
    spec = _spec()
    first = _soak(tmp_path, "run", spec, workers=1)
    victim = sorted(
        glob.glob(str(tmp_path / "run" / "soak-smoke-*.json"))
    )[0]
    Path(victim).write_text('{"payload": "truncated"')
    resumed = run_soak(
        output=str(tmp_path / "run3.json"),
        run_dir=str(tmp_path / "run"),
        spec=spec,
        workers=1,
        resume=True,
    )
    assert resumed["progress"]["completed_cohorts"] == 1
    assert resumed["aggregates"] == first["aggregates"]


def test_missing_checkpoint_after_soak_raises(tmp_path):
    spec = _spec(sessions=2, cohort_tags=2)  # single cohort

    def eat_checkpoint(index):
        for path in glob.glob(str(tmp_path / "gone" / "soak-smoke-*.json")):
            os.unlink(path)

    with pytest.raises(SoakError, match="missing"):
        run_soak(
            output=str(tmp_path / "gone.json"),
            run_dir=str(tmp_path / "gone"),
            spec=spec,
            workers=1,
            after_cohort=eat_checkpoint,
        )


# -- the real thing: SIGKILL a soak subprocess, resume it ------------------------


def test_sigkill_soak_subprocess_then_resume_bit_identical(tmp_path):
    """Phase 1: launch ``repro serve --soak`` and SIGKILL it after its
    first checkpoint lands.  Phase 2: resume in-process.  Phase 3: the
    resumed aggregates equal an uninterrupted reference run's."""
    spec = _spec(sessions=8, cohort_tags=2, seed=9)  # 4 cohorts
    run_dir = tmp_path / "killed"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "--soak", "--smoke",
            "--sessions", str(spec["sessions"]),
            "--cohort-tags", str(spec["cohort_tags"]),
            "--seed", str(spec["seed"]),
            "--payload", str(spec["payload_length"]),
            "--workers", "2",
            "--output", str(tmp_path / "killed.json"),
            "--run-dir", str(run_dir),
        ],
        env=env,
        cwd=str(REPO_ROOT),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if glob.glob(str(run_dir / "soak-smoke-*.json")):
                break
            if proc.poll() is not None:
                pytest.fail(
                    f"soak subprocess exited (rc={proc.returncode}) before "
                    f"writing a checkpoint"
                )
            time.sleep(0.05)
        else:
            pytest.fail("soak subprocess never wrote a checkpoint")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL
    survivors = glob.glob(str(run_dir / "soak-smoke-*.json"))
    assert 1 <= len(survivors) < 4

    resumed = run_soak(
        output=str(tmp_path / "killed.json"),
        run_dir=str(run_dir),
        spec=spec,
        workers=2,
        resume=True,
    )
    reference = _soak(tmp_path, "reference", spec, workers=1, queue_depth=2)
    assert resumed["progress"]["resumed_cohorts"] >= 1
    assert resumed["aggregates"] == reference["aggregates"]
    assert resumed["passed"] and reference["passed"]
