"""Default-mode bit-identity: the substrate refactor must cost zero bits.

These goldens were recorded on the pre-substrate pipeline; any drift in
the default (chip) path — an extra RNG draw, a reordered stage, a
changed window layout — shows up here as a hard failure.  The explicit
``substrate="chip"`` spelling must match the implicit default exactly,
and a :class:`~repro.fleet.runner.FleetRunner` with no substrate
argument must reproduce the recorded per-tag numbers.
"""

import pytest

from repro.core import LScatterSystem, SystemConfig
from repro.fleet import Deployment, FleetRunner

#: (n_bits, n_errors, n_windows, n_lost, n_erased, sync_error_us).
GOLDEN_DECODED_SEED7 = (16704, 3, 232, 0, 0, 0.0)
GOLDEN_GENIE_SEED3 = (12528, 5, 174, 0, 0, 1.5625)
#: Per-tag rows of the golden fleet run (name, bits, errors, windows,
#: lost, erased, sync_error_us).
GOLDEN_FLEET = (
    ("tag00", 4176, 2, 58, 0, 0, 2.6041666666666665),
    ("tag01", 4176, 0, 58, 0, 0, 1.0416666666666667),
    ("tag02", 4176, 0, 58, 0, 0, -1.0416666666666667),
)


def _fields(report):
    return (
        report.n_bits,
        report.n_errors,
        report.n_windows,
        report.n_lost_windows,
        report.n_erased_windows,
        report.sync_error_us,
    )


def _decoded_config(**overrides):
    kwargs = dict(
        bandwidth_mhz=1.4,
        n_frames=2,
        reference_mode="decoded",
        multipath=False,
        add_noise=False,
        sync_error_samples=0,
    )
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def _genie_config(**overrides):
    kwargs = dict(
        bandwidth_mhz=1.4,
        n_frames=2,
        reference_mode="genie",
        sync_mode="model",
        multipath=False,
    )
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def test_decoded_reference_golden_unchanged():
    report = LScatterSystem(_decoded_config(), rng=7).run(payload_length=2000)
    assert _fields(report) == GOLDEN_DECODED_SEED7


def test_genie_reference_golden_unchanged():
    report = LScatterSystem(_genie_config(), rng=3).run(payload_length=2000)
    assert _fields(report) == GOLDEN_GENIE_SEED3


@pytest.mark.parametrize("make_config", [_decoded_config, _genie_config])
def test_explicit_chip_is_bit_identical_to_default(make_config):
    seed = 7 if make_config is _decoded_config else 3
    default = LScatterSystem(make_config(), rng=seed).run(payload_length=2000)
    explicit = LScatterSystem(make_config(substrate="chip"), rng=seed).run(
        payload_length=2000
    )
    assert _fields(explicit) == _fields(default)
    assert explicit.throughput_bps == default.throughput_bps


def test_fleet_golden_unchanged_without_substrate_argument():
    deployment = Deployment.ring(3, bandwidth_mhz=1.4, n_frames=2)
    with FleetRunner(deployment, scheme="tdma", seed=0) as runner:
        report = runner.run(payload_length=2000)
    rows = tuple(
        (
            tag.name,
            tag.n_bits,
            tag.n_errors,
            tag.n_windows,
            tag.n_lost_windows,
            tag.n_erased_windows,
            tag.sync_error_us,
        )
        for tag in report.tags
    )
    assert rows == GOLDEN_FLEET


def test_fleet_explicit_chip_matches_default():
    deployment = Deployment.ring(3, bandwidth_mhz=1.4, n_frames=2)
    with FleetRunner(
        deployment, scheme="tdma", seed=0, substrate="chip"
    ) as runner:
        explicit = runner.run(payload_length=2000)
    rows = tuple(
        (tag.name, tag.n_bits, tag.n_errors, tag.sync_error_us)
        for tag in explicit.tags
    )
    assert rows == tuple(
        (name, bits, errors, sync)
        for name, bits, errors, _w, _l, _e, sync in GOLDEN_FLEET
    )
