"""Per-mode behaviour: links carry bits, fault no-ops hold, guards fire."""

import numpy as np
import pytest

from repro.core import LScatterSystem, SystemConfig
from repro.faults.plan import CarrierFaults, FaultPlan
from repro.fleet import Deployment, FleetRunner
from repro.fleet.ambient import AmbientCache
from repro.substrates import available_substrates

MODES = available_substrates()


def _config(mode, **overrides):
    kwargs = dict(
        bandwidth_mhz=1.4,
        n_frames=2,
        reference_mode="genie",
        sync_mode="model",
        multipath=False,
        substrate=mode,
    )
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def _fields(report):
    return (
        report.n_bits,
        report.n_errors,
        report.n_windows,
        report.n_lost_windows,
        report.n_erased_windows,
        report.sync_error_us,
        report.throughput_bps,
    )


@pytest.mark.parametrize("mode", MODES)
def test_close_range_link_carries_bits(mode):
    report = LScatterSystem(_config(mode), rng=0).run(payload_length=4000)
    assert report.n_bits > 0
    assert report.ber <= 0.05


@pytest.mark.parametrize("mode", MODES)
def test_severity_zero_fault_plan_is_a_noop(mode):
    clean = LScatterSystem(_config(mode, faults=None), rng=0).run(
        payload_length=4000
    )
    noop = LScatterSystem(
        _config(mode, faults=FaultPlan.none(seed=0)), rng=0
    ).run(payload_length=4000)
    assert _fields(noop) == _fields(clean)


@pytest.mark.parametrize("mode", MODES)
def test_carrier_dropout_does_not_improve_the_link(mode):
    clean = LScatterSystem(_config(mode), rng=0).run(payload_length=4000)
    faulted = LScatterSystem(
        _config(
            mode,
            faults=FaultPlan(
                carrier=CarrierFaults(dropout_rate=0.4), seed=5
            ),
        ),
        rng=0,
    ).run(payload_length=4000)
    assert faulted.throughput_bps <= clean.throughput_bps * (1 + 1e-9)
    assert faulted.ber >= clean.ber * (1 - 1e-9)


def test_srs_uplink_rejects_decoded_reference():
    config = _config("srs-uplink", reference_mode="decoded")
    with pytest.raises(ValueError, match="decodable"):
        LScatterSystem(config, rng=0)


def test_srs_uplink_rejects_circuit_sync():
    config = _config("srs-uplink", sync_mode="circuit")
    with pytest.raises(ValueError, match="circuit"):
        LScatterSystem(config, rng=0)


def test_non_chip_substrate_rejects_streaming_demod():
    config = _config("crs-ook", demod_chunk_half_frames=2)
    with pytest.raises(ValueError, match="streaming"):
        LScatterSystem(config, rng=0)


def test_fleet_runner_rejects_batch_tags_off_chip():
    deployment = Deployment.ring(2, bandwidth_mhz=1.4, n_frames=2)
    with pytest.raises(ValueError, match="batch_tags"):
        FleetRunner(deployment, substrate="crs-fsk", batch_tags=True)


def test_fleet_runner_rejects_streaming_off_chip():
    deployment = Deployment.ring(2, bandwidth_mhz=1.4, n_frames=2)
    with pytest.raises(ValueError, match="streaming"):
        FleetRunner(deployment, substrate="coded-pilot", streaming=True)


def test_fleet_runs_every_mode_and_tags_decode(tmp_path):
    for mode in MODES:
        deployment = Deployment.ring(2, bandwidth_mhz=1.4, n_frames=2)
        with FleetRunner(
            deployment, scheme="tdma", seed=0, substrate=mode
        ) as runner:
            report = runner.run(payload_length=2000)
        assert report.failed_tags == 0
        assert all(tag.n_bits > 0 for tag in report.tags), mode


def test_ambient_cache_keys_uplink_separately():
    cache = AmbientCache()
    downlink = cache.key_for(_config("chip"), 0)
    crs = cache.key_for(_config("crs-ook"), 0)
    srs = cache.key_for(_config("srs-uplink"), 0)
    # Downlink substrates share one capture slot; uplink never collides.
    assert downlink == crs
    assert srs != downlink
    assert srs.ambient_kind == "srs-uplink"
    with cache:
        cache.get(_config("chip"), 0)
        cache.get(_config("crs-ook"), 0)
        assert cache.transmit_calls == 1
        srs_stage = cache.get(_config("srs-uplink"), 0)
        assert cache.transmit_calls == 2
        # The uplink capture really is SRS: mostly silent air.
        occupied = np.mean(np.abs(srs_stage.unit) > 1e-9)
        assert occupied < 0.2
