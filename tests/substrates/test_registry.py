"""Substrate registry contract: names, lookup errors, capability flags."""

import pytest

from repro.core.config import SystemConfig
from repro.substrates import (
    Substrate,
    ambient_kind_for,
    available_substrates,
    get_substrate,
    register,
)

EXPECTED_MODES = ("chip", "coded-pilot", "crs-fsk", "crs-ook", "srs-uplink")


def test_builtin_modes_registered_sorted():
    assert available_substrates() == EXPECTED_MODES


def test_unknown_name_error_lists_registered_modes():
    with pytest.raises(KeyError) as excinfo:
        get_substrate("fsk")
    message = str(excinfo.value)
    assert "unknown substrate 'fsk'" in message
    for mode in EXPECTED_MODES:
        assert mode in message


def test_config_rejects_unknown_substrate_listing_modes():
    with pytest.raises(ValueError, match="registered substrates"):
        SystemConfig(substrate="morse")


def test_register_requires_a_name():
    with pytest.raises(ValueError, match="name"):

        @register
        class Nameless(Substrate):
            name = ""


def test_ambient_kinds():
    assert ambient_kind_for("chip") == "lte-downlink"
    assert ambient_kind_for("crs-ook") == "lte-downlink"
    assert ambient_kind_for("crs-fsk") == "lte-downlink"
    assert ambient_kind_for("coded-pilot") == "lte-downlink"
    assert ambient_kind_for("srs-uplink") == "srs-uplink"


def test_capability_flags():
    chip = get_substrate("chip")
    assert chip.supports_decoded_reference
    assert chip.supports_circuit_sync
    assert chip.supports_streaming
    assert chip.supports_batch
    srs = get_substrate("srs-uplink")
    assert not srs.supports_decoded_reference
    assert not srs.supports_circuit_sync
    assert not srs.supports_streaming
    assert not srs.supports_batch
    for mode in ("crs-ook", "crs-fsk", "coded-pilot"):
        cls = get_substrate(mode)
        assert not cls.supports_streaming
        assert not cls.supports_batch
