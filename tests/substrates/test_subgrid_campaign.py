"""subgrid experiment: campaign protocol, sharded equality, monotone gates."""

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.experiments import subgrid
from repro.experiments.registry import run_experiment


def test_campaign_points_cover_every_mode_and_both_arms():
    points = subgrid.campaign_points()
    modes = {p["substrate"] for p in points}
    arms = {p["arm"] for p in points}
    assert modes == set(subgrid.SUBSTRATES)
    assert arms == {"distance", "occupancy"}
    # 5 substrates x (3 distance + 3 occupancy) points.
    assert len(points) == 30
    # Smoke is a strict subset: arm endpoints only.
    smoke = subgrid.campaign_points(smoke=True)
    assert len(smoke) == 20
    assert {p["substrate"] for p in smoke} == set(subgrid.SUBSTRATES)


def test_substrate_filter_narrows_the_grid():
    points = subgrid.campaign_points(substrate="srs-uplink")
    assert {p["substrate"] for p in points} == {"srs-uplink"}
    assert len(points) == 6


def test_sharded_subgrid_is_bit_identical_to_monolithic(tmp_path):
    """Acceptance: `repro campaign subgrid --shards 4` == unsharded run."""
    spec = CampaignSpec(experiment="subgrid", seed=0, smoke=True)
    report = CampaignRunner(spec, tmp_path, n_shards=4).run()
    mono = run_experiment("subgrid", seed=0, smoke=True)
    assert report.result is not None
    assert report.result.rows == mono.rows  # exact float equality
    assert report.result.name == mono.name
    assert report.checkpointed == report.total_shards


def _row(mode, arm, value, goodput, ber):
    row = {
        "substrate": mode,
        "arm": arm,
        "goodput_kbps": goodput,
        "ber": ber,
        "n_bits": 1000,
        "n_erased": 0,
    }
    if arm == "distance":
        row["distance_ft"] = value
    else:
        row["occupancy"] = value
    return row


def test_monotone_gate_trips_on_rising_goodput():
    rows = [
        _row("chip", "distance", 3.0, 100.0, 0.01),
        _row("chip", "distance", 25.0, 150.0, 0.01),
    ]
    with pytest.raises(subgrid.MonotoneGateError, match="goodput rose"):
        subgrid.aggregate(rows)


def test_monotone_gate_trips_on_falling_ber():
    rows = [
        _row("crs-ook", "occupancy", 1.0, 4.0, 0.2),
        _row("crs-ook", "occupancy", 0.3, 4.0, 0.001),
    ]
    with pytest.raises(subgrid.MonotoneGateError, match="BER fell"):
        subgrid.aggregate(rows)


def test_gate_orders_occupancy_descending():
    # Occupancy 1.0 is the clean end: goodput falling toward 0.3 passes.
    rows = [
        _row("srs-uplink", "occupancy", 0.3, 0.5, 0.3),
        _row("srs-uplink", "occupancy", 1.0, 0.8, 0.0),
    ]
    result = subgrid.aggregate(rows)
    assert [r["occupancy"] for r in result.rows] == [1.0, 0.3]


def test_gate_tolerates_float_noise():
    rows = [
        _row("chip", "distance", 3.0, 100.0, 0.01),
        _row("chip", "distance", 25.0, 100.0 + 1e-8, 0.01 - 1e-12),
    ]
    result = subgrid.aggregate(rows)
    assert len(result.rows) == 2


def test_run_point_is_pure():
    point = {"substrate": "crs-fsk", "arm": "distance", "distance_ft": 3.0}
    first = subgrid.run_point(point, seed=0)
    second = subgrid.run_point(point, seed=0)
    assert first == second
