"""The `repro substrates` comparison suite and its CLI wiring."""

import json

import pytest

from repro.cli import main
from repro.substrates.suite import format_report, run_suite


def test_run_suite_smoke_single_mode(tmp_path):
    out = tmp_path / "sub.json"
    report = run_suite(str(out), smoke=True, seed=0, substrate="crs-ook")
    assert report["passed"]
    assert list(report["modes"]) == ["crs-ook"]
    checks = report["modes"]["crs-ook"]
    assert checks["link"]["passed"]
    assert checks["noop"]["passed"]
    assert "ladder" not in checks  # smoke skips the distance ladder
    on_disk = json.loads(out.read_text())
    assert on_disk["passed"] is True


def test_run_suite_full_covers_every_mode(tmp_path):
    out = tmp_path / "sub.json"
    report = run_suite(str(out), smoke=False, seed=0)
    assert report["passed"]
    assert set(report["modes"]) == {
        "chip", "coded-pilot", "crs-fsk", "crs-ook", "srs-uplink",
    }
    for mode, checks in report["modes"].items():
        assert checks["ladder"]["passed"], mode
    assert report["modes"]["chip"]["identity"]["passed"]
    text = format_report(report)
    assert "substrates: PASSED" in text
    assert "srs-uplink" in text


def test_cli_substrates_smoke(tmp_path, capsys):
    out = tmp_path / "sub.json"
    status = main(
        [
            "substrates",
            "--smoke",
            "--substrate",
            "srs-uplink",
            "--output",
            str(out),
        ]
    )
    assert status == 0
    captured = capsys.readouterr().out
    assert "substrates: PASSED" in captured
    assert out.exists()


def test_cli_substrates_refuses_overwrite(tmp_path, capsys):
    out = tmp_path / "sub.json"
    out.write_text("{}")
    status = main(
        ["substrates", "--smoke", "--substrate", "chip", "--output", str(out)]
    )
    assert status == 2
    assert "already exists" in capsys.readouterr().err
    assert out.read_text() == "{}"  # untouched
    status = main(
        [
            "substrates",
            "--smoke",
            "--substrate",
            "chip",
            "--output",
            str(out),
            "--force",
        ]
    )
    assert status == 0


def test_cli_substrates_rejects_unknown_mode(capsys):
    status = main(["substrates", "--substrate", "morse"])
    assert status == 2
    assert "unknown substrate" in capsys.readouterr().err


def test_cli_simulate_substrate_flag(capsys):
    status = main(
        [
            "simulate",
            "--bandwidth",
            "1.4",
            "--frames",
            "2",
            "--payload",
            "500",
            "--substrate",
            "crs-fsk",
        ]
    )
    assert status == 0
    assert "chips carried" in capsys.readouterr().out


def test_cli_simulate_srs_with_decoded_reference_fails_usage(capsys):
    status = main(
        [
            "simulate",
            "--bandwidth",
            "1.4",
            "--frames",
            "2",
            "--substrate",
            "srs-uplink",
            "--decoded-reference",
        ]
    )
    assert status == 2
    assert "srs-uplink" in capsys.readouterr().err


def test_cli_fleet_rejects_streaming_off_chip(capsys):
    status = main(
        ["fleet", "--tags", "2", "--substrate", "crs-ook", "--streaming"]
    )
    assert status == 2
    assert "streaming" in capsys.readouterr().err


@pytest.mark.parametrize("experiment", ["fig04"])
def test_cli_experiment_substrate_rejected_for_unaware_experiments(
    experiment, capsys
):
    status = main(["experiment", experiment, "--substrate", "chip"])
    assert status == 2
    assert "does not take" in capsys.readouterr().err


def test_cli_experiment_subgrid_substrate_filter(capsys):
    status = main(
        ["experiment", "subgrid", "--seed", "0", "--substrate", "srs-uplink"]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "srs-uplink" in out
    assert "chip\t" not in out
