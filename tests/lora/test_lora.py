"""LoRa CSS PHY tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lora import (
    LoraParams,
    LoraReceiver,
    LoraTransmitter,
    chirp,
    demodulate_symbols,
    modulate_symbols,
)
from repro.lora.css import bits_to_symbols, symbols_to_bits
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def test_params_basic():
    params = LoraParams(spreading_factor=7, bandwidth_hz=125e3)
    assert params.n_chips == 128
    assert params.symbol_seconds == pytest.approx(1.024e-3)
    assert params.bits_per_symbol == 7


def test_invalid_sf_rejected():
    with pytest.raises(ValueError):
        LoraParams(spreading_factor=5)


def test_chirp_constant_modulus():
    params = LoraParams()
    assert np.allclose(np.abs(chirp(params)), 1.0)


def test_up_down_chirp_conjugate():
    params = LoraParams()
    assert np.allclose(chirp(params, up=True), np.conj(chirp(params, up=False)))


def test_demod_recovers_shift():
    params = LoraParams(spreading_factor=8)
    values = np.array([0, 1, 100, 255])
    samples = modulate_symbols(params, values)
    recovered, peaks = demodulate_symbols(params, samples, 4)
    assert np.array_equal(recovered, values)
    assert np.all(peaks > 0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 127), min_size=1, max_size=10))
def test_demod_roundtrip_property(values):
    params = LoraParams(spreading_factor=7)
    samples = modulate_symbols(params, values)
    recovered, _ = demodulate_symbols(params, samples, len(values))
    assert np.array_equal(recovered, values)


def test_out_of_range_symbol_rejected():
    with pytest.raises(ValueError):
        modulate_symbols(LoraParams(spreading_factor=7), [128])


def test_bits_symbols_roundtrip():
    params = LoraParams(spreading_factor=9)
    bits = make_rng(0).integers(0, 2, size=63).astype(np.int8)
    values = bits_to_symbols(params, bits)
    recovered = symbols_to_bits(params, values)[: len(bits)]
    assert np.array_equal(recovered, bits)


def test_packet_roundtrip_clean():
    tx = LoraTransmitter(rng=1)
    packet = tx.transmit(payload_bytes=12)
    signal = np.concatenate([np.zeros(300, complex), packet.samples])
    result = LoraReceiver().decode(signal, len(packet.payload_bits))
    assert result.detected
    assert result.start == 300
    assert np.array_equal(result.payload_bits, packet.payload_bits)


def test_packet_below_noise_floor_sf12():
    params = LoraParams(spreading_factor=12)
    rng = make_rng(2)
    packet = LoraTransmitter(params, rng=rng).transmit(payload_bytes=4)
    signal = np.concatenate([np.zeros(1000, complex), packet.samples])
    noisy = awgn(signal, -8.0, rng)  # below the noise floor
    result = LoraReceiver(params).decode(noisy, len(packet.payload_bits))
    assert result.detected
    errors = np.sum(result.payload_bits != packet.payload_bits)
    assert errors <= 2


def test_processing_gain_ordering():
    # Higher SF survives lower SNR: demodulate one symbol at -5 dB.
    rng = make_rng(3)
    failures = {}
    for sf in (7, 12):
        params = LoraParams(spreading_factor=sf)
        errors = 0
        for trial in range(20):
            value = int(rng.integers(0, params.n_chips))
            samples = modulate_symbols(params, [value])
            noisy = awgn(samples, -5.0, rng)
            got, _ = demodulate_symbols(params, noisy, 1)
            errors += int(got[0] != value)
        failures[sf] = errors
    assert failures[12] <= failures[7]


def test_no_packet_detected_in_noise():
    rng = make_rng(4)
    noise = rng.standard_normal(5000) + 1j * rng.standard_normal(5000)
    result = LoraReceiver().decode(noise, 16)
    assert not result.detected
