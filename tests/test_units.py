"""Unit-conversion tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    db_to_linear,
    dbm_to_watts,
    feet_to_meters,
    linear_to_db,
    meters_to_feet,
    thermal_noise_dbm,
    watts_to_dbm,
)


def test_db_linear_known_values():
    assert db_to_linear(0.0) == pytest.approx(1.0)
    assert db_to_linear(10.0) == pytest.approx(10.0)
    assert db_to_linear(-30.0) == pytest.approx(1e-3)
    assert linear_to_db(100.0) == pytest.approx(20.0)


def test_dbm_watts_known_values():
    assert dbm_to_watts(0.0) == pytest.approx(1e-3)
    assert dbm_to_watts(30.0) == pytest.approx(1.0)
    assert watts_to_dbm(1e-3) == pytest.approx(0.0)


@given(st.floats(min_value=-120, max_value=60))
def test_db_roundtrip(db):
    assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


@given(st.floats(min_value=-120, max_value=60))
def test_dbm_roundtrip(dbm):
    assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-9)


@given(st.floats(min_value=0.01, max_value=1e5))
def test_feet_meters_roundtrip(feet):
    assert meters_to_feet(feet_to_meters(feet)) == pytest.approx(feet)


def test_feet_meters_exact_definition():
    assert feet_to_meters(1.0) == pytest.approx(0.3048)


def test_linear_to_db_zero_is_neg_inf():
    assert linear_to_db(0.0) == -np.inf


def test_thermal_noise_20mhz():
    # kTB at 290 K over 20 MHz is about -101 dBm.
    assert thermal_noise_dbm(20e6) == pytest.approx(-100.9, abs=0.2)


def test_thermal_noise_figure_adds():
    base = thermal_noise_dbm(1e6)
    assert thermal_noise_dbm(1e6, noise_figure_db=6.0) == pytest.approx(base + 6.0)


def test_conversions_are_elementwise():
    out = db_to_linear(np.array([0.0, 10.0, 20.0]))
    assert np.allclose(out, [1.0, 10.0, 100.0])
