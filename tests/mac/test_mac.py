"""Multi-tag MAC tests."""

import numpy as np
import pytest

from repro.mac import (
    PriorityScheme,
    SlottedAlohaScheme,
    TdmaScheme,
    simulate_contention,
    two_tag_collision,
)


def test_tdma_never_collides():
    powers = {f"tag{i}": -40.0 for i in range(5)}
    report = simulate_contention(powers, TdmaScheme(), 1000, rng=0)
    assert report.collision_fraction == 0.0
    assert report.aggregate_success_rate == 1.0


def test_tdma_fair_share():
    powers = {f"tag{i}": -40.0 for i in range(4)}
    report = simulate_contention(powers, TdmaScheme(), 1000, rng=1)
    shares = list(report.per_tag_success.values())
    assert max(shares) - min(shares) <= 1


def test_aloha_throughput_near_1_over_e():
    powers = {f"tag{i}": -40.0 for i in range(8)}
    report = simulate_contention(
        powers, SlottedAlohaScheme(), 20_000, capture_threshold_db=1e9, rng=2
    )
    # Slotted ALOHA at p=1/n: throughput -> (1-1/n)^(n-1) ~ 0.39 for n=8.
    assert report.aggregate_success_rate == pytest.approx(0.39, abs=0.03)


def test_aloha_capture_helps_strong_tag():
    powers = {"strong": -30.0, "weak": -55.0}
    no_capture = simulate_contention(
        powers, SlottedAlohaScheme(p=0.5), 10_000, capture_threshold_db=1e9, rng=3
    )
    with_capture = simulate_contention(
        powers, SlottedAlohaScheme(p=0.5), 10_000, capture_threshold_db=10.0, rng=3
    )
    assert (
        with_capture.per_tag_success["strong"]
        > 1.5 * no_capture.per_tag_success["strong"]
    )
    assert with_capture.collision_fraction < no_capture.collision_fraction


def test_priority_never_collides_and_follows_weights():
    powers = {"a": -40.0, "b": -40.0, "c": -40.0}
    scheme = PriorityScheme(weights={"a": 2, "b": 1, "c": 1})
    report = simulate_contention(powers, scheme, 1000, rng=0)
    assert report.collision_fraction == 0.0
    assert report.idle_fraction == 0.0
    # Airtime proportional to weight: a gets 2x b and c.
    assert report.per_tag_success["a"] == 500
    assert report.per_tag_success["b"] == 250
    assert report.per_tag_success["c"] == 250


def test_priority_equal_weights_degenerates_to_fair_share():
    powers = {f"tag{i}": -40.0 for i in range(4)}
    report = simulate_contention(powers, PriorityScheme(), 1000, rng=0)
    shares = list(report.per_tag_success.values())
    assert max(shares) - min(shares) <= 1
    assert report.aggregate_success_rate == 1.0


def test_priority_is_deterministic():
    names = ["x", "y", "z"]

    def grants():
        scheme = PriorityScheme(weights={"x": 3})
        return [scheme.transmitters(i, names, None)[0] for i in range(10)]

    first, second = grants(), grants()
    # Re-running the stateful scheme from scratch reproduces the grants,
    # and x's weight-3 share of the 5-credit total is 10 * 3/5 = 6 slots.
    assert first == second
    assert first.count("x") == 6


def test_priority_rejects_nonpositive_weight():
    scheme = PriorityScheme(weights={"a": 0})
    with pytest.raises(ValueError):
        scheme.transmitters(0, ["a"], None)


def test_empty_tag_set_rejected():
    with pytest.raises(ValueError):
        simulate_contention({}, TdmaScheme(), 10)


def test_iq_collision_equal_power_destroys():
    outcome = two_tag_collision(0.0, seed=1)
    assert outcome.strong_tag_ber > 0.1


def test_iq_collision_capture_at_advantage():
    outcome = two_tag_collision(12.0, seed=1)
    assert outcome.strong_tag_ber < 5e-3
    assert outcome.n_bits > 0


def test_iq_collision_monotone_in_advantage():
    bers = [two_tag_collision(adv, seed=2).strong_tag_ber for adv in (0, 6, 15)]
    assert bers[0] > bers[1] >= bers[2]


def test_priority_backoff_disabled_by_default():
    """Legacy behaviour is bit-identical: congestion signals are ignored."""
    plain = PriorityScheme(weights={"a": 2})
    noisy = PriorityScheme(weights={"a": 2})
    names = ["a", "b"]
    grants_plain, grants_noisy = [], []
    for slot in range(20):
        grants_plain.append(plain.transmitters(slot, names, None))
        grants_noisy.append(noisy.transmitters(slot, names, None))
        noisy.observe_congestion(slot, congested=True)
    assert grants_plain == grants_noisy
    assert not noisy.backing_off


def test_priority_backoff_doubles_and_saturates():
    scheme = PriorityScheme(congestion_backoff=True, max_backoff_slots=8)
    seen = []
    for slot in range(6):
        scheme.observe_congestion(slot, congested=True)
        seen.append(scheme.backoff_slots)
    # 1, 2, 4, 8, then pinned at the cap.
    assert seen == [1, 2, 4, 8, 8, 8]
    scheme.observe_congestion(6, congested=False)
    assert scheme.backoff_slots == 0
    assert not scheme.backing_off


def test_priority_backoff_yields_then_resumes():
    scheme = PriorityScheme(congestion_backoff=True, max_backoff_slots=4)
    names = ["a", "b"]
    assert scheme.transmitters(0, names, None)  # clean slot: grants flow
    scheme.observe_congestion(0, congested=True)
    assert scheme.transmitters(1, names, None) == []  # yielding
    # Storm ends but the yield window must still expire on its own: the
    # fleet cannot observe a clean slot while it is not transmitting.
    resumed = None
    for slot in range(2, 12):
        if scheme.transmitters(slot, names, None):
            resumed = slot
            break
    assert resumed is not None
    assert resumed - 1 <= scheme.max_backoff_slots + 1


def test_priority_backoff_rejects_bad_cap():
    with pytest.raises(ValueError):
        PriorityScheme(congestion_backoff=True, max_backoff_slots=0)
