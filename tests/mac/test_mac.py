"""Multi-tag MAC tests."""

import numpy as np
import pytest

from repro.mac import (
    SlottedAlohaScheme,
    TdmaScheme,
    simulate_contention,
    two_tag_collision,
)


def test_tdma_never_collides():
    powers = {f"tag{i}": -40.0 for i in range(5)}
    report = simulate_contention(powers, TdmaScheme(), 1000, rng=0)
    assert report.collision_fraction == 0.0
    assert report.aggregate_success_rate == 1.0


def test_tdma_fair_share():
    powers = {f"tag{i}": -40.0 for i in range(4)}
    report = simulate_contention(powers, TdmaScheme(), 1000, rng=1)
    shares = list(report.per_tag_success.values())
    assert max(shares) - min(shares) <= 1


def test_aloha_throughput_near_1_over_e():
    powers = {f"tag{i}": -40.0 for i in range(8)}
    report = simulate_contention(
        powers, SlottedAlohaScheme(), 20_000, capture_threshold_db=1e9, rng=2
    )
    # Slotted ALOHA at p=1/n: throughput -> (1-1/n)^(n-1) ~ 0.39 for n=8.
    assert report.aggregate_success_rate == pytest.approx(0.39, abs=0.03)


def test_aloha_capture_helps_strong_tag():
    powers = {"strong": -30.0, "weak": -55.0}
    no_capture = simulate_contention(
        powers, SlottedAlohaScheme(p=0.5), 10_000, capture_threshold_db=1e9, rng=3
    )
    with_capture = simulate_contention(
        powers, SlottedAlohaScheme(p=0.5), 10_000, capture_threshold_db=10.0, rng=3
    )
    assert (
        with_capture.per_tag_success["strong"]
        > 1.5 * no_capture.per_tag_success["strong"]
    )
    assert with_capture.collision_fraction < no_capture.collision_fraction


def test_empty_tag_set_rejected():
    with pytest.raises(ValueError):
        simulate_contention({}, TdmaScheme(), 10)


def test_iq_collision_equal_power_destroys():
    outcome = two_tag_collision(0.0, seed=1)
    assert outcome.strong_tag_ber > 0.1


def test_iq_collision_capture_at_advantage():
    outcome = two_tag_collision(12.0, seed=1)
    assert outcome.strong_tag_ber < 5e-3
    assert outcome.n_bits > 0


def test_iq_collision_monotone_in_advantage():
    bers = [two_tag_collision(adv, seed=2).strong_tag_ber for adv in (0, 6, 15)]
    assert bers[0] > bers[1] >= bers[2]
