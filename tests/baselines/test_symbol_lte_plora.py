"""Symbol-level LTE backscatter and PLoRa baseline tests."""

import numpy as np
import pytest

from repro.baselines.plora import MIN_USABLE_OCCUPANCY, PLoraModel
from repro.baselines.symbol_lte import (
    RAW_BIT_RATE_BPS,
    SymbolLevelLteTag,
    SymbolLteModel,
)
from repro.channel.link import LinkBudget
from repro.lte import LteTransmitter
from repro.utils.rng import make_rng


def test_symbol_lte_rate_is_7kbps():
    # 14 symbols per ms, 2 per bit (paper Fig. 23's flat 0.007 Mbps line).
    assert RAW_BIT_RATE_BPS == pytest.approx(7e3)


def test_iq_tag_flips_whole_symbols():
    capture = LteTransmitter(1.4, rng=0).transmit(1)
    params = capture.params
    tag = SymbolLevelLteTag(params)
    bits = np.array([1, 0, 1], dtype=np.int8)
    hybrid, used = tag.modulate(capture.samples, bits)
    assert used == 3
    # First bit flips symbols 0-1 of slot 0 in their entirety.
    lo = params.symbol_start(0, 0)
    hi = lo + params.symbol_length(0) + params.symbol_length(1)
    assert np.allclose(hybrid[lo:hi], -capture.samples[lo:hi])


def test_iq_tag_avoids_sync_symbols():
    capture = LteTransmitter(1.4, rng=1).transmit(1)
    params = capture.params
    bits = np.ones(200, dtype=np.int8)  # flip as often as possible
    hybrid, _ = SymbolLevelLteTag(params).modulate(capture.samples, bits)
    for slot in (0, 10):
        lo = params.symbol_start(slot, 5)
        hi = params.symbol_start(slot, 6) + params.symbol_length(6)
        assert np.allclose(hybrid[lo:hi], capture.samples[lo:hi])


def test_symbol_lte_outranges_wifi_backscatter():
    from repro.baselines.freerider import WifiBackscatterModel

    budget = LinkBudget(venue="shopping_mall")
    sym = SymbolLteModel(budget=budget)
    wifi = WifiBackscatterModel()
    # Paper Fig. 23: crossover around 80-120 ft.
    assert wifi.throughput_bps(0.9, 5, 40) > sym.throughput_bps(5, 40)
    assert sym.throughput_bps(5, 160) > wifi.throughput_bps(0.9, 5, 160)


def test_symbol_lte_ber_much_lower_than_chip_level_at_range():
    from repro.core.link_budget import LScatterLinkModel

    budget = LinkBudget(venue="shopping_mall")
    sym = SymbolLteModel(budget=budget)
    chips = LScatterLinkModel(20.0, budget)
    assert sym.ber(5, 150) < chips.ber(5, 150)


def test_lscatter_beats_symbol_lte_in_throughput_everywhere():
    from repro.core.link_budget import LScatterLinkModel

    budget = LinkBudget(venue="shopping_mall")
    sym = SymbolLteModel(budget=budget)
    chips = LScatterLinkModel(20.0, budget)
    for d in (10, 80, 180):
        assert chips.predict(5, d).throughput_bps > 100 * sym.throughput_bps(5, d)


def test_plora_zero_below_usable_occupancy():
    model = PLoraModel()
    assert model.throughput_bps(0.02) == 0.0
    assert model.throughput_bps(MIN_USABLE_OCCUPANCY - 1e-6) == 0.0


def test_plora_proportional_above_threshold():
    model = PLoraModel()
    assert model.throughput_bps(0.5) == pytest.approx(0.5 * 284.0)
