"""WiFi-backscatter baseline tests (IQ tag/receiver + throughput model)."""

import numpy as np
import pytest

from repro.baselines.freerider import (
    BITS_PER_PACKET,
    RAW_BIT_RATE_BPS,
    FreeRiderReceiver,
    FreeRiderTag,
    WifiBackscatterModel,
)
from repro.utils.rng import make_rng
from repro.wifi import WifiReceiver, WifiTransmitter


def test_raw_rate_is_symbol_level():
    # 1 bit per two 4-us WiFi symbols = 125 kbps.
    assert RAW_BIT_RATE_BPS == pytest.approx(125e3)


def test_iq_roundtrip_clean():
    rng = make_rng(0)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=200)
    bits = rng.integers(0, 2, size=8).astype(np.int8)
    tag = FreeRiderTag()
    hybrid, used = tag.modulate(packet.samples, bits)
    assert used == len(bits)
    recovered = FreeRiderReceiver().demodulate(hybrid, packet.samples, used)
    assert np.array_equal(recovered, bits)


def test_iq_preamble_untouched():
    rng = make_rng(1)
    packet = WifiTransmitter(6.0, rng=rng).transmit(psdu_bytes=150)
    bits = rng.integers(0, 2, size=10).astype(np.int8)
    hybrid, _ = FreeRiderTag().modulate(packet.samples, bits)
    # Preamble + SIGNAL samples are bit-exact.
    assert np.array_equal(hybrid[:400], packet.samples[:400])


def test_hybrid_packet_still_decodable_by_wifi_receiver():
    # Symbol-level BPSK flips look like slow channel-phase jumps; with
    # bit 0 (no flip) the packet is untouched and must decode cleanly.
    rng = make_rng(2)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=100)
    hybrid, _ = FreeRiderTag().modulate(packet.samples, np.zeros(5, np.int8))
    result = WifiReceiver().decode(hybrid, ltf1_start=192)
    assert result.detected
    assert result.errors_against(packet.psdu_bits) == 0


def test_throughput_scales_with_occupancy():
    model = WifiBackscatterModel()
    low = model.throughput_bps(0.1, 5, 10)
    high = model.throughput_bps(0.5, 5, 10)
    assert high == pytest.approx(5 * low, rel=1e-6)


def test_paper_anchor_home_average():
    # Paper §4.3.1: home-average ~37 kbps at ~0.3 occupancy.
    model = WifiBackscatterModel()
    assert model.throughput_bps(0.33, 5, 10) == pytest.approx(37e3, rel=0.25)


def test_range_collapse_past_120ft():
    model = WifiBackscatterModel()
    at_40 = model.throughput_bps(0.9, 5, 40)
    at_150 = model.throughput_bps(0.9, 5, 150)
    assert at_40 > 100 * max(at_150, 1e-9)


def test_packet_success_decreasing():
    model = WifiBackscatterModel()
    values = [model.packet_success(5, d) for d in (10, 60, 120, 180)]
    assert all(b <= a for a, b in zip(values, values[1:]))


def test_ber_uses_symbol_processing_gain():
    # The symbol-level scheme integrates 80 samples per decision.
    model = WifiBackscatterModel()
    assert model.ber(5, 10) < 1e-3
