"""5G NR-lite substrate tests."""

import numpy as np
import pytest

from repro.nr import (
    NR_PRESETS,
    NrFrameBuilder,
    NrNumerology,
    detect_nr_pss_sequence,
    nr_backscatter_trial,
    nr_pss,
    nr_sss,
)
from repro.nr.sync import detect_nr_sss_sequence


def test_numerology_scaling():
    mu0 = NrNumerology(mu=0, n_rb=52, fft_size=1024)
    mu1 = NrNumerology(mu=1, n_rb=52, fft_size=1024)
    assert mu1.scs_hz == 2 * mu0.scs_hz
    assert mu1.sample_rate_hz == 2 * mu0.sample_rate_hz
    assert mu1.slots_per_frame == 2 * mu0.slots_per_frame
    assert mu1.samples_per_frame == mu0.samples_per_frame * 2


def test_frame_duration_is_10ms():
    # Within ~0.2%: the NR-lite numerology uses a uniform CP, ignoring
    # the slot-edge CP extension (documented simplification).
    for preset in NR_PRESETS.values():
        assert preset.samples_per_frame / preset.sample_rate_hz == pytest.approx(
            10e-3, rel=2e-3
        )


def test_invalid_numerology_rejected():
    with pytest.raises(ValueError):
        NrNumerology(mu=5, n_rb=10, fft_size=256)
    with pytest.raises(ValueError):
        NrNumerology(mu=0, n_rb=100, fft_size=256)


def test_pss_values_and_detection():
    for nid2 in (0, 1, 2):
        seq = nr_pss(nid2)
        assert len(seq) == 127
        assert set(np.unique(seq)) <= {-1.0, 1.0}
        got, _ = detect_nr_pss_sequence(seq.astype(complex))
        assert got == nid2


def test_pss_cross_correlation_low():
    a, b = nr_pss(0), nr_pss(1)
    assert abs(np.dot(a, b)) / 127 < 0.3


def test_sss_detection_roundtrip():
    for nid1 in (0, 123, 335):
        got, _ = detect_nr_sss_sequence(nr_sss(nid1, 2).astype(complex), 2)
        assert got == nid1


def test_sss_detection_with_noise():
    rng = np.random.default_rng(0)
    observed = nr_sss(200, 0).astype(complex)
    observed += 0.4 * (rng.standard_normal(127) + 1j * rng.standard_normal(127))
    got, _ = detect_nr_sss_sequence(observed, 0)
    assert got == 200


def test_frame_builder_shapes():
    capture = NrFrameBuilder(NR_PRESETS["nr10_mu0"], n_id_1=7, n_id_2=1, rng=0).build()
    num = capture.numerology
    assert len(capture.samples) == num.samples_per_frame
    assert capture.grid.shape == (num.slots_per_frame * 14, num.n_subcarriers)
    assert capture.cell_id == 22


def test_frame_pss_recoverable_from_samples():
    capture = NrFrameBuilder(NR_PRESETS["nr10_mu0"], n_id_2=2, rng=1).build()
    num = capture.numerology
    start = capture.useful_start(0, 2)  # PSS symbol
    useful = capture.samples[start : start + num.fft_size]
    bins = np.fft.fft(useful) / np.sqrt(num.fft_size)
    observed = bins[num.subcarrier_indices()]
    half = num.n_subcarriers // 2
    sync_cols = np.arange(half - 63, half - 63 + 127)
    got, _ = detect_nr_pss_sequence(observed[sync_cols])
    assert got == 2


def test_backscatter_clean_on_both_presets():
    for preset in ("nr10_mu0", "nr20_mu1"):
        result = nr_backscatter_trial(preset, snr_db=35, seed=0)
        assert result.ber < 2e-3, preset
        assert result.n_bits > 0


def test_nr_mu1_outruns_lte():
    """The §6 claim quantified: 30 kHz SCS doubles the symbol rate, so
    chip backscatter on 20 MHz NR beats 20 MHz LTE."""
    from repro.core.link_budget import LScatterLinkModel

    result = nr_backscatter_trial("nr20_mu1", snr_db=35, seed=1)
    assert result.throughput_bps > LScatterLinkModel(20.0).raw_bit_rate_bps
