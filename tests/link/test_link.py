"""Link-layer framing and ARQ tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.link import (
    BitErrorChannel,
    SelectiveRepeatArq,
    StopAndWaitArq,
    frame_payload,
    parse_frame,
)
from repro.utils.rng import make_rng


def test_frame_roundtrip():
    payload = make_rng(0).integers(0, 2, size=200).astype(np.int8)
    frame = parse_frame(frame_payload(42, payload))
    assert frame.valid
    assert frame.sequence == 42
    assert np.array_equal(frame.payload, payload)


@settings(max_examples=25, deadline=None)
@given(
    sequence=st.integers(min_value=0, max_value=65535),
    payload=st.lists(st.integers(0, 1), min_size=0, max_size=128),
)
def test_frame_roundtrip_property(sequence, payload):
    bits = frame_payload(sequence, np.array(payload, dtype=np.int8))
    frame = parse_frame(bits)
    assert frame.valid
    assert frame.sequence == sequence
    assert frame.payload.tolist() == payload


def test_corrupted_frame_detected():
    payload = make_rng(1).integers(0, 2, size=100).astype(np.int8)
    bits = frame_payload(7, payload)
    bits[20] ^= 1
    assert not parse_frame(bits).valid


def test_truncated_frame_invalid():
    assert not parse_frame(np.zeros(10, dtype=np.int8)).valid


def test_sequence_field_bounds():
    with pytest.raises(ValueError):
        frame_payload(1 << 16, np.zeros(4, dtype=np.int8))


def test_channel_flips_at_target_rate():
    channel = BitErrorChannel(0.05, rng=0)
    bits = np.zeros(100_000, dtype=np.int8)
    out = channel.transmit(bits)
    assert np.mean(out) == pytest.approx(0.05, abs=0.005)


def test_channel_invalid_ber():
    with pytest.raises(ValueError):
        BitErrorChannel(1.5)


@pytest.mark.parametrize("arq_cls", [StopAndWaitArq, SelectiveRepeatArq])
def test_arq_delivers_exactly_over_clean_channel(arq_cls):
    payload = make_rng(2).integers(0, 2, size=10_000).astype(np.int8)
    got, report = arq_cls().deliver(payload, BitErrorChannel(0.0, rng=3))
    assert np.array_equal(got, payload)
    assert report.retransmission_overhead == 0.0


@pytest.mark.parametrize("arq_cls", [StopAndWaitArq, SelectiveRepeatArq])
def test_arq_delivers_over_lossy_channel(arq_cls):
    payload = make_rng(4).integers(0, 2, size=20_000).astype(np.int8)
    got, report = arq_cls().deliver(payload, BitErrorChannel(1e-3, rng=5))
    assert np.array_equal(got, payload)
    assert report.retransmission_overhead > 0.5  # ~2/3 frame loss at 1e-3


def test_overhead_matches_frame_loss_theory():
    # P(frame ok) = (1-ber)^bits; retries ~ geometric with that success.
    ber = 5e-4
    mtu = 1024
    payload = make_rng(6).integers(0, 2, size=100_000).astype(np.int8)
    _, report = StopAndWaitArq(mtu_bits=mtu).deliver(
        payload, BitErrorChannel(ber, rng=7)
    )
    p_ok = (1 - ber) ** (mtu + 48)
    expected_overhead = 1 / p_ok - 1
    assert report.retransmission_overhead == pytest.approx(
        expected_overhead, rel=0.35
    )


def test_selective_repeat_uses_fewer_rounds():
    payload = make_rng(8).integers(0, 2, size=60_000).astype(np.int8)
    _, sw = StopAndWaitArq().deliver(payload, BitErrorChannel(5e-4, rng=9))
    _, sr = SelectiveRepeatArq(window=16).deliver(
        payload, BitErrorChannel(5e-4, rng=9)
    )
    assert sr.rounds < sw.rounds / 4


def test_smaller_mtu_wins_at_high_ber():
    payload = make_rng(10).integers(0, 2, size=30_000).astype(np.int8)
    _, small = StopAndWaitArq(mtu_bits=256, max_retries=500).deliver(
        payload, BitErrorChannel(1.5e-3, rng=11)
    )
    _, large = StopAndWaitArq(mtu_bits=2048, max_retries=500).deliver(
        payload, BitErrorChannel(1.5e-3, rng=11)
    )
    assert small.efficiency > large.efficiency
