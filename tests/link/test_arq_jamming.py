"""ARQ under sustained jamming: bit-exact delivery, bounded retries.

The receiver-side response to a jammed window is an erasure (garbage
bits, failed CRC) rather than silence — :class:`ErasureChannel` models
exactly that.  These tests sweep jamming severity from clean to a
half-erased pipe and require both ARQ strategies to deliver the payload
bit-exactly with retransmissions that stay bounded and grow with
severity.
"""

import numpy as np
import pytest

from repro.link.arq import (
    BitErrorChannel,
    ErasureChannel,
    SelectiveRepeatArq,
    StopAndWaitArq,
)
from repro.utils.rng import make_rng

#: Jamming severities: (frame erasure rate, residual BER on survivors).
SEVERITIES = (
    (0.0, 0.0),
    (0.1, 0.001),
    (0.25, 0.002),
    (0.5, 0.005),
)


def _payload(n_bits=4096, seed=0):
    return make_rng(f"arq-jam:{seed}").integers(0, 2, size=n_bits).astype(np.int8)


def _channel(erasure_rate, ber, seed=0):
    return ErasureChannel(
        BitErrorChannel(ber, rng=make_rng(f"jam-ber:{seed}:{ber}")),
        erasure_rate=erasure_rate,
        rng=make_rng(f"jam-erase:{seed}:{erasure_rate}"),
    )


@pytest.mark.parametrize("erasure_rate, ber", SEVERITIES)
@pytest.mark.parametrize(
    "arq",
    [
        SelectiveRepeatArq(mtu_bits=256, window=8, max_rounds=500),
        StopAndWaitArq(mtu_bits=256, max_retries=500),
    ],
    ids=["selective-repeat", "stop-and-wait"],
)
def test_bit_exact_delivery_under_jamming(arq, erasure_rate, ber):
    payload = _payload()
    recovered, report = arq.deliver(payload, _channel(erasure_rate, ber))
    np.testing.assert_array_equal(recovered, payload)
    assert np.isfinite(report.retransmission_overhead)
    assert report.frames_delivered == len(payload) // 256
    # Bounded: even a half-erased pipe stays within a small send multiple
    # (at 0.5 erasure + 0.005 residual BER a ~280-bit frame survives with
    # probability ~0.12, so ~8x sends are expected; 20x caps the tail).
    assert report.frames_sent < 20 * report.frames_delivered


def test_retransmissions_grow_with_jamming_severity():
    payload = _payload(8192)
    overheads = []
    for erasure_rate, ber in SEVERITIES:
        arq = SelectiveRepeatArq(mtu_bits=256, window=8, max_rounds=500)
        recovered, report = arq.deliver(payload, _channel(erasure_rate, ber))
        np.testing.assert_array_equal(recovered, payload)
        overheads.append(report.retransmission_overhead)
    assert overheads[0] == 0.0  # clean pipe: no retransmissions at all
    assert overheads[-1] > overheads[0]
    # Frame survival at the top severity is ~0.12 (erasure x residual
    # BER over the whole frame), i.e. ~8x sends; cap the tail at 15x.
    assert overheads[-1] < 15.0


def test_erasures_are_counted_and_survivors_keep_inner_ber():
    channel = _channel(0.5, 0.0)
    arq = SelectiveRepeatArq(mtu_bits=128, window=4, max_rounds=500)
    payload = _payload(2048)
    recovered, report = arq.deliver(payload, channel)
    np.testing.assert_array_equal(recovered, payload)
    assert channel.erased_frames > 0
    assert report.frames_sent > report.frames_delivered


def test_hopeless_pipe_terminates_at_round_budget():
    """A pipe that erases everything must fail fast, not loop forever."""
    channel = _channel(1.0, 0.0)
    arq = SelectiveRepeatArq(mtu_bits=256, window=8, max_rounds=20)
    with pytest.raises(RuntimeError, match="window never drained"):
        arq.deliver(_payload(1024), channel)
    # The budget capped the damage: at most window frames per round.
    assert channel.erased_frames <= 20 * 8
