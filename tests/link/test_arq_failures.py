"""ARQ failure paths: retry exhaustion, partial windows, boundary BERs."""

import numpy as np
import pytest

from repro.link import (
    BitErrorChannel,
    ErasureChannel,
    SelectiveRepeatArq,
    StopAndWaitArq,
)
from repro.utils.rng import make_rng


def _payload(n_bits, seed=0):
    return make_rng(seed).integers(0, 2, size=n_bits).astype(np.int8)


# -- BitErrorChannel boundaries ---------------------------------------------------


def test_channel_ber_zero_is_exact_copy():
    channel = BitErrorChannel(0.0, rng=0)
    bits = _payload(512)
    out = channel.transmit(bits)
    np.testing.assert_array_equal(out, bits)
    assert out is not bits  # a copy, not the caller's buffer


def test_channel_ber_near_one_flips_almost_everything():
    channel = BitErrorChannel(0.999, rng=0)
    bits = np.zeros(4096, dtype=np.int8)
    assert channel.transmit(bits).sum() > 4000


@pytest.mark.parametrize("ber", [1.0, 1.5, -0.01])
def test_channel_rejects_out_of_range_ber(ber):
    with pytest.raises(ValueError):
        BitErrorChannel(ber)


# -- retry exhaustion -------------------------------------------------------------


def test_stop_and_wait_raises_after_retry_exhaustion():
    # BER 0.4 over a ~1k-bit frame: CRC success probability is negligible,
    # so 3 attempts cannot deliver.
    channel = BitErrorChannel(0.4, rng=0)
    arq = StopAndWaitArq(mtu_bits=1024, max_retries=3)
    with pytest.raises(RuntimeError, match="undeliverable"):
        arq.deliver(_payload(2048), channel)


def test_selective_repeat_raises_when_window_never_drains():
    channel = BitErrorChannel(0.4, rng=0)
    arq = SelectiveRepeatArq(mtu_bits=1024, window=4, max_rounds=3)
    with pytest.raises(RuntimeError, match="never drained"):
        arq.deliver(_payload(4096), channel)


# -- final partial window ---------------------------------------------------------


def test_selective_repeat_final_partial_window_accounting():
    # 10 chunks with window 4: final round carries a 2-frame partial
    # window; the last chunk is itself partial (300 of 1024 bits).
    payload = _payload(9 * 1024 + 300)
    arq = SelectiveRepeatArq(mtu_bits=1024, window=4)
    recovered, report = arq.deliver(payload, BitErrorChannel(0.0, rng=0))
    np.testing.assert_array_equal(recovered, payload)
    assert report.frames_delivered == 10
    assert report.frames_sent == 10
    assert report.rounds == 3  # 4 + 4 + 2
    assert report.payload_bits == len(payload)


def test_stop_and_wait_partial_final_chunk_round_trips():
    payload = _payload(1024 + 17)
    arq = StopAndWaitArq(mtu_bits=1024)
    recovered, report = arq.deliver(payload, BitErrorChannel(0.0, rng=0))
    np.testing.assert_array_equal(recovered, payload)
    assert report.frames_delivered == 2


# -- erasure channel --------------------------------------------------------------


def test_erasure_channel_drives_retransmission():
    payload = _payload(4096)
    channel = ErasureChannel(BitErrorChannel(0.0, rng=1), 0.3, rng=2)
    arq = SelectiveRepeatArq(mtu_bits=1024, window=4)
    recovered, report = arq.deliver(payload, channel)
    np.testing.assert_array_equal(recovered, payload)
    assert channel.erased_frames > 0
    assert report.frames_sent > report.frames_delivered


def test_erasure_channel_rate_zero_is_transparent():
    inner = BitErrorChannel(0.0, rng=0)
    channel = ErasureChannel(inner, 0.0, rng=0)
    bits = _payload(256)
    np.testing.assert_array_equal(channel.transmit(bits), bits)
    assert channel.erased_frames == 0


def test_erasure_channel_validates_rate():
    with pytest.raises(ValueError):
        ErasureChannel(BitErrorChannel(0.0), 1.1)
