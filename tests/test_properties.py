"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* input, spanning module boundaries:
OFDM transparency, schedule safety, link-model monotonicity, and the
end-to-end "critical information" guarantee.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.lte.modulation import BITS_PER_SYMBOL, demodulate_hard, modulate
from repro.lte.ofdm import demodulate_symbol, modulate_symbol
from repro.lte.params import LteParams
from repro.tag.controller import TagController
from repro.utils.rng import make_rng


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_ofdm_transparent_for_any_subcarriers(seed):
    """IFFT+CP then FFT is exact for arbitrary complex subcarriers."""
    params = LteParams.from_bandwidth(1.4)
    rng = make_rng(seed)
    values = rng.standard_normal(72) + 1j * rng.standard_normal(72)
    for sym in (0, 3):
        samples = modulate_symbol(params, values, sym)
        recovered = demodulate_symbol(params, samples, sym)
        assert np.allclose(recovered, values, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    error=st.integers(min_value=-28, max_value=28),
    payload_len=st.integers(min_value=0, max_value=5000),
)
def test_schedule_never_touches_sync_region(error, payload_len):
    """For any in-guard timing error and payload, the PSS/SSS chips stay +1."""
    params = LteParams.from_bandwidth(1.4)
    controller = TagController(params, rng=0)
    payload = make_rng(1).integers(0, 2, size=payload_len).astype(np.int8)
    schedule = controller.build_schedule(
        controller.genie_timing(0, error), params.samples_per_frame, payload
    )
    half = params.samples_per_frame // 2
    for half_index in (0, 1):
        lo = half_index * half + params.symbol_start(0, 5)
        hi = half_index * half + params.symbol_start(0, 6) + params.symbol_length(6)
        assert np.all(schedule.chips[lo:hi] == 1)


@settings(max_examples=25, deadline=None)
@given(
    d1=st.floats(min_value=1.0, max_value=30.0),
    d2a=st.floats(min_value=1.0, max_value=150.0),
    delta=st.floats(min_value=1.0, max_value=100.0),
)
def test_link_model_ber_monotone_in_distance(d1, d2a, delta):
    model = LScatterLinkModel(20.0, LinkBudget(venue="shopping_mall"))
    near = model.ber(d1, d2a)
    far = model.ber(d1, d2a + delta)
    assert far >= near - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    d1=st.floats(min_value=1.0, max_value=40.0),
    d2=st.floats(min_value=1.0, max_value=200.0),
)
def test_link_prediction_internally_consistent(d1, d2):
    model = LScatterLinkModel(20.0, LinkBudget(venue="outdoor"))
    prediction = model.predict(d1, d2)
    assert 0.0 <= prediction.ber <= 0.5
    assert 0.0 <= prediction.sync_availability <= 1.0
    assert (
        prediction.throughput_bps
        <= prediction.raw_bit_rate_bps + 1e-9
    )


@settings(max_examples=15, deadline=None)
@given(
    scheme=st.sampled_from(sorted(BITS_PER_SYMBOL)),
    gain_db=st.floats(min_value=-30.0, max_value=10.0),
    phase=st.floats(min_value=-np.pi, max_value=np.pi),
)
def test_qam_decisions_invariant_to_known_flat_channel(scheme, gain_db, phase):
    """Equalising by the exact channel restores any constellation."""
    rng = make_rng(7)
    bits = rng.integers(0, 2, size=BITS_PER_SYMBOL[scheme] * 32).astype(np.int8)
    symbols = modulate(bits, scheme)
    g = 10 ** (gain_db / 20) * np.exp(1j * phase)
    equalized = (symbols * g) / g
    assert np.array_equal(demodulate_hard(equalized, scheme), bits)


@settings(max_examples=10, deadline=None)
@given(n_frames=st.integers(min_value=1, max_value=3))
def test_capture_length_always_integral_frames(n_frames):
    from repro.lte import LteTransmitter

    capture = LteTransmitter(1.4, rng=0).transmit(n_frames)
    assert len(capture.samples) == n_frames * capture.params.samples_per_frame
    assert len(capture.frames) == n_frames


@settings(max_examples=10, deadline=None)
@given(
    ber=st.floats(min_value=0.0, max_value=0.2),
)
def test_coded_ber_never_worse_than_half(ber):
    from repro.tag.coding import hamming74_coded_ber, repetition_coded_ber

    assert 0.0 <= hamming74_coded_ber(ber) <= 0.5
    assert 0.0 <= repetition_coded_ber(ber) <= 0.5
