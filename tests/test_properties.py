"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* input, spanning module boundaries:
OFDM transparency, schedule safety, link-model monotonicity, and the
end-to-end "critical information" guarantee.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.lte.modulation import BITS_PER_SYMBOL, demodulate_hard, modulate
from repro.lte.ofdm import demodulate_symbol, modulate_symbol
from repro.lte.params import LteParams
from repro.tag.controller import TagController
from repro.utils.rng import make_rng


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_ofdm_transparent_for_any_subcarriers(seed):
    """IFFT+CP then FFT is exact for arbitrary complex subcarriers."""
    params = LteParams.from_bandwidth(1.4)
    rng = make_rng(seed)
    values = rng.standard_normal(72) + 1j * rng.standard_normal(72)
    for sym in (0, 3):
        samples = modulate_symbol(params, values, sym)
        recovered = demodulate_symbol(params, samples, sym)
        assert np.allclose(recovered, values, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    error=st.integers(min_value=-28, max_value=28),
    payload_len=st.integers(min_value=0, max_value=5000),
)
def test_schedule_never_touches_sync_region(error, payload_len):
    """For any in-guard timing error and payload, the PSS/SSS chips stay +1."""
    params = LteParams.from_bandwidth(1.4)
    controller = TagController(params, rng=0)
    payload = make_rng(1).integers(0, 2, size=payload_len).astype(np.int8)
    schedule = controller.build_schedule(
        controller.genie_timing(0, error), params.samples_per_frame, payload
    )
    half = params.samples_per_frame // 2
    for half_index in (0, 1):
        lo = half_index * half + params.symbol_start(0, 5)
        hi = half_index * half + params.symbol_start(0, 6) + params.symbol_length(6)
        assert np.all(schedule.chips[lo:hi] == 1)


@settings(max_examples=25, deadline=None)
@given(
    d1=st.floats(min_value=1.0, max_value=30.0),
    d2a=st.floats(min_value=1.0, max_value=150.0),
    delta=st.floats(min_value=1.0, max_value=100.0),
)
def test_link_model_ber_monotone_in_distance(d1, d2a, delta):
    model = LScatterLinkModel(20.0, LinkBudget(venue="shopping_mall"))
    near = model.ber(d1, d2a)
    far = model.ber(d1, d2a + delta)
    assert far >= near - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    d1=st.floats(min_value=1.0, max_value=40.0),
    d2=st.floats(min_value=1.0, max_value=200.0),
)
def test_link_prediction_internally_consistent(d1, d2):
    model = LScatterLinkModel(20.0, LinkBudget(venue="outdoor"))
    prediction = model.predict(d1, d2)
    assert 0.0 <= prediction.ber <= 0.5
    assert 0.0 <= prediction.sync_availability <= 1.0
    assert (
        prediction.throughput_bps
        <= prediction.raw_bit_rate_bps + 1e-9
    )


@settings(max_examples=15, deadline=None)
@given(
    scheme=st.sampled_from(sorted(BITS_PER_SYMBOL)),
    gain_db=st.floats(min_value=-30.0, max_value=10.0),
    phase=st.floats(min_value=-np.pi, max_value=np.pi),
)
def test_qam_decisions_invariant_to_known_flat_channel(scheme, gain_db, phase):
    """Equalising by the exact channel restores any constellation."""
    rng = make_rng(7)
    bits = rng.integers(0, 2, size=BITS_PER_SYMBOL[scheme] * 32).astype(np.int8)
    symbols = modulate(bits, scheme)
    g = 10 ** (gain_db / 20) * np.exp(1j * phase)
    equalized = (symbols * g) / g
    assert np.array_equal(demodulate_hard(equalized, scheme), bits)


@settings(max_examples=10, deadline=None)
@given(n_frames=st.integers(min_value=1, max_value=3))
def test_capture_length_always_integral_frames(n_frames):
    from repro.lte import LteTransmitter

    capture = LteTransmitter(1.4, rng=0).transmit(n_frames)
    assert len(capture.samples) == n_frames * capture.params.samples_per_frame
    assert len(capture.frames) == n_frames


@settings(max_examples=10, deadline=None)
@given(
    ber=st.floats(min_value=0.0, max_value=0.2),
)
def test_coded_ber_never_worse_than_half(ber):
    from repro.tag.coding import hamming74_coded_ber, repetition_coded_ber

    assert 0.0 <= hamming74_coded_ber(ber) <= 0.5
    assert 0.0 <= repetition_coded_ber(ber) <= 0.5


# -- PR4: coding-chain roundtrip --------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    payload_len=st.integers(min_value=16, max_value=400),
    rate_factor=st.floats(min_value=1.0, max_value=3.0),
    c_init=st.integers(min_value=1, max_value=2**31 - 1),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_coding_chain_roundtrip_zero_noise(payload_len, rate_factor, c_init, seed):
    """scramble -> conv-encode -> rate-match -> decode is the identity.

    Under zero noise the receive chain must invert the transmit chain
    exactly, for any payload length and any rate-match factor >= 1
    (repetition only; puncturing deliberately discards parity and is not
    an identity even at zero noise).
    """
    from repro.lte import coding

    payload = make_rng(seed).integers(0, 2, size=payload_len).astype(np.int8)
    scrambled = coding.scramble_bits(payload, c_init)
    coded = coding.conv_encode(scrambled)
    target = int(np.ceil(len(coded) * rate_factor))
    matched = coding.rate_match(coded, target)

    # Zero-noise LLRs: positive means bit 0 (the demodulator convention).
    llrs = 1.0 - 2.0 * matched.astype(float)
    soft = coding.rate_recover(llrs, len(coded))
    decoded = coding.viterbi_decode(soft, payload_len)
    np.testing.assert_array_equal(decoded, scrambled)
    # Scrambling is an XOR with a Gold sequence: applying it again
    # descrambles, completing the identity back to the payload.
    np.testing.assert_array_equal(coding.scramble_bits(decoded, c_init), payload)


# -- PR4: align_windows invariants ------------------------------------------------


def _make_windows(starts):
    from repro.tag.controller import ChipWindow

    return [
        ChipWindow(start=int(s), n_chips=4, kind="data", bits=np.zeros(4, np.int8))
        for s in sorted(starts)
    ]


@settings(max_examples=30, deadline=None)
@given(
    schedule_starts=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12, unique=True
    ),
    demod_jitter=st.lists(
        st.integers(min_value=-600, max_value=600), min_size=0, max_size=12
    ),
    tolerance=st.integers(min_value=0, max_value=256),
    extra_tolerance=st.integers(min_value=0, max_value=256),
)
def test_align_windows_invariants(
    schedule_starts, demod_jitter, tolerance, extra_tolerance
):
    """One-to-one, order-preserving, and tolerance-monotone matching."""
    from repro.core.metrics import align_windows

    windows = _make_windows(schedule_starts)
    starts = sorted(schedule_starts)
    demod_starts = np.array(
        [starts[i % len(starts)] + j for i, j in enumerate(demod_jitter)],
        dtype=np.int64,
    )

    pairs = align_windows(windows, demod_starts, tolerance)

    # Every data window appears exactly once, in schedule order.
    assert [s for s, _ in pairs] == list(range(len(windows)))
    # One-to-one: no demodulated window satisfies two schedule windows.
    matched = [d for _, d in pairs if d is not None]
    assert len(matched) == len(set(matched))
    # Every match respects the tolerance.
    for s_index, d_index in pairs:
        if d_index is not None:
            delta = abs(int(demod_starts[d_index]) - windows[s_index].start)
            assert delta <= tolerance

    # Monotone in tolerance: widening the acceptance radius only adds
    # candidate pairs *after* the sorted prefix, so the greedy assignment
    # never un-matches a window that a tighter tolerance matched.
    wider = align_windows(windows, demod_starts, tolerance + extra_tolerance)
    for (s_index, d_index), (s2, d2) in zip(pairs, wider):
        assert s_index == s2
        if d_index is not None:
            assert d2 is not None


# -- PR4: severity-0 fault plans are no-ops ---------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    plan_seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_samples=st.integers(min_value=64, max_value=4096),
    dropout_windows=st.integers(min_value=1, max_value=8),
    jammer_bursts=st.integers(min_value=1, max_value=8),
)
def test_zero_severity_faults_are_object_identical_noops(
    seed, plan_seed, n_samples, dropout_windows, jammer_bursts
):
    """A severity-0 plan returns the *same array objects*, untouched.

    The carrier injectors promise not just equal values but the identity
    no-op (no copy, no RNG consumption visible to the caller) for any
    plan seed and placement configuration.
    """
    from repro.faults.carrier import CarrierFaultSet
    from repro.faults.plan import CarrierFaults, FaultPlan, TagFaults
    from repro.faults.tag import TagFaultInjector

    plan = FaultPlan(
        carrier=CarrierFaults(
            dropout_windows=dropout_windows, jammer_bursts=jammer_bursts
        ),
        tag=TagFaults(),
        seed=plan_seed,
    )
    assert plan.is_noop
    rng = make_rng(seed)
    samples = rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)
    fault_set = CarrierFaultSet(plan)
    assert not fault_set.active
    assert fault_set.apply_ambient(samples) is samples
    assert fault_set.apply_backscatter(samples) is samples

    injector = TagFaultInjector(plan.tag, rng=plan.rng_for("tag"))
    assert not injector.active
    edges = rng.integers(0, n_samples, size=5)
    np.testing.assert_array_equal(
        injector(edges, n_samples, 1.92e6), np.asarray(edges, dtype=np.int64)
    )
