"""Stress harness probes and a one-scenario smoke run of the suite."""

import json

import pytest

from repro.stress.suite import (
    RESYNC_BUDGET,
    _arq_jamming_probe,
    _mac_backoff_probe,
    run_stress,
)


def test_mac_backoff_probe_passes():
    result = _mac_backoff_probe()
    assert result["passed"]
    assert result["max_backoff_seen"] <= result["max_backoff_slots"]
    assert result["transmitted_after"] > 0
    storm_len = result["storm_slots"][1] - result["storm_slots"][0]
    assert result["transmitted_during_storm"] < storm_len
    assert result["recovery_latency_slots"] <= result["max_backoff_slots"] + 1


def test_arq_jamming_probe_bit_exact_across_sweep():
    result = _arq_jamming_probe([0.0, 0.5, 1.0], seed=0, payload_bits=2048)
    assert result["passed"]
    assert result["all_bit_exact"]
    assert result["all_bounded"]
    points = result["points"]
    # Jamming costs frames: the jammed points retransmit more than clean.
    assert points[-1]["frames_sent"] > points[0]["frames_sent"]
    assert points[0]["erased_frames"] == 0
    assert points[-1]["erased_frames"] > 0


def test_run_stress_rejects_unknown_scenario(tmp_path):
    with pytest.raises(ValueError, match="unknown stress scenario"):
        run_stress(output=None, smoke=True, scenarios=["bogus"])


def test_run_stress_smoke_single_scenario(tmp_path):
    """End-to-end: one non-sync scenario through the whole harness."""
    output = tmp_path / "stress.json"
    report = run_stress(
        output=str(output), smoke=True, seed=0, scenarios=["sweep-jammer"]
    )
    assert report["passed"]
    assert report["meta"]["mode"] == "smoke"
    (contract,) = report["noop_contracts"]
    assert contract["scenario"] == "sweep-jammer"
    assert contract["iq_identical"] and contract["metrics_identical"]
    (sweep,) = report["sweeps"]
    assert sweep["monotone_goodput"]
    assert [p["intensity"] for p in sweep["points"]] == [0.0, 0.5, 1.0]
    goodputs = [p["goodput_bps"] for p in sweep["points"]]
    # Full-blast jamming must actually cost goodput, not just not-help.
    assert goodputs[-1] < goodputs[0]
    assert report["sync_probes"] == []  # sweep-jammer is not sync-coupled
    assert report["degradation"]["mac_backoff"]["passed"]
    assert report["degradation"]["arq_jamming"]["passed"]
    on_disk = json.loads(output.read_text())
    assert on_disk["passed"] is True


def test_resync_budget_is_small_and_positive():
    assert 1 <= RESYNC_BUDGET <= 5
