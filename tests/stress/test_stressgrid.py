"""stressgrid campaign protocol: grid shape, pure points, gates."""

import pytest

from repro.experiments import stressgrid
from repro.experiments.registry import REGISTRY
from repro.stress.scenarios import SCENARIOS


def test_registered():
    assert "stressgrid" in REGISTRY


def test_campaign_grid_shapes():
    full = stressgrid.campaign_points(seed=0, smoke=False)
    assert len(full) == len(SCENARIOS) * len(stressgrid.INTENSITY_GRID) == 30
    smoke = stressgrid.campaign_points(seed=0, smoke=True)
    assert len(smoke) == 6
    for point in smoke:
        assert point["smoke"] is True
        assert point["scenario"] in stressgrid.SMOKE_SCENARIOS
    # Every cell is unique and JSON-plain (the checkpoint key).
    keys = [(p["scenario"], p["intensity"]) for p in full]
    assert len(set(keys)) == len(keys)


def test_run_point_row_fields():
    row = stressgrid.run_point(
        {"scenario": "sweep-jammer", "intensity": 0.5, "smoke": True}, seed=0
    )
    assert row["scenario"] == "sweep-jammer"
    assert row["intensity"] == 0.5
    assert row["goodput_kbps"] > 0
    assert 0.0 <= row["ber"] <= 1.0
    assert row["n_erased_windows"] >= 0
    assert "noop_identical" not in row  # only the intensity-0 cell checks it


def _rows(goodputs, bers=None, scenario="sweep-jammer", noop=True):
    bers = bers if bers is not None else [0.0] * len(goodputs)
    rows = []
    for i, (goodput, ber) in enumerate(zip(goodputs, bers)):
        row = {
            "scenario": scenario,
            "intensity": i / max(len(goodputs) - 1, 1),
            "goodput_kbps": goodput,
            "ber": ber,
            "n_erased_windows": 0,
            "sync_failed": False,
        }
        if row["intensity"] == 0.0:
            row["noop_identical"] = noop
        rows.append(row)
    return rows


def test_aggregate_accepts_monotone_rows():
    result = stressgrid.aggregate(_rows([500.0, 400.0, 300.0]))
    assert result.name == "stressgrid"
    assert [row["goodput_kbps"] for row in result.rows] == [500.0, 400.0, 300.0]


def test_aggregate_allows_flat_curves_within_slack():
    stressgrid.aggregate(_rows([500.0, 500.0, 500.0]))


def test_gate_trips_on_goodput_rise():
    with pytest.raises(stressgrid.MonotoneGateError, match="goodput rose"):
        stressgrid.aggregate(_rows([500.0, 400.0, 450.0]))


def test_gate_trips_on_ber_fall():
    with pytest.raises(stressgrid.MonotoneGateError, match="BER fell"):
        stressgrid.aggregate(
            _rows([500.0, 400.0, 300.0], bers=[0.0, 0.2, 0.1])
        )


def test_gate_trips_on_broken_noop():
    with pytest.raises(stressgrid.NoopGateError, match="not.*bit-identical"):
        stressgrid.aggregate(_rows([500.0, 400.0], noop=False))


def test_gate_is_per_scenario():
    """A rise across scenario boundaries is fine; within one, it is not."""
    rows = _rows([500.0, 400.0], scenario="sweep-jammer")
    rows += _rows([600.0, 450.0], scenario="bursty-pdsch")
    result = stressgrid.aggregate(rows)
    assert len(result.rows) == 4
