"""Stressor contracts: zero no-op, nested coverage, fixed placement."""

import numpy as np
import pytest

from repro.lte.params import LteParams
from repro.stress.stressors import (
    BurstyPdsch,
    PssJammer,
    ReactiveJammer,
    SignallingStorm,
    SweepJammer,
    TagMob,
)
from repro.utils.rng import make_rng

ALL_STRESSORS = (
    BurstyPdsch,
    SignallingStorm,
    SweepJammer,
    ReactiveJammer,
    PssJammer,
    TagMob,
)


@pytest.fixture(scope="module")
def params():
    return LteParams.from_bandwidth(1.4)


@pytest.fixture(scope="module")
def samples(params):
    rng = make_rng(11)
    n = 2 * params.samples_per_frame
    return (rng.normal(size=n) + 1j * rng.normal(size=n)) / np.sqrt(2)


def _apply(stressor, samples, seed="s"):
    rng = make_rng(seed)
    if getattr(stressor, "needs_ambient", False):
        return stressor.apply(samples, rng, ambient=samples)
    return stressor.apply(samples, rng)


@pytest.mark.parametrize("stressor_cls", ALL_STRESSORS)
def test_zero_intensity_returns_same_object(stressor_cls, params, samples):
    stressor = stressor_cls(0.0, params)
    assert not stressor.active
    assert _apply(stressor, samples) is samples


@pytest.mark.parametrize("stressor_cls", ALL_STRESSORS)
def test_active_stressor_copies_and_perturbs(stressor_cls, params, samples):
    original = samples.copy()
    out = _apply(stressor_cls(1.0, params), samples)
    assert out is not samples
    np.testing.assert_array_equal(samples, original)  # input untouched
    assert np.any(out != samples)


@pytest.mark.parametrize("stressor_cls", ALL_STRESSORS)
def test_intensity_rejected_outside_unit(stressor_cls, params):
    with pytest.raises(ValueError):
        stressor_cls(-0.1, params)
    with pytest.raises(ValueError):
        stressor_cls(1.5, params)


@pytest.mark.parametrize("stressor_cls", ALL_STRESSORS)
@pytest.mark.parametrize("lo, hi", [(0.25, 0.5), (0.5, 1.0)])
def test_coverage_nests_and_shared_samples_identical(
    stressor_cls, params, samples, lo, hi
):
    """The monotone-by-construction discipline, checked sample by sample.

    With a fixed rng stream, the set of samples a stressor perturbs at a
    lower intensity must be a subset of the set at a higher intensity,
    and the perturbation on the shared set must be bit-identical — only
    then are the suite's degradation curves monotone by construction.
    """
    out_lo = _apply(stressor_cls(lo, params), samples)
    out_hi = _apply(stressor_cls(hi, params), samples)
    affected_lo = out_lo != samples
    affected_hi = out_hi != samples
    assert affected_lo.sum() <= affected_hi.sum()
    assert not np.any(affected_lo & ~affected_hi)
    np.testing.assert_array_equal(out_lo[affected_lo], out_hi[affected_lo])
    # Samples untouched at the higher intensity are untouched, full stop.
    np.testing.assert_array_equal(out_hi[~affected_hi], samples[~affected_hi])


def test_placement_is_intensity_independent(params, samples):
    """Same stream, different intensity: low-coverage region is stable."""
    out_half = _apply(SweepJammer(0.5, params), samples)
    out_full = _apply(SweepJammer(1.0, params), samples)
    affected = out_half != samples
    np.testing.assert_array_equal(out_half[affected], out_full[affected])


def test_signalling_storm_leaves_sync_symbols_clean(params, samples):
    from repro.lte.pss import PSS_SLOTS
    from repro.lte.sss import SSS_SYMBOL_IN_SLOT
    from repro.stress.stressors import _symbol_span

    out = _apply(SignallingStorm(1.0, params), samples)
    for frame in range(2):
        for slot in PSS_SLOTS:
            lo, hi = _symbol_span(params, frame, slot, SSS_SYMBOL_IN_SLOT, 6)
            np.testing.assert_array_equal(out[lo:hi], samples[lo:hi])


def test_reactive_jammer_skips_sync_slots(params, samples):
    from repro.stress.stressors import _symbol_span

    out = _apply(ReactiveJammer(1.0, params), samples)
    for frame in range(2):
        for slot in (0, 10):
            lo, hi = _symbol_span(params, frame, slot, 0, 6)
            np.testing.assert_array_equal(out[lo:hi], samples[lo:hi])


def test_pss_jammer_touches_only_sync_symbols(params, samples):
    from repro.lte.pss import PSS_SLOTS
    from repro.lte.sss import SSS_SYMBOL_IN_SLOT
    from repro.stress.stressors import _symbol_span

    out = _apply(PssJammer(1.0, params), samples)
    sync = np.zeros(len(samples), dtype=bool)
    for frame in range(2):
        for slot in PSS_SLOTS:
            lo, hi = _symbol_span(params, frame, slot, SSS_SYMBOL_IN_SLOT, 6)
            sync[lo:hi] = True
    assert np.any(out[sync] != samples[sync])
    np.testing.assert_array_equal(out[~sync], samples[~sync])


def test_tag_mob_ghosts_leave_sync_clean(params, samples):
    from repro.lte.pss import PSS_SLOTS
    from repro.lte.sss import SSS_SYMBOL_IN_SLOT
    from repro.stress.stressors import _symbol_span

    out = _apply(TagMob(1.0, params), samples)
    for frame in range(2):
        for slot in PSS_SLOTS:
            lo, hi = _symbol_span(params, frame, slot, SSS_SYMBOL_IN_SLOT, 6)
            np.testing.assert_array_equal(out[lo:hi], samples[lo:hi])


def test_tag_mob_ghost_count_scales_with_intensity(params, samples):
    """More active ghosts -> strictly more interfered half-frames."""
    one = _apply(TagMob(0.25, params), samples)  # ceil(0.25*4) = 1 ghost
    all_four = _apply(TagMob(1.0, params), samples)
    assert (one != samples).sum() < (all_four != samples).sum()
