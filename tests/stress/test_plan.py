"""StressPlan / StressFaultSet contracts and scenario registry."""

import numpy as np
import pytest

from repro.faults.carrier import CarrierFaultSet
from repro.lte.params import LteParams
from repro.stress import (
    SCENARIOS,
    SYNC_COUPLED,
    StressFaultSet,
    StressPlan,
    make_scenario_plan,
)
from repro.stress.stressors import SweepJammer, TagMob
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def params():
    return LteParams.from_bandwidth(1.4)


@pytest.fixture(scope="module")
def samples(params):
    rng = make_rng(3)
    n = params.samples_per_frame
    return (rng.normal(size=n) + 1j * rng.normal(size=n)) / np.sqrt(2)


def test_registry_covers_all_scenarios(params):
    assert len(SCENARIOS) == 6
    assert SYNC_COUPLED <= set(SCENARIOS)
    for scenario in SCENARIOS:
        plan = make_scenario_plan(scenario, 0.5, params, seed=4)
        assert plan.scenario == scenario
        assert plan.intensity == 0.5
        assert len(plan.stressors) == 1
        assert plan.stressors[0].name == scenario


def test_unknown_scenario_raises(params):
    with pytest.raises(ValueError, match="unknown stress scenario"):
        make_scenario_plan("nope", 0.5, params)


def test_intensity_validated(params):
    with pytest.raises(ValueError):
        make_scenario_plan("sweep-jammer", 1.5, params)
    with pytest.raises(ValueError):
        StressPlan(intensity=-0.1)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_zero_intensity_plan_is_noop(scenario, params):
    plan = make_scenario_plan(scenario, 0.0, params)
    assert plan.is_noop
    fault_set = plan.carrier_fault_set()
    assert isinstance(fault_set, StressFaultSet)
    assert not fault_set.active
    assert not fault_set.wants_ambient


def test_active_plan_is_not_noop(params):
    plan = make_scenario_plan("sweep-jammer", 0.5, params)
    assert not plan.is_noop
    assert plan.carrier_fault_set().active


def test_polymorphic_fault_set_dispatch(params):
    """The pipeline builds a StressFaultSet without importing stress."""
    stress = make_scenario_plan("sweep-jammer", 0.5, params)
    assert type(stress.carrier_fault_set()) is StressFaultSet
    from repro.faults.plan import FaultPlan

    assert type(FaultPlan().carrier_fault_set()) is CarrierFaultSet


def test_wants_ambient_only_for_active_tag_mob(params):
    mob = StressPlan(stressors=(TagMob(0.5, params),))
    assert mob.carrier_fault_set().wants_ambient
    idle_mob = StressPlan(stressors=(TagMob(0.0, params),))
    assert not idle_mob.carrier_fault_set().wants_ambient
    jammer = StressPlan(stressors=(SweepJammer(0.5, params),))
    assert not jammer.carrier_fault_set().wants_ambient


def test_noop_fault_set_returns_same_objects(params, samples):
    fault_set = make_scenario_plan("sweep-jammer", 0.0, params).carrier_fault_set()
    assert fault_set.apply_ambient(samples) is samples
    assert fault_set.apply_backscatter(samples) is samples


def test_hooks_route_stressors(params, samples):
    """Ambient stressors touch the ambient hook only, and vice versa."""
    storm = make_scenario_plan("signalling-storm", 1.0, params).carrier_fault_set()
    assert np.any(storm.apply_ambient(samples) != samples)
    assert storm.apply_backscatter(samples) is samples

    jammer = make_scenario_plan("sweep-jammer", 1.0, params).carrier_fault_set()
    assert jammer.apply_ambient(samples) is samples
    assert np.any(jammer.apply_backscatter(samples) != samples)


def test_stressor_rng_is_deterministic_per_plan_seed(params, samples):
    out1 = make_scenario_plan(
        "sweep-jammer", 0.7, params, seed=9
    ).carrier_fault_set().apply_backscatter(samples)
    out2 = make_scenario_plan(
        "sweep-jammer", 0.7, params, seed=9
    ).carrier_fault_set().apply_backscatter(samples)
    out3 = make_scenario_plan(
        "sweep-jammer", 0.7, params, seed=10
    ).carrier_fault_set().apply_backscatter(samples)
    np.testing.assert_array_equal(out1, out2)
    assert np.any(out1 != out3)


def test_tag_mob_receives_ambient(params, samples):
    """apply_backscatter(ambient=...) reaches the ghosts' reflection."""
    fault_set = make_scenario_plan("tag-mob", 1.0, params).carrier_fault_set()
    ambient = 2.0 * samples
    with_ambient = fault_set.apply_backscatter(samples, ambient=ambient)
    fallback = fault_set.apply_backscatter(samples)
    assert np.any(with_ambient != samples)
    assert np.any(fallback != samples)
