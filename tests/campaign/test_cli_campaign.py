"""`repro campaign` command: listing, validation, sharded runs, resume."""

import json
import os

import pytest

from repro.cli import main


def test_campaign_list(capsys):
    assert main(["campaign", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig19" in out
    assert "Distance-matrix throughput" in out


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["campaign"], "experiment id is required"),
        (["campaign", "fig19", "--shards", "0"], "--shards must be >= 1"),
        (
            ["campaign", "fig19", "--shards", "2", "--shard-index", "2"],
            "--shard-index must be in [0, 2)",
        ),
        (
            ["campaign", "fig19", "--shard-index", "-1"],
            "--shard-index must be in [0, 1)",
        ),
        (["campaign", "fig19", "--workers", "0"], "--workers must be >= 1"),
        (["campaign", "nonesuch"], "unknown experiment"),
        (["campaign", "fig08"], "no campaign support"),
    ],
)
def test_campaign_validation_is_one_clean_line(capsys, argv, fragment):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert err.startswith("repro: error:")
    assert err.count("\n") == 1


def test_campaign_smoke_full_grid(tmp_path, capsys):
    run_dir = tmp_path / "fig19"
    code = main(
        ["campaign", "fig19", "--smoke", "--run-dir", str(run_dir)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "completed 2, resumed 0, failed 0" in out
    assert "grid complete" in out
    assert "enb_to_tag_ft" in out  # aggregated table printed
    manifest = json.load(open(run_dir / "manifest.json"))
    assert manifest["experiment"] == "fig19"
    assert [s["status"] for s in manifest["shards"]] == [
        "completed", "completed"
    ]


def test_campaign_single_shard_then_resume(tmp_path, capsys):
    run_dir = str(tmp_path / "fig19")
    assert main(
        [
            "campaign", "fig19", "--smoke",
            "--shards", "2", "--shard-index", "0",
            "--run-dir", run_dir,
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "shard 0/2" in out
    assert "grid incomplete: 1/2" in out
    assert os.path.exists(
        os.path.join(run_dir, "manifest-shard0of2.json")
    )

    assert main(
        ["campaign", "fig19", "--smoke", "--resume", "--run-dir", run_dir]
    ) == 0
    out = capsys.readouterr().out
    assert "completed 1, resumed 1, failed 0" in out
    assert "grid complete" in out


def test_campaign_failure_exit_code(tmp_path, capsys, crashy):
    crashy.CRASH_ON.add(1)
    code = main(
        ["campaign", "crashy", "--run-dir", str(tmp_path / "crashy")]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "failed 1" in out
    assert "FAILED" in out
    assert "grid incomplete" in out


def test_campaign_default_run_dir_under_artifacts(tmp_path, capsys, monkeypatch, crashy):
    monkeypatch.chdir(tmp_path)
    assert main(["campaign", "crashy", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "grid complete" in out
    assert os.path.isdir(
        os.path.join("artifacts", "campaign", "crashy-smoke")
    )
