"""Checkpoint files: CRC round-trip, corruption, staleness, manifests."""

import json

import numpy as np

from repro.campaign import CheckpointStore, Shard


def _shard(**overrides):
    base = dict(
        index=0,
        shard_id="fig99-0000",
        experiment="fig99",
        params={"distance_ft": 5.0},
        seed=0,
    )
    base.update(overrides)
    return Shard(**base)


def test_write_verify_roundtrip_is_bit_exact(tmp_path):
    store = CheckpointStore(tmp_path)
    shard = _shard()
    # Awkward floats + numpy scalars: the row must come back bit-identical
    # as plain Python, which is what sharded aggregation leans on.
    row = {
        "throughput_mbps": 0.1 + 0.2,
        "ber": np.float64(1.2345678901234567e-9),
        "count": np.int64(42),
        "nested": {"values": [1.0 / 3.0, 2.0 / 3.0]},
    }
    store.write(shard, row, elapsed_seconds=1.25)
    status, got = store.verify(shard)
    assert status == "ok"
    assert got["throughput_mbps"] == row["throughput_mbps"]
    assert got["ber"] == float(row["ber"])
    assert got["count"] == 42
    assert got["nested"]["values"] == row["nested"]["values"]
    assert isinstance(got["ber"], float)


def test_missing_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.verify(_shard()) == ("missing", None)


def test_corrupted_payload_fails_crc(tmp_path):
    store = CheckpointStore(tmp_path)
    shard = _shard()
    path = store.write(shard, {"value": 1.0})
    text = open(path).read()
    open(path, "w").write(text.replace('"value": 1.0', '"value": 2.0'))
    assert store.verify(shard) == ("corrupt", None)


def test_truncated_file_is_corrupt(tmp_path):
    store = CheckpointStore(tmp_path)
    shard = _shard()
    path = store.write(shard, {"value": 1.0})
    data = open(path).read()
    open(path, "w").write(data[: len(data) // 2])
    assert store.verify(shard) == ("corrupt", None)


def test_checkpoint_for_other_identity_is_stale(tmp_path):
    store = CheckpointStore(tmp_path)
    shard = _shard()
    store.write(shard, {"value": 1.0})
    # Same file name, different grid identity: reseeded...
    assert store.verify(_shard(seed=1))[0] == "stale"
    # ...or the grid point moved under the same id.
    assert store.verify(_shard(params={"distance_ft": 10.0}))[0] == "stale"


def test_manifest_names_are_per_job(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.manifest_path().endswith("manifest.json")
    assert store.manifest_path(4, 2).endswith("manifest-shard2of4.json")


def test_write_manifest_records_entries(tmp_path):
    from repro.campaign import CampaignSpec

    store = CheckpointStore(tmp_path)
    spec = CampaignSpec(experiment="fig99", seed=5, smoke=True)
    entries = [
        {"shard_id": "fig99-0000", "index": 0, "status": "completed",
         "params": {"d": 1.0}, "seed": 5, "elapsed_seconds": 0.5,
         "error": None},
    ]
    path = store.write_manifest(spec, 2, 1, entries)
    manifest = json.load(open(path))
    assert manifest["experiment"] == "fig99"
    assert manifest["seed"] == 5
    assert manifest["smoke"] is True
    assert manifest["n_shards"] == 2
    assert manifest["shard_index"] == 1
    assert manifest["shards"][0]["shard_id"] == "fig99-0000"
