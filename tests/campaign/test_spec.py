"""Shard grid expansion: determinism, partitioning, validation."""

import pytest

from repro.campaign import CampaignSpec, build_shards, select_shards


def test_build_shards_is_deterministic():
    spec = CampaignSpec(experiment="fig19", seed=3)
    first = build_shards(spec)
    second = build_shards(spec)
    assert [s.shard_id for s in first] == [s.shard_id for s in second]
    assert [s.params for s in first] == [s.params for s in second]
    assert [s.seed for s in first] == [s.seed for s in second]
    assert [s.index for s in first] == list(range(len(first)))


def test_shard_ids_encode_experiment_and_smoke():
    full = build_shards(CampaignSpec(experiment="fig19"))
    smoke = build_shards(CampaignSpec(experiment="fig19", smoke=True))
    assert full[0].shard_id == "fig19-0000"
    assert smoke[0].shard_id == "fig19-smoke-0000"
    # The smoke grid is a strict subset axis, never the full sweep.
    assert len(smoke) < len(full)


def test_spec_seed_becomes_shard_seed():
    shards = build_shards(CampaignSpec(experiment="fig19", seed=7))
    assert all(s.seed == 7 for s in shards)


def test_select_shards_partitions_round_robin():
    shards = build_shards(CampaignSpec(experiment="fig19"))
    slices = [select_shards(shards, 4, i) for i in range(4)]
    # Disjoint, exhaustive, and round-robin by grid index.
    seen = [s.index for sl in slices for s in sl]
    assert sorted(seen) == list(range(len(shards)))
    for i, sl in enumerate(slices):
        assert all(s.index % 4 == i for s in sl)


def test_select_shards_single_job_owns_everything():
    shards = build_shards(CampaignSpec(experiment="fig19"))
    assert select_shards(shards, 1, 0) == shards


@pytest.mark.parametrize(
    "n_shards, shard_index",
    [(0, 0), (-1, 0), (2, 2), (2, -1), (4, 99)],
)
def test_select_shards_validates_bounds(n_shards, shard_index):
    shards = build_shards(CampaignSpec(experiment="fig19", smoke=True))
    with pytest.raises(ValueError):
        select_shards(shards, n_shards, shard_index)


def test_unknown_experiment_raises_keyerror():
    with pytest.raises(KeyError):
        build_shards(CampaignSpec(experiment="not-an-experiment"))


def test_non_campaign_experiment_raises_with_capable_list():
    # fig08 is a real registry experiment without the campaign protocol.
    with pytest.raises(KeyError, match="campaign-capable"):
        build_shards(CampaignSpec(experiment="fig08"))
