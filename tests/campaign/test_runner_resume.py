"""Campaign runner: sharded equality, resume, crash recovery."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CheckpointStore,
    build_shards,
)
from repro.experiments.registry import run_experiment


def test_sharded_fig19_is_bit_identical_to_monolithic(tmp_path):
    """`repro campaign fig19 --shards 4` == the unsharded run, bit for bit."""
    spec = CampaignSpec(experiment="fig19", seed=0)
    report = CampaignRunner(spec, tmp_path, n_shards=4).run()
    mono = run_experiment("fig19", seed=0)
    assert report.result is not None
    assert report.result.rows == mono.rows  # exact float equality
    assert report.result.notes == mono.notes
    assert report.result.name == mono.name
    assert report.checkpointed == report.total_shards


def test_single_shard_job_leaves_grid_incomplete(tmp_path, crashy):
    spec = CampaignSpec(experiment="crashy", seed=0)
    report = CampaignRunner(spec, tmp_path, n_shards=2, shard_index=0).run()
    assert report.completed == 2  # round-robin slice 0 of a 4-point grid
    assert report.result is None
    assert report.checkpointed == 2
    assert report.total_shards == 4


def test_resume_skips_verified_checkpoints_untouched(tmp_path, crashy):
    spec = CampaignSpec(experiment="crashy", seed=0)
    CampaignRunner(spec, tmp_path, n_shards=2, shard_index=0).run()
    store = CheckpointStore(tmp_path)
    done = [s for s in build_shards(spec) if s.index % 2 == 0]
    before = {s.shard_id: open(store.path(s), "rb").read() for s in done}

    report = CampaignRunner(spec, tmp_path, resume=True).run()
    assert report.resumed == 2
    assert report.completed == 2
    assert report.failed == 0
    assert report.result is not None
    # Verified checkpoints are reused, not rewritten.
    after = {s.shard_id: open(store.path(s), "rb").read() for s in done}
    assert after == before


def test_resume_without_checkpoints_runs_everything(tmp_path, crashy):
    spec = CampaignSpec(experiment="crashy", seed=0)
    report = CampaignRunner(spec, tmp_path, resume=True).run()
    assert report.resumed == 0
    assert report.completed == 4
    assert report.result is not None


def test_corrupted_checkpoint_is_rerun(tmp_path, crashy):
    spec = CampaignSpec(experiment="crashy", seed=0)
    CampaignRunner(spec, tmp_path).run()
    store = CheckpointStore(tmp_path)
    victim = build_shards(spec)[1]
    path = store.path(victim)
    data = open(path).read()
    open(path, "w").write(data.replace('"squared": 1.0', '"squared": 9.0'))
    assert store.verify(victim) == ("corrupt", None)

    report = CampaignRunner(spec, tmp_path, resume=True).run()
    assert report.resumed == 3
    assert report.completed == 1  # only the corrupted shard re-ran
    assert store.verify(victim)[0] == "ok"
    assert report.result.rows[1]["squared"] == 1.0


def test_kill_mid_campaign_then_resume_completes_remaining(tmp_path, crashy):
    """The acceptance drill: die partway, keep checkpoints, resume the rest."""
    spec = CampaignSpec(experiment="crashy", seed=0)
    crashy.CRASH_ON.add(2)
    with pytest.raises(Exception):
        CampaignRunner(spec, tmp_path, max_retries=0).run()
    # Points 0 and 1 finished before the crash and are already on disk.
    store = CheckpointStore(tmp_path)
    shards = build_shards(spec)
    assert [store.verify(s)[0] for s in shards] == [
        "ok", "ok", "missing", "missing"
    ]

    crashy.CRASH_ON.clear()
    report = CampaignRunner(spec, tmp_path, resume=True).run()
    assert report.resumed == 2  # pre-crash work reused...
    assert report.completed == 2  # ...only the remainder executed
    assert report.failed == 0
    assert report.result is not None
    assert report.result.rows == crashy.run(seed=0).rows


def test_failed_shards_reported_in_partial_mode(tmp_path, crashy):
    spec = CampaignSpec(experiment="crashy", seed=0)
    crashy.CRASH_ON.add(3)
    report = CampaignRunner(
        spec, tmp_path, max_retries=0, on_error="partial"
    ).run()
    assert report.completed == 3
    assert report.failed == 1
    assert report.result is None
    failed = [o for o in report.outcomes if o.status == "failed"]
    assert "injected crash" in failed[0].error


def test_campaign_counters_increment(tmp_path, crashy):
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset_metrics()
    spec = CampaignSpec(experiment="crashy", seed=0)
    CampaignRunner(spec, tmp_path).run()
    CampaignRunner(spec, tmp_path, resume=True).run()
    counters = obs_metrics.counters_snapshot()
    assert counters["campaign.shards_completed"] == 4
    assert counters["campaign.shards_skipped"] == 4
