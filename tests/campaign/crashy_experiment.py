"""A tiny campaign-capable experiment whose points can be made to crash.

Used by the kill-mid-campaign tests: the grid has four points, and any
value listed in :data:`CRASH_ON` raises from ``run_point`` — after the
earlier points have already been checkpointed (the runner executes
serially with ``workers=1``).  Tests monkeypatch the experiment registry
to route the id ``"crashy"`` at this module.
"""

from repro.experiments.registry import ExperimentResult

#: Point values whose ``run_point`` raises; mutate from tests.
CRASH_ON = set()

DESCRIPTION = "crash-injection campaign fixture"


def campaign_points(seed=0, smoke=False):
    values = (0, 1) if smoke else (0, 1, 2, 3)
    return [{"value": value} for value in values]


def run_point(params, seed):
    value = params["value"]
    if value in CRASH_ON:
        raise RuntimeError(f"injected crash at value={value}")
    return {"value": value, "squared": float(value * value + seed)}


def aggregate(rows, seed=0):
    return ExperimentResult(
        name="crashy",
        description=DESCRIPTION,
        rows=list(rows),
        notes=f"seed={seed}",
    )


def run(seed=0):
    rows = [run_point(params, seed) for params in campaign_points(seed=seed)]
    return aggregate(rows, seed=seed)
