import pytest

import repro.experiments.registry as experiments_registry
from tests.campaign import crashy_experiment


@pytest.fixture()
def crashy(monkeypatch):
    """Register the crash-injection fixture experiment as ``crashy``.

    Yields the fixture module with a clean crash set; both registry views
    (module resolution and descriptions) are patched so the campaign
    layer resolves it like any real experiment.
    """
    entry = ("tests.campaign.crashy_experiment", crashy_experiment.DESCRIPTION)
    monkeypatch.setitem(experiments_registry._EXPERIMENTS, "crashy", entry)
    monkeypatch.setitem(experiments_registry.REGISTRY, "crashy", entry)
    crashy_experiment.CRASH_ON.clear()
    yield crashy_experiment
    crashy_experiment.CRASH_ON.clear()
