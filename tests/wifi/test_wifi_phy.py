"""802.11a/g PHY end-to-end tests."""

import numpy as np
import pytest

from repro.channel.fading import FadingChannel
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng
from repro.wifi import WIFI_RATES, WifiReceiver, WifiTransmitter
from repro.wifi.ofdm import ltf_waveform, stf_waveform
from repro.wifi.receiver import detect_packet


def test_preamble_lengths():
    assert len(stf_waveform()) == 160  # 8 us
    assert len(ltf_waveform()) == 160  # 8 us


def test_stf_is_periodic():
    stf = stf_waveform()
    assert np.allclose(stf[:16], stf[16:32])


@pytest.mark.parametrize("rate", sorted(WIFI_RATES))
def test_roundtrip_clean(rate):
    tx = WifiTransmitter(rate, rng=0)
    packet = tx.transmit(psdu_bytes=120)
    result = WifiReceiver().decode(packet.samples, ltf1_start=192)
    assert result.detected
    assert result.rate_mbps == rate
    assert result.errors_against(packet.psdu_bits) == 0


def test_detection_with_padding_and_noise():
    rng = make_rng(1)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=80)
    signal = np.concatenate(
        [np.zeros(333, complex), packet.samples, np.zeros(50, complex)]
    )
    noisy = awgn(signal, 20.0, rng)
    start = detect_packet(noisy)
    assert start == 333 + 192  # zeros + STF + GI2


def test_decode_with_noise():
    rng = make_rng(2)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=100)
    noisy = awgn(packet.samples, 18.0, rng)
    result = WifiReceiver().decode(noisy, ltf1_start=192)
    assert result.detected
    assert result.errors_against(packet.psdu_bits) == 0


def test_decode_through_flat_channel():
    rng = make_rng(3)
    packet = WifiTransmitter(24.0, rng=rng).transmit(psdu_bytes=60)
    channel = 0.4 * np.exp(1j * 2.2)
    result = WifiReceiver().decode(packet.samples * channel, ltf1_start=192)
    assert result.detected
    assert result.errors_against(packet.psdu_bits) == 0


def test_decode_through_multipath():
    rng = make_rng(4)
    packet = WifiTransmitter(6.0, rng=rng).transmit(psdu_bytes=60)
    fading = FadingChannel.rician(k_db=10.0, n_taps=3, rng=rng)
    faded = awgn(fading.apply(packet.samples), 22.0, rng)
    result = WifiReceiver().decode(faded, ltf1_start=192)
    assert result.detected
    assert result.errors_against(packet.psdu_bits) <= 4


def test_no_packet_in_noise():
    rng = make_rng(5)
    noise = rng.standard_normal(4000) + 1j * rng.standard_normal(4000)
    result = WifiReceiver().decode(noise)
    assert not result.detected


def test_symbol_duration_contrast_with_lte():
    # The paper's C2: WiFi symbols are 4 us vs LTE's 66.7/71.4 us.
    from repro.wifi.params import SYMBOL_SECONDS
    from repro.lte.params import USEFUL_SYMBOL_SECONDS

    assert SYMBOL_SECONDS == pytest.approx(4e-6)
    assert USEFUL_SYMBOL_SECONDS / SYMBOL_SECONDS == pytest.approx(16.67, rel=0.01)


def test_unsupported_rate_rejected():
    with pytest.raises(ValueError):
        WifiTransmitter(9.0)


def test_non_byte_psdu_rejected():
    with pytest.raises(ValueError):
        WifiTransmitter(6.0).transmit(psdu_bits=np.zeros(9, dtype=np.int8))
