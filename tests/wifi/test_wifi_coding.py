"""802.11 bit-pipeline tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.wifi import coding
from repro.utils.rng import make_rng


def test_scrambler_involution():
    bits = make_rng(0).integers(0, 2, size=300).astype(np.int8)
    assert np.array_equal(coding.scramble(coding.scramble(bits)), bits)


def test_scrambler_whitens_zeros():
    out = coding.scramble(np.zeros(1270, dtype=np.int8))
    assert abs(out.mean() - 0.5) < 0.05


def test_conv_half_rate():
    bits = make_rng(1).integers(0, 2, size=24).astype(np.int8)
    assert len(coding.conv_encode_half(bits)) == 48


def test_viterbi_half_noiseless():
    rng = make_rng(2)
    bits = rng.integers(0, 2, size=100).astype(np.int8)
    bits[-6:] = 0  # zero tail
    coded = coding.conv_encode_half(bits)
    llrs = 4.0 * (1.0 - 2.0 * coded.astype(float))
    assert np.array_equal(coding.viterbi_half(llrs, 100), bits)


def test_viterbi_half_with_noise():
    rng = make_rng(3)
    bits = rng.integers(0, 2, size=400).astype(np.int8)
    bits[-6:] = 0
    coded = coding.conv_encode_half(bits).astype(float)
    noisy = (1.0 - 2.0 * coded) + rng.normal(0, 0.6, len(coded))
    decoded = coding.viterbi_half(noisy, 400)
    assert np.mean(decoded != bits) < 0.02


def test_puncture_34_length():
    coded = np.arange(12, dtype=np.int8) % 2
    out = coding.puncture(coded, 3, 4)
    assert len(out) == 8  # 12 * (4/6)


def test_puncture_identity_rate_half():
    coded = make_rng(4).integers(0, 2, size=60).astype(np.int8)
    assert np.array_equal(coding.puncture(coded, 1, 2), coded)


def test_depuncture_restores_positions():
    coded = make_rng(5).integers(0, 2, size=120).astype(np.int8)
    punctured = coding.puncture(coded, 3, 4)
    llrs = 1.0 - 2.0 * punctured.astype(float)
    soft = coding.depuncture(llrs, 3, 4, 120)
    transmitted = soft != 0
    hard = (soft[transmitted] < 0).astype(np.int8)
    assert np.array_equal(hard, coded[transmitted])
    assert np.sum(~transmitted) == 40


def test_punctured_decode_roundtrip():
    rng = make_rng(6)
    bits = rng.integers(0, 2, size=216).astype(np.int8)
    bits[-6:] = 0
    coded = coding.conv_encode_half(bits)
    punctured = coding.puncture(coded, 3, 4)
    llrs = 4.0 * (1.0 - 2.0 * punctured.astype(float))
    soft = coding.depuncture(llrs, 3, 4, len(coded))
    assert np.array_equal(coding.viterbi_half(soft, 216), bits)


def test_unsupported_rate_rejected():
    with pytest.raises(ValueError):
        coding.puncture(np.zeros(6, dtype=np.int8), 2, 3)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=6))
def test_interleaver_roundtrip(n_symbols):
    n_cbps, n_bpsc = 96, 2  # QPSK symbol
    rng = make_rng(n_symbols)
    bits = rng.integers(0, 2, size=n_symbols * n_cbps).astype(np.int8)
    out = coding.deinterleave(coding.interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
    assert np.array_equal(out, bits)


def test_interleaver_spreads_adjacent_bits():
    n_cbps = 192  # 16-QAM
    bits = np.zeros(n_cbps, dtype=np.int8)
    bits[:2] = 1  # two adjacent coded bits
    interleaved = coding.interleave(bits, n_cbps, 4)
    positions = np.flatnonzero(interleaved)
    assert abs(positions[1] - positions[0]) > 4


def test_interleaver_wrong_length_rejected():
    with pytest.raises(ValueError):
        coding.interleave(np.zeros(97, dtype=np.int8), 96, 2)
