"""WiFi receiver edge cases and failure paths."""

import numpy as np
import pytest

from repro.utils.dsp import awgn
from repro.utils.rng import make_rng
from repro.wifi import WifiReceiver, WifiTransmitter
from repro.wifi.receiver import detect_packet


def test_signal_field_rate_readback():
    """The receiver learns the rate from SIGNAL without being told."""
    for rate in (6.0, 54.0):
        packet = WifiTransmitter(rate, rng=0).transmit(psdu_bytes=40)
        result = WifiReceiver().decode(packet.samples, ltf1_start=192)
        assert result.rate_mbps == rate


def test_truncated_packet_fails_cleanly():
    packet = WifiTransmitter(12.0, rng=1).transmit(psdu_bytes=200)
    truncated = packet.samples[: len(packet.samples) // 2]
    result = WifiReceiver().decode(truncated, ltf1_start=192)
    assert not result.detected


def test_forced_rate_overrides_signal():
    packet = WifiTransmitter(24.0, rng=2).transmit(psdu_bytes=60)
    result = WifiReceiver(rate_mbps=24.0).decode(packet.samples, ltf1_start=192)
    assert result.detected
    assert result.errors_against(packet.psdu_bits) == 0


def test_detection_threshold_rejects_weak_correlation():
    rng = make_rng(3)
    noise = 0.01 * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
    assert detect_packet(noise) == -1


def test_low_snr_decode_fails_not_crashes():
    rng = make_rng(4)
    packet = WifiTransmitter(54.0, rng=rng).transmit(psdu_bytes=150)
    garbled = awgn(packet.samples, -5.0, rng)
    result = WifiReceiver().decode(garbled, ltf1_start=192)
    # Either undetected or detected with errors; never an exception.
    if result.detected:
        assert result.errors_against(packet.psdu_bits) > 0


def test_errors_against_length_mismatch_counts_all():
    packet = WifiTransmitter(6.0, rng=5).transmit(psdu_bytes=10)
    result = WifiReceiver().decode(packet.samples, ltf1_start=192)
    wrong_reference = np.zeros(999, dtype=np.int8)
    assert result.errors_against(wrong_reference) == 999


def test_two_packets_first_one_decoded():
    rng = make_rng(6)
    tx = WifiTransmitter(12.0, rng=rng)
    p1 = tx.transmit(psdu_bytes=50)
    p2 = tx.transmit(psdu_bytes=50)
    stream = np.concatenate(
        [np.zeros(100, complex), p1.samples, np.zeros(500, complex), p2.samples]
    )
    result = WifiReceiver().decode(stream)
    assert result.detected
    assert result.errors_against(p1.psdu_bits) == 0
