"""Tag scheduler invariants — the heart of challenge C1."""

import numpy as np
import pytest

from repro.lte.params import LteParams
from repro.tag.controller import ChipSchedule, TagController
from repro.utils.rng import make_rng


@pytest.fixture
def controller():
    return TagController(LteParams.from_bandwidth(1.4), rng=0)


def _schedule(controller, error=0, payload_len=5000, n_frames=2):
    params = controller.params
    timing = controller.genie_timing(0, error)
    payload = make_rng(1).integers(0, 2, size=payload_len).astype(np.int8)
    return controller.build_schedule(
        timing, n_frames * params.samples_per_frame, payload
    )


def test_chips_are_pm_one(controller):
    schedule = _schedule(controller)
    assert set(np.unique(schedule.chips)) <= {-1, 1}


def test_sync_symbols_never_modulated(controller):
    """The PSS/SSS samples must pass through with constant chips (+1)."""
    params = controller.params
    schedule = _schedule(controller, payload_len=100_000)
    half = params.samples_per_frame // 2
    for half_index in range(4):
        for sym in (5, 6):  # SSS, PSS of the sync slot
            start = half_index * half + params.symbol_start(0, sym)
            end = start + params.symbol_length(sym)
            assert np.all(schedule.chips[start:end] == 1), (half_index, sym)


def test_chips_avoid_cyclic_prefixes(controller):
    params = controller.params
    schedule = _schedule(controller, payload_len=100_000)
    half = params.samples_per_frame // 2
    modulated = schedule.chips == -1
    for half_index in range(2):
        for slot in range(10):
            for sym in range(7):
                start = half_index * half + params.symbol_start(slot, sym)
                cp_end = start + params.cp_length(sym)
                assert not np.any(modulated[start:cp_end]), (slot, sym)


def test_windows_centred_in_useful_symbol(controller):
    params = controller.params
    schedule = _schedule(controller)
    guard = (params.fft_size - params.n_subcarriers) // 2
    for window in schedule.windows:
        # Window start is useful_start + guard for zero timing error.
        offset = window.start % params.samples_per_slot
        assert window.n_chips == params.n_subcarriers
    assert guard == controller.chip_offset


def test_timing_error_shifts_all_windows(controller):
    base = _schedule(controller, error=0)
    shifted = _schedule(controller, error=3)
    for a, b in zip(base.windows, shifted.windows):
        assert b.start - a.start == 3


def test_payload_bits_recoverable_from_windows(controller):
    payload = make_rng(2).integers(0, 2, size=1000).astype(np.int8)
    timing = controller.genie_timing(0, 0)
    schedule = controller.build_schedule(
        timing, 2 * controller.params.samples_per_frame, payload
    )
    data_bits = np.concatenate(
        [w.bits for w in schedule.windows if w.kind == "data"]
    )
    assert np.array_equal(data_bits[:1000], payload)


def test_preamble_first_in_every_packet(controller):
    schedule = _schedule(controller)
    kinds = [w.kind for w in schedule.windows]
    # Pattern: preamble followed by data windows, repeating.
    assert kinds[0] == "preamble"
    for i, kind in enumerate(kinds):
        if kind == "preamble" and i > 0:
            assert kinds[i - 1] == "data"


def test_half_frame_count(controller):
    schedule = _schedule(controller, n_frames=3)
    assert schedule.n_half_frames == 6


def test_negative_timing_skips_partial_half(controller):
    params = controller.params
    timing = controller.genie_timing(0, -params.samples_per_frame // 4)
    schedule = controller.build_schedule(
        timing, params.samples_per_frame, np.ones(10, np.int8)
    )
    assert all(w.start >= 0 for w in schedule.windows)


def test_chips_length_matches_capture(controller):
    n = controller.params.samples_per_frame
    schedule = controller.build_schedule(
        controller.genie_timing(0, 0), n, np.ones(5, np.int8)
    )
    assert len(schedule.chips) == n
