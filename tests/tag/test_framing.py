"""Tag packet-framing tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tag.framing import (
    DATA_SYMBOLS_PER_PACKET,
    PACKET_SYMBOLS,
    depacketize,
    packetize,
    preamble_bits,
    slot_plan,
)
from repro.utils.rng import make_rng


def test_preamble_deterministic():
    assert np.array_equal(preamble_bits(1200), preamble_bits(1200))


def test_preamble_balanced():
    bits = preamble_bits(1200)
    assert 0.4 < bits.mean() < 0.6


def test_packetize_pads_with_idle_ones():
    payload = np.array([0, 1, 0], dtype=np.int8)
    rows = packetize(payload, data_symbols=2, n_chips=4)
    assert rows.shape == (2, 4)
    assert np.array_equal(rows[0], [0, 1, 0, 1])
    assert np.array_equal(rows[1], [1, 1, 1, 1])


def test_packetize_overflow_rejected():
    with pytest.raises(ValueError):
        packetize(np.ones(9, dtype=np.int8), data_symbols=2, n_chips=4)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=0, max_size=48))
def test_roundtrip_property(bits):
    payload = np.array(bits, dtype=np.int8)
    rows = packetize(payload, data_symbols=4, n_chips=12)
    assert np.array_equal(depacketize(rows, len(payload)), payload)


def test_depacketize_too_long_rejected():
    rows = packetize(np.zeros(4, dtype=np.int8), 1, 8)
    with pytest.raises(ValueError):
        depacketize(rows, 100)


def test_slot_plan_structure():
    plan = slot_plan()
    assert len(plan) == 10
    # Sync slot loses its SSS/PSS symbols.
    assert len(plan[0]) == 5
    for slot_entry in plan[1:]:
        assert len(slot_entry) == PACKET_SYMBOLS
    # Pairs are (slot, symbol) with slot matching the list position.
    for index, entry in enumerate(plan):
        assert all(slot == index for slot, _sym in entry)


def test_slot_plan_never_touches_sync_symbols():
    for slot, sym in (pair for entry in slot_plan() for pair in entry):
        assert not (slot == 0 and sym in (5, 6))


def test_data_symbols_per_frame_constant():
    # 9 full packets x 6 + 1 short packet x 4 per half-frame.
    per_half = sum(len(e) - 1 for e in slot_plan())
    assert per_half == 58
    assert DATA_SYMBOLS_PER_PACKET == 6
