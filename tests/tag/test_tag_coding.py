"""Tag-side channel-coding tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tag.coding import (
    block_deinterleave,
    block_interleave,
    hamming74_coded_ber,
    hamming74_decode,
    hamming74_encode,
    repetition_coded_ber,
    repetition_decode,
    repetition_encode,
)
from repro.utils.rng import make_rng


def test_hamming_rate():
    coded, n = hamming74_encode(np.zeros(40, dtype=np.int8))
    assert len(coded) == 70  # 4 -> 7


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
def test_hamming_roundtrip(bits):
    payload = np.array(bits, dtype=np.int8)
    coded, n = hamming74_encode(payload)
    assert np.array_equal(hamming74_decode(coded, n), payload)


def test_hamming_corrects_single_error_per_block():
    rng = make_rng(0)
    payload = rng.integers(0, 2, size=200).astype(np.int8)
    coded, n = hamming74_encode(payload)
    corrupted = coded.copy()
    for block in range(len(coded) // 7):
        corrupted[block * 7 + int(rng.integers(0, 7))] ^= 1
    assert np.array_equal(hamming74_decode(corrupted, n), payload)


def test_hamming_two_errors_not_corrected():
    payload = np.array([1, 0, 1, 1], dtype=np.int8)
    coded, n = hamming74_encode(payload)
    corrupted = coded.copy()
    corrupted[0] ^= 1
    corrupted[3] ^= 1
    decoded = hamming74_decode(corrupted, n)
    assert not np.array_equal(decoded, payload)


def test_hamming_wrong_length_rejected():
    with pytest.raises(ValueError):
        hamming74_decode(np.zeros(13, dtype=np.int8), 4)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
def test_repetition_roundtrip(bits):
    payload = np.array(bits, dtype=np.int8)
    assert np.array_equal(repetition_decode(repetition_encode(payload)), payload)


def test_repetition_majority_fixes_one_flip():
    payload = np.array([1, 0, 1], dtype=np.int8)
    coded = repetition_encode(payload, 3)
    coded[1] ^= 1  # one of the three copies of bit 0
    assert np.array_equal(repetition_decode(coded, 3), payload)


def test_interleaver_roundtrip():
    rng = make_rng(1)
    bits = rng.integers(0, 2, size=97).astype(np.int8)
    interleaved, n = block_interleave(bits, depth=8)
    assert np.array_equal(block_deinterleave(interleaved, 8, n), bits)


def test_interleaver_breaks_bursts():
    bits = np.zeros(64, dtype=np.int8)
    interleaved, n = block_interleave(bits, depth=8)
    # A burst of 4 in the interleaved domain lands on 4 separated
    # positions after deinterleaving.
    burst = interleaved.copy()
    burst[10:14] = 1
    recovered = block_deinterleave(burst, 8, n)
    positions = np.flatnonzero(recovered)
    assert len(positions) >= 3
    assert np.min(np.diff(positions)) >= 4


def test_coded_ber_improves_and_orders():
    p = 0.01
    assert hamming74_coded_ber(p) < p
    assert repetition_coded_ber(p, 3) < p
    # Repetition-3 beats Hamming at this operating point but costs rate.
    assert repetition_coded_ber(p, 3) < hamming74_coded_ber(p)


def test_coded_ber_limits():
    assert hamming74_coded_ber(0.0) == 0.0
    assert repetition_coded_ber(0.0) == 0.0
    assert 0.4 < repetition_coded_ber(0.5) < 0.6
