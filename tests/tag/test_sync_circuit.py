"""Analog sync-circuit tests (envelope detector + comparator)."""

import numpy as np
import pytest

from repro.lte import CellConfig, LteTransmitter
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.tag.envelope import EnvelopeDetector
from repro.tag.sync_circuit import SyncCircuit
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def capture():
    return LteTransmitter(1.4, rng=0).transmit(8)


def test_envelope_is_nonnegative(capture):
    detector = EnvelopeDetector(capture.params.sample_rate_hz)
    trace = detector.detect(capture.samples)
    assert np.all(trace.envelope >= 0)


def test_envelope_peaks_at_sync_symbols(capture):
    params = capture.params
    detector = EnvelopeDetector(params.sample_rate_hz)
    trace = detector.detect(capture.samples)
    # After the first frame, the envelope during the PSS should exceed
    # the frame-wide average thanks to the sync power boost.
    frame = params.samples_per_frame
    pss_start = frame + params.symbol_start(0, 6)
    pss_level = trace.envelope[pss_start + 40 : pss_start + params.symbol_length(6)].mean()
    baseline = trace.envelope[frame : frame + params.samples_per_slot].mean()
    assert pss_level > 1.3 * baseline


def test_edges_appear_every_5ms(capture):
    params = capture.params
    rng = make_rng(1)
    noisy = awgn(capture.samples, 25.0, rng)
    circuit = SyncCircuit(params.sample_rate_hz, rng=rng)
    result = circuit.process(noisy)
    spacing = np.diff(result.edge_times)
    assert len(result.edges) >= 10
    assert np.allclose(spacing, 5e-3, atol=2e-4)


def test_errors_match_paper_band(capture):
    params = capture.params
    rng = make_rng(2)
    noisy = awgn(capture.samples, 25.0, rng)
    circuit = SyncCircuit(params.sample_rate_hz, rng=rng)
    result = circuit.process(noisy)
    sync_start = params.symbol_start(0, SSS_SYMBOL_IN_SLOT) / params.sample_rate_hz
    true_times = sync_start + 5e-3 * np.arange(16)
    errors = result.errors_vs(true_times, tolerance_seconds=2e-4) * 1e6
    assert len(errors) >= 10
    # Paper Fig. 31: errors are tens of microseconds, positive (delay).
    assert 15.0 < np.mean(errors) < 55.0
    assert np.std(errors) < 12.0


def test_warmup_suppresses_startup_edges(capture):
    params = capture.params
    circuit = SyncCircuit(params.sample_rate_hz, rng=0, warmup_seconds=12e-3)
    result = circuit.process(capture.samples)
    assert np.all(result.edges >= int(12e-3 * params.sample_rate_hz))


def test_comparator_delay_shifts_edges(capture):
    params = capture.params
    fast = SyncCircuit(
        params.sample_rate_hz, rng=0, propagation_delay_seconds=0.0, jitter_seconds=0.0
    ).process(capture.samples)
    slow = SyncCircuit(
        params.sample_rate_hz, rng=0, propagation_delay_seconds=50e-6, jitter_seconds=0.0
    ).process(capture.samples)
    n = min(len(fast.edges), len(slow.edges))
    delta = (slow.edges[:n] - fast.edges[:n]) / params.sample_rate_hz
    assert np.allclose(delta, 50e-6, atol=2e-6)


def test_no_edges_in_pure_noise():
    rng = make_rng(3)
    fs = 1.92e6
    noise = (rng.standard_normal(80_000) + 1j * rng.standard_normal(80_000)) * 1e-6
    result = SyncCircuit(fs, rng=rng).process(noise)
    # Flat noise never exceeds 1.6x its own average for long.
    assert len(result.edges) <= 2


def _buried_boost_signal(fs, duration_s=0.04, floor=1.0, boost=1.35):
    """Constant-envelope carrier with a PSS-cadence boost too weak for the
    default 1.6x margin but clear of the relaxed 1.2x one."""
    n = int(duration_s * fs)
    amplitude = np.full(n, floor)
    period = int(5e-3 * fs)
    width = int(0.5e-3 * fs)
    for start in range(0, n, period):
        amplitude[start : start + width] = boost
    return amplitude.astype(complex)


def test_resync_budget_zero_is_bit_identical(capture):
    """A clean capture must not notice the adaptive-resync machinery."""
    params = capture.params
    noisy = awgn(capture.samples, 25.0, make_rng(4))
    legacy = SyncCircuit(params.sample_rate_hz, rng=0).process(noisy)
    adaptive = SyncCircuit(
        params.sample_rate_hz, rng=0, max_resync_attempts=3
    ).process(noisy)
    np.testing.assert_array_equal(legacy.edges, adaptive.edges)
    np.testing.assert_array_equal(legacy.comparator, adaptive.comparator)
    assert adaptive.resync_attempts == 0
    assert adaptive.threshold_margin == legacy.threshold_margin


def test_resync_recovers_buried_boost():
    """Margin backoff finds edges the first pass misses."""
    fs = 1.92e6
    signal = _buried_boost_signal(fs)
    single = SyncCircuit(fs, rng=0, jitter_seconds=0.0).process(signal)
    assert len(single.edges) == 0
    assert single.resync_attempts == 0

    adaptive = SyncCircuit(
        fs, rng=0, jitter_seconds=0.0, max_resync_attempts=3
    ).process(signal)
    assert len(adaptive.edges) >= 3
    assert 1 <= adaptive.resync_attempts <= 3
    assert adaptive.threshold_margin < 1.6
    # Recovered edges keep the 5 ms PSS cadence.
    spacing = np.diff(adaptive.edge_times)
    assert np.allclose(spacing, 5e-3, atol=3e-4)


def test_resync_backoff_is_bounded_at_margin_floor():
    """With nothing to find, the margin walks down and stops at the floor
    instead of burning the whole budget."""
    from repro.tag.sync_circuit import MIN_THRESHOLD_MARGIN

    fs = 1.92e6
    silence = np.zeros(40_000, dtype=complex)
    result = SyncCircuit(fs, rng=0, max_resync_attempts=10).process(silence)
    assert len(result.edges) == 0
    # 1.6 -> 1.2 -> floor: two attempts, then the floor short-circuits.
    assert result.resync_attempts == 2
    assert result.threshold_margin == MIN_THRESHOLD_MARGIN


def test_negative_resync_budget_rejected():
    from repro.core.config import SystemConfig

    with pytest.raises(ValueError, match="sync_resync_attempts"):
        SystemConfig(bandwidth_mhz=1.4, sync_resync_attempts=-1)
