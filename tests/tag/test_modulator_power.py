"""Chip modulator and power-model tests."""

import numpy as np
import pytest

from repro.tag.modulator import ChipModulator, square_wave_harmonics
from repro.tag.power import CLOCK_POWER_W, PowerBreakdown, TagPowerModel
from repro.utils.rng import make_rng


def test_reflect_is_elementwise_phase_flip():
    rng = make_rng(0)
    ambient = rng.standard_normal(100) + 1j * rng.standard_normal(100)
    chips = np.where(rng.random(100) < 0.5, -1, 1).astype(np.int8)
    hybrid = ChipModulator().reflect(ambient, chips)
    assert np.allclose(hybrid, ambient * chips)


def test_reflect_preserves_power():
    rng = make_rng(1)
    ambient = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
    chips = np.ones(1000, dtype=np.int8)
    chips[::2] = -1
    hybrid = ChipModulator().reflect(ambient, chips)
    assert np.mean(np.abs(hybrid) ** 2) == pytest.approx(
        np.mean(np.abs(ambient) ** 2)
    )


def test_reflect_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        ChipModulator().reflect(np.zeros(5, complex), np.ones(4, np.int8))


def test_harmonics_square_wave():
    orders, amplitudes = square_wave_harmonics(9)
    assert amplitudes[0] == pytest.approx(4 / np.pi)
    assert amplitudes[1] == 0.0  # even harmonics absent
    assert amplitudes[2] == pytest.approx(4 / (3 * np.pi))


def test_multi_level_cancels_third_and_fifth():
    _, amplitudes = square_wave_harmonics(9, multi_level=True)
    assert amplitudes[2] == 0.0
    assert amplitudes[4] == 0.0
    assert amplitudes[6] > 0.0  # 7th remains


def test_leakage_reduced_by_multi_level():
    plain = ChipModulator(multi_level=False)
    cancelled = ChipModulator(multi_level=True)
    assert cancelled.out_of_band_leakage() < 0.3 * plain.out_of_band_leakage()


def test_fundamental_power_fraction():
    profile = ChipModulator().harmonic_profile()
    # (2/pi)^2 ~ -3.9 dB: the conversion loss the link budget charges.
    assert profile[1] == pytest.approx((2 / np.pi) ** 2)


def test_power_anchors_from_datasheets():
    model = TagPowerModel("cots")
    bd14 = model.breakdown(1.4)
    assert bd14.sync_w == pytest.approx(10e-6)
    assert bd14.clock_w == pytest.approx(588e-6)
    bd20 = model.breakdown(20.0)
    assert bd20.rf_front_w == pytest.approx(57e-6)
    assert bd20.clock_w == pytest.approx(4.5e-3)
    assert bd20.baseband_w == pytest.approx(82e-6)


def test_rf_switch_power_linear_in_bandwidth():
    model = TagPowerModel()
    assert model.breakdown(10.0).rf_front_w == pytest.approx(
        model.breakdown(20.0).rf_front_w / 2
    )


def test_ring_oscillator_cheaper():
    cots = TagPowerModel("cots").breakdown(20.0).total_w
    ring = TagPowerModel("ring").breakdown(20.0).total_w
    assert ring < cots / 10


def test_total_is_component_sum():
    bd = PowerBreakdown(sync_w=1e-6, rf_front_w=2e-6, baseband_w=3e-6, clock_w=4e-6)
    assert bd.total_w == pytest.approx(10e-6)
    assert bd.total_uw == pytest.approx(10.0)


def test_unknown_clock_technology_rejected():
    with pytest.raises(ValueError):
        TagPowerModel("quartz-magic")
