"""Heavy integration tests across the full stack."""

import numpy as np
import pytest

from repro.core import LScatterLinkModel, LScatterSystem, SystemConfig
from repro.channel.link import LinkBudget


def test_20mhz_headline_throughput():
    """The paper's flagship configuration, IQ end to end."""
    config = SystemConfig(
        bandwidth_mhz=20.0,
        n_frames=1,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
        reference_mode="decoded",
    )
    report = LScatterSystem(config, rng=11).run(payload_length=500_000)
    assert report.ber < 1e-3
    assert report.throughput_bps == pytest.approx(13.92e6, rel=0.02)
    assert report.lte_block_error_rate == 0.0


def test_20mhz_circuit_sync_end_to_end():
    """Analog sync circuit driving the flagship configuration."""
    config = SystemConfig(
        bandwidth_mhz=20.0,
        n_frames=3,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
        sync_mode="circuit",
        reference_mode="genie",
    )
    report = LScatterSystem(config, rng=12).run(payload_length=500_000)
    assert abs(report.sync_error_us) < 14.0  # inside the 27.6 us guard
    assert report.ber < 2e-3


def test_link_model_tracks_iq_simulation():
    """The closed-form model must agree with the sample-level truth."""
    budget = LinkBudget(venue="shopping_mall")
    model = LScatterLinkModel(1.4, budget)
    for d2, seeds in ((20, (1, 2, 3)), (100, (4, 5, 6))):
        iq_bers = []
        for seed in seeds:
            config = SystemConfig(
                bandwidth_mhz=1.4,
                venue="shopping_mall",
                n_frames=2,
                enb_to_tag_ft=5.0,
                tag_to_ue_ft=float(d2),
                reference_mode="genie",
            )
            report = LScatterSystem(config, rng=seed).run(payload_length=100_000)
            iq_bers.append(report.ber)
        iq = float(np.mean(iq_bers))
        predicted = model.ber(5.0, d2)
        # Same order of magnitude (fading realisations spread the IQ BER).
        assert predicted / 5 < max(iq, 1e-5) < predicted * 8, (d2, iq, predicted)


def test_coded_payload_through_iq_chain():
    """Hamming-coded payload over the IQ link decodes bit-exact."""
    from repro.tag.coding import (
        block_deinterleave,
        block_interleave,
        hamming74_decode,
        hamming74_encode,
    )
    from repro.core.metrics import align_windows

    payload = np.random.default_rng(0).integers(0, 2, size=4000).astype(np.int8)
    coded, n = hamming74_encode(payload)
    interleaved, m = block_interleave(coded, depth=12)

    config = SystemConfig(
        bandwidth_mhz=1.4,
        venue="shopping_mall",
        n_frames=2,
        enb_to_tag_ft=5.0,
        tag_to_ue_ft=60.0,
        reference_mode="genie",
    )
    system = LScatterSystem(config, rng=13)
    report = system.run(payload_bits=interleaved, artifacts=True)
    artifacts = report.extras["artifacts"]

    # Reassemble the received chip stream in schedule order.
    pairs = align_windows(
        artifacts.schedule.windows, artifacts.demod.starts, 64
    )
    received = []
    for s_index, d_index in pairs:
        if d_index is None:
            received.append(artifacts.schedule.windows[s_index].bits * 0)
        else:
            received.append(artifacts.demod.window_bits[d_index])
    stream = np.concatenate(received)[: len(interleaved)]

    deinterleaved = block_deinterleave(stream, 12, m)
    decoded = hamming74_decode(deinterleaved[: len(coded)], n)
    errors = int(np.sum(decoded != payload))
    # The raw stream has ~1e-3 BER here; the code must clean it up.
    assert errors <= 2


def test_wifi_backscatter_iq_through_channel():
    """FreeRider IQ baseline survives a realistic WiFi channel."""
    from repro.baselines import FreeRiderReceiver, FreeRiderTag
    from repro.channel.fading import FadingChannel
    from repro.utils.dsp import awgn
    from repro.utils.rng import make_rng
    from repro.wifi import WifiTransmitter

    rng = make_rng(14)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=300)
    bits = rng.integers(0, 2, size=12).astype(np.int8)
    hybrid, used = FreeRiderTag().modulate(packet.samples, bits)
    channel = FadingChannel.rician(k_db=12.0, n_taps=2, rng=rng)
    received = awgn(channel.apply(hybrid), 15.0, rng)
    reference = channel.apply(packet.samples)
    recovered = FreeRiderReceiver().demodulate(received, reference, used)
    assert np.array_equal(recovered, bits[:used])


def test_all_bandwidths_round_numbers():
    """Throughput scales exactly with the subcarrier count at IQ level."""
    rates = {}
    for bw in (1.4, 5.0):
        config = SystemConfig(
            bandwidth_mhz=bw, n_frames=1, reference_mode="genie"
        )
        report = LScatterSystem(config, rng=15).run(payload_length=500_000)
        rates[bw] = report.throughput_bps
    assert rates[5.0] / rates[1.4] == pytest.approx(300 / 72, rel=0.01)
