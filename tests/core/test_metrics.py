"""Link-metric tests."""

import numpy as np
import pytest

from repro.core.metrics import LinkReport, align_windows, measure_ber
from repro.tag.controller import ChipSchedule, ChipWindow


def _window(start, bits, kind="data"):
    bits = np.asarray(bits, dtype=np.int8)
    return ChipWindow(start=start, n_chips=len(bits), kind=kind, bits=bits)


class _FakeDemod:
    def __init__(self, starts, window_bits):
        self.starts = np.asarray(starts, dtype=np.int64)
        self.window_bits = [np.asarray(b, dtype=np.int8) for b in window_bits]


def test_report_ber_and_throughput():
    report = LinkReport(n_bits=1000, n_errors=10, duration_seconds=0.001)
    assert report.ber == pytest.approx(0.01)
    assert report.throughput_bps == pytest.approx(990_000)


def test_report_empty():
    report = LinkReport(n_bits=0, n_errors=0, duration_seconds=0.0)
    assert np.isnan(report.ber)
    assert report.throughput_bps == 0.0


def test_align_exact_positions():
    schedule = [_window(100, [1, 0]), _window(200, [0, 1])]
    pairs = align_windows(schedule, [100, 200], tolerance=5)
    assert pairs == [(0, 0), (1, 1)]


def test_align_skips_preambles():
    schedule = [_window(50, [1], kind="preamble"), _window(100, [1, 0])]
    pairs = align_windows(schedule, [100], tolerance=5)
    assert pairs == [(1, 0)]


def test_align_tolerance_exceeded_is_lost():
    schedule = [_window(100, [1, 0])]
    pairs = align_windows(schedule, [200], tolerance=5)
    assert pairs == [(0, None)]


def test_align_empty_demod_starts_loses_every_window():
    schedule = [_window(100, [1, 0]), _window(200, [0, 1])]
    pairs = align_windows(schedule, [], tolerance=5)
    assert pairs == [(0, None), (1, None)]


def test_align_empty_schedule_returns_no_pairs():
    assert align_windows([], [100, 200], tolerance=5) == []


def test_align_exact_tolerance_boundary_matches():
    schedule = [_window(100, [1, 0])]
    # A delta of exactly `tolerance` is inclusive...
    assert align_windows(schedule, [105], tolerance=5) == [(0, 0)]
    assert align_windows(schedule, [95], tolerance=5) == [(0, 0)]
    # ...one sample past it is lost.
    assert align_windows(schedule, [106], tolerance=5) == [(0, None)]


def test_align_picks_nearest_candidate():
    schedule = [_window(100, [1, 0])]
    pairs = align_windows(schedule, [90, 99, 130], tolerance=5)
    assert pairs == [(0, 1)]


def test_align_one_to_one_no_duplicate_demod_claim():
    """Regression: two schedule windows must not share one demod window.

    The old per-window argmin let the single demod window at 103 satisfy
    both schedule windows, silently masking that one window was lost.
    """
    schedule = [_window(100, [1, 0]), _window(104, [0, 1])]
    pairs = align_windows(schedule, [103, 180], tolerance=5)
    assert pairs == [(0, None), (1, 0)]


def test_align_one_to_one_prefers_globally_nearest():
    # Window 104 is nearer to demod 103 (delta 1) than window 100
    # (delta 3), so it wins the contested demod window.
    schedule = [_window(100, [1, 0]), _window(104, [0, 1]), _window(200, [1, 1])]
    pairs = align_windows(schedule, [103, 201], tolerance=5)
    assert pairs == [(0, None), (1, 0), (2, 1)]


def test_align_contention_resolves_to_distinct_windows():
    # Both schedule windows are within tolerance of both demod windows;
    # one-to-one matching must hand each its own (nearest available).
    schedule = [_window(100, [1]), _window(102, [0])]
    pairs = align_windows(schedule, [101, 103], tolerance=5)
    assert pairs == [(0, 0), (1, 1)]


def test_measure_ber_counts_errors():
    schedule = ChipSchedule(
        chips=np.ones(1, np.int8),
        windows=[_window(10, [1, 0, 1, 0]), _window(20, [1, 1, 1, 1])],
    )
    demod = _FakeDemod([10, 20], [[1, 0, 0, 0], [1, 1, 1, 1]])
    n_bits, n_errors, n_windows, n_lost = measure_ber(schedule, demod, 3)
    assert (n_bits, n_errors, n_windows, n_lost) == (8, 1, 2, 0)


def test_measure_ber_lost_window_fully_errored():
    schedule = ChipSchedule(
        chips=np.ones(1, np.int8), windows=[_window(10, [1, 0, 1])]
    )
    demod = _FakeDemod([500], [[1, 0, 1]])
    n_bits, n_errors, n_windows, n_lost = measure_ber(schedule, demod, 3)
    assert (n_bits, n_errors, n_lost) == (3, 3, 1)


def test_measure_ber_length_mismatch_is_lost():
    schedule = ChipSchedule(
        chips=np.ones(1, np.int8), windows=[_window(10, [1, 0, 1])]
    )
    demod = _FakeDemod([10], [[1, 0]])
    _, n_errors, _, n_lost = measure_ber(schedule, demod, 3)
    assert (n_errors, n_lost) == (3, 1)


def test_measure_ber_mismatched_window_counts_all_bits_lost():
    # A longer-than-sent demod window is just as lost as a shorter one:
    # every sent bit counts as errored, not only the overlap.
    schedule = ChipSchedule(
        chips=np.ones(1, np.int8),
        windows=[_window(10, [1, 0, 1, 0]), _window(20, [1, 1])],
    )
    demod = _FakeDemod([10, 20], [[1, 0, 1, 0, 1, 1], [1, 1]])
    n_bits, n_errors, n_windows, n_lost = measure_ber(schedule, demod, 3)
    assert (n_bits, n_errors, n_windows, n_lost) == (6, 4, 2, 1)


def test_measure_ber_duplicate_demod_window_counts_lost():
    """Lost-window accounting must not be masked by a shared demod window.

    Two sent windows but only one demodulated: the old alignment matched
    both against it (zero lost, half the errors), undercounting.
    """
    schedule = ChipSchedule(
        chips=np.ones(1, np.int8),
        windows=[_window(10, [1, 0, 1]), _window(14, [1, 0, 1])],
    )
    demod = _FakeDemod([13], [[1, 0, 1]])
    n_bits, n_errors, n_windows, n_lost = measure_ber(schedule, demod, 5)
    assert (n_bits, n_errors, n_windows, n_lost) == (6, 3, 2, 1)


def test_measure_ber_no_demod_windows_at_all():
    schedule = ChipSchedule(
        chips=np.ones(1, np.int8), windows=[_window(10, [1, 0, 1])]
    )
    demod = _FakeDemod([], [])
    n_bits, n_errors, n_windows, n_lost = measure_ber(schedule, demod, 3)
    assert (n_bits, n_errors, n_windows, n_lost) == (3, 3, 1, 1)
