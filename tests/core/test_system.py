"""End-to-end IQ system tests."""

import numpy as np
import pytest

from repro.core import LScatterSystem, SystemConfig


def _run(seed=1, **kwargs):
    defaults = dict(
        bandwidth_mhz=1.4,
        n_frames=2,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
        reference_mode="genie",
    )
    defaults.update(kwargs)
    config = SystemConfig(**defaults)
    return LScatterSystem(config, rng=seed).run(payload_length=50_000)


def test_close_range_low_ber():
    report = _run()
    assert report.ber < 2e-3
    assert report.n_lost_windows == 0


def test_throughput_matches_rate_model():
    from repro.core.link_budget import LScatterLinkModel

    report = _run()
    model_rate = LScatterLinkModel(1.4).raw_bit_rate_bps
    assert report.throughput_bps == pytest.approx(model_rate, rel=0.02)


def test_decoded_reference_matches_genie():
    genie = _run(seed=3, reference_mode="genie")
    decoded = _run(seed=3, reference_mode="decoded")
    # With clean LTE decode, the reconstruction is exact and results match.
    assert decoded.ber == pytest.approx(genie.ber, abs=5e-4)
    assert decoded.lte_block_error_rate == 0.0


def test_sync_error_within_guard_is_harmless():
    aligned = _run(seed=4, sync_error_samples=0)
    shifted = _run(seed=4, sync_error_samples=15)
    assert shifted.ber < aligned.ber + 1e-3


def test_distance_degrades_link():
    near = _run(seed=5, venue="shopping_mall", enb_to_tag_ft=5, tag_to_ue_ft=5)
    far = _run(seed=5, venue="shopping_mall", enb_to_tag_ft=5, tag_to_ue_ft=120)
    assert far.ber > near.ber


def test_explicit_payload_bits_used():
    config = SystemConfig(
        bandwidth_mhz=1.4, n_frames=1, reference_mode="genie"
    )
    system = LScatterSystem(config, rng=6)
    payload = np.ones(500, dtype=np.int8)
    report = system.run(payload_bits=payload, artifacts=True)
    schedule = report.extras["artifacts"].schedule
    assert np.array_equal(schedule.payload_bits, payload)


def test_lte_unaffected_by_tag():
    report = _run(seed=7, reference_mode="decoded")
    assert report.lte_block_error_rate == 0.0


def test_circuit_sync_mode_works():
    report = _run(seed=8, n_frames=6, sync_mode="circuit")
    assert abs(report.sync_error_us) < 10.0
    assert report.ber < 5e-3


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        SystemConfig(sync_mode="psychic")
    with pytest.raises(ValueError):
        SystemConfig(reference_mode="oracle")


def test_artifacts_present_when_requested():
    config = SystemConfig(bandwidth_mhz=1.4, n_frames=1, reference_mode="genie")
    report = LScatterSystem(config, rng=9).run(payload_length=100, artifacts=True)
    artifacts = report.extras["artifacts"]
    assert artifacts.capture is not None
    assert artifacts.demod.n_data_windows > 0
