"""End-to-end system edge cases and degraded regimes."""

import numpy as np
import pytest

from repro.core import LScatterSystem, SystemConfig


def test_zero_payload_idles_cleanly():
    config = SystemConfig(bandwidth_mhz=1.4, n_frames=1, reference_mode="genie")
    report = LScatterSystem(config, rng=0).run(
        payload_bits=np.zeros(0, dtype=np.int8)
    )
    # All windows idle at '1' and still demodulate.
    assert report.n_bits > 0
    assert report.ber < 1e-3


def test_single_frame_minimum():
    config = SystemConfig(bandwidth_mhz=1.4, n_frames=1, reference_mode="genie")
    report = LScatterSystem(config, rng=1).run(payload_length=100)
    # 58 data windows per half-frame; a positive sync error pushes the
    # second half past the capture edge, so either one or two halves run.
    assert report.n_windows in (58, 116)
    assert report.throughput_bps == pytest.approx(0.8352e6, rel=0.02)


def test_noise_free_mode():
    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=1,
        add_noise=False,
        multipath=False,
        reference_mode="genie",
    )
    report = LScatterSystem(config, rng=2).run(payload_length=10_000)
    assert report.ber < 5e-4


def test_far_link_degrades_not_crashes():
    config = SystemConfig(
        bandwidth_mhz=1.4,
        venue="shopping_mall",
        n_frames=1,
        enb_to_tag_ft=5.0,
        tag_to_ue_ft=500.0,
        reference_mode="genie",
    )
    report = LScatterSystem(config, rng=3).run(payload_length=10_000)
    assert 0.0 <= report.ber <= 0.6


def test_sync_error_beyond_guard_collapses():
    guard = (128 - 72) // 2
    inside = LScatterSystem(
        SystemConfig(
            bandwidth_mhz=1.4,
            n_frames=1,
            reference_mode="genie",
            sync_error_samples=0,
        ),
        rng=4,
    ).run(payload_length=50_000)
    outside = LScatterSystem(
        SystemConfig(
            bandwidth_mhz=1.4,
            n_frames=1,
            reference_mode="genie",
            sync_error_samples=2 * guard,
        ),
        rng=4,
    ).run(payload_length=50_000)
    assert outside.ber > 20 * max(inside.ber, 1e-4)


def test_default_enb_to_ue_distance_derived():
    config = SystemConfig(enb_to_tag_ft=7.0, tag_to_ue_ft=5.0)
    assert config.enb_to_ue_ft == 12.0


def test_venue_presets_accepted():
    for venue in ("smart_home", "smart_home_nlos", "shopping_mall", "outdoor"):
        config = SystemConfig(bandwidth_mhz=1.4, venue=venue, n_frames=1,
                              reference_mode="genie")
        report = LScatterSystem(config, rng=5).run(payload_length=1000)
        assert report.n_bits > 0


def test_structural_reflection_off():
    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=1,
        reference_mode="decoded",
        structural_reflection_db=-200.0,
    )
    report = LScatterSystem(config, rng=6).run(payload_length=1000)
    assert report.lte_block_error_rate == 0.0
