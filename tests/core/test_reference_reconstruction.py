"""Reference reconstruction must stay sample-aligned with the capture."""

import numpy as np

from repro.core import LScatterSystem, SystemConfig
from repro.lte.receiver import LteDecodeResult, SubframeResult


def _make_system(n_frames=3):
    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=n_frames,
        reference_mode="decoded",
        add_noise=False,
        multipath=False,
    )
    return LScatterSystem(config, rng=0)


def _decoded_subframes(capture, frame_numbers):
    """Perfect decode results (true payloads) for the given frames."""
    subframes = []
    for f in frame_numbers:
        for tb in capture.frames[f].transport_blocks:
            subframes.append(
                SubframeResult(
                    frame=f,
                    subframe=tb.subframe,
                    crc_ok=True,
                    payload_bits=len(tb.payload_bits),
                    decoded=tb.payload_bits,
                )
            )
    return subframes


def test_missing_frame_keeps_reference_sample_aligned():
    """Regression: a frame absent from the decode result was skipped
    outright, shortening the reference and misaligning every later frame.
    """
    system = _make_system()
    capture = system.prepare_ambient(rng=0).capture
    n = system.params.samples_per_frame
    # Frames 0 and 2 decode perfectly; frame 1 is absent entirely.
    lte_result = LteDecodeResult(
        subframes=_decoded_subframes(capture, (0, 2)), duration_seconds=0.03
    )
    direct_rx = 0.5 * capture.samples
    reference = system._reconstruct_reference(direct_rx, capture, lte_result)

    assert len(reference) == len(capture.samples)
    # Decoded frames re-synthesise the transmitted samples exactly, and —
    # critically — frame 2 lands at frame 2's sample offset.
    assert np.array_equal(reference[:n], capture.samples[:n])
    assert np.array_equal(reference[2 * n :], capture.samples[2 * n :])
    # The missing frame falls back to the received chunk, rescaled to the
    # transmitted reference power.
    chunk = reference[n : 2 * n]
    ref_power = np.mean(np.abs(capture.samples[:n]) ** 2)
    np.testing.assert_allclose(np.mean(np.abs(chunk) ** 2), ref_power, rtol=1e-9)


def test_crc_failed_frame_uses_scaled_received_chunk():
    system = _make_system(n_frames=2)
    capture = system.prepare_ambient(rng=0).capture
    n = system.params.samples_per_frame
    subframes = _decoded_subframes(capture, (0, 1))
    # One CRC failure in frame 1 poisons that frame's rebuild.
    subframes[-1].crc_ok = False
    lte_result = LteDecodeResult(subframes=subframes, duration_seconds=0.02)
    direct_rx = 0.25 * capture.samples
    reference = system._reconstruct_reference(direct_rx, capture, lte_result)

    assert len(reference) == len(capture.samples)
    assert np.array_equal(reference[:n], capture.samples[:n])
    # Frame 1: scaled received chunk (collinear with the capture, not equal).
    chunk = reference[n:]
    assert not np.array_equal(chunk, capture.samples[n:])
    np.testing.assert_allclose(
        np.mean(np.abs(chunk) ** 2),
        np.mean(np.abs(capture.samples[:n]) ** 2),
        rtol=1e-9,
    )


def test_genie_mode_returns_transmitted_samples():
    system = _make_system(n_frames=1)
    system.config.reference_mode = "genie"
    capture = system.prepare_ambient(rng=0).capture
    reference = system._reconstruct_reference(capture.samples, capture, None)
    assert reference is capture.samples
