"""Closed-form LScatter link-model tests (the calibrated anchors)."""

import numpy as np
import pytest

from repro.channel.link import LinkBudget
from repro.core.link_budget import (
    LScatterLinkModel,
    data_symbols_per_frame,
    rayleigh_bpsk_ber,
)


def test_schedule_symbol_count():
    # 58 data symbols per half-frame -> 116 per 10 ms frame.
    assert data_symbols_per_frame() == 116


def test_raw_rate_matches_paper_headline():
    # 20 MHz: 116 x 1200 chips per 10 ms = 13.92 Mbps (paper: 13.63).
    model = LScatterLinkModel(20.0)
    assert model.raw_bit_rate_bps == pytest.approx(13.92e6)
    # 1.4 MHz: ~0.84 Mbps (paper: ~800 kbps at 1.4 MHz).
    assert LScatterLinkModel(1.4).raw_bit_rate_bps == pytest.approx(0.8352e6)


def test_rate_proportional_to_bandwidth():
    rates = [LScatterLinkModel(bw).raw_bit_rate_bps for bw in (1.4, 5.0, 20.0)]
    assert rates[1] / rates[0] == pytest.approx(300 / 72)
    assert rates[2] / rates[1] == pytest.approx(4.0)


def test_rayleigh_ber_limits():
    assert rayleigh_bpsk_ber(0.0) == pytest.approx(0.5)
    assert rayleigh_bpsk_ber(1e6) < 1e-6
    # High-SNR asymptote 1/(4 g).
    assert rayleigh_bpsk_ber(1000.0) == pytest.approx(1 / 4000, rel=0.01)


def test_ber_monotone_in_distance():
    model = LScatterLinkModel(20.0, LinkBudget(venue="shopping_mall"))
    bers = [model.ber(5, d) for d in (10, 50, 100, 150, 200)]
    assert all(b2 >= b1 for b1, b2 in zip(bers, bers[1:]))


def test_mall_anchors():
    """Paper Fig. 24: BER < ~0.1% within 40 ft, < ~1% within 150 ft."""
    model = LScatterLinkModel(20.0, LinkBudget(venue="shopping_mall"))
    assert model.ber(5, 40) < 2e-3
    assert model.ber(5, 150) < 2e-2
    assert model.ber(5, 40) < model.ber(5, 150)


def test_nlos_increases_ber():
    model = LScatterLinkModel(20.0, LinkBudget(venue="smart_home"))
    assert model.ber(3, 3, nlos=True) > model.ber(3, 3, nlos=False)


def test_throughput_close_range_near_raw_rate():
    model = LScatterLinkModel(20.0, LinkBudget(venue="smart_home"))
    prediction = model.predict(3, 3)
    assert prediction.throughput_bps > 0.98 * model.raw_bit_rate_bps


def test_sync_availability_collapses_with_enb_distance():
    model = LScatterLinkModel(20.0, LinkBudget(venue="smart_home"))
    near = model.sync_availability(5)
    far = model.sync_availability(25)
    assert near > 0.95
    assert far < 0.5


def test_fig30_shape_monotone_decreasing():
    model = LScatterLinkModel(
        20.0, LinkBudget(venue="outdoor_street", tx_power_dbm=40.0)
    )
    ranges = [model.max_range_ft(d1, ber_target=3e-3) for d1 in (2, 8, 24, 40)]
    assert all(r2 < r1 for r1, r2 in zip(ranges, ranges[1:]))
    # Paper anchors: ~320 ft at 2 ft, ~160 ft at 24 ft.
    assert ranges[0] == pytest.approx(320, rel=0.25)
    assert ranges[2] == pytest.approx(160, rel=0.25)


def test_higher_power_longer_range():
    low = LScatterLinkModel(20.0, LinkBudget(venue="outdoor", tx_power_dbm=10.0))
    high = LScatterLinkModel(20.0, LinkBudget(venue="outdoor", tx_power_dbm=40.0))
    assert high.max_range_ft(5) > low.max_range_ft(5)


def test_self_interference_floor_at_mid_distances():
    # With both hops at 25 ft indoors the un-equalised hop's scatter
    # dominates thermal noise.
    model = LScatterLinkModel(20.0, LinkBudget(venue="smart_home"))
    ber = model.ber(25, 25)
    assert ber > 0.01
