"""Report-generator tests."""

import pytest

from repro.analysis import HEAVY_EXPERIMENTS, build_report, write_report


def test_light_report_contains_fast_experiments():
    text = build_report(experiment_ids=["table1", "fig19", "power"])
    assert "# LScatter reproduction report" in text
    assert "LScatter" in text
    assert "| system |" in text  # table1 rendered as a markdown table


def test_heavy_experiments_skipped_by_default():
    text = build_report(experiment_ids=["fig31"])
    assert "skipped" in text


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        build_report(experiment_ids=["fig99"])


def test_write_report(tmp_path):
    path = tmp_path / "report.md"
    written = write_report(path, experiment_ids=["table1"])
    assert written == path
    assert path.read_text().startswith("# LScatter reproduction report")


def test_heavy_set_covers_only_registered_ids():
    from repro.experiments import REGISTRY

    assert set(HEAVY_EXPERIMENTS) <= set(REGISTRY)


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    assert main(["report", "--output", str(out)]) == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out
