"""Noise and link-budget tests."""

import numpy as np
import pytest

from repro.channel.link import BackscatterLink, DirectLink, LinkBudget
from repro.channel.noise import add_thermal_noise, noise_std_for_bandwidth
from repro.utils.rng import make_rng
from repro.utils.units import dbm_to_watts


def test_noise_std_matches_ktb():
    from repro.utils.units import thermal_noise_dbm

    std = noise_std_for_bandwidth(20e6, noise_figure_db=6.0)
    power_mw = 2 * std**2
    expected_mw = dbm_to_watts(thermal_noise_dbm(20e6, 6.0)) * 1e3
    assert power_mw == pytest.approx(expected_mw, rel=1e-6)


def test_add_thermal_noise_power():
    from repro.utils.units import thermal_noise_dbm

    rng = make_rng(0)
    silent = np.zeros(200_000, dtype=complex)
    noisy = add_thermal_noise(silent, 1e6, 0.0, rng)
    measured_mw = np.mean(np.abs(noisy) ** 2)
    expected_mw = dbm_to_watts(thermal_noise_dbm(1e6, 0.0)) * 1e3
    assert measured_mw == pytest.approx(expected_mw, rel=0.05)


def test_budget_cascade_composition():
    budget = LinkBudget(venue="free_space", system_gain_db=0.0, tag_loss_db=8.0)
    d1, d2 = 10.0, 20.0
    cascade = budget.backscatter_rx_dbm(d1, d2)
    loss1 = budget.pathloss.loss_db_feet(d1, budget.carrier_hz)
    loss2 = budget.pathloss.loss_db_feet(d2, budget.carrier_hz)
    assert cascade == pytest.approx(budget.tx_power_dbm - loss1 - loss2 - 8.0)


def test_backscatter_weaker_than_direct():
    budget = LinkBudget(venue="smart_home")
    assert budget.backscatter_rx_dbm(10, 10) < budget.direct_rx_dbm(20)


def test_snr_decreases_with_distance():
    budget = LinkBudget(venue="shopping_mall")
    near = budget.backscatter_snr_db(5, 10, 20e6)
    far = budget.backscatter_snr_db(5, 100, 20e6)
    assert near > far + 20


def test_unknown_venue_rejected():
    with pytest.raises(ValueError):
        LinkBudget(venue="moon")


def test_direct_link_scales_waveform():
    budget = LinkBudget(venue="free_space", system_gain_db=0.0)
    link = DirectLink(budget=budget, distance_ft=10.0)
    x = np.ones(1000, dtype=complex)
    out = link.apply(x)
    measured_dbm = 10 * np.log10(np.mean(np.abs(out) ** 2))
    assert measured_dbm == pytest.approx(budget.direct_rx_dbm(10.0), abs=0.01)


def test_backscatter_link_end_to_end_power():
    budget = LinkBudget(venue="free_space", system_gain_db=4.0)
    link = BackscatterLink(budget=budget, enb_to_tag_ft=5.0, tag_to_ue_ft=15.0)
    x = np.ones(1000, dtype=complex)
    at_tag = link.apply_to_tag(x)
    at_ue = link.apply_from_tag(at_tag)
    measured_dbm = 10 * np.log10(np.mean(np.abs(at_ue) ** 2))
    assert measured_dbm == pytest.approx(
        budget.backscatter_rx_dbm(5.0, 15.0), abs=0.01
    )


def test_tag_incident_power_uses_half_gain():
    budget = LinkBudget(venue="free_space", system_gain_db=10.0)
    link = BackscatterLink(budget=budget, enb_to_tag_ft=10.0, tag_to_ue_ft=10.0)
    loss = budget.pathloss.loss_db_feet(10.0, budget.carrier_hz)
    assert link.tag_rx_dbm() == pytest.approx(budget.tx_power_dbm - loss + 5.0)
