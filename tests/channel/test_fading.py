"""Fading-channel tests."""

import numpy as np
import pytest

from repro.channel.fading import (
    FadingChannel,
    scatter_fraction,
    tdl_taps,
    venue_k_factor_db,
)
from repro.utils.rng import make_rng


def test_taps_unit_mean_power():
    rng = make_rng(0)
    powers = [np.sum(np.abs(tdl_taps(4, 3.0, rng=rng)) ** 2) for _ in range(3000)]
    assert np.mean(powers) == pytest.approx(1.0, abs=0.05)


def test_rician_k_controls_scatter():
    rng = make_rng(1)
    k_db = 20.0
    taps = [tdl_taps(3, 3.0, rician_k_db=k_db, rng=rng) for _ in range(3000)]
    los = np.sqrt(10 ** (k_db / 10) / (10 ** (k_db / 10) + 1))
    scatter_power = np.mean(
        [np.sum(np.abs(t) ** 2) - 2 * los * t[0].real + los**2 for t in taps]
    )
    assert scatter_power == pytest.approx(scatter_fraction(k_db), rel=0.15)


def test_flat_channel_identity():
    channel = FadingChannel.flat()
    x = np.arange(10, dtype=complex)
    assert np.array_equal(channel.apply(x), x)


def test_apply_preserves_length():
    rng = make_rng(2)
    channel = FadingChannel.rayleigh(n_taps=5, rng=rng)
    x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
    assert len(channel.apply(x)) == 1000


def test_apply_is_fir_filtering():
    taps = np.array([1.0, 0.5j])
    channel = FadingChannel(taps=taps)
    x = np.array([1.0, 0.0, 0.0], dtype=complex)
    out = channel.apply(x)
    assert np.allclose(out, [1.0, 0.5j, 0.0])


def test_flat_gain_is_tap_sum():
    channel = FadingChannel(taps=np.array([0.6, 0.3 + 0.1j]))
    assert channel.flat_gain == pytest.approx(0.9 + 0.1j)


def test_need_at_least_one_tap():
    with pytest.raises(ValueError):
        tdl_taps(0, 3.0)


def test_k_factor_shrinks_with_distance():
    near = venue_k_factor_db("smart_home", 2.0)
    far = venue_k_factor_db("smart_home", 25.0)
    assert near > far


def test_k_factor_outdoor_higher_at_range():
    indoor = venue_k_factor_db("smart_home", 100.0)
    outdoor = venue_k_factor_db("outdoor", 100.0)
    assert outdoor > indoor


def test_outdoor_street_uses_outdoor_branch():
    assert venue_k_factor_db("outdoor_street", 50.0) == venue_k_factor_db(
        "outdoor", 50.0
    )


def test_nlos_penalty():
    los = venue_k_factor_db("smart_home", 5.0)
    nlos = venue_k_factor_db("smart_home", 5.0, nlos=True)
    assert los - nlos == pytest.approx(12.0)


def test_scatter_fraction_limits():
    assert scatter_fraction(30.0) < 0.001
    assert scatter_fraction(0.0) == pytest.approx(0.5)
