"""Path-loss model tests."""

import numpy as np
import pytest

from repro.channel.pathloss import (
    PathLossModel,
    VENUE_PRESETS,
    free_space_path_loss_db,
)
from repro.utils.rng import make_rng


def test_fspl_known_value():
    # FSPL at 1 m, 680 MHz: 20 log10(4 pi * 680e6 / c) ~ 29.1 dB.
    assert free_space_path_loss_db(1.0, 680e6) == pytest.approx(29.1, abs=0.1)


def test_fspl_frequency_scaling():
    low = free_space_path_loss_db(10.0, 680e6)
    high = free_space_path_loss_db(10.0, 2.4e9)
    assert high - low == pytest.approx(20 * np.log10(2.4e9 / 680e6), abs=1e-6)


def test_log_distance_exponent():
    model = PathLossModel(exponent=3.0)
    ten = model.loss_db(10.0, 1e9)
    hundred = model.loss_db(100.0, 1e9)
    assert hundred - ten == pytest.approx(30.0)


def test_extra_loss_added():
    base = PathLossModel(exponent=2.0)
    nlos = PathLossModel(exponent=2.0, extra_loss_db=5.0)
    assert nlos.loss_db(5.0, 1e9) - base.loss_db(5.0, 1e9) == pytest.approx(5.0)


def test_absorption_linear_in_distance():
    model = PathLossModel(exponent=2.0, absorption_db_per_m=0.5)
    base = PathLossModel(exponent=2.0)
    assert model.loss_db(40.0, 1e9) - base.loss_db(40.0, 1e9) == pytest.approx(20.0)


def test_shadowing_only_with_rng():
    model = PathLossModel(exponent=2.0, shadowing_db=4.0)
    deterministic = model.loss_db(10.0, 1e9)
    assert model.loss_db(10.0, 1e9) == deterministic  # no rng, no jitter
    rng = make_rng(0)
    draws = [model.loss_db(10.0, 1e9, rng) for _ in range(200)]
    assert np.std(draws) == pytest.approx(4.0, abs=0.6)


def test_minimum_distance_clamped():
    model = PathLossModel(exponent=2.0)
    assert model.loss_db(0.0, 1e9) == model.loss_db(0.1, 1e9)


def test_zero_distance_is_finite_everywhere():
    """d = 0 (tag at the cell site) must never produce -inf or NaN."""
    assert np.isfinite(free_space_path_loss_db(0.0, 680e6))
    assert free_space_path_loss_db(0.0, 680e6) == free_space_path_loss_db(
        0.1, 680e6
    )
    for model in VENUE_PRESETS.values():
        loss = model.loss_db(0.0, 680e6)
        assert np.isfinite(loss)
        assert loss == model.loss_db(0.05, 680e6)  # below-clamp is flat
        assert np.isfinite(model.loss_db_feet(0.0, 680e6))


def test_near_zero_distance_monotone_above_clamp():
    model = PathLossModel(exponent=2.6)
    # Below the 0.1 m clamp everything collapses to the clamp value ...
    assert model.loss_db(1e-9, 1e9) == model.loss_db(0.1, 1e9)
    # ... and immediately above it the loss grows monotonically again.
    assert model.loss_db(0.11, 1e9) > model.loss_db(0.1, 1e9)
    assert model.loss_db(0.2, 1e9) > model.loss_db(0.11, 1e9)


def test_zero_distance_vectorised_matches_scalar():
    model = PathLossModel(exponent=2.0)
    losses = model.loss_db(np.array([0.0, 0.05, 0.1, 1.0]), 1e9)
    assert losses.shape == (4,)
    assert np.all(np.isfinite(losses))
    assert losses[0] == losses[1] == losses[2] == model.loss_db(0.0, 1e9)
    assert losses[3] > losses[2]


def test_feet_wrapper():
    model = PathLossModel(exponent=2.0)
    assert model.loss_db_feet(10.0, 1e9) == pytest.approx(
        model.loss_db(3.048, 1e9)
    )


def test_presets_exist_and_ordered():
    assert set(VENUE_PRESETS) >= {
        "smart_home",
        "shopping_mall",
        "outdoor",
        "outdoor_street",
        "free_space",
    }
    # Indoor decays faster than outdoor.
    assert (
        VENUE_PRESETS["smart_home"].exponent
        > VENUE_PRESETS["outdoor"].exponent
    )
