"""NetworkRunner: validation, determinism, attach grouping, mobility."""

import pytest

from repro.cells import (
    HandoverPolicy,
    NetworkDeployment,
    NetworkRunner,
    NetworkTag,
    Topology,
    rank_cells,
)


def _tag_rows(report):
    """Every per-tag counter, in deterministic order — the equality probe."""
    rows = []
    for cell_id in sorted(report.cells):
        for t in report.cells[cell_id].tags:
            rows.append(
                (cell_id, t.name, t.n_bits, t.n_errors, t.n_windows,
                 t.n_lost_windows, t.n_erased_windows, t.owned_half_frames)
            )
    return rows


@pytest.fixture(scope="module")
def topo():
    return Topology.hex_cluster(inter_site_ft=120.0, rings=1, n_frames=1)


@pytest.fixture(scope="module")
def deployment(topo):
    return NetworkDeployment.scatter(5, topo, seed=2, margin_ft=30.0)


def test_tag_validation_messages():
    with pytest.raises(ValueError, match="finite"):
        NetworkTag("t", float("inf"), 0.0)
    with pytest.raises(ValueError, match="tag_to_ue_ft must be positive"):
        NetworkTag("t", 0.0, 0.0, tag_to_ue_ft=0.0)
    with pytest.raises(ValueError, match="waypoints=\\(\\)"):
        NetworkTag("t", 0.0, 0.0, waypoints=())
    with pytest.raises(ValueError, match="waypoint"):
        NetworkTag("t", 0.0, 0.0, waypoints=[(0.0, float("nan"))])


def test_deployment_rejects_duplicates_with_names():
    with pytest.raises(ValueError, match="duplicate tag name 'a'"):
        NetworkDeployment(tags=[NetworkTag("a", 0.0, 0.0), NetworkTag("a", 1.0, 0.0)])
    with pytest.raises(ValueError, match="'a' and 'b' are co-located"):
        NetworkDeployment(tags=[NetworkTag("a", 2.0, 3.0), NetworkTag("b", 2.0, 3.0)])


def test_scatter_is_deterministic(topo):
    a = NetworkDeployment.scatter(4, topo, seed=5)
    b = NetworkDeployment.scatter(4, topo, seed=5)
    c = NetworkDeployment.scatter(4, topo, seed=6)
    assert [(t.x_ft, t.y_ft) for t in a.tags] == [(t.x_ft, t.y_ft) for t in b.tags]
    assert [(t.x_ft, t.y_ft) for t in a.tags] != [(t.x_ft, t.y_ft) for t in c.tags]


def test_seven_cell_run_bit_identical_across_worker_counts(topo, deployment):
    """Acceptance: the hex-7 network reproduces exactly at any --workers."""
    with NetworkRunner(topo, deployment, seed=11, payload_length=4000) as r:
        serial = r.run()
    with NetworkRunner(
        topo, deployment, seed=11, payload_length=4000, workers=3
    ) as r:
        pooled = r.run()
    assert _tag_rows(serial) == _tag_rows(pooled)
    assert serial.aggregate_goodput_bps == pooled.aggregate_goodput_bps
    assert {c: r.collision_fraction for c, r in serial.cells.items()} == {
        c: r.collision_fraction for c, r in pooled.cells.items()
    }


def test_every_tag_lands_in_its_top_ranked_cell(topo, deployment):
    with NetworkRunner(topo, deployment, seed=11, payload_length=2000) as r:
        report = r.run()
    for tag in deployment.tags:
        decision = report.attachments[tag.name]
        assert decision.serving_cell_id == rank_cells(
            topo, tag.x_ft, tag.y_ft
        )[0].cell_id
    # Cohorts partition the fleet: every tag appears in exactly one cell.
    names = [row[1] for row in _tag_rows(report)]
    assert sorted(names) == sorted(deployment.names)


def test_mobile_tag_pays_resync_cost(topo):
    route = tuple((120.0 - 24.0 * i, 0.5) for i in range(11))
    static = NetworkDeployment(
        tags=[NetworkTag("walker", *route[0])]
    )
    mobile = NetworkDeployment(
        tags=[NetworkTag("walker", *route[0], waypoints=route)]
    )
    policy = HandoverPolicy(search_snr_db=80.0, resync_half_frames=1)
    with NetworkRunner(
        topo, static, seed=0, payload_length=2000, handover_policy=policy
    ) as r:
        baseline = r.run()
    with NetworkRunner(
        topo, mobile, seed=0, payload_length=2000, handover_policy=policy
    ) as r:
        moving = r.run()
    trace = moving.handovers["walker"]
    assert trace.n_handovers >= 1
    assert moving.mobility_factor["walker"] < 1.0
    # Same IQ outcome (same first waypoint), goodput scaled by re-sync.
    assert moving.tag("walker").n_bits == baseline.tag("walker").n_bits
    assert (
        moving.aggregate_goodput_bps
        == pytest.approx(
            baseline.aggregate_goodput_bps * moving.mobility_factor["walker"]
        )
    )


def test_report_summary_is_json_ready(topo, deployment):
    import json

    with NetworkRunner(topo, deployment, seed=11, payload_length=2000) as r:
        report = r.run()
    summary = json.loads(json.dumps(report.summary()))
    assert summary["n_cells"] == 7
    assert summary["n_tags"] == deployment.n_tags
    assert set(summary["attachments"]) == set(deployment.names)
    table = report.format_table()
    assert "network: 7 cell(s)" in table


def test_invalid_attach_mode_rejected(topo, deployment):
    with pytest.raises(ValueError, match="attach_mode"):
        NetworkRunner(topo, deployment, attach_mode="psychic")
