"""netgrid experiment: campaign protocol, sharded equality, monotone gate."""

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.experiments import netgrid
from repro.experiments.registry import run_experiment


def test_campaign_points_cover_both_sweeps():
    points = netgrid.campaign_points(smoke=True)
    sweeps = {p["sweep"] for p in points}
    assert sweeps == {"isd", "interferers"}
    # Smoke is a strict subset of the full grid.
    assert len(points) < len(netgrid.campaign_points())


def test_sharded_netgrid_is_bit_identical_to_monolithic(tmp_path):
    """Acceptance: `repro campaign netgrid --shards 4` == unsharded run."""
    spec = CampaignSpec(experiment="netgrid", seed=0, smoke=True)
    report = CampaignRunner(spec, tmp_path, n_shards=4).run()
    mono = run_experiment("netgrid", seed=0, smoke=True)
    assert report.result is not None
    assert report.result.rows == mono.rows  # exact float equality
    assert report.result.name == mono.name
    assert report.checkpointed == report.total_shards


def test_interference_rows_degrade_monotonically():
    rows = [
        netgrid.run_point({"sweep": "interferers", "n_interferers": k}, seed=0)
        for k in (0, 1, 2)
    ]
    ordered = sorted(rows, key=lambda r: r["n_interferers"])
    for prev, nxt in zip(ordered, ordered[1:]):
        assert nxt["goodput_kbps"] <= prev["goodput_kbps"] * (1 + 1e-9)
        assert nxt["mean_ber"] >= prev["mean_ber"] * (1 - 1e-9)


def test_monotone_gate_trips_on_rising_goodput():
    rows = [
        {"sweep": "interferers", "n_interferers": 0,
         "goodput_kbps": 100.0, "mean_ber": 0.01, "n_cells": 1},
        {"sweep": "interferers", "n_interferers": 1,
         "goodput_kbps": 150.0, "mean_ber": 0.01, "n_cells": 2},
    ]
    with pytest.raises(netgrid.MonotoneGateError, match="goodput rose"):
        netgrid.aggregate(rows)


def test_monotone_gate_trips_on_falling_ber():
    rows = [
        {"sweep": "interferers", "n_interferers": 0,
         "goodput_kbps": 100.0, "mean_ber": 0.02, "n_cells": 1},
        {"sweep": "interferers", "n_interferers": 1,
         "goodput_kbps": 100.0, "mean_ber": 0.001, "n_cells": 2},
    ]
    with pytest.raises(netgrid.MonotoneGateError, match="BER fell"):
        netgrid.aggregate(rows)


def test_gate_tolerates_float_noise():
    rows = [
        {"sweep": "interferers", "n_interferers": 0,
         "goodput_kbps": 100.0, "mean_ber": 0.01, "n_cells": 1},
        {"sweep": "interferers", "n_interferers": 1,
         "goodput_kbps": 100.0 + 1e-8, "mean_ber": 0.01 - 1e-12, "n_cells": 2},
    ]
    result = netgrid.aggregate(rows)
    assert len(result.rows) == 2
