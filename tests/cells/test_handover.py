"""Handover model: thresholds, hysteresis, re-sync accounting."""

import pytest

from repro.cells import HandoverPolicy, Topology, simulate_handover


@pytest.fixture(scope="module")
def topo():
    return Topology.hex_cluster(inter_site_ft=120.0, rings=1, n_frames=1)


def test_policy_validation_messages():
    with pytest.raises(ValueError, match="hysteresis_db"):
        HandoverPolicy(hysteresis_db=-1.0)
    with pytest.raises(ValueError, match="resync_half_frames"):
        HandoverPolicy(resync_half_frames=-1)


def test_static_route_never_searches(topo):
    waypoints = [(5.0, 0.0)] * 4
    trace = simulate_handover(
        topo, "t", waypoints, HandoverPolicy(search_snr_db=-100.0)
    )
    assert trace.n_searches == 0
    assert trace.n_handovers == 0
    assert set(trace.serving_cells) == {0}


def test_crossing_the_cluster_hands_over(topo):
    # Cell 1 sits at (120, 0), cell 4 at (-120, 0): walk across.
    waypoints = [(120.0 - 24.0 * i, 0.5) for i in range(11)]
    policy = HandoverPolicy(search_snr_db=80.0, hysteresis_db=1.0)
    trace = simulate_handover(topo, "bus", waypoints, policy)
    assert trace.serving_cells[0] == 1
    assert trace.serving_cells[-1] == 4
    assert trace.n_handovers >= 2  # 1 -> 0 -> 4 at least
    assert trace.resync_half_frames == (
        trace.n_handovers * policy.resync_half_frames
    )
    for event in trace.events:
        if event.switched:
            assert event.best_snr_db - event.serving_snr_db >= policy.hysteresis_db


def test_hysteresis_blocks_marginal_switches(topo):
    # Just past the midpoint between cells 0 and 1 the margin is tiny:
    # a huge hysteresis must pin the tag to its original cell.
    waypoints = [(55.0, 0.0), (65.0, 0.0)]
    sticky = simulate_handover(
        topo, "t", waypoints,
        HandoverPolicy(search_snr_db=1000.0, hysteresis_db=50.0),
    )
    assert sticky.n_searches == 1
    assert sticky.n_handovers == 0
    eager = simulate_handover(
        topo, "t", waypoints,
        HandoverPolicy(search_snr_db=1000.0, hysteresis_db=0.0),
    )
    assert eager.n_handovers == 1


def test_resync_fraction_caps_at_one_and_validates(topo):
    waypoints = [(120.0 - 24.0 * i, 0.5) for i in range(11)]
    trace = simulate_handover(
        topo, "t", waypoints, HandoverPolicy(search_snr_db=80.0,
                                             resync_half_frames=100)
    )
    assert trace.resync_fraction(4) == 1.0
    with pytest.raises(ValueError, match="positive"):
        trace.resync_fraction(0)


def test_empty_route_rejected(topo):
    with pytest.raises(ValueError, match="waypoint"):
        simulate_handover(topo, "t", [])


def test_trace_is_deterministic(topo):
    waypoints = [(120.0 - 24.0 * i, 0.5) for i in range(11)]
    policy = HandoverPolicy(search_snr_db=80.0)
    first = simulate_handover(topo, "t", waypoints, policy)
    second = simulate_handover(topo, "t", waypoints, policy)
    assert first.serving_cells == second.serving_cells
    assert first.events == second.events
