"""CellSite and Topology: identity, layouts, validation, ambient prep."""

import math

import numpy as np
import pytest

from repro.cells import CellSite, Topology, ambient_seed
from repro.fleet import AmbientCache


def test_site_identity_split_matches_standard():
    site = CellSite(cell_id=301, x_ft=0.0, y_ft=0.0)
    assert site.n_id_1 == 100
    assert site.n_id_2 == 1
    cell = site.cell_config()
    assert 3 * cell.n_id_1 + cell.n_id_2 == 301


def test_site_validation_messages_are_actionable():
    with pytest.raises(ValueError, match=r"\[0, 503\]"):
        CellSite(cell_id=504, x_ft=0.0, y_ft=0.0)
    with pytest.raises(ValueError, match="finite"):
        CellSite(cell_id=0, x_ft=float("nan"), y_ft=0.0)
    with pytest.raises(ValueError, match="n_frames"):
        CellSite(cell_id=0, x_ft=0.0, y_ft=0.0, n_frames=0)
    with pytest.raises(ValueError, match="pdsch_load"):
        CellSite(cell_id=0, x_ft=0.0, y_ft=0.0, pdsch_load=1.5)


def test_hex_cluster_seven_cells_one_ring():
    topo = Topology.hex_cluster(inter_site_ft=100.0, rings=1)
    assert topo.n_cells == 7
    assert topo.cell_ids == list(range(7))
    centre = topo.site(0)
    for cell_id in range(1, 7):
        assert topo.site(cell_id).distance_ft(
            centre.x_ft, centre.y_ft
        ) == pytest.approx(100.0)


def test_hex_cluster_two_rings_has_nineteen_cells():
    assert Topology.hex_cluster(rings=2).n_cells == 19


def test_grid_layout_positions():
    topo = Topology.grid(2, 3, spacing_ft=50.0)
    assert topo.n_cells == 6
    assert (topo.site(5).x_ft, topo.site(5).y_ft) == (100.0, 50.0)


def test_duplicate_cell_id_rejected_with_names():
    with pytest.raises(ValueError, match="duplicate cell_id 7"):
        Topology.explicit(
            [CellSite(7, 0.0, 0.0), CellSite(7, 100.0, 0.0)]
        )


def test_colocated_sites_rejected_naming_both():
    with pytest.raises(ValueError, match="cells 0 and 1 are co-located"):
        Topology.explicit([CellSite(0, 5.0, 5.0), CellSite(1, 5.0, 5.0)])


def test_mixed_bandwidth_and_frames_rejected_naming_offender():
    with pytest.raises(ValueError, match="cell 1 uses 5.0 MHz"):
        Topology.explicit(
            [CellSite(0, 0.0, 0.0), CellSite(1, 100.0, 0.0, bandwidth_mhz=5.0)]
        )
    with pytest.raises(ValueError, match="cell 1 transmits 2 frame"):
        Topology.explicit(
            [CellSite(0, 0.0, 0.0, n_frames=4), CellSite(1, 100.0, 0.0, n_frames=2)]
        )


def test_unknown_cell_lookup_lists_cells():
    topo = Topology.hex_cluster(rings=1)
    with pytest.raises(KeyError, match="no cell 42"):
        topo.site(42)


def test_neighbours_are_everyone_else_in_id_order():
    topo = Topology.hex_cluster(rings=1)
    assert [s.cell_id for s in topo.neighbours_of(3)] == [0, 1, 2, 4, 5, 6]


def test_restrict_keeps_subset_and_rejects_unknown():
    topo = Topology.hex_cluster(rings=1)
    sub = topo.restrict([0, 2, 5])
    assert sub.cell_ids == [0, 2, 5]
    with pytest.raises(KeyError, match="unknown cell"):
        topo.restrict([0, 99])


def test_snr_decreases_with_distance():
    topo = Topology.hex_cluster(inter_site_ft=100.0, rings=1)
    site = topo.site(0)
    near = topo.snr_db_at(site, 5.0, 0.0)
    far = topo.snr_db_at(site, 50.0, 0.0)
    assert near > far


def test_ambient_seed_is_deterministic_and_per_cell():
    assert ambient_seed(3, 0) == ambient_seed(3, 0)
    assert ambient_seed(3, 0) != ambient_seed(3, 1)
    assert ambient_seed(3, 0) != ambient_seed(4, 0)


def test_prepare_ambients_one_capture_per_cell_and_reuse():
    topo = Topology.hex_cluster(inter_site_ft=100.0, rings=1, n_frames=1)
    with AmbientCache() as cache:
        ambients = topo.prepare_ambients(cache, seed=0)
        assert sorted(ambients) == topo.cell_ids
        assert cache.transmit_calls == 7
        # The same topology re-prepared hits the cache for every cell.
        again = topo.prepare_ambients(cache, seed=0)
        assert cache.transmit_calls == 7
        for cell_id in topo.cell_ids:
            assert again[cell_id] is ambients[cell_id]


def test_prepare_ambients_distinct_cells_distinct_waveforms():
    topo = Topology.hex_cluster(inter_site_ft=100.0, rings=1, n_frames=1)
    with AmbientCache() as cache:
        ambients = topo.prepare_ambients(cache, seed=0)
        assert not np.array_equal(ambients[0].unit, ambients[1].unit)
