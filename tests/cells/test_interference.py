"""Interference stage: offsets, recipes, superposition, determinism."""

import numpy as np
import pytest

from repro.cells import (
    CellAmbient,
    CellSite,
    Topology,
    neighbour_recipes,
    relative_amplitude_db,
    timing_offset_samples,
)
from repro.fleet import AmbientCache


@pytest.fixture(scope="module")
def topo():
    return Topology.hex_cluster(inter_site_ft=100.0, rings=1, n_frames=1)


@pytest.fixture(scope="module")
def ambients(topo):
    cache = AmbientCache()
    yield topo.prepare_ambients(cache, seed=0)
    cache.close()


def test_timing_offsets_are_distinct_across_a_cluster():
    samples_per_frame = 19200
    offsets = [timing_offset_samples(c, samples_per_frame) for c in range(7)]
    assert len(set(offsets)) == 7
    assert all(0 <= o < samples_per_frame for o in offsets)


def test_relative_amplitude_negative_near_serving_site(topo):
    serving = topo.site(0)
    neighbour = topo.site(1)
    rel = relative_amplitude_db(topo, serving, neighbour, 5.0, 0.0)
    assert rel < 0  # the neighbour is much farther than the serving cell


def test_recipes_sorted_by_cell_id_and_capped_by_strength(topo, ambients):
    serving = topo.site(0)
    recipes = neighbour_recipes(topo, serving, 5.0, 0.0, ambients)
    assert [r.cell_id for r in recipes] == [1, 2, 3, 4, 5, 6]
    # Strongest-2 cap keeps the two nearest cells (still id-sorted).
    capped = neighbour_recipes(
        topo, serving, 95.0, 0.0, ambients, max_interferers=2
    )
    assert len(capped) == 2
    assert capped == sorted(capped, key=lambda r: r.cell_id)
    assert 1 in [r.cell_id for r in capped]  # cell 1 sits at (100, 0)


def test_serving_only_returns_clean_stage(topo, ambients):
    stage = CellAmbient(serving=ambients[0], neighbours=[]).load()
    np.testing.assert_array_equal(stage.unit, ambients[0].unit)


def test_superposition_adds_neighbours_and_keeps_reference_clean(topo, ambients):
    serving = topo.site(0)
    recipes = neighbour_recipes(topo, serving, 40.0, 0.0, ambients)
    stage = CellAmbient(serving=ambients[0], neighbours=recipes).load()
    # Unit waveform is interfered...
    assert not np.array_equal(stage.unit, ambients[0].unit)
    # ...but the demod reference stays the clean serving capture.
    np.testing.assert_array_equal(stage.capture.samples, ambients[0].unit)
    # And it matches the hand-built sum, in cell-id order.
    expected = np.array(ambients[0].unit, dtype=complex, copy=True)
    for recipe in recipes:
        expected += recipe.amplitude * np.roll(
            ambients[recipe.cell_id].unit, recipe.offset_samples
        )
    np.testing.assert_array_equal(stage.unit, expected)


def test_superposition_identical_from_stages_and_handles(topo, tmp_path):
    """Memory-mapped spills must reproduce the in-memory floats exactly."""
    serving_xy = (40.0, 0.0)
    serving = topo.site(0)
    with AmbientCache(scratch_dir=tmp_path) as cache:
        stages = topo.prepare_ambients(cache, seed=0)
        handles = topo.prepare_ambients(cache, seed=0, handles=True)
        via_stage = CellAmbient(
            serving=stages[0],
            neighbours=neighbour_recipes(topo, serving, *serving_xy, stages),
        ).load()
        via_handle = CellAmbient(
            serving=handles[0],
            neighbours=neighbour_recipes(topo, serving, *serving_xy, handles),
        ).load()
        np.testing.assert_array_equal(via_stage.unit, via_handle.unit)


def test_length_mismatch_raises_actionable_error(topo, ambients):
    other = Topology.explicit(
        [CellSite(9, 0.0, 0.0, n_frames=2)], venue=topo.venue
    )
    with AmbientCache() as cache:
        long_ambient = other.prepare_ambients(cache, seed=0)[9]
        recipes = neighbour_recipes(topo, topo.site(0), 5.0, 0.0, ambients)
        bad = [
            type(recipes[0])(
                cell_id=9,
                ambient=long_ambient,
                amplitude=0.5,
                offset_samples=0,
            )
        ]
        with pytest.raises(ValueError, match="equal-length captures"):
            CellAmbient(serving=ambients[0], neighbours=bad).load()
