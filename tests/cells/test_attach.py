"""Attach pipeline: SNR ranking, tie-breaks, and IQ-verified cell search."""

import pytest

from repro.cells import CellSite, Topology, attach, rank_cells, search_attach
from repro.fleet import AmbientCache
from repro.lte.cell_search import cell_search


@pytest.fixture(scope="module")
def topo():
    return Topology.hex_cluster(inter_site_ft=100.0, rings=1, n_frames=1)


def test_rank_orders_by_post_pathloss_snr(topo):
    # Near cell 1 at (100, 0): cell 1 first, centre cell second.
    ranked = rank_cells(topo, 90.0, 0.0)
    assert ranked[0].cell_id == 1
    assert ranked[0].snr_db > ranked[1].snr_db
    assert len(ranked) == topo.n_cells


def test_equidistant_tie_goes_to_lower_cell_id():
    topo = Topology.explicit(
        [CellSite(4, 0.0, 0.0), CellSite(2, 60.0, 0.0)]
    )
    # Exactly mid-way between two identical sites: identical SNR.
    ranked = rank_cells(topo, 30.0, 0.0)
    assert ranked[0].snr_db == pytest.approx(ranked[1].snr_db)
    assert ranked[0].cell_id == 2  # lower id wins the tie
    decision = attach(topo, "t", 30.0, 0.0)
    assert decision.serving_cell_id == 2


def test_attach_serves_top_ranked_cell(topo):
    decision = attach(topo, "t", 90.0, 0.0)
    assert decision.serving_cell_id == rank_cells(topo, 90.0, 0.0)[0].cell_id
    assert decision.serving.cell_id == decision.serving_cell_id
    assert not decision.verified  # analytic mode never claims IQ proof


def test_search_attach_matches_analytic_top_across_mixed_snr(topo):
    """Acceptance: every tag camps on the cell cell_search ranks highest."""
    with AmbientCache() as cache:
        ambients = topo.prepare_ambients(cache, seed=0)
        # Mixed-SNR positions: near the centre, near ring cells, between.
        positions = [(5.0, 5.0), (90.0, 0.0), (-40.0, 75.0), (30.0, -20.0)]
        for x, y in positions:
            decision = search_attach(topo, "t", x, y, ambients)
            analytic_top = rank_cells(topo, x, y)[0].cell_id
            assert decision.searched_cell_id == analytic_top
            assert decision.serving_cell_id == analytic_top
            assert decision.verified


def test_search_attach_runs_cell_search_over_the_superposition(topo):
    """The searched identity is literally cell_search on the mixture."""
    from repro.cells.interference import CellAmbient, neighbour_recipes

    with AmbientCache() as cache:
        ambients = topo.prepare_ambients(cache, seed=0)
        x, y = 90.0, 0.0
        best = rank_cells(topo, x, y)[0]
        recipes = neighbour_recipes(topo, topo.site(best.cell_id), x, y, ambients)
        stage = CellAmbient(serving=ambients[best.cell_id], neighbours=recipes).load()
        direct = cell_search(stage.unit, stage.capture.params)
        decision = search_attach(topo, "t", x, y, ambients)
        assert decision.searched_cell_id == direct.cell_id


def test_serving_property_raises_on_unknown_cell(topo):
    decision = attach(topo, "t", 5.0, 5.0)
    with pytest.raises(KeyError):
        type(decision)(
            tag="t", x_ft=0.0, y_ft=0.0, serving_cell_id=99,
            candidates=decision.candidates,
        ).serving
