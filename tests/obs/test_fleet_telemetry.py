"""Fleet telemetry: workers ship span trees + counter deltas to the parent.

Tags run in worker processes (or in-process on the serial path); either
way each :class:`TagResult` must carry its serialised trace and counter
delta, and the :class:`FleetReport` must merge them into one per-stage
breakdown with summed counters.
"""

import pytest

from repro.fleet import Deployment, FleetRunner
from repro.obs import metrics, trace


def _small_deployment(n_tags=2):
    return Deployment.ring(n_tags=n_tags, bandwidth_mhz=1.4, n_frames=2)


@pytest.fixture(scope="module")
def traced_report():
    with FleetRunner(_small_deployment(), workers=1, seed=0, trace=True) as runner:
        return runner.run(payload_length=500)


def test_tag_results_carry_trace_and_metrics(traced_report):
    for tag in traced_report.tags:
        assert tag.trace, f"{tag.name} shipped no span tree"
        (run,) = tag.trace
        assert run["name"] == "system.run"
        assert any(c["name"] == "bsrx.demodulate" for c in run["children"])
        assert tag.metrics.get("bsrx.windows", 0) > 0


def test_stage_breakdown_merges_across_tags(traced_report):
    breakdown = traced_report.stage_breakdown
    for stage in ("system.run", "tag.sync", "bsrx.demodulate", "bsrx.demod"):
        assert stage in breakdown, f"missing merged stage {stage}"
    # Every tag enters system.run once, so the merged count is the fleet size.
    assert breakdown["system.run"]["count"] == traced_report.n_tags
    assert breakdown["system.run"]["wall_seconds"] > 0.0


def test_counters_sum_per_tag_deltas(traced_report):
    per_tag = sum(t.metrics.get("bsrx.windows", 0) for t in traced_report.tags)
    assert traced_report.counters["bsrx.windows"] == per_tag
    assert traced_report.counters["link.bits"] == sum(t.n_bits for t in traced_report.tags)


def test_format_table_includes_telemetry(traced_report):
    text = traced_report.format_table()
    assert "telemetry" in text.lower()
    assert "bsrx.demodulate" in text


def test_trace_off_ships_nothing():
    with FleetRunner(_small_deployment(), workers=1, seed=0) as runner:
        report = runner.run(payload_length=500)
    assert report.stage_breakdown == {}
    assert report.counters == {}
    for tag in report.tags:
        assert tag.trace == []
        assert tag.metrics == {}


def test_parallel_and_serial_telemetry_agree_on_counts():
    """Worker-process path merges the same stage counts as in-process."""
    with FleetRunner(_small_deployment(), workers=1, seed=0, trace=True) as runner:
        serial = runner.run(payload_length=500)
    with FleetRunner(_small_deployment(), workers=2, seed=0, trace=True) as runner:
        parallel = runner.run(payload_length=500)
    assert set(serial.stage_breakdown) == set(parallel.stage_breakdown)
    for stage, entry in serial.stage_breakdown.items():
        assert parallel.stage_breakdown[stage]["count"] == entry["count"]
    assert parallel.counters == serial.counters


def test_serial_path_shields_ambient_trace():
    """An enabled parent trace must not absorb in-process tag spans."""
    trace.disable()
    trace.reset()
    metrics.reset_metrics()
    with trace.tracing():
        with trace.span("driver"):
            with FleetRunner(
                _small_deployment(), workers=1, seed=0, trace=True
            ) as runner:
                report = runner.run(payload_length=500)
    (driver,) = trace.snapshot()
    assert driver.child("system.run") is None
    assert report.stage_breakdown["system.run"]["count"] == report.n_tags
    trace.reset()
    metrics.reset_metrics()
