"""Unit tests for the process-local metrics registry."""

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.reset_metrics()
    yield
    metrics.reset_metrics()


def test_counter_inc_and_snapshot():
    metrics.counter_inc("events")
    metrics.counter_inc("events", 4)
    assert metrics.counters_snapshot()["events"] == 5


def test_gauge_last_write_wins():
    metrics.gauge_set("level", 1.0)
    metrics.gauge_set("level", 2.5)
    assert metrics.metrics_snapshot()["gauges"]["level"] == 2.5


def test_histogram_tracks_count_sum_min_max():
    for v in (3.0, 1.0, 2.0):
        metrics.observe("lat", v)
    h = metrics.metrics_snapshot()["histograms"]["lat"]
    assert h == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}


def test_collector_runs_at_snapshot_time():
    calls = []

    def collector():
        calls.append(1)
        return {"value": 42}

    metrics.register_collector("test.collector", collector)
    assert not calls  # pull-style: nothing until a snapshot asks
    snap = metrics.metrics_snapshot()
    assert snap["collected"]["test.collector"] == {"value": 42}
    assert len(calls) == 1
    metrics.metrics_snapshot(include_collectors=False)
    assert len(calls) == 1


def test_broken_collector_reported_not_raised():
    def broken():
        raise RuntimeError("boom")

    metrics.register_collector("test.broken", broken)
    snap = metrics.metrics_snapshot()
    assert "boom" in snap["collected"]["test.broken"]["error"]


def test_reset_keeps_collectors():
    metrics.register_collector("test.keep", lambda: {"v": 1})
    metrics.counter_inc("gone")
    metrics.reset_metrics()
    snap = metrics.metrics_snapshot()
    assert "gone" not in snap["counters"]
    assert snap["collected"]["test.keep"] == {"v": 1}


def test_counter_delta_drops_zeroes():
    metrics.counter_inc("a", 2)
    before = metrics.counters_snapshot()
    metrics.counter_inc("a", 3)
    metrics.counter_inc("b")
    after = metrics.counters_snapshot()
    assert metrics.counter_delta(before, after) == {"a": 3, "b": 1}


def test_cache_collector_registered_by_utils_cache():
    """utils.cache hooks its stats into every metrics snapshot."""
    import repro.utils.cache  # noqa: F401  (import installs the collector)
    from repro.lte.pss import pss_sequence

    pss_sequence(0)
    totals = metrics.metrics_snapshot()["collected"]["utils.cache"]
    assert totals["caches"] >= 1
    assert totals["misses"] >= 1
