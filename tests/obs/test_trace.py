"""Unit tests for the span tracer: modes, merging, serialisation, export."""

import json

import numpy as np
import pytest

from repro.obs import trace
from repro.obs.export import chrome_trace_events, format_span_tree, write_chrome_trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


def test_disabled_span_is_shared_noop_singleton():
    a = trace.span("x")
    b = trace.span("y", attr=1)
    assert a is b  # no per-call allocation on the disabled fast path
    with a as sp:
        sp.set(anything=1)
    assert trace.snapshot() == []


def test_enabled_span_records_time_and_attrs():
    trace.enable()
    with trace.span("stage", fixed=1) as sp:
        sp.set(n=42)
    (node,) = trace.snapshot()
    assert node.name == "stage"
    assert node.count == 1
    assert node.wall_seconds >= 0.0
    assert node.cpu_seconds >= 0.0
    assert node.attrs == {"fixed": 1, "n": 42}


def test_nesting_follows_call_structure():
    trace.enable()
    with trace.span("parent"):
        with trace.span("child"):
            with trace.span("grandchild"):
                pass
        with trace.span("sibling"):
            pass
    (parent,) = trace.snapshot()
    assert sorted(parent.children) == ["child", "sibling"]
    assert list(parent.children["child"].children) == ["grandchild"]


def test_reentry_merges_by_name():
    trace.enable()
    for _ in range(5):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
    (outer,) = trace.snapshot()
    assert outer.count == 5
    assert outer.children["inner"].count == 5
    assert len(outer.children) == 1


def test_children_sum_within_parent_wall_time():
    trace.enable()
    with trace.span("parent"):
        for _ in range(3):
            with trace.span("a"):
                sum(range(1000))
            with trace.span("b"):
                sum(range(1000))
    (parent,) = trace.snapshot()
    child_total = sum(c.wall_seconds for c in parent.children.values())
    assert child_total <= parent.wall_seconds + 1e-9


def test_current_span_attaches_to_innermost():
    trace.enable()
    assert trace.current_span().set(ignored=1) is not None  # no-op, no raise
    with trace.span("outer"):
        with trace.span("inner"):
            trace.current_span().set(marker=7)
    (outer,) = trace.snapshot()
    assert outer.children["inner"].attrs == {"marker": 7}


def test_tracing_context_manager_restores_mode():
    assert not trace.is_enabled()
    with trace.tracing():
        assert trace.is_enabled()
        with trace.span("inside"):
            pass
    assert not trace.is_enabled()
    assert [n.name for n in trace.snapshot()] == ["inside"]


def test_collect_isolates_and_restores_ambient_trace():
    trace.enable()
    with trace.span("ambient"):
        with trace.collect() as box:
            with trace.span("worker"):
                pass
        # Back in the ambient trace: still enabled, same tree.
        with trace.span("after"):
            pass
    assert [n.name for n in box.roots] == ["worker"]
    (ambient,) = trace.snapshot()
    assert "worker" not in ambient.children
    assert "after" in ambient.children


def test_collect_when_disabled_restores_disabled():
    with trace.collect() as box:
        assert trace.is_enabled()
        with trace.span("inside"):
            pass
    assert not trace.is_enabled()
    assert [n.name for n in box.roots] == ["inside"]


def test_to_from_dict_roundtrip():
    trace.enable()
    with trace.span("a", k="v"):
        with trace.span("b"):
            pass
    (node,) = trace.snapshot()
    data = trace.to_dict(node)
    json.dumps(data)  # plain JSON-able types only
    rebuilt = trace.from_dict(data)
    assert rebuilt.name == "a"
    assert rebuilt.attrs == {"k": "v"}
    assert list(rebuilt.children) == ["b"]
    assert rebuilt.wall_seconds == node.wall_seconds


def test_flatten_stages_accumulates_across_trees():
    trace.enable()
    with trace.span("run"):
        with trace.span("stage"):
            pass
    roots_a = trace.snapshot()
    trace.reset()
    with trace.span("run"):
        with trace.span("stage"):
            pass
    roots_b = trace.snapshot()
    merged = trace.flatten_stages(roots_a)
    trace.flatten_stages(roots_b, into=merged)
    assert merged["run"]["count"] == 2
    assert merged["stage"]["count"] == 2


def test_chrome_trace_events_shape_and_nesting():
    trace.enable()
    with trace.span("parent", n=3):
        with trace.span("child"):
            pass
    events = chrome_trace_events(trace.snapshot(), label="main")
    phases = [e["ph"] for e in events]
    assert phases == ["M", "X", "X"]
    by_name = {e["name"]: e for e in events if e["ph"] == "X"}
    parent, child = by_name["parent"], by_name["child"]
    assert child["ts"] >= parent["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0
    assert parent["args"]["n"] == 3
    assert "cpu_ms" in parent["args"]


def test_write_chrome_trace_file(tmp_path):
    trace.enable()
    with trace.span("solo"):
        pass
    out = tmp_path / "trace.json"
    n = write_chrome_trace(str(out), roots=trace.snapshot())
    payload = json.loads(out.read_text())
    assert len(payload["traceEvents"]) == n
    assert payload["displayTimeUnit"] == "ms"


def test_write_chrome_trace_tracks_use_distinct_tids(tmp_path):
    trace.enable()
    with trace.span("s"):
        pass
    roots = trace.snapshot()
    out = tmp_path / "fleet.json"
    write_chrome_trace(
        str(out), tracks={"tag00": roots, "tag01": [trace.to_dict(roots[0])]}
    )
    payload = json.loads(out.read_text())
    tids = {e["tid"] for e in payload["traceEvents"]}
    assert len(tids) == 2


def test_format_span_tree_is_readable_text():
    trace.enable()
    with trace.span("top"):
        with trace.span("inner"):
            pass
    text = format_span_tree(trace.snapshot())
    assert "top" in text and "inner" in text
    assert "wall" in text and "cpu" in text


def test_attrs_cleaned_for_json():
    trace.enable()
    with trace.span("s") as sp:
        sp.set(array=np.arange(3), flag=True, n=np.int64(7))
    events = chrome_trace_events(trace.snapshot())
    json.dumps(events)  # numpy scalars/arrays must have been stringified
