"""End-to-end trace test: one system run produces one well-formed tree.

The contract under test: with tracing enabled, a single
:meth:`LScatterSystem.run` produces a ``system.run`` root whose children
are the pipeline stages — each appearing **exactly once** for the whole
frame batch (merge-by-name collapses per-packet/per-frame re-entries into
one node), with child durations that sum consistently into their parent.
"""

import numpy as np
import pytest

from repro.core import LScatterSystem, SystemConfig
from repro.obs import metrics, trace

#: Stages that must each appear exactly once under system.run for a
#: successfully-synced decoded-reference run.
PIPELINE_STAGES = (
    "system.ambient",
    "system.channel",
    "tag.sync",
    "tag.schedule",
    "tag.reflect",
    "system.receive",
    "lte.decode",
    "system.reference",
    "bsrx.demodulate",
    "system.metrics",
)

#: Per-packet receiver stages nested under bsrx.demodulate.
BSRX_STAGES = ("bsrx.sync", "bsrx.phase_offset", "bsrx.equalise", "bsrx.demod")


@pytest.fixture(scope="module")
def traced_run():
    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=2,
        multipath=False,
        add_noise=False,
        sync_error_samples=0,
        reference_mode="decoded",
    )
    metrics.reset_metrics()
    with trace.collect() as box:
        report = LScatterSystem(config, rng=0).run(payload_length=500)
    counters = metrics.counters_snapshot()
    metrics.reset_metrics()
    return box.roots, report, counters


def test_every_pipeline_stage_exactly_once(traced_run):
    roots, report, _ = traced_run
    (run,) = roots
    assert run.name == "system.run"
    assert run.count == 1
    for stage in PIPELINE_STAGES:
        node = run.child(stage)
        assert node is not None, f"missing stage span {stage}"
        assert node.count == 1, f"{stage} entered {node.count} times"


def test_bsrx_stages_merge_per_packet_entries(traced_run):
    roots, report, _ = traced_run
    demod = roots[0].child("bsrx.demodulate")
    for stage in BSRX_STAGES:
        node = demod.child(stage)
        assert node is not None, f"missing receiver stage {stage}"
    # 2 frames = 4 half-frames sound the cascade once each; every data
    # window passes through equalise+demod once.
    assert demod.child("bsrx.sync").count == 4
    assert demod.child("bsrx.equalise").count == report.n_windows
    assert demod.child("bsrx.demod").count == report.n_windows


def test_child_durations_sum_within_parent(traced_run):
    roots, _, _ = traced_run

    def check(node):
        if node.children:
            child_wall = sum(c.wall_seconds for c in node.children.values())
            assert child_wall <= node.wall_seconds + 1e-9, (
                f"children of {node.name} sum to {child_wall:.6f}s, "
                f"parent only {node.wall_seconds:.6f}s"
            )
        for child in node.children.values():
            check(child)

    (run,) = roots
    check(run)


def test_run_attrs_reflect_report(traced_run):
    roots, report, _ = traced_run
    (run,) = roots
    assert run.attrs["n_windows"] == report.n_windows
    assert run.attrs["n_bits"] == report.n_bits
    assert run.attrs["ber"] == pytest.approx(report.ber)
    assert run.attrs["sync_failed"] is False


def test_counters_match_report(traced_run):
    _, report, counters = traced_run
    assert counters["link.windows"] == report.n_windows
    assert counters["link.bits"] == report.n_bits
    assert counters.get("link.bit_errors", 0) == report.n_errors
    assert counters["bsrx.windows"] == report.n_windows
    assert "system.sync_failures" not in counters


def test_untraced_run_is_bit_identical_to_traced():
    """Instrumentation must observe, never perturb."""
    config = SystemConfig(
        bandwidth_mhz=1.4, n_frames=1, multipath=False, add_noise=False,
        sync_error_samples=0,
    )

    def run():
        return LScatterSystem(config, rng=3).run(payload_length=300)

    plain = run()
    with trace.collect():
        traced = run()
    assert (plain.n_bits, plain.n_errors, plain.n_windows) == (
        traced.n_bits,
        traced.n_errors,
        traced.n_windows,
    )
    assert plain.ber == traced.ber


def test_sync_failure_counted():
    from repro.faults import FaultPlan, TagFaults

    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=1,
        multipath=False,
        add_noise=False,
        sync_mode="circuit",
        faults=FaultPlan(tag=TagFaults(pss_miss_rate=1.0)),
    )
    metrics.reset_metrics()
    with trace.collect() as box:
        report = LScatterSystem(config, rng=0).run(payload_length=300)
    counters = metrics.counters_snapshot()
    metrics.reset_metrics()
    assert report.sync_failed
    assert counters["system.sync_failures"] == 1
    assert counters["faults.activations.tag_sync"] >= 1
    (run,) = box.roots
    assert run.child("tag.sync").attrs["sync_failed"] is True
    # The silent tag schedules nothing, so the schedule span never opens.
    assert run.child("tag.schedule") is None
