#!/usr/bin/env python
"""Continuous authentication from a wearable EMG pad (paper §5, Fig. 33).

An EMG wearable streams muscle-activity windows over LScatter to a
laptop, which keeps the session alive only while the features match the
enrolled user.  Reproduces the update-rate-vs-distance curve and then
stages an imposter takeover.

Run:  python examples/continuous_authentication.py
"""

from repro.apps import ContinuousAuthApp


def main():
    print("Update rate vs tag-to-eNodeB distance (paper Fig. 33b):")
    for distance in (2, 8, 16, 24, 32, 40):
        app = ContinuousAuthApp(enb_to_tag_ft=distance, rng=0)
        print(f"  {distance:2d} ft -> {app.update_rate_sps():6.1f} updates/s")

    print("\nStaging a session: legitimate user, then an imposter ...")
    app = ContinuousAuthApp(enb_to_tag_ft=2.0, rng=1)
    report = app.run(legit_user=0, imposter_user=3, duration_s=15.0)
    print(f"  delivered ~{report.mean_updates_delivered:.0f} updates per user")
    print(f"  legitimate user accepted : {report.accept_rate_legit:6.1%} of windows")
    print(f"  imposter rejected        : {report.reject_rate_imposter:6.1%} of windows")
    if report.reject_rate_imposter > 0.5:
        print("  -> the imposter loses the session within a couple of windows.")


if __name__ == "__main__":
    main()
