#!/usr/bin/env python
"""Quickstart: one end-to-end LScatter transmission.

Builds ambient LTE frames, runs the tag's analog sync circuit, modulates
a payload at basic-timing-unit granularity, carries everything over a
fading channel, and demodulates at the UE — printing what happened at
each stage.

Run:  python examples/quickstart.py
"""

from repro import LScatterSystem, SystemConfig


def main():
    config = SystemConfig(
        bandwidth_mhz=5.0,  # one of 1.4/3/5/10/15/20
        venue="smart_home",
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=5.0,
        n_frames=2,
        sync_mode="circuit",  # run the real analog sync simulation
        reference_mode="decoded",  # UE rebuilds the ambient from its own decode
    )
    system = LScatterSystem(config, rng=42)

    payload_bits = 50_000
    print(f"Simulating {config.n_frames} LTE frames at {config.bandwidth_mhz} MHz ...")
    report = system.run(payload_length=payload_bits, artifacts=True)

    artifacts = report.extras["artifacts"]
    print(f"  tag sync error        : {report.sync_error_us:+.2f} us")
    print(f"  packets demodulated   : {len(artifacts.demod.packets)}")
    print(f"  chips carried         : {report.n_bits}")
    print(f"  bit errors            : {report.n_errors}  (BER {report.ber:.2e})")
    print(f"  throughput            : {report.throughput_bps / 1e6:.3f} Mbps")
    print(f"  ambient LTE decode    : BLER {report.lte_block_error_rate:.3f}, "
          f"{report.lte_throughput_bps / 1e6:.2f} Mbps (unharmed by the tag)")

    models = {}
    for packet in artifacts.demod.packets:
        models[packet.model] = models.get(packet.model, 0) + 1
    print(f"  receiver models used  : {models}")


if __name__ == "__main__":
    main()
