#!/usr/bin/env python
"""The §6 genericity claim: LScatter chips on WiFi and 5G NR carriers.

Applies the basic-timing-unit modulation to an 802.11g packet and to NR
carriers at two numerologies, comparing throughput and showing why the
continuous LTE/NR carriers still win over bursty WiFi.

Run:  python examples/ofdm_everywhere.py
"""

import numpy as np

from repro.core.link_budget import LScatterLinkModel
from repro.extensions import OfdmChipReceiver, OfdmChipTag, wifi_layout
from repro.nr import nr_backscatter_trial
from repro.utils.rng import make_rng
from repro.wifi import WifiTransmitter


def main():
    print("Chip backscatter on an 802.11g packet:")
    rng = make_rng(0)
    packet = WifiTransmitter(12.0, rng=rng).transmit(psdu_bytes=400)
    layout = wifi_layout(packet.samples, packet.n_data_symbols)
    tag = OfdmChipTag(layout)
    payload = rng.integers(0, 2, size=tag.capacity_bits()).astype(np.int8)
    hybrid, used = tag.modulate(packet.samples, payload)
    got = OfdmChipReceiver(layout).demodulate(hybrid, packet.samples, used)
    errors = int(np.sum(got != payload[:used]))
    on_air = layout.n_symbols * 4e-6
    print(f"  {used} chips over {on_air*1e6:.0f} us on air, {errors} errors")
    print(f"  -> {used/on_air/1e6:.1f} Mbps while a packet is present")
    print("  ... but ambient WiFi is present only ~10-50% of the time.\n")

    print("Chip backscatter on 5G NR carriers:")
    for preset in ("nr10_mu0", "nr20_mu1", "nr40_mu1"):
        result = nr_backscatter_trial(preset, payload_length=500_000, snr_db=35, seed=1)
        print(
            f"  {preset:9s}: {result.throughput_bps/1e6:6.2f} Mbps "
            f"(BER {result.ber:.1e}) — continuous, like LTE"
        )

    lte = LScatterLinkModel(20.0).raw_bit_rate_bps
    print(f"\nReference: LScatter on 20 MHz LTE = {lte/1e6:.2f} Mbps.")
    print("Same modulation everywhere; only the carrier's availability differs.")


if __name__ == "__main__":
    main()
