#!/usr/bin/env python
"""Virtual spectrum-analyzer session (paper Fig. 4a/4b).

Synthesises 20 ms of a 2.4 GHz WiFi channel and of an LTE downlink band,
computes their spectrograms, and prints an ASCII rendering plus the
measured occupancy — the observation the whole paper is built on.

Run:  python examples/spectrum_survey.py
"""

import numpy as np

from repro.traffic.spectrum import (
    lte_band_capture,
    occupancy_from_spectrogram,
    spectrogram,
    wifi_band_capture,
)


def ascii_spectrogram(times, freqs, magnitude_db, rows=18, cols=64):
    """Tiny terminal heat map: darker glyph = more power."""
    glyphs = " .:-=+*#%@"
    t_idx = np.linspace(0, len(times) - 1, cols).astype(int)
    f_idx = np.linspace(0, len(freqs) - 1, rows).astype(int)
    picture = magnitude_db[t_idx][:, f_idx].T
    lo, hi = np.percentile(picture, [20, 99])
    scaled = np.clip((picture - lo) / max(hi - lo, 1e-9), 0, 1)
    lines = []
    for row in scaled[::-1]:
        lines.append("".join(glyphs[int(v * (len(glyphs) - 1))] for v in row))
    return "\n".join(lines)


def main():
    print("WiFi channel (bursty packets + ZigBee interferer):")
    wifi = wifi_band_capture(rng=3)
    times, freqs, mag = spectrogram(wifi)
    print(ascii_spectrogram(times, freqs, mag))
    wifi_occ = occupancy_from_spectrogram(mag)
    print(f"  measured occupancy: {wifi_occ:.2f}\n")

    print("LTE downlink (continuous, PSS every 5 ms):")
    lte = lte_band_capture(rng=3)
    times, freqs, mag = spectrogram(lte)
    print(ascii_spectrogram(times, freqs, mag))
    lte_occ = occupancy_from_spectrogram(mag)
    print(f"  measured occupancy: {lte_occ:.2f}")

    print(
        "\nThe LTE band is occupied every single frame; the WiFi channel "
        f"is silent {1 - wifi_occ:.0%} of the time and shared with "
        "heterogeneous devices — the paper's Observation 1."
    )


if __name__ == "__main__":
    main()
