#!/usr/bin/env python
"""Why LTE? A week-long virtual spectrum survey (paper §2, Fig. 4).

Samples the occupancy of WiFi, LoRa and LTE carriers across venues for a
simulated week and prints the statistics that motivate the whole system:
WiFi is bursty and intermittent, LoRa is absent, LTE is always there.

Run:  python examples/ambient_traffic_survey.py
"""

import numpy as np

from repro.baselines import PLoraModel, WifiBackscatterModel
from repro.traffic import weekly_occupancy_samples


def main():
    print("One week of carrier-occupancy samples per venue:\n")
    print(f"{'carrier':18s} {'median':>8s} {'p90':>8s} {'time@<0.5':>10s}")
    curves = [
        ("lte", "home"),
        ("wifi", "office"),
        ("wifi", "home"),
        ("wifi", "mall"),
        ("wifi", "outdoor"),
        ("lora", "home"),
    ]
    for technology, venue in curves:
        samples = weekly_occupancy_samples(technology, venue, rng=11)
        below_half = float(np.mean(samples < 0.5))
        print(
            f"{technology + '-' + venue:18s} {np.median(samples):8.3f} "
            f"{np.percentile(samples, 90):8.3f} {below_half:10.1%}"
        )

    print("\nWhat that does to a backscatter tag (close range):")
    wifi = WifiBackscatterModel()
    plora = PLoraModel()
    for venue, occ in (("office", 0.42), ("home", 0.30), ("outdoor", 0.13)):
        print(
            f"  WiFi backscatter in the {venue:8s}: "
            f"{wifi.throughput_bps(occ, 5, 10) / 1e3:6.1f} kbps"
        )
    print(f"  LoRa backscatter anywhere      : {plora.throughput_bps(0.02):6.1f} bps")
    print("  LScatter on any LTE carrier    : ~13,920.0 kbps, around the clock")


if __name__ == "__main__":
    main()
