#!/usr/bin/env python
"""Smart-home telemetry: several sensor tags sharing one LTE carrier.

The scenario §1 of the paper motivates: battery-free sensors scattered
through an apartment, all piggybacking on the same ambient eNodeB.  Tags
share the carrier by slot-level TDMA derived from the common PSS timing —
no coordination channel needed.

Run:  python examples/smart_home_sensing.py
"""

from repro.apps import SensorNetwork
from repro.apps.sensing import SensorTag
from repro.tag.power import TagPowerModel


def main():
    tags = [
        SensorTag("thermostat", enb_to_tag_ft=4.0, tag_to_ue_ft=6.0, reading_bits=48),
        SensorTag("door-sensor", enb_to_tag_ft=9.0, tag_to_ue_ft=12.0, reading_bits=16),
        SensorTag("motion-living", enb_to_tag_ft=6.0, tag_to_ue_ft=8.0, reading_bits=32),
        SensorTag("air-quality", enb_to_tag_ft=12.0, tag_to_ue_ft=15.0, reading_bits=96),
        SensorTag("water-meter", enb_to_tag_ft=18.0, tag_to_ue_ft=20.0, reading_bits=64),
    ]
    network = SensorNetwork(tags, bandwidth_mhz=20.0, venue="smart_home", rng=7)

    print(f"Simulating {len(tags)} LScatter sensor tags for 10 s ...")
    report = network.run(duration_s=10.0)
    for tag in tags:
        delivery = report.per_tag_delivery[tag.name]
        rate = report.per_tag_readings_per_s[tag.name]
        print(
            f"  {tag.name:14s} ({tag.enb_to_tag_ft:4.1f} ft from eNodeB): "
            f"delivery {delivery:6.1%}, {rate:7.1f} readings/s"
        )
    print(f"  aggregate: {report.aggregate_readings_per_s:.0f} readings/s")

    power = TagPowerModel("ring").breakdown(20.0)
    print(
        f"\nEach tag draws ~{power.total_uw:.0f} uW with a ring-oscillator "
        "clock — years on a coin cell, or RF-harvestable."
    )


if __name__ == "__main__":
    main()
