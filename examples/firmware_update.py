#!/usr/bin/env python
"""Reliable bulk transfer: pushing a firmware image over LScatter.

Uses the link layer (framing + selective-repeat ARQ, optionally over a
Hamming-coded pipe) on top of the calibrated PHY model to move a 64 KiB
image to a laptop across the room, and reports wall-clock estimates.

Run:  python examples/firmware_update.py
"""

import numpy as np

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.link import BitErrorChannel, SelectiveRepeatArq
from repro.tag.coding import hamming74_coded_ber
from repro.utils.rng import make_rng


def main():
    image_bits = 64 * 1024 * 8
    payload = make_rng(1).integers(0, 2, size=image_bits).astype(np.int8)
    model = LScatterLinkModel(20.0, LinkBudget(venue="smart_home"))

    print(f"Pushing a {image_bits // 8 // 1024} KiB image over LScatter:\n")
    print(f"{'distance':>9s} {'chip BER':>10s} {'strategy':>12s} "
          f"{'goodput':>10s} {'est. time':>10s} {'delivered':>10s}")
    for distance in (5, 15, 25):
        ber = model.ber(3, distance)
        rate = model.predict(3, distance).throughput_bps
        for label, pipe_ber, rate_penalty in (
            ("raw", ber, 1.0),
            ("hamming74", float(hamming74_coded_ber(ber)), 4 / 7),
        ):
            arq = SelectiveRepeatArq(mtu_bits=1024, window=32, max_rounds=20000)
            received, report = arq.deliver(payload, BitErrorChannel(pipe_ber, rng=distance))
            ok = np.array_equal(received, payload)
            goodput = report.efficiency * rate * rate_penalty
            seconds = image_bits / max(goodput, 1.0)
            print(
                f"{distance:7d} ft {ber:10.2e} {label:>12s} "
                f"{goodput/1e6:8.2f} M {seconds:9.2f} s {str(ok):>10s}"
            )
    print(
        "\nEvery transfer is bit-exact (CRC-16 per frame); FEC under the "
        "ARQ roughly doubles goodput once frame losses bite."
    )


if __name__ == "__main__":
    main()
