"""PLoRa-style ambient LoRa backscatter.

PLoRa converts ambient LoRa chirps into shifted chirps at ~280 bps.  The
technique works — but only when there is ambient LoRa traffic, and the
paper's week-long site surveys put LoRa occupancy at ~0.02 with *zero*
usable bursts at the experiment sites, so its measured throughput is 0
throughout the evaluation ("the throughput of LoRa backscatter is always
0 in our experiments", §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

#: PLoRa's reported raw data rate.
RAW_BIT_RATE_BPS = 284.0

#: Minimum ambient occupancy for the tag to catch whole LoRa frames: a
#: PLoRa packet needs the ambient transmission to overlap its entire
#: payload, which sub-5 % sporadic beacons essentially never provide.
MIN_USABLE_OCCUPANCY = 0.05


@dataclass
class PLoraModel:
    """Occupancy-gated LoRa-backscatter throughput."""

    raw_bit_rate_bps: float = RAW_BIT_RATE_BPS

    def throughput_bps(self, occupancy):
        """Correct bits per second given ambient LoRa occupancy."""
        occupancy = float(occupancy)
        if occupancy < MIN_USABLE_OCCUPANCY:
            return 0.0
        return occupancy * self.raw_bit_rate_bps
