"""WiFi backscatter baseline (FreeRider-style codeword translation).

The tag flips the phase of *entire* OFDM symbols: one backscatter bit per
two WiFi symbols (8 us/bit -> 125 kbps ceiling), encoded differentially so
the receiver needs only relative symbol phases.  Two layers:

* an IQ-level tag/receiver pair operating on the real 802.11 PHY of
  :mod:`repro.wifi` (used by tests and the granularity ablation);
* :class:`WifiBackscatterModel`, the occupancy-gated throughput model the
  24 h and distance experiments use.  Its link budget carries a large
  calibrated system gain — like the paper's enhanced baseline, whose tag
  was triggered by a USRP X300 detector — chosen so the baseline matches
  FreeRider's published operating points; the gain is then held fixed
  across every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import LinkBudget
from repro.core.link_budget import rayleigh_bpsk_ber
from repro.utils.rng import make_rng
from repro.wifi.params import SYMBOL_SAMPLES, SYMBOL_SECONDS
from repro.wifi.receiver import PREAMBLE_SAMPLES

#: WiFi carrier (channel 6).
WIFI_CARRIER_HZ = 2.437e9

#: Symbols per backscatter bit (codeword translation granularity).
SYMBOLS_PER_BIT = 2

#: Raw backscatter bit rate on a continuously present WiFi signal.
RAW_BIT_RATE_BPS = 1.0 / (SYMBOLS_PER_BIT * SYMBOL_SECONDS)

#: Backscatter bits carried per hybrid WiFi packet (typical 1500 B frame).
BITS_PER_PACKET = 500

#: Calibrated aggregate gain of the enhanced baseline's testbed (see
#: module docstring), set so the WiFi arm reproduces FreeRider's published
#: operating points: ~0.1 Mbps at 10 ft, the ~80 ft crossover against
#: symbol-level LTE backscatter (paper Fig. 23), and the sharp BER rise
#: past ~120 ft (Figs 24/29).
WIFI_SYSTEM_GAIN_DB = 17.0


class FreeRiderTag:
    """Symbol-level phase flipping on a WiFi packet (IQ level)."""

    def modulate(self, packet_samples, bits, data_start=PREAMBLE_SAMPLES + SYMBOL_SAMPLES):
        """Differentially embed ``bits`` from ``data_start`` onwards.

        Each bit spans two OFDM symbols; bit 1 toggles the reflection
        phase for its pair, bit 0 keeps it.  The preamble and SIGNAL
        symbol are never modulated (the WiFi receiver needs them intact —
        the analogue of LScatter avoiding the PSS/SSS).
        """
        samples = np.array(packet_samples, dtype=complex)
        bits = np.asarray(bits, dtype=np.int8)
        phase = 1.0
        offset = int(data_start)
        used = 0
        for bit in bits:
            span = SYMBOLS_PER_BIT * SYMBOL_SAMPLES
            if offset + span > len(samples):
                break
            if bit:
                phase = -phase
            samples[offset : offset + span] *= phase
            offset += span
            used += 1
        return samples, used


class FreeRiderReceiver:
    """Recover symbol-level phase flips from a hybrid WiFi packet."""

    def demodulate(self, hybrid, reference, n_bits, data_start=PREAMBLE_SAMPLES + SYMBOL_SAMPLES):
        """Differential demodulation against the clean reference packet."""
        hybrid = np.asarray(hybrid, dtype=complex)
        reference = np.asarray(reference, dtype=complex)
        phases = []
        offset = int(data_start)
        for _ in range(int(n_bits)):
            span = SYMBOLS_PER_BIT * SYMBOL_SAMPLES
            if offset + span > len(hybrid):
                break
            ref = reference[offset : offset + span]
            corr = np.vdot(ref, hybrid[offset : offset + span])
            phases.append(np.sign(np.real(corr)))
            offset += span
        phases = np.asarray(phases)
        # Differential decode: a bit is 1 when the phase toggled.
        bits = np.empty(len(phases), dtype=np.int8)
        previous = 1.0
        for i, p in enumerate(phases):
            bits[i] = 1 if p != previous else 0
            previous = p
        return bits


@dataclass
class WifiBackscatterModel:
    """Occupancy-gated throughput/BER model for the WiFi baseline."""

    budget: LinkBudget = field(
        default_factory=lambda: LinkBudget(
            tx_power_dbm=15.0,
            carrier_hz=WIFI_CARRIER_HZ,
            venue="shopping_mall",
            system_gain_db=WIFI_SYSTEM_GAIN_DB,
        )
    )
    bandwidth_hz: float = 20e6

    def snr_db(self, ap_to_tag_ft, tag_to_rx_ft):
        return self.budget.backscatter_snr_db(
            ap_to_tag_ft, tag_to_rx_ft, self.bandwidth_hz
        )

    def ber(self, ap_to_tag_ft, tag_to_rx_ft):
        """Backscatter bit error rate at one geometry.

        Symbol-level modulation integrates over a whole OFDM symbol, so
        unlike LScatter's per-sample chips the effective SNR carries a
        processing gain of the symbol length (80 samples) and the Rayleigh
        chip-energy penalty averages out to AWGN-like behaviour; we keep
        the Rayleigh form on the *packet* channel fading instead.
        """
        snr = 10.0 ** (self.snr_db(ap_to_tag_ft, tag_to_rx_ft) / 10.0)
        return float(np.clip(rayleigh_bpsk_ber(snr * SYMBOL_SAMPLES) + 1e-5, 0, 0.5))

    def packet_success(self, ap_to_tag_ft, tag_to_rx_ft):
        """Probability a hybrid packet decodes (all bits must survive)."""
        ber = self.ber(ap_to_tag_ft, tag_to_rx_ft)
        return float((1.0 - ber) ** BITS_PER_PACKET)

    def throughput_bps(self, occupancy, ap_to_tag_ft=5.0, tag_to_rx_ft=10.0):
        """Correct backscatter bits per second at a given traffic occupancy."""
        success = self.packet_success(ap_to_tag_ft, tag_to_rx_ft)
        return float(occupancy) * RAW_BIT_RATE_BPS * success
