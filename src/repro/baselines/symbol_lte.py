"""Symbol-level LTE backscatter: the paper's granularity strawman.

Applies the WiFi backscatters' symbol-level technique to LTE: one bit per
two 71.4 us LTE symbols, i.e. a 7 kbps ceiling — three orders of magnitude
under LScatter's basic-timing-unit modulation (paper challenge C2 and the
"Symbol Level LTE Backscatter" arm of Figs 23/24/28/29).  Its integration
over ~2200 samples per bit buys ~33 dB of processing gain, so it reaches
much farther than WiFi backscatter (600 MHz carrier + long symbols),
which is exactly the Fig. 23 crossover at ~80 ft.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import LinkBudget
from repro.core.link_budget import TAG_SENSITIVITY_DBM, rayleigh_bpsk_ber
from repro.lte.params import LteParams

#: LTE symbols per backscatter bit.
SYMBOLS_PER_BIT = 2

#: Raw rate: 14 symbols/ms -> 7 kbps.
RAW_BIT_RATE_BPS = 14_000.0 / SYMBOLS_PER_BIT


class SymbolLevelLteTag:
    """IQ-level symbol-granularity tag (for the granularity ablation).

    Flips the reflection phase over whole LTE symbols, differentially,
    skipping the sync slots like the LScatter controller does.
    """

    def __init__(self, params):
        self.params = (
            params if isinstance(params, LteParams) else LteParams.from_bandwidth(params)
        )

    def modulate(self, ambient, bits, half_frame_start=0):
        """Embed bits at one per two symbols; returns (hybrid, bits_used)."""
        samples = np.array(ambient, dtype=complex)
        bits = np.asarray(bits, dtype=np.int8)
        params = self.params
        half = params.samples_per_frame // 2
        phase = 1.0
        used = 0
        start = int(half_frame_start)
        while start + half <= len(samples) and used < len(bits):
            for slot in range(10):
                last = 5 if slot == 0 else 7
                sym = 0
                while sym + SYMBOLS_PER_BIT <= last and used < len(bits):
                    if bits[used]:
                        phase = -phase
                    lo = start + params.symbol_start(slot, sym)
                    hi = start + params.symbol_start(slot, sym + SYMBOLS_PER_BIT - 1)
                    hi += params.symbol_length(sym + SYMBOLS_PER_BIT - 1)
                    samples[lo:hi] *= phase
                    used += 1
                    sym += SYMBOLS_PER_BIT
            start += half
        return samples, used


@dataclass
class SymbolLteModel:
    """Throughput/BER model for symbol-level LTE backscatter."""

    budget: LinkBudget = field(default_factory=LinkBudget)
    bandwidth_mhz: float = 20.0

    def __post_init__(self):
        self.params = LteParams.from_bandwidth(self.bandwidth_mhz)

    @property
    def processing_gain(self):
        """Coherent integration over a whole symbol's chips."""
        return float(self.params.n_subcarriers)

    def ber(self, enb_to_tag_ft, tag_to_ue_ft):
        snr_db = self.budget.backscatter_snr_db(
            enb_to_tag_ft, tag_to_ue_ft, self.params.sample_rate_hz
        )
        snr = 10.0 ** (snr_db / 10.0) * self.processing_gain
        return float(np.clip(rayleigh_bpsk_ber(snr) + 5e-5, 0.0, 0.5))

    def sync_availability(self, enb_to_tag_ft):
        """Same envelope-detector gate as LScatter (same tag front end)."""
        from scipy.stats import norm

        loss = self.budget.pathloss.loss_db_feet(
            enb_to_tag_ft, self.budget.carrier_hz
        )
        incident = (
            self.budget.tx_power_dbm - loss + self.budget.system_gain_db / 2.0
        )
        sigma = max(self.budget.pathloss.shadowing_db, 2.0)
        return float(norm.cdf((incident - TAG_SENSITIVITY_DBM) / sigma))

    def throughput_bps(self, enb_to_tag_ft, tag_to_ue_ft):
        ber = self.ber(enb_to_tag_ft, tag_to_ue_ft)
        availability = self.sync_availability(enb_to_tag_ft)
        return availability * RAW_BIT_RATE_BPS * (1.0 - ber)
