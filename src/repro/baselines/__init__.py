"""Baseline backscatter systems the paper compares against.

* :mod:`repro.baselines.freerider` — ambient WiFi backscatter with
  symbol-level codeword translation (FreeRider-style), both an IQ-level
  tag/receiver pair and the occupancy-gated throughput model.
* :mod:`repro.baselines.symbol_lte` — LTE backscatter using the same
  symbol-level technique (the paper's "Symbol Level LTE Backscatter"
  comparison arm in Figs 23/24/28/29).
* :mod:`repro.baselines.plora` — PLoRa-style ambient LoRa backscatter,
  throughput-starved by the near-zero ambient LoRa traffic.
"""

from repro.baselines.freerider import (
    FreeRiderTag,
    FreeRiderReceiver,
    WifiBackscatterModel,
)
from repro.baselines.symbol_lte import SymbolLevelLteTag, SymbolLteModel
from repro.baselines.plora import PLoraModel

__all__ = [
    "FreeRiderTag",
    "FreeRiderReceiver",
    "WifiBackscatterModel",
    "SymbolLevelLteTag",
    "SymbolLteModel",
    "PLoraModel",
]
