"""Zadoff-Chu sequences (the mathematics behind the LTE PSS).

A Zadoff-Chu sequence of odd length ``N`` and root ``u`` (coprime with N) is

    x_u(n) = exp(-j pi u n (n + 1) / N)

Its two defining properties — constant amplitude and zero cyclic
autocorrelation at all non-zero lags — are what make the PSS detectable by
simple correlation, and both are covered by tests.
"""

from __future__ import annotations

import math

import numpy as np


def zadoff_chu(root, length):
    """Generate a Zadoff-Chu sequence of odd ``length`` with the given root.

    >>> z = zadoff_chu(25, 63)
    >>> np.allclose(np.abs(z), 1.0)
    True
    """
    length = int(length)
    root = int(root)
    if length <= 0:
        raise ValueError("length must be positive")
    if length % 2 == 0:
        raise ValueError("only odd-length Zadoff-Chu sequences are supported")
    if math.gcd(root, length) != 1:
        raise ValueError(f"root {root} is not coprime with length {length}")
    n = np.arange(length)
    return np.exp(-1j * np.pi * root * n * (n + 1) / length)


def cyclic_autocorrelation(sequence):
    """Normalised cyclic autocorrelation at every lag.

    For an ideal Zadoff-Chu sequence the result is 1 at lag 0 and ~0
    elsewhere.
    """
    sequence = np.asarray(sequence, dtype=complex)
    n = len(sequence)
    spectrum = np.fft.fft(sequence)
    corr = np.fft.ifft(spectrum * np.conj(spectrum))
    return np.abs(corr) / float(n)
