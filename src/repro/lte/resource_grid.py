"""The LTE downlink resource grid for one 10 ms frame.

A grid is a ``(140, n_subcarriers)`` complex array — 20 slots x 7 symbols
by the carrier's occupied subcarriers — plus a parallel occupancy mask
recording what each resource element carries (PSS, SSS, CRS, PDSCH data).
The frame builder fills it; the OFDM modulator serialises it to IQ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.lte.params import (
    LteParams,
    SLOTS_PER_FRAME,
    SYMBOLS_PER_SLOT,
)
from repro.lte.pss import PSS_SLOTS, PSS_SYMBOL_IN_SLOT
from repro.lte.sss import SSS_SLOTS, SSS_SYMBOL_IN_SLOT
from repro.lte.crs import CRS_SYMBOLS_IN_SLOT, crs_positions


class ReKind(IntEnum):
    """What a resource element carries."""

    EMPTY = 0
    PSS = 1
    SSS = 2
    CRS = 3
    DATA = 4
    PBCH = 5


#: Total OFDM symbols in one frame.
SYMBOLS_PER_FRAME = SLOTS_PER_FRAME * SYMBOLS_PER_SLOT


def symbol_index(slot, symbol_in_slot):
    """Flatten (slot, symbol-in-slot) to a 0..139 frame symbol index."""
    if not 0 <= slot < SLOTS_PER_FRAME:
        raise ValueError(f"slot {slot} out of range")
    if not 0 <= symbol_in_slot < SYMBOLS_PER_SLOT:
        raise ValueError(f"symbol {symbol_in_slot} out of range")
    return slot * SYMBOLS_PER_SLOT + symbol_in_slot


@dataclass
class ResourceGrid:
    """One frame's resource elements and their kinds."""

    params: LteParams
    values: np.ndarray = field(init=False)
    kinds: np.ndarray = field(init=False)

    def __post_init__(self):
        shape = (SYMBOLS_PER_FRAME, self.params.n_subcarriers)
        self.values = np.zeros(shape, dtype=complex)
        self.kinds = np.full(shape, ReKind.EMPTY, dtype=np.int8)

    # -- placement helpers -------------------------------------------------

    def centre_indices(self, count):
        """Grid column indices of the ``count`` subcarriers around DC.

        Used for PSS/SSS which always occupy the centre 62 subcarriers.
        Grid columns 0..n/2-1 are negative frequencies (ascending towards
        DC); columns n/2.. are positive frequencies.
        """
        n = self.params.n_subcarriers
        half = count // 2
        low = np.arange(n // 2 - half, n // 2)
        high = np.arange(n // 2, n // 2 + count - half)
        return np.concatenate([low, high])

    def place(self, slot, symbol_in_slot, columns, values, kind):
        """Write ``values`` into one symbol's columns, recording ``kind``."""
        row = symbol_index(slot, symbol_in_slot)
        columns = np.asarray(columns, dtype=np.int64)
        if np.any(self.kinds[row, columns] != ReKind.EMPTY):
            raise ValueError(
                f"resource collision at slot {slot} symbol {symbol_in_slot}"
            )
        self.values[row, columns] = values
        self.kinds[row, columns] = kind

    def data_positions(self):
        """(row, column) arrays of every RE available for PDSCH data.

        Everything not already taken by PSS/SSS/CRS, in time-major order
        (the mapping order used by both the transmitter and the receiver).
        """
        free = self.kinds == ReKind.EMPTY
        rows, cols = np.nonzero(free)
        return rows, cols

    def mark_data(self, rows, cols, values):
        """Fill PDSCH data REs."""
        self.values[rows, cols] = values
        self.kinds[rows, cols] = ReKind.DATA

    # -- structural queries -------------------------------------------------

    def sync_symbol_rows(self):
        """Frame-symbol rows carrying PSS or SSS (the tag must avoid these)."""
        rows = []
        for slot in PSS_SLOTS:
            rows.append(symbol_index(slot, PSS_SYMBOL_IN_SLOT))
        for slot in SSS_SLOTS:
            rows.append(symbol_index(slot, SSS_SYMBOL_IN_SLOT))
        return sorted(rows)

    def crs_mask(self, cell_id):
        """Boolean mask (same shape as values) of CRS positions."""
        mask = np.zeros_like(self.kinds, dtype=bool)
        for slot in range(SLOTS_PER_FRAME):
            for sym in CRS_SYMBOLS_IN_SLOT:
                row = symbol_index(slot, sym)
                cols = crs_positions(sym, cell_id, self.params.n_rb)
                mask[row, cols] = True
        return mask
