"""Downlink frame construction: PSS + SSS + CRS + PDSCH.

:class:`FrameBuilder` assembles a standard-shaped 10 ms frame:

* PSS in the last symbol of slots 0 and 10 (centre 62 subcarriers);
* SSS in the symbol before each PSS;
* port-0 CRS on symbols 0 and 4 of every slot;
* every remaining resource element carries PDSCH data — one transport
  block per 1 ms subframe, CRC-24A + tail-biting convolutional coded,
  rate matched, scrambled, and QAM modulated.

Control channels (PBCH/PDCCH/PCFICH) are intentionally not modelled: the
paper's experiments only depend on sync signals, reference signals and a
decodable data channel.  Their REs are given to the PDSCH, which slightly
*overstates* baseline LTE throughput uniformly across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lte import coding
from repro.lte.crs import CRS_SYMBOLS_IN_SLOT, crs_positions, crs_values
from repro.lte.modulation import BITS_PER_SYMBOL, modulate
from repro.lte.params import LteParams, SLOTS_PER_FRAME, SUBFRAMES_PER_FRAME
from repro.lte.pss import PSS_SLOTS, PSS_SYMBOL_IN_SLOT, pss_sequence
from repro.lte.resource_grid import ReKind, ResourceGrid, symbol_index
from repro.lte.sss import SSS_SLOTS, SSS_SYMBOL_IN_SLOT, sss_sequence
from repro.utils.rng import make_rng

#: Default code rate target for transport-block sizing (mother code is 1/3).
DEFAULT_CODE_RATE = 1.0 / 3.0


@dataclass(frozen=True)
class CellConfig:
    """Identity and scheduling parameters of the simulated eNodeB."""

    n_id_1: int = 0
    n_id_2: int = 0
    rnti: int = 0x003D
    modulation: str = "qpsk"
    code_rate: float = DEFAULT_CODE_RATE
    #: eNodeB PSS/SSS power offset relative to data REs (dB).  Real
    #: deployments boost sync signals a few dB; the paper's Fig. 4b shows
    #: the PSS clearly brighter than the surrounding traffic, which is what
    #: the tag's envelope circuit keys on.
    sync_boost_db: float = 6.0
    #: Fraction of subframes actually carrying PDSCH data.  An srsLTE
    #: eNodeB with light traffic — the paper's testbed — transmits mostly
    #: sync/reference signals; 1.0 models a full-buffer carrier.
    pdsch_load: float = 1.0

    def __post_init__(self):
        if not 0 <= self.n_id_1 <= 167:
            raise ValueError("N_ID^(1) must be 0..167")
        if self.n_id_2 not in (0, 1, 2):
            raise ValueError("N_ID^(2) must be 0..2")
        if self.modulation not in BITS_PER_SYMBOL:
            raise ValueError(f"unknown modulation {self.modulation!r}")
        if not 0.0 < self.code_rate <= 1.0:
            raise ValueError("code rate must be in (0, 1]")
        if not 0.0 <= self.pdsch_load <= 1.0:
            raise ValueError("pdsch_load must be in [0, 1]")

    @property
    def cell_id(self):
        """Physical cell identity N_ID = 3 * N_ID^(1) + N_ID^(2)."""
        return 3 * self.n_id_1 + self.n_id_2


@dataclass
class TransportBlock:
    """One subframe's PDSCH payload and where it was mapped."""

    subframe: int
    payload_bits: np.ndarray
    coded_length: int
    n_data_res: int
    rows: np.ndarray
    cols: np.ndarray


@dataclass
class LteFrame:
    """A built frame: the grid, its IQ samples, and genie information."""

    params: LteParams
    cell: CellConfig
    frame_number: int
    grid: ResourceGrid
    transport_blocks: list = field(default_factory=list)

    @property
    def payload_bit_count(self):
        """Total PDSCH payload bits (before CRC) in this frame."""
        return int(sum(len(tb.payload_bits) for tb in self.transport_blocks))


class FrameBuilder:
    """Build standard-shaped LTE downlink frames with random payloads."""

    def __init__(self, params, cell=None, rng=None):
        self.params = params if isinstance(params, LteParams) else LteParams.from_bandwidth(params)
        self.cell = cell or CellConfig()
        self.rng = make_rng(rng)

    # -- sync and pilots ----------------------------------------------------

    def _place_sync(self, grid):
        boost = 10.0 ** (self.cell.sync_boost_db / 20.0)
        pss = pss_sequence(self.cell.n_id_2) * boost
        centre62 = grid.centre_indices(62)
        for slot in PSS_SLOTS:
            grid.place(slot, PSS_SYMBOL_IN_SLOT, centre62, pss, ReKind.PSS)
        for slot in SSS_SLOTS:
            subframe = 0 if slot == 0 else 5
            sss = sss_sequence(self.cell.n_id_1, self.cell.n_id_2, subframe)
            grid.place(
                slot,
                SSS_SYMBOL_IN_SLOT,
                centre62,
                sss.astype(complex) * boost,
                ReKind.SSS,
            )

    def _place_crs(self, grid):
        cell_id = self.cell.cell_id
        for slot in range(SLOTS_PER_FRAME):
            for sym in CRS_SYMBOLS_IN_SLOT:
                cols = crs_positions(sym, cell_id, self.params.n_rb)
                values = crs_values(slot, sym, cell_id, self.params.n_rb)
                grid.place(slot, sym, cols, values, ReKind.CRS)

    def _place_pbch(self, grid, frame_number):
        from repro.lte.pbch import Mib, encode_mib, pbch_positions

        mib = Mib(
            bandwidth_mhz=self.params.bandwidth_mhz,
            system_frame_number=int(frame_number) % 1024,
        )
        symbols = encode_mib(mib, self.params, self.cell.cell_id)
        cursor = 0
        for slot, sym, cols in pbch_positions(self.params, self.cell.cell_id):
            take = symbols[cursor : cursor + len(cols)]
            grid.place(slot, sym, cols, take, ReKind.PBCH)
            cursor += len(cols)

    # -- data ---------------------------------------------------------------

    def _transport_block_size(self, n_data_res):
        """Payload bits for a subframe with ``n_data_res`` data REs."""
        bits_per_re = BITS_PER_SYMBOL[self.cell.modulation]
        target = n_data_res * bits_per_re
        size = int(target * self.cell.code_rate) - 24  # CRC-24A overhead
        # Keep at least the encoder memory plus a little payload.
        return max(size, 16)

    def _place_data(self, grid, payloads=None):
        rows, cols = grid.data_positions()
        # Group data REs by subframe (14 symbols each).
        subframe_of_row = rows // 14
        blocks = []
        bits_per_re = BITS_PER_SYMBOL[self.cell.modulation]
        for subframe in range(SUBFRAMES_PER_FRAME):
            in_sf = subframe_of_row == subframe
            sf_rows, sf_cols = rows[in_sf], cols[in_sf]
            n_res = len(sf_rows)
            target_bits = n_res * bits_per_re
            tb_size = self._transport_block_size(n_res)
            if payloads is None and self.rng.random() > self.cell.pdsch_load:
                # Unscheduled subframe: data REs stay silent (light load).
                continue
            if payloads is not None:
                payload = np.asarray(payloads[subframe], dtype=np.int8)
                if len(payload) != tb_size:
                    raise ValueError(
                        f"subframe {subframe} payload must be {tb_size} bits"
                    )
            else:
                payload = self.rng.integers(0, 2, size=tb_size).astype(np.int8)
            with_crc = coding.crc_attach(payload, "crc24a")
            coded = coding.conv_encode(with_crc)
            matched = coding.rate_match(coded, target_bits)
            c_init = coding.pdsch_c_init(self.cell.rnti, subframe, self.cell.cell_id)
            scrambled = coding.scramble_bits(matched, c_init)
            symbols = modulate(scrambled, self.cell.modulation)
            grid.mark_data(sf_rows, sf_cols, symbols)
            blocks.append(
                TransportBlock(
                    subframe=subframe,
                    payload_bits=payload,
                    coded_length=len(coded),
                    n_data_res=n_res,
                    rows=sf_rows,
                    cols=sf_cols,
                )
            )
        return blocks

    # -- public API ----------------------------------------------------------

    def build(self, frame_number=0, payloads=None):
        """Build one frame; returns an :class:`LteFrame`.

        ``payloads`` (optional) supplies the ten per-subframe payload bit
        arrays explicitly — used when re-synthesising a frame from decoded
        transport blocks.
        """
        grid = ResourceGrid(self.params)
        self._place_sync(grid)
        self._place_crs(grid)
        self._place_pbch(grid, frame_number)
        blocks = self._place_data(grid, payloads)
        return LteFrame(
            params=self.params,
            cell=self.cell,
            frame_number=int(frame_number),
            grid=grid,
            transport_blocks=blocks,
        )


def build_structure(params, cell=None):
    """A grid with only PSS/SSS/CRS placed — the frame's fixed skeleton.

    Receivers use this to know which resource elements carry data without
    any genie knowledge of the payload itself (in a real network the same
    information comes from the PDCCH).
    """
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)
    builder = FrameBuilder(params, cell or CellConfig(), rng=0)
    grid = ResourceGrid(params)
    builder._place_sync(grid)
    builder._place_crs(grid)
    builder._place_pbch(grid, frame_number=0)
    return grid
