"""CRS-based channel estimation over the resource grid.

Least-squares estimates at the pilot comb, linear interpolation across
frequency within each CRS symbol, then linear interpolation across time for
the symbols in between.  Also estimates the post-equalisation noise
variance from pilot residuals, which feeds the soft demapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte.crs import CRS_SYMBOLS_IN_SLOT, crs_positions, crs_values
from repro.lte.params import LteParams, SLOTS_PER_FRAME
from repro.lte.resource_grid import SYMBOLS_PER_FRAME, symbol_index


@dataclass
class ChannelEstimate:
    """Per-RE channel gains and a scalar noise-variance estimate."""

    gains: np.ndarray  # (140, n_subcarriers) complex
    noise_variance: float

    def equalize(self, observed):
        """MMSE-flavoured one-tap equalisation of an observed grid."""
        h = self.gains
        power = np.abs(h) ** 2
        return observed * np.conj(h) / np.maximum(power, 1e-12)


def estimate_channel(observed_grid, cell_id, params):
    """Estimate the channel from one observed frame grid.

    ``observed_grid`` is the (140, n_subcarriers) output of
    :func:`repro.lte.ofdm.demodulate_frame`.
    """
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)
    n_sc = params.n_subcarriers
    observed_grid = np.asarray(observed_grid, dtype=complex)
    if observed_grid.shape != (SYMBOLS_PER_FRAME, n_sc):
        raise ValueError(f"grid shape {observed_grid.shape} unexpected")

    pilot_rows = []
    ls_rows = []
    residual_energy = 0.0
    residual_count = 0
    subcarriers = np.arange(n_sc)

    for slot in range(SLOTS_PER_FRAME):
        for sym in CRS_SYMBOLS_IN_SLOT:
            row = symbol_index(slot, sym)
            cols = crs_positions(sym, cell_id, params.n_rb)
            pilots = crs_values(slot, sym, cell_id, params.n_rb)
            ls = observed_grid[row, cols] * np.conj(pilots) / np.abs(pilots) ** 2
            # Smooth across the comb (the channel varies slowly over six
            # subcarriers) and interpolate to every subcarrier.
            kernel = np.ones(3) / 3.0
            padded = np.concatenate([ls[:1], ls, ls[-1:]])
            smoothed = np.convolve(padded, kernel, mode="valid")
            interp_real = np.interp(subcarriers, cols, smoothed.real)
            interp_imag = np.interp(subcarriers, cols, smoothed.imag)
            full = interp_real + 1j * interp_imag
            pilot_rows.append(row)
            ls_rows.append(full)
            # Pilot residuals after smoothing measure the noise (the
            # 3-tap average leaves ~2/3 of the noise in the residual).
            residual = ls - smoothed
            residual_energy += float(np.sum(np.abs(residual) ** 2)) * 1.5
            residual_count += len(cols)

    pilot_rows = np.asarray(pilot_rows)
    ls_rows = np.asarray(ls_rows)  # (n_pilot_symbols, n_sc)

    # Time interpolation: linear between pilot symbols, held at the edges.
    gains = np.empty((SYMBOLS_PER_FRAME, n_sc), dtype=complex)
    all_rows = np.arange(SYMBOLS_PER_FRAME)
    gains_real = np.empty((SYMBOLS_PER_FRAME, n_sc))
    gains_imag = np.empty((SYMBOLS_PER_FRAME, n_sc))
    for col in range(n_sc):
        gains_real[:, col] = np.interp(all_rows, pilot_rows, ls_rows[:, col].real)
        gains_imag[:, col] = np.interp(all_rows, pilot_rows, ls_rows[:, col].imag)
    gains = gains_real + 1j * gains_imag

    noise_variance = residual_energy / max(residual_count, 1)
    # The LS-vs-smoothed residual under-counts noise slightly (the smoothing
    # absorbs some of it); keep a floor so LLRs never blow up.
    noise_variance = max(noise_variance, 1e-10)
    return ChannelEstimate(gains=gains, noise_variance=noise_variance)
