"""Carrier-frequency-offset estimation and correction.

A real UE's oscillator is off by up to ~1 ppm (hundreds of Hz at
680 MHz); uncorrected, the offset rotates the constellation within each
symbol and destroys both the LTE decode and the backscatter chips.  The
classic cyclic-prefix estimator exploits the CP being a copy of the
symbol tail: correlating the two measures the phase slope across exactly
one useful-symbol duration, i.e. the CFO as a fraction of the subcarrier
spacing.
"""

from __future__ import annotations

import numpy as np

from repro.lte.ofdm import frame_layout
from repro.lte.params import (
    LteParams,
    SLOTS_PER_FRAME,
    SUBCARRIER_SPACING_HZ,
    SYMBOLS_PER_SLOT,
)
from repro.lte.resource_grid import SYMBOLS_PER_FRAME


def apply_cfo(samples, cfo_hz, sample_rate_hz, initial_phase=0.0):
    """Impair a waveform with a carrier frequency offset."""
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(len(samples))
    rotation = np.exp(
        1j * (2.0 * np.pi * float(cfo_hz) * n / float(sample_rate_hz) + initial_phase)
    )
    return samples * rotation


def estimate_cfo(samples, params, max_symbols=140):
    """CP-based CFO estimate in Hz over a frame-aligned capture.

    Averages the CP-to-tail correlation of up to ``max_symbols`` symbols;
    unambiguous for offsets within ±7.5 kHz (half the subcarrier spacing),
    far beyond any realistic crystal error.
    """
    samples = np.asarray(samples, dtype=complex)
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)
    layout = frame_layout(params)
    # Symbols tile the frame back-to-back, so the set that fits entirely
    # within the capture is a prefix of the layout.
    n_fit = int(
        np.searchsorted(layout.starts + layout.lengths, len(samples), side="right")
    )
    counted = min(n_fit, int(max_symbols), SYMBOLS_PER_FRAME)
    if counted <= 0:
        raise ValueError("capture shorter than one OFDM symbol")
    fft_size = params.fft_size
    samples_per_slot = params.samples_per_slot
    accumulator = 0.0 + 0.0j
    # Whole slots first: a (n_slots, samples_per_slot) view turns each of
    # the 7 symbol positions into one strided head/tail slice pair — no
    # index arrays, just views into the capture.
    full_slots = counted // SYMBOLS_PER_SLOT
    remainder = counted - full_slots * SYMBOLS_PER_SLOT
    if full_slots:
        by_slot = samples[: full_slots * samples_per_slot].reshape(
            full_slots, samples_per_slot
        )
        for sym in range(SYMBOLS_PER_SLOT):
            cp = int(layout.cp_in_slot[sym])
            start = int(layout.starts_in_slot[sym])
            heads = by_slot[:, start : start + cp]
            tails = by_slot[:, start + fft_size : start + fft_size + cp]
            accumulator += np.sum(np.conj(heads) * tails)
    base = full_slots * samples_per_slot
    for sym in range(remainder):
        cp = int(layout.cp_in_slot[sym])
        start = base + int(layout.starts_in_slot[sym])
        accumulator += np.vdot(
            samples[start : start + cp],
            samples[start + fft_size : start + fft_size + cp],
        )
    # The tail lags the CP by exactly fft_size samples = 1/SCS seconds.
    return float(np.angle(accumulator) / (2.0 * np.pi) * SUBCARRIER_SPACING_HZ)


def correct_cfo(samples, cfo_hz, sample_rate_hz):
    """Derotate a waveform by an estimated CFO."""
    return apply_cfo(samples, -float(cfo_hz), sample_rate_hz)


def estimate_cfo_loop(samples, params, max_symbols=140):
    """Pre-vectorisation ``estimate_cfo``, pinned as the benchmark baseline.

    Kept verbatim — including the original control-flow quirk where the
    inner ``break`` on an incomplete trailing symbol only exits the slot,
    so the outer loop spins through the remaining slots doing nothing.
    The spin never changed the estimate (no symbol fits once one fails to,
    since symbols are back-to-back), which is why the vectorised
    replacement above can drop the loops entirely; equivalence tests
    compare the two to sub-µHz tolerance.
    """
    samples = np.asarray(samples, dtype=complex)
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)
    accumulator = 0.0 + 0.0j
    counted = 0
    offset = 0
    for slot in range(SLOTS_PER_FRAME):
        for sym in range(SYMBOLS_PER_SLOT):
            cp = params.cp_length(sym)
            total = cp + params.fft_size
            if offset + total > len(samples):
                break
            head = samples[offset : offset + cp]
            tail = samples[offset + params.fft_size : offset + total]
            accumulator += np.vdot(head, tail)
            counted += 1
            offset += total
            if counted >= max_symbols:
                break
        if counted >= max_symbols or offset >= len(samples):
            break
    if counted == 0:
        raise ValueError("capture shorter than one OFDM symbol")
    return float(np.angle(accumulator) / (2.0 * np.pi) * SUBCARRIER_SPACING_HZ)
