"""LTE downlink numerology (3GPP TS 36.211, FDD, normal cyclic prefix).

Everything in the reproduction that needs to know "how long is a symbol" or
"how many subcarriers does a 10 MHz carrier have" goes through
:class:`LteParams`.  The paper's basic-timing unit is exactly one sample of
the corresponding FFT, i.e. ``Ts = 66.7 us / fft_size``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.cache import memoize

#: Subcarrier spacing (Hz) — fixed at 15 kHz for LTE.
SUBCARRIER_SPACING_HZ = 15_000.0

#: Useful (non-CP) OFDM symbol duration in seconds: 1/15 kHz.
USEFUL_SYMBOL_SECONDS = 1.0 / SUBCARRIER_SPACING_HZ

#: Symbols per slot with a normal cyclic prefix.
SYMBOLS_PER_SLOT = 7

#: Slots per subframe / subframes per frame.
SLOTS_PER_SUBFRAME = 2
SUBFRAMES_PER_FRAME = 10
SLOTS_PER_FRAME = SLOTS_PER_SUBFRAME * SUBFRAMES_PER_FRAME

#: Slot / subframe / frame durations in seconds.
SLOT_SECONDS = 0.5e-3
SUBFRAME_SECONDS = 1.0e-3
FRAME_SECONDS = 10.0e-3

#: Reference sampling period Ts = 1 / (15000 * 2048) seconds (36.211 §4).
TS_REFERENCE_SECONDS = 1.0 / (SUBCARRIER_SPACING_HZ * 2048)

#: PSS repetition period: twice per 10 ms frame.
PSS_PERIOD_SECONDS = 5.0e-3

#: Number of occupied PSS subcarriers (62 + DC hole) -> 0.93 MHz.
PSS_SUBCARRIERS = 62

#: (bandwidth MHz -> (number of resource blocks, FFT size)) per 36.104.
_BANDWIDTH_TABLE = {
    1.4: (6, 128),
    3.0: (15, 256),
    5.0: (25, 512),
    10.0: (50, 1024),
    15.0: (75, 1536),
    20.0: (100, 2048),
}

#: Subcarriers per resource block.
SUBCARRIERS_PER_RB = 12

#: Supported bandwidths, ascending (MHz).
SUPPORTED_BANDWIDTHS_MHZ = tuple(sorted(_BANDWIDTH_TABLE))


@dataclass(frozen=True)
class LteParams:
    """Derived numerology for one LTE downlink carrier.

    Use :func:`LteParams.from_bandwidth` rather than the constructor.
    """

    bandwidth_mhz: float
    n_rb: int
    fft_size: int
    sample_rate_hz: float = field(init=False)
    n_subcarriers: int = field(init=False)
    cp_first: int = field(init=False)
    cp_other: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(
            self, "sample_rate_hz", self.fft_size * SUBCARRIER_SPACING_HZ
        )
        object.__setattr__(self, "n_subcarriers", self.n_rb * SUBCARRIERS_PER_RB)
        # Normal-CP lengths scale with FFT size: 160/144 at 2048.
        object.__setattr__(self, "cp_first", (160 * self.fft_size) // 2048)
        object.__setattr__(self, "cp_other", (144 * self.fft_size) // 2048)

    @classmethod
    def from_bandwidth(cls, bandwidth_mhz):
        """Build params for one of the six standard LTE bandwidths.

        >>> LteParams.from_bandwidth(20.0).n_subcarriers
        1200
        >>> LteParams.from_bandwidth(1.4).sample_rate_hz
        1920000.0
        """
        key = float(bandwidth_mhz)
        if key not in _BANDWIDTH_TABLE:
            raise ValueError(
                f"unsupported LTE bandwidth {bandwidth_mhz} MHz; "
                f"choose one of {SUPPORTED_BANDWIDTHS_MHZ}"
            )
        n_rb, fft_size = _BANDWIDTH_TABLE[key]
        return cls(bandwidth_mhz=key, n_rb=n_rb, fft_size=fft_size)

    @property
    def basic_timing_unit_seconds(self):
        """Duration of one basic-timing unit (= one sample), the paper's Ts."""
        return 1.0 / self.sample_rate_hz

    @property
    def shift_hz(self):
        """Backscatter frequency shift 1/Ts — equal to the sample rate."""
        return self.sample_rate_hz

    def symbol_length(self, symbol_in_slot):
        """Total samples (CP + useful) of symbol ``symbol_in_slot`` (0..6)."""
        if not 0 <= symbol_in_slot < SYMBOLS_PER_SLOT:
            raise ValueError(f"symbol index {symbol_in_slot} out of range")
        cp = self.cp_first if symbol_in_slot == 0 else self.cp_other
        return cp + self.fft_size

    def cp_length(self, symbol_in_slot):
        """Cyclic-prefix samples of symbol ``symbol_in_slot`` (0..6)."""
        if not 0 <= symbol_in_slot < SYMBOLS_PER_SLOT:
            raise ValueError(f"symbol index {symbol_in_slot} out of range")
        return self.cp_first if symbol_in_slot == 0 else self.cp_other

    @property
    def samples_per_slot(self):
        """Samples in one 0.5 ms slot."""
        return sum(self.symbol_length(i) for i in range(SYMBOLS_PER_SLOT))

    @property
    def samples_per_subframe(self):
        """Samples in one 1 ms subframe."""
        return 2 * self.samples_per_slot

    @property
    def samples_per_frame(self):
        """Samples in one 10 ms frame."""
        return SUBFRAMES_PER_FRAME * self.samples_per_subframe

    def symbol_start(self, slot, symbol_in_slot):
        """Sample offset (from frame start) of a symbol's first CP sample."""
        if not 0 <= slot < SLOTS_PER_FRAME:
            raise ValueError(f"slot index {slot} out of range")
        offset = slot * self.samples_per_slot
        for sym in range(symbol_in_slot):
            offset += self.symbol_length(sym)
        return offset

    def useful_start(self, slot, symbol_in_slot):
        """Sample offset of the first *useful* (post-CP) sample of a symbol."""
        return self.symbol_start(slot, symbol_in_slot) + self.cp_length(symbol_in_slot)

    def subcarrier_indices(self):
        """FFT bin index for each of the ``n_subcarriers`` data subcarriers.

        Subcarrier ``k`` (0-based from the lowest frequency) maps around DC
        with the DC bin itself unused, matching 36.211 resource-grid
        conventions.  Cached per numerology; the returned array is
        read-only — copy before mutating.
        """
        return _subcarrier_indices(self.n_subcarriers, self.fft_size)


@memoize()
def _subcarrier_indices(n_subcarriers, fft_size):
    half = n_subcarriers // 2
    low = (np.arange(half) - half) % fft_size
    high = np.arange(1, half + 1)
    return np.concatenate([low, high])
