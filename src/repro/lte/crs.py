"""Cell-specific reference signals (CRS, 36.211 §6.10.1) — antenna port 0.

These are the "reference signals on different subcarriers in the original
LTE PHY layer" that LScatter's receiver exploits to eliminate the
backscatter phase offset (paper Eq. 6), so their exact placement and values
matter to the reproduction:

* symbols 0 and 4 of every slot (normal CP, port 0);
* every 6th subcarrier, with a cell-dependent frequency shift
  ``v_shift = N_cell_ID mod 6`` and an extra +3 shift on symbol 4;
* values are QPSK points drawn from a Gold sequence seeded by
  (slot, symbol, cell id).
"""

from __future__ import annotations

import numpy as np

from repro.lte.gold import gold_qpsk
from repro.utils.cache import memoize

#: Symbols within a slot that carry CRS on port 0 (normal CP).
CRS_SYMBOLS_IN_SLOT = (0, 4)

#: Maximum downlink resource blocks, used as the sequence-index anchor.
N_RB_MAX = 110


def crs_c_init(slot, symbol_in_slot, cell_id, normal_cp=True):
    """Gold-sequence initial state for one CRS symbol (36.211 §6.10.1.1)."""
    n_cp = 1 if normal_cp else 0
    return (
        1024 * (7 * (slot + 1) + symbol_in_slot + 1) * (2 * cell_id + 1)
        + 2 * cell_id
        + n_cp
    )


def crs_subcarrier_offset(symbol_in_slot, cell_id):
    """Frequency offset (0..5) of the CRS comb for port 0."""
    if symbol_in_slot == 0:
        v = 0
    elif symbol_in_slot == 4:
        v = 3
    else:
        raise ValueError(
            f"symbol {symbol_in_slot} does not carry CRS on port 0 (normal CP)"
        )
    return (v + cell_id % 6) % 6


@memoize()
def crs_positions(symbol_in_slot, cell_id, n_rb):
    """Data-subcarrier indices (0-based, low frequency first) carrying CRS.

    Returns ``2 * n_rb`` indices, one every 6 subcarriers.
    """
    offset = crs_subcarrier_offset(symbol_in_slot, cell_id)
    m = np.arange(2 * n_rb)
    return 6 * m + offset


@memoize()
def crs_values(slot, symbol_in_slot, cell_id, n_rb, normal_cp=True):
    """Complex CRS pilot values aligned with :func:`crs_positions`.

    The Gold sequence is generated for the maximal 110-RB grid and the
    centre ``2 * n_rb`` pilots are sliced out, so a narrowband receiver
    sees the same pilots as a wideband one (36.211's ``m' = m + 110 - N_RB``).
    """
    c_init = crs_c_init(slot, symbol_in_slot, cell_id, normal_cp)
    full = gold_qpsk(c_init, 2 * N_RB_MAX)
    start = N_RB_MAX - n_rb
    return full[start : start + 2 * n_rb]
