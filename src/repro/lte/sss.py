"""Secondary synchronisation signal (36.211 §6.11.2).

The SSS is a 62-bit interleaving of two length-31 m-sequence cyclic shifts
``m0``/``m1`` (derived from the cell-identity group ``N_ID^(1)``),
scrambled by sequences that depend on ``N_ID^(2)``.  Subframe 0 and
subframe 5 transmit different concatenations, which is how a UE learns
frame (10 ms) timing from a single SSS observation.

The tag never decodes the SSS — it only needs to *avoid* it — but the UE
model uses it for frame timing and full cell identity, and the
"critical information survives backscatter" experiments verify it end to
end.
"""

from __future__ import annotations

import numpy as np

from repro.utils.cache import memoize

#: Symbol index within the slot that carries the SSS (one before the PSS).
SSS_SYMBOL_IN_SLOT = 5

#: Slots carrying the SSS, for FDD.
SSS_SLOTS = (0, 10)


def _m_sequence(taps_register_update, length=31):
    """Generate a +/-1 m-sequence of length 31 from an update function."""
    x = [0, 0, 0, 0, 1]
    for i in range(length - 5):
        x.append(taps_register_update(x, i))
    return 1 - 2 * np.array(x, dtype=int)


@memoize()
def _s_tilde():
    return _m_sequence(lambda x, i: (x[i + 2] + x[i]) % 2)


@memoize()
def _c_tilde():
    return _m_sequence(lambda x, i: (x[i + 3] + x[i]) % 2)


@memoize()
def _z_tilde():
    return _m_sequence(lambda x, i: (x[i + 4] + x[i + 2] + x[i + 1] + x[i]) % 2)


def sss_m0_m1(n_id_1):
    """Map cell-identity group ``N_ID^(1)`` (0..167) to the pair (m0, m1)."""
    if not 0 <= n_id_1 <= 167:
        raise ValueError(f"N_ID^(1) must be 0..167, got {n_id_1}")
    q_prime = n_id_1 // 30
    q = (n_id_1 + q_prime * (q_prime + 1) // 2) // 30
    m_prime = n_id_1 + q * (q + 1) // 2
    m0 = m_prime % 31
    m1 = (m0 + m_prime // 31 + 1) % 31
    return m0, m1


@memoize()
def sss_sequence(n_id_1, n_id_2, subframe):
    """62-element +/-1 SSS for subframe 0 or 5.

    >>> s0 = sss_sequence(0, 0, 0)
    >>> len(s0), set(np.unique(s0)) <= {-1, 1}
    (62, True)
    """
    if subframe not in (0, 5):
        raise ValueError("SSS only transmitted in subframes 0 and 5")
    if n_id_2 not in (0, 1, 2):
        raise ValueError(f"N_ID^(2) must be 0, 1 or 2, got {n_id_2}")
    m0, m1 = sss_m0_m1(n_id_1)

    s_tilde = _s_tilde()
    c_tilde = _c_tilde()
    z_tilde = _z_tilde()

    n = np.arange(31)
    s0 = s_tilde[(n + m0) % 31]
    s1 = s_tilde[(n + m1) % 31]
    c0 = c_tilde[(n + n_id_2) % 31]
    c1 = c_tilde[(n + n_id_2 + 3) % 31]
    z1_m0 = z_tilde[(n + (m0 % 8)) % 31]
    z1_m1 = z_tilde[(n + (m1 % 8)) % 31]

    d = np.empty(62, dtype=int)
    if subframe == 0:
        d[0::2] = s0 * c0
        d[1::2] = s1 * c1 * z1_m0
    else:
        d[0::2] = s1 * c0
        d[1::2] = s0 * c1 * z1_m1
    return d


def detect_sss(observed, n_id_2):
    """Identify ``(N_ID^(1), subframe)`` from a demodulated 62-element SSS.

    ``observed`` is the (equalised) frequency-domain SSS; detection is by
    maximum real correlation against all 168 x 2 hypotheses.  Returns
    ``(n_id_1, subframe, metric)``.
    """
    observed = np.asarray(observed, dtype=complex)
    if observed.shape != (62,):
        raise ValueError("observed SSS must have exactly 62 elements")
    best = (-1, -1, -np.inf)
    for n_id_1 in range(168):
        for subframe in (0, 5):
            candidate = sss_sequence(n_id_1, n_id_2, subframe)
            metric = float(np.real(np.vdot(candidate.astype(complex), observed)))
            if metric > best[2]:
                best = (n_id_1, subframe, metric)
    return best
