"""Full LTE downlink receiver: the simulated UE.

Decodes frame-aligned captures end to end — OFDM demodulation, CRS channel
estimation, one-tap equalisation, soft demapping, descrambling, rate
recovery, Viterbi decoding, and CRC verification — and reports throughput
as *transport blocks that pass CRC*, which is exactly the paper's notion of
LTE throughput in the Fig. 32 impact experiment.

Scheduling knowledge (modulation, code rate, transport-block sizing) comes
from the :class:`~repro.lte.frame.CellConfig`, standing in for the PDCCH.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lte import coding
from repro.lte.channel_est import estimate_channel
from repro.lte.frame import CellConfig, build_structure
from repro.lte.modulation import BITS_PER_SYMBOL, demodulate_llr
from repro.lte.ofdm import demodulate_frame
from repro.lte.params import LteParams, SUBFRAMES_PER_FRAME, FRAME_SECONDS
from repro.lte.resource_grid import ReKind
from repro.obs.trace import span


@dataclass
class SubframeResult:
    """Decode outcome for one transport block."""

    frame: int
    subframe: int
    crc_ok: bool
    payload_bits: int
    decoded: np.ndarray


@dataclass
class LteDecodeResult:
    """Aggregate decode outcome over a capture."""

    subframes: list = field(default_factory=list)
    duration_seconds: float = 0.0
    evm_rms: float = float("nan")

    @property
    def throughput_bps(self):
        """Bits of CRC-passing transport blocks per second of capture."""
        good = sum(sf.payload_bits for sf in self.subframes if sf.crc_ok)
        if self.duration_seconds <= 0:
            return 0.0
        return good / self.duration_seconds

    @property
    def block_error_rate(self):
        if not self.subframes:
            return float("nan")
        bad = sum(1 for sf in self.subframes if not sf.crc_ok)
        return bad / len(self.subframes)


class LteReceiver:
    """Decode frame-aligned IQ captures for a known cell configuration."""

    def __init__(self, params, cell=None):
        self.params = params if isinstance(params, LteParams) else LteParams.from_bandwidth(params)
        self.cell = cell or CellConfig()
        self._structure = build_structure(self.params, self.cell)
        rows, cols = self._structure.data_positions()
        self._data_rows = rows
        self._data_cols = cols

    def _subframe_bits(self, subframe):
        """Coded-bit budget and TB size for one subframe (mirrors builder)."""
        in_sf = self._data_rows // 14 == subframe
        n_res = int(np.count_nonzero(in_sf))
        bits_per_re = BITS_PER_SYMBOL[self.cell.modulation]
        target_bits = n_res * bits_per_re
        tb_size = max(int(target_bits * self.cell.code_rate) - 24, 16)
        return in_sf, target_bits, tb_size

    def decode_mib(self, samples):
        """Decode the MIB from one frame of samples (PBCH bootstrap).

        Returns ``(Mib or None, crc_ok)``.  A real UE runs this right
        after cell search to learn the bandwidth and frame number.
        """
        from repro.lte.pbch import decode_mib, pbch_positions

        observed = demodulate_frame(self.params, samples)
        estimate = estimate_channel(observed, self.cell.cell_id, self.params)
        equalized = estimate.equalize(observed)
        chunks = []
        for slot, sym, cols in pbch_positions(self.params, self.cell.cell_id):
            row = slot * 7 + sym
            chunks.append(equalized[row, cols])
        symbols = np.concatenate(chunks)
        return decode_mib(
            symbols, self.params, self.cell.cell_id, estimate.noise_variance
        )

    def decode_frame(self, samples, frame_number=0):
        """Decode one frame of samples; returns a list of SubframeResult."""
        observed = demodulate_frame(self.params, samples)
        with span("lte.channel_est"):
            estimate = estimate_channel(observed, self.cell.cell_id, self.params)
            equalized = estimate.equalize(observed)

        # Post-equalisation noise variance per RE: sigma^2 / |H|^2.
        gain_power = np.maximum(np.abs(estimate.gains) ** 2, 1e-12)
        re_noise = estimate.noise_variance / gain_power

        softs = []
        sizes = []
        with span("lte.demap"):
            for subframe in range(SUBFRAMES_PER_FRAME):
                in_sf, target_bits, tb_size = self._subframe_bits(subframe)
                rows = self._data_rows[in_sf]
                cols = self._data_cols[in_sf]
                symbols = equalized[rows, cols]
                noise = re_noise[rows, cols]
                llrs = demodulate_llr(symbols, self.cell.modulation, noise)
                c_init = coding.pdsch_c_init(
                    self.cell.rnti, subframe, self.cell.cell_id
                )
                llrs = coding.descramble_llrs(llrs, c_init)
                coded_length = 3 * (tb_size + 24)
                softs.append(coding.rate_recover(llrs, coded_length))
                sizes.append(tb_size + 24)

        with span("lte.viterbi"):
            decoded_blocks = coding.viterbi_decode_many(softs, sizes)
        results = []
        for subframe, decoded in enumerate(decoded_blocks):
            payload, ok = coding.crc_check(decoded, "crc24a")
            results.append(
                SubframeResult(
                    frame=frame_number,
                    subframe=subframe,
                    crc_ok=ok,
                    payload_bits=len(payload),
                    decoded=payload,
                )
            )
        return results, equalized

    def decode(self, samples, reference_frames=None):
        """Decode a frame-aligned capture of one or more frames.

        ``reference_frames`` (optional list of :class:`LteFrame`) enables
        EVM measurement against the transmitted grid.
        """
        samples = np.asarray(samples, dtype=complex)
        n = self.params.samples_per_frame
        n_frames = len(samples) // n
        if n_frames < 1:
            raise ValueError("capture shorter than one frame")
        result = LteDecodeResult(duration_seconds=n_frames * FRAME_SECONDS)
        evm_num = 0.0
        evm_den = 0.0
        for f in range(n_frames):
            subframes, equalized = self.decode_frame(
                samples[f * n : (f + 1) * n], frame_number=f
            )
            result.subframes.extend(subframes)
            if reference_frames is not None and f < len(reference_frames):
                ref = reference_frames[f].grid
                mask = ref.kinds == ReKind.DATA
                err = equalized[mask] - ref.values[mask]
                evm_num += float(np.sum(np.abs(err) ** 2))
                evm_den += float(np.sum(np.abs(ref.values[mask]) ** 2))
        if evm_den > 0:
            result.evm_rms = float(np.sqrt(evm_num / evm_den))
        return result
