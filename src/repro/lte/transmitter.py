"""The simulated eNodeB: turns frames into a continuous IQ stream.

LTE downlink traffic is continuous — the property the whole paper rests on
— so the transmitter emits back-to-back frames with no gaps.  The returned
:class:`LteCapture` keeps the genie data (grids, payloads) that evaluation
code uses to compute error rates without re-deriving ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lte.frame import CellConfig, FrameBuilder, LteFrame
from repro.lte.ofdm import modulate_frame
from repro.lte.params import LteParams
from repro.obs.trace import span
from repro.utils.rng import make_rng


@dataclass
class LteCapture:
    """IQ samples plus ground truth for one contiguous transmission."""

    params: LteParams
    cell: CellConfig
    samples: np.ndarray
    frames: list = field(default_factory=list)

    @property
    def duration_seconds(self):
        return len(self.samples) / self.params.sample_rate_hz

    def frame_samples(self, index):
        """Slice the IQ samples of frame ``index``."""
        n = self.params.samples_per_frame
        return self.samples[index * n : (index + 1) * n]


class LteTransmitter:
    """Generate continuous standard-shaped LTE downlink IQ."""

    def __init__(self, bandwidth_mhz=20.0, cell=None, rng=None):
        self.params = LteParams.from_bandwidth(bandwidth_mhz)
        self.cell = cell or CellConfig()
        self.rng = make_rng(rng)
        self._builder = FrameBuilder(self.params, self.cell, self.rng)

    def transmit(self, n_frames=1):
        """Build ``n_frames`` back-to-back frames and their IQ stream.

        >>> cap = LteTransmitter(1.4, rng=0).transmit(1)
        >>> cap.samples.shape[0] == cap.params.samples_per_frame
        True
        """
        if n_frames < 1:
            raise ValueError("need at least one frame")
        frames = []
        chunks = []
        with span("lte.transmit") as sp:
            for n in range(int(n_frames)):
                frame = self._builder.build(frame_number=n)
                frames.append(frame)
                chunks.append(modulate_frame(frame.grid))
            samples = np.concatenate(chunks)
            sp.set(n_frames=int(n_frames), n_samples=len(samples))
        return LteCapture(
            params=self.params, cell=self.cell, samples=samples, frames=frames
        )
