"""Length-31 Gold pseudo-random sequence generator (36.211 §7.2).

Used for cell-specific reference signals and PDSCH scrambling.  The
generator is the standard pair of length-31 LFSRs with the first
``Nc = 1600`` outputs discarded.  Sequences are memoised per
``(c_init, length)`` since the frame builder asks for the same pilot
sequences every frame.
"""

from __future__ import annotations

import numpy as np

from repro.utils.cache import memoize

#: Number of initial outputs discarded, per 36.211.
NC_DISCARD = 1600


@memoize(maxsize=4096)
def _gold_cached(c_init, length):
    total = NC_DISCARD + length
    # x1 starts as 1,0,0,...; x2 encodes c_init LSB-first.
    x1 = np.zeros(total + 31, dtype=np.int8)
    x2 = np.zeros(total + 31, dtype=np.int8)
    x1[0] = 1
    for i in range(31):
        x2[i] = (c_init >> i) & 1
    for n in range(total):
        x1[n + 31] = (x1[n + 3] ^ x1[n]) & 1
        x2[n + 31] = (x2[n + 3] ^ x2[n + 2] ^ x2[n + 1] ^ x2[n]) & 1
    return (x1[NC_DISCARD:total] ^ x2[NC_DISCARD:total]).astype(np.int8)


def gold_sequence(c_init, length):
    """Return ``length`` pseudo-random bits for initial state ``c_init``.

    >>> bits = gold_sequence(0x1234, 100)
    >>> len(bits), set(np.unique(bits)) <= {0, 1}
    (100, True)
    """
    c_init = int(c_init) & 0x7FFFFFFF
    length = int(length)
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        return np.zeros(0, dtype=np.int8)
    return _gold_cached(c_init, length)


def gold_qpsk(c_init, n_symbols):
    """Map a Gold sequence to unit-power QPSK pilots (36.211 eq. for CRS).

    r(m) = (1 - 2 c(2m))/sqrt(2) + j (1 - 2 c(2m+1))/sqrt(2)
    """
    bits = gold_sequence(c_init, 2 * int(n_symbols)).astype(float)
    i = (1.0 - 2.0 * bits[0::2]) / np.sqrt(2.0)
    q = (1.0 - 2.0 * bits[1::2]) / np.sqrt(2.0)
    return i + 1j * q
