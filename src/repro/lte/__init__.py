"""LTE downlink PHY substrate (3GPP TS 36.211/36.212 subset).

Everything the LScatter system needs from LTE, built from scratch:
numerology for all six bandwidths, PSS/SSS synchronisation signals,
cell-specific reference signals, QAM modulation, the convolutional coding
chain, OFDM, a frame builder/transmitter (the eNodeB), and a full receiver
(the UE) including cell search and channel estimation.
"""

from repro.lte.params import (
    LteParams,
    SUPPORTED_BANDWIDTHS_MHZ,
    USEFUL_SYMBOL_SECONDS,
    PSS_PERIOD_SECONDS,
)
from repro.lte.frame import CellConfig, FrameBuilder, LteFrame, build_structure
from repro.lte.transmitter import LteTransmitter, LteCapture
from repro.lte.receiver import LteReceiver, LteDecodeResult
from repro.lte.cell_search import cell_search, CellSearchResult
from repro.lte.pbch import Mib
from repro.lte.cfo import apply_cfo, correct_cfo, estimate_cfo

__all__ = [
    "LteParams",
    "SUPPORTED_BANDWIDTHS_MHZ",
    "USEFUL_SYMBOL_SECONDS",
    "PSS_PERIOD_SECONDS",
    "CellConfig",
    "FrameBuilder",
    "LteFrame",
    "build_structure",
    "LteTransmitter",
    "LteCapture",
    "LteReceiver",
    "LteDecodeResult",
    "cell_search",
    "CellSearchResult",
    "Mib",
    "apply_cfo",
    "correct_cfo",
    "estimate_cfo",
]
