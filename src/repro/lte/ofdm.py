"""OFDM modulation/demodulation between resource grids and IQ samples.

Conventions:

* the IFFT is scaled by ``sqrt(fft_size)`` so subcarrier power equals
  time-domain sample power (unit-power QPSK subcarriers give unit-power
  samples when the grid is full);
* each symbol is prefixed with its normal cyclic prefix (160/144 scaled to
  the FFT size);
* the demodulator takes the FFT over the useful part, starting right after
  the CP.

The frame-level entry points (:func:`modulate_frame`,
:func:`demodulate_frame`) are the innermost hot path of the whole
reproduction — every eNodeB transmit, every UE decode, and every fleet
tag's reference reconstruction runs through them.  They batch the
per-symbol transforms into grouped ``fft``/``ifft`` calls over stacked
symbol matrices, with all start/length index arrays precomputed once per
:class:`~repro.lte.params.LteParams` (see :func:`frame_layout`).  The
batches are processed in slot-sized chunks so the working set stays
cache-resident, and are farmed to all available cores through
``scipy.fft``'s ``workers`` support.

Batching does not change a single output bit: row-wise pocketfft
transforms are bit-identical to the per-symbol 1-D calls, and the scaling
and (de)mapping steps are elementwise.  The pre-vectorisation loops are
pinned verbatim as :func:`modulate_frame_loop` /
:func:`demodulate_frame_loop`; golden tests assert ``array_equal`` between
the two, and the perf benchmark measures the speedup against them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import scipy.fft as _scipy_fft

from repro.lte.params import SLOTS_PER_FRAME, SYMBOLS_PER_SLOT
from repro.lte.resource_grid import SYMBOLS_PER_FRAME, symbol_index
from repro.obs.trace import span
from repro.utils.cache import memoize

#: Worker threads for batched transforms (scipy.fft releases the GIL and
#: splits independent rows across cores; 1 on single-core machines).
FFT_WORKERS = os.cpu_count() or 1

#: Slots per batched-FFT chunk.  Two slots (14 symbols) keep the chunk's
#: input+output matrices inside a typical L2 cache at 20 MHz (2 x 448 KiB)
#: while amortising the per-call FFT dispatch overhead.
CHUNK_SLOTS = 2


@dataclass(frozen=True)
class FrameLayout:
    """Precomputed per-frame symbol geometry for one :class:`LteParams`.

    All arrays are read-only (cached via :mod:`repro.utils.cache`).
    ``*_in_slot`` arrays have shape (7,), frame-wide arrays shape (140,).
    """

    cp_in_slot: np.ndarray  # CP length of each symbol within a slot
    starts_in_slot: np.ndarray  # symbol start offset within its slot
    useful_starts_in_slot: np.ndarray  # post-CP offset within the slot
    starts: np.ndarray  # symbol start offset within the frame
    cp_lengths: np.ndarray  # CP length of each frame symbol
    lengths: np.ndarray  # CP + useful length of each frame symbol
    useful_starts: np.ndarray  # post-CP offset within the frame


@memoize()
def frame_layout(params):
    """Start/length index arrays of every OFDM symbol in a 10 ms frame."""
    cp_in_slot = np.array(
        [params.cp_length(sym) for sym in range(SYMBOLS_PER_SLOT)], dtype=np.int64
    )
    lengths_in_slot = cp_in_slot + params.fft_size
    starts_in_slot = np.concatenate(([0], np.cumsum(lengths_in_slot)[:-1]))
    cp_lengths = np.tile(cp_in_slot, SLOTS_PER_FRAME)
    lengths = cp_lengths + params.fft_size
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return FrameLayout(
        cp_in_slot=cp_in_slot,
        starts_in_slot=starts_in_slot,
        useful_starts_in_slot=starts_in_slot + cp_in_slot,
        starts=starts,
        cp_lengths=cp_lengths,
        lengths=lengths,
        useful_starts=starts + cp_lengths,
    )


def row_fft(values):
    """Row-wise FFT along the last axis, farmed to all cores.

    Bit-identical to calling ``np.fft.fft`` on each row (both are
    pocketfft; the golden tests in ``tests/bsrx`` pin this).  Used by the
    batched cross-tag demodulator, where the leading axes are tags.
    """
    return _scipy_fft.fft(values, axis=-1, workers=FFT_WORKERS)


def row_ifft(values):
    """Row-wise inverse FFT along the last axis; see :func:`row_fft`."""
    return _scipy_fft.ifft(values, axis=-1, workers=FFT_WORKERS)


def modulate_symbol(params, subcarrier_values, symbol_in_slot):
    """IFFT one symbol's subcarriers and prepend its cyclic prefix."""
    bins = np.zeros(params.fft_size, dtype=complex)
    bins[params.subcarrier_indices()] = subcarrier_values
    useful = np.fft.ifft(bins) * np.sqrt(params.fft_size)
    cp = params.cp_length(symbol_in_slot)
    return np.concatenate([useful[-cp:], useful])


def modulate_frame(grid):
    """Serialise a full :class:`ResourceGrid` to one frame of IQ samples.

    Vectorised: symbols are IFFT'd in slot-chunk batches and scattered
    into the output timeline through the precomputed
    :func:`frame_layout` — bit-identical to :func:`modulate_frame_loop`.
    """
    with span("lte.ofdm.modulate"):
        return _modulate_frame(grid)


def _modulate_frame(grid):
    params = grid.params
    layout = frame_layout(params)
    fft_size = params.fft_size
    half = params.n_subcarriers // 2
    scale = np.sqrt(fft_size)
    samples_per_slot = params.samples_per_slot
    n_chunk = CHUNK_SLOTS * SYMBOLS_PER_SLOT

    # Occupied bins: subcarriers 0..half-1 map to fft_size-half.., the
    # rest to 1..half (DC unused) — two contiguous blocks, so the scatter
    # is two slice copies.  Unoccupied bins stay zero across chunks.
    bins = np.zeros((n_chunk, fft_size), dtype=complex)
    out = np.empty(params.samples_per_frame, dtype=complex)
    by_slot = out.reshape(SLOTS_PER_FRAME, samples_per_slot)
    values = grid.values
    cp = layout.cp_in_slot
    sym_start = layout.starts_in_slot
    useful_start = layout.useful_starts_in_slot

    for slot0 in range(0, SLOTS_PER_FRAME, CHUNK_SLOTS):
        row0 = slot0 * SYMBOLS_PER_SLOT
        bins[:, fft_size - half :] = values[row0 : row0 + n_chunk, :half]
        bins[:, 1 : half + 1] = values[row0 : row0 + n_chunk, half:]
        useful = _scipy_fft.ifft(bins, axis=1, workers=FFT_WORKERS)
        useful *= scale
        stacked = useful.reshape(CHUNK_SLOTS, SYMBOLS_PER_SLOT, fft_size)
        chunk_out = by_slot[slot0 : slot0 + CHUNK_SLOTS]
        for sym in range(SYMBOLS_PER_SLOT):
            u0 = useful_start[sym]
            chunk_out[:, u0 : u0 + fft_size] = stacked[:, sym]
            s0 = sym_start[sym]
            chunk_out[:, s0 : s0 + cp[sym]] = stacked[:, sym, fft_size - cp[sym] :]
    assert len(out) == params.samples_per_frame
    return out


def demodulate_symbol(params, samples, symbol_in_slot):
    """FFT one symbol back to its subcarrier values.

    ``samples`` must contain the full CP + useful symbol.
    """
    cp = params.cp_length(symbol_in_slot)
    expected = cp + params.fft_size
    if len(samples) != expected:
        raise ValueError(f"expected {expected} samples, got {len(samples)}")
    useful = samples[cp:]
    bins = np.fft.fft(useful) / np.sqrt(params.fft_size)
    return bins[params.subcarrier_indices()]


def demodulate_frame(params, samples):
    """FFT a frame of IQ samples back into a subcarrier array.

    Returns a ``(140, n_subcarriers)`` complex array.  ``samples`` must be
    frame-aligned (use cell search first on unaligned captures).
    Vectorised slot-chunk mirror of :func:`modulate_frame`; bit-identical
    to :func:`demodulate_frame_loop`.
    """
    with span("lte.ofdm.demodulate"):
        return _demodulate_frame(params, samples)


def _demodulate_frame(params, samples):
    samples = np.asarray(samples, dtype=complex)
    if len(samples) < params.samples_per_frame:
        raise ValueError("need a full frame of samples")
    layout = frame_layout(params)
    fft_size = params.fft_size
    half = params.n_subcarriers // 2
    scale = np.sqrt(fft_size)
    samples_per_slot = params.samples_per_slot
    n_chunk = CHUNK_SLOTS * SYMBOLS_PER_SLOT

    by_slot = samples[: params.samples_per_frame].reshape(
        SLOTS_PER_FRAME, samples_per_slot
    )
    useful = np.empty((n_chunk, fft_size), dtype=complex)
    stacked = useful.reshape(CHUNK_SLOTS, SYMBOLS_PER_SLOT, fft_size)
    out = np.empty((SYMBOLS_PER_FRAME, params.n_subcarriers), dtype=complex)
    useful_start = layout.useful_starts_in_slot

    for slot0 in range(0, SLOTS_PER_FRAME, CHUNK_SLOTS):
        chunk = by_slot[slot0 : slot0 + CHUNK_SLOTS]
        for sym in range(SYMBOLS_PER_SLOT):
            u0 = useful_start[sym]
            stacked[:, sym] = chunk[:, u0 : u0 + fft_size]
        # The scratch is fully rewritten next chunk, so scipy may clobber it.
        bins = _scipy_fft.fft(useful, axis=1, workers=FFT_WORKERS, overwrite_x=True)
        rows = out[slot0 * SYMBOLS_PER_SLOT : (slot0 + CHUNK_SLOTS) * SYMBOLS_PER_SLOT]
        # Scalar division is elementwise, so dividing during the column
        # select is bit-identical to copying first and dividing after.
        np.divide(bins[:, fft_size - half :], scale, out=rows[:, :half])
        np.divide(bins[:, 1 : half + 1], scale, out=rows[:, half:])
    return out


def useful_sample_grid(params):
    """Start offset and length of each symbol's useful part within a frame.

    Returns ``(starts, lengths)`` arrays of shape (140,).  The tag's
    scheduler uses this to know where basic-timing units live.
    """
    layout = frame_layout(params)
    starts = layout.useful_starts.copy()
    lengths = np.full(SYMBOLS_PER_FRAME, params.fft_size, dtype=np.int64)
    return starts, lengths


# -- pinned pre-vectorisation reference implementations -----------------------
#
# Kept verbatim (including the per-symbol subcarrier-index construction the
# original code paid on every call) as the golden baseline: equivalence
# tests assert the vectorised paths above are bit-identical to these, and
# ``repro bench`` measures the speedup against them.  Do not "optimise"
# them — their cost is the pinned benchmark's denominator.


def _loop_subcarrier_indices(params):
    """Uncached copy of the pre-PR ``LteParams.subcarrier_indices``."""
    half = params.n_subcarriers // 2
    low = (np.arange(half) - half) % params.fft_size
    high = np.arange(1, half + 1)
    return np.concatenate([low, high])


def modulate_frame_loop(grid):
    """Pre-vectorisation ``modulate_frame``: 140 per-symbol IFFT calls."""
    params = grid.params
    pieces = []
    for slot in range(SLOTS_PER_FRAME):
        for sym in range(SYMBOLS_PER_SLOT):
            row = symbol_index(slot, sym)
            bins = np.zeros(params.fft_size, dtype=complex)
            bins[_loop_subcarrier_indices(params)] = grid.values[row]
            useful = np.fft.ifft(bins) * np.sqrt(params.fft_size)
            cp = params.cp_length(sym)
            pieces.append(np.concatenate([useful[-cp:], useful]))
    samples = np.concatenate(pieces)
    assert len(samples) == params.samples_per_frame
    return samples


def demodulate_frame_loop(params, samples):
    """Pre-vectorisation ``demodulate_frame``: 140 per-symbol FFT calls."""
    samples = np.asarray(samples, dtype=complex)
    if len(samples) < params.samples_per_frame:
        raise ValueError("need a full frame of samples")
    out = np.zeros((SYMBOLS_PER_FRAME, params.n_subcarriers), dtype=complex)
    offset = 0
    for slot in range(SLOTS_PER_FRAME):
        for sym in range(SYMBOLS_PER_SLOT):
            row = symbol_index(slot, sym)
            length = params.symbol_length(sym)
            cp = params.cp_length(sym)
            useful = samples[offset + cp : offset + length]
            bins = np.fft.fft(useful) / np.sqrt(params.fft_size)
            out[row] = bins[_loop_subcarrier_indices(params)]
            offset += length
    return out
