"""OFDM modulation/demodulation between resource grids and IQ samples.

Conventions:

* the IFFT is scaled by ``sqrt(fft_size)`` so subcarrier power equals
  time-domain sample power (unit-power QPSK subcarriers give unit-power
  samples when the grid is full);
* each symbol is prefixed with its normal cyclic prefix (160/144 scaled to
  the FFT size);
* the demodulator takes the FFT over the useful part, starting right after
  the CP.
"""

from __future__ import annotations

import numpy as np

from repro.lte.params import LteParams, SLOTS_PER_FRAME, SYMBOLS_PER_SLOT
from repro.lte.resource_grid import ResourceGrid, SYMBOLS_PER_FRAME, symbol_index


def modulate_symbol(params, subcarrier_values, symbol_in_slot):
    """IFFT one symbol's subcarriers and prepend its cyclic prefix."""
    bins = np.zeros(params.fft_size, dtype=complex)
    bins[params.subcarrier_indices()] = subcarrier_values
    useful = np.fft.ifft(bins) * np.sqrt(params.fft_size)
    cp = params.cp_length(symbol_in_slot)
    return np.concatenate([useful[-cp:], useful])


def modulate_frame(grid):
    """Serialise a full :class:`ResourceGrid` to one frame of IQ samples."""
    params = grid.params
    pieces = []
    for slot in range(SLOTS_PER_FRAME):
        for sym in range(SYMBOLS_PER_SLOT):
            row = symbol_index(slot, sym)
            pieces.append(modulate_symbol(params, grid.values[row], sym))
    samples = np.concatenate(pieces)
    assert len(samples) == params.samples_per_frame
    return samples


def demodulate_symbol(params, samples, symbol_in_slot):
    """FFT one symbol back to its subcarrier values.

    ``samples`` must contain the full CP + useful symbol.
    """
    cp = params.cp_length(symbol_in_slot)
    expected = cp + params.fft_size
    if len(samples) != expected:
        raise ValueError(f"expected {expected} samples, got {len(samples)}")
    useful = samples[cp:]
    bins = np.fft.fft(useful) / np.sqrt(params.fft_size)
    return bins[params.subcarrier_indices()]


def demodulate_frame(params, samples):
    """FFT a frame of IQ samples back into a subcarrier array.

    Returns a ``(140, n_subcarriers)`` complex array.  ``samples`` must be
    frame-aligned (use cell search first on unaligned captures).
    """
    samples = np.asarray(samples, dtype=complex)
    if len(samples) < params.samples_per_frame:
        raise ValueError("need a full frame of samples")
    out = np.zeros((SYMBOLS_PER_FRAME, params.n_subcarriers), dtype=complex)
    offset = 0
    for slot in range(SLOTS_PER_FRAME):
        for sym in range(SYMBOLS_PER_SLOT):
            row = symbol_index(slot, sym)
            length = params.symbol_length(sym)
            out[row] = demodulate_symbol(
                params, samples[offset : offset + length], sym
            )
            offset += length
    return out


def useful_sample_grid(params):
    """Start offset and length of each symbol's useful part within a frame.

    Returns ``(starts, lengths)`` arrays of shape (140,).  The tag's
    scheduler uses this to know where basic-timing units live.
    """
    starts = np.zeros(SYMBOLS_PER_FRAME, dtype=np.int64)
    lengths = np.full(SYMBOLS_PER_FRAME, params.fft_size, dtype=np.int64)
    offset = 0
    i = 0
    for _slot in range(SLOTS_PER_FRAME):
        for sym in range(SYMBOLS_PER_SLOT):
            starts[i] = offset + params.cp_length(sym)
            offset += params.symbol_length(sym)
            i += 1
    return starts, lengths
