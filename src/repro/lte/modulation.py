"""Bit <-> constellation mapping for LTE (36.211 §7.1) with LLR demapping.

Gray-coded QPSK, 16-QAM and 64-QAM, normalised to unit average power.
The soft demapper produces max-log LLRs, positive for bit = 0, which is
the convention the Viterbi decoder in :mod:`repro.lte.coding` expects.
"""

from __future__ import annotations

import numpy as np

#: Scheme name -> bits per symbol.
BITS_PER_SYMBOL = {"bpsk": 1, "qpsk": 2, "16qam": 4, "64qam": 6}


def _qam_levels(bits):
    """Per-axis amplitude from Gray-coded bits, per the 36.211 tables.

    For 16-QAM, bit pairs map (0,0)->1, (0,1)->3, (1,0)->-1, (1,1)->-3
    (before normalisation); 64-QAM extends the same reflected-Gray pattern.
    """
    bits = np.asarray(bits)
    if bits.shape[-1] == 1:
        return 1.0 - 2.0 * bits[..., 0]
    if bits.shape[-1] == 2:
        sign = 1.0 - 2.0 * bits[..., 0]
        mag = 1.0 + 2.0 * bits[..., 1]
        return sign * mag
    if bits.shape[-1] == 3:
        sign = 1.0 - 2.0 * bits[..., 0]
        # Reflected Gray: (b1,b2) 00->3, 01->1, 10->5, 11->7 ... per 36.211
        inner = np.where(
            bits[..., 1] == 0,
            np.where(bits[..., 2] == 0, 3.0, 1.0),
            np.where(bits[..., 2] == 0, 5.0, 7.0),
        )
        return sign * inner
    raise ValueError("unsupported per-axis bit count")


def _constellation(scheme):
    n_bits = BITS_PER_SYMBOL[scheme]
    points = np.zeros(2**n_bits, dtype=complex)
    for value in range(2**n_bits):
        bits = np.array(
            [(value >> (n_bits - 1 - i)) & 1 for i in range(n_bits)], dtype=int
        )
        if scheme == "bpsk":
            points[value] = (1.0 - 2.0 * bits[0]) * (1.0 + 1.0j) / np.sqrt(2.0)
            continue
        i_bits = bits[0::2]
        q_bits = bits[1::2]
        i_level = _qam_levels(i_bits[None, :])[0]
        q_level = _qam_levels(q_bits[None, :])[0]
        points[value] = i_level + 1j * q_level
    norm = np.sqrt(np.mean(np.abs(points) ** 2))
    return points / norm


_CONSTELLATIONS = {scheme: _constellation(scheme) for scheme in BITS_PER_SYMBOL}


def constellation(scheme):
    """Unit-power constellation points indexed by the MSB-first bit value."""
    if scheme not in _CONSTELLATIONS:
        raise ValueError(f"unknown modulation scheme {scheme!r}")
    return _CONSTELLATIONS[scheme].copy()


def modulate(bits, scheme):
    """Map a bit array to complex symbols.

    ``len(bits)`` must be a multiple of the scheme's bits-per-symbol.

    >>> sym = modulate(np.array([0, 0, 1, 1]), "qpsk")
    >>> len(sym)
    2
    """
    bits = np.asarray(bits, dtype=np.int64)
    n_bits = BITS_PER_SYMBOL[scheme]
    if len(bits) % n_bits:
        raise ValueError(
            f"bit count {len(bits)} not a multiple of {n_bits} for {scheme}"
        )
    groups = bits.reshape(-1, n_bits)
    weights = 1 << np.arange(n_bits - 1, -1, -1)
    values = groups @ weights
    return _CONSTELLATIONS[scheme][values]


def demodulate_hard(symbols, scheme):
    """Nearest-neighbour hard demapping back to bits."""
    symbols = np.asarray(symbols, dtype=complex)
    points = _CONSTELLATIONS[scheme]
    distances = np.abs(symbols[:, None] - points[None, :]) ** 2
    values = np.argmin(distances, axis=1)
    n_bits = BITS_PER_SYMBOL[scheme]
    shifts = np.arange(n_bits - 1, -1, -1)
    return ((values[:, None] >> shifts[None, :]) & 1).astype(np.int8).reshape(-1)


def demodulate_llr(symbols, scheme, noise_variance=1.0):
    """Max-log LLRs per bit; positive means bit 0 is more likely.

    ``noise_variance`` is the complex noise variance per symbol; a scalar
    or an array broadcastable to ``symbols``.
    """
    symbols = np.asarray(symbols, dtype=complex)
    points = _CONSTELLATIONS[scheme]
    n_bits = BITS_PER_SYMBOL[scheme]
    # Per-symbol noise variance, broadcast from a scalar if needed.
    sigma2 = np.broadcast_to(
        np.maximum(np.asarray(noise_variance, dtype=float), 1e-12), symbols.shape
    )

    distances = np.abs(symbols[:, None] - points[None, :]) ** 2
    values = np.arange(len(points))
    llrs = np.empty((len(symbols), n_bits))
    for bit in range(n_bits):
        mask = ((values >> (n_bits - 1 - bit)) & 1).astype(bool)
        d0 = distances[:, ~mask].min(axis=1)
        d1 = distances[:, mask].min(axis=1)
        llrs[:, bit] = (d1 - d0) / sigma2
    return llrs.reshape(-1)
