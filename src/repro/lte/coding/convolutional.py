"""Tail-biting convolutional code (36.212 §5.1.3.1) with Viterbi decoding.

Rate 1/3, constraint length 7, generators (133, 171, 165) octal.  The
encoder is tail-biting: the shift register starts loaded with the last six
message bits, so the start and end states coincide and no tail bits are
transmitted.

Performance notes.  The encoder is a vectorised circular XOR (tail-biting
makes every output a cyclic convolution of the message with the generator
taps).  The decoder is a numpy Viterbi over the 64 states, batched over
transport blocks of equal length — a 20 MHz LTE frame decodes its ten
subframes in one trellis sweep.  Tail-biting is handled with a wrap
margin: the received LLRs are extended circularly by ``wrap_margin`` steps
on each side so the survivor paths converge onto the circular trellis
before the bits that are kept.
"""

from __future__ import annotations

import numpy as np

#: Constraint length K.
CONSTRAINT_LENGTH = 7

#: 1/R — three coded bits per message bit.
CODE_RATE_INVERSE = 3

#: Generator polynomials, octal 133/171/165, as K-bit taps (MSB = newest bit).
_GENERATORS = (0o133, 0o171, 0o165)

_N_STATES = 1 << (CONSTRAINT_LENGTH - 1)

#: Steps of circular extension on each side of the trellis; ~14 constraint
#: lengths, ample for survivor-path convergence.
DEFAULT_WRAP_MARGIN = 96


def _build_tables():
    """Precompute next-state and output tables for every (state, input)."""
    next_state = np.zeros((_N_STATES, 2), dtype=np.int64)
    outputs = np.zeros((_N_STATES, 2, CODE_RATE_INVERSE), dtype=np.int8)
    for state in range(_N_STATES):
        for bit in (0, 1):
            register = (bit << (CONSTRAINT_LENGTH - 1)) | state
            next_state[state, bit] = register >> 1
            for g_index, g in enumerate(_GENERATORS):
                outputs[state, bit, g_index] = bin(register & g).count("1") & 1
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_tables()


def _predecessor_table():
    """(new_state, candidate) -> (previous_state, input_bit)."""
    table = np.zeros((_N_STATES, 2, 2), dtype=np.int64)
    counts = np.zeros(_N_STATES, dtype=np.int64)
    for state in range(_N_STATES):
        for bit in (0, 1):
            new = _NEXT_STATE[state, bit]
            table[new, counts[new]] = (state, bit)
            counts[new] += 1
    assert np.all(counts == 2), "trellis must have exactly two predecessors"
    return table


_PREDECESSORS = _predecessor_table()
_PREV_STATE = _PREDECESSORS[:, :, 0]  # (64, 2)
_PREV_INPUT = _PREDECESSORS[:, :, 1]  # (64, 2)

#: Branch correlation signs, flattened to (128, 3) over (state*2 + input).
_SIGNS_FLAT = (1.0 - 2.0 * _OUTPUTS.astype(float)).reshape(-1, CODE_RATE_INVERSE)


def conv_encode(bits):
    """Encode a message; returns ``3 * len(bits)`` coded bits.

    Coded bits are interleaved per step: d0(0), d1(0), d2(0), d0(1), ...
    Tail-biting makes each stream a circular convolution, so the whole
    encoder is seven rolled XORs.

    >>> coded = conv_encode(np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.int8))
    >>> len(coded)
    21
    """
    bits = np.asarray(bits, dtype=np.int8)
    if len(bits) < CONSTRAINT_LENGTH - 1:
        raise ValueError("message shorter than the encoder memory")
    coded = np.empty((len(bits), CODE_RATE_INVERSE), dtype=np.int8)
    for g_index, g in enumerate(_GENERATORS):
        acc = np.zeros(len(bits), dtype=np.int8)
        for delay in range(CONSTRAINT_LENGTH):
            if (g >> (CONSTRAINT_LENGTH - 1 - delay)) & 1:
                acc ^= np.roll(bits, delay)
        coded[:, g_index] = acc
    return coded.reshape(-1)


def conv_encode_reference(bits):
    """Bit-serial reference encoder (table-driven); used to cross-check."""
    bits = np.asarray(bits, dtype=np.int64)
    if len(bits) < CONSTRAINT_LENGTH - 1:
        raise ValueError("message shorter than the encoder memory")
    state = 0
    for bit in bits[-(CONSTRAINT_LENGTH - 1) :]:
        state = ((int(bit) << (CONSTRAINT_LENGTH - 1)) | state) >> 1
    coded = np.empty((len(bits), CODE_RATE_INVERSE), dtype=np.int8)
    for n, bit in enumerate(bits):
        coded[n] = _OUTPUTS[state, bit]
        state = _NEXT_STATE[state, bit]
    return coded.reshape(-1)


def viterbi_decode(llrs, n_bits, wrap_margin=DEFAULT_WRAP_MARGIN):
    """Decode ``n_bits`` message bits from coded-bit LLRs.

    ``llrs`` has length ``3 * n_bits``; positive LLR means the coded bit is
    more likely 0.  Erased (punctured) positions should carry LLR 0.
    """
    return viterbi_decode_many([llrs], [n_bits], wrap_margin)[0]


def viterbi_decode_many(llrs_list, n_bits_list, wrap_margin=DEFAULT_WRAP_MARGIN):
    """Decode several blocks, batching equal-length blocks into one sweep."""
    if len(llrs_list) != len(n_bits_list):
        raise ValueError("need one bit count per LLR block")
    groups = {}
    for index, (llrs, n_bits) in enumerate(zip(llrs_list, n_bits_list)):
        groups.setdefault(int(n_bits), []).append((index, np.asarray(llrs, float)))
    results = [None] * len(llrs_list)
    for n_bits, members in groups.items():
        batch = np.stack([llrs for _, llrs in members])
        decoded = _decode_batch(batch.reshape(len(members), n_bits, 3), wrap_margin)
        for row, (index, _) in enumerate(members):
            results[index] = decoded[row]
    return results


def _decode_batch(llrs, wrap_margin):
    """Viterbi over a (B, n, 3) LLR batch of tail-biting blocks."""
    n_blocks, n_bits, _ = llrs.shape
    margin = min(int(wrap_margin), n_bits)
    extended = np.concatenate(
        [llrs[:, n_bits - margin :], llrs, llrs[:, :margin]], axis=1
    )
    n_steps = extended.shape[1]

    metrics = np.zeros((n_blocks, _N_STATES))
    decisions = np.empty((n_steps, n_blocks, _N_STATES), dtype=np.int8)

    for step in range(n_steps):
        # (B, 128) branch correlations -> (B, 64, 2) per (state, input).
        branch = (extended[:, step] @ _SIGNS_FLAT.T).reshape(
            n_blocks, _N_STATES, 2
        )
        # Candidates arriving at each new state from its two predecessors:
        # indexing with the (64, 2) predecessor tables broadcasts over B.
        cand = metrics[:, _PREV_STATE] + branch[:, _PREV_STATE, _PREV_INPUT]
        choice = np.argmax(cand, axis=2)
        metrics = np.take_along_axis(cand, choice[:, :, None], axis=2)[:, :, 0]
        decisions[step] = choice
        metrics -= metrics.max(axis=1, keepdims=True)

    # Traceback, vectorised over the batch.  The decision stored at a step
    # selects the transition *into* each state, whose input bit is that
    # step's message bit.
    state = np.argmax(metrics, axis=1)
    hard = np.empty((n_blocks, n_steps), dtype=np.int8)
    rows = np.arange(n_blocks)
    for step in range(n_steps - 1, -1, -1):
        choice = decisions[step, rows, state]
        hard[:, step] = _PREV_INPUT[state, choice]
        state = _PREV_STATE[state, choice]
    return [hard[b, margin : margin + n_bits].astype(np.int8) for b in range(n_blocks)]
