"""LTE downlink channel coding (36.212 subset).

CRC attachment, tail-biting convolutional coding with a vectorised Viterbi
decoder, sub-block-interleaved rate matching, and scrambling.  This is the
coding chain used by the reproduction's PDSCH so that "LTE throughput"
(Fig. 32) means what it does in the paper: transport blocks that survive a
real decoder and CRC check.
"""

from repro.lte.coding.crc import crc_attach, crc_check, crc_compute
from repro.lte.coding.convolutional import (
    conv_encode,
    conv_encode_reference,
    viterbi_decode,
    viterbi_decode_many,
    CODE_RATE_INVERSE,
    CONSTRAINT_LENGTH,
)
from repro.lte.coding.rate_match import rate_match, rate_recover
from repro.lte.coding.scrambling import scramble_bits, descramble_llrs, pdsch_c_init

__all__ = [
    "crc_attach",
    "crc_check",
    "crc_compute",
    "conv_encode",
    "conv_encode_reference",
    "viterbi_decode",
    "viterbi_decode_many",
    "CODE_RATE_INVERSE",
    "CONSTRAINT_LENGTH",
    "rate_match",
    "rate_recover",
    "scramble_bits",
    "descramble_llrs",
    "pdsch_c_init",
]
