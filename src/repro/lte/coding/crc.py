"""Cyclic redundancy checks used by LTE (36.212 §5.1.1).

Three generator polynomials: CRC-24A (transport blocks), CRC-16 and CRC-8.
Bit arrays are MSB-first ``int8`` arrays of 0/1, the convention used by the
whole coding chain.
"""

from __future__ import annotations

import numpy as np

#: Generator polynomials (without the leading x^L term), MSB first.
_POLYNOMIALS = {
    "crc24a": (24, 0x864CFB),
    "crc16": (16, 0x1021),
    "crc8": (8, 0x9B),
}


def crc_compute(bits, kind="crc24a"):
    """Compute the CRC of a bit array; returns an ``int8`` bit array.

    >>> parity = crc_compute(np.zeros(10, dtype=np.int8))
    >>> int(parity.sum())
    0
    """
    if kind not in _POLYNOMIALS:
        raise ValueError(f"unknown CRC kind {kind!r}")
    length, poly = _POLYNOMIALS[kind]
    register = 0
    mask = (1 << length) - 1
    top = 1 << (length - 1)
    for bit in np.asarray(bits, dtype=np.int64):
        feedback = ((register & top) >> (length - 1)) ^ int(bit)
        register = ((register << 1) & mask) ^ (poly if feedback else 0)
    return np.array(
        [(register >> (length - 1 - i)) & 1 for i in range(length)], dtype=np.int8
    )


def crc_attach(bits, kind="crc24a"):
    """Append the CRC parity bits to ``bits``."""
    bits = np.asarray(bits, dtype=np.int8)
    return np.concatenate([bits, crc_compute(bits, kind)])


def crc_check(bits_with_crc, kind="crc24a"):
    """Validate a CRC-terminated block; returns ``(payload, ok)``.

    >>> payload, ok = crc_check(crc_attach(np.ones(8, dtype=np.int8)))
    >>> ok, int(payload.sum())
    (True, 8)
    """
    length, _ = _POLYNOMIALS[kind]
    bits_with_crc = np.asarray(bits_with_crc, dtype=np.int8)
    if len(bits_with_crc) < length:
        raise ValueError("block shorter than its CRC")
    payload = bits_with_crc[:-length]
    expected = crc_compute(payload, kind)
    ok = bool(np.array_equal(expected, bits_with_crc[-length:]))
    return payload, ok
