"""PDSCH bit scrambling (36.211 §6.3.1).

Scrambling whitens the coded bits with a Gold sequence seeded by the RNTI,
codeword index, slot and cell identity, so that inter-cell interference
looks noise-like.  LLR descrambling flips soft-value signs where the
scrambling bit is 1.
"""

from __future__ import annotations

import numpy as np

from repro.lte.gold import gold_sequence


def pdsch_c_init(rnti, subframe, cell_id, codeword=0):
    """Scrambling-sequence seed for a PDSCH codeword."""
    return (
        (int(rnti) << 14)
        + (int(codeword) << 13)
        + ((int(subframe) % 10) << 9)
        + int(cell_id)
    )


def scramble_bits(bits, c_init):
    """XOR a bit array with the Gold sequence for ``c_init``."""
    bits = np.asarray(bits, dtype=np.int8)
    sequence = gold_sequence(c_init, len(bits))
    return (bits ^ sequence).astype(np.int8)


def descramble_llrs(llrs, c_init):
    """Undo scrambling on LLRs (sign flip where the scrambling bit is 1)."""
    llrs = np.asarray(llrs, dtype=float)
    sequence = gold_sequence(c_init, len(llrs)).astype(float)
    return llrs * (1.0 - 2.0 * sequence)
