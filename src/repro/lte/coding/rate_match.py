"""Rate matching for the convolutional code (36.212 §5.1.4.2).

The three coded-bit streams are each passed through a 32-column sub-block
interleaver, concatenated into a circular buffer, and the buffer is read
(with wrap-around repetition, or truncation for puncturing) to the target
length ``E``.  ``rate_recover`` inverts the process on LLRs, accumulating
soft values for repeated bits and zero-filling punctured ones.
"""

from __future__ import annotations

import numpy as np

#: Column permutation pattern for the convolutional-code sub-block
#: interleaver (36.212 Table 5.1.4-2).
_COLUMN_PERMUTATION = np.array(
    [
        1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
        0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
    ],
    dtype=np.int64,
)

_N_COLUMNS = 32

#: Sentinel for <NULL> padding positions inside the interleaver matrix.
_NULL = -1


def _subblock_permutation(d):
    """Index map: output position -> input position (or _NULL) for length d."""
    rows = int(np.ceil(d / _N_COLUMNS))
    padded = rows * _N_COLUMNS
    matrix = np.full(padded, _NULL, dtype=np.int64)
    matrix[padded - d :] = np.arange(d)
    matrix = matrix.reshape(rows, _N_COLUMNS)
    permuted = matrix[:, _COLUMN_PERMUTATION]
    return permuted.T.reshape(-1)


def _circular_buffer_map(d):
    """Map circular-buffer position -> original coded-bit index (length 3d).

    Positions corresponding to <NULL> padding are dropped, so the result has
    exactly ``3 * d`` entries, a permutation of ``0 .. 3d-1`` where stream
    ``i`` bit ``n`` sits at original index ``3 n + i`` (the encoder's
    interleaved output order).
    """
    per_stream = _subblock_permutation(d)
    buffers = []
    for stream in range(3):
        mapped = np.where(per_stream == _NULL, _NULL, per_stream * 3 + stream)
        buffers.append(mapped)
    buffer = np.concatenate(buffers)
    return buffer[buffer != _NULL]


def rate_match(coded_bits, target_length):
    """Rate-match ``coded_bits`` (length 3d) to ``target_length`` bits."""
    coded_bits = np.asarray(coded_bits, dtype=np.int8)
    if len(coded_bits) % 3:
        raise ValueError("coded bit count must be a multiple of 3")
    if target_length <= 0:
        raise ValueError("target length must be positive")
    d = len(coded_bits) // 3
    buffer_map = _circular_buffer_map(d)
    reps = int(np.ceil(target_length / len(buffer_map)))
    indices = np.tile(buffer_map, reps)[: int(target_length)]
    return coded_bits[indices]


def rate_recover(llrs, coded_length):
    """Invert rate matching on LLRs; returns ``coded_length`` soft values.

    Repeated transmissions of the same coded bit are summed (chase
    combining); punctured bits come back as 0 (erasure).
    """
    llrs = np.asarray(llrs, dtype=float)
    if coded_length % 3:
        raise ValueError("coded length must be a multiple of 3")
    d = coded_length // 3
    buffer_map = _circular_buffer_map(d)
    reps = int(np.ceil(len(llrs) / len(buffer_map)))
    indices = np.tile(buffer_map, reps)[: len(llrs)]
    recovered = np.zeros(coded_length)
    np.add.at(recovered, indices, llrs)
    return recovered
