"""Physical broadcast channel: the MIB (36.211 §6.6, 36.212 §5.3.1 subset).

The PBCH sits in the centre 72 subcarriers of subframe 0, slot 1,
symbols 0-3 — right next to the PSS/SSS, i.e. more "critical information"
the tag must leave intact.  The MIB carries the downlink bandwidth and
the system frame number, which is how a real UE bootstraps before it can
decode anything else; the reproduction's UE can do the same.

Simplification vs the full standard: the coded MIB is rate-matched into a
single frame's PBCH resource elements instead of being spread over four
radio frames (we have no antenna-count ambiguity to disambiguate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte import coding
from repro.lte.crs import crs_positions
from repro.lte.modulation import demodulate_llr, modulate
from repro.lte.params import LteParams, SUPPORTED_BANDWIDTHS_MHZ

#: Slot and symbols carrying the PBCH.
PBCH_SLOT = 1
PBCH_SYMBOLS = (0, 1, 2, 3)

#: PBCH occupies the centre six resource blocks.
PBCH_SUBCARRIERS = 72

#: MIB payload bits: 3 bandwidth + 10 SFN + 11 spare.
MIB_BITS = 24

#: Bandwidth index encoding (3 bits).
_BANDWIDTH_CODES = {bw: i for i, bw in enumerate(SUPPORTED_BANDWIDTHS_MHZ)}
_CODES_BANDWIDTH = {i: bw for bw, i in _BANDWIDTH_CODES.items()}


@dataclass(frozen=True)
class Mib:
    """Decoded master information block."""

    bandwidth_mhz: float
    system_frame_number: int

    def to_bits(self):
        from repro.utils.dsp import int_to_bits

        code = _BANDWIDTH_CODES[self.bandwidth_mhz]
        bits = np.concatenate(
            [
                int_to_bits(code, 3),
                int_to_bits(self.system_frame_number % 1024, 10),
                np.zeros(MIB_BITS - 13, dtype=np.int8),
            ]
        )
        return bits.astype(np.int8)

    @classmethod
    def from_bits(cls, bits):
        from repro.utils.dsp import bits_to_int

        bits = np.asarray(bits, dtype=np.int8)
        code = bits_to_int(bits[:3])
        if code not in _CODES_BANDWIDTH:
            raise ValueError(f"unknown bandwidth code {code}")
        return cls(
            bandwidth_mhz=_CODES_BANDWIDTH[code],
            system_frame_number=bits_to_int(bits[3:13]),
        )


def pbch_positions(params, cell_id):
    """(slot, symbol, columns) triples of the PBCH resource elements.

    CRS positions inside the centre band are excluded on symbols 0 and 1
    (ports 0/1 pilot room, as in the standard).
    """
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)
    n = params.n_subcarriers
    centre = np.arange(n // 2 - PBCH_SUBCARRIERS // 2, n // 2 + PBCH_SUBCARRIERS // 2)
    out = []
    for sym in PBCH_SYMBOLS:
        cols = centre
        if sym in (0, 1):
            # Reserve the CRS comb (both port-0 combs, i.e. every 3rd).
            crs = set()
            for offset_sym in (0, 4):
                crs.update(
                    (crs_positions(offset_sym, cell_id, params.n_rb)).tolist()
                )
            cols = np.array([c for c in centre if c not in crs])
        out.append((PBCH_SLOT, sym, cols))
    return out


def pbch_capacity_bits(params, cell_id):
    """Coded bits the PBCH region can carry (QPSK)."""
    return 2 * sum(len(cols) for _, _, cols in pbch_positions(params, cell_id))


def encode_mib(mib, params, cell_id):
    """MIB -> QPSK symbols for the PBCH resource elements."""
    payload = mib.to_bits()
    with_crc = coding.crc_attach(payload, "crc16")
    coded = coding.conv_encode(with_crc)
    target = pbch_capacity_bits(params, cell_id)
    matched = coding.rate_match(coded, target)
    scrambled = coding.scramble_bits(matched, cell_id)
    return modulate(scrambled, "qpsk")


def decode_mib(symbols, params, cell_id, noise_variance=0.1):
    """PBCH symbols -> (Mib or None, crc_ok)."""
    llrs = demodulate_llr(np.asarray(symbols, dtype=complex), "qpsk", noise_variance)
    descrambled = coding.descramble_llrs(llrs, cell_id)
    coded_length = 3 * (MIB_BITS + 16)
    soft = coding.rate_recover(descrambled, coded_length)
    decoded = coding.viterbi_decode(soft, MIB_BITS + 16)
    payload, ok = coding.crc_check(decoded, "crc16")
    if not ok:
        return None, False
    try:
        return Mib.from_bits(payload), True
    except ValueError:
        return None, False
