"""Primary synchronisation signal (36.211 §6.11.1).

The PSS is a length-63 Zadoff-Chu sequence with the centre element (which
would land on the DC subcarrier) punctured, leaving 62 occupied subcarriers
— 0.93 MHz regardless of the carrier bandwidth.  The root depends only on
the physical-layer identity within the group (``N_ID^(2)``):

    N_ID^(2) = 0 -> u = 25,  1 -> u = 29,  2 -> u = 34

It occupies the **last OFDM symbol of slots 0 and 10** of every frame
(FDD), i.e. it repeats every 5 ms — the 200 Hz beacon the tag's analog
synchronisation circuit locks onto.
"""

from __future__ import annotations

import numpy as np

from repro.lte.zadoff_chu import zadoff_chu
from repro.utils.cache import memoize

#: Zadoff-Chu root per N_ID^(2).
PSS_ROOTS = (25, 29, 34)

#: Slots (within a frame) whose last symbol carries the PSS, for FDD.
PSS_SLOTS = (0, 10)

#: Symbol index within the slot that carries the PSS (last symbol).
PSS_SYMBOL_IN_SLOT = 6


@memoize()
def pss_sequence(n_id_2):
    """Frequency-domain PSS: 62 complex values (DC element removed).

    >>> len(pss_sequence(0))
    62
    """
    if n_id_2 not in (0, 1, 2):
        raise ValueError(f"N_ID^(2) must be 0, 1 or 2, got {n_id_2}")
    zc = zadoff_chu(PSS_ROOTS[n_id_2], 63)
    # Element 31 would map to DC; 36.211 defines the sequence as two halves
    # d(n) for n=0..30 and n=31..61 mapped either side of DC.
    return np.concatenate([zc[:31], zc[32:]])


@memoize()
def pss_subcarrier_indices(fft_size):
    """FFT bin indices of the 62 PSS subcarriers, lowest frequency first.

    The PSS occupies subcarriers -31..-1 and +1..+31 around DC.
    """
    fft_size = int(fft_size)
    low = (np.arange(-31, 0)) % fft_size
    high = np.arange(1, 32)
    return np.concatenate([low, high])


@memoize()
def pss_time_domain(n_id_2, fft_size):
    """Useful-symbol time-domain PSS waveform (length ``fft_size``).

    This is the correlation template used by receiver cell search and by
    tests of the tag's envelope statistics.
    """
    grid = np.zeros(int(fft_size), dtype=complex)
    grid[pss_subcarrier_indices(fft_size)] = pss_sequence(n_id_2)
    return np.fft.ifft(grid) * np.sqrt(fft_size)
