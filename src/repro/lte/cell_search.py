"""Cell search: PSS timing acquisition and SSS identity/frame detection.

This is the standard UE bring-up procedure, reproduced because two parts of
the paper depend on it:

* the "critical information survives backscatter" claim (challenge C1) is
  verified by running cell search on *hybrid* (backscattered) captures;
* the backscatter receiver needs frame timing before it can demodulate
  chips, and gets it the same way a phone does.

PSS correlation is FFT-based so 20 MHz captures stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.lte.params import LteParams
from repro.lte.pss import PSS_SYMBOL_IN_SLOT, pss_sequence, pss_time_domain
from repro.lte.sss import SSS_SYMBOL_IN_SLOT, detect_sss
from repro.lte.resource_grid import ResourceGrid


@dataclass(frozen=True)
class CellSearchResult:
    """Outcome of a cell search over a capture."""

    n_id_2: int
    n_id_1: int
    subframe: int
    frame_start: int
    pss_metric: float
    sss_metric: float

    @property
    def cell_id(self):
        return 3 * self.n_id_1 + self.n_id_2


def correlate_pss(samples, params, n_id_2):
    """Normalised PSS correlation magnitude at every candidate offset.

    Index ``i`` of the result corresponds to the PSS *useful part* starting
    at sample ``i``.
    """
    samples = np.asarray(samples, dtype=complex)
    template = pss_time_domain(n_id_2, params.fft_size)
    n = len(template)
    if len(samples) < n:
        raise ValueError("capture shorter than one OFDM symbol")
    corr = fftconvolve(samples, np.conj(template[::-1]), mode="valid")
    window_energy = fftconvolve(np.abs(samples) ** 2, np.ones(n), mode="valid").real
    template_energy = float(np.sum(np.abs(template) ** 2))
    # Windows with almost no energy (a silent capture edge) produce huge
    # spurious ratios from floating-point residue; flooring the energy at a
    # fraction of the median suppresses them without touching real peaks.
    floor = max(1e-30, 0.05 * float(np.median(window_energy)))
    denom = np.sqrt(np.maximum(window_energy, floor) * template_energy)
    return np.abs(corr) / denom


def _extract_centre_bins(samples, params, useful_start):
    """FFT one useful symbol and return its centre 62 subcarriers."""
    useful = samples[useful_start : useful_start + params.fft_size]
    bins = np.fft.fft(useful) / np.sqrt(params.fft_size)
    low = (np.arange(-31, 0)) % params.fft_size
    high = np.arange(1, 32)
    return np.concatenate([bins[low], bins[high]])


def cell_search(samples, params):
    """Full cell search; returns the best :class:`CellSearchResult`.

    Finds the strongest PSS across the three roots, estimates the channel
    on the PSS, coherently detects the SSS one symbol earlier, and derives
    the frame start (the PSS sits in slot 0 or slot 10 depending on which
    subframe the SSS indicates).
    """
    samples = np.asarray(samples, dtype=complex)
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)

    sss_to_pss = params.fft_size + params.cp_other

    best = None
    for n_id_2 in (0, 1, 2):
        metric = correlate_pss(samples, params, n_id_2)
        # The SSS symbol must exist before the PSS.
        metric[:sss_to_pss] = 0.0
        peak = int(np.argmax(metric))
        if best is None or metric[peak] > best[2]:
            best = (n_id_2, peak, float(metric[peak]))
    n_id_2, pss_start, pss_metric = best

    # Channel estimate on the 62 PSS subcarriers.
    y_pss = _extract_centre_bins(samples, params, pss_start)
    h = y_pss * np.conj(pss_sequence(n_id_2))

    # Equalise the SSS (symbol immediately before the PSS, same channel).
    y_sss = _extract_centre_bins(samples, params, pss_start - sss_to_pss)
    power = np.maximum(np.abs(h) ** 2, 1e-30)
    sss_eq = y_sss * np.conj(h) / power
    n_id_1, subframe, sss_metric = detect_sss(sss_eq, n_id_2)

    pss_slot = 0 if subframe == 0 else 10
    frame_start = pss_start - params.useful_start(pss_slot, PSS_SYMBOL_IN_SLOT)
    return CellSearchResult(
        n_id_2=n_id_2,
        n_id_1=n_id_1,
        subframe=subframe,
        frame_start=frame_start,
        pss_metric=pss_metric,
        sss_metric=float(sss_metric),
    )
