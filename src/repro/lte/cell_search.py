"""Cell search: PSS timing acquisition and SSS identity/frame detection.

This is the standard UE bring-up procedure, reproduced because two parts of
the paper depend on it:

* the "critical information survives backscatter" claim (challenge C1) is
  verified by running cell search on *hybrid* (backscattered) captures;
* the backscatter receiver needs frame timing before it can demodulate
  chips, and gets it the same way a phone does.

PSS correlation is FFT-based so 20 MHz captures stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.lte.params import LteParams
from repro.lte.pss import PSS_SYMBOL_IN_SLOT, pss_sequence, pss_time_domain
from repro.lte.sss import SSS_SYMBOL_IN_SLOT, detect_sss
from repro.lte.resource_grid import ResourceGrid


#: Relative metric slack within which two PSS roots count as tied and the
#: lower root (lower cell ID) wins.  Distinct roots' cross-correlation sits
#: orders of magnitude above float noise, so the tolerance only engages for
#: genuinely indistinguishable candidates — e.g. two equal-power cells in a
#: superposed multi-cell capture.
PSS_TIE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PssCandidate:
    """One PSS root's best correlation peak over a capture."""

    n_id_2: int
    offset: int
    metric: float


@dataclass(frozen=True)
class CellSearchResult:
    """Outcome of a cell search over a capture."""

    n_id_2: int
    n_id_1: int
    subframe: int
    frame_start: int
    pss_metric: float
    sss_metric: float

    @property
    def cell_id(self):
        return 3 * self.n_id_1 + self.n_id_2


def correlate_pss(samples, params, n_id_2):
    """Normalised PSS correlation magnitude at every candidate offset.

    Index ``i`` of the result corresponds to the PSS *useful part* starting
    at sample ``i``.
    """
    samples = np.asarray(samples, dtype=complex)
    template = pss_time_domain(n_id_2, params.fft_size)
    n = len(template)
    if len(samples) < n:
        raise ValueError("capture shorter than one OFDM symbol")
    corr = fftconvolve(samples, np.conj(template[::-1]), mode="valid")
    window_energy = fftconvolve(np.abs(samples) ** 2, np.ones(n), mode="valid").real
    template_energy = float(np.sum(np.abs(template) ** 2))
    # Windows with almost no energy (a silent capture edge) produce huge
    # spurious ratios from floating-point residue; flooring the energy at a
    # fraction of the median suppresses them without touching real peaks.
    floor = max(1e-30, 0.05 * float(np.median(window_energy)))
    denom = np.sqrt(np.maximum(window_energy, floor) * template_energy)
    return np.abs(corr) / denom


def _extract_centre_bins(samples, params, useful_start):
    """FFT one useful symbol and return its centre 62 subcarriers."""
    useful = samples[useful_start : useful_start + params.fft_size]
    bins = np.fft.fft(useful) / np.sqrt(params.fft_size)
    low = (np.arange(-31, 0)) % params.fft_size
    high = np.arange(1, 32)
    return np.concatenate([bins[low], bins[high]])


def pss_candidates(samples, params):
    """Best correlation peak per PSS root, in deterministic rank order.

    Candidates are sorted strongest-first; roots whose metrics fall within
    :data:`PSS_TIE_TOLERANCE` (relative to the strongest) are ordered by
    root index — i.e. by ``(metric, cell ID)`` — so a superposed capture
    with two near-equal cells always ranks the same way regardless of
    floating-point residue.
    """
    samples = np.asarray(samples, dtype=complex)
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)
    sss_to_pss = params.fft_size + params.cp_other
    candidates = []
    for n_id_2 in (0, 1, 2):
        metric = correlate_pss(samples, params, n_id_2)
        # The SSS symbol must exist before the PSS.
        metric[:sss_to_pss] = 0.0
        peak = int(np.argmax(metric))
        candidates.append(
            PssCandidate(n_id_2=n_id_2, offset=peak, metric=float(metric[peak]))
        )
    return rank_candidates(candidates)


def rank_candidates(candidates, tolerance=PSS_TIE_TOLERANCE):
    """Order candidates by (metric, identity) with a tie tolerance.

    Metrics are quantised to ``tolerance`` (relative to the strongest
    candidate) before sorting, so two roots separated only by float noise
    compare equal and the lower ``n_id_2`` — the lower cell ID — wins
    deterministically.
    """
    candidates = list(candidates)
    if not candidates:
        return []
    scale = max(max(abs(c.metric) for c in candidates), 1.0)
    quantum = max(tolerance * scale, 1e-300)
    return sorted(
        candidates,
        key=lambda c: (-round(c.metric / quantum), c.n_id_2),
    )


def cell_search(samples, params):
    """Full cell search; returns the best :class:`CellSearchResult`.

    Finds the strongest PSS across the three roots (deterministic
    ``(metric, cell ID)`` ordering, see :func:`pss_candidates`), estimates
    the channel on the PSS, coherently detects the SSS one symbol earlier,
    and derives the frame start (the PSS sits in slot 0 or slot 10
    depending on which subframe the SSS indicates).
    """
    samples = np.asarray(samples, dtype=complex)
    if not isinstance(params, LteParams):
        params = LteParams.from_bandwidth(params)

    sss_to_pss = params.fft_size + params.cp_other

    best = pss_candidates(samples, params)[0]
    n_id_2, pss_start, pss_metric = best.n_id_2, best.offset, best.metric

    # Channel estimate on the 62 PSS subcarriers.
    y_pss = _extract_centre_bins(samples, params, pss_start)
    h = y_pss * np.conj(pss_sequence(n_id_2))

    # Equalise the SSS (symbol immediately before the PSS, same channel).
    y_sss = _extract_centre_bins(samples, params, pss_start - sss_to_pss)
    power = np.maximum(np.abs(h) ** 2, 1e-30)
    sss_eq = y_sss * np.conj(h) / power
    n_id_1, subframe, sss_metric = detect_sss(sss_eq, n_id_2)

    pss_slot = 0 if subframe == 0 else 10
    frame_start = pss_start - params.useful_start(pss_slot, PSS_SYMBOL_IN_SLOT)
    return CellSearchResult(
        n_id_2=n_id_2,
        n_id_1=n_id_1,
        subframe=subframe,
        frame_start=frame_start,
        pss_metric=pss_metric,
        sss_metric=float(sss_metric),
    )
