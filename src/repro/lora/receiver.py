"""LoRa packet receiver: preamble detection and payload demodulation.

Detection exploits the preamble's periodicity: a dechirp window anywhere
inside the repeated up-chirps produces an FFT peak whose *bin* equals the
window's misalignment, so one strong window both detects the packet and
aligns the symbol clock.  The boundary between preamble and payload is
found by walking forward until the up-chirps stop (the SFD down-chirps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lora.css import LoraParams, chirp, demodulate_symbols, symbols_to_bits
from repro.lora.transmitter import SFD_SYMBOLS

#: Peak-to-mean spectrum ratio treated as "a chirp is present".
DETECTION_RATIO = 5.0


@dataclass
class LoraDecodeResult:
    """Outcome of one LoRa decode attempt."""

    detected: bool
    payload_bits: np.ndarray = None
    start: int = -1


class LoraReceiver:
    """Detect and decode a LoRa packet in a chip-rate capture."""

    def __init__(self, params=None):
        self.params = params or LoraParams()

    def _dechirp_metric(self, samples, start):
        """(peak_bin, peak_to_mean) for a dechirped window at ``start``."""
        n = self.params.n_chips
        window = samples[start : start + n]
        if len(window) < n:
            return -1, 0.0
        spectrum = np.abs(np.fft.fft(window * chirp(self.params, up=False)))
        bin_ = int(np.argmax(spectrum))
        return bin_, float(spectrum[bin_] / (np.mean(spectrum) + 1e-30))

    def _find_alignment(self, samples):
        """Symbol-aligned index inside the preamble, or -1."""
        n = self.params.n_chips
        for start in range(0, max(len(samples) - n, 0), n // 2):
            bin_, metric = self._dechirp_metric(samples, start)
            if metric < DETECTION_RATIO:
                continue
            aligned = start - bin_
            if aligned < 0:
                aligned += n
            # Confirm: an aligned window must peak at bin 0.
            bin0, metric0 = self._dechirp_metric(samples, aligned)
            if metric0 >= DETECTION_RATIO and bin0 in (0, 1, n - 1):
                return aligned
        return -1

    def _payload_start(self, samples, aligned):
        """Walk to the preamble's first symbol, then past it and the SFD."""
        n = self.params.n_chips
        start = aligned
        while start - n >= 0:
            bin_, metric = self._dechirp_metric(samples, start - n)
            if metric < DETECTION_RATIO or bin_ not in (0, 1, n - 1):
                break
            start -= n
        end = aligned
        while True:
            bin_, metric = self._dechirp_metric(samples, end)
            if metric < DETECTION_RATIO or bin_ not in (0, 1, n - 1):
                break
            end += n
        return start, end + SFD_SYMBOLS * n

    def decode(self, samples, n_payload_bits):
        """Decode the first packet; payload length must be known (genie MAC)."""
        samples = np.asarray(samples, dtype=complex)
        params = self.params
        aligned = self._find_alignment(samples)
        if aligned < 0:
            return LoraDecodeResult(detected=False)
        packet_start, payload_start = self._payload_start(samples, aligned)
        n = params.n_chips
        n_symbols = int(np.ceil(n_payload_bits / params.bits_per_symbol))
        if payload_start + n_symbols * n > len(samples):
            return LoraDecodeResult(detected=False, start=packet_start)
        values, _peaks = demodulate_symbols(
            params, samples[payload_start:], n_symbols
        )
        bits = symbols_to_bits(params, values)[: int(n_payload_bits)]
        return LoraDecodeResult(
            detected=True, payload_bits=bits, start=packet_start
        )
