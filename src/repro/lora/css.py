"""Chirp spread spectrum: the LoRa physical layer.

A LoRa symbol of spreading factor SF is a linear up-chirp over the band,
cyclically shifted by the symbol value (0 .. 2^SF - 1).  Demodulation
multiplies by a down-chirp and takes the FFT: the symbol value appears as
the peak bin.  The enormous processing gain (2^SF) is why LoRa survives
below the noise floor — and why its symbols are so long that ambient-LoRa
backscatter is throughput-starved even when traffic exists (paper Table 1
and §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LoraParams:
    """One LoRa configuration."""

    spreading_factor: int = 7
    bandwidth_hz: float = 125e3

    def __post_init__(self):
        if not 6 <= self.spreading_factor <= 12:
            raise ValueError("spreading factor must be 6..12")

    @property
    def n_chips(self):
        """Chips (= samples at the chip rate) per symbol: 2^SF."""
        return 1 << self.spreading_factor

    @property
    def symbol_seconds(self):
        return self.n_chips / self.bandwidth_hz

    @property
    def symbol_rate_hz(self):
        return 1.0 / self.symbol_seconds

    @property
    def bits_per_symbol(self):
        return self.spreading_factor


def chirp(params, up=True, shift=0):
    """One chirp sampled at the chip rate, cyclically shifted by ``shift``."""
    n = params.n_chips
    k = (np.arange(n) + int(shift)) % n
    phase = np.pi * (k.astype(float) ** 2 / n - k.astype(float))
    base = np.exp(1j * phase)
    return base if up else np.conj(base)


def modulate_symbols(params, values):
    """Concatenate shifted up-chirps for an array of symbol values."""
    values = np.asarray(values, dtype=np.int64)
    if np.any((values < 0) | (values >= params.n_chips)):
        raise ValueError("symbol value out of range for this SF")
    return np.concatenate([chirp(params, up=True, shift=v) for v in values])


def demodulate_symbols(params, samples, n_symbols):
    """Dechirp + FFT peak detection; returns (values, peak_magnitudes)."""
    samples = np.asarray(samples, dtype=complex)
    n = params.n_chips
    if len(samples) < n * int(n_symbols):
        raise ValueError("capture shorter than the requested symbols")
    down = chirp(params, up=False)
    values = np.empty(int(n_symbols), dtype=np.int64)
    peaks = np.empty(int(n_symbols))
    for s in range(int(n_symbols)):
        window = samples[s * n : (s + 1) * n] * down
        spectrum = np.abs(np.fft.fft(window))
        values[s] = int(np.argmax(spectrum))
        peaks[s] = float(spectrum[values[s]])
    return values, peaks


def symbols_to_bits(params, values):
    """Gray-free binary expansion of symbol values (MSB first)."""
    values = np.asarray(values, dtype=np.int64)
    sf = params.spreading_factor
    shifts = np.arange(sf - 1, -1, -1)
    return ((values[:, None] >> shifts[None, :]) & 1).astype(np.int8).reshape(-1)


def bits_to_symbols(params, bits):
    """Inverse of :func:`symbols_to_bits` (pads with zeros)."""
    bits = np.asarray(bits, dtype=np.int64)
    sf = params.spreading_factor
    pad = (-len(bits)) % sf
    padded = np.concatenate([bits, np.zeros(pad, dtype=np.int64)])
    groups = padded.reshape(-1, sf)
    weights = 1 << np.arange(sf - 1, -1, -1)
    return groups @ weights
