"""LoRa chirp-spread-spectrum PHY substrate.

The PLoRa-style baseline needs ambient LoRa signals; this package provides
CSS modulation/demodulation (preamble, cyclic-shift symbol encoding,
dechirp-FFT detection) for the standard spreading factors.
"""

from repro.lora.css import (
    LoraParams,
    chirp,
    modulate_symbols,
    demodulate_symbols,
)
from repro.lora.transmitter import LoraTransmitter, LoraPacket
from repro.lora.receiver import LoraReceiver

__all__ = [
    "LoraParams",
    "chirp",
    "modulate_symbols",
    "demodulate_symbols",
    "LoraTransmitter",
    "LoraPacket",
    "LoraReceiver",
]
