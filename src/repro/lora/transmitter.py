"""LoRa packet transmitter: preamble + sync + payload chirps."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lora.css import LoraParams, bits_to_symbols, chirp, modulate_symbols
from repro.utils.rng import make_rng

#: Up-chirps in the preamble.
PREAMBLE_SYMBOLS = 8

#: Down-chirps in the start-of-frame delimiter.
SFD_SYMBOLS = 2


@dataclass
class LoraPacket:
    """One transmitted LoRa packet with ground truth."""

    samples: np.ndarray
    payload_bits: np.ndarray
    params: LoraParams

    @property
    def duration_seconds(self):
        return len(self.samples) / self.params.bandwidth_hz


class LoraTransmitter:
    """Build LoRa packets at the chip rate."""

    def __init__(self, params=None, rng=None):
        self.params = params or LoraParams()
        self.rng = make_rng(rng)

    def transmit(self, payload_bits=None, payload_bytes=16):
        """Build one packet; random payload unless bits are supplied."""
        if payload_bits is None:
            payload_bits = self.rng.integers(
                0, 2, size=8 * int(payload_bytes)
            ).astype(np.int8)
        payload_bits = np.asarray(payload_bits, dtype=np.int8)
        values = bits_to_symbols(self.params, payload_bits)
        pieces = [
            np.tile(chirp(self.params, up=True), PREAMBLE_SYMBOLS),
            np.tile(chirp(self.params, up=False), SFD_SYMBOLS),
            modulate_symbols(self.params, values),
        ]
        return LoraPacket(
            samples=np.concatenate(pieces),
            payload_bits=payload_bits,
            params=self.params,
        )
