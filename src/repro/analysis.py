"""Reporting: regenerate the paper's evaluation as one markdown document.

``build_report`` runs every registered experiment (heavy IQ ones can be
skipped or shrunk) and renders the rows plus notes into a single markdown
string; the CLI's ``report`` command writes it to disk.  Useful both as a
regression artefact and as the quickest way to eyeball the whole
reproduction.
"""

from __future__ import annotations

import time

from repro.experiments.registry import REGISTRY, run_experiment

#: Experiments that run sample-level simulations (seconds-to-minutes).
HEAVY_EXPERIMENTS = ("fig08", "fig16", "fig17", "fig18", "fig21", "fig22",
                     "fig26", "fig27", "fig28", "fig29", "fig31", "fig32")


def build_report(seed=0, include_heavy=False, experiment_ids=None):
    """Run experiments and return the markdown report string."""
    ids = sorted(experiment_ids or REGISTRY)
    lines = [
        "# LScatter reproduction report",
        "",
        "Regenerated tables/figures of *Leveraging Ambient LTE Traffic for",
        "Ubiquitous Passive Communication* (SIGCOMM 2020).",
        "",
    ]
    for experiment_id in ids:
        if experiment_id not in REGISTRY:
            raise KeyError(f"unknown experiment {experiment_id!r}")
        if not include_heavy and experiment_id in HEAVY_EXPERIMENTS:
            lines += [
                f"## {experiment_id} — {REGISTRY[experiment_id][1]}",
                "",
                "*(skipped: IQ-level experiment; rerun with --heavy)*",
                "",
            ]
            continue
        started = time.time()
        result = run_experiment(experiment_id, seed=seed)
        elapsed = time.time() - started
        lines += [
            f"## {experiment_id} — {result.description}",
            "",
            _markdown_table(result),
            "",
        ]
        if result.notes:
            lines += [f"> {result.notes}", ""]
        lines += [f"*({elapsed:.2f} s)*", ""]
    return "\n".join(lines)


def _markdown_table(result, max_columns=12):
    columns = result.columns()[:max_columns]
    if not columns:
        return "*(no rows)*"
    header = "| " + " | ".join(columns) + " |"
    divider = "|" + "---|" * len(columns)
    rows = []
    for row in result.rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                value = f"{value:.4g}"
            cells.append(str(value))
        rows.append("| " + " | ".join(cells) + " |")
    return "\n".join([header, divider] + rows)


def write_report(path, seed=0, include_heavy=False, experiment_ids=None):
    """Build and write the report; returns the path."""
    text = build_report(seed, include_heavy, experiment_ids)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
