"""Live service telemetry: per-stage latency percentiles + snapshots.

The service records one latency sample per completed session for each
pipeline stage it controls — ``queue_wait`` (admission to worker pickup),
``execute`` (the tag-session simulation itself) and ``session`` (their
sum) — and periodically exports an atomic JSON snapshot combining those
percentiles with the global :mod:`repro.obs.metrics` registry and the
queue's admission counters.  Snapshots are written through
:func:`repro.obs.export.write_live_snapshot`, so a dashboard (or the CI
artifact step) can poll the file while the service is busy and always
read a complete document.

Latency numbers are *measured*, not deterministic — they live in the
soak report's ``operations`` section, never in the bit-identity-gated
``aggregates``.
"""

from __future__ import annotations

import math
import threading
import time

from repro.obs.export import write_live_snapshot

#: Stages the service times for every session.
STAGES = ("queue_wait", "execute", "session")


def percentile(values, q):
    """Nearest-rank percentile of ``values`` (``None`` when empty).

    Nearest-rank keeps every reported number an actually-observed
    latency, which reads better in a soak report than interpolated
    values that no session experienced.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServiceTelemetry:
    """Latency samples plus periodic snapshot export for one service."""

    def __init__(self, snapshot_path=None, snapshot_every=16):
        snapshot_every = int(snapshot_every)
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every
        self._lock = threading.Lock()
        self._samples = {stage: [] for stage in STAGES}
        self._since_export = 0
        self.exports = 0
        self.started_at = time.perf_counter()

    def record_session(self, queue_wait_seconds, execute_seconds):
        """Record one completed session; returns True when an export is due."""
        with self._lock:
            self._samples["queue_wait"].append(float(queue_wait_seconds))
            self._samples["execute"].append(float(execute_seconds))
            self._samples["session"].append(
                float(queue_wait_seconds) + float(execute_seconds)
            )
            self._since_export += 1
            return (
                self.snapshot_path is not None
                and self._since_export >= self.snapshot_every
            )

    @property
    def sessions_recorded(self):
        with self._lock:
            return len(self._samples["session"])

    def stage_percentiles(self):
        """``{stage: {count, mean, p50, p99, max}}`` over every sample."""
        with self._lock:
            samples = {stage: list(s) for stage, s in self._samples.items()}
        out = {}
        for stage, values in samples.items():
            out[stage] = {
                "count": len(values),
                "mean_seconds": (
                    sum(values) / len(values) if values else None
                ),
                "p50_seconds": percentile(values, 50),
                "p99_seconds": percentile(values, 99),
                "max_seconds": max(values) if values else None,
            }
        return out

    def export(self, service_section):
        """Write one snapshot now (no-op without a path); returns the path.

        ``service_section`` is the service's own view — state, workers,
        queue counters — merged alongside the latency percentiles and the
        global metrics registry.
        """
        if self.snapshot_path is None:
            return None
        payload = dict(service_section)
        payload["latency"] = self.stage_percentiles()
        payload["uptime_seconds"] = time.perf_counter() - self.started_at
        path = write_live_snapshot(self.snapshot_path, extra={"service": payload})
        with self._lock:
            self._since_export = 0
            self.exports += 1
        return path
