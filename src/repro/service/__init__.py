"""Always-on fleet service with live telemetry (`repro serve`).

The batch fleet machinery simulates a deployment and exits; *ubiquitous*
passive communication means a receiver that never does.  This package
refactors the fleet into a long-lived service:

* :mod:`repro.service.queue` — bounded priority-FIFO job queue with
  backpressure: submissions beyond the depth are shed, not buffered;
* :mod:`repro.service.service` — :class:`FleetService`: a worker-thread
  pool executing the same pure, pre-seeded tag-session tasks the batch
  engine runs (bit-identical results), with graceful drain and
  worker-pool reload that lose no accepted session;
* :mod:`repro.service.telemetry` — per-stage latency percentiles and
  periodic atomic JSON snapshots of the live :mod:`repro.obs` metrics;
* :mod:`repro.service.soak` — the deterministic soak harness behind
  ``repro serve --soak``: CRC-checkpointed cohort progress (kill the
  process, resume, bit-identical aggregates) plus the service-vs-batch
  equivalence gate, reported in ``SOAK_PR9.json``.

See DESIGN.md §18.
"""

from repro.service.queue import BackpressureShed, Job, JobQueue, QueueClosed
from repro.service.service import (
    FleetService,
    FleetTicket,
    ServiceError,
    SessionFailure,
    SessionTicket,
)
from repro.service.soak import (
    SoakError,
    build_soak_shards,
    default_spec,
    run_cohort_batch,
    run_cohort_service,
    run_soak,
)
from repro.service.telemetry import ServiceTelemetry, percentile

__all__ = [
    "BackpressureShed",
    "FleetService",
    "FleetTicket",
    "Job",
    "JobQueue",
    "QueueClosed",
    "ServiceError",
    "ServiceTelemetry",
    "SessionFailure",
    "SessionTicket",
    "SoakError",
    "build_soak_shards",
    "default_spec",
    "percentile",
    "run_cohort_batch",
    "run_cohort_service",
    "run_soak",
]
