"""The long-lived fleet service: job queue, worker pool, drain/reload.

:class:`FleetService` turns the batch-run fleet machinery into an
always-on process: tag-session requests are admitted through a bounded
:class:`~repro.service.queue.JobQueue` (submissions beyond the depth are
shed — see the queue's backpressure contract), executed by a pool of
worker threads, and their results collected by ticket.  Sessions are the
same pure, pre-seeded payloads the batch engine runs
(:class:`~repro.fleet.runner.TagTask` + :func:`_simulate_tag`), so a
fleet scheduled through the service is bit-identical to the equivalent
:meth:`FleetRunner.run` batch — the soak harness gates exactly that.

Lifecycle::

    idle --start()--> running --drain()--> drained --reopen()--> running
                         |                                |
                      reload()  (swap worker pool,    shutdown() --> stopped
                         |       queued jobs kept)
                         v
                      running

``drain`` closes the queue and blocks until every accepted session has a
result; ``reload`` finishes in-flight sessions, swaps the worker pool
(optionally resizing it) and keeps queued jobs untouched — no session is
lost or duplicated across either, which the service tests pin.

Worker threads (not processes) are the right pool here: session results
are pure functions of their task, numpy releases the GIL in the DSP hot
path, and the in-memory ambient stage can be shared without scratch
spills.  Process-level fan-out stays the batch engine's job.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.fleet.engine import EngineTelemetry, TaskFailure
from repro.fleet.runner import _simulate_tag
from repro.obs import metrics as obs_metrics
from repro.service.queue import BackpressureShed, JobQueue, QueueClosed
from repro.service.telemetry import ServiceTelemetry


class ServiceError(RuntimeError):
    """Lifecycle misuse or an exhausted wait inside the service."""


@dataclass(frozen=True)
class SessionTicket:
    """Claim check for one submitted session."""

    job_id: int


@dataclass
class SessionFailure:
    """Result slot for a session whose execution raised."""

    job_id: int
    error: str


@dataclass
class FleetTicket:
    """Claim check for a whole fleet scheduled as individual sessions."""

    runner: object
    schedule: object
    tickets: list


class FleetService:
    """Always-on tag-session service over the fleet substrates."""

    def __init__(
        self,
        workers=1,
        max_queue_depth=64,
        snapshot_path=None,
        snapshot_every=16,
        poll_seconds=0.05,
    ):
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.poll_seconds = float(poll_seconds)
        self.queue = JobQueue(max_queue_depth)
        self.telemetry = ServiceTelemetry(
            snapshot_path=snapshot_path, snapshot_every=snapshot_every
        )
        self.state = "idle"
        self.reloads = 0
        self.drains = 0
        self._results = {}
        self._result_ready = threading.Condition(threading.Lock())
        #: Sessions with a result (success or failure) — compared against
        #: ``queue.submitted`` by drain, so a popped-but-unfinished job
        #: can never be mistaken for done.
        self._completed = 0
        self._failed = 0
        self._stop = threading.Event()
        self._threads = []

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Spawn the worker pool; idempotent only from idle/drained."""
        if self.state == "running":
            raise ServiceError("service is already running")
        if self.state == "stopped":
            raise ServiceError("service is stopped; create a new one")
        self.queue.reopen()
        self._spawn_workers(self.workers)
        self.state = "running"
        return self

    def _spawn_workers(self, workers):
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(self._stop,),
                name=f"fleet-service-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def drain(self, timeout=300.0):
        """Close the door, finish everything accepted, export a snapshot.

        After drain the service is ``drained``: queued work is done,
        workers are alive and idle, and :meth:`reopen` re-admits.
        """
        if self.state not in ("running", "draining"):
            raise ServiceError(f"cannot drain from state {self.state!r}")
        self.state = "draining"
        self.queue.close()
        obs_metrics.counter_inc("service.drains")
        self.drains += 1
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._result_ready:
            while self._completed < self.queue.submitted:
                if deadline is not None and time.monotonic() > deadline:
                    raise ServiceError(
                        f"drain timed out with "
                        f"{self.queue.submitted - self._completed} "
                        f"session(s) outstanding"
                    )
                self._result_ready.wait(self.poll_seconds)
        self.state = "drained"
        self.telemetry.export(self._service_section())
        return self

    def reopen(self):
        """Re-admit submissions after a drain."""
        if self.state != "drained":
            raise ServiceError(f"cannot reopen from state {self.state!r}")
        self.queue.reopen()
        self.state = "running"
        return self

    def reload(self, workers=None):
        """Graceful pool swap: finish in-flight, keep the queue, restart.

        ``workers`` resizes the pool; queued jobs are untouched and new
        submissions keep being admitted while the pool swaps (they simply
        queue up until the fresh workers pull them).
        """
        if self.state not in ("running", "draining", "drained"):
            raise ServiceError(f"cannot reload from state {self.state!r}")
        self._stop.set()
        self.queue.wake_all()
        for thread in self._threads:
            thread.join()
        if workers is not None:
            workers = int(workers)
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            self.workers = workers
        self._spawn_workers(self.workers)
        self.reloads += 1
        obs_metrics.counter_inc("service.reloads")
        return self

    def shutdown(self):
        """Stop the pool and close the queue; idempotent."""
        if self.state == "stopped":
            return self
        self.queue.close()
        self._stop.set()
        self.queue.wake_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        self.telemetry.export(self._service_section())
        self.state = "stopped"
        return self

    def __enter__(self):
        if self.state == "idle":
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False

    # -- sessions ----------------------------------------------------------------

    def submit(self, fn, task, priority=0):
        """Admit one session ``fn(task)``; returns a :class:`SessionTicket`.

        Raises :class:`~repro.service.queue.BackpressureShed` when the
        queue is at depth (the session is *not* accepted — retry or drop)
        and :class:`~repro.service.queue.QueueClosed` while draining.
        """
        if self.state not in ("running", "draining"):
            raise ServiceError(
                f"cannot submit in state {self.state!r}; start() the service"
            )
        try:
            job = self.queue.submit((fn, task), priority=priority)
        except BackpressureShed:
            obs_metrics.counter_inc("service.sessions_shed")
            raise
        except QueueClosed:
            obs_metrics.counter_inc("service.sessions_rejected")
            raise
        obs_metrics.counter_inc("service.sessions_submitted")
        obs_metrics.gauge_set("service.queue_depth", self.queue.depth)
        return SessionTicket(job_id=job.job_id)

    def result(self, ticket, timeout=60.0):
        """Block for one session's result; pops it from the result map.

        Returns the session's value, or a :class:`SessionFailure` if its
        execution raised (the caller decides whether that is fatal).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._result_ready:
            while ticket.job_id not in self._results:
                if deadline is not None and time.monotonic() > deadline:
                    raise ServiceError(
                        f"timed out waiting for session {ticket.job_id}"
                    )
                self._result_ready.wait(self.poll_seconds)
            return self._results.pop(ticket.job_id)

    # -- fleet scheduling --------------------------------------------------------

    def submit_fleet(self, runner, payload_length=20000, priority=0):
        """Schedule a whole fleet as per-tag sessions; returns a ticket.

        The runner's :meth:`~repro.fleet.runner.FleetRunner.plan` fixes
        the MAC schedule and per-tag seeds up front, so however the
        sessions interleave with other tenants in the queue, the results
        are bit-identical to ``runner.run()``.  A shed submission is
        retried (with a tiny backoff) rather than dropped — backpressure
        slows a fleet down, it never silently loses a tag.
        """
        plan = runner.plan(payload_length=payload_length, parallel=False)
        tickets = []
        for task in plan.tasks:
            while True:
                try:
                    tickets.append(
                        self.submit(_simulate_tag, task, priority=priority)
                    )
                    break
                except BackpressureShed:
                    if self._stop.is_set():
                        raise ServiceError(
                            "service stopped while a fleet submission was "
                            "backed off"
                        )
                    time.sleep(self.poll_seconds / 10.0)
        return FleetTicket(
            runner=runner, schedule=plan.schedule, tickets=tickets
        )

    def fleet_result(self, fleet_ticket, timeout=60.0):
        """Collect a scheduled fleet into its :class:`FleetReport`."""
        raw = []
        for index, ticket in enumerate(fleet_ticket.tickets):
            result = self.result(ticket, timeout=timeout)
            if isinstance(result, SessionFailure):
                result = TaskFailure(index=index, error=result.error)
            raw.append(result)
        telemetry = EngineTelemetry(workers=self.workers)
        return fleet_ticket.runner.assemble_report(
            fleet_ticket.schedule, raw, telemetry=telemetry
        )

    # -- internals ---------------------------------------------------------------

    def _worker_loop(self, stop):
        while not stop.is_set():
            job = self.queue.get(timeout=self.poll_seconds)
            if job is None:
                continue
            queue_wait = time.perf_counter() - job.enqueued_at
            fn, task = job.payload
            execute_start = time.perf_counter()
            try:
                _, result = fn(task)
                obs_metrics.counter_inc("service.sessions_completed")
            except Exception as exc:  # a broken session must not kill the pool
                result = SessionFailure(
                    job_id=job.job_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                obs_metrics.counter_inc("service.sessions_failed")
            execute_seconds = time.perf_counter() - execute_start
            export_due = self.telemetry.record_session(
                queue_wait, execute_seconds
            )
            with self._result_ready:
                self._results[job.job_id] = result
                self._completed += 1
                if isinstance(result, SessionFailure):
                    self._failed += 1
                self._result_ready.notify_all()
            obs_metrics.gauge_set("service.queue_depth", self.queue.depth)
            if export_due:
                self.telemetry.export(self._service_section())

    def _service_section(self):
        with self._result_ready:
            completed, failed = self._completed, self._failed
        return {
            "state": self.state,
            "workers": self.workers,
            "reloads": self.reloads,
            "drains": self.drains,
            "queue": self.queue.counters(),
            "sessions": {"completed": completed, "failed": failed},
        }

    def summary(self):
        """One snapshot-shaped dict (also the CLI's summary source)."""
        section = self._service_section()
        section["latency"] = self.telemetry.stage_percentiles()
        return section
