"""Deterministic soak/endurance harness for the fleet service.

``repro serve --soak`` drives a fixed population of synthetic
tag-sessions — grouped into *cohorts*, each cohort one seeded
:class:`~repro.fleet.deployment.Deployment` — through a live
:class:`~repro.service.service.FleetService`, with campaign-style
CRC-checkpointed progress: every completed cohort's result row is
persisted through :class:`repro.campaign.checkpoint.CheckpointStore`
(the cohorts quack like campaign :class:`~repro.campaign.spec.Shard`\\ s),
so a SIGKILLed soak resumes from its run directory and still produces
the *bit-identical* final report an uninterrupted run would have.

The report (``SOAK_PR9.json``) is split on exactly that line:

* ``aggregates`` — deterministic by construction (session totals,
  per-cohort CRC-32 fingerprints, a grid CRC).  The kill-and-resume
  drill and the nightly workflow compare this section with ``==``.
* ``equivalence`` — the service-vs-batch gate: checked cohorts are
  re-run through a plain :meth:`FleetRunner.run` batch and their rows
  must match the service path bit for bit.
* ``operations`` — measured numbers (throughput, p50/p99 session
  latency, shed rate, peak RSS).  Real telemetry, never gated on
  equality.

Mid-soak the harness deliberately :meth:`~FleetService.reload`\\ s the
service once (after the first executed cohort) so every soak also
exercises the pool-swap path under load.
"""

from __future__ import annotations

import json
import os
import resource
import tempfile
import time

import numpy as np

from repro.campaign.checkpoint import CheckpointStore, canonical_crc
from repro.campaign.spec import Shard
from repro.fleet.deployment import Deployment
from repro.fleet.runner import FleetRunner
from repro.service.service import FleetService

#: Bumped when the soak grid or row layout changes; stale checkpoints
#: are re-run instead of merged.
SOAK_VERSION = 1

#: Full-mode defaults: 24 cohorts x 4 tags.  Smoke shrinks to 3 cohorts.
FULL_SESSIONS = 96
SMOKE_SESSIONS = 12


class SoakError(RuntimeError):
    """A soak that cannot produce a complete, verified grid."""


def default_spec(
    smoke=False,
    sessions=None,
    cohort_tags=4,
    seed=0,
    scheme="tdma",
    bandwidth_mhz=1.4,
    n_frames=2,
    payload_length=2000,
):
    """The JSON-safe soak parameter block (also the shard identity)."""
    if sessions is None:
        sessions = SMOKE_SESSIONS if smoke else FULL_SESSIONS
    sessions = int(sessions)
    cohort_tags = int(cohort_tags)
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if cohort_tags < 1:
        raise ValueError(f"cohort_tags must be >= 1, got {cohort_tags}")
    return {
        "version": SOAK_VERSION,
        "smoke": bool(smoke),
        "sessions": sessions,
        "cohort_tags": cohort_tags,
        "seed": int(seed),
        "scheme": str(scheme),
        "bandwidth_mhz": float(bandwidth_mhz),
        "n_frames": int(n_frames),
        "payload_length": int(payload_length),
    }


def build_soak_shards(spec):
    """Expand a soak spec into its ordered, seeded cohort shards.

    Same determinism contract as the campaign grid: identical spec →
    identical shards, ids and seeds, independent of execution.  The last
    cohort absorbs the remainder when ``sessions`` does not divide by
    ``cohort_tags``.
    """
    prefix = "soak-smoke" if spec["smoke"] else "soak"
    shards = []
    remaining = spec["sessions"]
    index = 0
    while remaining > 0:
        n_tags = min(spec["cohort_tags"], remaining)
        seed = int(
            np.random.SeedSequence([spec["seed"], index]).generate_state(1)[0]
        )
        params = {
            "version": spec["version"],
            "n_tags": int(n_tags),
            "scheme": spec["scheme"],
            "bandwidth_mhz": spec["bandwidth_mhz"],
            "n_frames": spec["n_frames"],
            "payload_length": spec["payload_length"],
        }
        shards.append(
            Shard(
                index=index,
                shard_id=f"{prefix}-{index:04d}",
                experiment="soak",
                params=params,
                seed=seed,
            )
        )
        remaining -= n_tags
        index += 1
    return shards


def _cohort_runner(params, seed):
    deployment = Deployment.ring(
        params["n_tags"],
        bandwidth_mhz=params["bandwidth_mhz"],
        n_frames=params["n_frames"],
    )
    return FleetRunner(deployment, scheme=params["scheme"], seed=seed)


def _cohort_row(report):
    """JSON-safe, deterministic view of one cohort's fleet report.

    Only result fields appear — no timings, no worker counts — so the
    row is identical whichever substrate (service or batch) produced it.
    NaN sync errors (tags that owned no airtime) map to ``None`` because
    NaN breaks both JSON round-trips and ``==`` comparisons.
    """
    tags = []
    for tag in report.tags:
        sync = tag.sync_error_us
        tags.append(
            {
                "name": tag.name,
                "n_bits": int(tag.n_bits),
                "n_errors": int(tag.n_errors),
                "n_windows": int(tag.n_windows),
                "n_lost_windows": int(tag.n_lost_windows),
                "n_erased_windows": int(tag.n_erased_windows),
                "owned_half_frames": int(tag.owned_half_frames),
                "collided_half_frames": int(tag.collided_half_frames),
                "sync_error_us": None if np.isnan(sync) else float(sync),
                "failed": bool(tag.failed),
            }
        )
    return {
        "scheme": report.scheme,
        "n_half_frames": int(report.n_half_frames),
        "collision_fraction": float(report.collision_fraction),
        "tags": tags,
    }


def run_cohort_batch(params, seed):
    """The reference path: one plain batch ``FleetRunner.run``."""
    with _cohort_runner(params, seed) as runner:
        report = runner.run(payload_length=params["payload_length"])
    return _cohort_row(report)


def run_cohort_service(service, params, seed):
    """The service path: the same cohort scheduled as queued sessions."""
    with _cohort_runner(params, seed) as runner:
        ticket = service.submit_fleet(
            runner, payload_length=params["payload_length"]
        )
        report = service.fleet_result(ticket)
    return _cohort_row(report)


def _aggregates(spec, shards, rows):
    """The deterministic section the resume drills compare bit-for-bit."""
    totals = {
        "n_bits": 0,
        "n_errors": 0,
        "n_windows": 0,
        "n_lost_windows": 0,
        "n_erased_windows": 0,
    }
    sessions = 0
    cohort_crcs = []
    for row in rows:
        for tag in row["tags"]:
            sessions += 1
            for key in totals:
                totals[key] += tag[key]
        cohort_crcs.append(canonical_crc(row))
    return {
        "version": SOAK_VERSION,
        "spec": dict(spec),
        "cohorts": len(shards),
        "sessions": sessions,
        "totals": totals,
        "cohort_crc32": cohort_crcs,
        "grid_crc32": canonical_crc(cohort_crcs),
    }


def _write_report(path, report):
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".soak-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def run_soak(
    output,
    run_dir,
    spec,
    workers=2,
    queue_depth=8,
    resume=False,
    snapshot_path=None,
    snapshot_every=8,
    equivalence_cohorts=1,
    after_cohort=None,
):
    """Run (or resume) a soak; writes and returns the report dict.

    ``after_cohort(index)`` is a test hook invoked after each cohort is
    checkpointed — the kill-and-resume drill raises from it to die at a
    chosen point.  ``equivalence_cohorts`` bounds how many cohorts are
    re-run through the batch path for the bit-identity gate (every
    checked cohort doubles its cost).
    """
    shards = build_soak_shards(spec)
    store = CheckpointStore(run_dir)
    service = FleetService(
        workers=workers,
        max_queue_depth=queue_depth,
        snapshot_path=snapshot_path,
        snapshot_every=snapshot_every,
    )
    started = time.perf_counter()
    resumed = completed = 0
    service.start()
    try:
        for shard in shards:
            if resume:
                status, _ = store.verify(shard)
                if status == "ok":
                    resumed += 1
                    continue
            cohort_start = time.perf_counter()
            row = run_cohort_service(service, shard.params, shard.seed)
            store.write(
                shard, row,
                elapsed_seconds=time.perf_counter() - cohort_start,
            )
            completed += 1
            if after_cohort is not None:
                after_cohort(shard.index)
            if completed == 1 and len(shards) > 1:
                # Exercise the pool swap under load once per soak; results
                # are pure functions of their tasks, so this cannot change
                # the aggregates.
                service.reload()
        service.drain()
    finally:
        service.shutdown()
    wall_seconds = time.perf_counter() - started

    # The full grid must verify — whoever wrote it, this run or a killed
    # predecessor.  Rows are read back from disk (in grid order) so the
    # aggregates cover exactly what a resume would see.
    rows = []
    for shard in shards:
        status, row = store.verify(shard)
        if status != "ok":
            raise SoakError(
                f"cohort {shard.shard_id} checkpoint is {status} after the "
                f"soak; cannot aggregate"
            )
        rows.append(row)

    equivalence = []
    for shard in shards[: max(0, int(equivalence_cohorts))]:
        batch_row = run_cohort_batch(shard.params, shard.seed)
        equivalence.append(
            {
                "shard_id": shard.shard_id,
                "identical": batch_row == rows[shard.index],
            }
        )

    latency = service.telemetry.stage_percentiles()
    queue_counters = service.queue.counters()
    attempts = queue_counters["submitted"] + queue_counters["shed"]
    # Sessions that actually ran through the queue this invocation
    # (resumed cohorts' sessions did not).
    executed_sessions = queue_counters["submitted"]
    report = {
        "aggregates": _aggregates(spec, shards, rows),
        "equivalence": {
            "checked_cohorts": len(equivalence),
            "cohorts": equivalence,
            "passed": all(e["identical"] for e in equivalence),
        },
        "progress": {
            "completed_cohorts": completed,
            "resumed_cohorts": resumed,
            "total_cohorts": len(shards),
        },
        "operations": {
            "wall_seconds": wall_seconds,
            "workers": service.workers,
            "queue_depth": queue_depth,
            "executed_sessions": executed_sessions,
            "throughput_sessions_per_second": (
                executed_sessions / wall_seconds if wall_seconds > 0 else 0.0
            ),
            "session_latency": latency["session"],
            "queue_wait_latency": latency["queue_wait"],
            "execute_latency": latency["execute"],
            "shed": {
                "count": queue_counters["shed"],
                "attempts": attempts,
                "rate": (
                    queue_counters["shed"] / attempts if attempts else 0.0
                ),
            },
            "reloads": service.reloads,
            "snapshot_exports": service.telemetry.exports,
            "peak_rss_mb": (
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
            ),
        },
        "passed": all(e["identical"] for e in equivalence),
    }
    _write_report(output, report)
    return report
