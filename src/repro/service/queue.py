"""Bounded priority job queue with backpressure, drain and reload.

The queue is the admission-control half of the service: submissions
beyond ``max_depth`` are *shed* immediately (raising
:class:`BackpressureShed`) rather than buffered without bound, so a
burst of tag-session requests degrades into a measured shed rate instead
of unbounded memory growth.  Ordering is strict FIFO per priority level:
jobs pop in ascending ``(priority, submission order)``, so a lower
priority number always drains first, and two jobs of equal priority pop
in the order they were accepted — the invariant the property tests pin.

``close()`` flips the queue into drain mode (new submissions raise
:class:`QueueClosed`; already-accepted jobs remain poppable) and
``reopen()`` re-admits.  Jobs are handed out exactly once — a popped job
is gone from the heap under the same lock that admitted it — which is
what makes the service's no-loss/no-duplication guarantee hold across
drain and reload.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field


class BackpressureShed(RuntimeError):
    """Submission rejected because the queue is at ``max_depth``."""


class QueueClosed(RuntimeError):
    """Submission rejected because the queue is draining or shut down."""


@dataclass
class Job:
    """One accepted unit of work."""

    job_id: int
    priority: int
    payload: object
    #: ``perf_counter`` timestamp at admission; queue-wait latency is
    #: measured from here.
    enqueued_at: float = field(default_factory=time.perf_counter)


class JobQueue:
    """Thread-safe bounded priority-FIFO queue."""

    def __init__(self, max_depth=64):
        max_depth = int(max_depth)
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._heap = []  # (priority, seq, Job)
        self._not_empty = threading.Condition(threading.Lock())
        self._seq = 0
        self._closed = False
        #: Jobs accepted / rejected at the door / handed to a worker.
        self.submitted = 0
        self.shed = 0
        self.rejected_closed = 0
        self.popped = 0

    @property
    def depth(self):
        with self._not_empty:
            return len(self._heap)

    @property
    def closed(self):
        with self._not_empty:
            return self._closed

    def submit(self, payload, priority=0):
        """Admit one job; returns it, or raises the backpressure errors."""
        with self._not_empty:
            if self._closed:
                self.rejected_closed += 1
                raise QueueClosed(
                    "queue is closed to new submissions (draining)"
                )
            if len(self._heap) >= self.max_depth:
                self.shed += 1
                raise BackpressureShed(
                    f"queue depth {len(self._heap)} is at max_depth "
                    f"{self.max_depth}; session shed"
                )
            self._seq += 1
            self.submitted += 1
            job = Job(job_id=self._seq, priority=int(priority), payload=payload)
            heapq.heappush(self._heap, (job.priority, self._seq, job))
            self._not_empty.notify()
            return job

    def get(self, timeout=None):
        """Pop the front job, or ``None`` on timeout / spurious wake-up.

        Workers treat ``None`` as "re-check your stop flag and try
        again"; :meth:`wake_all` deliberately triggers that re-check so a
        reload or shutdown never waits out a full timeout.
        """
        with self._not_empty:
            if not self._heap:
                self._not_empty.wait(timeout)
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            self.popped += 1
            return job

    def wake_all(self):
        """Wake every blocked :meth:`get` so callers re-check stop flags."""
        with self._not_empty:
            self._not_empty.notify_all()

    def close(self):
        """Stop admitting; queued jobs remain poppable (drain mode)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def reopen(self):
        """Re-admit submissions after a drain."""
        with self._not_empty:
            self._closed = False

    def counters(self):
        """Flat snapshot of the admission counters."""
        with self._not_empty:
            return {
                "depth": len(self._heap),
                "max_depth": self.max_depth,
                "submitted": self.submitted,
                "shed": self.shed,
                "rejected_closed": self.rejected_closed,
                "popped": self.popped,
            }
