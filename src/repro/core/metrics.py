"""Link-level metrics: BER, throughput, window alignment.

The tag's genie schedule and the receiver's demodulated windows are
matched by their absolute sample positions (the receiver's found offset
should land exactly on the tag's chip window; a mismatch beyond half a
symbol means the preamble search failed and the window counts as fully
errored — the honest accounting for a lost packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics as obs_metrics


@dataclass
class LinkReport:
    """Outcome of one end-to-end run."""

    n_bits: int
    n_errors: int
    duration_seconds: float
    n_windows: int = 0
    n_lost_windows: int = 0
    #: Windows the receiver marked as erasures (sync loss detected via
    #: preamble-correlation collapse).  Excluded from ``n_bits`` — they
    #: feed link-layer retransmission, not the BER denominator.
    n_erased_windows: int = 0
    #: True when the tag never acquired sync (no comparator edges) and
    #: therefore never transmitted.
    sync_failed: bool = False
    sync_error_us: float = float("nan")
    lte_block_error_rate: float = float("nan")
    lte_throughput_bps: float = float("nan")
    extras: dict = field(default_factory=dict)

    @property
    def ber(self):
        if self.n_bits == 0:
            return float("nan")
        return self.n_errors / self.n_bits

    @property
    def throughput_bps(self):
        """Correctly demodulated backscatter bits per second (paper §4.2)."""
        if self.duration_seconds <= 0:
            return 0.0
        return (self.n_bits - self.n_errors) / self.duration_seconds


def align_windows(schedule_windows, demod_starts, tolerance):
    """Match genie chip windows to demodulated windows by position.

    Returns a list of (schedule_index, demod_index or None).  Only data
    windows are considered on the schedule side.

    The matching is one-to-one: each demodulated window can satisfy at
    most one schedule window.  (A per-window nearest-neighbour pick let a
    single demod window "satisfy" two schedule windows, masking a lost
    window — the BER then undercounted errors for the one that was never
    actually demodulated.)  Candidate pairs within tolerance are assigned
    greedily by ascending distance, ties broken by schedule then demod
    order, so the nearest available demod window wins.
    """
    demod_starts = np.asarray(demod_starts, dtype=np.int64)
    data_indices = [
        s_index
        for s_index, window in enumerate(schedule_windows)
        if window.kind == "data"
    ]
    matched = {s_index: None for s_index in data_indices}
    if len(demod_starts) > 0 and data_indices:
        candidates = []
        for s_index in data_indices:
            deltas = np.abs(demod_starts - schedule_windows[s_index].start)
            for d_index in np.flatnonzero(deltas <= tolerance):
                candidates.append((int(deltas[d_index]), s_index, int(d_index)))
        candidates.sort()
        used_demod = set()
        for _, s_index, d_index in candidates:
            if matched[s_index] is not None or d_index in used_demod:
                continue
            matched[s_index] = d_index
            used_demod.add(d_index)
    return [(s_index, matched[s_index]) for s_index in data_indices]


@dataclass
class BerBreakdown:
    """Erasure-aware bit accounting for one schedule/demod pair.

    ``n_bits``/``n_errors`` cover only windows the receiver *claimed* to
    demodulate; erasure-marked windows (sync loss detected) are excluded
    from both and counted in ``n_erased`` — they carry no garbage bits
    into the BER, and the link layer treats them as frames to retransmit.
    """

    n_bits: int = 0
    n_errors: int = 0
    n_windows: int = 0
    n_lost: int = 0
    n_erased: int = 0


def measure_link(schedule, demod_result, tolerance):
    """Erasure-aware window accounting; returns a :class:`BerBreakdown`.

    Unmatched (lost) windows count every bit as errored — the receiver
    emitted bits for them and got none right.  Windows the receiver
    explicitly flagged as erasures (``demod_result.window_erased``) are
    excluded from the bit counts entirely: declaring "I lost sync here"
    is honest signalling, not garbage delivery.
    """
    pairs = align_windows(schedule.windows, demod_result.starts, tolerance)
    erased_flags = getattr(demod_result, "window_erased", None)
    out = BerBreakdown(n_windows=len(pairs))
    for s_index, d_index in pairs:
        sent = schedule.windows[s_index].bits
        if d_index is not None and erased_flags and erased_flags[d_index]:
            out.n_erased += 1
            continue
        out.n_bits += len(sent)
        if d_index is None:
            out.n_errors += len(sent)
            out.n_lost += 1
            continue
        received = demod_result.window_bits[d_index]
        if len(received) != len(sent):
            out.n_errors += len(sent)
            out.n_lost += 1
            continue
        out.n_errors += int(np.sum(received != sent))
    obs_metrics.counter_inc("link.windows", out.n_windows)
    obs_metrics.counter_inc("link.bits", out.n_bits)
    if out.n_errors:
        obs_metrics.counter_inc("link.bit_errors", out.n_errors)
    if out.n_lost:
        obs_metrics.counter_inc("link.lost_windows", out.n_lost)
    if out.n_erased:
        obs_metrics.counter_inc("link.erased_windows", out.n_erased)
    return out


def measure_ber(schedule, demod_result, tolerance):
    """Count bit errors between a tag schedule and a demodulation result.

    Unmatched (lost) windows count every bit as errored.
    Returns ``(n_bits, n_errors, n_windows, n_lost)`` — the legacy view of
    :func:`measure_link` (erased windows, if any, are excluded from the
    bit counts there too).
    """
    breakdown = measure_link(schedule, demod_result, tolerance)
    return (
        breakdown.n_bits,
        breakdown.n_errors,
        breakdown.n_windows,
        breakdown.n_lost,
    )
