"""Link-level metrics: BER, throughput, window alignment.

The tag's genie schedule and the receiver's demodulated windows are
matched by their absolute sample positions (the receiver's found offset
should land exactly on the tag's chip window; a mismatch beyond half a
symbol means the preamble search failed and the window counts as fully
errored — the honest accounting for a lost packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LinkReport:
    """Outcome of one end-to-end run."""

    n_bits: int
    n_errors: int
    duration_seconds: float
    n_windows: int = 0
    n_lost_windows: int = 0
    sync_error_us: float = float("nan")
    lte_block_error_rate: float = float("nan")
    lte_throughput_bps: float = float("nan")
    extras: dict = field(default_factory=dict)

    @property
    def ber(self):
        if self.n_bits == 0:
            return float("nan")
        return self.n_errors / self.n_bits

    @property
    def throughput_bps(self):
        """Correctly demodulated backscatter bits per second (paper §4.2)."""
        if self.duration_seconds <= 0:
            return 0.0
        return (self.n_bits - self.n_errors) / self.duration_seconds


def align_windows(schedule_windows, demod_starts, tolerance):
    """Match genie chip windows to demodulated windows by position.

    Returns a list of (schedule_index, demod_index or None).  Only data
    windows are considered on the schedule side.

    The matching is one-to-one: each demodulated window can satisfy at
    most one schedule window.  (A per-window nearest-neighbour pick let a
    single demod window "satisfy" two schedule windows, masking a lost
    window — the BER then undercounted errors for the one that was never
    actually demodulated.)  Candidate pairs within tolerance are assigned
    greedily by ascending distance, ties broken by schedule then demod
    order, so the nearest available demod window wins.
    """
    demod_starts = np.asarray(demod_starts, dtype=np.int64)
    data_indices = [
        s_index
        for s_index, window in enumerate(schedule_windows)
        if window.kind == "data"
    ]
    matched = {s_index: None for s_index in data_indices}
    if len(demod_starts) > 0 and data_indices:
        candidates = []
        for s_index in data_indices:
            deltas = np.abs(demod_starts - schedule_windows[s_index].start)
            for d_index in np.flatnonzero(deltas <= tolerance):
                candidates.append((int(deltas[d_index]), s_index, int(d_index)))
        candidates.sort()
        used_demod = set()
        for _, s_index, d_index in candidates:
            if matched[s_index] is not None or d_index in used_demod:
                continue
            matched[s_index] = d_index
            used_demod.add(d_index)
    return [(s_index, matched[s_index]) for s_index in data_indices]


def measure_ber(schedule, demod_result, tolerance):
    """Count bit errors between a tag schedule and a demodulation result.

    Unmatched (lost) windows count every bit as errored.
    Returns ``(n_bits, n_errors, n_windows, n_lost)``.
    """
    pairs = align_windows(schedule.windows, demod_result.starts, tolerance)
    n_bits = 0
    n_errors = 0
    n_lost = 0
    for s_index, d_index in pairs:
        sent = schedule.windows[s_index].bits
        n_bits += len(sent)
        if d_index is None:
            n_errors += len(sent)
            n_lost += 1
            continue
        received = demod_result.window_bits[d_index]
        if len(received) != len(sent):
            n_errors += len(sent)
            n_lost += 1
            continue
        n_errors += int(np.sum(received != sent))
    return n_bits, n_errors, len(pairs), n_lost
