"""End-to-end LScatter system: configuration, IQ simulation, link model.

:class:`~repro.core.system.LScatterSystem` wires eNodeB -> channel -> tag
-> channel -> UE at sample level; :mod:`repro.core.link_budget` is the
closed-form goodput/BER model calibrated against it and used for the
long-duration and distance-sweep experiments.
"""

from repro.core.config import SystemConfig
from repro.core.metrics import LinkReport, align_windows, measure_ber
from repro.core.system import AmbientStage, LScatterSystem
from repro.core.link_budget import LScatterLinkModel, LinkPrediction

__all__ = [
    "SystemConfig",
    "LinkReport",
    "align_windows",
    "measure_ber",
    "AmbientStage",
    "LScatterSystem",
    "LScatterLinkModel",
    "LinkPrediction",
]
