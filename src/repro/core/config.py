"""Scenario configuration for the end-to-end simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.link import (
    DEFAULT_CARRIER_HZ,
    DEFAULT_NOISE_FIGURE_DB,
    DEFAULT_SYSTEM_GAIN_DB,
    DEFAULT_TAG_LOSS_DB,
    LinkBudget,
)
from repro.lte.frame import CellConfig
from repro.lte.params import LteParams


@dataclass
class SystemConfig:
    """Everything that defines one LScatter experiment run.

    Distances are in feet, as the paper reports them.
    """

    bandwidth_mhz: float = 20.0
    venue: str = "smart_home"
    enb_to_tag_ft: float = 3.0
    tag_to_ue_ft: float = 3.0
    enb_to_ue_ft: float = None  # defaults to enb_to_tag + tag_to_ue
    tx_power_dbm: float = 10.0
    carrier_hz: float = DEFAULT_CARRIER_HZ
    system_gain_db: float = DEFAULT_SYSTEM_GAIN_DB
    tag_loss_db: float = DEFAULT_TAG_LOSS_DB
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB
    cell: CellConfig = field(default_factory=CellConfig)
    n_frames: int = 2
    #: "circuit" runs the analog sync simulation; "model" draws the sync
    #: error from the circuit's calibrated distribution (fast); an integer
    #: via ``sync_error_samples`` pins it exactly.
    sync_mode: str = "model"
    sync_error_samples: int = None
    #: "decoded" reconstructs the ambient reference from the UE's own LTE
    #: decode (the deployable receiver); "genie" uses the transmitted
    #: samples directly (fast, used by wide parameter sweeps).
    reference_mode: str = "decoded"
    multipath: bool = True
    add_noise: bool = True
    #: Structural (unmodulated, in-band) reflection of the tag relative to
    #: the modulated backscatter — the residual the Fig. 32 impact
    #: experiment measures.
    structural_reflection_db: float = -15.0
    #: UE local-oscillator error in parts-per-million of the carrier.
    #: 0 models a perfect LO; real crystals are +-(0.1-1) ppm and the UE
    #: estimates/corrects the resulting CFO from the cyclic prefix.
    ue_cfo_ppm: float = 0.0
    #: Optional :class:`repro.faults.plan.FaultPlan` — seeded carrier and
    #: tag fault injection at the stage boundaries.  ``None`` (and any
    #: all-zero plan) leaves the pipeline bit-identical to the clean run.
    faults: object = None
    #: Receiver erasure detection: fraction of *known* preamble chips a
    #: packet may mis-slice before its windows are declared erasures
    #: (sync loss) instead of bits.  ``None`` disables (legacy behaviour);
    #: 0.35 is a robust default when fault injection is in play.
    erasure_threshold: float = None
    #: Backscatter demodulation chunking: ``None`` demodulates the whole
    #: capture at once; an integer runs the chunked streaming receiver
    #: (:class:`repro.bsrx.streaming.StreamingDemodulator`) with that many
    #: half-frames per chunk — bit-identical output, O(chunk) demod
    #: working set.
    demod_chunk_half_frames: int = None
    #: Per-window SNR-gated erasure escalation (dB): data windows whose
    #: post-detection SNR proxy falls below this are emitted as erasures
    #: even when the packet's preamble passed — graceful degradation under
    #: in-packet jammer bursts.  ``None`` disables (legacy behaviour).
    window_snr_gate_db: float = None
    #: Adaptive re-sync budget for ``sync_mode="circuit"``: when the
    #: comparator finds no PSS edges, retry up to this many times with a
    #: geometrically relaxed threshold margin (bounded exponential
    #: backoff).  0 keeps the legacy single-pass circuit bit-identical.
    sync_resync_attempts: int = 0
    #: Which ambient-substrate mode the tag/receiver pair runs (see
    #: :mod:`repro.substrates`).  ``"chip"`` — the paper's scheme — keeps
    #: the pipeline bit-identical to the pre-substrate code.
    substrate: str = "chip"

    def __post_init__(self):
        if self.enb_to_ue_ft is None:
            self.enb_to_ue_ft = self.enb_to_tag_ft + self.tag_to_ue_ft
        if self.sync_mode not in ("circuit", "model"):
            raise ValueError("sync_mode must be 'circuit' or 'model'")
        if self.reference_mode not in ("decoded", "genie"):
            raise ValueError("reference_mode must be 'decoded' or 'genie'")
        if self.erasure_threshold is not None and not (
            0.0 <= float(self.erasure_threshold) <= 1.0
        ):
            raise ValueError(
                f"erasure_threshold must be in [0, 1] or None, "
                f"got {self.erasure_threshold!r}"
            )
        if self.demod_chunk_half_frames is not None:
            if int(self.demod_chunk_half_frames) < 1:
                raise ValueError(
                    f"demod_chunk_half_frames must be >= 1 or None, "
                    f"got {self.demod_chunk_half_frames!r}"
                )
            self.demod_chunk_half_frames = int(self.demod_chunk_half_frames)
        if self.window_snr_gate_db is not None:
            self.window_snr_gate_db = float(self.window_snr_gate_db)
        if int(self.sync_resync_attempts) < 0:
            raise ValueError(
                f"sync_resync_attempts must be >= 0, "
                f"got {self.sync_resync_attempts!r}"
            )
        self.sync_resync_attempts = int(self.sync_resync_attempts)
        # Imported lazily: repro.substrates pulls in the mode modules,
        # which must stay importable without this config module settled.
        from repro.substrates import available_substrates

        if self.substrate not in available_substrates():
            known = ", ".join(available_substrates())
            raise ValueError(
                f"unknown substrate {self.substrate!r}; "
                f"registered substrates: {known}"
            )

    @property
    def params(self):
        return LteParams.from_bandwidth(self.bandwidth_mhz)

    def budget(self):
        return LinkBudget(
            tx_power_dbm=self.tx_power_dbm,
            carrier_hz=self.carrier_hz,
            venue=self.venue,
            system_gain_db=self.system_gain_db,
            tag_loss_db=self.tag_loss_db,
            noise_figure_db=self.noise_figure_db,
        )
