"""End-to-end IQ-level LScatter simulation.

One :meth:`LScatterSystem.run` call simulates the full paper pipeline:

  eNodeB frames -> (channel) -> tag [envelope sync -> scheduler -> RF
  switch] -> (channel) -> UE [LTE decode of the direct band, ambient
  reconstruction, backscatter chip demodulation] -> BER / throughput.

Two captures reach the UE: the **direct band** (the ambient LTE signal the
UE decodes normally — also how it rebuilds the reference waveform ``x_n``)
and the **shifted band** at ``fc + 1/Ts`` (the backscattered hybrid signal,
represented at its own baseband — the frequency shift of paper Eq. 4 is
implicit in the tuning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsrx.demodulator import BackscatterDemodulator
from repro.channel.fading import FadingChannel, venue_k_factor_db
from repro.channel.link import BackscatterLink, DirectLink
from repro.channel.noise import add_thermal_noise
from repro.core.config import SystemConfig
from repro.core.metrics import LinkReport
from repro.faults.carrier import CarrierFaultSet
from repro.faults.tag import TagFaultInjector, drift_per_half_frame_samples
from repro.lte.cfo import apply_cfo, correct_cfo, estimate_cfo
from repro.lte.frame import FrameBuilder
from repro.lte.params import FRAME_SECONDS, SUBFRAMES_PER_FRAME
from repro.lte.ofdm import modulate_frame
from repro.lte.receiver import LteReceiver
from repro.lte.transmitter import LteTransmitter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.substrates import get_substrate
from repro.tag.controller import TagController
from repro.tag.modulator import ChipModulator
from repro.tag.sync_circuit import SyncCircuit
from repro.utils.rng import make_rng, spawn_rngs

#: Residual sync-error distribution after the tag's calibration constant
#: (see :mod:`repro.tag.sync_circuit`): the raw 30-40 us comparator delay
#: is calibrated out; what remains is jitter.
RESIDUAL_SYNC_MEAN_SECONDS = 1e-6
RESIDUAL_SYNC_STD_SECONDS = 2.5e-6


@dataclass
class RunArtifacts:
    """Intermediate waveforms, for examples and debugging."""

    capture: object | None = None
    schedule: object | None = None
    demod: object | None = None
    direct_rx: np.ndarray | None = None
    shifted_rx: np.ndarray | None = None
    sync_result: object | None = None


@dataclass
class FrontEndState:
    """Everything stages 1-5 produce, short of demodulation.

    :meth:`LScatterSystem.run_frontend` returns one of these;
    :meth:`LScatterSystem.finalize_run` turns it plus a demod result into
    the :class:`~repro.core.metrics.LinkReport`.  The split lets the
    batched cross-tag runner stack many tags' front-ends into one
    :meth:`~repro.bsrx.demodulator.BackscatterDemodulator.demodulate_many`
    call without re-deriving any randomness — the RNG draws all happen
    in the front-end, in the same order as the monolithic run.
    """

    capture: object
    schedule: object
    shifted_rx: np.ndarray
    direct_rx: np.ndarray
    reference: np.ndarray
    half_starts: np.ndarray
    sync_failed: bool
    error_samples: int | None
    sync_result: object | None
    lte_result: object | None


@dataclass
class AmbientStage:
    """Output of the reusable ambient half of a simulation.

    The eNodeB capture and its unit-power normalisation are deterministic
    per ``(bandwidth, cell, n_frames, transmitter seed)`` and independent
    of any tag, so one :class:`AmbientStage` can feed many per-tag stages
    (see :mod:`repro.fleet.ambient`, which also shares it across worker
    processes through a read-only memory map).
    """

    capture: object
    unit: np.ndarray

    @property
    def n_samples(self):
        return len(self.unit)


class LScatterSystem:
    """Wire up one configured LScatter scenario."""

    def __init__(self, config=None, rng=None):
        self.config = config or SystemConfig()
        self.rng = make_rng(rng)
        self.params = self.config.params
        self.budget = self.config.budget()
        self.controller = TagController(self.params, rng=self.rng)
        self.modulator = ChipModulator()
        self.demodulator = BackscatterDemodulator(
            self.params,
            erasure_threshold=getattr(self.config, "erasure_threshold", None),
            snr_gate_db=getattr(self.config, "window_snr_gate_db", None),
        )
        # The substrate owns the mode-specific hooks (ambient synthesis,
        # schedule layout, demodulation, accounting); "chip" delegates to
        # the controller/demodulator above, bit-identically.
        substrate_cls = get_substrate(getattr(self.config, "substrate", "chip"))
        self.substrate = substrate_cls(self)
        if (
            self.config.reference_mode == "decoded"
            and not self.substrate.supports_decoded_reference
        ):
            raise ValueError(
                f"substrate {self.substrate.name!r} has no decodable downlink; "
                f"use reference_mode='genie'"
            )
        if (
            self.config.sync_mode == "circuit"
            and self.config.sync_error_samples is None
            and not self.substrate.supports_circuit_sync
        ):
            raise ValueError(
                f"substrate {self.substrate.name!r} has no PSS envelope for the "
                f"sync circuit; use sync_mode='model' or pin sync_error_samples"
            )
        if (
            getattr(self.config, "demod_chunk_half_frames", None)
            and not self.substrate.supports_streaming
        ):
            raise ValueError(
                f"substrate {self.substrate.name!r} has no streaming receiver; "
                f"leave demod_chunk_half_frames unset"
            )

    # -- helpers ---------------------------------------------------------------

    def _fading(self, rng, distance_ft, nlos=False):
        """Small-scale fading for one hop.

        The Rician K factor grows as the hop shrinks — a tag a few feet
        from the eNodeB or UE sees an almost-flat channel, which is the
        regime the paper's receiver (and its Fig. 19 "within 15 feet of
        either end") operates in.
        """
        if not self.config.multipath:
            return FadingChannel.flat()
        k_db = venue_k_factor_db(self.config.venue, distance_ft, nlos)
        n_taps = 2 if self.config.venue == "outdoor" else 3
        return FadingChannel.rician(
            k_db=k_db, n_taps=n_taps, decay_db_per_tap=5.0, rng=rng
        )

    def _sync_error_samples(self, ambient_at_tag, rng, edge_fault=None):
        """Residual timing error of the tag, per the configured mode.

        Returns ``(error_samples, sync_result)``; ``error_samples`` is
        ``None`` when the circuit detected no PSS edges at all (sync
        acquisition failed) — the tag then never transmits, and the run
        degrades to an empty schedule instead of raising.
        """
        config = self.config
        fs = self.params.sample_rate_hz
        if config.sync_error_samples is not None:
            return int(config.sync_error_samples), None
        if config.sync_mode == "circuit":
            circuit = SyncCircuit(
                fs,
                rng=rng,
                edge_fault=edge_fault,
                max_resync_attempts=getattr(
                    config, "sync_resync_attempts", 0
                ),
            )
            result = circuit.process(ambient_at_tag)
            if len(result.edges) == 0:
                return None, result
            timing = self.controller.timing_from_sync(
                result, true_half_frame_start=0
            )
            return int(timing.error_samples), result
        error_s = rng.normal(RESIDUAL_SYNC_MEAN_SECONDS, RESIDUAL_SYNC_STD_SECONDS)
        return int(round(error_s * fs)), None

    def _reconstruct_reference(self, direct_rx, tx_capture, lte_result):
        """Rebuild the ambient waveform the demodulator divides by.

        In ``decoded`` mode the UE re-synthesises each frame from the
        transport blocks it decoded (falling back to the noisy observation
        if a CRC failed or a frame produced no decoded subframes at all,
        which would degrade those chips — honest behaviour for a deployable
        receiver).  In ``genie`` mode the transmitted samples are used
        directly.

        The reference must stay sample-aligned with the capture: every
        transmitted frame contributes exactly ``samples_per_frame``
        samples whether or not it decoded.  (Iterating only over decoded
        frames silently dropped absent ones, shortening the reference and
        misaligning every later frame's chips.)
        """
        if self.config.reference_mode == "genie" or lte_result is None:
            return tx_capture.samples
        n = self.params.samples_per_frame
        n_frames = len(tx_capture.samples) // n
        builder = FrameBuilder(self.params, self.config.cell, rng=0)
        ref_power = np.mean(np.abs(tx_capture.samples[:n]) ** 2)
        by_frame = {}
        for sf in lte_result.subframes:
            by_frame.setdefault(sf.frame, []).append(sf)
        pieces = []
        for f in range(n_frames):
            subframes = sorted(by_frame.get(f, []), key=lambda s: s.subframe)
            if len(subframes) == SUBFRAMES_PER_FRAME and all(
                sf.crc_ok for sf in subframes
            ):
                payloads = [sf.decoded for sf in subframes]
                frame = builder.build(frame_number=f, payloads=payloads)
                pieces.append(modulate_frame(frame.grid))
            else:
                # CRC failure or missing frame: no clean reconstruction;
                # use the (scaled) received samples as the best available
                # reference so later frames stay aligned.
                chunk = direct_rx[f * n : (f + 1) * n]
                power = np.mean(np.abs(chunk) ** 2)
                scale = np.sqrt(ref_power / max(power, 1e-30))
                pieces.append(chunk * scale)
        return np.concatenate(pieces)

    # -- ambient stage ----------------------------------------------------------

    def prepare_ambient(self, rng=None):
        """Run the ambient stage only: synthesize + normalise.

        Returns an :class:`AmbientStage` holding the ambient capture and
        its unit-mean-power samples.  ``rng`` seeds the transmitter; the
        result can be passed to :meth:`run` (``ambient=``) and reused
        across many per-tag simulations.  What the capture *is* — downlink
        LTE frames by default, an uplink SRS capture for ``srs-uplink`` —
        is the configured substrate's choice.
        """
        config = self.config
        with span("system.ambient") as sp:
            stage = self.substrate.prepare_ambient(rng=rng)
            sp.set(n_frames=int(config.n_frames), bandwidth_mhz=config.bandwidth_mhz)
        return stage

    def transmit_downlink_ambient(self, rng=None):
        """The default (downlink) ambient stage: eNodeB transmit + normalise."""
        config = self.config
        tx = LteTransmitter(config.bandwidth_mhz, cell=config.cell, rng=rng)
        capture = tx.transmit(config.n_frames)
        mean_power = float(np.mean(np.abs(capture.samples) ** 2))
        unit = capture.samples / np.sqrt(mean_power)
        return AmbientStage(capture=capture, unit=unit)

    # -- main entry --------------------------------------------------------------

    def run(
        self,
        payload_bits=None,
        payload_length=20000,
        artifacts=False,
        ambient=None,
        owned_half_frames=None,
    ):
        """Simulate one capture; returns a :class:`LinkReport`.

        ``payload_bits`` may be an explicit bit array; otherwise
        ``payload_length`` random bits are generated.  With
        ``artifacts=True`` the report's ``extras['artifacts']`` carries the
        intermediate waveforms.

        ``ambient`` injects a precomputed :class:`AmbientStage` (the
        per-tag stage then skips the eNodeB transmit — the multi-tag fleet
        path); ``owned_half_frames`` restricts the tag to a MAC-assigned
        subset of half-frames (see
        :meth:`repro.tag.controller.TagController.build_schedule`).

        When tracing is enabled (:mod:`repro.obs.trace`) the whole call is
        one ``system.run`` span whose children are the pipeline stages.
        """
        with span("system.run") as sp:
            report = self._run(
                payload_bits, payload_length, artifacts, ambient, owned_half_frames
            )
            sp.set(
                n_windows=report.n_windows,
                n_bits=report.n_bits,
                ber=float(report.ber),
                sync_failed=report.sync_failed,
            )
        return report

    def _run(self, payload_bits, payload_length, artifacts, ambient, owned_half_frames):
        front = self.run_frontend(
            payload_bits=payload_bits,
            payload_length=payload_length,
            ambient=ambient,
            owned_half_frames=owned_half_frames,
        )
        demod = self._demodulate(front)
        return self.finalize_run(front, demod, artifacts=artifacts)

    def run_frontend(
        self,
        payload_bits=None,
        payload_length=20000,
        ambient=None,
        owned_half_frames=None,
    ):
        """Stages 1-5: everything up to (not including) demodulation.

        Returns a :class:`FrontEndState`.  All six RNG streams are spawned
        and consumed here exactly as in :meth:`run`, so
        ``finalize_run(front, demodulate(front...))`` is bit-identical to
        the monolithic call.
        """
        config = self.config
        rngs = spawn_rngs(self.rng.integers(0, 2**31 - 1), 6)
        rng_payload, rng_fade, rng_noise, rng_sync, rng_tx, rng_shadow = rngs

        if payload_bits is None:
            payload_bits = rng_payload.integers(0, 2, size=int(payload_length))
        payload_bits = np.asarray(payload_bits, dtype=np.int8)

        # Fault injection: all fault randomness lives in streams derived
        # from the plan's own seed (FaultPlan.rng_for), never in the six
        # simulation streams above — an all-zero plan is a bit-identical
        # no-op by construction.
        fault_plan = getattr(config, "faults", None)
        if fault_plan is None:
            carrier_faults = None
        elif hasattr(fault_plan, "carrier_fault_set"):
            # StressPlan stacks scenario stressors on the base injectors.
            carrier_faults = fault_plan.carrier_fault_set()
        else:
            carrier_faults = CarrierFaultSet(fault_plan)
        edge_fault = (
            TagFaultInjector(fault_plan.tag, rng=fault_plan.rng_for("tag"))
            if fault_plan is not None
            else None
        )
        drift_per_half_frame = (
            drift_per_half_frame_samples(fault_plan.tag, self.params)
            if fault_plan is not None
            else 0.0
        )

        # 1. eNodeB transmission, normalised to unit mean sample power
        #    (or injected, already normalised, from a shared ambient stage).
        if ambient is None:
            ambient = self.prepare_ambient(rng=rng_tx)
        capture = ambient.capture
        unit = ambient.unit
        if carrier_faults is not None:
            # Ambient dropout happens at the eNodeB: both the tag and the
            # UE lose the carrier in the gap windows.  The reconstruction
            # reference stays clean (capture.samples), which is the honest
            # receiver view — during a gap it divides by a waveform that
            # never arrived and the preamble collapse marks the erasure.
            unit = carrier_faults.apply_ambient(unit)

        # 2. Channels.
        with span("system.channel"):
            bs_link = BackscatterLink(
                budget=self.budget,
                enb_to_tag_ft=config.enb_to_tag_ft,
                tag_to_ue_ft=config.tag_to_ue_ft,
                fading_in=self._fading(rng_fade, config.enb_to_tag_ft),
                fading_out=self._fading(rng_fade, config.tag_to_ue_ft),
            )
            direct_link = DirectLink(
                budget=self.budget,
                distance_ft=config.enb_to_ue_ft,
                fading=self._fading(rng_fade, config.enb_to_ue_ft),
            )

            ambient_at_tag = bs_link.apply_to_tag(unit)
            if config.add_noise:
                ambient_at_tag_noisy = add_thermal_noise(
                    ambient_at_tag,
                    self.params.sample_rate_hz,
                    config.noise_figure_db,
                    rng_noise,
                )
            else:
                ambient_at_tag_noisy = ambient_at_tag

        # 3. Tag: sync, schedule, reflect.
        with span("tag.sync") as sp:
            error_samples, sync_result = self._sync_error_samples(
                ambient_at_tag_noisy, rng_sync, edge_fault=edge_fault
            )
            sync_failed = error_samples is None
            sp.set(sync_failed=sync_failed)
        if sync_failed:
            obs_metrics.counter_inc("system.sync_failures")
            # The comparator never fired: the tag cannot place a single
            # half-frame and stays silent (constant '1' chips, no windows)
            # rather than spraying mistimed chips over the capture.
            schedule = self.substrate.silent_schedule(len(unit))
        else:
            with span("tag.schedule") as sp:
                timing = self.controller.genie_timing(0, error_samples)
                schedule = self.substrate.build_schedule(
                    timing,
                    len(unit),
                    payload_bits,
                    owned_half_frames=owned_half_frames,
                    drift_per_half_frame=drift_per_half_frame,
                )
                sp.set(n_half_frames=int(schedule.n_half_frames))
        with span("tag.reflect"):
            reflected = self.modulator.reflect(ambient_at_tag, schedule.chips)

        # 4. Receive both bands at the UE.
        with span("system.receive"):
            shifted_rx = bs_link.apply_from_tag(reflected)
            if carrier_faults is not None:
                # Jammer bursts, impulsive noise and ADC clipping hit the
                # backscatter band's receive chain, where the signal is weakest.
                # Stress sets that model co-channel tags additionally need
                # the ambient the interferers would themselves reflect.
                if getattr(carrier_faults, "wants_ambient", False):
                    shifted_rx = carrier_faults.apply_backscatter(
                        shifted_rx, ambient=ambient_at_tag
                    )
                else:
                    shifted_rx = carrier_faults.apply_backscatter(shifted_rx)
            direct_rx = direct_link.apply(unit)
            # Structural (unmodulated, in-band) tag reflection leaks into the
            # direct band as weak extra multipath.
            leak = 10.0 ** (config.structural_reflection_db / 20.0)
            direct_rx = direct_rx + leak * bs_link.apply_from_tag(ambient_at_tag)
            # UE oscillator error rotates both bands identically (one LO).
            cfo_hz = config.ue_cfo_ppm * 1e-6 * config.carrier_hz
            if cfo_hz:
                shifted_rx = apply_cfo(shifted_rx, cfo_hz, self.params.sample_rate_hz)
                direct_rx = apply_cfo(direct_rx, cfo_hz, self.params.sample_rate_hz)
            if config.add_noise:
                shifted_rx = add_thermal_noise(
                    shifted_rx,
                    self.params.sample_rate_hz,
                    config.noise_figure_db,
                    rng_noise,
                )
                direct_rx = add_thermal_noise(
                    direct_rx,
                    self.params.sample_rate_hz,
                    config.noise_figure_db,
                    rng_noise,
                )
            if cfo_hz:
                # The UE estimates its own offset from the cyclic prefix of
                # the direct band and derotates both captures.
                estimated = estimate_cfo(direct_rx, self.params)
                shifted_rx = correct_cfo(
                    shifted_rx, estimated, self.params.sample_rate_hz
                )
                direct_rx = correct_cfo(
                    direct_rx, estimated, self.params.sample_rate_hz
                )

        # 5. UE: LTE decode (for Fig. 32 and the ambient reconstruction).
        lte_result = None
        if config.reference_mode == "decoded":
            with span("lte.decode") as sp:
                ue = LteReceiver(self.params, config.cell)
                lte_result = ue.decode(direct_rx, reference_frames=capture.frames)
                sp.set(block_error_rate=float(lte_result.block_error_rate))
        with span("system.reference"):
            reference = self._reconstruct_reference(direct_rx, capture, lte_result)

        half = self.params.samples_per_frame // 2
        half_starts = np.arange(0, len(unit) - half + 1, half)
        return FrontEndState(
            capture=capture,
            schedule=schedule,
            shifted_rx=shifted_rx,
            direct_rx=direct_rx,
            reference=reference,
            half_starts=half_starts,
            sync_failed=sync_failed,
            error_samples=error_samples,
            sync_result=sync_result,
            lte_result=lte_result,
        )

    def _demodulate(self, front):
        """Stage 6: substrate demodulation, whole-capture or streamed.

        The chip substrate honours ``config.demod_chunk_half_frames``
        (chunked streaming receiver, bit-identical output, bounded
        working set); the other modes demodulate whole captures.
        """
        with span("bsrx.demodulate") as sp:
            demod = self.substrate.demodulate(front)
            sp.set(
                n_windows=demod.n_data_windows, n_erased=demod.n_erased_windows
            )
        return demod

    def finalize_run(self, front, demod, artifacts=False):
        """Stage 7: metrics and the :class:`LinkReport`."""
        capture = front.capture
        schedule = front.schedule
        sync_failed = front.sync_failed
        error_samples = front.error_samples
        lte_result = front.lte_result

        tolerance = self.params.fft_size // 2
        with span("system.metrics"):
            breakdown = self.substrate.measure(schedule, demod, tolerance)
        # Throughput is measured over the time the tag actually had
        # scheduled (whole half-frames); a capture's ragged edge would
        # otherwise bias short simulations low.
        scheduled_seconds = schedule.n_half_frames * (FRAME_SECONDS / 2.0)
        report = LinkReport(
            n_bits=breakdown.n_bits,
            n_errors=breakdown.n_errors,
            duration_seconds=scheduled_seconds or capture.duration_seconds,
            n_windows=breakdown.n_windows,
            n_lost_windows=breakdown.n_lost,
            n_erased_windows=breakdown.n_erased,
            sync_failed=sync_failed,
            sync_error_us=(
                float("nan")
                if sync_failed
                else error_samples / self.params.sample_rate_hz * 1e6
            ),
        )
        if lte_result is not None:
            report.lte_block_error_rate = lte_result.block_error_rate
            report.lte_throughput_bps = lte_result.throughput_bps
        if artifacts:
            report.extras["artifacts"] = RunArtifacts(
                capture=capture,
                schedule=schedule,
                demod=demod,
                direct_rx=front.direct_rx,
                shifted_rx=front.shifted_rx,
                sync_result=front.sync_result,
            )
        return report
