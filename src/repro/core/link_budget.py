"""Closed-form LScatter link model, calibrated against the IQ simulation.

The long-duration experiments (24 h x 3 venues) and the dense distance
sweeps need millions of packets; re-simulating 30.72 Msps IQ for each is
pointless because the per-chip physics is simple and verified by the
sample-level tests:

* the matched-filter soft value for chip ``n`` has SNR proportional to
  ``|x_n|^2`` — and OFDM time samples are complex Gaussian, so the chip
  energy is exponentially distributed.  The resulting bit error rate is
  the classic Rayleigh-faded BPSK expression
  ``Pb = (1 - sqrt(g / (1 + g))) / 2`` with ``g`` the *mean* chip SNR;
* mean chip SNR comes straight from the cascade link budget;
* a small error floor covers residual implementation losses (reference
  reconstruction noise, offset-search misses) observed in the IQ runs.

Throughput follows the tag's schedule: 116 data symbols per 10 ms frame
(9 full packets of 6 data symbols per half-frame plus the 4-symbol packet
in the sync slot), ``n_subcarriers`` chips each — 13.92 Mbps raw at
20 MHz, matching the paper's 13.63 Mbps headline to within 2 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.fading import scatter_fraction, venue_k_factor_db
from repro.channel.link import LinkBudget
from repro.lte.params import FRAME_SECONDS, LteParams
from repro.tag.framing import slot_plan

#: Error floor from residual implementation losses (see module docstring).
DEFAULT_BER_FLOOR = 5e-5

#: Sensitivity of the tag's passive diode envelope detector (dBm).  Below
#: this incident power the sync circuit cannot find the PSS and the tag
#: never transmits — the mechanism that limits the eNodeB-to-tag range in
#: the paper's Fig. 19 matrix.
TAG_SENSITIVITY_DBM = -32.0


def data_symbols_per_frame():
    """Modulated data symbols in one 10 ms frame under the tag schedule."""
    per_half = sum(len(slot) - 1 for slot in slot_plan())
    return 2 * per_half


def rayleigh_bpsk_ber(mean_snr_linear):
    """BPSK BER with exponentially-distributed chip energy."""
    g = np.maximum(np.asarray(mean_snr_linear, dtype=float), 0.0)
    return (0.5 * (1.0 - np.sqrt(g / (1.0 + g))))[()]


@dataclass(frozen=True)
class LinkPrediction:
    """Closed-form prediction for one geometry."""

    snr_db: float
    ber: float
    raw_bit_rate_bps: float
    sync_availability: float = 1.0

    @property
    def throughput_bps(self):
        """Correctly demodulated bits per second (paper's metric).

        Gated by the fraction of time the tag's envelope circuit can see
        the PSS at all.
        """
        return self.sync_availability * self.raw_bit_rate_bps * (1.0 - self.ber)


class LScatterLinkModel:
    """Predict LScatter BER/throughput from geometry and budget."""

    def __init__(self, bandwidth_mhz=20.0, budget=None, ber_floor=DEFAULT_BER_FLOOR):
        self.params = LteParams.from_bandwidth(bandwidth_mhz)
        self.budget = budget or LinkBudget()
        self.ber_floor = float(ber_floor)

    @property
    def raw_bit_rate_bps(self):
        """Chip rate of the tag schedule (1 bit per chip)."""
        bits_per_frame = data_symbols_per_frame() * self.params.n_subcarriers
        return bits_per_frame / FRAME_SECONDS

    def snr_db(self, enb_to_tag_ft, tag_to_ue_ft, rng=None):
        """Mean chip SNR over the receiver bandwidth (= sample rate)."""
        return self.budget.backscatter_snr_db(
            enb_to_tag_ft, tag_to_ue_ft, self.params.sample_rate_hz, rng
        )

    def _self_interference(self, enb_to_tag_ft, tag_to_ue_ft, nlos=False):
        """Scatter fraction of the *shorter* (un-equalised) hop.

        The dual-model receiver fully equalises the longer hop's
        frequency selectivity but cannot touch the other hop's scatter
        (chip multiplication does not commute with filtering); that
        residual behaves as interference at SIR = 1 / scatter.
        """
        shorter = min(float(enb_to_tag_ft), float(tag_to_ue_ft))
        k_db = venue_k_factor_db(self.budget.venue, shorter, nlos)
        return scatter_fraction(k_db)

    def sinr_linear(self, enb_to_tag_ft, tag_to_ue_ft, nlos=False, rng=None):
        """Effective chip SINR: thermal noise plus multipath residual."""
        snr = 10.0 ** (self.snr_db(enb_to_tag_ft, tag_to_ue_ft, rng) / 10.0)
        interference = self._self_interference(enb_to_tag_ft, tag_to_ue_ft, nlos)
        return 1.0 / (1.0 / max(snr, 1e-12) + interference)

    def ber(self, enb_to_tag_ft, tag_to_ue_ft, nlos=False, rng=None):
        """Chip error rate for one geometry."""
        sinr = self.sinr_linear(enb_to_tag_ft, tag_to_ue_ft, nlos, rng)
        raw = rayleigh_bpsk_ber(sinr)
        return float(np.clip(raw + self.ber_floor, 0.0, 0.5))

    def tag_incident_dbm(self, enb_to_tag_ft):
        """Power arriving at the tag antenna (one eNodeB->tag pass)."""
        loss = self.budget.pathloss.loss_db_feet(
            enb_to_tag_ft, self.budget.carrier_hz
        )
        return self.budget.tx_power_dbm - loss + self.budget.system_gain_db / 2.0

    def sync_availability(self, enb_to_tag_ft):
        """Probability the envelope circuit detects the PSS at this range.

        Gaussian over log-normal shadowing around the detector threshold.
        """
        from scipy.stats import norm

        sigma = max(self.budget.pathloss.shadowing_db, 2.0)
        margin = self.tag_incident_dbm(enb_to_tag_ft) - TAG_SENSITIVITY_DBM
        return float(norm.cdf(margin / sigma))

    def predict(self, enb_to_tag_ft, tag_to_ue_ft, nlos=False, rng=None):
        """Full prediction for one geometry."""
        snr_db = self.snr_db(enb_to_tag_ft, tag_to_ue_ft, rng)
        sinr = self.sinr_linear(enb_to_tag_ft, tag_to_ue_ft, nlos, rng)
        ber = float(np.clip(rayleigh_bpsk_ber(sinr) + self.ber_floor, 0.0, 0.5))
        return LinkPrediction(
            snr_db=float(snr_db),
            ber=ber,
            raw_bit_rate_bps=self.raw_bit_rate_bps,
            sync_availability=self.sync_availability(enb_to_tag_ft),
        )

    def max_range_ft(self, enb_to_tag_ft, ber_target=0.1, hi_ft=2000.0):
        """Largest tag-to-UE distance keeping BER under ``ber_target``.

        Bisection over distance; used by the Fig. 30 range experiment.
        """
        lo, hi = 0.5, float(hi_ft)
        if self.ber(enb_to_tag_ft, lo) > ber_target:
            return 0.0
        if self.ber(enb_to_tag_ft, hi) <= ber_target:
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.ber(enb_to_tag_ft, mid) <= ber_target:
                lo = mid
            else:
                hi = mid
        return lo
