"""Link-layer framing: sequence number + length + payload + CRC-16."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte.coding import crc_attach, crc_check
from repro.utils.dsp import bits_to_int, int_to_bits

#: Header: 16-bit sequence number + 16-bit payload length.
FRAME_HEADER_BITS = 32

#: CRC-16 trailer.
FRAME_CRC_BITS = 16


@dataclass(frozen=True)
class LinkFrame:
    """A parsed link-layer frame."""

    sequence: int
    payload: np.ndarray
    valid: bool


def frame_payload(sequence, payload):
    """Build the bit stream of one frame."""
    payload = np.asarray(payload, dtype=np.int8)
    if not 0 <= int(sequence) < 1 << 16:
        raise ValueError("sequence must fit 16 bits")
    if len(payload) >= 1 << 16:
        raise ValueError("payload too long for the 16-bit length field")
    header = np.concatenate(
        [int_to_bits(int(sequence), 16), int_to_bits(len(payload), 16)]
    )
    return crc_attach(np.concatenate([header, payload]), "crc16")


def parse_frame(bits):
    """Parse (and CRC-check) one frame; returns a :class:`LinkFrame`.

    Invalid frames come back with ``valid=False`` and best-effort fields.
    """
    bits = np.asarray(bits, dtype=np.int8)
    if len(bits) < FRAME_HEADER_BITS + FRAME_CRC_BITS:
        return LinkFrame(sequence=-1, payload=np.zeros(0, np.int8), valid=False)
    body, ok = crc_check(bits, "crc16")
    sequence = bits_to_int(body[:16])
    length = bits_to_int(body[16:32])
    payload = body[32:]
    if ok and length != len(payload):
        ok = False
    return LinkFrame(sequence=sequence, payload=payload, valid=bool(ok))


def frame_bits_for_payload(payload_bits):
    """Total on-air bits for a payload of the given size."""
    return FRAME_HEADER_BITS + int(payload_bits) + FRAME_CRC_BITS
