"""Reliable link layer over the raw LScatter chip stream.

The PHY delivers a bit pipe with a distance-dependent BER; applications
(firmware updates, bulk sensor history) need reliable delivery.  This
package adds framing with sequence numbers and CRC-16, plus stop-and-wait
and selective-repeat ARQ driven by an out-of-band acknowledgement path
(in a real deployment the eNodeB downlink itself, which the tag's
envelope receiver can watch for energy-pattern acks).
"""

from repro.link.framing import LinkFrame, frame_payload, parse_frame, FRAME_HEADER_BITS
from repro.link.arq import (
    BitErrorChannel,
    ErasureChannel,
    StopAndWaitArq,
    SelectiveRepeatArq,
    ArqReport,
)

__all__ = [
    "LinkFrame",
    "frame_payload",
    "parse_frame",
    "FRAME_HEADER_BITS",
    "BitErrorChannel",
    "ErasureChannel",
    "StopAndWaitArq",
    "SelectiveRepeatArq",
    "ArqReport",
]
