"""ARQ over a BER-parameterised bit pipe.

Two classic strategies, both assuming an out-of-band acknowledgement
path (the downlink the tag already listens to):

* :class:`StopAndWaitArq` — one frame in flight; simplest tag logic;
* :class:`SelectiveRepeatArq` — a window of frames per round, only the
  failed ones retransmitted; amortises the round-trip.

The channel model is the LScatter PHY's i.i.d. chip-error pipe (verified
by the IQ tests), so ARQ performance is fully determined by BER, frame
size and window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.link.framing import frame_payload, parse_frame
from repro.utils.rng import make_rng


class BitErrorChannel:
    """I.i.d. bit-flip channel at a fixed BER."""

    def __init__(self, ber, rng=None):
        if not 0.0 <= ber < 1.0:
            raise ValueError("ber must be in [0, 1)")
        self.ber = float(ber)
        self.rng = make_rng(rng)

    def transmit(self, bits):
        bits = np.asarray(bits, dtype=np.int8)
        if self.ber == 0.0:
            return bits.copy()
        flips = self.rng.random(len(bits)) < self.ber
        return bits ^ flips.astype(np.int8)


class ErasureChannel:
    """A bit pipe that occasionally erases a whole frame.

    Models the receiver's sync-loss erasures (see
    :mod:`repro.bsrx.demodulator`): with probability ``erasure_rate`` the
    frame's bits arrive as garbage — each bit flipped with probability
    one-half — so its CRC-16 fails and ARQ retransmits, exactly as it
    would after a marked-erased window.  Wraps any inner channel (the
    surviving frames still see the inner BER).
    """

    def __init__(self, channel, erasure_rate, rng=None):
        if not 0.0 <= erasure_rate <= 1.0:
            raise ValueError("erasure_rate must be in [0, 1]")
        self.channel = channel
        self.erasure_rate = float(erasure_rate)
        self.rng = make_rng(rng)
        #: Frames erased so far (for test/report assertions).
        self.erased_frames = 0

    def transmit(self, bits):
        out = self.channel.transmit(bits)
        if self.erasure_rate > 0.0 and self.rng.random() < self.erasure_rate:
            self.erased_frames += 1
            garbage = (self.rng.random(len(out)) < 0.5).astype(np.int8)
            out = out ^ garbage
        return out


@dataclass
class ArqReport:
    """Delivery statistics of one ARQ run."""

    strategy: str
    payload_bits: int
    frames_sent: int
    frames_delivered: int
    rounds: int
    on_air_bits: int

    @property
    def efficiency(self):
        """Useful payload bits per transmitted bit."""
        if self.on_air_bits == 0:
            return 0.0
        return self.payload_bits / self.on_air_bits

    @property
    def retransmission_overhead(self):
        if self.frames_delivered == 0:
            return float("inf")
        return self.frames_sent / self.frames_delivered - 1.0


def _chunk(payload, mtu_bits):
    payload = np.asarray(payload, dtype=np.int8)
    return [
        payload[i : i + mtu_bits] for i in range(0, len(payload), int(mtu_bits))
    ]


class StopAndWaitArq:
    """One frame in flight, retransmit until acknowledged."""

    name = "stop-and-wait"

    def __init__(self, mtu_bits=1024, max_retries=50):
        self.mtu_bits = int(mtu_bits)
        self.max_retries = int(max_retries)

    def deliver(self, payload, channel):
        chunks = _chunk(payload, self.mtu_bits)
        received = []
        frames_sent = 0
        rounds = 0
        on_air = 0
        for sequence, chunk in enumerate(chunks):
            bits = frame_payload(sequence & 0xFFFF, chunk)
            for _attempt in range(self.max_retries):
                frames_sent += 1
                rounds += 1
                on_air += len(bits)
                frame = parse_frame(channel.transmit(bits))
                if frame.valid and frame.sequence == (sequence & 0xFFFF):
                    received.append(frame.payload)
                    break
            else:
                raise RuntimeError(f"frame {sequence} undeliverable")
        recovered = (
            np.concatenate(received) if received else np.zeros(0, np.int8)
        )
        return recovered, ArqReport(
            strategy=self.name,
            payload_bits=len(np.asarray(payload)),
            frames_sent=frames_sent,
            frames_delivered=len(chunks),
            rounds=rounds,
            on_air_bits=on_air,
        )


class SelectiveRepeatArq:
    """Window of frames per round; only failures retransmit."""

    name = "selective-repeat"

    def __init__(self, mtu_bits=1024, window=16, max_rounds=200):
        self.mtu_bits = int(mtu_bits)
        self.window = int(window)
        self.max_rounds = int(max_rounds)

    def deliver(self, payload, channel):
        chunks = _chunk(payload, self.mtu_bits)
        pending = {seq: chunk for seq, chunk in enumerate(chunks)}
        received = {}
        frames_sent = 0
        rounds = 0
        on_air = 0
        while pending:
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeError("window never drained")
            batch = sorted(pending)[: self.window]
            for sequence in batch:
                bits = frame_payload(sequence & 0xFFFF, pending[sequence])
                frames_sent += 1
                on_air += len(bits)
                frame = parse_frame(channel.transmit(bits))
                if frame.valid and frame.sequence == (sequence & 0xFFFF):
                    received[sequence] = frame.payload
                    del pending[sequence]
        recovered = (
            np.concatenate([received[s] for s in sorted(received)])
            if received
            else np.zeros(0, np.int8)
        )
        return recovered, ArqReport(
            strategy=self.name,
            payload_bits=len(np.asarray(payload)),
            frames_sent=frames_sent,
            frames_delivered=len(chunks),
            rounds=rounds,
            on_air_bits=on_air,
        )
