"""Aggregate results of one fleet run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lte.params import FRAME_SECONDS


@dataclass
class TagResult:
    """One tag's outcome inside a fleet run."""

    name: str
    enb_to_tag_ft: float
    tag_to_ue_ft: float
    n_bits: int = 0
    n_errors: int = 0
    n_windows: int = 0
    n_lost_windows: int = 0
    sync_error_us: float = float("nan")
    #: Half-frames this tag successfully owned / lost to collisions.
    owned_half_frames: int = 0
    collided_half_frames: int = 0
    #: Wall-clock cost of this tag's simulation stage.
    elapsed_seconds: float = 0.0
    #: Receiver windows declared erasures (sync loss) — airtime that
    #: carried no countable bits; excluded from BER by construction.
    n_erased_windows: int = 0
    #: Set when the tag's task exhausted every retry (partial mode); the
    #: counters above are then all zero and ``error`` says why.
    failed: bool = False
    error: str = ""
    #: Serialised span trees (``repro.obs.trace.to_dict`` dicts) of the
    #: tag's stage, shipped back from the worker when tracing was on.
    trace: list = field(default_factory=list)
    #: Counter deltas this tag's task contributed (worker before/after).
    metrics: dict = field(default_factory=dict)

    @property
    def ber(self):
        """Signal-level BER over the tag's successful airtime."""
        if self.n_bits == 0:
            return float("nan")
        return self.n_errors / self.n_bits

    @property
    def good_bits(self):
        return self.n_bits - self.n_errors

    def throughput_bps(self, capture_seconds):
        """Good backscatter bits per second of *capture* time.

        Collided half-frames carried bits that never decoded, so they
        contribute airtime but no goodput — the network-level measure the
        fleetN experiment sweeps.
        """
        if capture_seconds <= 0:
            return 0.0
        return self.good_bits / capture_seconds


@dataclass
class FleetReport:
    """Everything one :class:`~repro.fleet.runner.FleetRunner` run produced."""

    scheme: str
    n_tags: int
    n_half_frames: int
    duration_seconds: float
    tags: list = field(default_factory=list)
    collision_fraction: float = 0.0
    idle_fraction: float = 0.0
    airtime_utilisation: float = 0.0
    #: Run-engine telemetry.
    workers: int = 1
    wall_seconds: float = 0.0
    serial_seconds_estimate: float = 0.0
    speedup: float = 1.0
    retried_tasks: int = 0
    #: Tags whose tasks failed every retry (partial mode only).
    failed_tags: int = 0
    #: Tasks harvested past the per-task timeout budget (hung workers).
    timed_out_tasks: int = 0
    #: How many times the eNodeB capture was actually generated.
    transmit_invocations: int = 0
    #: Merged per-stage telemetry across every traced tag:
    #: ``{stage: {wall_seconds, cpu_seconds, count}}`` (empty without
    #: ``trace=True`` on the runner).
    stage_breakdown: dict = field(default_factory=dict)
    #: Summed counter deltas across every tag's task.
    counters: dict = field(default_factory=dict)

    @property
    def aggregate_throughput_bps(self):
        """Network goodput: every tag's good bits over the capture time."""
        return sum(t.throughput_bps(self.duration_seconds) for t in self.tags)

    @property
    def mean_ber(self):
        measured = [t.ber for t in self.tags if t.n_bits > 0]
        if not measured:
            return float("nan")
        return sum(measured) / len(measured)

    def tag(self, name):
        for result in self.tags:
            if result.name == name:
                return result
        raise KeyError(name)

    def format_table(self):
        """Plain-text per-tag table plus the aggregate footer."""
        header = (
            f"{'tag':8s} {'enb_ft':>7s} {'ue_ft':>6s} {'half-frames':>11s} "
            f"{'collided':>8s} {'bits':>8s} {'BER':>10s} {'kbps':>9s}"
        )
        lines = [header]
        for t in self.tags:
            if t.failed:
                lines.append(
                    f"{t.name:8s} {t.enb_to_tag_ft:7.1f} {t.tag_to_ue_ft:6.1f} "
                    f"  FAILED: {t.error}"
                )
                continue
            ber = f"{t.ber:.3e}" if t.n_bits else "-"
            lines.append(
                f"{t.name:8s} {t.enb_to_tag_ft:7.1f} {t.tag_to_ue_ft:6.1f} "
                f"{t.owned_half_frames:11d} {t.collided_half_frames:8d} "
                f"{t.n_bits:8d} {ber:>10s} "
                f"{t.throughput_bps(self.duration_seconds) / 1e3:9.1f}"
            )
        lines.append(
            f"aggregate: {self.aggregate_throughput_bps / 1e6:.3f} Mbps over "
            f"{self.duration_seconds * 1e3:.0f} ms "
            f"({self.n_half_frames} half-frames, scheme={self.scheme})"
        )
        lines.append(
            f"airtime: {self.airtime_utilisation:.0%} used, "
            f"{self.collision_fraction:.0%} collided, "
            f"{self.idle_fraction:.0%} idle"
        )
        lines.append(
            f"engine: {self.workers} worker(s), wall {self.wall_seconds:.2f} s, "
            f"serial-equivalent {self.serial_seconds_estimate:.2f} s "
            f"(speedup {self.speedup:.2f}x), "
            f"{self.transmit_invocations} eNodeB transmit call(s)"
        )
        if self.failed_tags or self.timed_out_tasks:
            lines.append(
                f"faults: {self.failed_tags} tag(s) failed, "
                f"{self.timed_out_tasks} task(s) timed out"
            )
        if self.stage_breakdown:
            lines.append(self.format_telemetry())
        return "\n".join(lines)

    def format_telemetry(self):
        """Per-stage breakdown merged across tags, plus summed counters."""
        lines = ["telemetry (merged across tags):"]
        ordered = sorted(
            self.stage_breakdown.items(),
            key=lambda item: item[1]["wall_seconds"],
            reverse=True,
        )
        for name, entry in ordered:
            lines.append(
                f"  {name:<24s} wall {entry['wall_seconds'] * 1e3:9.2f} ms  "
                f"cpu {entry['cpu_seconds'] * 1e3:9.2f} ms  x{entry['count']}"
            )
        if self.counters:
            pairs = ", ".join(
                f"{name}={value}" for name, value in sorted(self.counters.items())
            )
            lines.append(f"  counters: {pairs}")
        return "\n".join(lines)


def capture_seconds(n_half_frames):
    """Duration of ``n_half_frames`` half-frames."""
    return n_half_frames * (FRAME_SECONDS / 2.0)
