"""Fleet geometry: many tags around one eNodeB and its UEs.

A :class:`Deployment` pins down everything the fleet shares — venue, LTE
bandwidth, capture length, transmit power — plus one :class:`TagPlacement`
per tag (its two hop distances, its serving UE and its scheduling weight).
From a placement it derives the per-tag :class:`~repro.core.config.SystemConfig`
that the per-tag simulation stage consumes, and from the link budget the
per-tag received backscatter powers that drive capture resolution in the
random-access scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import SystemConfig
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class TagPlacement:
    """One tag's position in the deployment."""

    name: str
    enb_to_tag_ft: float
    tag_to_ue_ft: float
    #: Which UE decodes this tag (several tags may share one receiver).
    ue: int = 0
    #: Scheduling weight for the EPC-style priority scheme (QCI-like).
    weight: int = 1

    def __post_init__(self):
        if self.enb_to_tag_ft <= 0:
            raise ValueError(
                f"tag {self.name!r}: enb_to_tag_ft must be positive, got "
                f"{self.enb_to_tag_ft}; distances are hop lengths in feet, "
                "not coordinates"
            )
        if self.tag_to_ue_ft <= 0:
            raise ValueError(
                f"tag {self.name!r}: tag_to_ue_ft must be positive, got "
                f"{self.tag_to_ue_ft}; distances are hop lengths in feet, "
                "not coordinates"
            )
        if self.weight <= 0:
            raise ValueError(
                f"tag {self.name!r}: scheduling weight must be positive, "
                f"got {self.weight}"
            )


@dataclass
class Deployment:
    """N tags riding one ambient LTE cell."""

    tags: list = field(default_factory=list)
    venue: str = "smart_home"
    bandwidth_mhz: float = 1.4
    n_frames: int = 4
    tx_power_dbm: float = 10.0
    #: Per-tag simulation knobs shared by the whole fleet.
    reference_mode: str = "genie"
    sync_mode: str = "model"
    #: Ambient-substrate mode every tag/receiver pair runs (see
    #: :mod:`repro.substrates`); the whole fleet shares one mode because
    #: the ambient capture is shared.
    substrate: str = "chip"

    def __post_init__(self):
        if not self.tags:
            raise ValueError("a deployment needs at least one tag")
        names = [tag.name for tag in self.tags]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"tag names must be unique; duplicated: {dupes}"
            )
        positions = {}
        for tag in self.tags:
            pos = (tag.enb_to_tag_ft, tag.tag_to_ue_ft, tag.ue)
            if pos in positions:
                raise ValueError(
                    f"tags {positions[pos]!r} and {tag.name!r} occupy the "
                    f"same position (enb_to_tag_ft={tag.enb_to_tag_ft}, "
                    f"tag_to_ue_ft={tag.tag_to_ue_ft}, ue={tag.ue}); two "
                    "tags cannot share one antenna position — offset one "
                    "of them"
                )
            positions[pos] = tag.name

    # -- constructors -----------------------------------------------------------

    @classmethod
    def ring(cls, n_tags, enb_to_tag_ft=4.0, tag_to_ue_ft=5.0, spread_ft=2.0, **kwargs):
        """Tags spread deterministically on a ring around the eNodeB.

        Tag ``i`` sits at ``enb_to_tag_ft + spread_ft * i / n`` from the
        eNodeB — close enough in power that random access exhibits real
        collisions (no universal capture), distinct enough that results
        are per-tag distinguishable.
        """
        if n_tags < 1:
            raise ValueError("need at least one tag")
        tags = [
            TagPlacement(
                name=f"tag{i:02d}",
                enb_to_tag_ft=enb_to_tag_ft + spread_ft * i / n_tags,
                tag_to_ue_ft=tag_to_ue_ft,
            )
            for i in range(int(n_tags))
        ]
        return cls(tags=tags, **kwargs)

    @classmethod
    def uniform_random(cls, n_tags, max_enb_ft=30.0, max_ue_ft=15.0, rng=None, **kwargs):
        """Tags placed uniformly at random (deterministic under ``rng``)."""
        rng = make_rng(rng)
        tags = [
            TagPlacement(
                name=f"tag{i:02d}",
                enb_to_tag_ft=float(rng.uniform(1.0, max_enb_ft)),
                tag_to_ue_ft=float(rng.uniform(1.0, max_ue_ft)),
            )
            for i in range(int(n_tags))
        ]
        return cls(tags=tags, **kwargs)

    # -- derived views ----------------------------------------------------------

    @property
    def n_tags(self):
        return len(self.tags)

    @property
    def names(self):
        return [tag.name for tag in self.tags]

    @property
    def n_half_frames(self):
        """MAC scheduling slots in one capture (2 half-frames per frame)."""
        return 2 * int(self.n_frames)

    def base_config(self):
        """The tag-independent :class:`SystemConfig` (first tag's geometry).

        The ambient stage only depends on bandwidth/cell/n_frames, so any
        geometry works; using a real placement keeps the config valid.
        """
        return self.config_for(self.tags[0])

    def config_for(self, placement):
        """Per-tag :class:`SystemConfig` for the simulation stage."""
        return SystemConfig(
            bandwidth_mhz=self.bandwidth_mhz,
            venue=self.venue,
            enb_to_tag_ft=placement.enb_to_tag_ft,
            tag_to_ue_ft=placement.tag_to_ue_ft,
            tx_power_dbm=self.tx_power_dbm,
            n_frames=self.n_frames,
            reference_mode=self.reference_mode,
            sync_mode=self.sync_mode,
            substrate=self.substrate,
        )

    def tag_powers_dbm(self):
        """Mean received backscatter power per tag at its UE (no shadowing).

        Deterministic — the scheduler uses it for capture resolution, so it
        must not depend on the per-tag fading draws.
        """
        powers = {}
        for tag in self.tags:
            budget = self.config_for(tag).budget()
            powers[tag.name] = budget.backscatter_rx_dbm(
                tag.enb_to_tag_ft, tag.tag_to_ue_ft
            )
        return powers

    def weights(self):
        """Tag name -> priority weight, for the EPC-style scheme."""
        return {tag.name: tag.weight for tag in self.tags}

    def with_tags(self, tags):
        """A copy of this deployment over a different tag list."""
        return replace(self, tags=list(tags))
