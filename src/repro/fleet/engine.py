"""Parallel run engine: deterministic fan-out of per-tag simulations.

Design rules:

* **Determinism** — every task is a self-contained picklable payload with
  its own pre-spawned seed; results are keyed by task index, so the output
  order (and every bit of every result) is identical for any worker count.
* **Resilience** — a task whose worker dies (``BrokenProcessPool``, a
  killed container child, a pickling surprise) or exceeds the timeout
  budget is retried *in the parent process* with bounded exponential
  backoff; the task is pure, so the retry reproduces exactly what the
  worker would have produced.  Completions are harvested with
  ``as_completed`` so one slow or hung worker never serialises the
  others' results.
* **Partial results** — with ``on_error='partial'`` a task that fails
  every retry yields a :class:`TaskFailure` sentinel in its slot instead
  of raising, so a fleet report can record the casualty and keep the
  other tags' results.
* **Fallback** — if the platform cannot spawn processes at all, the whole
  batch degrades to the serial path instead of failing.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics

#: Grace added to the pool timeout budget for executor spin-up.
_POOL_SPINUP_GRACE_SECONDS = 1.0


@dataclass
class TaskFailure:
    """Sentinel result for a task that failed every retry (partial mode)."""

    index: int
    error: str
    attempts: int = 0
    timed_out: bool = False


@dataclass
class EngineTelemetry:
    """What the fan-out actually cost."""

    workers: int = 1
    wall_seconds: float = 0.0
    #: Sum of per-task runtimes — the serial-equivalent cost.
    task_seconds: float = 0.0
    retried: int = 0
    fell_back_serial: bool = False
    #: Tasks harvested past the timeout budget (hung workers).
    timed_out: int = 0
    #: Tasks that exhausted every retry (partial mode only; raise mode
    #: propagates instead of counting).
    failed: int = 0
    #: Total backoff sleep between retry attempts.
    backoff_seconds: float = 0.0

    @property
    def speedup(self):
        """Serial-equivalent time over wall time (1.0 when serial)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.task_seconds / self.wall_seconds


@dataclass
class ParallelRunEngine:
    """Map a pure function over tasks with processes, retries, fallback."""

    workers: int = 1
    max_retries: int = 1
    #: Per-task wall-clock budget; ``None`` waits forever.  The pool
    #: budget scales with queueing depth (``ceil(n_tasks / workers)``
    #: waves) so a full batch on few workers is not mis-flagged.
    task_timeout_seconds: float = None
    #: First retry delay; doubles per attempt, capped below.  The fleet's
    #: tasks are pure, so backoff only matters for environmental failures
    #: (a recovering sandbox, a briefly-unspawnable pool).
    retry_backoff_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    #: "raise" propagates a task that fails every retry; "partial" slots a
    #: :class:`TaskFailure` sentinel and keeps the rest of the batch.
    on_error: str = "raise"

    def __post_init__(self):
        if self.workers is None:
            self.workers = os.cpu_count() or 1
        self.workers = max(1, int(self.workers))
        if self.on_error not in ("raise", "partial"):
            raise ValueError("on_error must be 'raise' or 'partial'")
        self.telemetry = EngineTelemetry(workers=self.workers)

    def map(self, fn, tasks, on_result=None):
        """Apply ``fn`` to every task; returns results in task order.

        ``fn(task)`` must return ``(elapsed_seconds, result)`` so the
        telemetry can compare wall time against serial-equivalent time.
        Slots of tasks that exhausted every retry hold
        :class:`TaskFailure` when ``on_error='partial'``.

        ``on_result(index, result)`` is invoked in the parent process as
        each slot is finalised (harvest order, not task order) — the hook
        the campaign layer uses to checkpoint completed shards, so a batch
        killed partway still keeps everything already harvested.  It fires
        for :class:`TaskFailure` slots too; it does not fire for a task
        whose failure propagates in ``on_error='raise'`` mode.
        """
        tasks = list(tasks)
        telemetry = self.telemetry
        start = time.perf_counter()
        if self.workers <= 1 or len(tasks) <= 1:
            results = self._run_serial(fn, tasks, on_result)
        else:
            try:
                results = self._run_pool(fn, tasks, on_result)
            except (BrokenProcessPool, OSError, PermissionError):
                # The pool itself could not be (re)built — e.g. a sandbox
                # with no process spawning. Finish the batch serially.
                telemetry.fell_back_serial = True
                obs_metrics.counter_inc("fleet.serial_fallbacks")
                results = self._run_serial(fn, tasks, on_result)
        telemetry.wall_seconds = time.perf_counter() - start
        return results

    # -- serial path -------------------------------------------------------------

    def _run_serial(self, fn, tasks, on_result=None):
        results = [None] * len(tasks)
        for index in range(len(tasks)):
            try:
                results[index] = self._run_local(fn, tasks[index])
            except Exception as exc:
                self._recover(fn, tasks, index, results, first_error=exc)
            if on_result is not None:
                on_result(index, results[index])
        return results

    def _run_local(self, fn, task):
        elapsed, result = fn(task)
        self.telemetry.task_seconds += elapsed
        return result

    # -- pool path ---------------------------------------------------------------

    def _pool_budget_seconds(self, n_tasks):
        if self.task_timeout_seconds is None:
            return None
        waves = max(1, math.ceil(n_tasks / self.workers))
        return self.task_timeout_seconds * waves + _POOL_SPINUP_GRACE_SECONDS

    @staticmethod
    def _terminate_workers(pool):
        """Kill hung worker processes so pool shutdown cannot block."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass

    def _run_pool(self, fn, tasks, on_result=None):
        telemetry = self.telemetry
        results = [None] * len(tasks)
        harvested = set()
        recover = []  # (index, timed_out)
        budget = self._pool_budget_seconds(len(tasks))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(fn, tasks[i]): i for i in range(len(tasks))}
            try:
                # as_completed: results land as workers finish — one slow
                # or hung task no longer gates every later submission.
                for future in as_completed(futures, timeout=budget):
                    index = futures[future]
                    harvested.add(index)
                    try:
                        elapsed, result = future.result()
                    except Exception:
                        # Worker death or a real task error: reproduce in
                        # the parent below, where a deterministic failure
                        # surfaces with a clean traceback.
                        recover.append((index, False))
                    else:
                        telemetry.task_seconds += elapsed
                        results[index] = result
                        if on_result is not None:
                            on_result(index, result)
            except FuturesTimeout:
                for future, index in futures.items():
                    if index in harvested:
                        continue
                    harvested.add(index)
                    if future.done():
                        # Completed in the race with the deadline.
                        try:
                            elapsed, result = future.result()
                        except Exception:
                            recover.append((index, False))
                        else:
                            telemetry.task_seconds += elapsed
                            results[index] = result
                            if on_result is not None:
                                on_result(index, result)
                        continue
                    future.cancel()
                    telemetry.timed_out += 1
                    obs_metrics.counter_inc("fleet.timeouts")
                    recover.append((index, True))
                self._terminate_workers(pool)
        for index, timed_out in sorted(recover):
            self._recover(fn, tasks, index, results, timed_out=timed_out)
            if on_result is not None:
                on_result(index, results[index])
        return results

    # -- recovery ----------------------------------------------------------------

    def _recover(self, fn, tasks, index, results, first_error=None, timed_out=False):
        """Re-run one task in the parent with bounded exponential backoff."""
        telemetry = self.telemetry
        delay = max(0.0, float(self.retry_backoff_seconds))
        last_error = first_error
        attempts = 0
        for attempt in range(self.max_retries + 1):
            if attempt and delay > 0:
                pause = min(delay, float(self.backoff_cap_seconds))
                time.sleep(pause)
                telemetry.backoff_seconds += pause
                delay *= 2.0
            attempts += 1
            try:
                results[index] = self._run_local(fn, tasks[index])
                telemetry.retried += 1
                obs_metrics.counter_inc("fleet.retries")
                return
            except Exception as exc:
                last_error = exc
        telemetry.failed += 1
        obs_metrics.counter_inc("fleet.task_failures")
        if self.on_error == "partial":
            results[index] = TaskFailure(
                index=index,
                error=f"{type(last_error).__name__}: {last_error}",
                attempts=attempts,
                timed_out=timed_out,
            )
            return
        raise last_error
