"""Parallel run engine: deterministic fan-out of per-tag simulations.

Design rules:

* **Determinism** — every task is a self-contained picklable payload with
  its own pre-spawned seed; results are keyed by task index, so the output
  order (and every bit of every result) is identical for any worker count.
* **Resilience** — a task whose worker dies (``BrokenProcessPool``, a
  killed container child, a pickling surprise) is retried *in the parent
  process*; the task is pure, so the retry reproduces exactly what the
  worker would have produced.
* **Fallback** — if the platform cannot spawn processes at all, the whole
  batch degrades to the serial path instead of failing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass


@dataclass
class EngineTelemetry:
    """What the fan-out actually cost."""

    workers: int = 1
    wall_seconds: float = 0.0
    #: Sum of per-task runtimes — the serial-equivalent cost.
    task_seconds: float = 0.0
    retried: int = 0
    fell_back_serial: bool = False

    @property
    def speedup(self):
        """Serial-equivalent time over wall time (1.0 when serial)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.task_seconds / self.wall_seconds


@dataclass
class ParallelRunEngine:
    """Map a pure function over tasks with processes, retries, fallback."""

    workers: int = 1
    max_retries: int = 1

    def __post_init__(self):
        if self.workers is None:
            self.workers = os.cpu_count() or 1
        self.workers = max(1, int(self.workers))
        self.telemetry = EngineTelemetry(workers=self.workers)

    def map(self, fn, tasks):
        """Apply ``fn`` to every task; returns results in task order.

        ``fn(task)`` must return ``(elapsed_seconds, result)`` so the
        telemetry can compare wall time against serial-equivalent time.
        """
        tasks = list(tasks)
        telemetry = self.telemetry
        start = time.perf_counter()
        if self.workers <= 1 or len(tasks) <= 1:
            results = [self._run_local(fn, task) for task in tasks]
        else:
            try:
                results = self._run_pool(fn, tasks)
            except (BrokenProcessPool, OSError, PermissionError):
                # The pool itself could not be (re)built — e.g. a sandbox
                # with no process spawning. Finish the batch serially.
                telemetry.fell_back_serial = True
                results = [self._run_local(fn, task) for task in tasks]
        telemetry.wall_seconds = time.perf_counter() - start
        return results

    def _run_local(self, fn, task):
        elapsed, result = fn(task)
        self.telemetry.task_seconds += elapsed
        return result

    def _run_pool(self, fn, tasks):
        telemetry = self.telemetry
        results = [None] * len(tasks)
        pending = list(range(len(tasks)))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(fn, tasks[i]): i for i in pending}
            failed = []
            for future, index in futures.items():
                try:
                    elapsed, result = future.result()
                except BrokenProcessPool:
                    failed.append(index)
                    continue
                except Exception:
                    # A real task error reproduces serially below and, if
                    # it is deterministic, surfaces there with a clean
                    # parent-process traceback.
                    failed.append(index)
                    continue
                telemetry.task_seconds += elapsed
                results[index] = result
        for index in failed:
            retries = 0
            while True:
                try:
                    results[index] = self._run_local(fn, tasks[index])
                    telemetry.retried += 1
                    break
                except Exception:
                    retries += 1
                    if retries > self.max_retries:
                        raise
        return results
