"""Execute a fleet: schedule, share the ambient, fan out per-tag stages.

The runner is the glue between the three fleet substrates:

1. :class:`~repro.fleet.scheduler.FleetScheduler` decides, in the parent
   process, which tag owns which half-frame (so MAC randomness never
   depends on the worker count);
2. :class:`~repro.fleet.ambient.AmbientCache` generates the eNodeB
   capture once and shares it — in-memory when serial, memory-mapped
   through an :class:`~repro.fleet.ambient.AmbientHandle` when parallel;
3. :class:`~repro.fleet.engine.ParallelRunEngine` runs one pure
   :func:`_simulate_tag` task per tag, each with a pre-spawned seed, so
   per-tag BER/throughput are bit-identical for any ``--workers`` value.

For chaos testing the runner can wrap the task function in a
:class:`~repro.faults.infra.FaultyTask` (worker-only crashes and hangs)
and run the engine in ``partial`` mode: a tag whose task dies every retry
becomes a ``failed=True`` :class:`~repro.fleet.report.TagResult` instead
of sinking the whole fleet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.bsrx.streaming import DEFAULT_CHUNK_HALF_FRAMES
from repro.core.system import LScatterSystem
from repro.faults.infra import FaultyTask
from repro.fleet.ambient import AmbientCache
from repro.fleet.engine import EngineTelemetry, ParallelRunEngine, TaskFailure
from repro.fleet.report import FleetReport, TagResult, capture_seconds
from repro.fleet.scheduler import FleetScheduler, make_scheme
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass
class TagTask:
    """Self-contained, picklable payload for one per-tag simulation."""

    index: int
    name: str
    config: object
    seed: int
    owned: tuple
    collided: int
    payload_length: int
    enb_to_tag_ft: float
    tag_to_ue_ft: float
    #: AmbientStage (serial) or AmbientHandle (worker processes).
    ambient: object = None
    #: Collect a span tree + counter delta for this task and ship both
    #: back through the result pickle (see :mod:`repro.obs`).
    trace: bool = False
    extras: dict = field(default_factory=dict)


def _run_tag_stage(task, result):
    """The traced body of :func:`_simulate_tag`: one system run."""
    ambient = task.ambient
    if hasattr(ambient, "load"):
        ambient = ambient.load()
    system = LScatterSystem(task.config, rng=task.seed)
    report = system.run(
        payload_length=task.payload_length,
        ambient=ambient,
        owned_half_frames=task.owned,
    )
    result.n_bits = report.n_bits
    result.n_errors = report.n_errors
    result.n_windows = report.n_windows
    result.n_lost_windows = report.n_lost_windows
    result.n_erased_windows = report.n_erased_windows
    result.sync_error_us = report.sync_error_us


def _simulate_tag(task):
    """Run one tag's per-tag stage; returns ``(elapsed, TagResult)``.

    Module-level and argument-pure so it pickles cleanly into worker
    processes and reproduces exactly when retried in the parent.  With
    ``task.trace`` the stage runs inside an isolated trace collection
    (:func:`repro.obs.trace.collect`) — safe even on the engine's serial
    in-process path, where an ambient trace may already be active — and
    the result carries serialised span trees plus the counter delta this
    task contributed (long-lived workers handle many tasks, so absolute
    counters would double-count).
    """
    start = time.perf_counter()
    result = TagResult(
        name=task.name,
        enb_to_tag_ft=task.enb_to_tag_ft,
        tag_to_ue_ft=task.tag_to_ue_ft,
        owned_half_frames=len(task.owned),
        collided_half_frames=task.collided,
    )
    if task.owned:
        if task.trace:
            before = obs_metrics.counters_snapshot()
            with obs_trace.collect() as collection:
                _run_tag_stage(task, result)
            result.trace = [obs_trace.to_dict(n) for n in collection.roots]
            result.metrics = obs_metrics.counter_delta(
                before, obs_metrics.counters_snapshot()
            )
        else:
            _run_tag_stage(task, result)
    elapsed = time.perf_counter() - start
    result.elapsed_seconds = elapsed
    return elapsed, result


def _empty_tag_result(task):
    return TagResult(
        name=task.name,
        enb_to_tag_ft=task.enb_to_tag_ft,
        tag_to_ue_ft=task.tag_to_ue_ft,
        owned_half_frames=len(task.owned),
        collided_half_frames=task.collided,
    )


def _simulate_tags_batched(tasks):
    """Run many tags' stages with one batched cross-tag demod pass.

    Front-ends (channels, tag, receive, reference) run per tag in task
    order with each task's own pre-spawned seed — exactly the RNG draws
    of :func:`_simulate_tag` — then every participating tag's capture is
    stacked and demodulated in a single
    :meth:`~repro.bsrx.demodulator.BackscatterDemodulator.demodulate_many`
    call.  Returns ``[(elapsed, TagResult)]`` in task order, bit-identical
    to mapping :func:`_simulate_tag` (asserted by the fleet equality
    tests).  All tasks must share one capture geometry (same bandwidth
    and frame count), which every deployment/cohort guarantees.
    """
    results = [None] * len(tasks)
    front_elapsed = {}
    live = []
    for i, task in enumerate(tasks):
        start = time.perf_counter()
        result = _empty_tag_result(task)
        if not task.owned:
            elapsed = time.perf_counter() - start
            result.elapsed_seconds = elapsed
            results[i] = (elapsed, result)
            continue
        ambient = task.ambient
        if hasattr(ambient, "load"):
            ambient = ambient.load()
        system = LScatterSystem(task.config, rng=task.seed)
        front = system.run_frontend(
            payload_length=task.payload_length,
            ambient=ambient,
            owned_half_frames=task.owned,
        )
        front_elapsed[i] = time.perf_counter() - start
        live.append((i, result, system, front))
    if live:
        demod_start = time.perf_counter()
        shifted = np.stack([front.shifted_rx for (_, _, _, front) in live])
        references = np.stack([front.reference for (_, _, _, front) in live])
        half_starts = live[0][3].half_starts
        demods = live[0][2].demodulator.demodulate_many(
            shifted, references, half_starts
        )
        demod_share = (time.perf_counter() - demod_start) / len(live)
        for (i, result, system, front), demod in zip(live, demods):
            finalize_start = time.perf_counter()
            report = system.finalize_run(front, demod)
            result.n_bits = report.n_bits
            result.n_errors = report.n_errors
            result.n_windows = report.n_windows
            result.n_lost_windows = report.n_lost_windows
            result.n_erased_windows = report.n_erased_windows
            result.sync_error_us = report.sync_error_us
            elapsed = (
                front_elapsed[i]
                + demod_share
                + (time.perf_counter() - finalize_start)
            )
            result.elapsed_seconds = elapsed
            results[i] = (elapsed, result)
    return results


@dataclass
class FleetPlan:
    """The deterministic half of a fleet run: schedule plus tag tasks.

    Everything stochastic (MAC draws, per-tag seeds) is already fixed in
    the plan, so the tasks can be executed by any substrate — the
    :class:`~repro.fleet.engine.ParallelRunEngine`, the batched parent
    pass, or the :class:`repro.service.FleetService` job queue — and
    produce bit-identical :class:`~repro.fleet.report.TagResult`\\ s.
    """

    schedule: object
    tasks: list


class FleetRunner:
    """One multi-tag network simulation over a shared ambient capture."""

    def __init__(
        self,
        deployment,
        scheme="tdma",
        workers=1,
        seed=0,
        cache=None,
        max_retries=1,
        task_timeout_seconds=None,
        on_error="raise",
        infra_faults=None,
        trace=False,
        batch_tags=False,
        streaming=False,
        chunk_half_frames=None,
        substrate=None,
    ):
        if substrate is not None:
            deployment = replace(deployment, substrate=str(substrate))
        self.deployment = deployment
        self.scheme = scheme
        self.workers = workers
        self.seed = int(seed)
        #: A caller-provided cache is shared (the caller closes it); one
        #: we created ourselves is ours to clean up in :meth:`close`.
        self._owns_cache = cache is None
        self.cache = cache if cache is not None else AmbientCache()
        self.max_retries = max_retries
        self.task_timeout_seconds = task_timeout_seconds
        self.on_error = on_error
        #: Optional :class:`repro.faults.plan.InfraFaults` — wraps the
        #: task function so selected tasks crash or hang *in workers only*
        #: (parent retries stay clean and reproduce exact results).
        self.infra_faults = infra_faults
        #: Collect per-tag span trees + counter deltas and merge them
        #: into the report's ``stage_breakdown``/``counters``.
        self.trace = bool(trace)
        #: Stack every tag into one batched cross-tag demod pass in the
        #: parent process (bit-identical to the per-tag engine path).
        self.batch_tags = bool(batch_tags)
        #: Run each tag's demodulation through the chunked streaming
        #: receiver (bit-identical, bounded demod working set).
        self.streaming = bool(streaming)
        self.chunk_half_frames = (
            int(chunk_half_frames)
            if chunk_half_frames is not None
            else DEFAULT_CHUNK_HALF_FRAMES
        )
        if self.chunk_half_frames < 1:
            raise ValueError(
                f"chunk_half_frames must be >= 1, got {chunk_half_frames!r}"
            )
        if self.batch_tags and self.trace:
            raise ValueError(
                "batch_tags=True shares one demod pass across tags, so "
                "per-tag span trees cannot be attributed; run trace=True "
                "with the per-tag engine path instead"
            )
        if self.batch_tags and self.infra_faults is not None:
            raise ValueError(
                "batch_tags=True runs in the parent process; infra fault "
                "injection targets worker tasks — use the per-tag engine "
                "path"
            )
        substrate_name = getattr(self.deployment, "substrate", "chip")
        if substrate_name != "chip":
            if self.batch_tags:
                raise ValueError(
                    f"batch_tags=True stacks captures through the chip "
                    f"demodulator's demodulate_many pass, which substrate "
                    f"{substrate_name!r} does not provide; run the per-tag "
                    "engine path"
                )
            if self.streaming:
                raise ValueError(
                    f"streaming=True runs the chunked chip receiver, which "
                    f"substrate {substrate_name!r} does not support; run "
                    "the whole-capture path"
                )

    def close(self):
        """Release the ambient cache's scratch files if we own the cache."""
        if self._owns_cache:
            self.cache.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def _scheme(self):
        if isinstance(self.scheme, str):
            return make_scheme(self.scheme, weights=self.deployment.weights())
        return self.scheme

    def plan(self, payload_length=20000, parallel=None):
        """Build the deterministic :class:`FleetPlan` for this fleet.

        Seeds — one stream for the MAC scheme, one per tag — are all
        spawned here in the parent, so results never depend on which
        substrate later executes the tasks or in what order.  ``parallel``
        picks the ambient sharing mode: a memory-mapped
        :class:`~repro.fleet.ambient.AmbientHandle` for worker processes,
        or the in-memory stage for anything running in this process
        (serial, batched, and the service's worker threads).  ``None``
        infers it from the runner's own worker count.
        """
        deployment = self.deployment
        n_tags = deployment.n_tags

        root = np.random.SeedSequence(self.seed)
        sched_seq, *tag_seqs = root.spawn(1 + n_tags)
        tag_seeds = [int(seq.generate_state(1)[0]) for seq in tag_seqs]

        scheduler = FleetScheduler(
            self._scheme(), rng=np.random.default_rng(sched_seq)
        )
        schedule = scheduler.assign(
            deployment.names,
            deployment.n_half_frames,
            deployment.tag_powers_dbm(),
        )

        base_config = deployment.base_config()
        if parallel is None:
            parallel = (
                self.workers > 1 and n_tags > 1 and not self.batch_tags
            )
        if parallel:
            ambient = self.cache.handle(
                base_config,
                self.seed,
                include_frames=deployment.reference_mode == "decoded",
            )
        else:
            # In-process paths share the in-memory stage directly, no
            # scratch spill needed.
            ambient = self.cache.get(base_config, self.seed)

        tasks = []
        for index, placement in enumerate(deployment.tags):
            config = deployment.config_for(placement)
            if self.streaming:
                config = replace(
                    config, demod_chunk_half_frames=self.chunk_half_frames
                )
            tasks.append(
                TagTask(
                    index=index,
                    name=placement.name,
                    config=config,
                    seed=tag_seeds[index],
                    owned=tuple(schedule.owned_half_frames(placement.name)),
                    collided=len(schedule.collided_half_frames(placement.name)),
                    payload_length=int(payload_length),
                    enb_to_tag_ft=placement.enb_to_tag_ft,
                    tag_to_ue_ft=placement.tag_to_ue_ft,
                    ambient=ambient,
                    trace=self.trace,
                )
            )
        return FleetPlan(schedule=schedule, tasks=tasks)

    def run(self, payload_length=20000):
        """Simulate the fleet; returns a :class:`FleetReport`."""
        engine = ParallelRunEngine(
            workers=self.workers,
            max_retries=self.max_retries,
            task_timeout_seconds=self.task_timeout_seconds,
            on_error=self.on_error,
        )
        plan = self.plan(
            payload_length=payload_length,
            parallel=(
                engine.workers > 1
                and self.deployment.n_tags > 1
                and not self.batch_tags
            ),
        )
        schedule, tasks = plan.schedule, plan.tasks

        if self.batch_tags:
            # The batched pass runs in the parent (the FFT layer spreads
            # rows across cores itself) — no engine processes involved.
            engine.telemetry.workers = 1
            wall_start = time.perf_counter()
            raw = []
            for elapsed, result in _simulate_tags_batched(tasks):
                engine.telemetry.task_seconds += elapsed
                raw.append(result)
            engine.telemetry.wall_seconds = time.perf_counter() - wall_start
        else:
            task_fn = FaultyTask.from_faults(_simulate_tag, self.infra_faults)
            raw = engine.map(task_fn, tasks)
        return self.assemble_report(schedule, raw, telemetry=engine.telemetry)

    def assemble_report(self, schedule, raw, telemetry=None):
        """Fold per-tag results back into a :class:`FleetReport`.

        ``raw`` holds one entry per deployment tag, in tag order — either
        a :class:`~repro.fleet.report.TagResult` or a
        :class:`~repro.fleet.engine.TaskFailure` sentinel (converted to a
        ``failed=True`` row).  ``telemetry`` is the executing substrate's
        :class:`~repro.fleet.engine.EngineTelemetry`; the service passes
        its own view, a plain default is used when omitted.
        """
        deployment = self.deployment
        if telemetry is None:
            telemetry = EngineTelemetry(workers=self.workers)
        results = []
        for index, result in enumerate(raw):
            if isinstance(result, TaskFailure):
                placement = deployment.tags[index]
                results.append(
                    TagResult(
                        name=placement.name,
                        enb_to_tag_ft=placement.enb_to_tag_ft,
                        tag_to_ue_ft=placement.tag_to_ue_ft,
                        failed=True,
                        error=result.error,
                    )
                )
            else:
                results.append(result)

        # Merge telemetry: same-named stages sum across tags, counter
        # deltas add up — the per-fleet view of what each stage cost.
        stage_breakdown = {}
        counters = {}
        if self.trace:
            for result in results:
                roots = [obs_trace.from_dict(d) for d in result.trace]
                obs_trace.flatten_stages(roots, into=stage_breakdown)
                for name, value in result.metrics.items():
                    counters[name] = counters.get(name, 0) + value

        return FleetReport(
            scheme=schedule.scheme,
            n_tags=deployment.n_tags,
            n_half_frames=schedule.n_half_frames,
            duration_seconds=capture_seconds(schedule.n_half_frames),
            tags=results,
            collision_fraction=schedule.collision_fraction,
            idle_fraction=schedule.idle_fraction,
            airtime_utilisation=schedule.airtime_utilisation,
            workers=telemetry.workers,
            wall_seconds=telemetry.wall_seconds,
            serial_seconds_estimate=telemetry.task_seconds,
            speedup=telemetry.speedup,
            retried_tasks=telemetry.retried,
            failed_tags=sum(1 for r in results if getattr(r, "failed", False)),
            timed_out_tasks=telemetry.timed_out,
            transmit_invocations=self.cache.transmit_calls,
            stage_breakdown=stage_breakdown,
            counters=counters,
        )
