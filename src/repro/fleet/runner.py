"""Execute a fleet: schedule, share the ambient, fan out per-tag stages.

The runner is the glue between the three fleet substrates:

1. :class:`~repro.fleet.scheduler.FleetScheduler` decides, in the parent
   process, which tag owns which half-frame (so MAC randomness never
   depends on the worker count);
2. :class:`~repro.fleet.ambient.AmbientCache` generates the eNodeB
   capture once and shares it — in-memory when serial, memory-mapped
   through an :class:`~repro.fleet.ambient.AmbientHandle` when parallel;
3. :class:`~repro.fleet.engine.ParallelRunEngine` runs one pure
   :func:`_simulate_tag` task per tag, each with a pre-spawned seed, so
   per-tag BER/throughput are bit-identical for any ``--workers`` value.

For chaos testing the runner can wrap the task function in a
:class:`~repro.faults.infra.FaultyTask` (worker-only crashes and hangs)
and run the engine in ``partial`` mode: a tag whose task dies every retry
becomes a ``failed=True`` :class:`~repro.fleet.report.TagResult` instead
of sinking the whole fleet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.system import LScatterSystem
from repro.faults.infra import FaultyTask
from repro.fleet.ambient import AmbientCache
from repro.fleet.engine import ParallelRunEngine, TaskFailure
from repro.fleet.report import FleetReport, TagResult, capture_seconds
from repro.fleet.scheduler import FleetScheduler, make_scheme
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass
class TagTask:
    """Self-contained, picklable payload for one per-tag simulation."""

    index: int
    name: str
    config: object
    seed: int
    owned: tuple
    collided: int
    payload_length: int
    enb_to_tag_ft: float
    tag_to_ue_ft: float
    #: AmbientStage (serial) or AmbientHandle (worker processes).
    ambient: object = None
    #: Collect a span tree + counter delta for this task and ship both
    #: back through the result pickle (see :mod:`repro.obs`).
    trace: bool = False
    extras: dict = field(default_factory=dict)


def _run_tag_stage(task, result):
    """The traced body of :func:`_simulate_tag`: one system run."""
    ambient = task.ambient
    if hasattr(ambient, "load"):
        ambient = ambient.load()
    system = LScatterSystem(task.config, rng=task.seed)
    report = system.run(
        payload_length=task.payload_length,
        ambient=ambient,
        owned_half_frames=task.owned,
    )
    result.n_bits = report.n_bits
    result.n_errors = report.n_errors
    result.n_windows = report.n_windows
    result.n_lost_windows = report.n_lost_windows
    result.n_erased_windows = report.n_erased_windows
    result.sync_error_us = report.sync_error_us


def _simulate_tag(task):
    """Run one tag's per-tag stage; returns ``(elapsed, TagResult)``.

    Module-level and argument-pure so it pickles cleanly into worker
    processes and reproduces exactly when retried in the parent.  With
    ``task.trace`` the stage runs inside an isolated trace collection
    (:func:`repro.obs.trace.collect`) — safe even on the engine's serial
    in-process path, where an ambient trace may already be active — and
    the result carries serialised span trees plus the counter delta this
    task contributed (long-lived workers handle many tasks, so absolute
    counters would double-count).
    """
    start = time.perf_counter()
    result = TagResult(
        name=task.name,
        enb_to_tag_ft=task.enb_to_tag_ft,
        tag_to_ue_ft=task.tag_to_ue_ft,
        owned_half_frames=len(task.owned),
        collided_half_frames=task.collided,
    )
    if task.owned:
        if task.trace:
            before = obs_metrics.counters_snapshot()
            with obs_trace.collect() as collection:
                _run_tag_stage(task, result)
            result.trace = [obs_trace.to_dict(n) for n in collection.roots]
            result.metrics = obs_metrics.counter_delta(
                before, obs_metrics.counters_snapshot()
            )
        else:
            _run_tag_stage(task, result)
    elapsed = time.perf_counter() - start
    result.elapsed_seconds = elapsed
    return elapsed, result


class FleetRunner:
    """One multi-tag network simulation over a shared ambient capture."""

    def __init__(
        self,
        deployment,
        scheme="tdma",
        workers=1,
        seed=0,
        cache=None,
        max_retries=1,
        task_timeout_seconds=None,
        on_error="raise",
        infra_faults=None,
        trace=False,
    ):
        self.deployment = deployment
        self.scheme = scheme
        self.workers = workers
        self.seed = int(seed)
        #: A caller-provided cache is shared (the caller closes it); one
        #: we created ourselves is ours to clean up in :meth:`close`.
        self._owns_cache = cache is None
        self.cache = cache if cache is not None else AmbientCache()
        self.max_retries = max_retries
        self.task_timeout_seconds = task_timeout_seconds
        self.on_error = on_error
        #: Optional :class:`repro.faults.plan.InfraFaults` — wraps the
        #: task function so selected tasks crash or hang *in workers only*
        #: (parent retries stay clean and reproduce exact results).
        self.infra_faults = infra_faults
        #: Collect per-tag span trees + counter deltas and merge them
        #: into the report's ``stage_breakdown``/``counters``.
        self.trace = bool(trace)

    def close(self):
        """Release the ambient cache's scratch files if we own the cache."""
        if self._owns_cache:
            self.cache.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def _scheme(self):
        if isinstance(self.scheme, str):
            return make_scheme(self.scheme, weights=self.deployment.weights())
        return self.scheme

    def run(self, payload_length=20000):
        """Simulate the fleet; returns a :class:`FleetReport`."""
        deployment = self.deployment
        n_tags = deployment.n_tags

        # Seeds: one stream for the MAC scheme, one per tag — all spawned
        # in the parent so results never depend on execution order.
        root = np.random.SeedSequence(self.seed)
        sched_seq, *tag_seqs = root.spawn(1 + n_tags)
        tag_seeds = [int(seq.generate_state(1)[0]) for seq in tag_seqs]

        scheduler = FleetScheduler(
            self._scheme(), rng=np.random.default_rng(sched_seq)
        )
        schedule = scheduler.assign(
            deployment.names,
            deployment.n_half_frames,
            deployment.tag_powers_dbm(),
        )

        base_config = deployment.base_config()
        engine = ParallelRunEngine(
            workers=self.workers,
            max_retries=self.max_retries,
            task_timeout_seconds=self.task_timeout_seconds,
            on_error=self.on_error,
        )
        if engine.workers > 1 and n_tags > 1:
            ambient = self.cache.handle(
                base_config,
                self.seed,
                include_frames=deployment.reference_mode == "decoded",
            )
        else:
            ambient = self.cache.get(base_config, self.seed)

        tasks = []
        for index, placement in enumerate(deployment.tags):
            tasks.append(
                TagTask(
                    index=index,
                    name=placement.name,
                    config=deployment.config_for(placement),
                    seed=tag_seeds[index],
                    owned=tuple(schedule.owned_half_frames(placement.name)),
                    collided=len(schedule.collided_half_frames(placement.name)),
                    payload_length=int(payload_length),
                    enb_to_tag_ft=placement.enb_to_tag_ft,
                    tag_to_ue_ft=placement.tag_to_ue_ft,
                    ambient=ambient,
                    trace=self.trace,
                )
            )

        task_fn = FaultyTask.from_faults(_simulate_tag, self.infra_faults)
        raw = engine.map(task_fn, tasks)
        results = []
        for index, result in enumerate(raw):
            if isinstance(result, TaskFailure):
                placement = deployment.tags[index]
                results.append(
                    TagResult(
                        name=placement.name,
                        enb_to_tag_ft=placement.enb_to_tag_ft,
                        tag_to_ue_ft=placement.tag_to_ue_ft,
                        failed=True,
                        error=result.error,
                    )
                )
            else:
                results.append(result)

        # Merge telemetry: same-named stages sum across tags, counter
        # deltas add up — the per-fleet view of what each stage cost.
        stage_breakdown = {}
        counters = {}
        if self.trace:
            for result in results:
                roots = [obs_trace.from_dict(d) for d in result.trace]
                obs_trace.flatten_stages(roots, into=stage_breakdown)
                for name, value in result.metrics.items():
                    counters[name] = counters.get(name, 0) + value

        telemetry = engine.telemetry
        return FleetReport(
            scheme=schedule.scheme,
            n_tags=n_tags,
            n_half_frames=schedule.n_half_frames,
            duration_seconds=capture_seconds(schedule.n_half_frames),
            tags=results,
            collision_fraction=schedule.collision_fraction,
            idle_fraction=schedule.idle_fraction,
            airtime_utilisation=schedule.airtime_utilisation,
            workers=telemetry.workers,
            wall_seconds=telemetry.wall_seconds,
            serial_seconds_estimate=telemetry.task_seconds,
            speedup=telemetry.speedup,
            retried_tasks=telemetry.retried,
            failed_tags=sum(1 for r in results if getattr(r, "failed", False)),
            timed_out_tasks=telemetry.timed_out,
            transmit_invocations=self.cache.transmit_calls,
            stage_breakdown=stage_breakdown,
            counters=counters,
        )
