"""Multi-tag network simulation: many tags riding one ambient LTE cell.

The paper's single-link pipeline (:mod:`repro.core.system`) simulates one
tag; ubiquitous passive communication means fleets.  This package adds the
missing substrate:

* :mod:`repro.fleet.deployment` — N tags with per-tag geometry around one
  eNodeB and its UEs;
* :mod:`repro.fleet.scheduler` — half-frame assignment under the
  :mod:`repro.mac` schemes (TDMA, slotted-ALOHA with capture, EPC-style
  priority), with analytic collision resolution;
* :mod:`repro.fleet.ambient` — the shared-ambient cache: the eNodeB
  capture is generated once per ``(bandwidth, cell, n_frames, seed)`` and
  memory-mapped into worker processes instead of regenerated per tag;
* :mod:`repro.fleet.engine` — a deterministic parallel run engine
  (process pool, pre-spawned per-task seeds, retry-on-worker-failure,
  serial fallback);
* :mod:`repro.fleet.runner` / :mod:`repro.fleet.report` — orchestration
  and the aggregate :class:`~repro.fleet.report.FleetReport`.

Entry points: ``repro fleet`` on the command line, experiment id
``fleetn`` in the registry.
"""

from repro.fleet.ambient import (
    AmbientCache,
    AmbientHandle,
    AmbientIntegrityError,
    process_cache,
    reset_process_cache,
)
from repro.fleet.deployment import Deployment, TagPlacement
from repro.fleet.engine import EngineTelemetry, ParallelRunEngine, TaskFailure
from repro.fleet.report import FleetReport, TagResult
from repro.fleet.runner import FleetPlan, FleetRunner
from repro.fleet.scheduler import (
    SCHEME_NAMES,
    FleetSchedule,
    FleetScheduler,
    make_scheme,
)

__all__ = [
    "AmbientCache",
    "AmbientHandle",
    "AmbientIntegrityError",
    "process_cache",
    "reset_process_cache",
    "TaskFailure",
    "Deployment",
    "TagPlacement",
    "EngineTelemetry",
    "ParallelRunEngine",
    "FleetReport",
    "TagResult",
    "FleetPlan",
    "FleetRunner",
    "SCHEME_NAMES",
    "FleetSchedule",
    "FleetScheduler",
    "make_scheme",
]
