"""Half-frame assignment: drive the MAC schemes over a fleet capture.

The tag's scheduling period is the 5 ms PSS cycle (one half-frame), so a
capture of ``F`` frames offers ``2F`` MAC slots.  The scheduler runs one of
the :mod:`repro.mac.schemes` over those slots, resolves simultaneous
transmissions with the same capture rule the contention model uses
(strongest tag survives a collision if its received power clears
``CAPTURE_THRESHOLD_DB``), and emits a :class:`FleetSchedule`: which tag
successfully owns which half-frame, plus collision/idle accounting.

Keeping collision resolution analytic (power-based capture, calibrated by
:func:`repro.mac.collision.two_tag_collision`) lets the IQ stage simulate
each tag independently against the shared ambient — the substrate the
parallel run engine exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mac.schemes import (
    CAPTURE_THRESHOLD_DB,
    PriorityScheme,
    SlottedAlohaScheme,
    TdmaScheme,
)
from repro.utils.rng import make_rng

#: CLI/scheme-name -> factory. ``aloha`` contends; the others grant.
SCHEME_NAMES = ("tdma", "aloha", "priority")


def make_scheme(name, weights=None, p=None):
    """Instantiate a MAC scheme by CLI name."""
    name = str(name).lower()
    if name == "tdma":
        return TdmaScheme()
    if name in ("aloha", "slotted-aloha"):
        return SlottedAlohaScheme(p=p)
    if name == "priority":
        return PriorityScheme(weights=weights)
    raise ValueError(f"unknown scheme {name!r}; choose from {SCHEME_NAMES}")


@dataclass
class SlotOutcome:
    """What happened in one half-frame."""

    index: int
    transmitters: list = field(default_factory=list)
    winner: str | None = None

    @property
    def collided(self):
        return len(self.transmitters) > 1 and self.winner is None

    @property
    def idle(self):
        return not self.transmitters


@dataclass
class FleetSchedule:
    """Per-half-frame ownership for a whole capture."""

    scheme: str
    n_half_frames: int
    slots: list = field(default_factory=list)

    @property
    def collision_fraction(self):
        if not self.n_half_frames:
            return 0.0
        return sum(s.collided for s in self.slots) / self.n_half_frames

    @property
    def idle_fraction(self):
        if not self.n_half_frames:
            return 0.0
        return sum(s.idle for s in self.slots) / self.n_half_frames

    @property
    def airtime_utilisation(self):
        """Fraction of half-frames carrying a successful transmission."""
        if not self.n_half_frames:
            return 0.0
        return sum(s.winner is not None for s in self.slots) / self.n_half_frames

    def owned_half_frames(self, name):
        """Half-frame indices ``name`` successfully owns."""
        return [s.index for s in self.slots if s.winner == name]

    def attempted_half_frames(self, name):
        """Half-frame indices ``name`` transmitted in (won or lost)."""
        return [s.index for s in self.slots if name in s.transmitters]

    def collided_half_frames(self, name):
        """Half-frame indices where ``name`` transmitted but lost."""
        return [
            s.index
            for s in self.slots
            if name in s.transmitters and s.winner != name
        ]


class FleetScheduler:
    """Assign capture half-frames to tags under a MAC scheme."""

    def __init__(self, scheme, capture_threshold_db=CAPTURE_THRESHOLD_DB, rng=None):
        self.scheme = scheme
        self.capture_threshold_db = float(capture_threshold_db)
        self.rng = make_rng(rng)

    def _resolve(self, transmitters, tag_powers_dbm):
        """Capture rule: sole transmitter wins; else strongest if it clears
        the threshold over the runner-up; else everyone loses."""
        if not transmitters:
            return None
        if len(transmitters) == 1:
            return transmitters[0]
        powers = np.array([tag_powers_dbm[name] for name in transmitters])
        order = np.argsort(powers)[::-1]
        if powers[order[0]] - powers[order[1]] >= self.capture_threshold_db:
            return transmitters[int(order[0])]
        return None

    def assign(self, tag_names, n_half_frames, tag_powers_dbm=None):
        """Run the scheme over ``n_half_frames`` slots.

        ``tag_powers_dbm`` (name -> received backscatter dBm at the UE)
        enables the capture effect for contention schemes; omitted, every
        collision destroys all transmissions involved.
        """
        tag_names = list(tag_names)
        if not tag_names:
            raise ValueError("need at least one tag")
        slots = []
        for index in range(int(n_half_frames)):
            transmitters = list(
                self.scheme.transmitters(index, tag_names, self.rng)
            )
            if tag_powers_dbm is None and len(transmitters) > 1:
                winner = None
            else:
                winner = self._resolve(transmitters, tag_powers_dbm or {})
            slots.append(
                SlotOutcome(index=index, transmitters=transmitters, winner=winner)
            )
        return FleetSchedule(
            scheme=self.scheme.name,
            n_half_frames=int(n_half_frames),
            slots=slots,
        )
