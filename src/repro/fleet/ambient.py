"""Shared eNodeB captures: compute the ambient stage once, reuse N times.

``LteTransmitter.transmit`` output is deterministic per ``(bandwidth,
cell, n_frames, seed)`` — nothing about a tag feeds back into the eNodeB —
so when a fleet of N tags rides one cell, the capture and its OFDM
modulation only need to be generated once.  :class:`AmbientCache` keys
prepared :class:`~repro.core.system.AmbientStage` objects on exactly that
tuple and counts transmitter invocations (``transmit_calls``) so the
benchmark suite can assert the sharing actually happens.

For multi-process fleet runs the unit-power samples are additionally
spilled to a binary scratch file; :class:`AmbientHandle` carries the path
and workers re-open it with ``numpy.memmap`` read-only — the ambient is
shared by the page cache instead of being pickled into every worker.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.system import AmbientStage, LScatterSystem
from repro.lte.params import LteParams
from repro.lte.transmitter import LteCapture


@dataclass(frozen=True)
class AmbientKey:
    """Everything the ambient stage depends on."""

    bandwidth_mhz: float
    cell: object  # CellConfig is a frozen (hashable) dataclass
    n_frames: int
    seed: int


@dataclass
class AmbientHandle:
    """Picklable recipe for re-opening a shared ambient in a worker.

    Only scalars and a file path cross the process boundary; the samples
    themselves stay on disk and are memory-mapped on first use.
    """

    path: str
    n_samples: int
    bandwidth_mhz: float
    cell: object
    #: Genie frame records, only populated when the per-tag stage needs
    #: them (``reference_mode='decoded'``); pickled with the handle.
    frames: list = field(default_factory=list)

    def load(self):
        """Re-open the shared samples and rebuild an :class:`AmbientStage`."""
        unit = np.memmap(self.path, dtype=np.complex128, mode="r",
                         shape=(self.n_samples,))
        capture = LteCapture(
            params=LteParams.from_bandwidth(self.bandwidth_mhz),
            cell=self.cell,
            samples=unit,
            frames=self.frames,
        )
        return AmbientStage(capture=capture, unit=unit)


@dataclass
class _Entry:
    stage: AmbientStage
    path: str | None = None


class AmbientCache:
    """Memoise ambient stages per (bandwidth, cell, n_frames, seed)."""

    def __init__(self, scratch_dir=None):
        self._entries = {}
        self._scratch_dir = scratch_dir
        #: How many times ``LteTransmitter.transmit`` actually ran.
        self.transmit_calls = 0

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def key_for(config, seed):
        return AmbientKey(
            bandwidth_mhz=float(config.bandwidth_mhz),
            cell=config.cell,
            n_frames=int(config.n_frames),
            seed=int(seed),
        )

    def get(self, config, seed):
        """The shared :class:`AmbientStage` for ``config``'s ambient tuple.

        The returned stage's capture holds the *normalised* samples (mean
        sample power 1), so ``capture.samples is stage.unit`` — genie-mode
        references and the reflected waveform then agree in scale across
        every consumer of the cache.
        """
        return self._entry(config, seed).stage

    def _entry(self, config, seed):
        key = self.key_for(config, seed)
        entry = self._entries.get(key)
        if entry is None:
            stage = LScatterSystem(config).prepare_ambient(rng=key.seed)
            self.transmit_calls += 1
            # Re-point the capture at the unit samples: one array, one scale.
            stage.capture.samples = stage.unit
            entry = _Entry(stage=stage)
            self._entries[key] = entry
        return entry

    def handle(self, config, seed, include_frames=False):
        """An :class:`AmbientHandle` for worker processes (spills to disk)."""
        key = self.key_for(config, seed)
        entry = self._entry(config, seed)
        if entry.path is None:
            fd, path = tempfile.mkstemp(
                prefix="lscatter-ambient-", suffix=".iq", dir=self._scratch_dir
            )
            with os.fdopen(fd, "wb") as fh:
                np.ascontiguousarray(entry.stage.unit, dtype=np.complex128).tofile(fh)
            entry.path = path
        return AmbientHandle(
            path=entry.path,
            n_samples=len(entry.stage.unit),
            bandwidth_mhz=key.bandwidth_mhz,
            cell=key.cell,
            frames=list(entry.stage.capture.frames) if include_frames else [],
        )

    def clear(self):
        """Drop every entry and unlink the scratch files."""
        for entry in self._entries.values():
            if entry.path is not None and os.path.exists(entry.path):
                os.unlink(entry.path)
        self._entries.clear()

    def __del__(self):
        try:
            self.clear()
        except Exception:
            pass
