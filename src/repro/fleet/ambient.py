"""Shared eNodeB captures: compute the ambient stage once, reuse N times.

``LteTransmitter.transmit`` output is deterministic per ``(bandwidth,
cell, n_frames, seed)`` — nothing about a tag feeds back into the eNodeB —
so when a fleet of N tags rides one cell, the capture and its OFDM
modulation only need to be generated once.  :class:`AmbientCache` keys
prepared :class:`~repro.core.system.AmbientStage` objects on exactly that
tuple and counts transmitter invocations (``transmit_calls``) so the
benchmark suite can assert the sharing actually happens.

For multi-process fleet runs the unit-power samples are additionally
spilled to a binary scratch file; :class:`AmbientHandle` carries the path
and workers re-open it with ``numpy.memmap`` read-only — the ambient is
shared by the page cache instead of being pickled into every worker.

The scratch file lives in tempdir territory where anything can happen to
it (eviction, truncation by a full disk, a crashed writer).  Every spill
records size and CRC-32; :meth:`AmbientCache.handle` re-verifies the file
before vending a handle and silently regenerates it on mismatch
(``integrity_failures`` counts the events), while
:meth:`AmbientHandle.load` fails loudly with the path and expected byte
count — a worker cannot regenerate, only report.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.system import AmbientStage, LScatterSystem
from repro.lte.params import LteParams
from repro.lte.transmitter import LteCapture
from repro.substrates import ambient_kind_for
from repro.utils.integrity import crc32_file

#: Bytes per complex128 sample in the scratch spill.
_BYTES_PER_SAMPLE = 16


class AmbientIntegrityError(RuntimeError):
    """A shared-ambient scratch file is missing, truncated, or corrupt."""


@dataclass(frozen=True)
class AmbientKey:
    """Everything the ambient stage depends on."""

    bandwidth_mhz: float
    cell: object  # CellConfig is a frozen (hashable) dataclass
    n_frames: int
    seed: int
    #: Physical cell identity, keyed explicitly so two cells of a
    #: multi-cell topology can never collide on one cache slot even if a
    #: future ``CellConfig`` stops hashing its identity fields.
    cell_id: int = 0
    #: What kind of ambient the substrate rides (see
    #: :func:`repro.substrates.ambient_kind_for`).  Downlink substrates
    #: all share ``"lte-downlink"`` captures; the uplink-SRS mode keys
    #: its synthetic sounding captures separately so the two waveforms
    #: can never collide on one cache slot.
    ambient_kind: str = "lte-downlink"


@dataclass
class AmbientHandle:
    """Picklable recipe for re-opening a shared ambient in a worker.

    Only scalars and a file path cross the process boundary; the samples
    themselves stay on disk and are memory-mapped on first use.
    """

    path: str
    n_samples: int
    bandwidth_mhz: float
    cell: object
    #: Genie frame records, only populated when the per-tag stage needs
    #: them (``reference_mode='decoded'``); pickled with the handle.
    frames: list = field(default_factory=list)
    #: CRC-32 of the spill, recorded at write time; ``None`` skips the
    #: content check (size is always verified).
    checksum: int = None

    @property
    def expected_bytes(self):
        return int(self.n_samples) * _BYTES_PER_SAMPLE

    def verify(self):
        """Raise :class:`AmbientIntegrityError` unless the spill is intact."""
        if not os.path.exists(self.path):
            raise AmbientIntegrityError(
                f"shared ambient scratch file {self.path!r} is missing "
                f"(expected {self.expected_bytes} bytes for "
                f"{self.n_samples} complex128 samples); the parent cache "
                "may have been cleared while workers were running"
            )
        actual = os.path.getsize(self.path)
        if actual != self.expected_bytes:
            raise AmbientIntegrityError(
                f"shared ambient scratch file {self.path!r} is truncated: "
                f"{actual} bytes on disk, expected {self.expected_bytes} "
                f"({self.n_samples} complex128 samples)"
            )
        if self.checksum is not None and crc32_file(self.path) != self.checksum:
            raise AmbientIntegrityError(
                f"shared ambient scratch file {self.path!r} failed its "
                f"CRC-32 check ({self.expected_bytes} bytes, size intact): "
                "contents were modified after the spill"
            )

    def load(self):
        """Re-open the shared samples and rebuild an :class:`AmbientStage`."""
        self.verify()
        unit = np.memmap(self.path, dtype=np.complex128, mode="r",
                         shape=(self.n_samples,))
        capture = LteCapture(
            params=LteParams.from_bandwidth(self.bandwidth_mhz),
            cell=self.cell,
            samples=unit,
            frames=self.frames,
        )
        return AmbientStage(capture=capture, unit=unit)


@dataclass
class _Entry:
    stage: AmbientStage
    path: str = None
    checksum: int = None
    n_bytes: int = 0


class AmbientCache:
    """Memoise ambient stages per (bandwidth, cell, n_frames, seed)."""

    def __init__(self, scratch_dir=None):
        self._entries = {}
        self._scratch_dir = scratch_dir
        #: How many times ``LteTransmitter.transmit`` actually ran.
        self.transmit_calls = 0
        #: How many times an entry was looked up (hit or miss); the cache
        #: hit ratio is ``(requests - transmit_calls) / requests``.
        self.requests = 0
        #: Scratch files found missing/corrupt and regenerated.
        self.integrity_failures = 0

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def key_for(config, seed):
        cell = config.cell
        return AmbientKey(
            bandwidth_mhz=float(config.bandwidth_mhz),
            cell=cell,
            n_frames=int(config.n_frames),
            seed=int(seed),
            cell_id=int(3 * getattr(cell, "n_id_1", 0) + getattr(cell, "n_id_2", 0)),
            ambient_kind=ambient_kind_for(getattr(config, "substrate", "chip")),
        )

    def get(self, config, seed):
        """The shared :class:`AmbientStage` for ``config``'s ambient tuple.

        The returned stage's capture holds the *normalised* samples (mean
        sample power 1), so ``capture.samples is stage.unit`` — genie-mode
        references and the reflected waveform then agree in scale across
        every consumer of the cache.
        """
        return self._entry(config, seed).stage

    def _entry(self, config, seed):
        key = self.key_for(config, seed)
        self.requests += 1
        entry = self._entries.get(key)
        if entry is None:
            stage = LScatterSystem(config).prepare_ambient(rng=key.seed)
            self.transmit_calls += 1
            # Re-point the capture at the unit samples: one array, one scale.
            stage.capture.samples = stage.unit
            entry = _Entry(stage=stage)
            self._entries[key] = entry
        return entry

    def _spill(self, entry):
        """Write the entry's unit samples to a fresh scratch file."""
        fd, path = tempfile.mkstemp(
            prefix="lscatter-ambient-", suffix=".iq", dir=self._scratch_dir
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.ascontiguousarray(entry.stage.unit, dtype=np.complex128).tofile(fh)
        except BaseException:
            # A failed spill (full disk, interrupted write) must not
            # orphan the scratch file: ``entry.path`` is only assigned on
            # success, so ``clear()``/``close()`` would never unlink it.
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        entry.path = path
        entry.n_bytes = os.path.getsize(path)
        entry.checksum = crc32_file(path)

    def _spill_intact(self, entry):
        if entry.path is None:
            return False
        try:
            return (
                os.path.getsize(entry.path) == entry.n_bytes
                and crc32_file(entry.path) == entry.checksum
            )
        except OSError:
            return False

    def handle(self, config, seed, include_frames=False):
        """An :class:`AmbientHandle` for worker processes (spills to disk).

        An existing spill is re-verified (size + CRC-32) on every call; a
        missing, truncated, or bit-flipped file is regenerated from the
        in-memory stage and counted in ``integrity_failures``.
        """
        key = self.key_for(config, seed)
        entry = self._entry(config, seed)
        if entry.path is not None and not self._spill_intact(entry):
            self.integrity_failures += 1
            old = entry.path
            entry.path = None
            if os.path.exists(old):
                try:
                    os.unlink(old)
                except OSError:
                    pass
        if entry.path is None:
            self._spill(entry)
        return AmbientHandle(
            path=entry.path,
            n_samples=len(entry.stage.unit),
            bandwidth_mhz=key.bandwidth_mhz,
            cell=key.cell,
            frames=list(entry.stage.capture.frames) if include_frames else [],
            checksum=entry.checksum,
        )

    def clear(self):
        """Drop every entry and unlink the scratch files."""
        for entry in self._entries.values():
            if entry.path is not None and os.path.exists(entry.path):
                os.unlink(entry.path)
        self._entries.clear()

    def close(self):
        """Release scratch files; the cache stays usable (repopulates)."""
        self.clear()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):
        try:
            self.clear()
        except Exception:
            pass


#: Lazily-created per-process shared cache (see :func:`process_cache`).
_PROCESS_CACHE = None


def process_cache():
    """The process-global :class:`AmbientCache`.

    Campaign shards run as pure tasks inside long-lived worker processes
    (:class:`~repro.fleet.engine.ParallelRunEngine` pools); IQ-level
    points that share an ambient tuple — e.g. Fig. 18's LoS and NLoS arms
    at one bandwidth, or re-runs of the same shard after a retry — reuse
    one capture instead of regenerating it per point.  Entries live for
    the lifetime of the process (a worker holds at most one sweep's worth
    of captures); call :func:`reset_process_cache` to drop them.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = AmbientCache()
    return _PROCESS_CACHE


def reset_process_cache():
    """Close and forget the process-global cache (tests, memory pressure)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is not None:
        _PROCESS_CACHE.close()
        _PROCESS_CACHE = None
