"""Process-local metrics registry: counters, gauges, histograms, collectors.

Push-style instruments for event counts the code observes as it runs
(erasures, sync failures, fault activations, engine retries), plus
pull-style *collectors* for state that already lives elsewhere — the
sequence cache registers one, so cache hit rates appear in every snapshot
without a per-lookup counter in the memoisation hot path.

Everything is process-local and always on: incrementing a counter is one
dict update under a lock, cheap enough for stage-level (not per-sample)
call sites.  Fleet workers ship a before/after counter delta back to the
parent (:func:`counter_delta`), which sums them into the fleet report.
"""

from __future__ import annotations

import threading

_LOCK = threading.Lock()
_counters = {}
_gauges = {}
_histograms = {}
_collectors = {}


def counter_inc(name, value=1):
    """Add ``value`` (default 1) to the counter ``name``."""
    with _LOCK:
        _counters[name] = _counters.get(name, 0) + value


def gauge_set(name, value):
    """Set the gauge ``name`` to ``value`` (last write wins)."""
    with _LOCK:
        _gauges[name] = value


def observe(name, value):
    """Record one observation into the histogram ``name``.

    Histograms keep count/sum/min/max — enough for mean and range without
    a bucketing scheme to mis-pick.
    """
    value = float(value)
    with _LOCK:
        h = _histograms.get(name)
        if h is None:
            _histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
        else:
            h["count"] += 1
            h["sum"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)


def register_collector(name, fn):
    """Register a pull-style collector: ``fn()`` -> dict of numbers.

    Collectors run at snapshot time under ``collected.<name>.<key>``;
    re-registering a name replaces the previous collector (module
    reloads in tests stay idempotent).
    """
    with _LOCK:
        _collectors[name] = fn


def counters_snapshot():
    """Flat copy of the counters (the deltas fleet workers ship back)."""
    with _LOCK:
        return dict(_counters)


def metrics_snapshot(include_collectors=True):
    """Full snapshot: counters, gauges, histograms, collected values."""
    with _LOCK:
        out = {
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": {name: dict(h) for name, h in _histograms.items()},
        }
        collectors = list(_collectors.items())
    if include_collectors:
        collected = {}
        for name, fn in collectors:
            try:
                collected[name] = dict(fn())
            except Exception as exc:  # a broken collector must not sink a run
                collected[name] = {"error": f"{type(exc).__name__}: {exc}"}
        out["collected"] = collected
    return out


def reset_metrics():
    """Zero counters, gauges and histograms (collectors stay registered)."""
    with _LOCK:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()


def counter_delta(before, after):
    """Per-counter ``after - before``, dropping zero deltas.

    ``before``/``after`` are :func:`counters_snapshot` dicts; used by
    fleet workers so a long-lived worker process reports only what *this*
    task contributed.
    """
    delta = {}
    for name, value in after.items():
        diff = value - before.get(name, 0)
        if diff:
            delta[name] = diff
    return delta
