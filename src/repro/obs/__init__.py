"""Pipeline observability: stage-scoped tracing and a metrics registry.

Two orthogonal, process-local facilities:

* :mod:`repro.obs.trace` — hierarchical spans (``span("bsrx.phase_offset")``)
  with wall/CPU time, user attributes and merge-by-name aggregation, off by
  default with a strict no-op fast path;
* :mod:`repro.obs.metrics` — counters/gauges/histograms plus pull-style
  collectors (the sequence cache reports through one).

:mod:`repro.obs.export` turns span trees into Chrome trace-event JSON
(``chrome://tracing`` / Perfetto) and indented text summaries.
"""

from repro.obs.trace import (
    SpanNode,
    collect,
    current_span,
    disable,
    enable,
    flatten_stages,
    from_dict,
    is_enabled,
    reset,
    snapshot,
    span,
    to_dict,
    tracing,
)
from repro.obs.metrics import (
    counter_delta,
    counter_inc,
    counters_snapshot,
    gauge_set,
    metrics_snapshot,
    observe,
    register_collector,
    reset_metrics,
)
from repro.obs.export import (
    chrome_trace_events,
    format_span_tree,
    write_chrome_trace,
)

__all__ = [
    "SpanNode",
    "collect",
    "current_span",
    "disable",
    "enable",
    "flatten_stages",
    "from_dict",
    "is_enabled",
    "reset",
    "snapshot",
    "span",
    "to_dict",
    "tracing",
    "counter_delta",
    "counter_inc",
    "counters_snapshot",
    "gauge_set",
    "metrics_snapshot",
    "observe",
    "register_collector",
    "reset_metrics",
    "chrome_trace_events",
    "format_span_tree",
    "write_chrome_trace",
]
