"""Stage-scoped hierarchical tracing for the simulation pipeline.

Usage at an instrumentation site::

    from repro.obs.trace import span

    with span("bsrx.phase_offset") as sp:
        estimate = ...
        sp.set(offset=estimate.offset)

Design rules:

* **Off by default, strictly cheap when off.**  When tracing is disabled
  ``span()`` returns one shared no-op singleton — no allocation, no clock
  reads, no contextvar traffic.  The benchmark harness pins the per-call
  cost (< 2 % of a single ``demodulate_frame``; see
  ``benchmarks/test_perf_ofdm.py``), so hot paths can stay instrumented
  permanently.
* **Merge by name.**  Re-entering a span with the same name under the
  same parent accumulates into one node (``count`` tracks entries, wall
  and CPU time sum).  A per-packet stage therefore appears *once per
  enclosing batch* with its total cost, which is the granularity the
  fleet telemetry and the end-to-end trace test want — and merged nodes
  still nest correctly in the Chrome trace export, because the summed
  duration of disjoint child segments cannot exceed the parent window.
* **Context-var scoped.**  The active span lives in a ``contextvars``
  variable, so nesting follows the call stack and threads/async contexts
  cannot corrupt each other's trees.
* **Serialisable.**  ``to_dict``/``from_dict`` round-trip a span tree
  through plain dicts; fleet workers send their trees back to the parent
  through the process-pool result pickle (see
  :func:`repro.fleet.runner._simulate_tag`).

Timing note: ``wall_seconds`` is ``time.perf_counter`` (what a user
waits), ``cpu_seconds`` is ``time.process_time`` (what this process
computed).  For process-pool stages the two diverge — that gap is the
point of recording both (PR 4 fixed ``bench.py``'s fleet timings with
exactly this distinction).
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass, field


@dataclass
class SpanNode:
    """One merged span: a named stage under one parent."""

    name: str
    #: Wall-clock seconds of the first entry, relative to the trace epoch.
    start_offset: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: Number of times the span was entered (merged entries).
    count: int = 0
    attrs: dict = field(default_factory=dict)
    #: name -> child SpanNode, in first-entry order.
    children: dict = field(default_factory=dict)

    def child(self, name):
        """The child span named ``name``, or ``None``."""
        return self.children.get(name)


class _TraceState:
    """Mutable per-process trace storage (swapped wholesale by collect)."""

    __slots__ = ("root", "epoch")

    def __init__(self):
        self.root = SpanNode(name="<root>")
        self.epoch = time.perf_counter()


_enabled = False
_state = _TraceState()
_current = contextvars.ContextVar("repro_obs_current_span", default=None)


class _NoopSpan:
    """Shared do-nothing span: the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


_NOOP = _NoopSpan()


class _Span:
    """Live span handle; merges into the parent's same-named child."""

    __slots__ = ("node", "_token", "_t0_wall", "_t0_cpu")

    def __init__(self, name, attrs):
        parent = _current.get() or _state.root
        node = parent.children.get(name)
        if node is None:
            node = SpanNode(name=name)
            parent.children[name] = node
        if attrs:
            node.attrs.update(attrs)
        self.node = node

    def __enter__(self):
        node = self.node
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.process_time()
        if node.count == 0:
            node.start_offset = self._t0_wall - _state.epoch
        self._token = _current.set(node)
        return self

    def __exit__(self, exc_type, exc, tb):
        _current.reset(self._token)
        node = self.node
        node.wall_seconds += time.perf_counter() - self._t0_wall
        node.cpu_seconds += time.process_time() - self._t0_cpu
        node.count += 1
        return False

    def set(self, **attrs):
        """Attach user attributes (n_windows, BER, cache hits, ...)."""
        self.node.attrs.update(attrs)
        return self


def span(name, **attrs):
    """Open a traced stage; a no-op singleton when tracing is disabled."""
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)


def current_span():
    """Handle for attaching attributes to the innermost active span.

    Returns the no-op singleton when tracing is disabled or no span is
    active, so call sites never need to guard.
    """
    if not _enabled:
        return _NOOP
    node = _current.get()
    if node is None:
        return _NOOP
    handle = _Span.__new__(_Span)
    handle.node = node
    return handle


def enable():
    """Turn tracing on (spans start recording)."""
    global _enabled
    _enabled = True


def disable():
    """Turn tracing off (``span()`` reverts to the no-op fast path)."""
    global _enabled
    _enabled = False


def is_enabled():
    return _enabled


def reset():
    """Drop every recorded span and restart the trace epoch."""
    global _state
    _state = _TraceState()


def snapshot():
    """The recorded top-level spans, in first-entry order."""
    return list(_state.root.children.values())


@contextlib.contextmanager
def tracing(fresh=True):
    """Enable tracing for a block, restoring the previous mode after.

    ``fresh=True`` (default) also resets the trace first, so the block
    observes only its own spans.
    """
    global _enabled
    prev = _enabled
    if fresh:
        reset()
    _enabled = True
    try:
        yield
    finally:
        _enabled = prev


class Collection:
    """Result box for :func:`collect`: the isolated trace's root spans."""

    def __init__(self):
        self.roots = []


@contextlib.contextmanager
def collect():
    """Trace a block into an isolated tree, shielding the ambient trace.

    Installs a fresh enabled trace state for the block and restores the
    previous state (enabled or not, mid-span or not) afterwards; the
    block's top-level spans land in the yielded :class:`Collection`.
    This is how fleet workers trace a per-tag stage without clobbering a
    parent trace when the engine falls back to the serial in-process
    path.
    """
    global _enabled, _state
    prev_state, prev_enabled = _state, _enabled
    token = _current.set(None)
    _state = _TraceState()
    _enabled = True
    box = Collection()
    try:
        yield box
    finally:
        box.roots = list(_state.root.children.values())
        _state, _enabled = prev_state, prev_enabled
        _current.reset(token)


def to_dict(node):
    """Serialise a span tree to plain picklable/JSON-able dicts."""
    return {
        "name": node.name,
        "start_offset": node.start_offset,
        "wall_seconds": node.wall_seconds,
        "cpu_seconds": node.cpu_seconds,
        "count": node.count,
        "attrs": dict(node.attrs),
        "children": [to_dict(child) for child in node.children.values()],
    }


def from_dict(data):
    """Inverse of :func:`to_dict`."""
    node = SpanNode(
        name=data["name"],
        start_offset=data["start_offset"],
        wall_seconds=data["wall_seconds"],
        cpu_seconds=data["cpu_seconds"],
        count=data["count"],
        attrs=dict(data["attrs"]),
    )
    for child in data["children"]:
        node.children[child["name"]] = from_dict(child)
    return node


def flatten_stages(roots, into=None):
    """Aggregate span trees into ``{name: {wall, cpu, count}}``.

    Same-named spans at any depth sum together — the per-stage breakdown
    the fleet report merges across tags.  ``into`` accumulates across
    calls (pass the same dict for every tag).
    """
    stages = into if into is not None else {}
    nodes = list(roots)
    while nodes:
        node = nodes.pop()
        if isinstance(node, dict):
            node = from_dict(node)
        entry = stages.setdefault(
            node.name, {"wall_seconds": 0.0, "cpu_seconds": 0.0, "count": 0}
        )
        entry["wall_seconds"] += node.wall_seconds
        entry["cpu_seconds"] += node.cpu_seconds
        entry["count"] += node.count
        nodes.extend(node.children.values())
    return stages
