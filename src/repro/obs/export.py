"""Span-tree exporters: Chrome trace-event JSON and text summaries.

The JSON follows the Trace Event Format's complete-event (``"ph": "X"``)
shape, loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  Each
merged span becomes one event whose duration is its accumulated wall
time; because a parent's merged children are disjoint sub-intervals of
the parent's own window, summed child durations can never overflow the
parent event, so the nesting renders correctly even for per-packet spans
that were entered hundreds of times.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.obs.metrics import metrics_snapshot
from repro.obs.trace import from_dict

_ATTR_TYPES = (str, int, float, bool)


def _clean_attrs(attrs, extra=None):
    """JSON-safe args: keep scalars, stringify the rest."""
    out = {}
    for key, value in attrs.items():
        out[str(key)] = value if isinstance(value, _ATTR_TYPES) else str(value)
    if extra:
        out.update(extra)
    return out


def _emit(node, pid, tid, base_offset, events):
    if isinstance(node, dict):
        node = from_dict(node)
    ts = (node.start_offset + base_offset) * 1e6
    events.append(
        {
            "name": node.name,
            "ph": "X",
            "ts": ts,
            "dur": node.wall_seconds * 1e6,
            "pid": pid,
            "tid": tid,
            "args": _clean_attrs(
                node.attrs,
                {"count": node.count, "cpu_ms": round(node.cpu_seconds * 1e3, 3)},
            ),
        }
    )
    for child in node.children.values():
        _emit(child, pid, tid, base_offset, events)


def chrome_trace_events(roots, pid=1, tid=1, label=None, base_offset=0.0):
    """Trace events for one span forest on one (pid, tid) track.

    ``label`` adds a thread-name metadata event so multi-track traces
    (one per fleet tag) stay readable.
    """
    events = []
    if label is not None:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": str(label)},
            }
        )
    for node in roots:
        _emit(node, pid, tid, base_offset, events)
    return events


def write_chrome_trace(path, roots=None, tracks=None):
    """Write a Chrome trace JSON file; returns the event count.

    ``roots`` is a single span forest (the common single-process case);
    ``tracks`` is an ordered ``{label: roots}`` mapping rendered as one
    thread per label (the fleet's per-tag trees).  Both may be given.
    """
    events = []
    if roots:
        events.extend(chrome_trace_events(roots, pid=1, tid=1, label="main"))
    if tracks:
        for index, (label, track_roots) in enumerate(tracks.items()):
            events.extend(
                chrome_trace_events(
                    track_roots, pid=1, tid=2 + index, label=label
                )
            )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    return len(events)


def write_live_snapshot(path, extra=None, include_metrics=True):
    """Atomically write a live metrics snapshot JSON; returns the path.

    Unlike the post-hoc exporters above, this is meant to be called
    repeatedly from a *running* process (the fleet service exports one
    every N completed sessions): the payload is staged into a temp file
    in the destination directory and ``os.replace``\\ d into place, so a
    reader polling the path always sees a complete, parseable document —
    never a half-written one.  ``extra`` keys merge on top of the
    ``metrics`` section (:func:`repro.obs.metrics.metrics_snapshot`).
    """
    payload = {}
    if include_metrics:
        payload["metrics"] = metrics_snapshot()
    if extra:
        payload.update(extra)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def format_span_tree(roots, indent=0):
    """Indented per-stage summary: wall/CPU milliseconds and entry count."""
    lines = []
    for node in roots:
        if isinstance(node, dict):
            node = from_dict(node)
        attrs = ""
        if node.attrs:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
            attrs = f"  [{pairs}]"
        lines.append(
            f"{'  ' * indent}{node.name:<{max(28 - 2 * indent, 1)}s} "
            f"wall {node.wall_seconds * 1e3:9.2f} ms  "
            f"cpu {node.cpu_seconds * 1e3:9.2f} ms  "
            f"x{node.count}{attrs}"
        )
        lines.extend(
            format_span_tree(node.children.values(), indent + 1)
        )
    return lines if indent else "\n".join(lines)
