"""LScatter reproduction: ambient-LTE backscatter communication.

A from-scratch Python implementation of the system described in
"Leveraging Ambient LTE Traffic for Ubiquitous Passive Communication"
(SIGCOMM 2020), including the LTE/WiFi/LoRa PHY substrates, the tag
(analog sync circuit + chip modulator), the backscatter receiver, the
wireless channel, the baselines the paper compares against, and the
experiment harness that regenerates every table and figure.

Quickstart::

    from repro import LScatterSystem, SystemConfig

    system = LScatterSystem(SystemConfig(bandwidth_mhz=5.0), rng=0)
    report = system.run(payload_length=20000)
    print(report.ber, report.throughput_bps)

Sub-packages:

* ``repro.lte`` / ``repro.wifi`` / ``repro.lora`` — the PHY substrates;
* ``repro.channel`` — path loss, fading, noise, backscatter link budgets;
* ``repro.tag`` — envelope detector, sync circuit, scheduler, modulator,
  power model;
* ``repro.bsrx`` — the backscatter receiver pipeline;
* ``repro.core`` — the end-to-end system and the calibrated link model;
* ``repro.baselines`` — FreeRider-style WiFi backscatter, symbol-level
  LTE backscatter, PLoRa;
* ``repro.traffic`` — ambient traffic occupancy models;
* ``repro.apps`` — continuous authentication and smart-home sensing;
* ``repro.experiments`` — one module per table/figure of the paper.
"""

from repro.core.config import SystemConfig
from repro.core.link_budget import LScatterLinkModel, LinkPrediction
from repro.core.metrics import LinkReport
from repro.core.system import LScatterSystem

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "LScatterSystem",
    "LScatterLinkModel",
    "LinkPrediction",
    "LinkReport",
    "__version__",
]
