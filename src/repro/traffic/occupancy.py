"""Occupancy statistics: week-long sampling and CDFs (paper Fig. 4c)."""

from __future__ import annotations

import numpy as np

from repro.traffic.diurnal import hourly_occupancy
from repro.utils.rng import make_rng


def weekly_occupancy_samples(technology, venue, rng=None, samples_per_hour=4):
    """A week of occupancy-ratio samples for one (technology, venue).

    7 days x 24 hours x ``samples_per_hour`` independent window ratios —
    the measurement procedure behind the paper's Fig. 4c CDFs.
    """
    rng = make_rng(rng)
    out = []
    for _day in range(7):
        for hour in range(24):
            for _ in range(int(samples_per_hour)):
                out.append(hourly_occupancy(technology, venue, hour, rng))
    return np.array(out)


def occupancy_cdf(samples, grid=None):
    """Empirical CDF of occupancy samples on a [0, 1] grid.

    Returns ``(grid, cdf)`` ready for plotting or table dumps.
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    if grid is None:
        grid = np.linspace(0.0, 1.0, 101)
    cdf = np.searchsorted(samples, grid, side="right") / len(samples)
    return grid, cdf
