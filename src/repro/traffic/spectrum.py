"""Band captures and spectrograms — the paper's Fig. 4a/4b, in software.

Synthesises what a spectrum analyzer sees on a WiFi channel (bursty
packets with inter-burst silence, interleaved ZigBee-like narrowband
interferers) versus an LTE band (continuous OFDM with the PSS flashing
every 5 ms), and computes the STFT spectrogram used to visualise them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte import LteTransmitter
from repro.traffic.models import OnOffTraffic
from repro.utils.rng import make_rng
from repro.wifi import WifiTransmitter


@dataclass
class BandCapture:
    """IQ of one observed band plus its sample rate."""

    samples: np.ndarray
    sample_rate_hz: float
    label: str

    @property
    def duration_seconds(self):
        return len(self.samples) / self.sample_rate_hz


def wifi_band_capture(duration_s=20e-3, occupancy=0.35, rng=None):
    """A WiFi channel: packets arriving per an on/off process, plus an
    occasional ZigBee-like narrowband burst (the heterogeneity of §2.2)."""
    rng = make_rng(rng)
    fs = 20e6
    n = int(duration_s * fs)
    band = np.zeros(n, dtype=complex)
    traffic = OnOffTraffic(occupancy=occupancy, mean_busy_s=1.5e-3, rng=rng)
    tx = WifiTransmitter(12.0, rng=rng)
    for interval in traffic.intervals(duration_s):
        start = int(interval.start * fs)
        budget = int(interval.duration * fs)
        while budget > 400:
            packet = tx.transmit(psdu_bytes=int(rng.integers(40, 300)))
            take = min(len(packet.samples), budget)
            band[start : start + take] += packet.samples[:take]
            start += take + 200
            budget -= take + 200
    # A ZigBee-ish 2 MHz interferer for ~15 % of the time.
    zigbee = OnOffTraffic(occupancy=0.15, mean_busy_s=3e-3, rng=rng)
    t = np.arange(n) / fs
    tone = np.exp(1j * 2 * np.pi * 5e6 * t)
    chip = np.sign(rng.standard_normal(n))  # crude DSSS spreading
    mask = zigbee.presence_mask(duration_s, 1.0 / fs)[:n]
    band += 0.7 * tone * chip * mask
    return BandCapture(samples=band, sample_rate_hz=fs, label="wifi-2.4GHz")


def lte_band_capture(duration_s=20e-3, bandwidth_mhz=5.0, rng=None):
    """An LTE downlink band: continuous frames, PSS every 5 ms."""
    rng = make_rng(rng)
    n_frames = int(np.ceil(duration_s / 10e-3))
    capture = LteTransmitter(bandwidth_mhz, rng=rng).transmit(n_frames)
    fs = capture.params.sample_rate_hz
    n = int(duration_s * fs)
    return BandCapture(
        samples=capture.samples[:n], sample_rate_hz=fs, label="lte-downlink"
    )


def spectrogram(capture, fft_size=256, hop=None):
    """Magnitude STFT: returns (times_s, freqs_hz, magnitude dB array)."""
    hop = hop or fft_size // 2
    samples = np.asarray(capture.samples, dtype=complex)
    n_frames = max((len(samples) - fft_size) // hop + 1, 0)
    window = np.hanning(fft_size)
    rows = np.empty((n_frames, fft_size))
    for i in range(n_frames):
        chunk = samples[i * hop : i * hop + fft_size] * window
        spectrum = np.fft.fftshift(np.fft.fft(chunk))
        rows[i] = 20 * np.log10(np.abs(spectrum) + 1e-12)
    times = (np.arange(n_frames) * hop + fft_size / 2) / capture.sample_rate_hz
    freqs = np.fft.fftshift(np.fft.fftfreq(fft_size, 1.0 / capture.sample_rate_hz))
    return times, freqs, rows


def occupancy_from_spectrogram(magnitude_db, threshold_db=None):
    """Fraction of STFT frames carrying signal (the measured traffic rate).

    A frame counts as occupied when its peak power is within 20 dB of the
    capture's strongest frame — robust both for bursty bands (silence sits
    hundreds of dB down) and for continuous ones (everything qualifies).
    """
    magnitude_db = np.asarray(magnitude_db)
    frame_power = magnitude_db.max(axis=1)
    if threshold_db is None:
        threshold_db = frame_power.max() - 20.0
    return float(np.mean(frame_power > threshold_db))
