"""Per-venue, per-technology diurnal occupancy profiles.

Each profile is a 24-element mean-occupancy-by-hour array, fitted to the
statistics the paper reports:

* WiFi office is the heaviest (occupancy still < 0.5 for 80 % of the time
  and < 0.7 for 90 %, Fig. 4c); home peaks in the evening (~0.45 around
  4 pm - 9 pm, Fig. 17); classroom peaks during teaching hours; the mall
  peaks around 8 pm at ~0.5 (Fig. 22); outdoor WiFi is sparse (Fig. 27,
  average throughput drops ~2x vs home).
* LoRa occupancy is ~0.02 everywhere (the technique is rarely deployed).
* LTE is 1.0 at every hour in every venue ("covered all the time").

Hour-to-hour realisations jitter around the mean with a Beta distribution
so a week of samples produces the paper's CDF spreads.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

TECHNOLOGIES = ("wifi", "lora", "lte")
VENUES = ("home", "office", "classroom", "mall", "outdoor")


def _profile(night, morning, day, evening):
    """Assemble a 24-hour profile from four coarse levels."""
    hours = np.empty(24)
    hours[0:6] = night
    hours[6:10] = morning
    hours[10:16] = day
    hours[16:22] = evening
    hours[22:24] = night
    return hours


_WIFI_PROFILES = {
    "home": _profile(night=0.08, morning=0.24, day=0.32, evening=0.52),
    "office": _profile(night=0.08, morning=0.38, day=0.48, evening=0.25),
    "classroom": _profile(night=0.04, morning=0.30, day=0.38, evening=0.12),
    "mall": _profile(night=0.05, morning=0.20, day=0.35, evening=0.48),
    "outdoor": _profile(night=0.03, morning=0.10, day=0.15, evening=0.18),
}

#: LoRa deployments are rare; a beacon every few minutes at most.
_LORA_OCCUPANCY = 0.02


def occupancy_profile(technology, venue):
    """The 24-hour mean-occupancy array for one (technology, venue)."""
    technology = technology.lower()
    venue = venue.lower()
    if venue not in VENUES:
        raise ValueError(f"unknown venue {venue!r}; choose from {VENUES}")
    if technology == "lte":
        return np.ones(24)
    if technology == "lora":
        return np.full(24, _LORA_OCCUPANCY)
    if technology == "wifi":
        return _WIFI_PROFILES[venue].copy()
    raise ValueError(f"unknown technology {technology!r}")


def hourly_occupancy(technology, venue, hour, rng=None, concentration=30.0):
    """Draw one realised occupancy for a given hour of day.

    LTE always returns exactly 1.0; other technologies jitter around the
    profile mean with a Beta distribution of the given concentration.
    """
    technology = technology.lower()
    if technology == "lte":
        return 1.0
    rng = make_rng(rng)
    mean = float(occupancy_profile(technology, venue)[int(hour) % 24])
    mean = min(max(mean, 1e-4), 1.0 - 1e-4)
    a = mean * concentration
    b = (1.0 - mean) * concentration
    return float(rng.beta(a, b))
