"""On/off carrier-presence processes.

``OnOffTraffic`` is a two-state semi-Markov process with exponential
dwell times — the classic model for CSMA-style bursty channel occupancy.
``ContinuousTraffic`` is the degenerate always-on process (LTE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng


def nested_busy_mask(n, fraction, n_bursts, rng):
    """Boolean mask covering ``fraction`` of ``n`` samples in bursts, nested.

    Burst centres are drawn from ``rng`` with a draw count that does not
    depend on ``fraction``, and each burst grows symmetrically about its
    centre as ``fraction`` rises — so for a fixed ``rng`` stream the mask
    at a lower fraction is a strict subset of the mask at a higher one
    (wrapping at the ends).  This is the placement idiom that makes the
    :mod:`repro.stress` degradation curves monotone by construction.

    ``fraction == 0`` returns an all-``False`` mask but still consumes the
    same draws, keeping sweep points aligned.
    """
    n = int(n)
    n_bursts = int(n_bursts)
    if n_bursts < 1:
        raise ValueError("n_bursts must be >= 1")
    if not 0.0 <= float(fraction) <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    # Placement draws first, severity-independent count.
    centres = np.sort(rng.integers(0, max(n, 1), size=n_bursts))
    mask = np.zeros(n, dtype=bool)
    if n == 0 or fraction == 0.0:
        return mask
    per_burst = int(np.ceil(fraction * n / n_bursts))
    half = per_burst // 2
    for centre in centres:
        lo = int(centre) - half
        hi = lo + per_burst
        idx = np.arange(lo, hi) % n
        mask[idx] = True
    return mask


@dataclass
class BusyInterval:
    """One carrier-present interval [start, end) in seconds."""

    start: float
    end: float

    @property
    def duration(self):
        return self.end - self.start


class OnOffTraffic:
    """Alternating busy/idle process with a target occupancy ratio.

    ``occupancy`` is the long-run busy fraction; ``mean_busy_s`` the mean
    burst duration (WiFi packets/bursts are milliseconds; LoRa frames are
    long but extremely sparse).
    """

    def __init__(self, occupancy, mean_busy_s=2e-3, rng=None):
        if not 0.0 <= occupancy < 1.0:
            raise ValueError("occupancy must be in [0, 1)")
        self.occupancy = float(occupancy)
        self.mean_busy_s = float(mean_busy_s)
        if self.occupancy > 0:
            self.mean_idle_s = self.mean_busy_s * (1.0 - self.occupancy) / self.occupancy
        else:
            self.mean_idle_s = float("inf")
        self.rng = make_rng(rng)

    def intervals(self, duration_s):
        """Draw the busy intervals covering ``[0, duration_s)``."""
        if self.occupancy == 0.0:
            return []
        out = []
        # Start in the stationary state.
        busy = self.rng.random() < self.occupancy
        t = 0.0
        while t < duration_s:
            if busy:
                length = self.rng.exponential(self.mean_busy_s)
                out.append(BusyInterval(t, min(t + length, duration_s)))
            else:
                length = self.rng.exponential(self.mean_idle_s)
            t += length
            busy = not busy
        return out

    def occupancy_ratio(self, duration_s, intervals=None):
        """Measured busy fraction over a window."""
        if intervals is None:
            intervals = self.intervals(duration_s)
        busy = sum(iv.duration for iv in intervals)
        return busy / float(duration_s) if duration_s > 0 else 0.0

    def presence_mask(self, duration_s, resolution_s=1e-3, intervals=None):
        """Boolean busy mask sampled every ``resolution_s``."""
        if intervals is None:
            intervals = self.intervals(duration_s)
        n = int(np.ceil(duration_s / resolution_s))
        mask = np.zeros(n, dtype=bool)
        for iv in intervals:
            # Round both edges so quantisation is unbiased even when the
            # bursts are comparable to the resolution.
            lo = int(round(iv.start / resolution_s))
            hi = min(int(round(iv.end / resolution_s)), n)
            mask[lo:hi] = True
        return mask


class ContinuousTraffic:
    """Always-on carrier: the LTE downlink."""

    occupancy = 1.0

    def intervals(self, duration_s):
        return [BusyInterval(0.0, float(duration_s))]

    def occupancy_ratio(self, duration_s, intervals=None):
        return 1.0

    def presence_mask(self, duration_s, resolution_s=1e-3, intervals=None):
        n = int(np.ceil(duration_s / resolution_s))
        return np.ones(n, dtype=bool)
