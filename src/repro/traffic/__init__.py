"""Ambient-traffic models: the heart of the paper's motivation.

WiFi/LoRa channels carry bursty, intermittent traffic (random access on a
shared ISM band); the LTE downlink is continuous (dedicated licensed band,
always-on reference/sync signals).  This package models carrier *presence*
as stochastic on/off processes with per-venue diurnal profiles fitted to
the occupancy statistics the paper reports (Figs 4c, 17, 22, 27).
"""

from repro.traffic.models import OnOffTraffic, ContinuousTraffic
from repro.traffic.diurnal import (
    hourly_occupancy,
    occupancy_profile,
    TECHNOLOGIES,
    VENUES,
)
from repro.traffic.occupancy import weekly_occupancy_samples, occupancy_cdf

__all__ = [
    "OnOffTraffic",
    "ContinuousTraffic",
    "hourly_occupancy",
    "occupancy_profile",
    "TECHNOLOGIES",
    "VENUES",
    "weekly_occupancy_samples",
    "occupancy_cdf",
]
