"""Convolutional-coded backscatter on the LTE pilot symbols.

The Aalto line of work (arXiv 2402.12657) codes the backscatter stream
so that pilot-symbol-only modulation — far fewer modulated symbols than
the chip scheme — still delivers a usable link at range.  Here the tag
modulates chip windows only on the CRS-bearing symbols (0 and 4 of each
slot): the first CRS symbol of each half-frame carries the shared PN
preamble, the other nineteen carry the rate-1/3 tail-biting
convolutional code stream (:mod:`repro.lte.coding`) over the payload.

The receiver reuses the chip receiver's machinery — PSS/SSS cascade
sounding, preamble offset search against a pre-distorted reference —
then hands per-chip matched-filter soft values to the Viterbi decoder as
LLRs.  Lost or erased windows contribute zero LLRs (true erasures), so
the code, not the window accounting, decides how much damage a faded
packet does.  ``measure`` therefore compares *decoded information bits*:
``n_bits`` in this mode's reports counts info bits, not raw chips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsrx.equalizer import estimate_channel_from_known
from repro.bsrx.mod_offset import find_modulation_offset
from repro.core.metrics import BerBreakdown, align_windows
from repro.lte.coding.convolutional import conv_encode, viterbi_decode
from repro.lte.crs import CRS_SYMBOLS_IN_SLOT
from repro.lte.pss import PSS_SYMBOL_IN_SLOT
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.substrates.base import (
    Substrate,
    _WindowSink,
    iter_half_frames,
    register,
)
from repro.tag.controller import ChipSchedule, ChipWindow
from repro.tag.framing import IDLE_BIT, SLOTS_PER_HALF_FRAME, preamble_bits

#: Shortest payload the tail-biting encoder accepts (constraint length 7).
MIN_INFO_BITS = 8

#: Preamble mis-slice fraction above which a half-frame's data windows
#: are erasures (sync lost for this half-frame), mirroring the chip
#: receiver's escalation but always on — the decoder wants clean zero
#: LLRs there, not confidently wrong ones.
PREAMBLE_ERASURE_FRACTION = 0.45


@dataclass
class CodedSchedule(ChipSchedule):
    """Chip schedule plus the information bits the code stream carries."""

    info_bits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int8))


@register
class CodedPilotSubstrate(Substrate):
    """Rate-1/3 coded chips on CRS symbols only."""

    name = "coded-pilot"
    ambient_kind = "lte-downlink"
    supports_decoded_reference = True
    supports_circuit_sync = True

    def __init__(self, system):
        super().__init__(system)
        self.n_chips = self.params.n_subcarriers
        self.chip_offset = (self.params.fft_size - self.n_chips) // 2
        self._preamble = preamble_bits(self.n_chips)

    def _symbol_plan(self):
        """CRS symbols per half-frame; the first is the preamble."""
        return [
            (slot, sym)
            for slot in range(SLOTS_PER_HALF_FRAME)
            for sym in CRS_SYMBOLS_IN_SLOT
        ]

    def build_schedule(
        self,
        timing,
        n_samples,
        payload_bits,
        owned_half_frames=None,
        drift_per_half_frame=0.0,
    ):
        params = self.params
        payload_bits = np.asarray(payload_bits, dtype=np.int8)
        chips = np.ones(int(n_samples), dtype=np.int8)
        half = params.samples_per_frame // 2
        plan = self._symbol_plan()

        # First pass: where every window would land, clipping included,
        # so the code stream's length matches the capacity actually laid.
        spans = []
        n_half_frames = 0
        for _index, half_start, drift in iter_half_frames(
            timing, n_samples, half, owned_half_frames, drift_per_half_frame
        ):
            n_half_frames += 1
            for position, (slot, sym) in enumerate(plan):
                start = (
                    half_start
                    + params.useful_start(slot, sym)
                    + self.chip_offset
                    + drift
                )
                if start < 0 or start + self.n_chips > n_samples:
                    continue
                spans.append((int(start), position == 0))
        n_data_windows = sum(1 for _, is_preamble in spans if not is_preamble)
        capacity = n_data_windows * self.n_chips
        n_info = min(len(payload_bits), capacity // 3)
        if n_info < MIN_INFO_BITS:
            n_info = 0
        info_bits = payload_bits[:n_info].copy()
        coded = conv_encode(info_bits) if n_info else np.zeros(0, np.int8)

        windows = []
        laid = 0
        for start, is_preamble in spans:
            if is_preamble:
                bits = self._preamble
                kind = "preamble"
            else:
                if laid >= len(coded):
                    continue  # idle window: chips stay +1, no bookkeeping
                chunk = coded[laid : laid + self.n_chips]
                laid += len(chunk)
                bits = np.full(self.n_chips, IDLE_BIT, dtype=np.int8)
                bits[: len(chunk)] = chunk
                kind = "data"
            chips[start : start + self.n_chips] = 2 * bits - 1
            windows.append(
                ChipWindow(
                    start=int(start),
                    n_chips=self.n_chips,
                    kind=kind,
                    bits=bits.copy(),
                )
            )
        return CodedSchedule(
            chips=chips,
            windows=windows,
            payload_bits=info_bits,
            n_half_frames=n_half_frames,
            info_bits=info_bits,
        )

    # -- receiver --------------------------------------------------------------

    def _useful(self, samples, half_start, slot, sym):
        params = self.params
        start = half_start + params.useful_start(slot, sym)
        return samples[start : start + params.fft_size], start

    def demodulate(self, front):
        params = self.params
        fft = params.fft_size
        shifted = front.shifted_rx
        reference = front.reference
        limit = len(shifted)
        sink = _WindowSink()
        plan = self._symbol_plan()
        search_slack = self.chip_offset
        for half_start in front.half_starts:
            half_start = int(half_start)
            # Cascade sounding on the unmodulated PSS/SSS reflection.
            estimates = []
            for sym in (SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT):
                y, _ = self._useful(shifted, half_start, 0, sym)
                x, _ = self._useful(reference, half_start, 0, sym)
                if len(y) < fft or len(x) < fft:
                    break
                estimates.append(estimate_channel_from_known(y, x))
            if len(estimates) < 2:
                continue
            cascade = np.mean(estimates, axis=0)

            # Preamble: offset + gain against the pre-distorted reference.
            y0, _ = self._useful(shifted, half_start, *plan[0])
            x0, _ = self._useful(reference, half_start, *plan[0])
            if len(y0) < fft or len(x0) < fft:
                continue
            w0 = np.fft.ifft(np.fft.fft(x0) * cascade)
            estimate = find_modulation_offset(
                y0, w0, self._preamble, self.chip_offset, search_slack
            )
            offset = estimate.offset
            derotate = np.conj(estimate.gain)
            lo, hi = offset, offset + self.n_chips
            pre_soft = np.real(derotate * y0[lo:hi] * np.conj(w0[lo:hi]))
            pre_errors = int(np.sum((pre_soft > 0).astype(np.int8) != self._preamble))
            erased = pre_errors > PREAMBLE_ERASURE_FRACTION * self.n_chips

            for slot, sym in plan[1:]:
                y, sym_start = self._useful(shifted, half_start, slot, sym)
                x, _ = self._useful(reference, half_start, slot, sym)
                window_start = sym_start + offset
                if len(y) < fft or len(x) < fft or window_start + self.n_chips > limit:
                    continue
                if erased:
                    sink.add(
                        np.zeros(self.n_chips, np.int8),
                        np.zeros(self.n_chips),
                        window_start,
                        True,
                    )
                    continue
                w = np.fft.ifft(np.fft.fft(x) * cascade)
                soft = np.real(derotate * y[lo:hi] * np.conj(w[lo:hi]))
                bits = (soft > 0).astype(np.int8)
                sink.add(bits, soft, window_start, False)
        return sink.result()

    # -- accounting ------------------------------------------------------------

    def measure(self, schedule, demod, tolerance):
        """Decode the LLR stream and count *information*-bit errors.

        Window bookkeeping (lost/erased) keeps the usual meaning; lost
        and erased windows become zero LLRs rather than counted errors —
        the decode outcome is the honest damage report for a coded link.
        """
        pairs = align_windows(schedule.windows, demod.starts, tolerance)
        info = np.asarray(getattr(schedule, "info_bits", []), dtype=np.int8)
        n_info = len(info)
        out = BerBreakdown(n_windows=len(pairs))
        llrs = np.zeros(3 * n_info)
        window_soft = getattr(demod, "window_soft", None)
        for j, (s_index, d_index) in enumerate(pairs):
            lo = j * self.n_chips
            n_positions = max(0, min(self.n_chips, 3 * n_info - lo))
            if d_index is None:
                out.n_lost += 1
                continue
            if demod.window_erased and demod.window_erased[d_index]:
                out.n_erased += 1
                continue
            if n_positions == 0:
                continue
            soft = (
                window_soft[d_index]
                if window_soft is not None
                else np.zeros(self.n_chips)
            )
            if len(soft) >= n_positions:
                # Matched-filter soft > 0 means coded bit 1; the decoder
                # wants positive LLRs for coded bit 0.
                llrs[lo : lo + n_positions] = -soft[:n_positions]
        if n_info:
            decoded = viterbi_decode(llrs, n_info)
            out.n_bits = n_info
            out.n_errors = int(np.sum(decoded != info))
        return out
