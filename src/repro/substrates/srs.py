"""Uplink-SRS ambient backscatter: a new uplink ambient stage.

Where the other substrates ride the eNodeB's downlink, this mode rides
the *UE's* uplink sounding reference signals (arXiv 2501.10952): once
per subframe the UE transmits an SRS — a comb-2 Zadoff-Chu sequence on
the last SC-FDMA symbol — and is otherwise silent here (the worst-case
ambient: nothing but sounding).  The tag phase-modulates whole SRS
symbols, differentially (DBPSK) across the five SRS occasions of each
half-frame: the first occasion is the phase reference, the remaining
four carry one bit each.

The receiver correlates each SRS occasion against the known transmitted
sequence and decides each bit from the sign of ``Re(rho_k *
conj(rho_{k-1}))`` — no absolute carrier phase and no channel sounding
needed, which is what makes a five-pulse-per-5ms ambient workable.

Because the ambient is not a decodable downlink signal, this mode
requires ``reference_mode="genie"`` and the model/pinned sync modes (the
envelope sync circuit looks for the boosted PSS/SSS region, which an
uplink capture does not have); :class:`~repro.core.system.
LScatterSystem` enforces both at construction.  Ambient-cache entries
key under ``ambient_kind="srs-uplink"`` so uplink captures never collide
with downlink ones.
"""

from __future__ import annotations

import numpy as np

from repro.lte.params import SUBFRAMES_PER_FRAME
from repro.lte.transmitter import LteCapture
from repro.lte.zadoff_chu import zadoff_chu
from repro.substrates.base import (
    Substrate,
    _WindowSink,
    iter_half_frames,
    register,
)
from repro.tag.controller import ChipSchedule, ChipWindow
from repro.tag.framing import IDLE_BIT

#: Slots (within a half-frame) whose last symbol carries the SRS — the
#: final SC-FDMA symbol of each 1 ms subframe.
SRS_SLOTS = (1, 3, 5, 7, 9)
SRS_SYMBOL_IN_SLOT = 6


def srs_sequence(params):
    """The comb-2 Zadoff-Chu SRS and the FFT bins it occupies.

    Every second data subcarrier carries one sequence element (comb-2,
    36.211 §5.5.3); the sequence length is the largest odd bin count
    that fits, and ``root = length - 1`` is always coprime with it.
    """
    comb = params.subcarrier_indices()[::2]
    length = len(comb) if len(comb) % 2 == 1 else len(comb) - 1
    root = length - 1
    return zadoff_chu(root, length), comb[:length]


def build_srs_capture(params, cell, n_frames):
    """Synthesize an uplink capture: SRS once per subframe, else silence."""
    fft = params.fft_size
    sequence, bins = srs_sequence(params)
    spectrum = np.zeros(fft, dtype=complex)
    spectrum[bins] = sequence
    useful = np.fft.ifft(spectrum) * np.sqrt(fft)
    frame = np.zeros(params.samples_per_frame, dtype=complex)
    for subframe in range(SUBFRAMES_PER_FRAME):
        slot = 2 * subframe + 1
        sym_start = params.symbol_start(slot, SRS_SYMBOL_IN_SLOT)
        u_start = params.useful_start(slot, SRS_SYMBOL_IN_SLOT)
        frame[u_start : u_start + fft] = useful
        frame[sym_start:u_start] = useful[-(u_start - sym_start) :]
    samples = np.tile(frame, int(n_frames))
    return LteCapture(params=params, cell=cell, samples=samples, frames=[])


@register
class SrsUplinkSubstrate(Substrate):
    """DBPSK across the SRS occasions of each half-frame."""

    name = "srs-uplink"
    ambient_kind = "srs-uplink"
    supports_decoded_reference = False
    supports_circuit_sync = False

    def prepare_ambient(self, rng=None):
        # The SRS is a fixed sounding sequence: deterministic, so the
        # transmitter stream (rng) is deliberately unused — spawning
        # order for the other five streams is unchanged either way.
        from repro.core.system import AmbientStage

        capture = build_srs_capture(
            self.params, self.config.cell, self.config.n_frames
        )
        mean_power = float(np.mean(np.abs(capture.samples) ** 2))
        unit = capture.samples / np.sqrt(mean_power)
        return AmbientStage(capture=capture, unit=unit)

    def _occasions(self, half_start, drift=0):
        """(mod_start, mod_length, window_start) per SRS occasion."""
        params = self.params
        fft = params.fft_size
        out = []
        for slot in SRS_SLOTS:
            sym_start = params.symbol_start(slot, SRS_SYMBOL_IN_SLOT)
            u_start = params.useful_start(slot, SRS_SYMBOL_IN_SLOT)
            length = (u_start - sym_start) + fft
            out.append(
                (
                    half_start + sym_start + drift,
                    length,
                    half_start + u_start + drift,
                )
            )
        return out

    def build_schedule(
        self,
        timing,
        n_samples,
        payload_bits,
        owned_half_frames=None,
        drift_per_half_frame=0.0,
    ):
        params = self.params
        payload_bits = np.asarray(payload_bits, dtype=np.int8)
        chips = np.ones(int(n_samples), dtype=np.int8)
        windows = []
        half = params.samples_per_frame // 2
        consumed = 0
        n_half_frames = 0
        for _index, half_start, drift in iter_half_frames(
            timing, n_samples, half, owned_half_frames, drift_per_half_frame
        ):
            n_half_frames += 1
            occasions = self._occasions(half_start, drift)
            # Differential chain: if any occasion clips the capture edge
            # the chain has no anchor, so the half-frame stays silent.
            if any(
                start < 0 or start + length > n_samples
                for start, length, _ in occasions
            ):
                continue
            sign = 1
            for k, (start, length, window_start) in enumerate(occasions):
                if k == 0:
                    windows.append(
                        ChipWindow(
                            start=int(window_start),
                            n_chips=1,
                            kind="preamble",
                            bits=np.array([1], dtype=np.int8),
                        )
                    )
                    continue
                if consumed < len(payload_bits):
                    bit = int(payload_bits[consumed])
                    consumed += 1
                else:
                    bit = IDLE_BIT
                if bit == 0:
                    sign = -sign
                chips[start : start + length] = sign
                windows.append(
                    ChipWindow(
                        start=int(window_start),
                        n_chips=1,
                        kind="data",
                        bits=np.array([bit], dtype=np.int8),
                    )
                )
        return ChipSchedule(
            chips=chips,
            windows=windows,
            payload_bits=payload_bits[:consumed].copy(),
            n_half_frames=n_half_frames,
        )

    def demodulate(self, front):
        params = self.params
        fft = params.fft_size
        shifted = front.shifted_rx
        reference = front.reference
        limit = len(shifted)
        sink = _WindowSink()
        ref_power = float(np.mean(np.abs(reference) ** 2))
        floor = 1e-9 * max(ref_power, 1e-30) * fft
        for half_start in front.half_starts:
            half_start = int(half_start)
            occasions = self._occasions(half_start)
            rhos = []
            starts = []
            for _mod_start, _length, window_start in occasions:
                if window_start < 0 or window_start + fft > limit:
                    rhos.append(None)
                    starts.append(window_start)
                    continue
                y = shifted[window_start : window_start + fft]
                x = reference[window_start : window_start + fft]
                den = float(np.vdot(x, x).real)
                rhos.append(np.vdot(x, y) / max(den, floor))
                starts.append(window_start)
            for k in range(1, len(occasions)):
                if rhos[k] is None or rhos[k - 1] is None:
                    continue
                product = rhos[k] * np.conj(rhos[k - 1])
                magnitude = abs(rhos[k]) * abs(rhos[k - 1])
                soft = product.real / max(magnitude, 1e-30)
                sink.add([1 if soft > 0 else 0], [soft], starts[k], False)
        return sink.result()
