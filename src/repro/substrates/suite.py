"""Cross-substrate comparison suite behind ``repro substrates``.

For every registered substrate mode the suite runs three checks over one
short shared-geometry capture (1.4 MHz, 2 frames, genie reference, model
sync):

* **link** — a close-range run must carry bits with BER below a loose
  floor (every mode is error-free there in practice; the floor catches
  a receiver that silently stopped demodulating);
* **noop** — a severity-0 :class:`~repro.faults.plan.FaultPlan` must be
  bit-identical to running with no plan at all (the fault hooks are
  pass-through when every knob is zero);
* **ladder** (full mode only) — the endpoints of the mode's tuned
  distance arm from :mod:`repro.experiments.subgrid` must degrade
  monotonically (goodput down, BER up, within float slack).

The chip mode additionally runs an **identity** check: an explicit
``substrate="chip"`` config must reproduce the default config's report
field-for-field — the registry dispatch must cost nothing in bits.

The report JSON (``SUBSTRATES_PR10.json``; smoke runs default under
``artifacts/``) carries one comparison row per mode plus the per-check
verdicts, and ``passed`` only when every check held.
"""

from __future__ import annotations

import json
import os

from repro.core.config import SystemConfig
from repro.core.system import LScatterSystem
from repro.experiments.subgrid import DISTANCE_ARMS, GATE_RELATIVE_SLACK
from repro.faults.plan import FaultPlan
from repro.substrates.base import ambient_kind_for, available_substrates

#: Close-range link check: any BER above this means the receiver broke.
LINK_BER_CEILING = 0.05

PAYLOAD_LENGTH = 4000
N_FRAMES = 2


def _base_config(mode, **overrides):
    kwargs = dict(
        bandwidth_mhz=1.4,
        n_frames=N_FRAMES,
        reference_mode="genie",
        sync_mode="model",
        multipath=False,
        substrate=mode,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
    )
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def _run(config, seed):
    return LScatterSystem(config, rng=seed).run(payload_length=PAYLOAD_LENGTH)


def _report_fields(report):
    return {
        "n_bits": int(report.n_bits),
        "n_errors": int(report.n_errors),
        "n_windows": int(report.n_windows),
        "n_lost_windows": int(report.n_lost_windows),
        "n_erased_windows": int(report.n_erased_windows),
        "goodput_kbps": report.throughput_bps / 1e3,
        "ber": float(report.ber),
    }


def _check_link(mode, seed):
    fields = _report_fields(_run(_base_config(mode), seed))
    passed = fields["n_bits"] > 0 and fields["ber"] <= LINK_BER_CEILING
    return {"passed": bool(passed), **fields}


def _check_noop(mode, seed):
    clean = _report_fields(_run(_base_config(mode, faults=None), seed))
    noop = _report_fields(
        _run(_base_config(mode, faults=FaultPlan.none(seed=seed)), seed)
    )
    return {"passed": clean == noop, "clean": clean, "noop": noop}


def _check_ladder(mode, seed):
    power, distances = DISTANCE_ARMS[mode]
    points = []
    for distance in (distances[0], distances[-1]):
        config = _base_config(
            mode, tag_to_ue_ft=float(distance), tx_power_dbm=power
        )
        fields = _report_fields(_run(config, seed))
        points.append({"distance_ft": float(distance), **fields})
    near, far = points
    slack = GATE_RELATIVE_SLACK * max(abs(near["goodput_kbps"]), 1.0)
    ber_slack = GATE_RELATIVE_SLACK * max(abs(near["ber"]), 1.0)
    passed = (
        far["goodput_kbps"] <= near["goodput_kbps"] + slack
        and far["ber"] >= near["ber"] - ber_slack
    )
    return {"passed": bool(passed), "tx_power_dbm": power, "points": points}


def _check_identity(seed):
    explicit = _report_fields(_run(_base_config("chip"), seed))
    default = _report_fields(
        _run(_base_config("chip", substrate="chip"), seed)
    )
    # Belt and braces: also run a config that never names the field, the
    # exact spelling pre-substrate callers use.
    implicit = _report_fields(
        _run(
            SystemConfig(
                bandwidth_mhz=1.4,
                n_frames=N_FRAMES,
                reference_mode="genie",
                sync_mode="model",
                multipath=False,
                enb_to_tag_ft=3.0,
                tag_to_ue_ft=3.0,
            ),
            seed,
        )
    )
    return {
        "passed": explicit == default == implicit,
        "explicit": explicit,
        "implicit": implicit,
    }


def run_suite(output, smoke=False, seed=0, substrate=None):
    """Run the comparison suite; writes ``output`` and returns the report."""
    modes = available_substrates() if substrate is None else (substrate,)
    report = {
        "seed": int(seed),
        "smoke": bool(smoke),
        "modes": {},
        "comparison": [],
        "passed": True,
    }
    for mode in modes:
        checks = {
            "link": _check_link(mode, seed),
            "noop": _check_noop(mode, seed),
        }
        if not smoke:
            checks["ladder"] = _check_ladder(mode, seed)
        if mode == "chip":
            checks["identity"] = _check_identity(seed)
        report["modes"][mode] = checks
        report["comparison"].append(
            {
                "substrate": mode,
                "ambient_kind": ambient_kind_for(mode),
                **{
                    k: checks["link"][k]
                    for k in ("goodput_kbps", "ber", "n_bits")
                },
            }
        )
        if not all(c["passed"] for c in checks.values()):
            report["passed"] = False
    directory = os.path.dirname(output)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def format_report(report):
    """Plain-text comparison table plus per-check verdicts."""
    lines = [
        f"{'substrate':12s} {'ambient':14s} {'goodput kbps':>12s} "
        f"{'BER':>10s} {'bits':>7s}  checks"
    ]
    for row in report["comparison"]:
        checks = report["modes"][row["substrate"]]
        verdicts = " ".join(
            f"{name}={'OK' if c['passed'] else 'FAILED'}"
            for name, c in sorted(checks.items())
        )
        lines.append(
            f"{row['substrate']:12s} {row['ambient_kind']:14s} "
            f"{row['goodput_kbps']:12.3f} {row['ber']:10.3e} "
            f"{row['n_bits']:7d}  {verdicts}"
        )
    lines.append(
        f"substrates: {'PASSED' if report['passed'] else 'FAILED'}"
    )
    return "\n".join(lines)
