"""Pluggable ambient-substrate modes; importing registers the built-ins."""

from repro.substrates.base import (
    Substrate,
    SubstrateDemodResult,
    ambient_kind_for,
    available_substrates,
    get_substrate,
    iter_half_frames,
    register,
)
from repro.substrates.chip import ChipSubstrate
from repro.substrates.coded import CodedPilotSubstrate, CodedSchedule
from repro.substrates.crs import CrsFskSubstrate, CrsOokSubstrate
from repro.substrates.srs import SrsUplinkSubstrate, build_srs_capture

__all__ = [
    "Substrate",
    "SubstrateDemodResult",
    "ambient_kind_for",
    "available_substrates",
    "get_substrate",
    "iter_half_frames",
    "register",
    "ChipSubstrate",
    "CodedPilotSubstrate",
    "CodedSchedule",
    "CrsFskSubstrate",
    "CrsOokSubstrate",
    "SrsUplinkSubstrate",
    "build_srs_capture",
]
