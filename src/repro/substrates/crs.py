"""CRS-based ambient backscatter: OOK and FSK on the reference signals.

The cell-specific reference signals (CRS) occupy symbols 0 and 4 of
every slot and are always transmitted, whatever the traffic load — the
one piece of a downlink LTE signal a tag can rely on in an idle cell
(arXiv 2209.01108).  Both modes here modulate exactly those twenty
symbols per half-frame, one payload bit per CRS symbol:

* ``crs-ook`` — bit 1 reflects the symbol, bit 0 absorbs it (RF switch
  open: chips 0).  The receiver correlates each CRS symbol's pilot bins
  against the reference and compares the correlation amplitude to the
  unmodulated PSS/SSS sounding of the same half-frame.
* ``crs-fsk`` — the tag toggles its switch at one of two sub-symbol
  rates over the CRS symbol, displacing the backscattered pilots by
  ``fft/16`` or ``fft/8`` bins (arXiv 2301.13664); the receiver decides
  noncoherently between the two tone bins of the per-sample product
  ``y_n x_n*``, so it needs no amplitude reference at all.

Both leave the PSS/SSS untouched (chips +1), so envelope sync and the
OOK amplitude sounding keep working, and both ride the same downlink
ambient capture (and ambient cache entries) as the chip scheme.
"""

from __future__ import annotations

import numpy as np

from repro.lte.crs import CRS_SYMBOLS_IN_SLOT, crs_positions
from repro.lte.pss import PSS_SYMBOL_IN_SLOT
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.substrates.base import (
    Substrate,
    _WindowSink,
    iter_half_frames,
    register,
)
from repro.tag.controller import ChipSchedule, ChipWindow
from repro.tag.framing import IDLE_BIT, SLOTS_PER_HALF_FRAME


class _CrsSubstrate(Substrate):
    """Shared CRS-symbol window layout for the OOK and FSK modes."""

    supports_decoded_reference = True
    supports_circuit_sync = True

    def _crs_symbols(self):
        """(slot, symbol) pairs modulated per half-frame, in time order."""
        return [
            (slot, sym)
            for slot in range(SLOTS_PER_HALF_FRAME)
            for sym in CRS_SYMBOLS_IN_SLOT
        ]

    def _apply_bit(self, chips, start, bit):
        raise NotImplementedError

    def build_schedule(
        self,
        timing,
        n_samples,
        payload_bits,
        owned_half_frames=None,
        drift_per_half_frame=0.0,
    ):
        params = self.params
        payload_bits = np.asarray(payload_bits, dtype=np.int8)
        chips = np.ones(int(n_samples), dtype=np.int8)
        windows = []
        fft = params.fft_size
        half = params.samples_per_frame // 2
        plan = self._crs_symbols()
        consumed = 0
        n_half_frames = 0
        for _index, half_start, drift in iter_half_frames(
            timing, n_samples, half, owned_half_frames, drift_per_half_frame
        ):
            n_half_frames += 1
            for slot, sym in plan:
                start = half_start + params.useful_start(slot, sym) + drift
                if start < 0 or start + fft > n_samples:
                    continue
                if consumed < len(payload_bits):
                    bit = int(payload_bits[consumed])
                    consumed += 1
                else:
                    bit = IDLE_BIT
                self._apply_bit(chips, start, bit)
                windows.append(
                    ChipWindow(
                        start=int(start),
                        n_chips=1,
                        kind="data",
                        bits=np.array([bit], dtype=np.int8),
                    )
                )
        return ChipSchedule(
            chips=chips,
            windows=windows,
            payload_bits=payload_bits[:consumed].copy(),
            n_half_frames=n_half_frames,
        )

    # -- receiver helpers ------------------------------------------------------

    def _pilot_bins(self, sym):
        """FFT bins carrying CRS pilots in symbol ``sym`` of any slot."""
        params = self.params
        positions = crs_positions(
            sym, self.config.cell.cell_id, params.n_rb
        )
        return params.subcarrier_indices()[positions]

    def _useful(self, samples, half_start, slot, sym):
        params = self.params
        start = half_start + params.useful_start(slot, sym)
        return samples[start : start + params.fft_size], start


@register
class CrsOokSubstrate(_CrsSubstrate):
    """On-off keying of the CRS symbols against a PSS/SSS sounding."""

    name = "crs-ook"

    def _apply_bit(self, chips, start, bit):
        if bit == 0:
            chips[start : start + self.params.fft_size] = 0

    def demodulate(self, front):
        params = self.params
        fft = params.fft_size
        shifted = front.shifted_rx
        reference = front.reference
        limit = len(shifted)
        sink = _WindowSink()
        plan = self._crs_symbols()
        bins_by_sym = {sym: self._pilot_bins(sym) for sym in CRS_SYMBOLS_IN_SLOT}
        ref_power = float(np.mean(np.abs(reference) ** 2))
        floor = 1e-9 * max(ref_power, 1e-30) * fft
        for half_start in front.half_starts:
            half_start = int(half_start)
            # Amplitude sounding on the unmodulated PSS/SSS reflection.
            num = 0.0
            den = 0.0
            sounding_ok = True
            for sym in (SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT):
                y, _ = self._useful(shifted, half_start, 0, sym)
                x, _ = self._useful(reference, half_start, 0, sym)
                if len(y) < fft or len(x) < fft:
                    sounding_ok = False
                    break
                num += abs(np.vdot(x, y))
                den += float(np.vdot(x, x).real)
            if den < floor:
                sounding_ok = False
            amplitude = num / den if sounding_ok else 0.0
            for slot, sym in plan:
                y, start = self._useful(shifted, half_start, slot, sym)
                x, _ = self._useful(reference, half_start, slot, sym)
                if len(y) < fft or len(x) < fft or start + fft > limit:
                    continue
                if not sounding_ok:
                    sink.add([IDLE_BIT], [0.0], start, True)
                    continue
                bins = bins_by_sym[sym]
                yf = np.fft.fft(y)[bins]
                xf = np.fft.fft(x)[bins]
                den_w = float(np.sum(np.abs(xf) ** 2))
                if den_w < floor / fft:
                    # The reference pilots vanished under this window
                    # (ambient dropout): no decision is honest.
                    sink.add([IDLE_BIT], [0.0], start, True)
                    continue
                rho = abs(np.sum(yf * np.conj(xf))) / den_w
                soft = rho - 0.5 * amplitude
                sink.add([1 if soft > 0 else 0], [soft], start, False)
        return sink.result()


@register
class CrsFskSubstrate(_CrsSubstrate):
    """Binary FSK: the switch-toggle rate over a CRS symbol is the bit."""

    name = "crs-fsk"

    #: Half-periods of the ±1 switching waveform, in samples; the square
    #: wave's fundamental lands on FFT bin ``fft / (2 * half_period)``
    #: (integral for every supported FFT size, 128 and up).
    HALF_PERIOD_BIT0 = 4
    HALF_PERIOD_BIT1 = 8

    def _wave(self, bit, length):
        half = self.HALF_PERIOD_BIT1 if bit == 1 else self.HALF_PERIOD_BIT0
        pattern = (np.arange(int(length)) // half) % 2
        return np.where(pattern == 0, 1, -1).astype(np.int8)

    def _apply_bit(self, chips, start, bit):
        fft = self.params.fft_size
        chips[start : start + fft] = self._wave(bit, fft)

    def demodulate(self, front):
        params = self.params
        fft = params.fft_size
        shifted = front.shifted_rx
        reference = front.reference
        limit = len(shifted)
        sink = _WindowSink()
        plan = self._crs_symbols()
        n = np.arange(fft)
        k0 = fft // (2 * self.HALF_PERIOD_BIT0)
        k1 = fft // (2 * self.HALF_PERIOD_BIT1)
        tone0 = np.exp(-2j * np.pi * k0 * n / fft)
        tone1 = np.exp(-2j * np.pi * k1 * n / fft)
        ref_power = float(np.mean(np.abs(reference) ** 2))
        abs_floor = 1e-9 * max(ref_power, 1e-30)
        for half_start in front.half_starts:
            half_start = int(half_start)
            for slot, sym in plan:
                y, start = self._useful(shifted, half_start, slot, sym)
                x, _ = self._useful(reference, half_start, slot, sym)
                if len(y) < fft or len(x) < fft or start + fft > limit:
                    continue
                power = np.abs(x) ** 2
                mean_power = float(np.mean(power))
                if mean_power < abs_floor:
                    sink.add([IDLE_BIT], [0.0], start, True)
                    continue
                # z_n ~ gain * c_n + noise/x_n; the floor keeps near-null
                # ambient samples from amplifying noise.
                z = y * np.conj(x) / np.maximum(power, 0.1 * mean_power)
                m0 = abs(np.dot(z, tone0))
                m1 = abs(np.dot(z, tone1))
                soft = (m1 - m0) / (m1 + m0 + 1e-30)
                sink.add([1 if soft > 0 else 0], [soft], start, False)
        return sink.result()
