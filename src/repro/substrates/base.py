"""Pluggable ambient-substrate modes (ROADMAP item 3).

A *substrate* is one way of riding an ambient LTE signal: which symbols
the tag modulates, how bits map onto its RF-switch waveform, and how the
receiver turns the shifted-band capture back into bits.  The paper's
chip scheme (:mod:`repro.substrates.chip`) is the default; its siblings
— OOK and FSK on the cell-specific reference signals (arXiv 2209.01108,
2301.13664), convolutional-coded backscatter on LTE pilots (arXiv
2402.12657) and uplink-SRS backscatter (arXiv 2501.10952) — plug in
beside it through the same five hooks:

* :meth:`Substrate.prepare_ambient` — what the ambient capture *is*
  (downlink LTE frames by default; the SRS mode substitutes an uplink
  sounding capture);
* :meth:`Substrate.build_schedule` — the tag-side modulation schedule
  (a :class:`~repro.tag.controller.ChipSchedule`, so the RF switch and
  the MAC/fault machinery are shared across modes);
* :meth:`Substrate.silent_schedule` — what a sync-failed tag emits;
* :meth:`Substrate.demodulate` — the receiver;
* :meth:`Substrate.measure` — schedule-vs-demod accounting (coded modes
  replace raw chip counting with decode-then-compare).

Modes register under a string name; :class:`~repro.core.config.
SystemConfig` carries that name and :class:`~repro.core.system.
LScatterSystem` dispatches through it.  The default ``"chip"`` mode
delegates to the exact pre-refactor code paths, so a config that never
mentions substrates stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import measure_link
from repro.tag.controller import ChipSchedule

# -- registry -----------------------------------------------------------------

_REGISTRY = {}


def register(cls):
    """Class decorator: make a :class:`Substrate` reachable by name."""
    if not getattr(cls, "name", ""):
        raise ValueError("substrate classes must define a non-empty 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def available_substrates():
    """Registered substrate names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_substrate(name):
    """Look up a substrate class by name.

    Unknown names raise a ``KeyError`` that lists every registered mode,
    so a typo in a config or CLI flag is self-explaining.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown substrate {name!r}; registered substrates: {known}"
        ) from None


def ambient_kind_for(name):
    """The ambient-capture family a substrate consumes.

    Modes that modulate the same downlink LTE capture share one kind, so
    the fleet's :class:`~repro.fleet.ambient.AmbientCache` keeps sharing
    entries across them; the uplink SRS mode keys separately.
    """
    return get_substrate(name).ambient_kind


# -- shared helpers -----------------------------------------------------------


def iter_half_frames(
    timing,
    n_samples,
    half_frame_samples,
    owned_half_frames=None,
    drift_per_half_frame=0.0,
):
    """Yield ``(half_index, half_start, drift)`` for owned half-frames.

    Mirrors :meth:`repro.tag.controller.TagController.build_schedule`'s
    alignment loop exactly — including the "clip windows individually,
    never skip a whole half-frame for a small negative timing error"
    rule — so every substrate agrees with the chip scheme about which
    half-frames exist and how MAC ownership and clock drift apply.
    """
    if owned_half_frames is not None:
        owned_half_frames = {int(h) for h in owned_half_frames}
    half_start = int(timing.half_frame_start)
    while half_start < -half_frame_samples // 2:
        half_start += half_frame_samples
    half_index = -1
    while half_start + half_frame_samples <= n_samples:
        half_index += 1
        if owned_half_frames is None or half_index in owned_half_frames:
            drift = int(round(half_index * float(drift_per_half_frame)))
            yield half_index, half_start, drift
        half_start += half_frame_samples


@dataclass
class SubstrateDemodResult:
    """Demodulation output of the non-chip substrates.

    Field-compatible with :class:`repro.bsrx.demodulator.BsDemodResult`
    where the accounting layer (:func:`repro.core.metrics.measure_link`)
    and the tracing spans look (``starts`` / ``window_bits`` /
    ``window_erased`` / ``n_data_windows`` / ``n_erased_windows``), plus
    per-window soft values for the coded mode's LLR stream.
    """

    bits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int8))
    soft: np.ndarray = field(default_factory=lambda: np.zeros(0))
    starts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    window_bits: list = field(default_factory=list)
    window_erased: list = field(default_factory=list)
    window_soft: list = field(default_factory=list)
    packets: list = field(default_factory=list)

    @property
    def n_data_windows(self):
        return len(self.window_bits)

    @property
    def n_erased_windows(self):
        return int(sum(bool(flag) for flag in self.window_erased))


class _WindowSink:
    """Accumulates per-window demod output into a result."""

    def __init__(self):
        self.window_bits = []
        self.window_soft = []
        self.window_erased = []
        self.starts = []

    def add(self, bits, soft, start, erased):
        bits = np.asarray(bits, dtype=np.int8)
        soft = np.asarray(soft, dtype=float)
        self.window_bits.append(bits)
        self.window_soft.append(soft)
        self.window_erased.append(bool(erased))
        self.starts.append(int(start))

    def result(self):
        if self.window_bits:
            bits = np.concatenate(self.window_bits)
            soft = np.concatenate(self.window_soft)
        else:
            bits = np.zeros(0, dtype=np.int8)
            soft = np.zeros(0)
        return SubstrateDemodResult(
            bits=bits,
            soft=soft,
            starts=np.asarray(self.starts, dtype=np.int64),
            window_bits=self.window_bits,
            window_erased=self.window_erased,
            window_soft=self.window_soft,
        )


# -- the protocol -------------------------------------------------------------


class Substrate:
    """One pluggable tag-modulation / receiver mode.

    Subclasses set the class attributes and implement
    :meth:`build_schedule` and :meth:`demodulate`; everything else has a
    sensible default.  Instances are cheap, stateless views bound to one
    :class:`~repro.core.system.LScatterSystem`.
    """

    #: Registry name (``repro --substrate <name>``).
    name = ""
    #: Ambient-capture family; modes sharing a kind share cache entries.
    ambient_kind = "lte-downlink"
    #: Whether the UE-decode reference reconstruction path applies.
    supports_decoded_reference = True
    #: Whether the analog PSS envelope sync circuit applies.
    supports_circuit_sync = True
    #: Whether the chunked streaming receiver applies.
    supports_streaming = False
    #: Whether the batched cross-tag demod applies.
    supports_batch = False

    def __init__(self, system):
        self.system = system
        self.config = system.config
        self.params = system.params

    def prepare_ambient(self, rng=None):
        """Produce the ambient stage this mode rides (default: downlink)."""
        return self.system.transmit_downlink_ambient(rng=rng)

    def build_schedule(
        self,
        timing,
        n_samples,
        payload_bits,
        owned_half_frames=None,
        drift_per_half_frame=0.0,
    ):
        raise NotImplementedError

    def silent_schedule(self, n_samples):
        """The schedule of a tag that never acquired sync: constant '1'."""
        return ChipSchedule(chips=np.ones(int(n_samples), dtype=np.int8))

    def demodulate(self, front):
        raise NotImplementedError

    def measure(self, schedule, demod, tolerance):
        """Schedule-vs-demod accounting; default is raw chip counting."""
        return measure_link(schedule, demod, tolerance)
