"""The paper's chip scheme as the default registered substrate.

Pure delegation: the schedule comes from
:meth:`repro.tag.controller.TagController.build_schedule`, demodulation
from :class:`repro.bsrx.demodulator.BackscatterDemodulator` (or the
chunked :class:`repro.bsrx.streaming.StreamingDemodulator`), accounting
from :func:`repro.core.metrics.measure_link` — the exact pre-refactor
code paths, none of which draw RNG, so a default config's output is
bit-identical to the pre-substrate pipeline.
"""

from __future__ import annotations

from repro.substrates.base import Substrate, register


@register
class ChipSubstrate(Substrate):
    """LScatter ±1 chips on every non-sync downlink symbol."""

    name = "chip"
    ambient_kind = "lte-downlink"
    supports_decoded_reference = True
    supports_circuit_sync = True
    supports_streaming = True
    supports_batch = True

    def build_schedule(
        self,
        timing,
        n_samples,
        payload_bits,
        owned_half_frames=None,
        drift_per_half_frame=0.0,
    ):
        return self.system.controller.build_schedule(
            timing,
            n_samples,
            payload_bits,
            owned_half_frames=owned_half_frames,
            drift_per_half_frame=drift_per_half_frame,
        )

    def demodulate(self, front):
        chunk = getattr(self.config, "demod_chunk_half_frames", None)
        if chunk:
            from repro.bsrx.streaming import StreamingDemodulator

            streamer = StreamingDemodulator(
                self.params,
                chunk_half_frames=chunk,
                erasure_threshold=self.system.demodulator.erasure_threshold,
                snr_gate_db=self.system.demodulator.snr_gate_db,
            )
            return streamer.demodulate(
                front.shifted_rx, front.reference, front.half_starts
            )
        return self.system.demodulator.demodulate(
            front.shifted_rx, front.reference, front.half_starts
        )
