"""Analog front-end of the tag: matching network + diode/RC envelope detector.

Paper Fig. 7: the antenna feeds an impedance matching network (C1, L1) —
modelled as a narrow band-pass around the carrier, matched to the 0.93 MHz
PSS bandwidth — then a diode + RC filter that outputs the envelope of the
selected sub-band.  The PSS stands out in this output because the eNodeB
transmits sync signals with a power boost and they fill the whole matched
sub-band (paper Fig. 8's black curve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve, firwin

from repro.utils.dsp import rc_alpha, rc_lowpass

#: PSS occupied bandwidth — what the matching network is tuned to.
PSS_BANDWIDTH_HZ = 0.93e6


@dataclass
class EnvelopeTrace:
    """Output of the envelope detector over a capture."""

    sample_rate_hz: float
    envelope: np.ndarray  # RC-filtered envelope voltage (arbitrary units)

    @property
    def times(self):
        return np.arange(len(self.envelope)) / self.sample_rate_hz


class EnvelopeDetector:
    """Band-pass + rectifier + RC low-pass, at IQ sample level.

    ``tau_seconds`` is the RC time constant; the paper requires
    ``1/f_c < tau < 1/f_pss`` so the detector smooths over the carrier and
    intra-symbol fluctuation but tracks the 200 Hz PSS cadence.  The
    default (25 us) averages roughly a third of an OFDM symbol.
    """

    def __init__(
        self,
        sample_rate_hz,
        matching_bandwidth_hz=PSS_BANDWIDTH_HZ,
        tau_seconds=25e-6,
        n_filter_taps=129,
    ):
        self.sample_rate_hz = float(sample_rate_hz)
        self.matching_bandwidth_hz = float(matching_bandwidth_hz)
        self.tau_seconds = float(tau_seconds)
        if self.matching_bandwidth_hz >= self.sample_rate_hz:
            # Narrowband carriers (1.4 MHz) are already inside the matched
            # band; no selection needed.
            self._taps = None
        else:
            cutoff = self.matching_bandwidth_hz / 2.0
            self._taps = firwin(
                int(n_filter_taps), cutoff, fs=self.sample_rate_hz
            ).astype(float)

    def detect(self, samples):
        """Run the analog chain; returns an :class:`EnvelopeTrace`."""
        samples = np.asarray(samples, dtype=complex)
        if self._taps is not None:
            selected = fftconvolve(samples, self._taps, mode="same")
        else:
            selected = samples
        # Diode rectifier: instantaneous magnitude of the sub-band signal.
        rectified = np.abs(selected)
        alpha = rc_alpha(self.tau_seconds, self.sample_rate_hz)
        envelope = rc_lowpass(rectified, alpha)
        return EnvelopeTrace(sample_rate_hz=self.sample_rate_hz, envelope=envelope)
