"""Tag power-consumption model (paper §4.8).

Four components:

* **sync** — the MAX931-class comparator: ~10 uW;
* **RF front** — the ADG902 switch, linear in channel bandwidth,
  ~57 uW at 20 MHz;
* **baseband** — the AGLN250 FPGA with 80 % flash frozen: ~82 uW;
* **clock** — depends on the required rate (the tag clocks at the LTE
  sampling rate, which exceeds the bandwidth because of LTE's CP/guard
  redundancy): 588 uW for a 1.92 MHz LTC6990, 4.5 mW for a 30.72 MHz
  crystal, or single-digit uW for the ring oscillators used by
  HitchHike/Interscatter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lte.params import LteParams

#: Comparator power (W).
SYNC_POWER_W = 10e-6

#: RF switch power at 20 MHz (W); linear in bandwidth (paper cites [55]).
RF_SWITCH_POWER_AT_20MHZ_W = 57e-6

#: FPGA baseband power with Flash Freeze on 80 % of the fabric (W).
BASEBAND_POWER_W = 82e-6

#: Oscillator power by (technology, clock MHz) -> W, from the datasheets
#: the paper cites.
CLOCK_POWER_W = {
    ("cots", 1.92): 588e-6,  # LTC6990
    ("cots", 30.72): 4.5e-3,  # CSX-252F
    ("ring", 30.0): 4e-6,  # HitchHike-style ring oscillator
    ("ring", 35.75): 9.69e-6,  # Interscatter-style ring oscillator
}


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power in watts."""

    sync_w: float
    rf_front_w: float
    baseband_w: float
    clock_w: float

    @property
    def total_w(self):
        return self.sync_w + self.rf_front_w + self.baseband_w + self.clock_w

    @property
    def total_uw(self):
        return self.total_w * 1e6


class TagPowerModel:
    """Compute the tag's power draw for a bandwidth and clock technology."""

    def __init__(self, clock_technology="cots"):
        if clock_technology not in ("cots", "ring"):
            raise ValueError("clock_technology must be 'cots' or 'ring'")
        self.clock_technology = clock_technology

    def clock_power_w(self, clock_mhz):
        """Oscillator power for a required clock rate.

        Exact datasheet points are used where the paper cites them;
        other rates interpolate linearly in frequency between the known
        points of the same technology (a reasonable CMOS scaling).
        """
        known = sorted(
            (mhz, power)
            for (tech, mhz), power in CLOCK_POWER_W.items()
            if tech == self.clock_technology
        )
        for mhz, power in known:
            if abs(mhz - clock_mhz) < 1e-6:
                return power
        (f0, p0), (f1, p1) = known[0], known[-1]
        if f1 == f0:
            return p0
        slope = (p1 - p0) / (f1 - f0)
        return max(p0 + slope * (clock_mhz - f0), min(p0, p1))

    def breakdown(self, bandwidth_mhz):
        """Full power breakdown for one LTE bandwidth.

        >>> model = TagPowerModel()
        >>> round(model.breakdown(20.0).total_w * 1e3, 2)  # ~4.65 mW
        4.65
        """
        params = LteParams.from_bandwidth(bandwidth_mhz)
        rf = RF_SWITCH_POWER_AT_20MHZ_W * (params.bandwidth_mhz / 20.0)
        clock_mhz = params.sample_rate_hz / 1e6
        return PowerBreakdown(
            sync_w=SYNC_POWER_W,
            rf_front_w=rf,
            baseband_w=BASEBAND_POWER_W,
            clock_w=self.clock_power_w(clock_mhz),
        )
