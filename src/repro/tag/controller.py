"""The tag's digital side: an FPGA-like scheduler driving the RF switch.

From the comparator's PSS edges the controller derives half-frame timing
(the PSS repeats every 5 ms; both halves of an LTE frame look identical to
the envelope circuit), subtracts its calibration constant for the known
analog delay, and lays out the chip schedule:

* every slot carries one packet: a preamble symbol then data symbols;
* the PSS and SSS symbols (last two of each sync slot) are never
  modulated — the switch keeps toggling with constant phase there, so the
  sync signals pass through unmodified (challenge C1);
* within each OFDM symbol the ``n_chips`` chips are centred in the useful
  part, so the cyclic prefix is avoided and residual sync error up to
  half the guard is tolerated (paper §3.2.3's 38.8 % slack).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lte.params import LteParams
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.tag.framing import (
    SLOTS_PER_HALF_FRAME,
    packetize,
    preamble_bits,
    slot_plan,
)
from repro.tag.sync_circuit import COMPARATOR_DELAY_SECONDS
from repro.utils.rng import make_rng

#: Default calibration constant: the tag subtracts the nominal analog
#: delay from the start of the boosted SSS+PSS region to the comparator
#: edge (RC rise time + comparator propagation), learned at manufacturing
#: time.  Matches the mean of the Fig. 31 error distribution.
DEFAULT_CALIBRATION_SECONDS = COMPARATOR_DELAY_SECONDS + 23e-6


@dataclass
class TagTiming:
    """The tag's belief about where a half-frame starts."""

    half_frame_start: int  # estimated sample index
    error_samples: int = 0  # (genie) estimate minus truth, for evaluation


@dataclass
class ChipWindow:
    """One modulated symbol: where its chips landed and what they carry."""

    start: int  # absolute sample index of the first chip
    n_chips: int
    kind: str  # "preamble" or "data"
    bits: np.ndarray  # the chip bits (0/1), length n_chips


@dataclass
class ChipSchedule:
    """Chip values for a whole capture plus genie bookkeeping."""

    chips: np.ndarray  # int8 in {+1, -1}, one per capture sample
    windows: list = field(default_factory=list)
    payload_bits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int8))
    n_half_frames: int = 0  # half-frames actually scheduled

    @property
    def data_bit_count(self):
        return int(
            sum(w.n_chips for w in self.windows if w.kind == "data")
        )


class TagController:
    """Schedule chips against the tag's (imperfect) notion of LTE timing."""

    def __init__(
        self,
        params,
        calibration_seconds=DEFAULT_CALIBRATION_SECONDS,
        rng=None,
    ):
        self.params = (
            params if isinstance(params, LteParams) else LteParams.from_bandwidth(params)
        )
        self.calibration_seconds = float(calibration_seconds)
        self.rng = make_rng(rng)
        self.n_chips = self.params.n_subcarriers
        # Chips are centred in the useful symbol: equal guard either side.
        self.chip_offset = (self.params.fft_size - self.n_chips) // 2

    # -- timing ---------------------------------------------------------------

    def timing_from_sync(self, sync_result, true_half_frame_start=None):
        """Derive half-frame timing from comparator edges.

        The comparator fires shortly after the boosted SSS+PSS region
        begins charging the RC filter; the calibration constant maps the
        edge back to the sync-region start, from which the half-frame
        boundary follows (SSS is symbol 5 of the half-frame's first slot).
        """
        if len(sync_result.edges) == 0:
            raise ValueError("no sync edges detected — tag cannot transmit")
        fs = self.params.sample_rate_hz
        sync_start = self.params.symbol_start(0, SSS_SYMBOL_IN_SLOT)
        calibration = int(round(self.calibration_seconds * fs))
        half = self.params.samples_per_frame // 2
        # Average every detection back to the first half-frame boundary —
        # the FPGA's crystal is stable over a capture, so averaging N PSS
        # events shrinks the jitter by sqrt(N).
        edges = np.asarray(sync_result.edges, dtype=np.int64)
        periods = np.round((edges - edges[0]) / half).astype(np.int64)
        folded = edges - periods * half
        # Median folding rejects the occasional data-burst false edge.
        estimate = int(round(float(np.median(folded)))) - calibration - sync_start
        # Normalise to the representative nearest zero: the schedule
        # repeats every half-frame, so timing is only meaningful mod half.
        estimate = ((estimate + half // 2) % half) - half // 2
        error = (
            estimate - int(true_half_frame_start)
            if true_half_frame_start is not None
            else 0
        )
        return TagTiming(half_frame_start=estimate, error_samples=error)

    def genie_timing(self, true_half_frame_start, error_samples=0):
        """Timing with a controlled error — used by sweeps and ablations."""
        return TagTiming(
            half_frame_start=int(true_half_frame_start) + int(error_samples),
            error_samples=int(error_samples),
        )

    # -- scheduling -------------------------------------------------------------

    def _symbol_plan(self):
        """(slot, symbol) pairs modulated per half-frame, packet-ordered."""
        return slot_plan()

    def build_schedule(
        self,
        timing,
        n_samples,
        payload_bits,
        owned_half_frames=None,
        drift_per_half_frame=0.0,
    ):
        """Lay chips over a capture of ``n_samples`` samples.

        ``payload_bits`` are consumed packet by packet until either the
        capture or the payload runs out; remaining capacity idles at '1'.

        ``owned_half_frames`` restricts modulation to the given half-frame
        indices (0 = first half-frame of the capture) — the hook a MAC
        scheme uses to share the cell among several tags; half-frames the
        tag does not own are left unmodulated (constant '1' chips) and
        consume no payload.  ``None`` (the default) owns every half-frame.

        ``drift_per_half_frame`` models tag clock drift (fault injection):
        the k-th half-frame's chip windows shift by ``round(k * drift)``
        samples, so a drifting clock walks the chips out of the guard
        slack over the capture.  Returns a :class:`ChipSchedule`.
        """
        params = self.params
        payload_bits = np.asarray(payload_bits, dtype=np.int8)
        chips = np.ones(int(n_samples), dtype=np.int8)
        windows = []
        preamble = preamble_bits(self.n_chips)
        if owned_half_frames is not None:
            owned_half_frames = {int(h) for h in owned_half_frames}

        half_frame_samples = params.samples_per_frame // 2
        plan = self._symbol_plan()
        consumed = 0

        half_start = timing.half_frame_start
        # Align to the first half-frame overlapping the capture; windows
        # falling before sample 0 are clipped individually below, so a
        # small negative timing error must not skip a whole half-frame.
        while half_start < -half_frame_samples // 2:
            half_start += half_frame_samples

        half_index = -1
        n_half_frames = 0
        while half_start + half_frame_samples <= n_samples:
            half_index += 1
            if owned_half_frames is not None and half_index not in owned_half_frames:
                half_start += half_frame_samples
                continue
            n_half_frames += 1
            drift = int(round(half_index * float(drift_per_half_frame)))
            for slot_symbols in plan:
                data_symbols = len(slot_symbols) - 1
                remaining = payload_bits[consumed:]
                take = min(len(remaining), data_symbols * self.n_chips)
                rows = packetize(remaining[:take], data_symbols, self.n_chips)
                consumed += take
                for index, (slot, sym) in enumerate(slot_symbols):
                    start = (
                        half_start
                        + params.useful_start(slot, sym)
                        + self.chip_offset
                        + drift
                    )
                    if start < 0 or start + self.n_chips > n_samples:
                        continue
                    if index == 0:
                        bits = preamble
                        kind = "preamble"
                    else:
                        bits = rows[index - 1]
                        kind = "data"
                    # Data '1' -> initial phase 0 (chip +1); '0' -> pi (-1).
                    chips[start : start + self.n_chips] = 2 * bits - 1
                    windows.append(
                        ChipWindow(
                            start=int(start),
                            n_chips=self.n_chips,
                            kind=kind,
                            bits=bits.copy(),
                        )
                    )
            half_start += half_frame_samples

        return ChipSchedule(
            chips=chips,
            windows=windows,
            payload_bits=payload_bits[:consumed].copy(),
            n_half_frames=n_half_frames,
        )
