"""Packet framing for the backscatter bit stream.

One packet occupies one LTE slot: the first modulated symbol carries a
known pseudo-noise **preamble** (used by the UE to determine the
modulation offset, paper §3.3.2 — "the length of the preamble equals the
length of backscatter data in a symbol"), and the remaining symbols carry
payload chips.  Chips are 1 bit per basic-timing unit, ``n_chips`` =
number of LTE data subcarriers per symbol.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

#: Symbols per packet (= per LTE slot, normal CP).
PACKET_SYMBOLS = 7

#: Data symbols per full packet (one symbol is the preamble).
DATA_SYMBOLS_PER_PACKET = PACKET_SYMBOLS - 1

#: Idle filler chip value — continuous square wave means logical '1'.
IDLE_BIT = 1

#: Slots per half-frame: the tag's scheduling period is the 5 ms PSS cycle.
SLOTS_PER_HALF_FRAME = 10


def slot_plan():
    """The (slot, symbol) modulation plan for one half-frame.

    Returns a list with one entry per slot; each entry lists the
    ``(slot, symbol_in_slot)`` pairs the tag modulates, first of which is
    the packet preamble.  Slot 0 is the sync slot: its last two symbols
    carry SSS and PSS and are never modulated (challenge C1).
    """
    plan = []
    for slot in range(SLOTS_PER_HALF_FRAME):
        last = 5 if slot == 0 else PACKET_SYMBOLS
        plan.append([(slot, sym) for sym in range(last)])
    return plan


def preamble_bits(n_chips):
    """The fixed PN preamble for one symbol of ``n_chips`` chips.

    Deterministic (seeded) so tag and UE share it by construction.
    """
    rng = make_rng("lscatter-preamble")
    return rng.integers(0, 2, size=int(n_chips)).astype(np.int8)


def packetize(payload, data_symbols, n_chips):
    """Split ``payload`` bits into per-symbol chip rows, padding with 1s.

    Returns an ``(n_symbols, n_chips)`` int8 array covering exactly
    ``data_symbols`` symbols; surplus capacity is filled with the idle bit.
    Raises if the payload does not fit.
    """
    payload = np.asarray(payload, dtype=np.int8)
    capacity = int(data_symbols) * int(n_chips)
    if len(payload) > capacity:
        raise ValueError(
            f"payload of {len(payload)} bits exceeds capacity {capacity}"
        )
    padded = np.full(capacity, IDLE_BIT, dtype=np.int8)
    padded[: len(payload)] = payload
    return padded.reshape(int(data_symbols), int(n_chips))


def depacketize(rows, payload_length):
    """Flatten received chip rows back to the first ``payload_length`` bits."""
    rows = np.asarray(rows, dtype=np.int8)
    flat = rows.reshape(-1)
    if payload_length > len(flat):
        raise ValueError("payload length exceeds received chips")
    return flat[: int(payload_length)]
