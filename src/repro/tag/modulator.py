"""The RF switch: chip modulation of the ambient waveform.

Physics recap (paper §3.2.2).  The tag toggles its reflection coefficient
with a square wave of period Ts (one basic-timing unit); the square wave's
first harmonic shifts the reflected signal by 1/Ts — out of the LTE band —
and its *initial phase* (0 or pi per unit) BPSK-modulates the shifted
copy.  At the receiver tuned to ``fc + 1/Ts``, the baseband of the
reflection during unit ``n`` is just ``x_n e^{j theta_n}``: in a
sample-domain simulation where one basic-timing unit is exactly one
sample, reflection is an element-wise multiply by the chip sequence.

The square wave's conversion efficiency (its fundamental carries
``(2/pi)^2`` of the power) is accounted once, in the link budget's
``tag_loss_db`` — the modulator output stays normalised to the tag input.

:func:`square_wave_harmonics` exposes the harmonic structure (including
the multi-level quantisation that cancels the 3rd/5th harmonics, paper
§3.2.2) for the interference/ablation experiments.
"""

from __future__ import annotations

import numpy as np


class ChipModulator:
    """Apply a chip schedule to the ambient waveform seen at the tag."""

    def __init__(self, multi_level=True):
        #: Whether the tag uses multi-level quantisation to cancel the
        #: 3rd and 5th square-wave harmonics (HitchHike/LoRa-backscatter
        #: technique the paper adopts).
        self.multi_level = bool(multi_level)

    def reflect(self, ambient_at_tag, chips):
        """Reflected baseband at the shifted band (normalised to tag input).

        ``chips`` is the int8 +/-1 array from the controller, one chip per
        sample; +1 keeps the ambient phase, -1 rotates it by pi.
        """
        ambient_at_tag = np.asarray(ambient_at_tag, dtype=complex)
        chips = np.asarray(chips)
        if ambient_at_tag.shape != chips.shape:
            raise ValueError(
                f"ambient ({ambient_at_tag.shape}) and chips ({chips.shape}) "
                "must be sample-aligned"
            )
        return ambient_at_tag * chips

    def harmonic_profile(self):
        """Relative power of the switch waveform at odd harmonics of 1/Ts.

        Returns a dict harmonic-order -> power relative to the input; used
        by the interference experiments.  With multi-level quantisation the
        3rd and 5th harmonics are cancelled; higher ones fall off as 1/m^2.
        """
        profile = {}
        for m in (1, 3, 5, 7, 9):
            power = (2.0 / (np.pi * m)) ** 2
            if self.multi_level and m in (3, 5):
                power = 0.0
            profile[m] = power
        return profile

    def out_of_band_leakage(self):
        """Total relative power the switch sprays beyond the first harmonic."""
        profile = self.harmonic_profile()
        return float(sum(power for m, power in profile.items() if m > 1))


def square_wave_harmonics(n_harmonics=9, multi_level=False):
    """Fourier magnitudes of the +/-1 switching waveform, for plots/tests.

    Returns (orders, amplitudes); even orders are absent (amplitude 0).
    """
    orders = np.arange(1, int(n_harmonics) + 1)
    amplitudes = np.where(orders % 2 == 1, 4.0 / (np.pi * orders), 0.0)
    if multi_level:
        amplitudes = amplitudes.copy()
        amplitudes[(orders == 3) | (orders == 5)] = 0.0
    return orders, amplitudes
