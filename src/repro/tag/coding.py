"""Lightweight tag-side channel coding for the backscatter payload.

The paper transmits raw chips; its future-work discussion (and every
deployment conversation about backscatter) asks what a few gates of
encoder buy at range.  Two codes a Flash-frozen AGLN250 can afford:

* **Hamming(7,4)** — corrects one error per 7-chip block, syndrome
  decoding at the UE (soft input optional);
* **repetition-3** — majority voting, the cheapest possible code.

Both combine with a block interleaver so a burst of weak ambient samples
does not wipe a whole codeword.  The closed-form coded-BER expressions
feed the link model's goodput ablation.
"""

from __future__ import annotations

import numpy as np

from scipy.special import comb

#: Hamming(7,4) generator matrix (systematic), bits as rows.
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.int8,
)

#: Parity-check matrix H (3 x 7) matching _G.
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.int8,
)

#: Syndrome (as integer) -> error position in the 7-bit codeword.
_SYNDROME_TO_POSITION = {}
for _pos in range(7):
    _e = np.zeros(7, dtype=np.int8)
    _e[_pos] = 1
    _s = (_H @ _e) % 2
    _SYNDROME_TO_POSITION[int(_s[0]) * 4 + int(_s[1]) * 2 + int(_s[2])] = _pos


def hamming74_encode(bits):
    """Encode bits with Hamming(7,4); pads the tail with zeros.

    Returns ``(coded, original_length)``.
    """
    bits = np.asarray(bits, dtype=np.int8)
    pad = (-len(bits)) % 4
    padded = np.concatenate([bits, np.zeros(pad, dtype=np.int8)])
    blocks = padded.reshape(-1, 4)
    coded = (blocks @ _G) % 2
    return coded.astype(np.int8).reshape(-1), len(bits)


def hamming74_decode(coded, original_length):
    """Syndrome-decode Hamming(7,4) codewords back to the payload."""
    coded = np.asarray(coded, dtype=np.int8)
    if len(coded) % 7:
        raise ValueError("coded length must be a multiple of 7")
    blocks = coded.reshape(-1, 7).copy()
    syndromes = (blocks @ _H.T) % 2
    syndrome_ints = syndromes[:, 0] * 4 + syndromes[:, 1] * 2 + syndromes[:, 2]
    for row in np.flatnonzero(syndrome_ints):
        position = _SYNDROME_TO_POSITION.get(int(syndrome_ints[row]))
        if position is not None:
            blocks[row, position] ^= 1
    decoded = blocks[:, :4].reshape(-1)
    return decoded[: int(original_length)].astype(np.int8)


def repetition_encode(bits, factor=3):
    """Repeat every bit ``factor`` times."""
    bits = np.asarray(bits, dtype=np.int8)
    return np.repeat(bits, int(factor))


def repetition_decode(coded, factor=3):
    """Majority-vote a repetition code."""
    coded = np.asarray(coded, dtype=np.int8)
    factor = int(factor)
    if len(coded) % factor:
        raise ValueError("coded length must be a multiple of the factor")
    votes = coded.reshape(-1, factor).sum(axis=1)
    return (votes * 2 > factor).astype(np.int8)


def block_interleave(bits, depth):
    """Row-in/column-out block interleaver; pads with zeros.

    Returns ``(interleaved, original_length)``.
    """
    bits = np.asarray(bits, dtype=np.int8)
    depth = int(depth)
    if depth < 1:
        raise ValueError("depth must be positive")
    pad = (-len(bits)) % depth
    padded = np.concatenate([bits, np.zeros(pad, dtype=np.int8)])
    matrix = padded.reshape(-1, depth)
    return matrix.T.reshape(-1), len(bits)


def block_deinterleave(bits, depth, original_length):
    """Invert :func:`block_interleave`."""
    bits = np.asarray(bits, dtype=np.int8)
    depth = int(depth)
    if len(bits) % depth:
        raise ValueError("length must be a multiple of the depth")
    matrix = bits.reshape(depth, -1)
    return matrix.T.reshape(-1)[: int(original_length)]


def hamming74_coded_ber(channel_ber):
    """Post-decoding BER of Hamming(7,4) on a BSC with ``channel_ber``.

    A block decodes wrong when 2+ of its 7 bits flip; a wrong block's
    4 data bits carry on average ~2 errors, i.e. data BER ~ half the
    block error rate.
    """
    p = np.asarray(channel_ber, dtype=float)
    block_ok = (1 - p) ** 7 + 7 * p * (1 - p) ** 6
    return (0.5 * (1.0 - block_ok))[()]


def repetition_coded_ber(channel_ber, factor=3):
    """Post-majority BER of a repetition code on a BSC."""
    p = np.asarray(channel_ber, dtype=float)
    factor = int(factor)
    majority = factor // 2 + 1
    out = np.zeros_like(p)
    for k in range(majority, factor + 1):
        out = out + comb(factor, k) * p**k * (1 - p) ** (factor - k)
    return out[()]
