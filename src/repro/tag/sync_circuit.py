"""Averaging circuit + voltage comparator: the PSS event detector.

Paper Fig. 7/8: the comparator's first input is the RC envelope, the
second a slow averaging circuit of the same envelope; the output goes
logic-high while the envelope exceeds its own average, i.e. during the
boosted sync symbols.  The comparator is a MAX931-class ultra-low-power
part with ~12 us propagation delay (paper §4.8) plus response jitter; both
are modelled, and together with the RC lag they produce the 30-40 us
errors of paper Fig. 31.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tag.envelope import EnvelopeDetector, EnvelopeTrace
from repro.utils.dsp import rc_alpha, rc_lowpass
from repro.utils.rng import make_rng

#: Comparator propagation delay (seconds), from the MAX931 datasheet.
COMPARATOR_DELAY_SECONDS = 12e-6

#: One-sigma jitter of the effective detection instant.  Covers comparator
#: overdrive dependence and RC charge-state variation between frames.
COMPARATOR_JITTER_SECONDS = 2.5e-6


@dataclass
class SyncResult:
    """Detected PSS events and the signals that produced them."""

    sample_rate_hz: float
    envelope: np.ndarray
    average: np.ndarray
    comparator: np.ndarray  # 0/1 logic output per sample
    edges: np.ndarray  # sample indices of rising edges

    @property
    def edge_times(self):
        return self.edges / self.sample_rate_hz

    def errors_vs(self, true_times, tolerance_seconds=1e-3):
        """Per-event sync error against ground-truth PSS times.

        For each true PSS instant, the nearest detected edge within
        ``tolerance_seconds`` contributes ``edge - truth``; unmatched
        events are skipped (they count as missed detections).
        """
        errors = []
        edge_times = self.edge_times
        for t in np.atleast_1d(true_times):
            if len(edge_times) == 0:
                continue
            delta = edge_times - t
            best = np.argmin(np.abs(delta))
            if abs(delta[best]) <= tolerance_seconds:
                errors.append(float(delta[best]))
        return np.array(errors)


class SyncCircuit:
    """The full analog sync chain: envelope -> average -> comparator."""

    def __init__(
        self,
        sample_rate_hz,
        detector=None,
        average_tau_seconds=5e-3,
        threshold_margin=1.6,
        propagation_delay_seconds=COMPARATOR_DELAY_SECONDS,
        jitter_seconds=COMPARATOR_JITTER_SECONDS,
        holdoff_seconds=4e-3,
        warmup_seconds=12e-3,
        rng=None,
        edge_fault=None,
    ):
        self.sample_rate_hz = float(sample_rate_hz)
        self.detector = detector or EnvelopeDetector(sample_rate_hz)
        self.average_tau_seconds = float(average_tau_seconds)
        self.threshold_margin = float(threshold_margin)
        self.propagation_delay_seconds = float(propagation_delay_seconds)
        self.jitter_seconds = float(jitter_seconds)
        self.holdoff_seconds = float(holdoff_seconds)
        #: The averaging RC starts uncharged; edges before it settles are
        #: comparator start-up artefacts and are suppressed.
        self.warmup_seconds = float(warmup_seconds)
        self.rng = make_rng(rng)
        #: Optional fault hook (see :class:`repro.faults.tag.TagFaultInjector`):
        #: called with ``(edges, n_samples, sample_rate_hz)`` after the
        #: comparator model, so PSS misses and false fires perturb exactly
        #: the edge train the controller folds.  Carries its own RNG — a
        #: zero-rate injector leaves the circuit bit-identical.
        self.edge_fault = edge_fault

    def process(self, samples):
        """Run the circuit over a tag-side capture; returns a SyncResult."""
        trace = self.detector.detect(samples)
        envelope = trace.envelope
        alpha = rc_alpha(self.average_tau_seconds, self.sample_rate_hz)
        average = rc_lowpass(envelope, alpha)

        comparator = (envelope > average * self.threshold_margin).astype(np.int8)
        edges = np.flatnonzero(np.diff(comparator) > 0) + 1
        warmup = int(self.warmup_seconds * self.sample_rate_hz)
        edges = edges[edges >= warmup]

        # Debounce: ignore edges inside the hold-off window of the previous
        # accepted edge (the comparator chatters on envelope ripple).
        holdoff = int(self.holdoff_seconds * self.sample_rate_hz)
        accepted = []
        last = -holdoff - 1
        for edge in edges:
            if edge - last > holdoff:
                accepted.append(edge)
                last = edge
        accepted = np.array(accepted, dtype=np.int64)

        # Comparator propagation delay + jitter move the logic edge later.
        if len(accepted):
            delay = self.propagation_delay_seconds + self.rng.normal(
                0.0, self.jitter_seconds, size=len(accepted)
            )
            accepted = accepted + np.round(delay * self.sample_rate_hz).astype(
                np.int64
            )
            accepted = accepted[accepted < len(envelope)]

        if self.edge_fault is not None:
            accepted = np.asarray(
                self.edge_fault(accepted, len(envelope), self.sample_rate_hz),
                dtype=np.int64,
            )

        return SyncResult(
            sample_rate_hz=self.sample_rate_hz,
            envelope=envelope,
            average=average,
            comparator=comparator,
            edges=accepted,
        )
