"""Averaging circuit + voltage comparator: the PSS event detector.

Paper Fig. 7/8: the comparator's first input is the RC envelope, the
second a slow averaging circuit of the same envelope; the output goes
logic-high while the envelope exceeds its own average, i.e. during the
boosted sync symbols.  The comparator is a MAX931-class ultra-low-power
part with ~12 us propagation delay (paper §4.8) plus response jitter; both
are modelled, and together with the RC lag they produce the 30-40 us
errors of paper Fig. 31.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tag.envelope import EnvelopeDetector, EnvelopeTrace
from repro.utils.dsp import rc_alpha, rc_lowpass
from repro.utils.rng import make_rng

#: Comparator propagation delay (seconds), from the MAX931 datasheet.
COMPARATOR_DELAY_SECONDS = 12e-6

#: One-sigma jitter of the effective detection instant.  Covers comparator
#: overdrive dependence and RC charge-state variation between frames.
COMPARATOR_JITTER_SECONDS = 2.5e-6

#: Adaptive re-sync: each retry multiplies the threshold margin by this
#: factor (bounded exponential backoff towards ``MIN_THRESHOLD_MARGIN``).
RESYNC_MARGIN_BACKOFF = 0.75

#: The margin never relaxes below this — at 1.0 the comparator would fire
#: on every envelope ripple and the edge train would be pure chatter.
MIN_THRESHOLD_MARGIN = 1.05


@dataclass
class SyncResult:
    """Detected PSS events and the signals that produced them."""

    sample_rate_hz: float
    envelope: np.ndarray
    average: np.ndarray
    comparator: np.ndarray  # 0/1 logic output per sample
    edges: np.ndarray  # sample indices of rising edges
    #: Re-sync retries consumed before edges were found (0 = first pass).
    resync_attempts: int = 0
    #: The threshold margin the successful (or final) pass used.
    threshold_margin: float = 0.0

    @property
    def edge_times(self):
        return self.edges / self.sample_rate_hz

    def errors_vs(self, true_times, tolerance_seconds=1e-3):
        """Per-event sync error against ground-truth PSS times.

        For each true PSS instant, the nearest detected edge within
        ``tolerance_seconds`` contributes ``edge - truth``; unmatched
        events are skipped (they count as missed detections).
        """
        errors = []
        edge_times = self.edge_times
        for t in np.atleast_1d(true_times):
            if len(edge_times) == 0:
                continue
            delta = edge_times - t
            best = np.argmin(np.abs(delta))
            if abs(delta[best]) <= tolerance_seconds:
                errors.append(float(delta[best]))
        return np.array(errors)


class SyncCircuit:
    """The full analog sync chain: envelope -> average -> comparator."""

    def __init__(
        self,
        sample_rate_hz,
        detector=None,
        average_tau_seconds=5e-3,
        threshold_margin=1.6,
        propagation_delay_seconds=COMPARATOR_DELAY_SECONDS,
        jitter_seconds=COMPARATOR_JITTER_SECONDS,
        holdoff_seconds=4e-3,
        warmup_seconds=12e-3,
        rng=None,
        edge_fault=None,
        max_resync_attempts=0,
    ):
        self.sample_rate_hz = float(sample_rate_hz)
        self.detector = detector or EnvelopeDetector(sample_rate_hz)
        self.average_tau_seconds = float(average_tau_seconds)
        self.threshold_margin = float(threshold_margin)
        self.propagation_delay_seconds = float(propagation_delay_seconds)
        self.jitter_seconds = float(jitter_seconds)
        self.holdoff_seconds = float(holdoff_seconds)
        #: The averaging RC starts uncharged; edges before it settles are
        #: comparator start-up artefacts and are suppressed.
        self.warmup_seconds = float(warmup_seconds)
        self.rng = make_rng(rng)
        #: Optional fault hook (see :class:`repro.faults.tag.TagFaultInjector`):
        #: called with ``(edges, n_samples, sample_rate_hz)`` after the
        #: comparator model, so PSS misses and false fires perturb exactly
        #: the edge train the controller folds.  Carries its own RNG — a
        #: zero-rate injector leaves the circuit bit-identical.
        self.edge_fault = edge_fault
        #: Adaptive re-sync: when the comparator finds no edges at all
        #: (a jammed or storm-raised envelope floor buries the PSS boost),
        #: retry up to this many times with the threshold margin relaxed
        #: geometrically (bounded exponential backoff,
        #: ``margin * RESYNC_MARGIN_BACKOFF**k`` floored at
        #: ``MIN_THRESHOLD_MARGIN``).  0 (the default) keeps the legacy
        #: single-pass behaviour bit-identical.
        self.max_resync_attempts = int(max_resync_attempts)

    def _comparator_edges(self, envelope, average, margin):
        """Comparator + warmup + debounce for one threshold margin."""
        comparator = (envelope > average * margin).astype(np.int8)
        edges = np.flatnonzero(np.diff(comparator) > 0) + 1
        warmup = int(self.warmup_seconds * self.sample_rate_hz)
        edges = edges[edges >= warmup]

        # Debounce: ignore edges inside the hold-off window of the previous
        # accepted edge (the comparator chatters on envelope ripple).
        holdoff = int(self.holdoff_seconds * self.sample_rate_hz)
        accepted = []
        last = -holdoff - 1
        for edge in edges:
            if edge - last > holdoff:
                accepted.append(edge)
                last = edge
        return comparator, np.array(accepted, dtype=np.int64)

    def process(self, samples):
        """Run the circuit over a tag-side capture; returns a SyncResult."""
        trace = self.detector.detect(samples)
        envelope = trace.envelope
        alpha = rc_alpha(self.average_tau_seconds, self.sample_rate_hz)
        average = rc_lowpass(envelope, alpha)

        # First pass at the configured margin; adaptive re-sync relaxes it
        # geometrically only when the pass found nothing, so a clean
        # capture's result is bit-identical whatever the attempt budget.
        margin = self.threshold_margin
        attempts = 0
        comparator, accepted = self._comparator_edges(envelope, average, margin)
        while len(accepted) == 0 and attempts < self.max_resync_attempts:
            attempts += 1
            margin = max(
                MIN_THRESHOLD_MARGIN, margin * RESYNC_MARGIN_BACKOFF
            )
            comparator, accepted = self._comparator_edges(
                envelope, average, margin
            )
            if margin == MIN_THRESHOLD_MARGIN:
                break

        # Comparator propagation delay + jitter move the logic edge later.
        if len(accepted):
            delay = self.propagation_delay_seconds + self.rng.normal(
                0.0, self.jitter_seconds, size=len(accepted)
            )
            accepted = accepted + np.round(delay * self.sample_rate_hz).astype(
                np.int64
            )
            accepted = accepted[accepted < len(envelope)]

        if self.edge_fault is not None:
            accepted = np.asarray(
                self.edge_fault(accepted, len(envelope), self.sample_rate_hz),
                dtype=np.int64,
            )

        return SyncResult(
            sample_rate_hz=self.sample_rate_hz,
            envelope=envelope,
            average=average,
            comparator=comparator,
            edges=accepted,
            resync_attempts=attempts,
            threshold_margin=float(margin),
        )
