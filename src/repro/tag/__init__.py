"""The LScatter tag: analog sync front-end, scheduler, chip modulator.

Mirrors the hardware prototype of paper §4.1 — matching network + RC
envelope detector + averaging circuit + comparator feeding an FPGA that
drives an RF switch — as a sample-level simulation.
"""

from repro.tag.envelope import EnvelopeDetector, EnvelopeTrace
from repro.tag.sync_circuit import SyncCircuit, SyncResult
from repro.tag.controller import TagController, ChipSchedule, TagTiming
from repro.tag.framing import (
    preamble_bits,
    packetize,
    depacketize,
    PACKET_SYMBOLS,
    DATA_SYMBOLS_PER_PACKET,
)
from repro.tag.modulator import ChipModulator
from repro.tag.power import TagPowerModel, PowerBreakdown

__all__ = [
    "EnvelopeDetector",
    "EnvelopeTrace",
    "SyncCircuit",
    "SyncResult",
    "TagController",
    "ChipSchedule",
    "TagTiming",
    "preamble_bits",
    "packetize",
    "depacketize",
    "PACKET_SYMBOLS",
    "DATA_SYMBOLS_PER_PACKET",
    "ChipModulator",
    "TagPowerModel",
    "PowerBreakdown",
]
