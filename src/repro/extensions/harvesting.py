"""RF energy harvesting from the ambient LTE carrier.

Because LTE is continuous, a harvesting tag charges around the clock —
one more consequence of the paper's Observation 1.  The model uses a
standard rectifier efficiency curve (zero below sensitivity, rising with
input power toward a ceiling) and compares the harvested budget against
the §4.8 consumption model, yielding the duty cycle a battery-free tag
could sustain at a given distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import LinkBudget
from repro.tag.power import TagPowerModel
from repro.utils.units import dbm_to_watts

#: Rectifier turn-on sensitivity (dBm): below this, nothing harvests.
DEFAULT_SENSITIVITY_DBM = -20.0

#: Peak RF-to-DC conversion efficiency at strong input.
DEFAULT_PEAK_EFFICIENCY = 0.35

#: Input power (dBm) at which efficiency reaches ~63 % of its peak.
DEFAULT_KNEE_DBM = -5.0


@dataclass
class HarvestReport:
    """Harvest-vs-consumption balance for one geometry."""

    incident_dbm: float
    harvested_w: float
    consumption_w: float

    @property
    def duty_cycle(self):
        """Fraction of time the tag can run from harvested power alone."""
        if self.consumption_w <= 0:
            return 1.0
        return float(min(self.harvested_w / self.consumption_w, 1.0))

    @property
    def self_sustaining(self):
        return self.harvested_w >= self.consumption_w


class HarvesterModel:
    """Rectifier + power-management model for an LScatter tag."""

    def __init__(
        self,
        sensitivity_dbm=DEFAULT_SENSITIVITY_DBM,
        peak_efficiency=DEFAULT_PEAK_EFFICIENCY,
        knee_dbm=DEFAULT_KNEE_DBM,
    ):
        self.sensitivity_dbm = float(sensitivity_dbm)
        self.peak_efficiency = float(peak_efficiency)
        self.knee_dbm = float(knee_dbm)

    def efficiency(self, incident_dbm):
        """RF-to-DC efficiency at a given incident power."""
        incident_dbm = float(incident_dbm)
        if incident_dbm < self.sensitivity_dbm:
            return 0.0
        # Saturating exponential above sensitivity.
        scale = max(self.knee_dbm - self.sensitivity_dbm, 1e-6)
        x = (incident_dbm - self.sensitivity_dbm) / scale
        return self.peak_efficiency * (1.0 - np.exp(-x))

    def harvested_w(self, incident_dbm, occupancy=1.0):
        """DC power harvested from a carrier present ``occupancy`` of the time."""
        rf_w = dbm_to_watts(incident_dbm)
        return float(occupancy) * self.efficiency(incident_dbm) * rf_w

    def report(
        self,
        enb_to_tag_ft,
        budget=None,
        bandwidth_mhz=20.0,
        clock_technology="ring",
        occupancy=1.0,
    ):
        """Balance harvest against the §4.8 budget at one distance."""
        budget = budget or LinkBudget(venue="smart_home")
        loss = budget.pathloss.loss_db_feet(enb_to_tag_ft, budget.carrier_hz)
        incident = budget.tx_power_dbm - loss + budget.system_gain_db / 2.0
        consumption = TagPowerModel(clock_technology).breakdown(bandwidth_mhz).total_w
        return HarvestReport(
            incident_dbm=float(incident),
            harvested_w=self.harvested_w(incident, occupancy),
            consumption_w=consumption,
        )
