"""Basic-timing-unit backscatter on an arbitrary OFDM carrier.

The LScatter modulation needs only an OFDM symbol layout: where each
useful part starts and how many chips fit.  This module factors that out
(:class:`OfdmSymbolLayout`), provides a generic tag and receiver built on
the same machinery as the LTE pipeline, and ships the 802.11a/g layout —
48 chips per 4 us symbol, i.e. a 12 Mbps ceiling *while a packet is on
air*, which the ambient traffic's occupancy then scales down.  That last
factor is the paper's whole point: the modulation generalises, the
carrier's burstiness does not go away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bsrx.equalizer import equalize_symbol, estimate_channel_from_known
from repro.bsrx.mod_offset import find_modulation_offset
from repro.tag.framing import preamble_bits
from repro.wifi.params import FFT_SIZE, GI_SAMPLES, SYMBOL_SAMPLES
from repro.wifi.receiver import PREAMBLE_SAMPLES


@dataclass(frozen=True)
class OfdmSymbolLayout:
    """Geometry of the modulatable symbols within one transmission."""

    useful_starts: tuple  # sample index of each symbol's useful part
    fft_size: int
    n_chips: int  # chips per symbol (= occupied subcarriers)

    @property
    def chip_offset(self):
        """Chips centred in the useful part (guard on both sides)."""
        return (self.fft_size - self.n_chips) // 2

    @property
    def n_symbols(self):
        return len(self.useful_starts)


def wifi_layout(packet_samples, n_data_symbols):
    """Layout of an 802.11a/g packet's data symbols.

    Skips the PLCP preamble and the SIGNAL symbol (they must reach the
    WiFi receiver unmodified — the analogue of avoiding the PSS/SSS).
    """
    first_data = PREAMBLE_SAMPLES + SYMBOL_SAMPLES
    starts = []
    for sym in range(int(n_data_symbols)):
        start = first_data + sym * SYMBOL_SAMPLES + GI_SAMPLES
        if start + FFT_SIZE <= len(packet_samples):
            starts.append(start)
    return OfdmSymbolLayout(
        useful_starts=tuple(starts), fft_size=FFT_SIZE, n_chips=48
    )


class OfdmChipTag:
    """Chip-level modulation on any OFDM carrier."""

    def __init__(self, layout):
        self.layout = layout
        self._preamble = preamble_bits(layout.n_chips)

    def capacity_bits(self):
        """Payload bits one transmission can carry (first symbol = preamble)."""
        return max(self.layout.n_symbols - 1, 0) * self.layout.n_chips

    def modulate(self, carrier_samples, payload_bits):
        """Reflect the carrier with chips; returns (hybrid, bits_used).

        Symbol 0 carries the preamble; the rest carry payload chips,
        idle-padded with '1'.
        """
        carrier_samples = np.asarray(carrier_samples, dtype=complex)
        payload_bits = np.asarray(payload_bits, dtype=np.int8)
        layout = self.layout
        chips = np.ones(len(carrier_samples))
        used = 0
        for index, start in enumerate(layout.useful_starts):
            lo = start + layout.chip_offset
            if index == 0:
                bits = self._preamble
            else:
                take = min(layout.n_chips, len(payload_bits) - used)
                bits = np.ones(layout.n_chips, dtype=np.int8)
                bits[:take] = payload_bits[used : used + take]
                used += take
            chips[lo : lo + layout.n_chips] = 2.0 * bits - 1.0
        return carrier_samples * chips, used


class OfdmChipReceiver:
    """Generic chip demodulation given the carrier reference."""

    def __init__(self, layout, search_slack=None):
        self.layout = layout
        self._preamble = preamble_bits(layout.n_chips)
        self.search_slack = (
            int(search_slack) if search_slack is not None else layout.chip_offset
        )

    def demodulate(self, hybrid, reference, n_payload_bits):
        """Recover payload bits from one modulated transmission."""
        hybrid = np.asarray(hybrid, dtype=complex)
        reference = np.asarray(reference, dtype=complex)
        layout = self.layout
        if layout.n_symbols < 2:
            return np.zeros(0, dtype=np.int8)

        start0 = layout.useful_starts[0]
        y0 = hybrid[start0 : start0 + layout.fft_size]
        x0 = reference[start0 : start0 + layout.fft_size]
        estimate = find_modulation_offset(
            y0, x0, self._preamble, layout.chip_offset, self.search_slack
        )
        chip_wave = np.ones(layout.fft_size)
        chip_wave[estimate.offset : estimate.offset + layout.n_chips] = (
            2.0 * self._preamble - 1.0
        )
        channel = estimate_channel_from_known(y0, x0 * chip_wave)

        bits = []
        for start in layout.useful_starts[1:]:
            y = hybrid[start : start + layout.fft_size]
            x = reference[start : start + layout.fft_size]
            y_eq = equalize_symbol(y, channel)
            lo = estimate.offset
            soft = np.real(
                y_eq[lo : lo + layout.n_chips]
                * np.conj(x[lo : lo + layout.n_chips])
            )
            bits.append((soft > 0).astype(np.int8))
        flat = np.concatenate(bits) if bits else np.zeros(0, dtype=np.int8)
        return flat[: int(n_payload_bits)]
