"""Extensions from the paper's §6 "Discussion and Opportunities".

"The modulation scheme, phase offset elimination technique, and
demodulation scheme introduced in this paper are generic.  Potentially,
these techniques can be applied to any other OFDM signal based protocols
(e.g., IEEE 802.11 a/g/n/ac/ax and 5G)."

* :mod:`repro.extensions.ofdm_chips` — the basic-timing-unit modulation
  applied to an arbitrary OFDM carrier, demonstrated on 802.11a/g;
* :mod:`repro.nr` — a 5G-NR-lite downlink substrate and LScatter on it;
* :mod:`repro.extensions.harvesting` — RF energy harvesting from the
  ambient LTE carrier against the §4.8 power budget.
"""

from repro.extensions.ofdm_chips import (
    OfdmChipTag,
    OfdmChipReceiver,
    OfdmSymbolLayout,
    wifi_layout,
)
from repro.extensions.harvesting import HarvesterModel, HarvestReport

__all__ = [
    "OfdmChipTag",
    "OfdmChipReceiver",
    "OfdmSymbolLayout",
    "wifi_layout",
    "HarvesterModel",
    "HarvestReport",
]
