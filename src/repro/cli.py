"""Command-line interface: ``python -m repro.cli <command>``.

Three commands:

* ``simulate`` — run one end-to-end IQ simulation from flags;
* ``experiment`` — regenerate a paper table/figure (same as
  ``python -m repro.experiments``);
* ``survey`` — print the ambient-traffic survey for a venue;
* ``fleet`` — multi-tag network simulation over one shared ambient cell;
* ``network`` — city-scale multi-cell simulation: cell search/attach,
  inter-cell interference, handover (see DESIGN.md §15);
* ``trace`` — run with stage tracing on and write a Chrome trace JSON;
* ``chaos`` — fault-injection sweeps and degradation curves;
* ``bench`` — time the DSP hot path and write a perf baseline JSON; with
  ``--check`` it gates the run against a committed baseline;
* ``substrates`` — cross-substrate comparison suite over every
  registered ambient-substrate mode; writes ``SUBSTRATES_PR10.json``
  (see DESIGN.md §19);
* ``campaign`` — sharded, resumable execution of a registry experiment
  with per-shard checkpoints (see DESIGN.md §13);
* ``serve`` — run the always-on fleet service; with ``--soak`` it drives
  the checkpointed soak harness and writes ``SOAK_PR9.json`` (see
  DESIGN.md §18);
* ``report`` — write the full evaluation report.

Installed as the ``repro`` console script (and ``lscatter``, its alias).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _refuse_overwrite(path, force):
    """Guard for commands whose output path may hold previous results.

    Returns an error exit code, or ``None`` when writing is allowed.
    Overwriting is opt-in (``--force``) because trace/fleet outputs
    default to the same committed filename.
    """
    if force or not os.path.exists(path):
        return None
    return _fail_usage(
        f"output file {path!r} already exists; pass --force to overwrite"
    )


def _validate_substrate(name):
    """Usage-error exit code for an unknown substrate name, else ``None``."""
    from repro.substrates import available_substrates

    if name is not None and name not in available_substrates():
        return _fail_usage(
            f"unknown substrate {name!r}; choose from "
            f"{', '.join(available_substrates())}"
        )
    return None


def _cmd_simulate(args):
    error = _validate_substrate(args.substrate)
    if error is not None:
        return error
    from repro.core import LScatterSystem, SystemConfig

    config = SystemConfig(
        bandwidth_mhz=args.bandwidth,
        venue=args.venue,
        enb_to_tag_ft=args.enb_to_tag,
        tag_to_ue_ft=args.tag_to_ue,
        tx_power_dbm=args.tx_power,
        n_frames=args.frames,
        sync_mode="circuit" if args.circuit_sync else "model",
        reference_mode="decoded" if args.decoded_reference else "genie",
        substrate=args.substrate,
    )
    try:
        system = LScatterSystem(config, rng=args.seed)
    except ValueError as exc:
        # e.g. srs-uplink with --decoded-reference / --circuit-sync.
        return _fail_usage(str(exc))
    report = system.run(payload_length=args.payload)
    print(f"bandwidth      : {args.bandwidth} MHz ({args.venue})")
    print(f"geometry       : eNodeB --{args.enb_to_tag} ft-- tag --{args.tag_to_ue} ft-- UE")
    print(f"sync error     : {report.sync_error_us:+.2f} us")
    print(f"chips carried  : {report.n_bits}")
    print(f"bit errors     : {report.n_errors} (BER {report.ber:.3e})")
    print(f"throughput     : {report.throughput_bps / 1e6:.3f} Mbps")
    if not np.isnan(report.lte_block_error_rate):
        print(
            f"ambient LTE    : BLER {report.lte_block_error_rate:.3f}, "
            f"{report.lte_throughput_bps / 1e6:.2f} Mbps"
        )
    return 0


def _cmd_experiment(args):
    from repro.experiments.__main__ import main as experiments_main

    argv = [args.id] if args.id else ["--list"]
    # `is not None`, not truthiness: an explicit `--seed 0` must be passed
    # through rather than silently dropped.
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.substrate is not None:
        argv += ["--substrate", args.substrate]
    return experiments_main(argv)


def _run_pipeline_probe(seed=0):
    """One tiny end-to-end run under a ``trace.probe`` span.

    Several experiments are analytic (pure numpy, no IQ pipeline), so
    ``repro trace <experiment>`` alone could produce a trace with no
    sync/equalise/demod stages.  The probe guarantees every pipeline
    stage appears in every trace; ``--no-probe`` disables it.
    """
    from repro.core import LScatterSystem, SystemConfig
    from repro.obs.trace import span

    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=2,
        multipath=False,
        add_noise=False,
        sync_error_samples=0,
        reference_mode="decoded",
    )
    with span("trace.probe"):
        LScatterSystem(config, rng=seed).run(payload_length=500)


def _validate_chrome_trace(path):
    """Re-read a written trace and check the Trace Event Format shape.

    Returns an error string or ``None``; the command fails loudly rather
    than shipping a file chrome://tracing cannot load.
    """
    import json

    with open(path) as fh:
        payload = json.load(fh)
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return "trace has no events"
    for event in events:
        if event.get("ph") == "M":
            continue
        if event.get("ph") != "X":
            return f"unexpected event phase {event.get('ph')!r}"
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                return f"event missing {key!r}"
    return None


def _cmd_trace(args):
    error = _refuse_overwrite(args.output, args.force)
    if error is not None:
        return error
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.export import format_span_tree, write_chrome_trace

    obs_trace.enable()
    obs_trace.reset()
    obs_metrics.reset_metrics()
    status = 0
    try:
        if args.id:
            from repro.experiments.__main__ import main as experiments_main

            argv = [args.id]
            if args.seed is not None:
                argv += ["--seed", str(args.seed)]
            status = experiments_main(argv) or 0
        if not args.no_probe:
            _run_pipeline_probe(seed=args.seed if args.seed is not None else 0)
    finally:
        obs_trace.disable()
    roots = obs_trace.snapshot()
    n_events = write_chrome_trace(args.output, roots=roots)
    error = _validate_chrome_trace(args.output)
    if error is not None:
        print(f"repro: error: invalid trace written: {error}", file=sys.stderr)
        return 1
    print(format_span_tree(roots))
    counters = obs_metrics.counters_snapshot()
    if counters:
        print(
            "counters: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    print(f"wrote {args.output} ({n_events} events)")
    return status


def _fail_usage(message):
    """One-line actionable argument error; exit code 2 like argparse."""
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _validate_fleet(args):
    if args.tags < 1:
        return _fail_usage(f"--tags must be >= 1, got {args.tags}")
    if args.workers < 1:
        return _fail_usage(f"--workers must be >= 1, got {args.workers}")
    if args.frames < 1:
        return _fail_usage(f"--frames must be >= 1, got {args.frames}")
    if args.chunk_half_frames is not None and args.chunk_half_frames < 1:
        return _fail_usage(
            f"--chunk-half-frames must be >= 1, got {args.chunk_half_frames}"
        )
    if args.batch_tags and args.trace:
        return _fail_usage(
            "--batch-tags shares one demod pass across tags, so per-tag "
            "traces cannot be attributed; drop one of the two flags"
        )
    error = _validate_substrate(args.substrate)
    if error is not None:
        return error
    if args.substrate not in (None, "chip"):
        if args.batch_tags:
            return _fail_usage(
                f"--batch-tags runs the chip demodulator's batched pass, "
                f"which substrate {args.substrate!r} does not provide"
            )
        if args.streaming:
            return _fail_usage(
                f"--streaming runs the chunked chip receiver, which "
                f"substrate {args.substrate!r} does not support"
            )
    return None


def _cmd_fleet(args):
    error = _validate_fleet(args)
    if error is not None:
        return error
    if args.trace:
        error = _refuse_overwrite(args.trace_output, args.force)
        if error is not None:
            return error
    from repro.fleet import Deployment, FleetRunner

    deployment = Deployment.ring(
        args.tags,
        venue=args.venue,
        bandwidth_mhz=args.bandwidth,
        n_frames=args.frames,
    )
    with FleetRunner(
        deployment,
        scheme=args.scheme,
        workers=args.workers,
        seed=args.seed,
        trace=args.trace,
        batch_tags=args.batch_tags,
        streaming=args.streaming,
        chunk_half_frames=args.chunk_half_frames,
        substrate=args.substrate,
    ) as runner:
        report = runner.run(payload_length=args.payload)
    print(
        f"FleetReport: {report.n_tags} tag(s), scheme={report.scheme}, "
        f"{args.bandwidth} MHz ({args.venue})"
    )
    print(report.format_table())
    if args.trace:
        from repro.obs.export import write_chrome_trace
        from repro.obs.trace import from_dict

        tracks = {
            tag.name: [from_dict(d) for d in tag.trace] for tag in report.tags
        }
        n_events = write_chrome_trace(args.trace_output, tracks=tracks)
        error = _validate_chrome_trace(args.trace_output)
        if error is not None:
            print(
                f"repro: error: invalid trace written: {error}", file=sys.stderr
            )
            return 1
        print(f"wrote {args.trace_output} ({n_events} events)")
    return 0


def _validate_network(args):
    if args.tags < 1:
        return _fail_usage(f"--tags must be >= 1, got {args.tags}")
    if args.workers < 1:
        return _fail_usage(f"--workers must be >= 1, got {args.workers}")
    if args.frames < 1:
        return _fail_usage(f"--frames must be >= 1, got {args.frames}")
    if args.isd <= 0:
        return _fail_usage(f"--isd must be positive, got {args.isd}")
    if args.layout == "hex" and args.rings < 0:
        return _fail_usage(f"--rings must be >= 0, got {args.rings}")
    if args.layout == "grid" and (args.rows < 1 or args.cols < 1):
        return _fail_usage(
            f"--rows/--cols must be >= 1, got {args.rows}x{args.cols}"
        )
    if args.chunk_half_frames is not None and args.chunk_half_frames < 1:
        return _fail_usage(
            f"--chunk-half-frames must be >= 1, got {args.chunk_half_frames}"
        )
    return None


def _cmd_network(args):
    error = _validate_network(args)
    if error is not None:
        return error
    import json

    from repro.cells import NetworkDeployment, NetworkRunner, Topology

    # Mirror bench/chaos: smoke runs default to artifacts/ so CI never
    # clobbers the committed full-mode report (NETWORK_PR6.json).
    output = args.output
    if output is None:
        output = (
            "artifacts/network_smoke.json" if args.smoke else "NETWORK_PR6.json"
        )
    error = _refuse_overwrite(output, args.force)
    if error is not None:
        return error

    n_frames = 1 if args.smoke else args.frames
    n_tags = min(args.tags, 4) if args.smoke else args.tags
    if args.layout == "grid":
        topology = Topology.grid(
            args.rows, args.cols, spacing_ft=args.isd, n_frames=n_frames
        )
    else:
        rings = 1 if args.smoke else args.rings
        topology = Topology.hex_cluster(
            inter_site_ft=args.isd, rings=rings, n_frames=n_frames
        )
    deployment = NetworkDeployment.scatter(
        n_tags, topology, seed=args.seed, margin_ft=args.isd / 3.0
    )
    with NetworkRunner(
        topology,
        deployment,
        scheme=args.scheme,
        workers=args.workers,
        seed=args.seed,
        attach_mode=args.attach,
        payload_length=args.payload,
        batch_tags=args.batch_tags,
        streaming=args.streaming,
        chunk_half_frames=args.chunk_half_frames,
    ) as runner:
        report = runner.run()

    print(
        f"NetworkReport: {report.n_cells} cell(s) "
        f"({args.layout}, {args.isd:g} ft pitch), {report.n_tags} tag(s), "
        f"scheme={report.scheme}"
    )
    print(report.format_table())
    directory = os.path.dirname(output)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(output, "w") as fh:
        json.dump(report.summary(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {output}")
    return 0


def _cmd_chaos(args):
    if not 0.0 <= args.max_severity <= 1.0:
        return _fail_usage(
            f"--max-severity must be in [0, 1], got {args.max_severity}"
        )
    from repro.faults.chaos import CHAOS_KINDS, run_chaos

    kinds = args.kinds.split(",") if args.kinds else None
    if kinds:
        for kind in kinds:
            if kind not in CHAOS_KINDS:
                return _fail_usage(
                    f"unknown chaos kind {kind!r}; choose from "
                    f"{', '.join(CHAOS_KINDS)}"
                )
    # Mirror bench: smoke runs default to artifacts/ so CI never clobbers
    # the committed full-mode report (CHAOS_PR3.json).
    output = args.output
    if output is None:
        output = "artifacts/chaos_smoke.json" if args.smoke else "CHAOS_PR3.json"
    error = _refuse_overwrite(output, args.force)
    if error is not None:
        return error
    report = run_chaos(
        output=output,
        smoke=args.smoke,
        seed=args.seed,
        max_severity=args.max_severity,
        kinds=kinds,
        fleet=not args.no_fleet,
    )
    noop_ok = "OK" if report["noop_contract"]["passed"] else "FAILED"
    print(f"chaos: no-op contract {noop_ok}")
    for sweep in report["sweeps"]:
        goodputs = ", ".join(
            f"{(p['goodput_bps'] or 0.0) / 1e3:.1f}" for p in sweep["points"]
        )
        if sweep["monotone_goodput"]:
            flag = "monotone"
        elif sweep["monotone_required"]:
            flag = "NOT MONOTONE"
        else:
            flag = "non-monotone (threshold fault, not gated)"
        print(f"chaos: {sweep['kind']:8s} goodput kbps [{goodputs}] {flag}")
    if "fleet" in report:
        fleet = report["fleet"]
        print(
            f"chaos: fleet resilience "
            f"{'OK' if fleet['passed'] else 'FAILED'} "
            f"(retried {fleet['retried_tasks']}, "
            f"timed out {fleet['timed_out_tasks']}, "
            f"scratch regenerations "
            f"{fleet['scratch_corruption']['integrity_failures']})"
        )
    print(f"chaos: {'PASSED' if report['passed'] else 'FAILED'}")
    print(f"wrote {output}")
    return 0 if report["passed"] else 1


def _cmd_stress(args):
    if not 0.0 <= args.max_intensity <= 1.0:
        return _fail_usage(
            f"--max-intensity must be in [0, 1], got {args.max_intensity}"
        )
    from repro.stress import SCENARIOS, run_stress

    scenarios = args.scenarios.split(",") if args.scenarios else None
    if scenarios:
        for scenario in scenarios:
            if scenario not in SCENARIOS:
                return _fail_usage(
                    f"unknown stress scenario {scenario!r}; choose from "
                    f"{', '.join(SCENARIOS)}"
                )
    # Mirror chaos: smoke runs default to artifacts/ so CI never clobbers
    # the committed full-mode report (STRESS_PR8.json).
    output = args.output
    if output is None:
        output = (
            "artifacts/stress_smoke.json" if args.smoke else "STRESS_PR8.json"
        )
    error = _refuse_overwrite(output, args.force)
    if error is not None:
        return error
    report = run_stress(
        output=output,
        smoke=args.smoke,
        seed=args.seed,
        max_intensity=args.max_intensity,
        scenarios=scenarios,
    )
    noop_ok = "OK" if all(c["passed"] for c in report["noop_contracts"]) else "FAILED"
    print(f"stress: no-op contracts {noop_ok}")
    for sweep in report["sweeps"]:
        goodputs = ", ".join(
            f"{(p['goodput_bps'] or 0.0) / 1e3:.1f}" for p in sweep["points"]
        )
        flag = "monotone" if sweep["monotone_goodput"] else "NOT MONOTONE"
        print(
            f"stress: {sweep['scenario']:16s} goodput kbps [{goodputs}] {flag}"
        )
    for probe in report["sync_probes"]:
        held = "held" if not probe["adaptive"]["sync_failed"] else "LOST"
        print(
            f"stress: sync probe {probe['scenario']:16s} sync {held} "
            f"(attempts {probe['adaptive']['resync_attempts']}, "
            f"recovered {probe['resync_recovered']})"
        )
    degradation = report["degradation"]
    print(
        f"stress: mac backoff "
        f"{'OK' if degradation['mac_backoff']['passed'] else 'FAILED'} "
        f"(recovery {degradation['mac_backoff']['recovery_latency_slots']} "
        f"slots); arq "
        f"{'OK' if degradation['arq_jamming']['passed'] else 'FAILED'} "
        f"(bit-exact {degradation['arq_jamming']['all_bit_exact']})"
    )
    print(f"stress: {'PASSED' if report['passed'] else 'FAILED'}")
    print(f"wrote {output}")
    return 0 if report["passed"] else 1


def _cmd_bench(args):
    from repro.bench import (
        compare_to_baseline,
        format_check,
        format_summary,
        load_baseline,
        run_bench,
    )

    if args.tolerance < 0:
        return _fail_usage(f"--tolerance must be >= 0, got {args.tolerance}")
    if args.check and not os.path.exists(args.check):
        return _fail_usage(f"baseline file {args.check!r} does not exist")
    # Smoke runs default to a scratch path under artifacts/ so CI never
    # clobbers the committed full-mode baseline (BENCH_PR7.json).
    output = args.output
    if output is None:
        output = "artifacts/bench_smoke.json" if args.smoke else "BENCH_PR7.json"
    results = run_bench(
        output=output,
        bandwidth=args.bandwidth,
        repeats=args.repeats,
        smoke=args.smoke,
    )
    print(format_summary(results))
    print(f"wrote {output}")
    if args.check:
        report = compare_to_baseline(
            results, load_baseline(args.check), tolerance=args.tolerance
        )
        print(format_check(report, baseline_path=args.check))
        if not report["passed"]:
            return 1
    return 0


def _cmd_substrates(args):
    error = _validate_substrate(args.substrate)
    if error is not None:
        return error
    # Mirror chaos/stress: smoke runs default to artifacts/ so CI never
    # clobbers the committed full-mode report (SUBSTRATES_PR10.json).
    output = args.output
    if output is None:
        output = (
            "artifacts/substrates_smoke.json"
            if args.smoke
            else "SUBSTRATES_PR10.json"
        )
    error = _refuse_overwrite(output, args.force)
    if error is not None:
        return error
    from repro.substrates.suite import format_report, run_suite

    report = run_suite(
        output,
        smoke=args.smoke,
        seed=args.seed,
        substrate=args.substrate,
    )
    print(format_report(report))
    print(f"wrote {output}")
    return 0 if report["passed"] else 1


def _cmd_campaign(args):
    from repro.campaign import CampaignRunner, CampaignSpec, campaign_capable
    from repro.experiments.registry import REGISTRY

    if args.list:
        capable = campaign_capable()
        for experiment_id in capable:
            print(f"{experiment_id:12s} {REGISTRY[experiment_id][1]}")
        return 0
    if not args.id:
        return _fail_usage("an experiment id is required (or --list)")
    if args.shards < 1:
        return _fail_usage(f"--shards must be >= 1, got {args.shards}")
    if args.shard_index is not None and not (
        0 <= args.shard_index < args.shards
    ):
        return _fail_usage(
            f"--shard-index must be in [0, {args.shards}), "
            f"got {args.shard_index}"
        )
    if args.workers < 1:
        return _fail_usage(f"--workers must be >= 1, got {args.workers}")

    spec = CampaignSpec(experiment=args.id, seed=args.seed, smoke=args.smoke)
    run_dir = args.run_dir
    if run_dir is None:
        run_dir = os.path.join(
            "artifacts", "campaign", args.id + ("-smoke" if args.smoke else "")
        )
    runner = CampaignRunner(
        spec,
        run_dir,
        workers=args.workers,
        n_shards=args.shards,
        shard_index=args.shard_index,
        resume=args.resume,
        on_error="partial",
    )
    try:
        report = runner.run()
    except KeyError as exc:
        return _fail_usage(str(exc.args[0]) if exc.args else str(exc))

    job = (
        "full grid"
        if args.shard_index is None
        else f"shard {args.shard_index}/{args.shards}"
    )
    # The nightly workflow greps this line ("resumed N") — keep wording
    # stable.
    print(
        f"campaign {spec.experiment}: {job}, {len(report.outcomes)} shard(s) "
        f"owned — completed {report.completed}, resumed {report.resumed}, "
        f"failed {report.failed}"
    )
    for outcome in report.outcomes:
        if outcome.status == "failed":
            print(f"  shard {outcome.shard_id} FAILED: {outcome.error}")
    print(f"manifest: {report.manifest_path}")
    if report.result is not None:
        print(
            f"grid complete ({report.checkpointed}/{report.total_shards} "
            f"checkpoints verified); aggregated result:"
        )
        print(report.result.format_table())
        if report.result.notes:
            print(f"# {report.result.notes}")
    else:
        print(
            f"grid incomplete: {report.checkpointed}/{report.total_shards} "
            f"shard checkpoints verified; run the remaining shard jobs "
            f"(or --resume) to aggregate"
        )
    return 1 if report.failed else 0


def _validate_serve(args):
    if args.sessions is not None and args.sessions < 1:
        return _fail_usage(f"--sessions must be >= 1, got {args.sessions}")
    if args.cohort_tags < 1:
        return _fail_usage(
            f"--cohort-tags must be >= 1, got {args.cohort_tags}"
        )
    if args.workers < 1:
        return _fail_usage(f"--workers must be >= 1, got {args.workers}")
    if args.queue_depth < 1:
        return _fail_usage(
            f"--queue-depth must be >= 1, got {args.queue_depth}"
        )
    if args.snapshot_every < 1:
        return _fail_usage(
            f"--snapshot-every must be >= 1, got {args.snapshot_every}"
        )
    if args.frames < 1:
        return _fail_usage(f"--frames must be >= 1, got {args.frames}")
    if args.payload < 1:
        return _fail_usage(f"--payload must be >= 1, got {args.payload}")
    if args.resume and not args.soak:
        return _fail_usage("--resume only applies to --soak runs")
    return None


def _latency_line(name, stats):
    if not stats["count"]:
        return f"serve: {name} latency: no sessions recorded"
    return (
        f"serve: {name} latency p50 {stats['p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {stats['p99_seconds'] * 1e3:.1f} ms "
        f"({stats['count']} session(s))"
    )


def _cmd_serve(args):
    error = _validate_serve(args)
    if error is not None:
        return error
    # Mirror chaos/stress: smoke soaks default to artifacts/ so CI never
    # clobbers the committed full-mode report (SOAK_PR9.json).
    output = args.output
    if output is None:
        output = "artifacts/soak_smoke.json" if args.smoke else "SOAK_PR9.json"
    if args.soak and not args.resume:
        error = _refuse_overwrite(output, args.force)
        if error is not None:
            return error
    if args.snapshot is not None:
        error = _refuse_overwrite(args.snapshot, args.force)
        if error is not None:
            return error

    from repro.service import FleetService, default_spec, run_soak

    spec = default_spec(
        smoke=args.smoke,
        sessions=args.sessions,
        cohort_tags=args.cohort_tags,
        seed=args.seed,
        scheme=args.scheme,
        bandwidth_mhz=args.bandwidth,
        n_frames=args.frames,
        payload_length=args.payload,
    )

    if args.soak:
        run_dir = args.run_dir
        if run_dir is None:
            run_dir = os.path.join(
                "artifacts", "soak" + ("-smoke" if args.smoke else "")
            )
        report = run_soak(
            output,
            run_dir,
            spec,
            workers=args.workers,
            queue_depth=args.queue_depth,
            resume=args.resume,
            snapshot_path=args.snapshot,
            snapshot_every=args.snapshot_every,
        )
        progress = report["progress"]
        operations = report["operations"]
        aggregates = report["aggregates"]
        # The nightly workflow greps "completed N"/"resumed N"/
        # "equivalence OK" — keep wording stable.
        print(
            f"soak: {progress['total_cohorts']} cohort(s) "
            f"({aggregates['sessions']} session(s)) — "
            f"completed {progress['completed_cohorts']}, "
            f"resumed {progress['resumed_cohorts']}"
        )
        print(
            f"soak: throughput "
            f"{operations['throughput_sessions_per_second']:.2f} "
            f"session(s)/s over {operations['wall_seconds']:.1f} s wall, "
            f"{operations['workers']} worker(s), "
            f"peak RSS {operations['peak_rss_mb']:.1f} MB"
        )
        print(_latency_line("session", operations["session_latency"]))
        shed = operations["shed"]
        print(
            f"soak: shed {shed['count']}/{shed['attempts']} submissions "
            f"(rate {shed['rate']:.3f}), {operations['reloads']} reload(s), "
            f"{operations['snapshot_exports']} snapshot export(s)"
        )
        equivalence = report["equivalence"]
        print(
            f"soak: service-vs-batch equivalence "
            f"{'OK' if equivalence['passed'] else 'FAILED'} "
            f"({equivalence['checked_cohorts']} cohort(s) checked)"
        )
        print(f"wrote {output}")
        return 0 if report["passed"] else 1

    # Demo mode: one cohort burst through a live service, summary on
    # stdout — the quickest way to see the queue/worker/telemetry path.
    from repro.fleet import Deployment, FleetRunner

    deployment = Deployment.ring(
        spec["cohort_tags"],
        bandwidth_mhz=spec["bandwidth_mhz"],
        n_frames=spec["n_frames"],
    )
    with FleetService(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        snapshot_path=args.snapshot,
        snapshot_every=args.snapshot_every,
    ) as service:
        with FleetRunner(
            deployment, scheme=spec["scheme"], seed=spec["seed"]
        ) as runner:
            ticket = service.submit_fleet(
                runner, payload_length=spec["payload_length"]
            )
            report = service.fleet_result(ticket)
        service.drain()
        summary = service.summary()
    print(
        f"FleetService demo: {report.n_tags} session(s) through "
        f"{args.workers} worker(s), queue depth {args.queue_depth}"
    )
    print(report.format_table())
    queue = summary["queue"]
    print(
        f"serve: queue submitted {queue['submitted']}, shed {queue['shed']}, "
        f"popped {queue['popped']}; sessions completed "
        f"{summary['sessions']['completed']}, failed "
        f"{summary['sessions']['failed']}"
    )
    print(_latency_line("session", summary["latency"]["session"]))
    if args.snapshot is not None:
        print(f"wrote {args.snapshot}")
    return 0


def _cmd_survey(args):
    from repro.traffic import weekly_occupancy_samples

    print(f"{'carrier':16s} {'median':>8s} {'p90':>8s}")
    for tech in ("lte", "wifi", "lora"):
        samples = weekly_occupancy_samples(tech, args.venue, rng=args.seed)
        print(
            f"{tech:16s} {np.median(samples):8.3f} "
            f"{np.percentile(samples, 90):8.3f}"
        )
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="LScatter reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one end-to-end simulation")
    simulate.add_argument("--bandwidth", type=float, default=5.0)
    simulate.add_argument("--venue", default="smart_home")
    simulate.add_argument("--enb-to-tag", type=float, default=3.0)
    simulate.add_argument("--tag-to-ue", type=float, default=5.0)
    simulate.add_argument("--tx-power", type=float, default=10.0)
    simulate.add_argument("--frames", type=int, default=2)
    simulate.add_argument("--payload", type=int, default=50_000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--circuit-sync", action="store_true")
    simulate.add_argument("--decoded-reference", action="store_true")
    simulate.add_argument(
        "--substrate",
        default="chip",
        help="ambient-substrate mode (chip, crs-ook, crs-fsk, coded-pilot, "
        "srs-uplink; default chip)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    experiment = sub.add_parser("experiment", help="regenerate a table/figure")
    experiment.add_argument("id", nargs="?", help="experiment id (omit to list)")
    # default=None so each experiment's own default seed applies unless
    # the user passes one explicitly (including --seed 0).
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument(
        "--substrate",
        default=None,
        help="ambient-substrate filter for substrate-aware experiments "
        "(currently subgrid)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    trace = sub.add_parser(
        "trace", help="run with stage tracing and write a Chrome trace JSON"
    )
    trace.add_argument(
        "id", nargs="?", help="experiment id to trace (optional; probe always runs)"
    )
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument(
        "--output",
        default="TRACE_PR4.json",
        help="Chrome trace-event JSON path (chrome://tracing / Perfetto)",
    )
    trace.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the built-in end-to-end pipeline probe run",
    )
    trace.add_argument(
        "--force",
        action="store_true",
        help="overwrite --output if it already exists",
    )
    trace.set_defaults(func=_cmd_trace)

    fleet = sub.add_parser("fleet", help="multi-tag network simulation")
    fleet.add_argument("--tags", "-n", type=int, default=4, help="fleet size")
    fleet.add_argument(
        "--scheme",
        default="tdma",
        choices=("tdma", "aloha", "priority"),
        help="MAC scheme assigning half-frames to tags",
    )
    fleet.add_argument("--bandwidth", type=float, default=1.4)
    fleet.add_argument("--venue", default="smart_home")
    fleet.add_argument(
        "--frames", type=int, default=4, help="LTE frames in the shared capture"
    )
    fleet.add_argument("--payload", type=int, default=20_000)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the per-tag stages (results are "
        "bit-identical for any value)",
    )
    fleet.add_argument(
        "--trace",
        action="store_true",
        help="collect per-tag span trees + counters and write a trace JSON",
    )
    fleet.add_argument(
        "--trace-output",
        default="TRACE_PR4.json",
        help="Chrome trace path for --trace (one thread track per tag)",
    )
    fleet.add_argument(
        "--force",
        action="store_true",
        help="overwrite --trace-output if it already exists",
    )
    fleet.add_argument(
        "--batch-tags",
        action="store_true",
        help="stack all tags into one batched cross-tag demod pass "
        "(bit-identical to the per-tag path, runs in the parent)",
    )
    fleet.add_argument(
        "--streaming",
        action="store_true",
        help="demodulate each capture in half-frame-aligned chunks "
        "(bit-identical, bounded demod working set)",
    )
    fleet.add_argument(
        "--chunk-half-frames",
        type=int,
        default=None,
        help="streaming chunk size in half-frames (default 4)",
    )
    fleet.add_argument(
        "--substrate",
        default=None,
        help="ambient-substrate mode for the whole fleet (default: the "
        "deployment's, normally chip)",
    )
    fleet.set_defaults(func=_cmd_fleet)

    network = sub.add_parser(
        "network", help="city-scale multi-cell network simulation"
    )
    network.add_argument(
        "--layout",
        default="hex",
        choices=("hex", "grid"),
        help="cell layout: hexagonal cluster or rectangular grid",
    )
    network.add_argument(
        "--rings", type=int, default=1, help="hex rings (1 = 7 cells)"
    )
    network.add_argument("--rows", type=int, default=2, help="grid rows")
    network.add_argument("--cols", type=int, default=2, help="grid columns")
    network.add_argument(
        "--isd", type=float, default=150.0, help="inter-site distance (ft)"
    )
    network.add_argument(
        "--tags", "-n", type=int, default=8, help="tags scattered over the map"
    )
    network.add_argument(
        "--scheme",
        default="tdma",
        choices=("tdma", "aloha", "priority"),
        help="per-cell MAC scheme",
    )
    network.add_argument(
        "--frames", type=int, default=2, help="LTE frames per cell capture"
    )
    network.add_argument(
        "--attach",
        default="analytic",
        choices=("analytic", "search"),
        help="attach pipeline: analytic SNR ranking, or IQ cell search "
        "over the superposed neighbourhood",
    )
    network.add_argument("--payload", type=int, default=20_000)
    network.add_argument("--seed", type=int, default=0)
    network.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the (cell, cohort) stages (results are "
        "bit-identical for any value)",
    )
    network.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: 7-cell hex, 1 frame, <= 4 tags",
    )
    network.add_argument(
        "--output",
        default=None,
        help="summary JSON path (default NETWORK_PR6.json, or "
        "artifacts/network_smoke.json in smoke mode)",
    )
    network.add_argument(
        "--force",
        action="store_true",
        help="overwrite --output if it already exists",
    )
    network.add_argument(
        "--batch-tags",
        action="store_true",
        help="one batched cross-tag demod pass per cell cohort "
        "(bit-identical to the per-cohort engine path)",
    )
    network.add_argument(
        "--streaming",
        action="store_true",
        help="demodulate each capture in half-frame-aligned chunks "
        "(bit-identical, bounded demod working set)",
    )
    network.add_argument(
        "--chunk-half-frames",
        type=int,
        default=None,
        help="streaming chunk size in half-frames (default 4)",
    )
    network.set_defaults(func=_cmd_network)

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweeps and degradation curves"
    )
    chaos.add_argument(
        "--output",
        default=None,
        help="report JSON path (default CHAOS_PR3.json, or "
        "artifacts/chaos_smoke.json in smoke mode)",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: short capture, 3 severity points",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--max-severity",
        type=float,
        default=1.0,
        help="top of the severity sweep, in [0, 1]",
    )
    chaos.add_argument(
        "--kinds",
        default=None,
        help="comma-separated fault kinds (default: all); "
        "dropout, jammer, impulse, clipping, drift",
    )
    chaos.add_argument(
        "--no-fleet",
        action="store_true",
        help="skip the fleet-resilience experiment (fastest)",
    )
    chaos.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing report file",
    )
    chaos.set_defaults(func=_cmd_chaos)

    stress = sub.add_parser(
        "stress", help="adversarial-scenario sweeps and degradation curves"
    )
    stress.add_argument(
        "--output",
        default=None,
        help="report JSON path (default STRESS_PR8.json, or "
        "artifacts/stress_smoke.json in smoke mode)",
    )
    stress.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: short capture, 3 intensity points",
    )
    stress.add_argument("--seed", type=int, default=0)
    stress.add_argument(
        "--max-intensity",
        type=float,
        default=1.0,
        help="top of the intensity sweep, in [0, 1]",
    )
    stress.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: all); "
        "bursty-pdsch, signalling-storm, sweep-jammer, reactive-jammer, "
        "pss-jammer, tag-mob",
    )
    stress.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing report file",
    )
    stress.set_defaults(func=_cmd_stress)

    bench = sub.add_parser("bench", help="benchmark the DSP hot path")
    bench.add_argument(
        "--output",
        default=None,
        help="baseline JSON path (default BENCH_PR7.json, or "
        "artifacts/bench_smoke.json in smoke mode)",
    )
    bench.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        help="carrier bandwidth in MHz (default 20, or 5 in smoke mode)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="interleaved timing rounds (default 30, or 5 in smoke mode)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: narrow carrier, few repeats",
    )
    bench.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="gate the run against a committed baseline JSON; exits 1 on "
        "regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slack allowed vs the --check baseline (default 0.25)",
    )
    bench.set_defaults(func=_cmd_bench)

    substrates = sub.add_parser(
        "substrates",
        help="cross-substrate comparison suite writing SUBSTRATES_PR10.json",
    )
    substrates.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: link + fault-noop checks only (no ladder)",
    )
    substrates.add_argument(
        "--substrate",
        default=None,
        help="run only this mode (default: every registered mode)",
    )
    substrates.add_argument("--seed", type=int, default=0)
    substrates.add_argument(
        "--output",
        default=None,
        help="report JSON path (default SUBSTRATES_PR10.json, or "
        "artifacts/substrates_smoke.json in smoke mode)",
    )
    substrates.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing report file",
    )
    substrates.set_defaults(func=_cmd_substrates)

    campaign = sub.add_parser(
        "campaign",
        help="sharded, resumable execution of a registry experiment",
    )
    campaign.add_argument(
        "id", nargs="?", help="experiment id (omit with --list)"
    )
    campaign.add_argument(
        "--list",
        action="store_true",
        help="list campaign-capable experiments and exit",
    )
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: reduced parameter grid",
    )
    campaign.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the grid round-robin into N slices",
    )
    campaign.add_argument(
        "--shard-index",
        type=int,
        default=None,
        help="run only slice I of --shards (CI matrix jobs); omit to run "
        "every slice in this process",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip shards whose run-dir checkpoint verifies (CRC + identity)",
    )
    campaign.add_argument(
        "--run-dir",
        default=None,
        help="checkpoint directory (default artifacts/campaign/<id>)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for shard execution",
    )
    campaign.set_defaults(func=_cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="always-on fleet service (with --soak: checkpointed soak "
        "harness writing SOAK_PR9.json)",
    )
    serve.add_argument(
        "--soak",
        action="store_true",
        help="run the deterministic soak harness: checkpointed cohorts, "
        "service-vs-batch bit-identity gate, SOAK report",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: 3 cohorts (12 sessions)",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=None,
        help="synthetic tag-sessions to drive (default 96, or 12 in smoke "
        "mode)",
    )
    serve.add_argument(
        "--cohort-tags",
        type=int,
        default=4,
        help="sessions per cohort (one seeded deployment each)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="service worker threads (results are bit-identical for any "
        "value)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="job-queue depth; submissions beyond it are shed",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--scheme",
        default="tdma",
        choices=("tdma", "aloha", "priority"),
        help="MAC scheme for each cohort's deployment",
    )
    serve.add_argument("--bandwidth", type=float, default=1.4)
    serve.add_argument(
        "--frames", type=int, default=2, help="LTE frames per cohort capture"
    )
    serve.add_argument("--payload", type=int, default=2_000)
    serve.add_argument(
        "--output",
        default=None,
        help="soak report JSON path (default SOAK_PR9.json, or "
        "artifacts/soak_smoke.json in smoke mode)",
    )
    serve.add_argument(
        "--run-dir",
        default=None,
        help="soak checkpoint directory (default artifacts/soak[-smoke])",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="reuse verified cohort checkpoints in --run-dir (a killed "
        "soak continues where it stopped)",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        help="live telemetry snapshot path, atomically rewritten every "
        "--snapshot-every sessions (default: no snapshot file)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="completed sessions between live snapshot exports",
    )
    serve.add_argument(
        "--force",
        action="store_true",
        help="overwrite existing --output / --snapshot files",
    )
    serve.set_defaults(func=_cmd_serve)

    survey = sub.add_parser("survey", help="ambient-traffic survey for a venue")
    survey.add_argument("--venue", default="home")
    survey.add_argument("--seed", type=int, default=0)
    survey.set_defaults(func=_cmd_survey)

    report = sub.add_parser("report", help="write the full evaluation report")
    report.add_argument("--output", default="report.md")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--heavy", action="store_true", help="include the IQ-level experiments"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def _cmd_report(args):
    from repro.analysis import write_report

    path = write_report(args.output, seed=args.seed, include_heavy=args.heavy)
    print(f"wrote {path}")
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
