"""Performance benchmark harness (``repro bench``).

Times the vectorised frame-level DSP against the pinned pre-vectorisation
loops (:func:`repro.lte.ofdm.modulate_frame_loop` and friends), the
sequence cache cold/warm behaviour, and the end-to-end
:class:`~repro.core.system.LScatterSystem` run, then writes the numbers to
a JSON file (``BENCH_PR7.json`` by default) so every future change has a
perf baseline to diff against.

Timing methodology: the candidates are measured *interleaved* (one
repetition of each per round, repeated ``repeats`` times) and the minimum
per-call CPU time is reported.  On shared or thermally-throttled machines
sequential min-of-N under-reports whichever candidate runs during a slow
spell; interleaving exposes both to the same conditions.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time

import numpy as np

from repro.utils.cache import cache_stats, clear_caches

#: Benchmark defaults; smoke mode (CI) shrinks them to keep runtime bounded.
DEFAULT_BANDWIDTH_MHZ = 20.0
DEFAULT_REPEATS = 30
SMOKE_BANDWIDTH_MHZ = 5.0
SMOKE_REPEATS = 5

#: Metrics gated by ``repro bench --check``: (dotted path, direction, log).
#: Only *relative* metrics (speedups, overhead fractions) are compared —
#: absolute wall/CPU times don't transfer between the machine that wrote
#: the committed baseline and the machine running the gate.  Log-scale
#: metrics (the warm sequence cache is ~1000x) compare on log10 so normal
#: jitter in a huge ratio doesn't trip the gate.
GATE_METRICS = (
    ("ofdm.speedup.modulate", "higher", False),
    ("ofdm.speedup.demodulate", "higher", False),
    ("ofdm.speedup.combined", "higher", False),
    ("cfo.speedup", "higher", False),
    ("sequence_cache.speedup", "higher", True),
    ("trace_overhead.overhead_fraction", "lower", False),
    # Multi-cell ambient sharing: a warm topology re-run must hit the
    # per-cell capture cache (missing in pre-PR6 baselines — reported,
    # not gated, against those).
    ("network.cache_hit_ratio", "higher", False),
    # PR7: one batched cross-tag demod pass must beat the per-tag loop,
    # and the chunked streaming receiver must hold a smaller peak demod
    # working set than the whole-capture call.  Both sections run the
    # same workload in smoke and full mode, so the CI smoke run compares
    # directly against the committed full-mode baseline.
    ("bsrx_batch.speedup", "higher", False),
    ("streaming.memory_ratio", "higher", False),
    # PR10: the pluggable-substrate refactor routes every pipeline stage
    # through a registry-dispatched object; the default chip mode's
    # dispatch cost on the demod hot path must stay negligible (missing
    # in pre-PR10 baselines — reported, not gated, against those).
    ("substrate.overhead_fraction", "lower", False),
)

#: Absolute slack for lower-is-better metrics whose baseline sits near 0
#: (the disabled-tracing overhead fraction is ~0.1-1 %): without it any
#: noise above a tiny baseline would read as a >tolerance regression.
LOWER_METRIC_ABSOLUTE_SLACK = 0.005


def _interleaved_min(candidates, repeats, inner=3, timer=time.process_time):
    """Min per-call seconds for each thunk, measured round-robin.

    Each round gives every candidate ``inner`` consecutive calls and keeps
    the fastest: the first call after switching candidates re-warms the
    caches the other one evicted, so the steady-state (hot-path) cost is
    what gets recorded, while the round-robin outer loop still exposes all
    candidates to the same noise spells.

    ``timer`` defaults to per-process CPU time; candidates that fan work
    across threads (``scipy.fft`` workers) must pass
    ``time.perf_counter`` — process_time books multi-core fan-out as
    *more* CPU, inverting the comparison.
    """
    best = {name: float("inf") for name, _ in candidates}
    for _ in range(repeats):
        for name, thunk in candidates:
            for _ in range(inner):
                t0 = timer()
                thunk()
                best[name] = min(best[name], timer() - t0)
    return best


def _bench_ofdm(params, repeats, rng):
    from repro.lte import ofdm
    from repro.lte.resource_grid import ResourceGrid

    grid = ResourceGrid(params)
    shape = grid.values.shape
    grid.values[:] = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    samples = ofdm.modulate_frame(grid)

    times = _interleaved_min(
        [
            ("modulate_vec", lambda: ofdm.modulate_frame(grid)),
            ("modulate_loop", lambda: ofdm.modulate_frame_loop(grid)),
            ("demodulate_vec", lambda: ofdm.demodulate_frame(params, samples)),
            ("demodulate_loop", lambda: ofdm.demodulate_frame_loop(params, samples)),
        ],
        repeats,
    )
    combined_vec = times["modulate_vec"] + times["demodulate_vec"]
    combined_loop = times["modulate_loop"] + times["demodulate_loop"]
    return {
        "seconds": times,
        "speedup": {
            "modulate": times["modulate_loop"] / times["modulate_vec"],
            "demodulate": times["demodulate_loop"] / times["demodulate_vec"],
            "combined": combined_loop / combined_vec,
        },
    }


def _bench_cfo(params, repeats, rng):
    from repro.lte import cfo

    n = params.samples_per_frame
    samples = rng.normal(size=n) + 1j * rng.normal(size=n)
    times = _interleaved_min(
        [
            ("estimate_vec", lambda: cfo.estimate_cfo(samples, params)),
            ("estimate_loop", lambda: cfo.estimate_cfo_loop(samples, params)),
        ],
        repeats,
    )
    return {
        "seconds": times,
        "speedup": times["estimate_loop"] / times["estimate_vec"],
    }


def _bench_sequences(params):
    """Cold-vs-warm cost of one frame's worth of cached sequences."""
    from repro.lte.crs import CRS_SYMBOLS_IN_SLOT, crs_positions, crs_values
    from repro.lte.params import SLOTS_PER_FRAME
    from repro.lte.pss import pss_sequence, pss_time_domain
    from repro.lte.sss import sss_sequence

    def one_frame():
        for n_id_2 in range(3):
            pss_sequence(n_id_2)
            pss_time_domain(n_id_2, params.fft_size)
        for subframe in (0, 5):
            sss_sequence(0, 0, subframe)
        for slot in range(SLOTS_PER_FRAME):
            for sym in CRS_SYMBOLS_IN_SLOT:
                crs_positions(sym, 1, params.n_rb)
                crs_values(slot, sym, 1, params.n_rb)
        params.subcarrier_indices()

    clear_caches()
    t0 = time.process_time()
    one_frame()
    cold = time.process_time() - t0
    t0 = time.process_time()
    one_frame()
    warm = time.process_time() - t0
    return {
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / max(warm, 1e-12),
    }


def _bench_end_to_end(repeats, smoke):
    from repro.core import LScatterSystem, SystemConfig

    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=2,
        reference_mode="decoded",
        multipath=False,
        add_noise=False,
    )
    best_wall = float("inf")
    best_cpu = float("inf")
    report = None
    for _ in range(1 if smoke else min(repeats, 3)):
        system = LScatterSystem(config, rng=0)
        w0 = time.perf_counter()
        c0 = time.process_time()
        report = system.run(payload_length=2000)
        best_cpu = min(best_cpu, time.process_time() - c0)
        best_wall = min(best_wall, time.perf_counter() - w0)
    return {
        "config": "1.4 MHz, 2 frames, decoded reference, no noise/multipath",
        "seconds": best_wall,
        "cpu_seconds": best_cpu,
        "ber": float(report.ber),
    }


def _bench_fleet(smoke):
    """Wall-clock timing of a small parallel fleet run.

    The pre-PR4 harness timed everything with ``time.process_time()``,
    which only counts *this* process's CPU — a process-pool fleet spends
    its CPU in workers, so the old number undercounted the fleet path by
    roughly the worker count.  The fleet is therefore timed through a
    wall-clock span (:mod:`repro.obs.trace`), and both wall and parent
    CPU are recorded so the divergence is visible in the baseline JSON.
    """
    from repro.fleet import Deployment, FleetRunner
    from repro.obs import trace as obs_trace

    n_tags = 2 if smoke else 4
    deployment = Deployment.ring(n_tags, bandwidth_mhz=1.4, n_frames=2)
    with obs_trace.collect() as collection:
        with obs_trace.span("bench.fleet"):
            with FleetRunner(deployment, workers=2, seed=0) as runner:
                report = runner.run(payload_length=1000)
    node = collection.roots[0]
    return {
        "config": f"{n_tags} tags, 2 workers, 1.4 MHz, 2 frames",
        "wall_seconds": node.wall_seconds,
        "parent_cpu_seconds": node.cpu_seconds,
        "worker_task_seconds": report.serial_seconds_estimate,
        "speedup": report.speedup,
        "aggregate_throughput_bps": report.aggregate_throughput_bps,
    }


def _bench_network(smoke):
    """Multi-cell scaling: (tags x cells) per second and ambient reuse.

    Runs a 7-cell hexagonal network twice over one shared
    :class:`~repro.fleet.ambient.AmbientCache`: the cold pass generates
    every cell's capture, the warm pass must hit the cache for all of
    them.  The scaling metric divides the *warm* wall time — what a
    campaign's steady state pays — into the tag x cell workload; the hit
    ratio ``(requests - transmit_calls) / requests`` is gated so per-cell
    sharing cannot silently regress.
    """
    from repro.cells import NetworkDeployment, NetworkRunner, Topology
    from repro.fleet.ambient import AmbientCache

    n_tags = 4 if smoke else 8
    topology = Topology.hex_cluster(
        inter_site_ft=150.0, rings=1, n_frames=1 if smoke else 2
    )
    deployment = NetworkDeployment.scatter(n_tags, topology, seed=0)
    with AmbientCache() as cache:

        def one_run():
            with NetworkRunner(
                topology, deployment, seed=0, cache=cache, payload_length=2000
            ) as runner:
                return runner.run()

        w0 = time.perf_counter()
        one_run()
        cold_wall = time.perf_counter() - w0
        w0 = time.perf_counter()
        report = one_run()
        warm_wall = time.perf_counter() - w0
        requests = cache.requests
        transmits = cache.transmit_calls
    workload = report.n_tags * report.n_cells
    return {
        "config": (
            f"{report.n_cells} cells (hex), {n_tags} tags, 1.4 MHz, "
            "cold + warm pass over one shared cache"
        ),
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "tags_x_cells_per_second": workload / max(warm_wall, 1e-12),
        "ambient_requests": requests,
        "ambient_transmit_calls": transmits,
        "cache_hit_ratio": (requests - transmits) / max(requests, 1),
        "aggregate_goodput_bps": report.aggregate_goodput_bps,
    }


def _bench_bsrx_batch(smoke):
    """Batched cross-tag demod vs the per-tag loop on identical captures.

    Six tags ride one shared 1.4 MHz, 2-frame ambient (each with its own
    seed, so sync errors, channels, and noise differ per tag); the
    per-tag candidate demodulates them one at a time, the batched
    candidate stacks all six into one
    :meth:`~repro.bsrx.demodulator.BackscatterDemodulator.demodulate_many`
    pass.  The results are asserted bit-identical before any timing.

    The workload is the same in smoke and full mode, so the CI smoke run
    is directly comparable to the committed full-mode baseline.  Timing
    is wall-clock: the batched pass fans FFT rows across cores
    (``scipy.fft`` workers), which ``process_time`` would book as *more*
    CPU rather than less time.
    """
    from repro.core import LScatterSystem, SystemConfig
    from repro.fleet.ambient import AmbientCache

    n_tags = 6
    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=2,
        reference_mode="genie",
        sync_mode="model",
    )
    with AmbientCache() as cache:
        ambient = cache.get(config, 0)
        systems = [LScatterSystem(config, rng=100 + t) for t in range(n_tags)]
        fronts = [
            system.run_frontend(payload_length=2000, ambient=ambient)
            for system in systems
        ]
    shifted = np.stack([front.shifted_rx for front in fronts])
    references = np.stack([front.reference for front in fronts])
    half_starts = fronts[0].half_starts
    demod = systems[0].demodulator

    def per_tag():
        return [
            demod.demodulate(shifted[t], references[t], half_starts)
            for t in range(n_tags)
        ]

    def batched():
        return demod.demodulate_many(shifted, references, half_starts)

    equal = all(
        np.array_equal(s.bits, b.bits)
        and np.array_equal(s.soft, b.soft)
        and np.array_equal(s.starts, b.starts)
        for s, b in zip(per_tag(), batched())
    )
    assert equal, "batched cross-tag demod diverged from the per-tag loop"
    times = _interleaved_min(
        [("per_tag", per_tag), ("batched", batched)],
        repeats=3,
        inner=1,
        timer=time.perf_counter,
    )
    return {
        "config": f"{n_tags} tags, 1.4 MHz, 2 frames, genie reference",
        "wall_seconds": times,
        "equal_results": bool(equal),
        "speedup": times["per_tag"] / times["batched"],
        "tags_per_second": n_tags / max(times["batched"], 1e-12),
    }


def _bench_streaming(smoke):
    """Peak demod working set: whole-capture vs the streaming receiver.

    One 1.4 MHz, 6-frame capture (shifted band + reference) is spilled to
    scratch files and re-opened as read-only memory maps — the long-
    recording scenario where the samples live on disk, not in the
    process.  The whole-capture candidate materialises both full arrays
    and demodulates in one call; the streaming candidate pushes
    2-half-frame chunks through :class:`~repro.bsrx.streaming.
    StreamingDemodulator` and never holds more than a chunk plus the
    unfinished tail.  ``tracemalloc`` captures each candidate's peak
    allocation; their ratio is the gated metric (higher = streaming wins
    by more).  The results are asserted bit-identical.  ``peak_rss_mb``
    is informational only — RSS is a non-decreasing high-water mark for
    the whole process, so it cannot attribute memory to a candidate.

    Same workload in smoke and full mode (the peaks are deterministic
    allocation sizes, not timings), so the gate transfers across machines.
    """
    import resource
    import tempfile
    import tracemalloc

    from repro.bsrx.streaming import StreamingDemodulator
    from repro.core import LScatterSystem, SystemConfig

    chunk_half_frames = 2
    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=6,
        reference_mode="genie",
        sync_mode="model",
    )
    system = LScatterSystem(config, rng=7)
    front = system.run_frontend(payload_length=20000)
    half = config.params.samples_per_frame // 2
    half_starts = front.half_starts
    paths = []
    mapped = {}
    try:
        for name, values in (
            ("shifted", front.shifted_rx),
            ("reference", front.reference),
        ):
            fd, path = tempfile.mkstemp(
                prefix=f"lscatter-bench-{name}-", suffix=".iq"
            )
            with os.fdopen(fd, "wb") as fh:
                np.ascontiguousarray(values, dtype=np.complex128).tofile(fh)
            paths.append(path)
            mapped[name] = np.memmap(path, dtype=np.complex128, mode="r")
        del front
        n = len(mapped["shifted"])
        demod = system.demodulator

        tracemalloc.start()
        whole = demod.demodulate(
            np.array(mapped["shifted"]),
            np.array(mapped["reference"]),
            half_starts,
        )
        _, whole_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        streamer = StreamingDemodulator(
            config.params, chunk_half_frames=chunk_half_frames
        )
        step = chunk_half_frames * half
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            streamer.push(
                np.array(mapped["shifted"][lo:hi]),
                np.array(mapped["reference"][lo:hi]),
            )
        streamed = streamer.finish()
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    finally:
        mapped.clear()
        for path in paths:
            try:
                os.unlink(path)
            except OSError:
                pass
    equal = (
        np.array_equal(whole.bits, streamed.bits)
        and np.array_equal(whole.soft, streamed.soft)
        and np.array_equal(whole.starts, streamed.starts)
    )
    assert equal, "streamed demod diverged from the whole-capture call"
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "config": (
            f"1.4 MHz, {config.n_frames} frames, genie reference, "
            f"chunk={chunk_half_frames} half-frames, memmapped capture"
        ),
        "capture_samples": int(n),
        "whole_peak_bytes": int(whole_peak),
        "streamed_peak_bytes": int(streamed_peak),
        "memory_ratio": whole_peak / max(streamed_peak, 1),
        "equal_results": bool(equal),
        "peak_rss_mb": rss_kb / 1024.0,
    }


def _bench_substrate(repeats):
    """Default-substrate dispatch overhead on the demod hot path.

    The PR10 refactor interposes a registry-dispatched
    :class:`~repro.substrates.base.Substrate` between the system and the
    stage objects; for the default chip mode every hook is a forwarding
    call.  The candidates demodulate one identical front-end capture
    through the substrate (``system.substrate.demodulate(front)``) and
    directly (``system.demodulator.demodulate(...)``, the pre-refactor
    call) — asserted bit-identical before any timing.

    As with :func:`_bench_trace_overhead`, frame-level FFT jitter swamps
    a couple of Python calls, so the pinned fraction divides the
    *measured dispatch cost* — one registry lookup plus one substrate
    construction with its capability guards, everything the refactor
    added per system — by the direct demod time.  The interleaved A/B
    ratio is kept in the artifact for cross-checking.  Pinned < 2 % by
    ``benchmarks/test_substrate_overhead.py``.
    """
    from repro.core import LScatterSystem, SystemConfig
    from repro.substrates import get_substrate

    config = SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=2,
        reference_mode="genie",
        sync_mode="model",
        multipath=False,
        add_noise=False,
    )
    system = LScatterSystem(config, rng=0)
    front = system.run_frontend(payload_length=2000)
    demod = system.demodulator

    def direct():
        return demod.demodulate(
            front.shifted_rx, front.reference, front.half_starts
        )

    def dispatched():
        return system.substrate.demodulate(front)

    a, b = direct(), dispatched()
    equal = (
        np.array_equal(a.bits, b.bits)
        and np.array_equal(a.soft, b.soft)
        and np.array_equal(a.starts, b.starts)
    )
    assert equal, "substrate-dispatched demod diverged from the direct call"
    times = _interleaved_min(
        [("direct", direct), ("dispatched", dispatched)],
        repeats,
        timer=time.perf_counter,
    )
    loops = 10_000
    t0 = time.perf_counter()
    for _ in range(loops):
        get_substrate("chip")(system)
    per_dispatch = (time.perf_counter() - t0) / loops
    return {
        "config": "1.4 MHz, 2 frames, genie reference, chip substrate",
        "wall_seconds": times,
        "equal_results": bool(equal),
        "measured_ratio": times["dispatched"] / times["direct"] - 1.0,
        "dispatch_seconds": per_dispatch,
        "overhead_fraction": per_dispatch / times["direct"],
    }


def _bench_trace_overhead(params, repeats, rng):
    """Disabled-tracing overhead on the instrumented OFDM hot path.

    ``demodulate_frame`` carries a permanent ``span()`` call; with
    tracing disabled that is one global check returning a shared no-op.
    The fraction reported here is pinned < 2 % by
    ``benchmarks/test_perf_ofdm.py``.
    """
    from repro.lte import ofdm
    from repro.obs import trace as obs_trace

    n = params.samples_per_frame
    samples = rng.normal(size=n) + 1j * rng.normal(size=n)
    assert not obs_trace.is_enabled()
    times = _interleaved_min(
        [
            ("instrumented", lambda: ofdm.demodulate_frame(params, samples)),
            ("bare", lambda: ofdm._demodulate_frame(params, samples)),
        ],
        repeats,
    )
    # The A/B frame ratio cannot resolve the true cost (one global bool
    # check) under percent-level FFT timing jitter, so the pinned
    # fraction divides the *measured dispatch cost* of a disabled span —
    # everything the wrapper adds: the call, the enabled check, the
    # no-op context manager — by the bare frame time.  The raw ratio is
    # kept in the artifact for cross-checking.
    loops = 10_000
    t0 = time.perf_counter()
    for _ in range(loops):
        with obs_trace.span("bench.noop"):
            pass
    per_call = (time.perf_counter() - t0) / loops
    return {
        "seconds": times,
        "noop_span_seconds": per_call,
        "measured_ratio": times["instrumented"] / times["bare"] - 1.0,
        "overhead_fraction": per_call / times["bare"],
    }


def run_bench(output="BENCH_PR7.json", bandwidth=None, repeats=None, smoke=False):
    """Run the full benchmark battery and write ``output``.

    ``smoke=True`` (the CI mode) uses a narrow carrier and few repeats —
    a regression canary plus artifact, not a rigorous measurement.
    Returns the results dict.
    """
    from repro.lte.params import LteParams

    if bandwidth is None:
        bandwidth = SMOKE_BANDWIDTH_MHZ if smoke else DEFAULT_BANDWIDTH_MHZ
    if repeats is None:
        repeats = SMOKE_REPEATS if smoke else DEFAULT_REPEATS
    params = LteParams.from_bandwidth(bandwidth)
    rng = np.random.default_rng(0)

    results = {
        "benchmark": "PR2 vectorised DSP hot path",
        "mode": "smoke" if smoke else "full",
        "bandwidth_mhz": float(bandwidth),
        "repeats": int(repeats),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "ofdm": _bench_ofdm(params, repeats, rng),
        "cfo": _bench_cfo(params, repeats, rng),
        "sequence_cache": _bench_sequences(params),
        "trace_overhead": _bench_trace_overhead(params, repeats, rng),
        "end_to_end": _bench_end_to_end(repeats, smoke),
        "fleet": _bench_fleet(smoke),
        "network": _bench_network(smoke),
        "bsrx_batch": _bench_bsrx_batch(smoke),
        "streaming": _bench_streaming(smoke),
        "substrate": _bench_substrate(repeats),
        "cache_stats": cache_stats(),
    }
    if output:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(output, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
    return results


# -- regression gate (``repro bench --check``) -----------------------------------


def _metric(results, path):
    """Resolve a dotted path in a results dict; ``None`` when absent."""
    node = results
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def compare_to_baseline(current, baseline, tolerance=0.25):
    """Gate the current bench results against a committed baseline.

    For every :data:`GATE_METRICS` entry the current value may be worse
    than the baseline by at most ``tolerance`` (relative; log-scale
    metrics compare their log10).  Returns a report dict whose
    ``regressions`` list is empty iff the gate passes.
    """
    tolerance = float(tolerance)
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    metrics = []
    for path, direction, log_scale in GATE_METRICS:
        cur = _metric(current, path)
        base = _metric(baseline, path)
        entry = {
            "metric": path,
            "direction": direction,
            "current": cur,
            "baseline": base,
            "status": "ok",
        }
        if cur is None and base is not None:
            # The baseline gates this metric but the new run never
            # produced it: a dropped bench section (renamed key, early
            # return, skipped stage) must fail the gate loudly by name,
            # not pass silently by omission.
            entry["status"] = "missing_current"
        elif cur is None or base is None:
            # Missing from the baseline is reported, not gated — an old
            # baseline must not hard-fail a newer bench (the re-baseline
            # procedure in the README covers catching up).
            entry["status"] = "missing"
        elif direction == "higher":
            if log_scale:
                cur_v = math.log10(max(cur, 1e-12))
                base_v = math.log10(max(base, 1e-12))
                floor = base_v * (1.0 - tolerance)
            else:
                cur_v = cur
                floor = base * (1.0 - tolerance)
            entry["floor"] = floor
            if cur_v < floor:
                entry["status"] = "regressed"
        else:  # lower is better
            ceiling = base * (1.0 + tolerance) + LOWER_METRIC_ABSOLUTE_SLACK
            entry["ceiling"] = ceiling
            if cur > ceiling:
                entry["status"] = "regressed"
        metrics.append(entry)
    return {
        "tolerance": tolerance,
        "metrics": metrics,
        "regressions": [
            m["metric"]
            for m in metrics
            if m["status"] in ("regressed", "missing_current")
        ],
        "passed": all(
            m["status"] not in ("regressed", "missing_current") for m in metrics
        ),
    }


def format_check(report, baseline_path=None):
    """Human-readable lines for a :func:`compare_to_baseline` report.

    ``baseline_path`` names the baseline file in the verdict lines, so a
    failing CI log says *which* committed baseline the run regressed
    against, not just which metric.
    """
    against = f" vs {baseline_path}" if baseline_path else ""
    lines = [
        f"bench gate{against} (tolerance {report['tolerance']:.0%}, "
        f"{len(report['metrics'])} metrics):"
    ]
    for m in report["metrics"]:
        if m["status"] == "missing":
            lines.append(f"  {m['metric']:36s} missing (not gated)")
            continue
        if m["status"] == "missing_current":
            lines.append(
                f"  {m['metric']:36s} MISSING from current run "
                f"(baseline {m['baseline']:12.4g})"
            )
            continue
        flag = "REGRESSED" if m["status"] == "regressed" else "ok"
        lines.append(
            f"  {m['metric']:36s} {m['current']:12.4g} vs baseline "
            f"{m['baseline']:12.4g}  {flag}"
        )
    lines.append(
        "bench gate: PASSED" if report["passed"] else
        f"bench gate: FAILED{against} ({', '.join(report['regressions'])})"
    )
    return "\n".join(lines)


def load_baseline(path):
    """Read a baseline JSON written by :func:`run_bench`."""
    with open(path) as fh:
        return json.load(fh)


def format_summary(results):
    """Human-readable one-screen summary of :func:`run_bench` output."""
    ofdm = results["ofdm"]
    lines = [
        f"bandwidth        : {results['bandwidth_mhz']} MHz "
        f"({results['mode']}, min of {results['repeats']})",
        f"modulate_frame   : {ofdm['seconds']['modulate_loop'] * 1e3:8.3f} ms loop"
        f" -> {ofdm['seconds']['modulate_vec'] * 1e3:8.3f} ms vec"
        f"  ({ofdm['speedup']['modulate']:.2f}x)",
        f"demodulate_frame : {ofdm['seconds']['demodulate_loop'] * 1e3:8.3f} ms loop"
        f" -> {ofdm['seconds']['demodulate_vec'] * 1e3:8.3f} ms vec"
        f"  ({ofdm['speedup']['demodulate']:.2f}x)",
        f"combined         : {ofdm['speedup']['combined']:.2f}x",
        f"estimate_cfo     : {results['cfo']['speedup']:.2f}x",
        f"sequence cache   : {results['sequence_cache']['speedup']:.1f}x warm",
        f"trace overhead   : "
        f"{results['trace_overhead']['overhead_fraction'] * 100:+.2f}% disabled",
        f"end-to-end run   : {results['end_to_end']['seconds'] * 1e3:.1f} ms wall, "
        f"{results['end_to_end']['cpu_seconds'] * 1e3:.1f} ms cpu "
        f"({results['end_to_end']['config']})",
        f"fleet run        : {results['fleet']['wall_seconds'] * 1e3:.1f} ms wall, "
        f"{results['fleet']['worker_task_seconds'] * 1e3:.1f} ms in workers, "
        f"speedup {results['fleet']['speedup']:.2f}x "
        f"({results['fleet']['config']})",
        f"network run      : "
        f"{results['network']['tags_x_cells_per_second']:.1f} tagxcells/s warm, "
        f"ambient cache hit ratio "
        f"{results['network']['cache_hit_ratio']:.0%} "
        f"({results['network']['config']})",
        f"bsrx batch       : {results['bsrx_batch']['speedup']:.2f}x vs per-tag, "
        f"{results['bsrx_batch']['tags_per_second']:.1f} tags/s "
        f"({results['bsrx_batch']['config']})",
        f"streaming demod  : {results['streaming']['memory_ratio']:.1f}x smaller "
        f"peak working set "
        f"({results['streaming']['config']})",
        f"substrate dispatch: "
        f"{results['substrate']['overhead_fraction'] * 100:+.3f}% of direct "
        f"demod ({results['substrate']['config']})",
    ]
    return "\n".join(lines)
