"""5G NR downlink substrate ("NR-lite") and LScatter on it.

The paper's §6 claims the LScatter techniques carry over to 5G.  This
package provides enough of the NR downlink to test that claim honestly:
scalable numerology (38.211 §4), the NR PSS/SSS m-sequences (§7.4.2), an
SSB-bearing frame builder, and a chip-backscatter pipeline built from the
same generic machinery as the LTE one.
"""

from repro.nr.params import NrNumerology, NR_PRESETS
from repro.nr.sync import nr_pss, nr_sss, detect_nr_pss_sequence
from repro.nr.frame import NrFrameBuilder, NrCapture
from repro.nr.backscatter import nr_backscatter_trial, NrBackscatterResult

__all__ = [
    "NrNumerology",
    "NR_PRESETS",
    "nr_pss",
    "nr_sss",
    "detect_nr_pss_sequence",
    "NrFrameBuilder",
    "NrCapture",
    "nr_backscatter_trial",
    "NrBackscatterResult",
]
