"""LScatter on a 5G NR carrier (the paper's §6 claim, tested).

The tag logic is identical — sync to the periodic SSB, centre chips in
every useful symbol, avoid the SSB symbols — so this module simply builds
per-slot :class:`~repro.extensions.ofdm_chips.OfdmSymbolLayout` objects
from the NR numerology and reuses the generic chip tag/receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extensions.ofdm_chips import OfdmChipReceiver, OfdmChipTag, OfdmSymbolLayout
from repro.nr.frame import SSB_SYMBOLS, NrFrameBuilder
from repro.nr.params import SYMBOLS_PER_SLOT, NrNumerology, NR_PRESETS
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


@dataclass
class NrBackscatterResult:
    """Outcome of one NR chip-backscatter trial."""

    preset: str
    ber: float
    n_bits: int
    duration_seconds: float

    @property
    def throughput_bps(self):
        if self.duration_seconds <= 0:
            return 0.0
        return self.n_bits * (1.0 - self.ber) / self.duration_seconds


def _slot_layouts(capture):
    """One OfdmSymbolLayout per slot (skipping SSB symbols in slot 0)."""
    num = capture.numerology
    layouts = []
    for slot in range(num.slots_per_frame):
        symbols = [
            sym
            for sym in range(SYMBOLS_PER_SLOT)
            if not (slot == 0 and sym in SSB_SYMBOLS)
        ]
        starts = tuple(capture.useful_start(slot, sym) for sym in symbols)
        layouts.append(
            OfdmSymbolLayout(
                useful_starts=starts,
                fft_size=num.fft_size,
                n_chips=num.n_subcarriers,
            )
        )
    return layouts


def nr_backscatter_trial(preset="nr20_mu1", payload_length=200_000, snr_db=None, seed=0):
    """Run chip backscatter over one NR frame; returns the result.

    ``snr_db`` (optional) adds AWGN on the hybrid signal.
    """
    if isinstance(preset, NrNumerology):
        numerology, name = preset, "custom"
    else:
        numerology, name = NR_PRESETS[preset], preset
    rng = make_rng(seed)
    capture = NrFrameBuilder(numerology, rng=rng).build()

    payload = rng.integers(0, 2, size=int(payload_length)).astype(np.int8)
    hybrid = np.array(capture.samples, dtype=complex)
    sent_chunks = []
    consumed = 0
    layouts = _slot_layouts(capture)
    for layout in layouts:
        tag = OfdmChipTag(layout)
        chunk = payload[consumed : consumed + tag.capacity_bits()]
        hybrid_slot, used = tag.modulate(hybrid, chunk)
        hybrid = hybrid_slot
        sent_chunks.append(chunk[:used])
        consumed += used

    if snr_db is not None:
        hybrid = awgn(hybrid, snr_db, rng)

    errors = 0
    total = 0
    consumed = 0
    for layout, sent in zip(layouts, sent_chunks):
        receiver = OfdmChipReceiver(layout)
        got = receiver.demodulate(hybrid, capture.samples, len(sent))
        errors += int(np.sum(got != sent))
        total += len(sent)
    ber = errors / max(total, 1)
    return NrBackscatterResult(
        preset=name,
        ber=ber,
        n_bits=total,
        duration_seconds=capture.duration_seconds,
    )
