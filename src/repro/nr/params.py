"""NR numerology (38.211 §4): scalable subcarrier spacing.

Subcarrier spacing is ``15 kHz * 2^mu``; a slot is 14 symbols and a
10 ms frame carries ``10 * 2^mu`` slots.  The basic-timing unit — and
hence LScatter's chip duration — shrinks with mu, which is why the same
modulation runs proportionally faster on NR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Symbols per slot (normal CP).
SYMBOLS_PER_SLOT = 14

#: Frame duration in seconds.
FRAME_SECONDS = 10e-3


@dataclass(frozen=True)
class NrNumerology:
    """One NR carrier configuration."""

    mu: int
    n_rb: int
    fft_size: int

    def __post_init__(self):
        if not 0 <= self.mu <= 3:
            raise ValueError("mu must be 0..3")
        if self.n_rb * 12 >= self.fft_size:
            raise ValueError("occupied subcarriers must fit in the FFT")

    @property
    def scs_hz(self):
        return 15e3 * (1 << self.mu)

    @property
    def sample_rate_hz(self):
        return self.fft_size * self.scs_hz

    @property
    def n_subcarriers(self):
        return self.n_rb * 12

    @property
    def slots_per_frame(self):
        return 10 * (1 << self.mu)

    @property
    def cp_samples(self):
        """Normal-CP length (the common symbols; slot-edge extension ignored)."""
        return (144 * self.fft_size) // 2048

    @property
    def symbol_samples(self):
        return self.cp_samples + self.fft_size

    @property
    def samples_per_slot(self):
        return SYMBOLS_PER_SLOT * self.symbol_samples

    @property
    def samples_per_frame(self):
        return self.slots_per_frame * self.samples_per_slot

    @property
    def basic_timing_unit_seconds(self):
        return 1.0 / self.sample_rate_hz

    def subcarrier_indices(self):
        """FFT bins of the occupied subcarriers (DC unused), low first."""
        half = self.n_subcarriers // 2
        low = (np.arange(half) - half) % self.fft_size
        high = np.arange(1, self.n_subcarriers - half + 1)
        return np.concatenate([low, high])


#: Named carrier presets used by tests/benchmarks.
NR_PRESETS = {
    # 10 MHz at 15 kHz SCS — LTE-like timing.
    "nr10_mu0": NrNumerology(mu=0, n_rb=52, fft_size=1024),
    # 20 MHz at 30 kHz SCS — same sample rate as 20 MHz LTE, half the
    # symbol duration.
    "nr20_mu1": NrNumerology(mu=1, n_rb=51, fft_size=1024),
    # 40 MHz at 30 kHz SCS — the rate headroom 5G brings.
    "nr40_mu1": NrNumerology(mu=1, n_rb=106, fft_size=2048),
}
