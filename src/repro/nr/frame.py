"""NR-lite downlink frame builder.

One 10 ms frame: an SS/PBCH-style block (PSS symbol, SSS symbol, filler
around them) at the start of slot 0, DMRS pilots on two symbols of every
slot, and QPSK payload elsewhere.  No NR channel-coding chain — the
backscatter experiments only need a standard-shaped carrier; the LTE
substrate already covers the "does the ambient decode survive" question.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lte.gold import gold_qpsk
from repro.lte.modulation import modulate
from repro.nr.params import SYMBOLS_PER_SLOT, NrNumerology
from repro.nr.sync import NR_SYNC_LENGTH, nr_pss, nr_sss
from repro.utils.rng import make_rng

#: Symbols of slot 0 carrying the SSB (PSS, PBCH, SSS, PBCH).
SSB_SYMBOLS = (2, 3, 4, 5)
PSS_SYMBOL = 2
SSS_SYMBOL = 4

#: DMRS symbols within each slot.
DMRS_SYMBOLS = (2, 11)

#: DMRS comb spacing (every 4th subcarrier).
DMRS_SPACING = 4


@dataclass
class NrCapture:
    """A built NR frame: samples, grid, and layout metadata."""

    numerology: NrNumerology
    samples: np.ndarray
    grid: np.ndarray  # (n_symbols, n_subcarriers)
    cell_id: int

    @property
    def duration_seconds(self):
        return len(self.samples) / self.numerology.sample_rate_hz

    def useful_start(self, slot, symbol_in_slot):
        num = self.numerology
        return (
            slot * num.samples_per_slot
            + symbol_in_slot * num.symbol_samples
            + num.cp_samples
        )


class NrFrameBuilder:
    """Build standard-shaped NR-lite frames."""

    def __init__(self, numerology, n_id_1=0, n_id_2=0, rng=None):
        self.numerology = numerology
        if not 0 <= n_id_1 <= 335 or n_id_2 not in (0, 1, 2):
            raise ValueError("invalid NR cell identity")
        self.n_id_1 = n_id_1
        self.n_id_2 = n_id_2
        self.rng = make_rng(rng)

    @property
    def cell_id(self):
        return 3 * self.n_id_1 + self.n_id_2

    def _centre_columns(self, count):
        n = self.numerology.n_subcarriers
        half = count // 2
        return np.arange(n // 2 - half, n // 2 - half + count)

    def _dmrs(self, slot, symbol):
        """DMRS pilots: Gold-seeded QPSK on the comb."""
        n = self.numerology.n_subcarriers
        cols = np.arange(self.cell_id % DMRS_SPACING, n, DMRS_SPACING)
        c_init = (
            (slot * SYMBOLS_PER_SLOT + symbol + 1) * (2 * self.cell_id + 1) * 2048
            + self.cell_id
        ) % (1 << 31)
        return cols, gold_qpsk(c_init, len(cols))

    def build(self):
        """Build one frame; returns an :class:`NrCapture`."""
        num = self.numerology
        n_symbols = num.slots_per_frame * SYMBOLS_PER_SLOT
        grid = np.zeros((n_symbols, num.n_subcarriers), dtype=complex)

        # Payload QPSK everywhere first.
        payload_bits = self.rng.integers(
            0, 2, size=2 * grid.size
        ).astype(np.int8)
        grid[:, :] = modulate(payload_bits, "qpsk").reshape(grid.shape)

        # DMRS pilots overwrite their comb.
        for slot in range(num.slots_per_frame):
            for sym in DMRS_SYMBOLS:
                row = slot * SYMBOLS_PER_SLOT + sym
                cols, pilots = self._dmrs(slot, sym)
                grid[row, cols] = pilots

        # The SSB overwrites slot 0's symbols 2-5 (with a 3 dB boost like
        # the LTE builder, for the tag's envelope circuit).
        boost = 10 ** (6.0 / 20.0)
        sync_cols = self._centre_columns(NR_SYNC_LENGTH)
        pss_row = PSS_SYMBOL
        sss_row = SSS_SYMBOL
        for sym in SSB_SYMBOLS:
            grid[sym, :] *= 0.5  # PBCH-region filler kept light
        grid[pss_row, :] = 0
        grid[pss_row, sync_cols] = boost * nr_pss(self.n_id_2)
        grid[sss_row, :] = 0
        grid[sss_row, sync_cols] = boost * nr_sss(self.n_id_1, self.n_id_2)

        samples = self._modulate(grid)
        return NrCapture(
            numerology=num, samples=samples, grid=grid, cell_id=self.cell_id
        )

    def _modulate(self, grid):
        num = self.numerology
        bins_index = num.subcarrier_indices()
        pieces = []
        for row in range(grid.shape[0]):
            bins = np.zeros(num.fft_size, dtype=complex)
            bins[bins_index] = grid[row]
            useful = np.fft.ifft(bins) * np.sqrt(num.fft_size)
            pieces.append(np.concatenate([useful[-num.cp_samples :], useful]))
        return np.concatenate(pieces)
